package main

import (
	"io"
	"testing"
)

// TestSmoke trains on a tiny dataset so the example cannot rot silently.
func TestSmoke(t *testing.T) {
	if err := run(500, io.Discard); err != nil {
		t.Fatal(err)
	}
}
