// SGD: train a logistic-regression income classifier under eps-local
// differential privacy (the paper's Section V case study). Each user
// contributes one clipped, randomized gradient; the aggregator never sees
// raw features or labels.
//
//	go run ./examples/sgd
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"ldp"
	"ldp/internal/dataset"
	"ldp/internal/erm"
	"ldp/internal/mech"
)

func main() {
	if err := run(30_000, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(users int, out io.Writer) error {
	const (
		eps  = 2.0
		seed = 11
	)
	census := dataset.NewBR()
	examples := census.ERMExamples(users, seed)
	d := census.ERMDim()

	train, test := examples[:users*9/10], examples[users*9/10:]
	cfg := erm.Config{
		Task:      erm.LogisticRegression,
		Lambda:    1e-4,
		Eta:       1.0,
		GroupSize: erm.DefaultGroupSize(len(train), d, eps),
	}
	fmt.Fprintf(out, "logistic regression on BR-like census: d=%d, train=%d, test=%d\n",
		d, len(train), len(test))
	fmt.Fprintf(out, "eps=%g, group size=%d (%d SGD iterations)\n\n",
		eps, cfg.GroupSize, len(train)/cfg.GroupSize)

	runOne := func(name string, pert mech.VectorPerturber) error {
		beta, err := erm.Train(cfg, train, pert, seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  %-12s misclassification rate: %.4f\n",
			name, erm.MisclassificationRate(beta, test))
		return nil
	}

	if err := runOne("non-private", nil); err != nil {
		return err
	}

	hm, err := ldp.NewNumericCollector(ldp.HM, eps, d)
	if err != nil {
		return err
	}
	if err := runOne("hm (eps=2)", hm); err != nil {
		return err
	}

	pm, err := ldp.NewNumericCollector(ldp.PM, eps, d)
	if err != nil {
		return err
	}
	if err := runOne("pm (eps=2)", pm); err != nil {
		return err
	}

	du, err := ldp.NewDuchiMulti(eps, d)
	if err != nil {
		return err
	}
	return runOne("duchi", du)
}
