// SGD: train a logistic-regression income classifier by federated LDP-SGD
// over localhost HTTP (the paper's Section V case study as a networked
// service). The aggregator publishes the current model on GET /v1/model;
// each simulated user fetches it once, computes the gradient of the
// logistic loss on their own example, and submits only a clipped,
// eps-LDP randomized gradient report to POST /v1/report. When a round's
// group fills, the server averages the unbiased noisy gradients and takes
// one SGD step. Raw features, labels, and exact gradients never cross the
// connection.
//
//	go run ./examples/sgd
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http/httptest"
	"os"

	"ldp"
	"ldp/internal/dataset"
	"ldp/internal/erm"
	"ldp/internal/rng"
)

func main() {
	if err := run(30_000, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(users int, out io.Writer) error {
	const (
		eps    = 2.0
		seed   = 11
		lambda = 1e-4
		eta    = 1.0
	)
	census := dataset.NewBR()
	examples := census.ERMExamples(users, seed)
	d := census.ERMDim()
	train, test := examples[:users*9/10], examples[users*9/10:]

	// One user contributes to exactly one round (the paper's rule), so the
	// round count is what the training population can fill.
	groupSize := erm.DefaultGroupSize(len(train), d, eps)
	rounds := len(train) / groupSize
	gradCfg := ldp.GradientConfig{
		Dim:       d,
		Rounds:    rounds,
		GroupSize: groupSize,
		Eta:       eta,
		Lambda:    lambda,
	}

	// Aggregator side: a unified pipeline server with the gradient task.
	serverPipe, err := ldp.New(census.Schema(), eps, ldp.WithGradient(gradCfg))
	if err != nil {
		return err
	}
	srv := httptest.NewServer(ldp.NewPipelineServer(serverPipe, nil))
	defer srv.Close()

	// User side: the same gradient configuration builds the randomizer.
	clientPipe, err := ldp.New(census.Schema(), eps, ldp.WithGradient(gradCfg))
	if err != nil {
		return err
	}
	sgd, err := ldp.NewSGDClient(srv.URL, clientPipe, ldp.LogisticRegression, lambda)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "federated logistic regression on BR-like census over %s\n", srv.URL)
	fmt.Fprintf(out, "d=%d, train=%d, test=%d, eps=%g, group size=%d, rounds=%d\n\n",
		d, len(train), len(test), eps, groupSize, rounds)

	ctx := context.Background()
	for i, ex := range train {
		_, ok, err := sgd.Contribute(ctx, ex.X, ex.YCls, rng.NewStream(seed, uint64(i)))
		if err != nil {
			return err
		}
		if !ok {
			break // training finished; remaining users have nothing to do
		}
	}

	state, err := sgd.FetchModel(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "trained %d rounds from %d accepted gradient reports (%d stale)\n",
		state.Round, state.Accepted, state.Stale)
	fmt.Fprintf(out, "  federated  (eps=%g) misclassification rate: %.4f\n",
		eps, erm.MisclassificationRate(state.Beta, test))

	// The in-process non-private baseline for comparison.
	cfg := erm.Config{Task: erm.LogisticRegression, Lambda: lambda, Eta: eta, GroupSize: groupSize}
	beta, err := erm.Train(cfg, train, nil, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  non-private baseline misclassification rate: %.4f\n",
		erm.MisclassificationRate(beta, test))
	return nil
}
