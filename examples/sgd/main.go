// SGD: train a logistic-regression income classifier under eps-local
// differential privacy (the paper's Section V case study). Each user
// contributes one clipped, randomized gradient; the aggregator never sees
// raw features or labels.
//
//	go run ./examples/sgd
package main

import (
	"fmt"
	"log"

	"ldp"
	"ldp/internal/dataset"
	"ldp/internal/erm"
	"ldp/internal/mech"
)

func main() {
	const (
		eps   = 2.0
		users = 30000
		seed  = 11
	)
	census := dataset.NewBR()
	examples := census.ERMExamples(users, seed)
	d := census.ERMDim()

	train, test := examples[:users*9/10], examples[users*9/10:]
	cfg := erm.Config{
		Task:      erm.LogisticRegression,
		Lambda:    1e-4,
		Eta:       1.0,
		GroupSize: erm.DefaultGroupSize(len(train), d, eps),
	}
	fmt.Printf("logistic regression on BR-like census: d=%d, train=%d, test=%d\n",
		d, len(train), len(test))
	fmt.Printf("eps=%g, group size=%d (%d SGD iterations)\n\n",
		eps, cfg.GroupSize, len(train)/cfg.GroupSize)

	run := func(name string, pert mech.VectorPerturber) {
		beta, err := erm.Train(cfg, train, pert, seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s misclassification rate: %.4f\n",
			name, erm.MisclassificationRate(beta, test))
	}

	run("non-private", nil)

	hm, err := ldp.NewNumericCollector(ldp.HM, eps, d)
	if err != nil {
		log.Fatal(err)
	}
	run("hm (eps=2)", hm)

	pm, err := ldp.NewNumericCollector(ldp.PM, eps, d)
	if err != nil {
		log.Fatal(err)
	}
	run("pm (eps=2)", pm)

	du, err := ldp.NewDuchiMulti(eps, d)
	if err != nil {
		log.Fatal(err)
	}
	run("duchi", du)
}
