// Quickstart: estimate the mean of one sensitive numeric attribute under
// eps-local differential privacy with the Piecewise Mechanism.
//
// Every user holds a private value in [-1, 1], perturbs it locally, and
// submits only the noisy version; the aggregator averages the submissions.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"math"
	"os"

	"ldp"
)

func main() {
	if err := run(100_000, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(users int, out io.Writer) error {
	const eps = 1.0 // privacy budget

	mechanism, err := ldp.NewPiecewise(eps)
	if err != nil {
		return err
	}

	// Simulate a population whose private values are skewed toward small
	// magnitudes (e.g. normalized incomes).
	var trueSum, noisySum float64
	for i := 0; i < users; i++ {
		r := ldp.NewRandStream(42, uint64(i))
		private := math.Tanh(r.NormFloat64() * 0.3) // in (-1, 1)

		// Everything above happens on the user's device; only `report`
		// is ever transmitted.
		report := mechanism.Perturb(private, r)

		trueSum += private
		noisySum += report
	}

	trueMean := trueSum / float64(users)
	estimate := noisySum / float64(users)
	fmt.Fprintf(out, "mechanism:        %s (eps=%g)\n", mechanism.Name(), eps)
	fmt.Fprintf(out, "output range:     [-%.4f, %.4f]\n", mechanism.SupportBound(), mechanism.SupportBound())
	fmt.Fprintf(out, "true mean:        %+.6f\n", trueMean)
	fmt.Fprintf(out, "LDP estimate:     %+.6f\n", estimate)
	fmt.Fprintf(out, "absolute error:   %.6f\n", math.Abs(estimate-trueMean))
	fmt.Fprintf(out, "stddev predicted: %.6f (sqrt(worst-case var / n))\n",
		math.Sqrt(mechanism.WorstCaseVariance()/float64(users)))
	return nil
}
