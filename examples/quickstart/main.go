// Quickstart: estimate the mean of one sensitive numeric attribute under
// eps-local differential privacy with the unified pipeline.
//
// Every user holds a private value in [-1, 1], randomizes it locally
// through the pipeline, and submits only the noisy report; the aggregator
// folds the reports in and answers the mean query.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"math"
	"os"

	"ldp"
)

func main() {
	if err := run(100_000, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(users int, out io.Writer) error {
	const eps = 1.0 // privacy budget

	sch, err := ldp.NewSchema(ldp.Attribute{Name: "income", Kind: ldp.Numeric})
	if err != nil {
		return err
	}
	// One numeric attribute -> the pipeline registers a single mean task
	// using the Hybrid Mechanism at the full budget.
	p, err := ldp.New(sch, eps)
	if err != nil {
		return err
	}

	// Simulate a population whose private values are skewed toward small
	// magnitudes (e.g. normalized incomes).
	var trueSum float64
	for i := 0; i < users; i++ {
		r := ldp.NewRandStream(42, uint64(i))
		tup := ldp.NewTuple(sch)
		tup.Num[0] = math.Tanh(r.NormFloat64() * 0.3) // in (-1, 1)
		trueSum += tup.Num[0]

		// Everything above happens on the user's device; only `rep` is
		// ever transmitted.
		rep, err := p.Randomize(tup, r)
		if err != nil {
			return err
		}
		if err := p.Add(rep); err != nil {
			return err
		}
	}

	trueMean := trueSum / float64(users)
	res := p.Snapshot()
	estimate, err := res.Mean("income")
	if err != nil {
		return err
	}
	mt := p.MeanTask()
	fmt.Fprintf(out, "mechanism:        %s (eps=%g)\n", mt.Mechanism().Name(), eps)
	fmt.Fprintf(out, "reports:          %d\n", res.N())
	fmt.Fprintf(out, "true mean:        %+.6f\n", trueMean)
	fmt.Fprintf(out, "LDP estimate:     %+.6f\n", estimate)
	fmt.Fprintf(out, "absolute error:   %.6f\n", math.Abs(estimate-trueMean))
	fmt.Fprintf(out, "stddev predicted: %.6f (sqrt(worst-case var / n))\n",
		math.Sqrt(mt.Mechanism().WorstCaseVariance()/float64(users)))
	return nil
}
