// Quickstart: estimate the mean of one sensitive numeric attribute under
// eps-local differential privacy with the Piecewise Mechanism.
//
// Every user holds a private value in [-1, 1], perturbs it locally, and
// submits only the noisy version; the aggregator averages the submissions.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"ldp"
)

func main() {
	const (
		eps   = 1.0    // privacy budget
		users = 100000 // population size
	)

	mechanism, err := ldp.NewPiecewise(eps)
	if err != nil {
		log.Fatal(err)
	}

	// Simulate a population whose private values are skewed toward small
	// magnitudes (e.g. normalized incomes).
	var trueSum, noisySum float64
	for i := 0; i < users; i++ {
		r := ldp.NewRandStream(42, uint64(i))
		private := math.Tanh(r.NormFloat64() * 0.3) // in (-1, 1)

		// Everything above happens on the user's device; only `report`
		// is ever transmitted.
		report := mechanism.Perturb(private, r)

		trueSum += private
		noisySum += report
	}

	trueMean := trueSum / users
	estimate := noisySum / users
	fmt.Printf("mechanism:        %s (eps=%g)\n", mechanism.Name(), eps)
	fmt.Printf("output range:     [-%.4f, %.4f]\n", mechanism.SupportBound(), mechanism.SupportBound())
	fmt.Printf("true mean:        %+.6f\n", trueMean)
	fmt.Printf("LDP estimate:     %+.6f\n", estimate)
	fmt.Printf("absolute error:   %.6f\n", math.Abs(estimate-trueMean))
	fmt.Printf("stddev predicted: %.6f (sqrt(worst-case var / n))\n",
		math.Sqrt(mechanism.WorstCaseVariance()/users))
}
