// Histogram: estimate the full income distribution (not just its mean)
// under eps-LDP, then answer quantile and range queries from the private
// histogram — and audit the Piecewise Mechanism's privacy guarantee
// empirically while we are at it.
//
//	go run ./examples/histogram
package main

import (
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"sort"

	"ldp"
	"ldp/internal/dataset"
)

func main() {
	if err := run(100_000, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(users int, out io.Writer) error {
	const (
		eps  = 1.0
		bins = 20
	)
	census := dataset.NewBR()
	incomeAttr := census.IncomeAttr()

	col, err := ldp.NewHistogramCollector(eps, bins, nil) // OUE inside
	if err != nil {
		return err
	}
	est := ldp.NewHistogramEstimator(col)

	var truth []float64
	for i := 0; i < users; i++ {
		r := ldp.NewRandStream(21, uint64(i))
		v := census.Tuple(r).Num[incomeAttr]
		truth = append(truth, v)
		est.Add(col.Perturb(v, r)) // only this leaves the device
	}
	sort.Float64s(truth)

	fmt.Fprintf(out, "income distribution from %d users at eps=%g (%d bins)\n\n", users, eps, bins)
	fmt.Fprintln(out, "bin      true    estimated")
	smoothed := est.Smoothed()
	for b := 0; b < bins; b++ {
		lo := -1 + 2*float64(b)/bins
		hi := lo + 2.0/bins
		trueMass := float64(sort.SearchFloat64s(truth, hi)-sort.SearchFloat64s(truth, lo)) / float64(users)
		bar := ""
		for i := 0; i < int(smoothed[b]*100); i++ {
			bar += "#"
		}
		fmt.Fprintf(out, "[%+.1f,%+.1f) %.4f  %.4f %s\n", lo, hi, trueMass, smoothed[b], bar)
	}

	fmt.Fprintln(out, "\nquantiles from the private histogram:")
	for _, q := range []float64{0.25, 0.5, 0.75, 0.9} {
		trueQ := truth[int(q*float64(users))]
		fmt.Fprintf(out, "  q=%.2f: true %+.3f, estimated %+.3f (err %.3f)\n",
			q, trueQ, est.Quantile(q), math.Abs(trueQ-est.Quantile(q)))
	}
	trueTop := float64(users-sort.SearchFloat64s(truth, 0)) / float64(users)
	fmt.Fprintf(out, "  P(income > 0): true %.4f, estimated %.4f\n\n", trueTop, est.RangeMass(0, 1))

	// Black-box privacy audit of the numeric mechanism used elsewhere.
	pm, err := ldp.NewPiecewise(eps)
	if err != nil {
		return err
	}
	res, err := ldp.Audit(pm, ldp.AuditConfig{Samples: 100000})
	if err != nil {
		return err
	}
	fmt.Fprintln(out, res)
	return nil
}
