// Pipeline: run the full client/server collection system on localhost —
// an aggregator with a crash-recoverable report log, and a population of
// clients that randomize locally and upload over HTTP. After collection,
// the aggregator's state is rebuilt from the log to demonstrate recovery.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"ldp"
	"ldp/internal/dataset"
	"ldp/internal/reportlog"
	"ldp/internal/transport"
)

func main() {
	if err := run(5000, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(users int, out io.Writer) error {
	const eps = 1.0
	census := dataset.NewMX()
	col, err := ldp.NewCollector(census.Schema(), eps, ldp.PM, ldp.OUE)
	if err != nil {
		return err
	}

	logDir, err := os.MkdirTemp("", "ldp-pipeline-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(logDir)
	sink, err := reportlog.Open(logDir, 4<<20)
	if err != nil {
		return err
	}

	// Aggregator on an ephemeral localhost port.
	agg := ldp.NewAggregator(col)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: ldp.NewServer(agg, sink)}
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	baseURL := "http://" + ln.Addr().String()
	fmt.Fprintf(out, "aggregator listening on %s (report log in %s)\n", baseURL, filepath.Base(logDir))

	// Clients: randomize locally, upload only perturbed frames.
	start := time.Now()
	client := ldp.NewClient(baseURL, col)
	for i := 0; i < users; i++ {
		r := ldp.NewRandStream(3, uint64(i))
		if err := client.SendTuple(census.Tuple(r), r); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "uploaded %d reports in %v\n", users, time.Since(start).Round(time.Millisecond))

	means := agg.MeanEstimates()
	fmt.Fprintf(out, "estimated mean age (normalized): %+.4f from n=%d reports\n", means[0], agg.N())

	if err := srv.Close(); err != nil {
		return err
	}
	if err := sink.Close(); err != nil {
		return err
	}

	// Simulate a restart: recover the log and rebuild the aggregator.
	if _, err := reportlog.Recover(logDir); err != nil {
		return err
	}
	fresh := ldp.NewAggregator(col)
	replayed, err := transport.Replay(fresh, func(fn func([]byte) error) error {
		_, err := reportlog.Replay(logDir, fn)
		return err
	})
	if err != nil {
		return err
	}
	freshMeans := fresh.MeanEstimates()
	fmt.Fprintf(out, "after restart: replayed %d reports, mean age %+.4f (identical: %v)\n",
		replayed, freshMeans[0], freshMeans[0] == means[0])
	return nil
}
