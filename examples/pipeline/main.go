// Pipeline: run the full client/server collection system on localhost —
// a unified aggregator with a crash-recoverable report log, and a
// population of clients that randomize locally and upload envelope frames
// in batches over HTTP. Queries are answered over the single /v1/query
// route; after collection, the aggregator's state is rebuilt from the log
// to demonstrate recovery.
//
//	go run ./examples/pipeline
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"ldp"
	"ldp/internal/dataset"
	"ldp/internal/reportlog"
)

func main() {
	if err := run(5000, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(users int, out io.Writer) error {
	const eps = 1.0
	census := dataset.NewMX()
	p, err := ldp.New(census.Schema(), eps, ldp.WithShards(4))
	if err != nil {
		return err
	}

	logDir, err := os.MkdirTemp("", "ldp-pipeline-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(logDir)
	sink, err := reportlog.Open(logDir, 4<<20)
	if err != nil {
		return err
	}

	// Aggregator on an ephemeral localhost port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: ldp.NewPipelineServer(p, sink)}
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	baseURL := "http://" + ln.Addr().String()
	fmt.Fprintf(out, "unified aggregator listening on %s (report log in %s)\n", baseURL, filepath.Base(logDir))

	// Clients: randomize locally, upload only perturbed frames, 100 per
	// batched request.
	ctx := context.Background()
	start := time.Now()
	client := ldp.NewPipelineClient(baseURL, p, ldp.WithTimeout(10*time.Second))
	const batchSize = 100
	for lo := 0; lo < users; lo += batchSize {
		hi := lo + batchSize
		if hi > users {
			hi = users
		}
		// The randomization stream lives in a disjoint index space (high
		// bit set) so privacy noise is independent of the tuple streams.
		r := ldp.NewRandStream(3, 1<<63|uint64(lo))
		batch := make([]ldp.Tuple, 0, hi-lo)
		for i := lo; i < hi; i++ {
			batch = append(batch, census.Tuple(ldp.NewRandStream(3, uint64(i))))
		}
		if err := client.SendBatch(ctx, batch, r); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "uploaded %d reports in %v\n", users, time.Since(start).Round(time.Millisecond))

	// Query over HTTP: the one route answers every kind.
	var stats struct {
		N     int64            `json:"n"`
		Tasks map[string]int64 `json:"tasks"`
	}
	if err := getJSON(baseURL+"/v1/query?kind=stats", &stats); err != nil {
		return err
	}
	var ageMean struct {
		Mean float64 `json:"mean"`
	}
	if err := getJSON(baseURL+"/v1/query?kind=mean&attr="+census.Schema().Attrs[0].Name, &ageMean); err != nil {
		return err
	}
	fmt.Fprintf(out, "estimated mean age (normalized): %+.4f from n=%d reports (tasks: %v)\n",
		ageMean.Mean, stats.N, stats.Tasks)

	if err := srv.Close(); err != nil {
		return err
	}
	if err := sink.Close(); err != nil {
		return err
	}

	// Simulate a restart: recover the log and rebuild the pipeline.
	if _, err := reportlog.Recover(logDir); err != nil {
		return err
	}
	fresh, err := ldp.New(census.Schema(), eps, ldp.WithShards(4))
	if err != nil {
		return err
	}
	replayed, err := ldp.ReplayPipeline(fresh, func(fn func([]byte) error) error {
		_, err := reportlog.Replay(logDir, fn)
		return err
	})
	if err != nil {
		return err
	}
	freshMean, err := fresh.Snapshot().Mean(census.Schema().Attrs[0].Name)
	if err != nil {
		return err
	}
	// Batch replay partitions reports across shards differently from the
	// live ingest, so the float sums may differ by a few ulps.
	fmt.Fprintf(out, "after restart: replayed %d reports, mean age %+.4f (agrees to 1e-12: %v)\n",
		replayed, freshMean, math.Abs(freshMean-ageMean.Mean) <= 1e-12)
	return nil
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, msg)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
