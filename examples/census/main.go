// Census: collect a multidimensional census-like population (numeric and
// categorical attributes) through the unified pipeline and compare the
// resulting mean and frequency estimates against the ground truth and
// against the naive budget-splitting baseline.
//
// Each user is routed to either the mean task (Algorithm 4 over the
// numeric attributes, HM at the full budget) or the frequency task (OUE
// over the categorical attributes); the aggregator answers both query
// kinds from the one report stream.
//
//	go run ./examples/census
package main

import (
	"fmt"
	"io"
	"log"
	"math"
	"os"

	"ldp"
	"ldp/internal/dataset"
)

func main() {
	if err := run(50_000, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(users int, out io.Writer) error {
	const eps = 1.0
	census := dataset.NewBR()
	sch := census.Schema()

	// The proposed pipeline: HM for the mean task, OUE for the freq task.
	p, err := ldp.New(sch, eps, ldp.WithMechanism(ldp.HM), ldp.WithOracle(ldp.OUE))
	if err != nil {
		return err
	}

	// Baseline: every attribute perturbed independently at eps/d.
	base, err := ldp.NewLaplace(eps / float64(sch.Dim()))
	if err != nil {
		return err
	}

	numIdx := sch.NumericIdx()
	truth := make([]float64, len(numIdx))
	baseSum := make([]float64, len(numIdx))
	const genderAttr = 6
	genderCounts := make([]float64, sch.Attrs[genderAttr].Cardinality)

	for i := 0; i < users; i++ {
		r := ldp.NewRandStream(7, uint64(i))
		tup := census.Tuple(r)
		for j, a := range numIdx {
			truth[j] += tup.Num[a]
			baseSum[j] += base.Perturb(tup.Num[a], r)
		}
		genderCounts[tup.Cat[genderAttr]]++

		rep, err := p.Randomize(tup, r)
		if err != nil {
			return err
		}
		if err := p.Add(rep); err != nil {
			return err
		}
	}
	res := p.Snapshot()

	fmt.Fprintf(out, "BR-like census, %d users, eps=%g, d=%d (tasks: mean k=%d, freq k=%d)\n\n",
		users, eps, sch.Dim(), p.MeanTask().K(), p.FreqTask().K())
	fmt.Fprintln(out, "numeric attribute means:")
	fmt.Fprintf(out, "  %-10s %10s %12s %12s\n", "attribute", "truth", "pipeline", "split-laplace")
	var mseAlg, mseBase float64
	for j, a := range numIdx {
		tm := truth[j] / float64(users)
		bm := baseSum[j] / float64(users)
		est, err := res.Mean(sch.Attrs[a].Name)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  %-10s %+10.4f %+12.4f %+12.4f\n", sch.Attrs[a].Name, tm, est, bm)
		mseAlg += (est - tm) * (est - tm)
		mseBase += (bm - tm) * (bm - tm)
	}
	fmt.Fprintf(out, "\n  MSE: pipeline %.3e  vs  split-laplace %.3e  (%.1fx better)\n\n",
		mseAlg/float64(len(numIdx)), mseBase/float64(len(numIdx)), mseBase/mseAlg)

	freqs, err := res.Freq(sch.Attrs[genderAttr].Name)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "gender frequencies:")
	for v, f := range freqs {
		tf := genderCounts[v] / float64(users)
		fmt.Fprintf(out, "  value %d: truth %.4f, estimate %.4f (err %.4f)\n", v, tf, f, math.Abs(f-tf))
	}
	return nil
}
