// Census: collect a multidimensional census-like population (numeric and
// categorical attributes) with the paper's Algorithm 4 and compare the
// resulting mean and frequency estimates against the ground truth and
// against the naive budget-splitting baseline.
//
//	go run ./examples/census
package main

import (
	"fmt"
	"io"
	"log"
	"math"
	"os"

	"ldp"
	"ldp/internal/dataset"
)

func main() {
	if err := run(50_000, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(users int, out io.Writer) error {
	const eps = 1.0
	census := dataset.NewBR()
	sch := census.Schema()

	// The proposed pipeline: Algorithm 4 with HM for numeric attributes
	// and OUE for categorical ones.
	col, err := ldp.NewCollector(sch, eps, ldp.HM, ldp.OUE)
	if err != nil {
		return err
	}
	agg := ldp.NewAggregator(col)

	// Baseline: every attribute perturbed independently at eps/d.
	base, err := ldp.NewLaplace(eps / float64(sch.Dim()))
	if err != nil {
		return err
	}

	numIdx := sch.NumericIdx()
	truth := make([]float64, len(numIdx))
	baseSum := make([]float64, len(numIdx))
	genderCounts := make([]float64, sch.Attrs[6].Cardinality) // "gender"

	for i := 0; i < users; i++ {
		r := ldp.NewRandStream(7, uint64(i))
		tup := census.Tuple(r)
		for j, a := range numIdx {
			truth[j] += tup.Num[a]
			baseSum[j] += base.Perturb(tup.Num[a], r)
		}
		genderCounts[tup.Cat[6]]++

		rep, err := col.Perturb(tup, r)
		if err != nil {
			return err
		}
		if err := agg.Add(rep); err != nil {
			return err
		}
	}

	fmt.Fprintf(out, "BR-like census, %d users, eps=%g, d=%d (k=%d attributes reported per user)\n\n",
		users, eps, sch.Dim(), col.K())
	fmt.Fprintln(out, "numeric attribute means:")
	fmt.Fprintf(out, "  %-10s %10s %12s %12s\n", "attribute", "truth", "algorithm4", "split-laplace")
	means := agg.MeanEstimates()
	var mseAlg, mseBase float64
	for j, a := range numIdx {
		tm := truth[j] / float64(users)
		bm := baseSum[j] / float64(users)
		fmt.Fprintf(out, "  %-10s %+10.4f %+12.4f %+12.4f\n", sch.Attrs[a].Name, tm, means[j], bm)
		mseAlg += (means[j] - tm) * (means[j] - tm)
		mseBase += (bm - tm) * (bm - tm)
	}
	fmt.Fprintf(out, "\n  MSE: algorithm4 %.3e  vs  split-laplace %.3e  (%.1fx better)\n\n",
		mseAlg/float64(len(numIdx)), mseBase/float64(len(numIdx)), mseBase/mseAlg)

	freqs, err := agg.FreqEstimates(6)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "gender frequencies:")
	for v, f := range freqs {
		tf := genderCounts[v] / float64(users)
		fmt.Fprintf(out, "  value %d: truth %.4f, estimate %.4f (err %.4f)\n", v, tf, f, math.Abs(f-tf))
	}
	return nil
}
