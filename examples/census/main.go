// Census: collect a multidimensional census-like population (numeric and
// categorical attributes) with the paper's Algorithm 4 and compare the
// resulting mean and frequency estimates against the ground truth and
// against the naive budget-splitting baseline.
//
//	go run ./examples/census
package main

import (
	"fmt"
	"log"
	"math"

	"ldp"
	"ldp/internal/dataset"
)

func main() {
	const (
		eps   = 1.0
		users = 50000
	)
	census := dataset.NewBR()
	sch := census.Schema()

	// The proposed pipeline: Algorithm 4 with HM for numeric attributes
	// and OUE for categorical ones.
	col, err := ldp.NewCollector(sch, eps, ldp.HM, ldp.OUE)
	if err != nil {
		log.Fatal(err)
	}
	agg := ldp.NewAggregator(col)

	// Baseline: every attribute perturbed independently at eps/d.
	base, err := ldp.NewLaplace(eps / float64(sch.Dim()))
	if err != nil {
		log.Fatal(err)
	}

	numIdx := sch.NumericIdx()
	truth := make([]float64, len(numIdx))
	baseSum := make([]float64, len(numIdx))
	genderCounts := make([]float64, sch.Attrs[6].Cardinality) // "gender"

	for i := 0; i < users; i++ {
		r := ldp.NewRandStream(7, uint64(i))
		tup := census.Tuple(r)
		for j, a := range numIdx {
			truth[j] += tup.Num[a]
			baseSum[j] += base.Perturb(tup.Num[a], r)
		}
		genderCounts[tup.Cat[6]]++

		rep, err := col.Perturb(tup, r)
		if err != nil {
			log.Fatal(err)
		}
		if err := agg.Add(rep); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("BR-like census, %d users, eps=%g, d=%d (k=%d attributes reported per user)\n\n",
		users, eps, sch.Dim(), col.K())
	fmt.Println("numeric attribute means:")
	fmt.Printf("  %-10s %10s %12s %12s\n", "attribute", "truth", "algorithm4", "split-laplace")
	means := agg.MeanEstimates()
	var mseAlg, mseBase float64
	for j, a := range numIdx {
		tm := truth[j] / users
		bm := baseSum[j] / users
		fmt.Printf("  %-10s %+10.4f %+12.4f %+12.4f\n", sch.Attrs[a].Name, tm, means[j], bm)
		mseAlg += (means[j] - tm) * (means[j] - tm)
		mseBase += (bm - tm) * (bm - tm)
	}
	fmt.Printf("\n  MSE: algorithm4 %.3e  vs  split-laplace %.3e  (%.1fx better)\n\n",
		mseAlg/float64(len(numIdx)), mseBase/float64(len(numIdx)), mseBase/mseAlg)

	freqs, err := agg.FreqEstimates(6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("gender frequencies:")
	for v, f := range freqs {
		tf := genderCounts[v] / users
		fmt.Printf("  value %d: truth %.4f, estimate %.4f (err %.4f)\n", v, tf, f, math.Abs(f-tf))
	}
}
