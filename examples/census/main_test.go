package main

import (
	"io"
	"testing"
)

// TestSmoke runs the demo end to end with a tiny population so the
// example cannot rot silently.
func TestSmoke(t *testing.T) {
	if err := run(300, io.Discard); err != nil {
		t.Fatal(err)
	}
}
