// Audit: black-box check a randomizer's eps-LDP claim from its outputs
// alone. The auditor feeds the mechanism a grid of input pairs, bins
// the outputs, and bounds every binned likelihood ratio with exact
// one-sided Clopper-Pearson confidence intervals: if the lower
// confidence bound on any log-ratio exceeds the claimed eps, the claim
// is statistically refuted. The demo audits honest mechanisms (which
// must pass) and two deliberately broken ones (which must be caught):
// a Piecewise Mechanism that spends 8x the budget it claims, and a GRR
// oracle whose flip probabilities are skewed toward the true value.
//
//	go run ./examples/audit
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"ldp"
	"ldp/internal/audit"
	"ldp/internal/freq"
)

func main() {
	if err := run(60_000, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(samples int, out io.Writer) error {
	const eps = 1.0
	cfg := func(seed uint64) audit.Config {
		return audit.Config{Samples: samples, Seed: seed}
	}

	fmt.Fprintf(out, "black-box eps-LDP audit at claimed eps=%g, %d samples per probe\n\n", eps, samples)

	// 1. Honest Piecewise Mechanism: the audit must stay consistent and
	// its empirical-eps lower bound must sit at or below the claim.
	pm, err := ldp.NewPiecewise(eps)
	if err != nil {
		return err
	}
	res, err := ldp.Audit(pm, cfg(1))
	if err != nil {
		return err
	}
	fmt.Fprintln(out, res)
	if res.Violated {
		return fmt.Errorf("honest PM flagged: %s", res)
	}

	// 2. Honest OUE frequency oracle, binned per output symbol.
	oue, err := freq.NewOUE(eps, 8)
	if err != nil {
		return err
	}
	res, err = audit.Oracle(oue, nil, cfg(2))
	if err != nil {
		return err
	}
	fmt.Fprintln(out, res)
	if res.Violated {
		return fmt.Errorf("honest OUE flagged: %s", res)
	}

	// 3. A Piecewise Mechanism spending 8x its claimed budget. The audit
	// must refute the claim.
	spend, err := ldp.NewPiecewise(8 * eps)
	if err != nil {
		return err
	}
	res, err = ldp.Audit(audit.Overclaim(spend, eps), cfg(3))
	if err != nil {
		return err
	}
	fmt.Fprintln(out, res)
	if !res.Violated {
		return fmt.Errorf("overclaiming PM not caught: %s", res)
	}

	// 4. A GRR oracle that reports the true value far too often while
	// claiming honest flip probabilities.
	skewed, err := audit.NewSkewedGRR(eps, 8, 0.9)
	if err != nil {
		return err
	}
	res, err = audit.Oracle(skewed, nil, cfg(4))
	if err != nil {
		return err
	}
	fmt.Fprintln(out, res)
	if !res.Violated {
		return fmt.Errorf("skewed GRR not caught: %s", res)
	}

	fmt.Fprintln(out, "\nhonest mechanisms pass, broken ones are refuted.")
	return nil
}
