package main

import (
	"io"
	"testing"
)

// TestSmoke runs the demo end to end at a reduced sample count so the
// example cannot rot silently. run is self-checking: it errors if an
// honest mechanism is flagged or a broken one slips through.
func TestSmoke(t *testing.T) {
	if err := run(6_000, io.Discard); err != nil {
		t.Fatal(err)
	}
}
