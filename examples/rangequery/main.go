// Rangequery: answer analytics questions like "what fraction of users
// have age in [30, 40] AND income in the top band?" under eps-LDP,
// without the aggregator ever seeing a raw record.
//
// The unified pipeline routes every user to the range task (the mean
// task's routing weight is set to zero): each user answers exactly one
// randomized sub-task — a dyadic interval of one attribute at a sampled
// depth of the interval hierarchy (serving 1-D range queries), or one
// cell of a coarse 2-D grid over an attribute pair (serving conjunctive
// range queries).
//
//	go run ./examples/rangequery
package main

import (
	"fmt"
	"io"
	"log"
	"math"
	"os"

	"ldp"
)

// The demo population: age and income, both normalized into [-1, 1]
// (age 0..100 -> [-1,1], income in arbitrary units). Age is bimodal,
// income is correlated with age.
func sample(r *ldp.Rand) (age, income float64) {
	if r.Float64() < 0.6 {
		age = clamp(-0.3 + 0.25*r.NormFloat64())
	} else {
		age = clamp(0.45 + 0.2*r.NormFloat64())
	}
	income = clamp(0.4*age + 0.1 + 0.3*r.NormFloat64())
	return age, income
}

func clamp(v float64) float64 { return math.Max(-1, math.Min(1, v)) }

// ageToUnit maps years to the normalized domain.
func ageToUnit(years float64) float64 { return years/50 - 1 }

func main() {
	if err := run(300_000, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(users int, out io.Writer) error {
	const eps = 1.0

	sch, err := ldp.NewSchema(
		ldp.Attribute{Name: "age", Kind: ldp.Numeric},
		ldp.Attribute{Name: "income", Kind: ldp.Numeric},
	)
	if err != nil {
		return err
	}
	p, err := ldp.New(sch, eps,
		ldp.WithRange(ldp.RangeConfig{Buckets: 256, GridCells: 8}),
		ldp.WithTaskWeight(ldp.TaskMean, 0), // this demo only answers ranges
	)
	if err != nil {
		return err
	}

	type rec struct{ age, income float64 }
	population := make([]rec, users)
	for i := range population {
		r := ldp.NewRandStream(29, uint64(i))
		age, income := sample(r)
		population[i] = rec{age, income}

		tup := ldp.NewTuple(sch)
		tup.Num[0], tup.Num[1] = age, income
		// Everything above stays on the device; only the report leaves.
		rep, err := p.Randomize(tup, r)
		if err != nil {
			return err
		}
		if err := p.Add(rep); err != nil {
			return err
		}
	}
	res := p.Snapshot()

	rt := p.RangeTask().Collector()
	fmt.Fprintf(out, "range queries over %d users at eps=%g (B=%d buckets, %dx%d grids)\n\n",
		users, eps, rt.Hierarchy().Buckets(), rt.Grid().Cells(), rt.Grid().Cells())

	fmt.Fprintln(out, "1-D: fraction of users by age band")
	fmt.Fprintf(out, "  %-14s %9s %9s %7s\n", "age band", "truth", "estimate", "err")
	for _, band := range [][2]float64{{20, 35}, {30, 40}, {40, 65}, {65, 100}} {
		lo, hi := ageToUnit(band[0]), ageToUnit(band[1])
		truth := 0.0
		for _, p := range population {
			if p.age >= lo && p.age <= hi {
				truth++
			}
		}
		truth /= float64(users)
		est, err := res.Range(ldp.RangeQuery{Attr: "age", Lo: lo, Hi: hi})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  [%3.0f, %3.0f]     %9.4f %9.4f %7.4f\n",
			band[0], band[1], truth, est, math.Abs(est-truth))
	}

	fmt.Fprintln(out, "\n2-D: age band AND income band (conjunctive ranges from the grid)")
	fmt.Fprintf(out, "  %-32s %9s %9s %7s\n", "query", "truth", "estimate", "err")
	queries := []struct {
		name                   string
		aLo, aHi, incLo, incHi float64
	}{
		{"age 30-40 & income [0.2,0.6]", ageToUnit(30), ageToUnit(40), 0.2, 0.6},
		{"age 20-35 & income [-0.2,0.2]", ageToUnit(20), ageToUnit(35), -0.2, 0.2},
		{"age 65-100 & income [0.5,1]", ageToUnit(65), ageToUnit(100), 0.5, 1},
	}
	for _, q := range queries {
		truth := 0.0
		for _, p := range population {
			if p.age >= q.aLo && p.age <= q.aHi && p.income >= q.incLo && p.income <= q.incHi {
				truth++
			}
		}
		truth /= float64(users)
		est, err := res.Range(ldp.RangeQuery{
			Attr: "age", Lo: q.aLo, Hi: q.aHi,
			Attr2: "income", Lo2: q.incLo, Hi2: q.incHi,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  %-32s %9.4f %9.4f %7.4f\n", q.name, truth, est, math.Abs(est-truth))
	}
	return nil
}
