package ldp

import (
	"ldp/internal/core"
	"ldp/internal/duchi"
	"ldp/internal/erm"
	"ldp/internal/freq"
	"ldp/internal/mathx"
	"ldp/internal/mech"
	"ldp/internal/noise"
	"ldp/internal/rangequery"
	"ldp/internal/rng"
	"ldp/internal/schema"
	"ldp/internal/transport"
)

// Randomness. A Rand must not be shared across goroutines.
type Rand = rng.Rand

// NewRand returns a seeded PRNG.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// NewRandStream returns an independent PRNG for stream i under a base seed
// (use one stream per user for reproducible simulations).
func NewRandStream(seed, i uint64) *Rand { return rng.NewStream(seed, i) }

// Core interfaces.
type (
	// Mechanism perturbs one numeric value in [-1, 1] under eps-LDP.
	Mechanism = mech.Mechanism
	// VectorPerturber perturbs a numeric tuple in [-1, 1]^d under
	// eps-LDP for the whole tuple.
	VectorPerturber = mech.VectorPerturber
	// MechanismFactory builds a Mechanism for a given budget.
	MechanismFactory = mech.Factory
	// FrequencyOracle perturbs one categorical value under eps-LDP.
	FrequencyOracle = freq.Oracle
	// OracleFactory builds a FrequencyOracle for a budget and domain size.
	OracleFactory = freq.Factory
)

// Schema types.
type (
	// Schema describes the attributes of a user record.
	Schema = schema.Schema
	// Attribute is one column of a record.
	Attribute = schema.Attribute
	// Tuple is one user's record under a schema.
	Tuple = schema.Tuple
)

// Attribute kinds.
const (
	// Numeric attributes take values in [-1, 1].
	Numeric = schema.Numeric
	// Categorical attributes take values in {0..Cardinality-1}.
	Categorical = schema.Categorical
)

// NewSchema validates and constructs a schema.
func NewSchema(attrs ...Attribute) (*Schema, error) { return schema.New(attrs...) }

// NewTuple allocates an all-zero tuple for a schema.
func NewTuple(s *Schema) Tuple { return schema.NewTuple(s) }

// Mechanism implementations.
type (
	// Piecewise is the paper's Piecewise Mechanism (Algorithm 2).
	Piecewise = core.Piecewise
	// Hybrid is the paper's Hybrid Mechanism (Section III-C).
	Hybrid = core.Hybrid
	// Duchi is Duchi et al.'s one-dimensional mechanism (Algorithm 1).
	Duchi = duchi.OneDim
	// DuchiMulti is Duchi et al.'s multidimensional mechanism
	// (Algorithm 3).
	DuchiMulti = duchi.Multi
	// Laplace is the classic Laplace mechanism with sensitivity 2.
	Laplace = noise.Laplace
	// SCDF is Soria-Comas and Domingo-Ferrer's piecewise-constant noise.
	SCDF = noise.SCDF
	// Staircase is Geng et al.'s staircase mechanism.
	Staircase = noise.Staircase
)

// NewPiecewise constructs the Piecewise Mechanism for budget eps.
func NewPiecewise(eps float64) (*Piecewise, error) { return core.NewPiecewise(eps) }

// NewHybrid constructs the Hybrid Mechanism with the optimal Eq. 7 alpha.
func NewHybrid(eps float64) (*Hybrid, error) { return core.NewHybrid(eps) }

// NewHybridAlpha constructs a Hybrid Mechanism with an explicit mixing
// coefficient (for ablation; NewHybrid is the paper's mechanism).
func NewHybridAlpha(eps, alpha float64) (*Hybrid, error) { return core.NewHybridAlpha(eps, alpha) }

// NewDuchi constructs Duchi et al.'s one-dimensional mechanism.
func NewDuchi(eps float64) (*Duchi, error) { return duchi.NewOneDim(eps) }

// NewDuchiMulti constructs Duchi et al.'s multidimensional mechanism for
// dimension d.
func NewDuchiMulti(eps float64, d int) (*DuchiMulti, error) { return duchi.NewMulti(eps, d) }

// NewLaplace constructs the Laplace mechanism for domain [-1, 1].
func NewLaplace(eps float64) (*Laplace, error) { return noise.NewLaplace(eps) }

// NewSCDF constructs the SCDF mechanism.
func NewSCDF(eps float64) (*SCDF, error) { return noise.NewSCDF(eps) }

// NewStaircase constructs the staircase mechanism.
func NewStaircase(eps float64) (*Staircase, error) { return noise.NewStaircase(eps) }

// Mechanism factories for use with NewCollector and NewNumericCollector.
var (
	// PM builds Piecewise Mechanisms.
	PM MechanismFactory = func(eps float64) (Mechanism, error) { return core.NewPiecewise(eps) }
	// HM builds Hybrid Mechanisms.
	HM MechanismFactory = func(eps float64) (Mechanism, error) { return core.NewHybrid(eps) }
	// OUE builds optimized-unary-encoding frequency oracles.
	OUE OracleFactory = func(eps float64, k int) (FrequencyOracle, error) { return freq.NewOUE(eps, k) }
	// GRR builds generalized-randomized-response oracles.
	GRR OracleFactory = func(eps float64, k int) (FrequencyOracle, error) { return freq.NewGRR(eps, k) }
	// SUE builds symmetric-unary-encoding (basic RAPPOR) oracles.
	SUE OracleFactory = func(eps float64, k int) (FrequencyOracle, error) { return freq.NewSUE(eps, k) }
)

// Multidimensional collection (the paper's Algorithm 4 and Section IV-C).
//
// The Collector/Aggregator pair is the legacy two-stack API; new code
// should build a Pipeline (see New), which serves mean, frequency, and
// range queries from one report stream. The legacy types remain as thin
// shims: their reports still decode (DecodeReport returns them as
// TaskJoint) and still fold into a Pipeline's aggregate state.
type (
	// Collector randomizes mixed numeric/categorical tuples.
	//
	// Deprecated: build a Pipeline with New instead.
	Collector = core.Collector
	// NumericCollector randomizes purely numeric tuples (Algorithm 4);
	// it remains the building block for the ERM/SGD subsystem.
	NumericCollector = core.NumericCollector
	// Aggregator estimates means and frequencies from legacy reports.
	//
	// Deprecated: use Pipeline.Add and Pipeline.Snapshot instead.
	Aggregator = core.Aggregator
	// CollectorReport is one user's randomized submission under the
	// legacy mixed-schema Collector.
	//
	// Deprecated: the unified submission type is Report.
	CollectorReport = core.Report
)

// NewCollector builds the mixed-schema collector: numeric attributes are
// perturbed with numFactory (PM or HM) and categorical attributes with
// oracleFactory (usually OUE), each at budget eps/k with
// k = max(1, min(d, floor(eps/2.5))).
//
// Deprecated: build a Pipeline with New instead; it routes each user to a
// mean, frequency, or range task at the full budget eps.
func NewCollector(s *Schema, eps float64, numFactory MechanismFactory, oracleFactory OracleFactory) (*Collector, error) {
	return core.NewCollector(s, eps, numFactory, oracleFactory)
}

// NewNumericCollector builds the numeric-only collector (Algorithm 4).
func NewNumericCollector(factory MechanismFactory, eps float64, d int) (*NumericCollector, error) {
	return core.NewNumericCollector(factory, eps, d)
}

// NewAggregator builds the aggregator matching a collector's configuration.
//
// Deprecated: use a Pipeline; it aggregates every task's reports into one
// sharded state.
func NewAggregator(c *Collector) *Aggregator { return core.NewAggregator(c) }

// KFor returns the paper's Eq. 12 sampling parameter
// k = max(1, min(d, floor(eps/2.5))).
func KFor(eps float64, d int) int { return core.KFor(eps, d) }

// EpsStar returns the paper's eps* constant (~0.61, Eq. 6), below which the
// Hybrid Mechanism reduces to Duchi et al.'s method.
func EpsStar() float64 { return mathx.EpsStar() }

// EpsSharp returns the paper's eps# constant (~1.29), where the worst-case
// variances of PM and Duchi et al.'s method cross.
func EpsSharp() float64 { return mathx.EpsSharp() }

// Stochastic gradient descent under LDP (Section V).
type (
	// SGDTask selects the ERM loss.
	SGDTask = erm.Task
	// SGDConfig parameterizes training.
	SGDConfig = erm.Config
)

// ERM task constants.
const (
	// LinearRegression uses squared loss.
	LinearRegression = erm.LinearRegression
	// LogisticRegression uses logistic loss.
	LogisticRegression = erm.LogisticRegression
	// SVM uses hinge loss.
	SVM = erm.SVM
)

// Legacy collection pipeline (HTTP aggregation service for the two-stack
// API; the unified service is PipelineServer/PipelineClient).
type (
	// Server is the legacy aggregator HTTP front end.
	//
	// Deprecated: use NewPipelineServer, which serves every task on one
	// /v1/report + /v1/query route pair.
	Server = transport.Server
	// Client randomizes locally and submits legacy reports over HTTP.
	//
	// Deprecated: use NewPipelineClient, which supports contexts and
	// batch submission.
	Client = transport.Client
)

// NewServer wraps an aggregator in an HTTP handler; sink (optional, may be
// nil) receives every accepted raw frame for persistence.
//
// Deprecated: use NewPipelineServer.
func NewServer(agg *Aggregator, sink transport.Sink) *Server { return transport.NewServer(agg, sink) }

// NewClient builds an HTTP client submitting through the given collector.
// Options configure the underlying HTTP behavior (WithHTTPClient,
// WithTimeout).
//
// Deprecated: use NewPipelineClient.
func NewClient(baseURL string, col *Collector, opts ...ClientOption) *Client {
	return transport.NewClient(baseURL, col, transport.ResolveClientOptions(opts))
}

// EncodeCollectorReport serializes a legacy report into its v1 binary
// wire frame.
//
// Deprecated: use EncodeReport, which writes the versioned envelope.
func EncodeCollectorReport(rep CollectorReport) []byte { return transport.EncodeReport(rep) }

// DecodeCollectorReport parses a legacy v1 binary wire frame.
//
// Deprecated: use DecodeReport, which also accepts legacy frames.
func DecodeCollectorReport(frame []byte) (CollectorReport, error) {
	return transport.DecodeReport(frame)
}

// Multi-dimensional range queries (hierarchical intervals + 2-D grids).
// The standalone range stack is legacy; new code registers a range task
// on the Pipeline with WithRange and queries Result.Range.
type (
	// RangeConfig tunes the range-query task (bucket count, grid
	// resolution, oracle choice, task split); it is shared by WithRange
	// and the legacy NewRangeCollector.
	RangeConfig = rangequery.Config
	// RangeCollector randomizes tuples into range reports: each user
	// answers one sub-task — a dyadic interval of one numeric attribute
	// at a sampled tree depth, or a grid cell of one attribute pair.
	//
	// Deprecated: build a Pipeline with New(s, eps, WithRange(cfg)).
	RangeCollector = rangequery.Collector
	// RangeAggregator estimates 1-D and 2-D range-query answers from
	// range reports.
	//
	// Deprecated: use Pipeline.Add and Result.Range instead.
	RangeAggregator = rangequery.Aggregator
	// RangeReport is one user's randomized range-query submission under
	// the legacy stack; the unified Report carries it as a TaskRange
	// payload.
	RangeReport = rangequery.Report
	// RangeService answers range queries over HTTP (see
	// Server.EnableRange).
	//
	// Deprecated: PipelineServer answers range queries on /v1/query.
	RangeService = transport.RangeService
	// RangeClient randomizes locally and submits range reports over
	// HTTP.
	//
	// Deprecated: use NewPipelineClient.
	RangeClient = transport.RangeClient
)

// NewRangeCollector builds the range-query collector over the numeric
// attributes of schema s at total per-user budget eps. The zero RangeConfig
// selects B=256 hierarchy buckets, g=8 grids and OUE.
//
// Deprecated: build a Pipeline with New(s, eps, WithRange(cfg)).
func NewRangeCollector(s *Schema, eps float64, cfg RangeConfig) (*RangeCollector, error) {
	return rangequery.NewCollector(s, eps, cfg)
}

// NewRangeAggregator builds the aggregator matching a range collector's
// configuration.
//
// Deprecated: use a Pipeline built with WithRange.
func NewRangeAggregator(c *RangeCollector) *RangeAggregator {
	return rangequery.NewAggregator(c)
}

// NewRangeClient builds an HTTP client submitting through the given range
// collector. Options configure the underlying HTTP behavior
// (WithHTTPClient, WithTimeout).
//
// Deprecated: use NewPipelineClient.
func NewRangeClient(baseURL string, col *RangeCollector, opts ...ClientOption) *RangeClient {
	return transport.NewRangeClient(baseURL, col, transport.ResolveClientOptions(opts))
}

// EncodeRangeReport serializes a range report into its legacy v1 binary
// wire frame.
//
// Deprecated: use EncodeReport with a TaskRange Report.
func EncodeRangeReport(rep RangeReport) []byte { return transport.EncodeRangeReport(rep) }

// DecodeRangeReport parses a legacy v1 binary range-report wire frame.
//
// Deprecated: use DecodeReport, which also accepts legacy range frames.
func DecodeRangeReport(frame []byte) (RangeReport, error) {
	return transport.DecodeRangeReport(frame)
}
