#!/usr/bin/env bash
# Fan-in smoke test against the real binaries: 1 root + 2 edges, with two
# disjoint simulated populations reporting to the two edges, which push
# their state to the root over /v1/merge (group-committed WALs on both
# edges). A single node ingests both populations directly. The root's
# merged view must agree with the single node: report counts exactly,
# mean and frequency estimates to float tolerance (the merge regroups
# floating-point sums, so the last bits may differ across topologies —
# bit-exactness under a fixed quantization grid is asserted by the unit
# tests; this exercises the shipped binaries and flags).
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pids=()
cleanup() {
	for pid in "${pids[@]}"; do kill "$pid" 2>/dev/null || true; done
	rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/ldpserver" ./cmd/ldpserver
go build -o "$tmp/ldpclient" ./cmd/ldpclient

ROOT=127.0.0.1:9461
EDGE1=127.0.0.1:9462
EDGE2=127.0.0.1:9463
SINGLE=127.0.0.1:9464
N=4000
COMMON=(-dataset br -eps 1 -range -shards 1)

"$tmp/ldpserver" -addr "$ROOT" -mode root "${COMMON[@]}" &
pids+=($!)
"$tmp/ldpserver" -addr "$EDGE1" -mode edge -edge-id edge-1 -push-to "http://$ROOT" \
	-push-interval 300ms -logdir "$tmp/wal1" -log-sync 50ms "${COMMON[@]}" &
pids+=($!)
"$tmp/ldpserver" -addr "$EDGE2" -mode edge -edge-id edge-2 -push-to "http://$ROOT" \
	-push-interval 300ms -logdir "$tmp/wal2" -log-sync 50ms "${COMMON[@]}" &
pids+=($!)
"$tmp/ldpserver" -addr "$SINGLE" "${COMMON[@]}" &
pids+=($!)

wait_ready() {
	for _ in $(seq 1 100); do
		if curl -sf "http://$1/v1/stats" >/dev/null 2>&1; then return 0; fi
		sleep 0.1
	done
	echo "server $1 never became ready" >&2
	return 1
}
for addr in "$ROOT" "$EDGE1" "$EDGE2" "$SINGLE"; do wait_ready "$addr"; done

# Disjoint populations: seed 1 to edge 1, seed 2 to edge 2; the single
# node ingests both. ldpclient derives every user's record and noise
# deterministically from the seed, so each server sees identical reports.
"$tmp/ldpclient" -addr "http://$EDGE1" -n "$N" -seed 1 -workers 2 -dataset br -eps 1 -range
"$tmp/ldpclient" -addr "http://$EDGE2" -n "$N" -seed 2 -workers 2 -dataset br -eps 1 -range
"$tmp/ldpclient" -addr "http://$SINGLE" -n "$N" -seed 1 -workers 2 -dataset br -eps 1 -range
"$tmp/ldpclient" -addr "http://$SINGLE" -n "$N" -seed 2 -workers 2 -dataset br -eps 1 -range

# Wait for both edges' pushes to land.
want=$((2 * N))
for _ in $(seq 1 100); do
	n=$(curl -s "http://$ROOT/v1/stats" | jq .n)
	if [ "$n" = "$want" ]; then break; fi
	sleep 0.2
done
if [ "$n" != "$want" ]; then
	echo "root merged n=$n, want $want (edge pushes never landed?)" >&2
	exit 1
fi
single_n=$(curl -s "http://$SINGLE/v1/stats" | jq .n)
if [ "$single_n" != "$want" ]; then
	echo "single-node n=$single_n, want $want" >&2
	exit 1
fi

# Merged estimates match the single node's.
close() { # $1=query-path $2=description
	a=$(curl -sf "http://$ROOT/v1/query?$1")
	b=$(curl -sf "http://$SINGLE/v1/query?$1")
	ok=$(jq -n --argjson a "$a" --argjson b "$b" '
		def absv: if . < 0 then -. else . end;
		def flat: [.. | numbers];
		($a | flat) as $x | ($b | flat) as $y
		| ($x | length) > 0 and ($x | length) == ($y | length)
		  and all(range($x | length); (($x[.] - $y[.]) | absv) < 1e-9)')
	if [ "$ok" != "true" ]; then
		echo "merged $2 diverged from single node:" >&2
		echo "  root:   $a" >&2
		echo "  single: $b" >&2
		exit 1
	fi
	echo "fanin smoke: $2 match"
}
close "kind=mean" "means"
close "kind=freq&attr=gender" "gender frequencies"
close "kind=range&attr=age&lo=-0.5&hi=0.5" "range mass"

# The root exposes the merge counters.
if ! curl -s "http://$ROOT/metrics" | grep -q '^ldp_cluster_merges_total{result="applied"} [1-9]'; then
	echo "root /metrics missing applied ldp_cluster_merges_total samples" >&2
	exit 1
fi

echo "fanin smoke: OK (root merged $want reports from 2 edges; estimates match single node)"
