#!/usr/bin/env bash
# Chaos smoke test against the real binaries: 1 root + 2 edges whose push
# paths run under deterministic fault injection (-push-chaos: drops,
# blackholed responses, 503s, latency, truncated bodies), group-committed
# WALs on both edges, and a SIGTERM + restart of one edge mid-run. A
# single node ingests the same two populations directly. Despite the
# chaos and the restart, the root must converge to exactly the same
# report count as the single node and to matching estimates — and the
# SIGTERM'd edge must exit cleanly (drain, final push, WAL commit).
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pids=()
cleanup() {
	for pid in "${pids[@]}"; do kill "$pid" 2>/dev/null || true; done
	rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/ldpserver" ./cmd/ldpserver
go build -o "$tmp/ldpclient" ./cmd/ldpclient

ROOT=127.0.0.1:9471
EDGE1=127.0.0.1:9472
EDGE2=127.0.0.1:9473
SINGLE=127.0.0.1:9474
N=3000
COMMON=(-dataset br -eps 1 -range -shards 1)
CHAOS='seed=7,drop=0.15,blackhole=0.1,err5xx=0.15,latency=0.1,partial=0.1,delay=20ms'

"$tmp/ldpserver" -addr "$ROOT" -mode root "${COMMON[@]}" &
pids+=($!)

start_edge1() {
	"$tmp/ldpserver" -addr "$EDGE1" -mode edge -edge-id edge-1 -push-to "http://$ROOT" \
		-push-interval 200ms -push-chaos "$CHAOS" \
		-logdir "$tmp/wal1" -log-sync 50ms -drain 5s "${COMMON[@]}" &
	edge1_pid=$!
	pids+=($edge1_pid)
}
start_edge1
"$tmp/ldpserver" -addr "$EDGE2" -mode edge -edge-id edge-2 -push-to "http://$ROOT" \
	-push-interval 200ms -push-chaos "$CHAOS" \
	-logdir "$tmp/wal2" -log-sync 50ms -drain 5s "${COMMON[@]}" &
pids+=($!)
"$tmp/ldpserver" -addr "$SINGLE" "${COMMON[@]}" &
pids+=($!)

wait_ready() { # readiness probe doubles as "process is up"
	for _ in $(seq 1 100); do
		if curl -sf "http://$1/readyz" >/dev/null 2>&1; then return 0; fi
		sleep 0.1
	done
	echo "server $1 never became ready" >&2
	return 1
}
for addr in "$ROOT" "$EDGE1" "$EDGE2" "$SINGLE"; do wait_ready "$addr"; done

# Liveness and readiness answer on every node.
curl -sf "http://$ROOT/healthz" >/dev/null
curl -sf "http://$ROOT/readyz" >/dev/null

# Disjoint populations: seed 1 to edge 1, seed 2 to edge 2; the single
# node ingests both.
"$tmp/ldpclient" -addr "http://$EDGE1" -n "$N" -seed 1 -workers 2 -dataset br -eps 1 -range
"$tmp/ldpclient" -addr "http://$EDGE2" -n "$N" -seed 2 -workers 2 -dataset br -eps 1 -range
"$tmp/ldpclient" -addr "http://$SINGLE" -n "$N" -seed 1 -workers 2 -dataset br -eps 1 -range
"$tmp/ldpclient" -addr "http://$SINGLE" -n "$N" -seed 2 -workers 2 -dataset br -eps 1 -range

# SIGTERM edge 1 mid-run: it must drain, make a final push attempt, and
# commit its WAL; the restart replays the WAL and resumes pushing under
# the same edge ID, so the root never double-counts.
kill -TERM "$edge1_pid"
if ! wait "$edge1_pid"; then
	echo "edge 1 did not exit cleanly on SIGTERM" >&2
	exit 1
fi
echo "chaos smoke: edge 1 exited cleanly on SIGTERM"
start_edge1
wait_ready "$EDGE1"

# Wait for both edges' pushes to land despite the injected faults.
want=$((2 * N))
n=
for _ in $(seq 1 200); do
	n=$(curl -s "http://$ROOT/v1/stats" | jq .n)
	if [ "$n" = "$want" ]; then break; fi
	sleep 0.2
done
if [ "$n" != "$want" ]; then
	echo "root merged n=$n, want $want (chaos broke exactly-once fan-in?)" >&2
	exit 1
fi
single_n=$(curl -s "http://$SINGLE/v1/stats" | jq .n)
if [ "$single_n" != "$want" ]; then
	echo "single-node n=$single_n, want $want" >&2
	exit 1
fi

# Merged estimates match the single node's (float tolerance: the merge
# regroups floating-point sums; bit-exactness on a quantized grid is
# asserted by the unit tests).
close() { # $1=query-path $2=description
	a=$(curl -sf "http://$ROOT/v1/query?$1")
	b=$(curl -sf "http://$SINGLE/v1/query?$1")
	ok=$(jq -n --argjson a "$a" --argjson b "$b" '
		def absv: if . < 0 then -. else . end;
		def flat: [.. | numbers];
		($a | flat) as $x | ($b | flat) as $y
		| ($x | length) > 0 and ($x | length) == ($y | length)
		  and all(range($x | length); (($x[.] - $y[.]) | absv) < 1e-9)')
	if [ "$ok" != "true" ]; then
		echo "merged $2 diverged from single node:" >&2
		echo "  root:   $a" >&2
		echo "  single: $b" >&2
		exit 1
	fi
	echo "chaos smoke: $2 match"
}
close "kind=mean" "means"
close "kind=freq&attr=gender" "gender frequencies"
close "kind=range&attr=age&lo=-0.5&hi=0.5" "range mass"

# The resilience counters are exposed: breaker state/transitions on the
# edges, admission-shed counters and draining gauge everywhere.
edge_metrics=$(curl -s "http://$EDGE1/metrics")
for series in ldp_breaker_state ldp_draining ldp_http_shed_total; do
	if ! echo "$edge_metrics" | grep -q "^$series"; then
		echo "edge /metrics missing $series" >&2
		exit 1
	fi
done

echo "chaos smoke: OK (root merged $want reports exactly under fault injection + edge restart)"
