package ldp

import (
	"math"
	"testing"
)

func TestHistogramFacade(t *testing.T) {
	col, err := NewHistogramCollector(2, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	est := NewHistogramEstimator(col)
	r := NewRand(1)
	const n = 50000
	for i := 0; i < n; i++ {
		est.Add(col.Perturb(0.4*r.NormFloat64(), r))
	}
	smoothed := est.Smoothed()
	sum := 0.0
	for _, f := range smoothed {
		if f < 0 {
			t.Fatal("negative smoothed frequency")
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("smoothed histogram sums to %v", sum)
	}
	// Symmetric population: median near 0.
	if med := est.Quantile(0.5); math.Abs(med) > 0.2 {
		t.Errorf("median = %v, want ~0", med)
	}
}

func TestHistogramFacadeWithGRR(t *testing.T) {
	col, err := NewHistogramCollector(2, 4, GRR)
	if err != nil {
		t.Fatal(err)
	}
	if col.Oracle().Name() != "grr" {
		t.Errorf("oracle = %s, want grr", col.Oracle().Name())
	}
}

func TestProjectSimplexFacade(t *testing.T) {
	p := ProjectSimplex([]float64{0.9, 0.3, -0.1})
	sum := 0.0
	for _, x := range p {
		if x < 0 {
			t.Fatal("negative projection entry")
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("projection sums to %v", sum)
	}
}

func TestAuditFacade(t *testing.T) {
	pm, err := NewPiecewise(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Audit(pm, AuditConfig{Samples: 30000, Bins: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violated {
		t.Errorf("PM flagged by audit: %s", res)
	}
	if res.Epsilon != 1 {
		t.Errorf("audit epsilon = %v", res.Epsilon)
	}
	if res.EmpiricalEps < 0 || res.EmpiricalEps > 1 {
		t.Errorf("empirical eps %v outside [0, eps]", res.EmpiricalEps)
	}
	if _, err := Audit(pm, AuditConfig{Samples: 10, Bins: 40}); err == nil {
		t.Error("Samples < Bins must be rejected")
	}
}

func TestSnapshotThroughFacade(t *testing.T) {
	s, err := NewSchema(
		Attribute{Name: "x", Kind: Numeric},
		Attribute{Name: "c", Kind: Categorical, Cardinality: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	col, err := NewCollector(s, 1, PM, OUE)
	if err != nil {
		t.Fatal(err)
	}
	agg := NewAggregator(col)
	r := NewRand(4)
	for i := 0; i < 500; i++ {
		tup := NewTuple(s)
		tup.Num[0] = 0.25
		tup.Cat[1] = i % 3
		rep, err := col.Perturb(tup, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := agg.Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	fresh := NewAggregator(col)
	if err := fresh.LoadSnapshot(agg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	a, _ := agg.MeanEstimate(0)
	b, _ := fresh.MeanEstimate(0)
	if a != b {
		t.Errorf("snapshot mean %v != %v", b, a)
	}
}
