package ldp

import (
	"context"
	"net/http/httptest"
	"testing"
)

// TestFacadeFanIn drives the clustering surface end to end through the
// public API: an edge pipeline forwards its state to a root pipeline's
// /v1/merge, and the root answers queries over the merged reports.
func TestFacadeFanIn(t *testing.T) {
	sch, err := NewSchema(
		Attribute{Name: "x", Kind: Numeric},
		Attribute{Name: "c", Kind: Categorical, Cardinality: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	newP := func() *Pipeline {
		p, err := New(sch, 2)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	root := newP()
	srv := httptest.NewServer(NewPipelineServer(root, nil))
	defer srv.Close()

	edge := newP()
	r := NewRand(7)
	const n = 500
	for i := 0; i < n; i++ {
		tup := NewTuple(sch)
		tup.Num[0] = 0.25
		tup.Cat[1] = i % 3
		rep, err := edge.Randomize(tup, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := edge.Add(rep); err != nil {
			t.Fatal(err)
		}
	}

	fw, err := NewForwarder(edge, ForwarderConfig{
		RootURL: srv.URL,
		EdgeID:  "facade-edge",
		Retry:   DefaultRetryPolicy,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Push(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, reports := fw.Acked(); reports != n {
		t.Fatalf("acked %d reports, want %d", reports, n)
	}

	res := root.View()
	if res.N() != n {
		t.Fatalf("root N = %d, want %d", res.N(), n)
	}
	want := edge.View()
	if got, exp := res.Means()["x"], want.Means()["x"]; got != exp {
		t.Fatalf("merged Means[x] = %v, edge has %v", got, exp)
	}
}
