package core

import (
	"fmt"
	"math"

	"ldp/internal/duchi"
	"ldp/internal/mathx"
	"ldp/internal/mech"
	"ldp/internal/rng"
)

// Hybrid is the Hybrid Mechanism (Section III-C): with probability alpha it
// perturbs with the Piecewise Mechanism, otherwise with Duchi et al.'s
// one-dimensional mechanism. With the optimal coefficient of Eq. 7,
// alpha = 1 - e^{-eps/2} for eps > eps* and 0 otherwise, the t^2 terms of
// the two variances cancel, so for eps > eps* HM's noise variance is
// constant in t and equals Eq. 8; its worst case is never above either
// component's (Corollary 1).
type Hybrid struct {
	eps   float64
	alpha float64
	pm    *Piecewise
	du    *duchi.OneDim
}

// NewHybrid constructs the Hybrid Mechanism with the optimal alpha of
// Eq. 7.
func NewHybrid(eps float64) (*Hybrid, error) {
	alpha := 0.0
	if eps > mathx.EpsStar() {
		alpha = 1 - math.Exp(-eps/2)
	}
	return NewHybridAlpha(eps, alpha)
}

// NewHybridAlpha constructs a Hybrid Mechanism with an explicit mixing
// coefficient alpha in [0, 1]. It exists for the alpha-ablation experiment;
// NewHybrid is the paper's mechanism.
func NewHybridAlpha(eps, alpha float64) (*Hybrid, error) {
	if err := mech.ValidateEpsilon(eps); err != nil {
		return nil, err
	}
	if alpha < 0 || alpha > 1 || math.IsNaN(alpha) {
		return nil, fmt.Errorf("core: hybrid alpha must be in [0,1], got %v", alpha)
	}
	pm, err := NewPiecewise(eps)
	if err != nil {
		return nil, err
	}
	du, err := duchi.NewOneDim(eps)
	if err != nil {
		return nil, err
	}
	return &Hybrid{eps: eps, alpha: alpha, pm: pm, du: du}, nil
}

// Name returns "hm".
func (m *Hybrid) Name() string { return "hm" }

// Epsilon returns the privacy budget.
func (m *Hybrid) Epsilon() float64 { return m.eps }

// Alpha returns the mixing coefficient (probability of using PM).
func (m *Hybrid) Alpha() float64 { return m.alpha }

// Perturb flips the alpha-coin and delegates to PM or Duchi's mechanism.
// Both branches run at the full budget eps, so the mixture satisfies
// eps-LDP.
func (m *Hybrid) Perturb(t float64, r *rng.Rand) float64 {
	if rng.Bernoulli(r, m.alpha) {
		return m.pm.Perturb(t, r)
	}
	return m.du.Perturb(t, r)
}

// Variance returns alpha * Var_PM(t) + (1-alpha) * Var_Duchi(t).
func (m *Hybrid) Variance(t float64) float64 {
	return m.alpha*m.pm.Variance(t) + (1-m.alpha)*m.du.Variance(t)
}

// WorstCaseVariance returns Eq. 8 when alpha is the optimal Eq. 7 value;
// for ablation alphas it maximizes the closed-form variance over t in
// {0, 1} (the variance is quadratic in t^2 so the extremes suffice).
func (m *Hybrid) WorstCaseVariance() float64 {
	return math.Max(m.Variance(0), m.Variance(1))
}

// SupportBound returns the largest output magnitude, the maximum of PM's
// bound C and Duchi's two-point magnitude.
func (m *Hybrid) SupportBound() float64 {
	return math.Max(m.pm.SupportBound(), m.du.Bound())
}

var _ mech.Mechanism = (*Hybrid)(nil)
