package core

import (
	"errors"
	"testing"

	"ldp/internal/rng"
	"ldp/internal/schema"
)

func filledAggregator(t *testing.T, n int) (*Collector, *Aggregator) {
	t.Helper()
	s := testSchema(t)
	col, err := NewCollector(s, 1, pmFactory, oueFactory)
	if err != nil {
		t.Fatal(err)
	}
	agg := NewAggregator(col)
	r := rng.New(77)
	for i := 0; i < n; i++ {
		tup := schema.NewTuple(s)
		tup.Num[0] = rng.Uniform(r, -1, 1)
		tup.Num[1] = rng.Uniform(r, -1, 1)
		tup.Cat[2] = i % 2
		tup.Cat[3] = i % 5
		rep, err := col.Perturb(tup, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := agg.Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	return col, agg
}

func TestSnapshotRoundTrip(t *testing.T) {
	col, agg := filledAggregator(t, 3000)
	snap := agg.Snapshot()

	fresh := NewAggregator(col)
	if err := fresh.LoadSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if fresh.N() != agg.N() {
		t.Fatalf("restored N = %d, want %d", fresh.N(), agg.N())
	}
	for attr := 0; attr < 2; attr++ {
		a, _ := agg.MeanEstimate(attr)
		b, _ := fresh.MeanEstimate(attr)
		if a != b {
			t.Errorf("attr %d: restored mean %v != %v", attr, b, a)
		}
	}
	for _, attr := range []int{2, 3} {
		a, _ := agg.FreqEstimates(attr)
		b, _ := fresh.FreqEstimates(attr)
		for v := range a {
			if a[v] != b[v] {
				t.Errorf("attr %d value %d: restored freq %v != %v", attr, v, b[v], a[v])
			}
		}
	}
}

func TestSnapshotThenContinue(t *testing.T) {
	// Snapshot, restore, keep adding: behaves exactly like the original.
	col, agg := filledAggregator(t, 500)
	fresh := NewAggregator(col)
	if err := fresh.LoadSnapshot(agg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	s := col.Schema()
	r := rng.New(5)
	for i := 0; i < 200; i++ {
		tup := schema.NewTuple(s)
		tup.Num[0] = 0.5
		rep, err := col.Perturb(tup, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := agg.Add(rep); err != nil {
			t.Fatal(err)
		}
		if err := fresh.Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	am, _ := agg.MeanEstimate(0)
	fm, _ := fresh.MeanEstimate(0)
	if am != fm {
		t.Errorf("diverged after continuing: %v vs %v", am, fm)
	}
}

func TestLoadSnapshotRequiresEmpty(t *testing.T) {
	_, agg := filledAggregator(t, 100)
	if err := agg.LoadSnapshot(agg.Snapshot()); err == nil {
		t.Error("loading into a non-empty aggregator must fail")
	}
}

func TestLoadSnapshotRejectsCorruption(t *testing.T) {
	col, agg := filledAggregator(t, 100)
	good := agg.Snapshot()

	cases := map[string]func([]byte) []byte{
		"badMagic":  func(b []byte) []byte { b[0] = 'X'; return b },
		"badVer":    func(b []byte) []byte { b[4] = 99; return b },
		"truncated": func(b []byte) []byte { return b[:len(b)-3] },
		"bitFlip":   func(b []byte) []byte { b[15] ^= 0xFF; return b },
		"badCRC":    func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b },
		"short":     func([]byte) []byte { return []byte("LD") },
	}
	for name, corrupt := range cases {
		cp := append([]byte(nil), good...)
		fresh := NewAggregator(col)
		if err := fresh.LoadSnapshot(corrupt(cp)); err == nil {
			t.Errorf("%s: corruption not detected", name)
		} else if !errors.Is(err, ErrSnapshotCorrupt) {
			t.Errorf("%s: error %v does not wrap ErrSnapshotCorrupt", name, err)
		}
		if fresh.N() != 0 {
			t.Errorf("%s: failed load mutated the aggregator", name)
		}
	}
}

func TestLoadSnapshotRejectsSchemaMismatch(t *testing.T) {
	_, agg := filledAggregator(t, 50)
	snap := agg.Snapshot()

	other, err := schema.New(schema.Attribute{Name: "only", Kind: schema.Numeric})
	if err != nil {
		t.Fatal(err)
	}
	otherCol, err := NewCollector(other, 1, pmFactory, oueFactory)
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewAggregator(otherCol)
	if err := fresh.LoadSnapshot(snap); !errors.Is(err, ErrSnapshotMismatch) {
		t.Errorf("err = %v, want ErrSnapshotMismatch", err)
	}
}

func TestSnapshotEmptyAggregator(t *testing.T) {
	col, _ := filledAggregator(t, 0)
	agg := NewAggregator(col)
	fresh := NewAggregator(col)
	if err := fresh.LoadSnapshot(agg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if fresh.N() != 0 {
		t.Error("empty snapshot should restore empty state")
	}
	if !fresh.attrIsNumeric(0) || fresh.attrIsNumeric(2) {
		t.Error("schema kinds wrong after restore")
	}
}
