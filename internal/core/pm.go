// Package core implements the paper's contributions: the Piecewise
// Mechanism (PM, Algorithm 2), the Hybrid Mechanism (HM, Section III-C),
// and the attribute-sampling collector for multidimensional records with
// numeric and categorical attributes (Algorithm 4 and Section IV-C),
// together with the matching aggregator-side estimators.
package core

import (
	"math"

	"ldp/internal/mech"
	"ldp/internal/rng"
)

// Piecewise is the Piecewise Mechanism (Algorithm 2): given t in [-1, 1] it
// outputs a value in [-C, C], C = (e^{eps/2}+1)/(e^{eps/2}-1), drawn from a
// three-piece constant density centered on t. It is unbiased with noise
// variance t^2/(e^{eps/2}-1) + (e^{eps/2}+3)/(3(e^{eps/2}-1)^2) (Lemma 1) —
// smaller for inputs of small magnitude, and with worst case
// 4e^{eps/2}/(3(e^{eps/2}-1)^2) strictly below the Laplace mechanism's for
// every eps.
type Piecewise struct {
	eps     float64
	expHalf float64 // e^{eps/2}
	c       float64 // output bound C
	pCenter float64 // probability of sampling the center piece
}

// NewPiecewise constructs the Piecewise Mechanism for budget eps.
func NewPiecewise(eps float64) (*Piecewise, error) {
	if err := mech.ValidateEpsilon(eps); err != nil {
		return nil, err
	}
	e2 := math.Exp(eps / 2)
	return &Piecewise{
		eps:     eps,
		expHalf: e2,
		c:       (e2 + 1) / (e2 - 1),
		pCenter: e2 / (e2 + 1),
	}, nil
}

// Name returns "pm".
func (m *Piecewise) Name() string { return "pm" }

// Epsilon returns the privacy budget.
func (m *Piecewise) Epsilon() float64 { return m.eps }

// SupportBound returns C, the magnitude of the output domain [-C, C].
func (m *Piecewise) SupportBound() float64 { return m.c }

// pieces returns the center piece boundaries for input t:
// l = (C+1)/2*t - (C-1)/2 and r = l + C - 1.
func (m *Piecewise) pieces(t float64) (l, r float64) {
	l = (m.c+1)/2*t - (m.c-1)/2
	return l, l + m.c - 1
}

// Perturb runs Algorithm 2. Inputs outside [-1, 1] are clamped.
func (m *Piecewise) Perturb(t float64, r *rng.Rand) float64 {
	t = mech.Clamp1(t)
	l, rr := m.pieces(t)
	if rng.Bernoulli(r, m.pCenter) {
		return rng.Uniform(r, l, rr)
	}
	// Uniform over [-C, l) u (rr, C]. The two side pieces have total
	// length (l + C) + (C - rr) = C + 1 (the center has length C - 1).
	left := l + m.c
	u := r.Float64() * (m.c + 1)
	if u < left {
		return -m.c + u
	}
	return rr + (u - left)
}

// Variance returns the closed-form noise variance of Lemma 1 for input t.
func (m *Piecewise) Variance(t float64) float64 {
	t = mech.Clamp1(t)
	d := m.expHalf - 1
	return t*t/d + (m.expHalf+3)/(3*d*d)
}

// WorstCaseVariance returns 4e^{eps/2}/(3(e^{eps/2}-1)^2), attained at
// |t| = 1.
func (m *Piecewise) WorstCaseVariance() float64 {
	d := m.expHalf - 1
	return 4 * m.expHalf / (3 * d * d)
}

// Pdf evaluates the output density pdf(t* = x | t) of Eq. 5; it is the
// center density p on [l(t), r(t)], p/e^eps on the rest of [-C, C], and 0
// outside. Used by Figure 2 and the LDP property tests.
func (m *Piecewise) Pdf(t, x float64) float64 {
	t = mech.Clamp1(t)
	if x < -m.c || x > m.c {
		return 0
	}
	p := (math.Exp(m.eps) - m.expHalf) / (2*m.expHalf + 2)
	l, r := m.pieces(t)
	if x >= l && x <= r {
		return p
	}
	return p / math.Exp(m.eps)
}

var _ mech.Mechanism = (*Piecewise)(nil)
