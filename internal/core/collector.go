package core

import (
	"fmt"
	"math"

	"ldp/internal/freq"
	"ldp/internal/mech"
	"ldp/internal/rng"
	"ldp/internal/schema"
)

// KFor returns the number of attributes each user reports under Algorithm
// 4: k = max(1, min(d, floor(eps/2.5))) (Eq. 12). Reporting k attributes at
// budget eps/k each trades sampling error against per-attribute noise; the
// 2.5 constant minimizes the worst-case variance of the PM/HM-based
// collector.
func KFor(eps float64, d int) int {
	k := int(math.Floor(eps / 2.5))
	if k < 1 {
		k = 1
	}
	if k > d {
		k = d
	}
	return k
}

// NumericCollector is Algorithm 4 restricted to all-numeric tuples in
// [-1, 1]^d: each user samples k attribute indices without replacement,
// perturbs each sampled value with a 1-D mechanism (PM or HM) at budget
// eps/k, and scales the result by d/k. Unsampled coordinates report 0, so
// the dense output vector is coordinate-wise unbiased (Lemma 4).
type NumericCollector struct {
	name  string
	eps   float64
	d     int
	k     int
	scale float64
	inner mech.Mechanism
}

// NewNumericCollector builds the collector for dimension d and total budget
// eps, using factory (typically NewPiecewise or NewHybrid) for the 1-D
// mechanism at budget eps/k.
func NewNumericCollector(factory mech.Factory, eps float64, d int) (*NumericCollector, error) {
	if err := mech.ValidateEpsilon(eps); err != nil {
		return nil, err
	}
	if d < 1 {
		return nil, fmt.Errorf("core: dimension must be >= 1, got %d", d)
	}
	k := KFor(eps, d)
	inner, err := factory(eps / float64(k))
	if err != nil {
		return nil, err
	}
	return &NumericCollector{
		name:  "sampled-" + inner.Name(),
		eps:   eps,
		d:     d,
		k:     k,
		scale: float64(d) / float64(k),
		inner: inner,
	}, nil
}

// NewNumericCollectorK is NewNumericCollector with an explicit k, used by
// the k-ablation experiment. The paper's rule is KFor.
func NewNumericCollectorK(factory mech.Factory, eps float64, d, k int) (*NumericCollector, error) {
	if err := mech.ValidateEpsilon(eps); err != nil {
		return nil, err
	}
	if d < 1 || k < 1 || k > d {
		return nil, fmt.Errorf("core: need 1 <= k <= d, got k=%d d=%d", k, d)
	}
	inner, err := factory(eps / float64(k))
	if err != nil {
		return nil, err
	}
	return &NumericCollector{
		name:  "sampled-" + inner.Name(),
		eps:   eps,
		d:     d,
		k:     k,
		scale: float64(d) / float64(k),
		inner: inner,
	}, nil
}

// Name returns "sampled-" plus the inner mechanism name.
func (c *NumericCollector) Name() string { return c.name }

// Epsilon returns the total tuple budget.
func (c *NumericCollector) Epsilon() float64 { return c.eps }

// Dim returns d.
func (c *NumericCollector) Dim() int { return c.d }

// K returns the number of attributes each user reports.
func (c *NumericCollector) K() int { return c.k }

// Inner returns the 1-D mechanism running at eps/k.
func (c *NumericCollector) Inner() mech.Mechanism { return c.inner }

// PerturbVector runs Algorithm 4 on a tuple of length Dim(). It returns a
// freshly allocated vector; hot loops should reuse a buffer through
// PerturbVectorInto.
func (c *NumericCollector) PerturbVector(t []float64, r *rng.Rand) []float64 {
	return c.PerturbVectorInto(nil, t, r)
}

// PerturbVectorInto runs Algorithm 4 on a tuple of length Dim(), writing
// the dense output into dst's storage (append-style: dst is truncated and
// regrown to Dim(), reusing its capacity when sufficient) and returning
// it. With a reused buffer the only remaining allocation is the sampler's
// index scratch, so client simulation loops randomizing millions of
// tuples stop churning one output vector per user.
func (c *NumericCollector) PerturbVectorInto(dst, t []float64, r *rng.Rand) []float64 {
	if len(t) != c.d {
		panic(fmt.Sprintf("core: tuple has %d coordinates, collector built for %d", len(t), c.d))
	}
	dst = dst[:0]
	if cap(dst) < c.d {
		dst = make([]float64, c.d)
	} else {
		dst = dst[:c.d]
		for i := range dst {
			dst[i] = 0
		}
	}
	for _, j := range rng.SampleWithoutReplacement(r, c.d, c.k) {
		dst[j] = c.scale * c.inner.Perturb(t[j], r)
	}
	return dst
}

var _ mech.VectorPerturberInto = (*NumericCollector)(nil)

// CoordinateVariance returns the per-coordinate variance of the dense
// output for input value t: Var = (d/k) E[x^2] - t^2 with
// E[x^2] = Var_inner(t) + t^2. With a PM inner mechanism this reduces to
// Eq. 14 of the paper. (For the HM inner below eps*, the paper's Eq. 15
// prints "+ (d/k-1) t^2" where the derivation gives "- t^2"; this
// implementation follows the derivation — see DESIGN.md.)
func (c *NumericCollector) CoordinateVariance(t float64) float64 {
	t = mech.Clamp1(t)
	ex2 := c.inner.Variance(t) + t*t
	return c.scale*ex2 - t*t
}

// WorstCaseCoordinateVariance maximizes CoordinateVariance over t in
// [-1, 1]. The variance is quadratic in t^2 so the maximum is at t = 0 or
// |t| = 1.
func (c *NumericCollector) WorstCaseCoordinateVariance() float64 {
	return math.Max(c.CoordinateVariance(0), c.CoordinateVariance(1))
}

var _ mech.VectorPerturber = (*NumericCollector)(nil)

// EntryKind identifies how a report entry is encoded.
type EntryKind uint8

const (
	// EntryNumeric carries a scaled perturbed numeric value.
	EntryNumeric EntryKind = iota
	// EntryCategoricalBits carries a unary-encoding bitset (OUE/SUE).
	EntryCategoricalBits
	// EntryCategoricalValue carries a single reported value (GRR).
	EntryCategoricalValue
)

// Entry is one sampled attribute inside a Report.
type Entry struct {
	// Attr is the attribute index in the schema.
	Attr int
	// Kind says which of Value and Resp is meaningful.
	Kind EntryKind
	// Value is the scaled numeric report (d/k times the perturbed
	// value); meaningful when Kind is EntryNumeric.
	Value float64
	// Resp is the frequency-oracle response; meaningful for the
	// categorical kinds.
	Resp freq.Response
}

// Report is one user's randomized submission under the mixed-schema
// collector: k entries, one per sampled attribute.
type Report struct {
	Entries []Entry
}

// Collector implements the full Section IV-C scheme for records with both
// numeric and categorical attributes: sample k of the d attributes, perturb
// numeric values with PM/HM at eps/k (scaled by d/k) and categorical values
// with a frequency oracle at eps/k.
type Collector struct {
	sch     *schema.Schema
	eps     float64
	k       int
	scale   float64
	inner   mech.Mechanism
	oracles []freq.Oracle // indexed by attribute; nil for numeric attrs
}

// NewCollector builds the mixed-schema collector. numFactory provides the
// 1-D numeric mechanism (PM or HM); oracleFactory provides the frequency
// oracle (usually OUE) per categorical attribute. Both run at eps/k.
func NewCollector(s *schema.Schema, eps float64, numFactory mech.Factory, oracleFactory freq.Factory) (*Collector, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := mech.ValidateEpsilon(eps); err != nil {
		return nil, err
	}
	d := s.Dim()
	k := KFor(eps, d)
	budget := eps / float64(k)
	inner, err := numFactory(budget)
	if err != nil {
		return nil, err
	}
	oracles := make([]freq.Oracle, d)
	for i, a := range s.Attrs {
		if a.Kind != schema.Categorical {
			continue
		}
		o, err := oracleFactory(budget, a.Cardinality)
		if err != nil {
			return nil, fmt.Errorf("core: oracle for attribute %q: %w", a.Name, err)
		}
		oracles[i] = o
	}
	return &Collector{
		sch:     s,
		eps:     eps,
		k:       k,
		scale:   float64(d) / float64(k),
		inner:   inner,
		oracles: oracles,
	}, nil
}

// Schema returns the collector's schema.
func (c *Collector) Schema() *schema.Schema { return c.sch }

// Epsilon returns the total tuple budget.
func (c *Collector) Epsilon() float64 { return c.eps }

// K returns the number of attributes each user reports.
func (c *Collector) K() int { return c.k }

// Inner returns the numeric 1-D mechanism running at eps/k.
func (c *Collector) Inner() mech.Mechanism { return c.inner }

// Oracle returns the frequency oracle for categorical attribute attr, or
// nil if the attribute is numeric.
func (c *Collector) Oracle(attr int) freq.Oracle { return c.oracles[attr] }

// WorstCaseNumericVariance returns the worst-case per-coordinate variance
// of the collector's numeric reports (the mixed-schema analogue of
// NumericCollector.WorstCaseCoordinateVariance), used for confidence
// intervals on mean estimates.
func (c *Collector) WorstCaseNumericVariance() float64 {
	varAt := func(t float64) float64 {
		return c.scale*(c.inner.Variance(t)+t*t) - t*t
	}
	return math.Max(varAt(0), varAt(1))
}

// Perturb randomizes one user tuple into a Report.
func (c *Collector) Perturb(t schema.Tuple, r *rng.Rand) (Report, error) {
	if err := t.Check(c.sch); err != nil {
		return Report{}, err
	}
	entries := make([]Entry, 0, c.k)
	for _, j := range rng.SampleWithoutReplacement(r, c.sch.Dim(), c.k) {
		if c.sch.Attrs[j].Kind == schema.Numeric {
			entries = append(entries, Entry{
				Attr:  j,
				Kind:  EntryNumeric,
				Value: c.scale * c.inner.Perturb(t.Num[j], r),
			})
		} else {
			resp := c.oracles[j].Perturb(t.Cat[j], r)
			kind := EntryCategoricalBits
			if resp.Bits == nil {
				kind = EntryCategoricalValue
			}
			entries = append(entries, Entry{Attr: j, Kind: kind, Resp: resp})
		}
	}
	return Report{Entries: entries}, nil
}
