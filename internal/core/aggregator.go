package core

import (
	"fmt"
	"math"
	"sync"

	"ldp/internal/freq"
	"ldp/internal/schema"
)

// Aggregator is the server-side estimator for reports produced by a
// Collector. It accumulates scaled numeric sums per attribute and
// frequency-oracle support counts per categorical attribute, and answers
// mean and frequency queries:
//
//   - the mean of numeric attribute j is estimated by sum_j / n over all n
//     users (unsampled users contribute 0; the d/k scaling in the reports
//     makes this unbiased, Lemma 4);
//   - the frequency of value v of categorical attribute j is estimated by
//     debiasing support counts over the users that actually reported j
//     (a uniform random subsample of the population).
//
// Aggregator is safe for concurrent use.
type Aggregator struct {
	mu      sync.Mutex
	sch     *schema.Schema
	n       int64
	numSum  []float64
	catEst  []*freq.Estimator // indexed by attribute; nil for numeric
	oracles []freq.Oracle
	catBits bool    // whether the oracle responses carry bitsets
	numVar  float64 // worst-case per-coordinate variance of numeric reports
}

// NewAggregator creates an aggregator matching the collector's
// configuration (schema, budget split, and oracle parameters).
func NewAggregator(c *Collector) *Aggregator {
	d := c.sch.Dim()
	a := &Aggregator{
		sch:     c.sch,
		numSum:  make([]float64, d),
		catEst:  make([]*freq.Estimator, d),
		oracles: c.oracles,
		numVar:  c.WorstCaseNumericVariance(),
	}
	for i, o := range c.oracles {
		if o != nil {
			a.catEst[i] = freq.NewEstimator(o)
			a.catBits = freq.UsesBitset(o)
		}
	}
	return a
}

// Add folds one user report into the aggregate state.
func (a *Aggregator) Add(rep Report) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, e := range rep.Entries {
		if e.Attr < 0 || e.Attr >= a.sch.Dim() {
			return fmt.Errorf("core: report entry attribute %d out of range [0,%d)", e.Attr, a.sch.Dim())
		}
		at := a.sch.Attrs[e.Attr]
		isNum := at.Kind == schema.Numeric
		if isNum != (e.Kind == EntryNumeric) {
			return fmt.Errorf("core: report entry kind %d does not match attribute %q", e.Kind, at.Name)
		}
		// Decoded frames are attacker-controlled: an undersized bitset
		// would panic inside freq.Estimator.Add, a bitset folded into a
		// value-type (GRR) estimator would poison every domain value at
		// once, and an out-of-range value would silently skew the
		// reporter count.
		if e.Kind == EntryCategoricalBits {
			if !a.catBits {
				return fmt.Errorf("core: bitset entry for attribute %q, but the oracle reports single values", at.Name)
			}
			if want := freq.BitsetWords(at.Cardinality); len(e.Resp.Bits) != want {
				return fmt.Errorf("core: attribute %q bitset has %d words, want %d", at.Name, len(e.Resp.Bits), want)
			}
		}
		if e.Kind == EntryCategoricalValue {
			if a.catBits {
				return fmt.Errorf("core: value entry for attribute %q, but the oracle reports bitsets", at.Name)
			}
			if e.Resp.Value < 0 || e.Resp.Value >= at.Cardinality {
				return fmt.Errorf("core: attribute %q value %d outside [0,%d)", at.Name, e.Resp.Value, at.Cardinality)
			}
		}
	}
	a.n++
	for _, e := range rep.Entries {
		if e.Kind == EntryNumeric {
			a.numSum[e.Attr] += e.Value
		} else {
			a.catEst[e.Attr].Add(e.Resp)
		}
	}
	return nil
}

// N returns the number of reports received.
func (a *Aggregator) N() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}

// Merge combines another aggregator built from the same collector
// configuration.
func (a *Aggregator) Merge(o *Aggregator) {
	o.mu.Lock()
	nsum := make([]float64, len(o.numSum))
	copy(nsum, o.numSum)
	on := o.n
	o.mu.Unlock()

	a.mu.Lock()
	defer a.mu.Unlock()
	a.n += on
	for i, s := range nsum {
		a.numSum[i] += s
	}
	for i, est := range a.catEst {
		if est != nil {
			est.Merge(o.catEst[i])
		}
	}
}

// MeanEstimate returns the estimated mean of numeric attribute attr.
func (a *Aggregator) MeanEstimate(attr int) (float64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if attr < 0 || attr >= a.sch.Dim() {
		return 0, fmt.Errorf("core: attribute %d out of range", attr)
	}
	if a.sch.Attrs[attr].Kind != schema.Numeric {
		return 0, fmt.Errorf("core: attribute %q is not numeric", a.sch.Attrs[attr].Name)
	}
	if a.n == 0 {
		return 0, nil
	}
	return a.numSum[attr] / float64(a.n), nil
}

// MeanEstimates returns estimated means for every numeric attribute, in
// schema order (aligned with Schema().NumericIdx()).
func (a *Aggregator) MeanEstimates() []float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []float64
	for i, at := range a.sch.Attrs {
		if at.Kind != schema.Numeric {
			continue
		}
		if a.n == 0 {
			out = append(out, 0)
		} else {
			out = append(out, a.numSum[i]/float64(a.n))
		}
	}
	return out
}

// MeanCI returns the estimated mean of numeric attribute attr together
// with a normal-approximation confidence half-width at the given z value
// (1.96 for 95%), derived from the mechanism's worst-case per-report
// variance: halfWidth = z * sqrt(maxVar / n). It is conservative — the
// true variance depends on the data (Lemma 1 / Eq. 14) and is never
// larger.
func (a *Aggregator) MeanCI(attr int, z float64) (mean, halfWidth float64, err error) {
	mean, err = a.MeanEstimate(attr)
	if err != nil {
		return 0, 0, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.n == 0 {
		return mean, math.Inf(1), nil
	}
	return mean, z * math.Sqrt(a.numVar/float64(a.n)), nil
}

// FreqCI returns the estimated frequency of value v of categorical
// attribute attr with a normal-approximation confidence half-width at z,
// using the oracle's theoretical estimator variance over the users that
// reported this attribute.
func (a *Aggregator) FreqCI(attr, v int, z float64) (f, halfWidth float64, err error) {
	ests, err := a.FreqEstimates(attr)
	if err != nil {
		return 0, 0, err
	}
	if v < 0 || v >= len(ests) {
		return 0, 0, fmt.Errorf("core: value %d out of range [0,%d)", v, len(ests))
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	est := a.catEst[attr]
	if est.N() == 0 {
		return ests[v], math.Inf(1), nil
	}
	// Clamp the plug-in frequency into [0,1] for the variance formula.
	plug := math.Min(1, math.Max(0, ests[v]))
	variance := freq.TheoreticalVariance(a.oracles[attr], plug, int(est.N()))
	return ests[v], z * math.Sqrt(variance), nil
}

// FreqEstimates returns the debiased frequency estimates for every value of
// categorical attribute attr.
func (a *Aggregator) FreqEstimates(attr int) ([]float64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if attr < 0 || attr >= a.sch.Dim() {
		return nil, fmt.Errorf("core: attribute %d out of range", attr)
	}
	est := a.catEst[attr]
	if est == nil {
		return nil, fmt.Errorf("core: attribute %q is not categorical", a.sch.Attrs[attr].Name)
	}
	return est.Estimates(), nil
}

// Schema returns the aggregator's schema.
func (a *Aggregator) Schema() *schema.Schema { return a.sch }
