package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"ldp/internal/schema"
)

// Snapshot serialization: a compact, CRC-protected dump of the
// aggregator's sufficient statistics (report count, per-attribute numeric
// sums, per-categorical support counts and reporter counts). A snapshot
// plus the report-log tail written after it reconstructs the aggregator
// exactly; for bounded state it is much cheaper than a full log replay.
const (
	snapMagic   = "LDPS"
	snapVersion = 1
)

// ErrSnapshotMismatch is returned by LoadSnapshot when the snapshot was
// taken under a different schema/oracle configuration.
var ErrSnapshotMismatch = errors.New("core: snapshot does not match aggregator configuration")

// ErrSnapshotCorrupt is returned when a snapshot fails structural or
// checksum validation.
var ErrSnapshotCorrupt = errors.New("core: snapshot corrupt")

// Snapshot serializes the aggregator's current state.
func (a *Aggregator) Snapshot() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()

	payload := make([]byte, 0, 64+8*len(a.numSum))
	payload = binary.AppendUvarint(payload, uint64(a.sch.Dim()))
	payload = binary.AppendUvarint(payload, uint64(a.n))
	for _, s := range a.numSum {
		payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(s))
	}
	nCat := 0
	for _, est := range a.catEst {
		if est != nil {
			nCat++
		}
	}
	payload = binary.AppendUvarint(payload, uint64(nCat))
	for attr, est := range a.catEst {
		if est == nil {
			continue
		}
		counts := est.Counts()
		payload = binary.AppendUvarint(payload, uint64(attr))
		payload = binary.AppendUvarint(payload, uint64(len(counts)))
		payload = binary.AppendUvarint(payload, uint64(est.N()))
		for _, c := range counts {
			payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(c))
		}
	}

	out := make([]byte, 0, len(payload)+13)
	out = append(out, snapMagic...)
	out = append(out, snapVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return out
}

// LoadSnapshot restores state serialized by Snapshot into an aggregator
// built from the same collector configuration. The aggregator must be
// empty (no reports added yet).
func (a *Aggregator) LoadSnapshot(data []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.n != 0 {
		return fmt.Errorf("core: LoadSnapshot requires an empty aggregator (has %d reports)", a.n)
	}
	if len(data) < 13 || string(data[:4]) != snapMagic {
		return fmt.Errorf("%w: bad magic", ErrSnapshotCorrupt)
	}
	if data[4] != snapVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrSnapshotCorrupt, data[4])
	}
	plen := binary.LittleEndian.Uint32(data[5:9])
	if int(plen) != len(data)-13 {
		return fmt.Errorf("%w: truncated", ErrSnapshotCorrupt)
	}
	payload := data[9 : 9+plen]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[9+plen:]) {
		return fmt.Errorf("%w: checksum mismatch", ErrSnapshotCorrupt)
	}

	pos := 0
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("%w: short varint", ErrSnapshotCorrupt)
		}
		pos += n
		return v, nil
	}
	readFloat := func() (float64, error) {
		if pos+8 > len(payload) {
			return 0, fmt.Errorf("%w: short float", ErrSnapshotCorrupt)
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(payload[pos:]))
		pos += 8
		return v, nil
	}

	dim, err := readUvarint()
	if err != nil {
		return err
	}
	if int(dim) != a.sch.Dim() {
		return fmt.Errorf("%w: snapshot dim %d, aggregator dim %d", ErrSnapshotMismatch, dim, a.sch.Dim())
	}
	n, err := readUvarint()
	if err != nil {
		return err
	}
	sums := make([]float64, dim)
	for i := range sums {
		if sums[i], err = readFloat(); err != nil {
			return err
		}
	}
	nCat, err := readUvarint()
	if err != nil {
		return err
	}
	type catBlock struct {
		attr   int
		nUsers int64
		counts []float64
	}
	blocks := make([]catBlock, 0, nCat)
	for i := uint64(0); i < nCat; i++ {
		attr, err := readUvarint()
		if err != nil {
			return err
		}
		card, err := readUvarint()
		if err != nil {
			return err
		}
		nr, err := readUvarint()
		if err != nil {
			return err
		}
		if int(attr) >= a.sch.Dim() || a.catEst[attr] == nil {
			return fmt.Errorf("%w: attribute %d is not categorical here", ErrSnapshotMismatch, attr)
		}
		if int(card) != a.sch.Attrs[attr].Cardinality {
			return fmt.Errorf("%w: attribute %d cardinality %d vs %d", ErrSnapshotMismatch, attr, card, a.sch.Attrs[attr].Cardinality)
		}
		counts := make([]float64, card)
		for j := range counts {
			if counts[j], err = readFloat(); err != nil {
				return err
			}
		}
		blocks = append(blocks, catBlock{attr: int(attr), nUsers: int64(nr), counts: counts})
	}
	if pos != len(payload) {
		return fmt.Errorf("%w: %d trailing bytes", ErrSnapshotCorrupt, len(payload)-pos)
	}

	// Validation passed; commit.
	a.n = int64(n)
	copy(a.numSum, sums)
	for _, b := range blocks {
		if err := a.catEst[b.attr].AddCounts(b.counts, b.nUsers); err != nil {
			return err
		}
	}
	return nil
}

// attrIsNumeric reports whether attribute i of the aggregator's schema is
// numeric (helper shared by snapshot tests).
func (a *Aggregator) attrIsNumeric(i int) bool {
	return a.sch.Attrs[i].Kind == schema.Numeric
}
