package core

import (
	"math"
	"testing"
	"testing/quick"

	"ldp/internal/freq"
	"ldp/internal/mech"
	"ldp/internal/rng"
	"ldp/internal/schema"
	"ldp/internal/stats"
)

func pmFactory(eps float64) (mech.Mechanism, error)      { return NewPiecewise(eps) }
func hmFactory(eps float64) (mech.Mechanism, error)      { return NewHybrid(eps) }
func oueFactory(eps float64, k int) (freq.Oracle, error) { return freq.NewOUE(eps, k) }

func TestKForRule(t *testing.T) {
	cases := []struct {
		eps  float64
		d    int
		want int
	}{
		{0.5, 10, 1},
		{2.4, 10, 1},
		{2.5, 10, 1},
		{2.6, 10, 1},
		{5, 10, 2},
		{7.5, 10, 3},
		{7.6, 10, 3},
		{10, 10, 4},
		{100, 10, 10}, // capped at d
		{100, 3, 3},
		{0.1, 1, 1},
	}
	for _, c := range cases {
		if got := KFor(c.eps, c.d); got != c.want {
			t.Errorf("KFor(%v, %d) = %d, want %d", c.eps, c.d, got, c.want)
		}
	}
}

func TestKForMonotoneProperty(t *testing.T) {
	f := func(e1, e2 uint8, dRaw uint8) bool {
		d := int(dRaw%20) + 1
		a, b := float64(e1)/10, float64(e2)/10
		if a == 0 {
			a = 0.1
		}
		if b == 0 {
			b = 0.1
		}
		if a > b {
			a, b = b, a
		}
		return KFor(a, d) <= KFor(b, d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNumericCollectorValidation(t *testing.T) {
	if _, err := NewNumericCollector(pmFactory, 0, 4); err == nil {
		t.Error("want error for eps=0")
	}
	if _, err := NewNumericCollector(pmFactory, 1, 0); err == nil {
		t.Error("want error for d=0")
	}
	if _, err := NewNumericCollectorK(pmFactory, 1, 4, 5); err == nil {
		t.Error("want error for k>d")
	}
	if _, err := NewNumericCollectorK(pmFactory, 1, 4, 0); err == nil {
		t.Error("want error for k=0")
	}
}

func TestNumericCollectorSparsity(t *testing.T) {
	c, err := NewNumericCollector(pmFactory, 6, 8) // k = 2
	if err != nil {
		t.Fatal(err)
	}
	if c.K() != 2 {
		t.Fatalf("K = %d, want 2", c.K())
	}
	r := rng.New(20)
	in := make([]float64, 8)
	for i := range in {
		in[i] = 0.5
	}
	for trial := 0; trial < 200; trial++ {
		out := c.PerturbVector(in, r)
		nonzero := 0
		for _, v := range out {
			if v != 0 {
				nonzero++
			}
		}
		// PM output is continuous so sampled coordinates are almost
		// surely nonzero.
		if nonzero != 2 {
			t.Fatalf("nonzero coordinates = %d, want 2", nonzero)
		}
	}
}

func TestNumericCollectorBudgetSplit(t *testing.T) {
	c, _ := NewNumericCollector(pmFactory, 6, 8)
	if !almostEqual(c.Inner().Epsilon(), 3, 1e-12) {
		t.Errorf("inner budget = %v, want 3 (eps/k)", c.Inner().Epsilon())
	}
}

func TestNumericCollectorUnbiased(t *testing.T) {
	for _, factory := range []mech.Factory{pmFactory, hmFactory} {
		c, err := NewNumericCollector(factory, 4, 5) // k = 1
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(21)
		in := []float64{0.8, -0.3, 0.1, 1, -1}
		const n = 300000
		sums := make([]float64, 5)
		for i := 0; i < n; i++ {
			for j, v := range c.PerturbVector(in, r) {
				sums[j] += v
			}
		}
		for j := range sums {
			got := sums[j] / n
			tol := 5 * math.Sqrt(c.CoordinateVariance(in[j])/n)
			if math.Abs(got-in[j]) > tol {
				t.Errorf("%s coord %d: mean %v, want %v +- %v", c.Name(), j, got, in[j], tol)
			}
		}
	}
}

func TestNumericCollectorVarianceMatchesEq14(t *testing.T) {
	// Empirical per-coordinate variance must match the closed form, which
	// for a PM inner mechanism is exactly Eq. 14.
	c, _ := NewNumericCollector(pmFactory, 4, 5) // k=1
	r := rng.New(22)
	in := []float64{0, 0.5, -0.7, 1, 0.2}
	const n = 300000
	accs := make([]stats.Running, 5)
	for i := 0; i < n; i++ {
		for j, v := range c.PerturbVector(in, r) {
			accs[j].Add(v)
		}
	}
	for j := range accs {
		want := c.CoordinateVariance(in[j])
		if math.Abs(accs[j].Variance()-want) > 0.04*c.WorstCaseCoordinateVariance() {
			t.Errorf("coord %d: var %v, want %v", j, accs[j].Variance(), want)
		}
	}
}

func TestEq14ClosedForm(t *testing.T) {
	// CoordinateVariance with PM inner == the paper's Eq. 14 written out.
	const eps, d = 4.0, 5
	c, _ := NewNumericCollector(pmFactory, eps, d)
	k := float64(c.K())
	e := math.Exp(eps / (2 * k))
	for _, ti := range []float64{0, 0.4, 1} {
		want := float64(d)*(e+3)/(3*k*(e-1)*(e-1)) +
			(float64(d)*e/(k*(e-1))-1)*ti*ti
		if got := c.CoordinateVariance(ti); !almostEqual(got, want, 1e-9*want) {
			t.Errorf("t=%v: CoordinateVariance = %v, want Eq.14 = %v", ti, got, want)
		}
	}
}

// TestPerturbVectorInto checks the append-style buffer-reuse contract:
// identical output to PerturbVector for the same PRNG stream, capacity
// reuse when the buffer is large enough, and stale-value clearing.
func TestPerturbVectorInto(t *testing.T) {
	const d = 12
	c, err := NewNumericCollector(pmFactory, 1, d)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float64, d)
	for j := range in {
		in[j] = math.Tanh(float64(j) - 5)
	}
	want := c.PerturbVector(in, rng.New(42))
	got := c.PerturbVectorInto(nil, in, rng.New(42))
	for j := range want {
		if want[j] != got[j] {
			t.Fatalf("coordinate %d: Into %v != PerturbVector %v", j, got[j], want[j])
		}
	}

	// A poisoned reused buffer must come back fully overwritten, in the
	// same storage.
	buf := make([]float64, d)
	for j := range buf {
		buf[j] = 99
	}
	out := c.PerturbVectorInto(buf, in, rng.New(42))
	if &out[0] != &buf[0] {
		t.Error("Into did not reuse the buffer's storage")
	}
	for j := range want {
		if out[j] != want[j] {
			t.Fatalf("reused buffer coordinate %d: %v != %v (stale value survived?)", j, out[j], want[j])
		}
	}

	// A too-small buffer grows; a longer buffer is truncated to Dim.
	if got := c.PerturbVectorInto(make([]float64, 0, 2), in, rng.New(7)); len(got) != d {
		t.Fatalf("short buffer: len %d, want %d", len(got), d)
	}
	if got := c.PerturbVectorInto(make([]float64, 3*d), in, rng.New(7)); len(got) != d {
		t.Fatalf("long buffer: len %d, want %d", len(got), d)
	}

	// The optional-interface dispatcher finds the fast path.
	if got := mech.PerturbInto(c, buf, in, rng.New(42)); &got[0] != &buf[0] {
		t.Error("mech.PerturbInto did not dispatch to PerturbVectorInto")
	}
}

func TestNumericCollectorPanicsOnWrongLength(t *testing.T) {
	c, _ := NewNumericCollector(pmFactory, 1, 3)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	c.PerturbVector([]float64{1, 2}, rng.New(23))
}

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	s, err := schema.New(
		schema.Attribute{Name: "age", Kind: schema.Numeric},
		schema.Attribute{Name: "income", Kind: schema.Numeric},
		schema.Attribute{Name: "gender", Kind: schema.Categorical, Cardinality: 2},
		schema.Attribute{Name: "region", Kind: schema.Categorical, Cardinality: 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCollectorEndToEnd(t *testing.T) {
	// Full pipeline: population -> perturbed reports -> aggregator
	// estimates of means and frequencies.
	s := testSchema(t)
	col, err := NewCollector(s, 1, pmFactory, oueFactory)
	if err != nil {
		t.Fatal(err)
	}
	agg := NewAggregator(col)

	const n = 200000
	r := rng.New(24)
	trueMeanAge, trueMeanIncome := 0.0, 0.0
	genderCount := make([]float64, 2)
	regionCount := make([]float64, 5)
	for i := 0; i < n; i++ {
		tup := schema.NewTuple(s)
		tup.Num[0] = rng.Uniform(r, -1, 1)               // age
		tup.Num[1] = rng.TruncGauss(r, 0.3, 0.25, -1, 1) // income
		tup.Cat[2] = r.IntN(2)
		tup.Cat[3] = int(math.Min(4, r.ExpFloat64()*1.5)) // skewed region
		trueMeanAge += tup.Num[0]
		trueMeanIncome += tup.Num[1]
		genderCount[tup.Cat[2]]++
		regionCount[tup.Cat[3]]++
		rep, err := col.Perturb(tup, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := agg.Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	trueMeanAge /= n
	trueMeanIncome /= n

	if agg.N() != n {
		t.Fatalf("aggregator N = %d, want %d", agg.N(), n)
	}
	gotAge, err := agg.MeanEstimate(0)
	if err != nil {
		t.Fatal(err)
	}
	gotIncome, err := agg.MeanEstimate(1)
	if err != nil {
		t.Fatal(err)
	}
	// Tolerance from the collector's worst-case coordinate variance.
	nc, _ := NewNumericCollector(pmFactory, 1, s.Dim())
	tol := 6 * math.Sqrt(nc.WorstCaseCoordinateVariance()/n)
	if math.Abs(gotAge-trueMeanAge) > tol {
		t.Errorf("age mean: got %v, want %v +- %v", gotAge, trueMeanAge, tol)
	}
	if math.Abs(gotIncome-trueMeanIncome) > tol {
		t.Errorf("income mean: got %v, want %v +- %v", gotIncome, trueMeanIncome, tol)
	}

	for attr, counts := range map[int][]float64{2: genderCount, 3: regionCount} {
		got, err := agg.FreqEstimates(attr)
		if err != nil {
			t.Fatal(err)
		}
		for v := range counts {
			want := counts[v] / n
			// ~n*k/d users report this attribute.
			nr := float64(n) * float64(col.K()) / float64(s.Dim())
			ftol := 6 * math.Sqrt(freq.TheoreticalVariance(col.Oracle(attr), want, int(nr)))
			if math.Abs(got[v]-want) > ftol {
				t.Errorf("attr %d value %d: freq %v, want %v +- %v", attr, v, got[v], want, ftol)
			}
		}
	}
}

func TestCollectorRejectsBadTuple(t *testing.T) {
	s := testSchema(t)
	col, _ := NewCollector(s, 1, pmFactory, oueFactory)
	bad := schema.NewTuple(s)
	bad.Num[0] = 3 // out of domain
	if _, err := col.Perturb(bad, rng.New(25)); err == nil {
		t.Error("want error for out-of-domain numeric value")
	}
	bad2 := schema.NewTuple(s)
	bad2.Cat[2] = 9
	if _, err := col.Perturb(bad2, rng.New(26)); err == nil {
		t.Error("want error for out-of-range categorical value")
	}
	short := schema.Tuple{Num: []float64{0}, Cat: []int{0}}
	if _, err := col.Perturb(short, rng.New(27)); err == nil {
		t.Error("want error for wrong tuple arity")
	}
}

func TestCollectorValidation(t *testing.T) {
	s := testSchema(t)
	if _, err := NewCollector(s, -1, pmFactory, oueFactory); err == nil {
		t.Error("want error for negative eps")
	}
	var empty schema.Schema
	if _, err := NewCollector(&empty, 1, pmFactory, oueFactory); err == nil {
		t.Error("want error for empty schema")
	}
}

func TestAggregatorRejectsOutOfRangeEntry(t *testing.T) {
	s := testSchema(t)
	col, _ := NewCollector(s, 1, pmFactory, oueFactory)
	agg := NewAggregator(col)
	if err := agg.Add(Report{Entries: []Entry{{Attr: 99, Value: 1}}}); err == nil {
		t.Error("want error for out-of-range attribute")
	}
	if agg.N() != 0 {
		t.Error("failed Add must not count the report")
	}
}

func TestAggregatorQueryErrors(t *testing.T) {
	s := testSchema(t)
	col, _ := NewCollector(s, 1, pmFactory, oueFactory)
	agg := NewAggregator(col)
	if _, err := agg.MeanEstimate(2); err == nil {
		t.Error("mean of categorical attribute should error")
	}
	if _, err := agg.MeanEstimate(-1); err == nil {
		t.Error("mean of invalid attribute should error")
	}
	if _, err := agg.FreqEstimates(0); err == nil {
		t.Error("frequencies of numeric attribute should error")
	}
	if _, err := agg.FreqEstimates(99); err == nil {
		t.Error("frequencies of invalid attribute should error")
	}
	if got, err := agg.MeanEstimate(0); err != nil || got != 0 {
		t.Error("empty aggregator mean should be 0, nil")
	}
}

func TestAggregatorMerge(t *testing.T) {
	s := testSchema(t)
	col, _ := NewCollector(s, 1, pmFactory, oueFactory)
	whole := NewAggregator(col)
	a, b := NewAggregator(col), NewAggregator(col)
	r := rng.New(28)
	for i := 0; i < 5000; i++ {
		tup := schema.NewTuple(s)
		tup.Num[0] = rng.Uniform(r, -1, 1)
		tup.Cat[2] = i % 2
		tup.Cat[3] = i % 5
		rep, err := col.Perturb(tup, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := whole.Add(rep); err != nil {
			t.Fatal(err)
		}
		dst := a
		if i%2 == 1 {
			dst = b
		}
		if err := dst.Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	a.Merge(b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	am, _ := a.MeanEstimate(0)
	wm, _ := whole.MeanEstimate(0)
	if !almostEqual(am, wm, 1e-12) {
		t.Errorf("merged mean %v != whole mean %v", am, wm)
	}
	af, _ := a.FreqEstimates(3)
	wf, _ := whole.FreqEstimates(3)
	for v := range af {
		if !almostEqual(af[v], wf[v], 1e-12) {
			t.Errorf("value %d: merged freq %v != whole %v", v, af[v], wf[v])
		}
	}
}

func TestNumericCollectorKAblationSanity(t *testing.T) {
	// The Eq. 12 k should be at least as good (in worst-case variance) as
	// the extreme alternatives k=1 and k=d when they differ from it.
	const eps, d = 7.5, 10 // KFor = 3
	best, _ := NewNumericCollector(pmFactory, eps, d)
	for _, k := range []int{1, d} {
		alt, err := NewNumericCollectorK(pmFactory, eps, d, k)
		if err != nil {
			t.Fatal(err)
		}
		if alt.WorstCaseCoordinateVariance() < best.WorstCaseCoordinateVariance()-1e-9 {
			t.Errorf("k=%d beats Eq.12's k=%d: %v < %v", k, best.K(),
				alt.WorstCaseCoordinateVariance(), best.WorstCaseCoordinateVariance())
		}
	}
}
