package core

import (
	"testing"

	"ldp/internal/mech"
	"ldp/internal/stattest"
)

// The statistical acceptance suite: instead of hand-picked tolerances,
// the mechanisms must pass the stattest harness — unbiased within 5
// standard errors at every probe input, empirical variance matching the
// paper's closed forms (Lemma 1 for PM, Eq. 8 for HM, Eq. 14/15 for the
// sampled collector) within a stated factor, and never above the
// worst-case bounds.

var statInputs = []float64{-1, -0.6, -0.2, 0, 0.3, 0.7, 1}

func TestPiecewiseStatistics(t *testing.T) {
	for _, eps := range []float64{0.5, 1, 2.5, 4} {
		m, err := NewPiecewise(eps)
		if err != nil {
			t.Fatal(err)
		}
		stattest.CheckMechanism(t, m, statInputs, 60_000, 0xC0DE+uint64(eps*100), 0.06)
	}
}

func TestHybridStatistics(t *testing.T) {
	for _, eps := range []float64{0.5, 1, 2.5, 4} {
		m, err := NewHybrid(eps)
		if err != nil {
			t.Fatal(err)
		}
		stattest.CheckMechanism(t, m, statInputs, 60_000, 0xF00D+uint64(eps*100), 0.06)
	}
}

// TestNumericCollectorStatistics checks the Algorithm-4 sampled collector
// as a vector perturber: each dense output coordinate is unbiased with
// the closed-form per-coordinate variance of Eq. 14, for both PM and HM
// inner mechanisms.
func TestNumericCollectorStatistics(t *testing.T) {
	const d = 5
	input := []float64{0.8, -0.4, 0, 0.25, -1}
	factories := map[string]mech.Factory{
		"pm": func(e float64) (mech.Mechanism, error) { return NewPiecewise(e) },
		"hm": func(e float64) (mech.Mechanism, error) { return NewHybrid(e) },
	}
	for name, factory := range factories {
		for _, eps := range []float64{1, 4} {
			col, err := NewNumericCollector(factory, eps, d)
			if err != nil {
				t.Fatal(err)
			}
			for _, coord := range []int{0, 2, 4} {
				stattest.CheckVectorPerturber(t, col, input, coord,
					col.CoordinateVariance(input[coord]), 60_000,
					0xA11CE+uint64(eps*100)+uint64(coord), 0.08)
			}
			if wc := col.WorstCaseCoordinateVariance(); col.CoordinateVariance(0) > wc || col.CoordinateVariance(1) > wc {
				t.Errorf("%s eps=%g: worst-case variance below a pointwise variance", name, eps)
			}
		}
	}
}
