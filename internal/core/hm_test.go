package core

import (
	"math"
	"testing"

	"ldp/internal/duchi"
	"ldp/internal/mathx"
	"ldp/internal/rng"
	"ldp/internal/stats"
)

func TestNewHybridAlphaRule(t *testing.T) {
	// Eq. 7: alpha = 1 - e^{-eps/2} above eps*, 0 at or below it.
	star := mathx.EpsStar()
	below, _ := NewHybrid(star - 0.01)
	if below.Alpha() != 0 {
		t.Errorf("alpha below eps* = %v, want 0", below.Alpha())
	}
	above, _ := NewHybrid(2)
	want := 1 - math.Exp(-1)
	if !almostEqual(above.Alpha(), want, 1e-12) {
		t.Errorf("alpha at eps=2 = %v, want %v", above.Alpha(), want)
	}
}

func TestNewHybridAlphaValidation(t *testing.T) {
	if _, err := NewHybridAlpha(1, -0.1); err == nil {
		t.Error("want error for alpha < 0")
	}
	if _, err := NewHybridAlpha(1, 1.1); err == nil {
		t.Error("want error for alpha > 1")
	}
	if _, err := NewHybridAlpha(0, 0.5); err == nil {
		t.Error("want error for eps = 0")
	}
	if _, err := NewHybridAlpha(1, math.NaN()); err == nil {
		t.Error("want error for NaN alpha")
	}
}

func TestHybridUnbiased(t *testing.T) {
	r := rng.New(10)
	const n = 400000
	for _, eps := range []float64{0.5, 1, 4} {
		m, _ := NewHybrid(eps)
		for _, ti := range []float64{-1, 0, 0.6, 1} {
			var acc stats.Running
			for i := 0; i < n; i++ {
				acc.Add(m.Perturb(ti, r))
			}
			tol := 5 * math.Sqrt(m.Variance(ti)/n)
			if math.Abs(acc.Mean()-ti) > tol {
				t.Errorf("eps=%v t=%v: mean %v, want %v +- %v", eps, ti, acc.Mean(), ti, tol)
			}
		}
	}
}

func TestHybridVarianceIsAlphaMixture(t *testing.T) {
	r := rng.New(11)
	const n = 400000
	m, _ := NewHybrid(2)
	pm, _ := NewPiecewise(2)
	du, _ := duchi.NewOneDim(2)
	for _, ti := range []float64{0, 0.5, 1} {
		var acc stats.Running
		for i := 0; i < n; i++ {
			acc.Add(m.Perturb(ti, r))
		}
		want := m.Alpha()*pm.Variance(ti) + (1-m.Alpha())*du.Variance(ti)
		if math.Abs(acc.Variance()-want) > 0.03*m.WorstCaseVariance() {
			t.Errorf("t=%v: var %v, want %v", ti, acc.Variance(), want)
		}
	}
}

func TestHybridVarianceConstantAboveEpsStar(t *testing.T) {
	// The optimal alpha cancels the t^2 terms: for eps > eps* the hybrid
	// variance is independent of t.
	for _, eps := range []float64{0.7, 1, 2, 5} {
		m, _ := NewHybrid(eps)
		v0 := m.Variance(0)
		for _, ti := range []float64{0.1, 0.5, 0.9, 1} {
			if !almostEqual(m.Variance(ti), v0, 1e-9*v0) {
				t.Errorf("eps=%v: Var(%v)=%v != Var(0)=%v", eps, ti, m.Variance(ti), v0)
			}
		}
	}
}

func TestHybridWorstCaseMatchesEq8(t *testing.T) {
	star := mathx.EpsStar()
	for _, eps := range []float64{0.3, star, 0.8, 1.29, 2, 4, 8} {
		m, _ := NewHybrid(eps)
		var want float64
		if eps > star {
			e2 := math.Exp(eps / 2)
			e1 := math.Exp(eps)
			want = (e2+3)/(3*e2*(e2-1)) + (e1+1)*(e1+1)/(e2*(e1-1)*(e1-1))
		} else {
			e1 := math.Exp(eps)
			b := (e1 + 1) / (e1 - 1)
			want = b * b
		}
		if !almostEqual(m.WorstCaseVariance(), want, 1e-9*want) {
			t.Errorf("eps=%v: worst case %v, want Eq.8 value %v", eps, m.WorstCaseVariance(), want)
		}
	}
}

func TestHybridCorollary1Dominance(t *testing.T) {
	// Corollary 1: for eps > eps*, HM's worst case is strictly below both
	// PM's and Duchi's; at or below eps*, it equals Duchi's and is below
	// PM's.
	star := mathx.EpsStar()
	for eps := 0.05; eps <= 8; eps += 0.05 {
		hm, _ := NewHybrid(eps)
		pm, _ := NewPiecewise(eps)
		du, _ := duchi.NewOneDim(eps)
		h, p, d := hm.WorstCaseVariance(), pm.WorstCaseVariance(), du.WorstCaseVariance()
		if eps > star {
			if h >= p || h >= d {
				t.Errorf("eps=%v: HM %v not below PM %v and Duchi %v", eps, h, p, d)
			}
		} else {
			if !almostEqual(h, d, 1e-9*d) || h >= p {
				t.Errorf("eps=%v: HM %v should equal Duchi %v and be below PM %v", eps, h, d, p)
			}
		}
	}
}

func TestHybridOptimalAlphaMinimizesWorstCase(t *testing.T) {
	// Lemma 3: sweeping alpha over a grid should not find a mixing
	// coefficient with a smaller worst-case variance than Eq. 7's.
	for _, eps := range []float64{0.3, 0.61, 1, 2, 5} {
		opt, _ := NewHybrid(eps)
		best := opt.WorstCaseVariance()
		for a := 0.0; a <= 1.0001; a += 0.01 {
			m, err := NewHybridAlpha(eps, math.Min(a, 1))
			if err != nil {
				t.Fatal(err)
			}
			if m.WorstCaseVariance() < best-1e-9 {
				t.Errorf("eps=%v: alpha=%v beats optimal (%v < %v)", eps, a, m.WorstCaseVariance(), best)
			}
		}
	}
}

func TestHybridSupportBound(t *testing.T) {
	m, _ := NewHybrid(1)
	pm, _ := NewPiecewise(1)
	du, _ := duchi.NewOneDim(1)
	want := math.Max(pm.SupportBound(), du.Bound())
	if m.SupportBound() != want {
		t.Errorf("SupportBound = %v, want %v", m.SupportBound(), want)
	}
	r := rng.New(12)
	for i := 0; i < 20000; i++ {
		if x := m.Perturb(0.2, r); math.Abs(x) > want+1e-12 {
			t.Fatalf("output %v beyond support bound %v", x, want)
		}
	}
}

func TestHybridAlphaZeroIsDuchi(t *testing.T) {
	// With alpha = 0 the hybrid must behave exactly like Duchi's
	// mechanism on the same PRNG stream.
	m, _ := NewHybridAlpha(1, 0)
	du, _ := duchi.NewOneDim(1)
	for seed := uint64(0); seed < 20; seed++ {
		r1, r2 := rng.New(seed), rng.New(seed)
		// Consume the alpha coin from r1's stream first.
		_ = rng.Bernoulli(r1, 0)
		got := m.Perturb(0.4, rng.New(seed))
		want := du.Perturb(0.4, rng.New(seed))
		_ = r1
		_ = r2
		// Identical streams: the first Bernoulli in Perturb uses the
		// same draw. alpha=0 means the coin is never true, but it does
		// not consume a draw (Bernoulli(p<=0) short-circuits), so the
		// sequences align exactly.
		if got != want {
			t.Fatalf("seed %d: hybrid(alpha=0) %v != duchi %v", seed, got, want)
		}
	}
}
