package core

import (
	"math"
	"testing"
	"testing/quick"

	"ldp/internal/mathx"
	"ldp/internal/rng"
	"ldp/internal/stats"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewPiecewiseValidation(t *testing.T) {
	for _, eps := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewPiecewise(eps); err == nil {
			t.Errorf("NewPiecewise(%v): want error", eps)
		}
	}
}

func TestPiecewiseSupportBound(t *testing.T) {
	// eps = 2 ln 3: e^{eps/2} = 3, C = 2.
	m, err := NewPiecewise(2 * math.Log(3))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m.SupportBound(), 2, 1e-12) {
		t.Errorf("C = %v, want 2", m.SupportBound())
	}
}

func TestPiecewiseOutputWithinBounds(t *testing.T) {
	for _, eps := range []float64{0.2, 1, 4} {
		m, _ := NewPiecewise(eps)
		r := rng.New(1)
		c := m.SupportBound()
		for i := 0; i < 20000; i++ {
			ti := rng.Uniform(r, -1, 1)
			if got := m.Perturb(ti, r); got < -c-1e-12 || got > c+1e-12 {
				t.Fatalf("eps=%v t=%v: output %v outside [-C,C]=[-%v,%v]", eps, ti, got, c, c)
			}
		}
	}
}

func TestPiecewiseUnbiased(t *testing.T) {
	r := rng.New(2)
	const n = 400000
	for _, eps := range []float64{0.5, 1, 4} {
		m, _ := NewPiecewise(eps)
		for _, ti := range []float64{-1, -0.4, 0, 0.7, 1} {
			var acc stats.Running
			for i := 0; i < n; i++ {
				acc.Add(m.Perturb(ti, r))
			}
			tol := 5 * math.Sqrt(m.Variance(ti)/n)
			if math.Abs(acc.Mean()-ti) > tol {
				t.Errorf("eps=%v t=%v: mean %v, want %v +- %v", eps, ti, acc.Mean(), ti, tol)
			}
		}
	}
}

func TestPiecewiseVarianceMatchesLemma1(t *testing.T) {
	r := rng.New(3)
	const n = 400000
	for _, eps := range []float64{1, 3} {
		m, _ := NewPiecewise(eps)
		for _, ti := range []float64{0, 0.5, 1} {
			var acc stats.Running
			for i := 0; i < n; i++ {
				acc.Add(m.Perturb(ti, r))
			}
			want := m.Variance(ti)
			if math.Abs(acc.Variance()-want) > 0.03*m.WorstCaseVariance() {
				t.Errorf("eps=%v t=%v: var %v, want %v", eps, ti, acc.Variance(), want)
			}
		}
	}
}

func TestPiecewiseWorstCaseAtUnitInput(t *testing.T) {
	m, _ := NewPiecewise(1.5)
	if !almostEqual(m.Variance(1), m.WorstCaseVariance(), 1e-12) {
		t.Errorf("Variance(1) = %v, WorstCase = %v", m.Variance(1), m.WorstCaseVariance())
	}
	if m.Variance(0) >= m.WorstCaseVariance() {
		t.Error("Variance(0) should be below the worst case")
	}
}

func TestPiecewiseVarianceDecreasesWithMagnitude(t *testing.T) {
	// Lemma 1: variance decreases as |t| decreases (opposite of Duchi).
	m, _ := NewPiecewise(2)
	prev := -1.0
	for _, ti := range []float64{0, 0.25, 0.5, 0.75, 1} {
		v := m.Variance(ti)
		if v <= prev {
			t.Errorf("variance not increasing in |t|: Var(%v)=%v, prev %v", ti, v, prev)
		}
		prev = v
	}
}

func TestPiecewiseBeatsLaplaceWorstCase(t *testing.T) {
	// Section III-B: PM's worst-case variance is strictly below the
	// Laplace mechanism's 8/eps^2 for every eps.
	for eps := 0.1; eps <= 8; eps += 0.1 {
		m, _ := NewPiecewise(eps)
		if m.WorstCaseVariance() >= 8/(eps*eps) {
			t.Errorf("eps=%v: PM worst case %v >= Laplace %v", eps, m.WorstCaseVariance(), 8/(eps*eps))
		}
	}
}

func TestPiecewisePdfNormalizes(t *testing.T) {
	for _, eps := range []float64{0.5, 2} {
		m, _ := NewPiecewise(eps)
		for _, ti := range []float64{0, 0.5, 1, -1} {
			c := m.SupportBound()
			total := mathx.Integrate(func(x float64) float64 { return m.Pdf(ti, x) }, -c, c, 200000)
			if !almostEqual(total, 1, 1e-3) {
				t.Errorf("eps=%v t=%v: pdf mass %v, want 1", eps, ti, total)
			}
		}
	}
}

func TestPiecewisePdfMeanIsT(t *testing.T) {
	m, _ := NewPiecewise(1)
	c := m.SupportBound()
	for _, ti := range []float64{0, 0.3, -0.8, 1} {
		mean := mathx.Integrate(func(x float64) float64 { return x * m.Pdf(ti, x) }, -c, c, 200000)
		if !almostEqual(mean, ti, 1e-3) {
			t.Errorf("t=%v: pdf mean %v", ti, mean)
		}
	}
}

func TestPiecewiseLDPRatioBound(t *testing.T) {
	// Definition 1 with densities: for all inputs t, t' and outputs x,
	// pdf(x|t) <= e^eps pdf(x|t'). The piecewise density takes exactly
	// two positive levels with ratio e^eps, so the bound is tight but
	// never exceeded.
	for _, eps := range []float64{0.5, 1, 3} {
		m, _ := NewPiecewise(eps)
		c := m.SupportBound()
		maxRatio := 0.0
		for _, a := range []float64{-1, -0.6, -0.2, 0, 0.3, 0.9, 1} {
			for _, b := range []float64{-1, -0.5, 0, 0.4, 1} {
				for x := -c + 1e-9; x < c; x += c / 500 {
					pa, pb := m.Pdf(a, x), m.Pdf(b, x)
					if pb > 0 {
						maxRatio = math.Max(maxRatio, pa/pb)
					}
				}
			}
		}
		if maxRatio > math.Exp(eps)+1e-9 {
			t.Errorf("eps=%v: max pdf ratio %v exceeds e^eps = %v", eps, maxRatio, math.Exp(eps))
		}
	}
}

func TestPiecewiseEmpiricalCenterMass(t *testing.T) {
	// The center piece must receive probability e^{eps/2}/(e^{eps/2}+1).
	const eps = 1.2
	m, _ := NewPiecewise(eps)
	r := rng.New(4)
	const n = 300000
	const ti = 0.3
	l, rr := m.pieces(ti)
	in := 0
	for i := 0; i < n; i++ {
		if x := m.Perturb(ti, r); x >= l && x <= rr {
			in++
		}
	}
	want := math.Exp(eps/2) / (math.Exp(eps/2) + 1)
	got := float64(in) / n
	if math.Abs(got-want) > 5*math.Sqrt(want*(1-want)/n) {
		t.Errorf("center mass = %v, want %v", got, want)
	}
}

func TestPiecewiseEdgeInputNoRightPiece(t *testing.T) {
	// At t = 1 the right piece has zero length: r(1) = C.
	m, _ := NewPiecewise(1)
	_, rr := m.pieces(1)
	if !almostEqual(rr, m.SupportBound(), 1e-12) {
		t.Errorf("r(1) = %v, want C = %v", rr, m.SupportBound())
	}
	l, _ := m.pieces(-1)
	if !almostEqual(l, -m.SupportBound(), 1e-12) {
		t.Errorf("l(-1) = %v, want -C", l)
	}
}

func TestPiecewiseClampsInput(t *testing.T) {
	m, _ := NewPiecewise(1)
	if m.Variance(7) != m.Variance(1) {
		t.Error("Variance should clamp inputs to [-1,1]")
	}
	r := rng.New(5)
	const n = 200000
	var a, b stats.Running
	for i := 0; i < n; i++ {
		a.Add(m.Perturb(3, r))
	}
	for i := 0; i < n; i++ {
		b.Add(m.Perturb(1, r))
	}
	if math.Abs(a.Mean()-b.Mean()) > 5*math.Sqrt(2*m.WorstCaseVariance()/n) {
		t.Errorf("clamped Perturb(3) mean %v differs from Perturb(1) mean %v", a.Mean(), b.Mean())
	}
}

func TestPiecewiseDeterministicGivenSeed(t *testing.T) {
	f := func(seed uint64, tRaw int8) bool {
		m, _ := NewPiecewise(1)
		ti := float64(tRaw) / 128
		return m.Perturb(ti, rng.New(seed)) == m.Perturb(ti, rng.New(seed))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
