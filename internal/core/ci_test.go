package core

import (
	"math"
	"testing"

	"ldp/internal/rng"
	"ldp/internal/schema"
)

func TestMeanCICoverage(t *testing.T) {
	// Repeated collections: the 95% interval around the mean estimate
	// should cover the true mean in at least ~95% of repetitions (it is
	// conservative, so higher coverage is fine).
	s := testSchema(t)
	col, err := NewCollector(s, 1, pmFactory, oueFactory)
	if err != nil {
		t.Fatal(err)
	}
	const reps, n = 120, 3000
	const trueMean = 0.3
	covered := 0
	r := rng.New(91)
	for rep := 0; rep < reps; rep++ {
		agg := NewAggregator(col)
		for i := 0; i < n; i++ {
			tup := schema.NewTuple(s)
			tup.Num[0] = trueMean
			rp, err := col.Perturb(tup, r)
			if err != nil {
				t.Fatal(err)
			}
			if err := agg.Add(rp); err != nil {
				t.Fatal(err)
			}
		}
		mean, hw, err := agg.MeanCI(0, 1.96)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mean-trueMean) <= hw {
			covered++
		}
	}
	if rate := float64(covered) / reps; rate < 0.93 {
		t.Errorf("MeanCI coverage = %v, want >= 0.93", rate)
	}
}

func TestMeanCIShrinksWithN(t *testing.T) {
	s := testSchema(t)
	col, _ := NewCollector(s, 1, pmFactory, oueFactory)
	r := rng.New(92)
	widths := make([]float64, 0, 2)
	for _, n := range []int{500, 5000} {
		agg := NewAggregator(col)
		for i := 0; i < n; i++ {
			tup := schema.NewTuple(s)
			rp, _ := col.Perturb(tup, r)
			if err := agg.Add(rp); err != nil {
				t.Fatal(err)
			}
		}
		_, hw, err := agg.MeanCI(0, 1.96)
		if err != nil {
			t.Fatal(err)
		}
		widths = append(widths, hw)
	}
	// 10x users -> sqrt(10) ~ 3.16x narrower.
	ratio := widths[0] / widths[1]
	if ratio < 2.5 || ratio > 4 {
		t.Errorf("CI width ratio = %v, want ~sqrt(10)", ratio)
	}
}

func TestMeanCIEmptyAndErrors(t *testing.T) {
	s := testSchema(t)
	col, _ := NewCollector(s, 1, pmFactory, oueFactory)
	agg := NewAggregator(col)
	_, hw, err := agg.MeanCI(0, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(hw, 1) {
		t.Errorf("empty aggregator half-width = %v, want +Inf", hw)
	}
	if _, _, err := agg.MeanCI(2, 1.96); err == nil {
		t.Error("MeanCI on categorical attribute should error")
	}
}

func TestFreqCICoverage(t *testing.T) {
	s := testSchema(t)
	col, err := NewCollector(s, 2, pmFactory, oueFactory)
	if err != nil {
		t.Fatal(err)
	}
	const reps, n = 100, 4000
	const trueFreq = 0.3 // value 0 of the binary "gender" attribute
	covered := 0
	r := rng.New(93)
	for rep := 0; rep < reps; rep++ {
		agg := NewAggregator(col)
		for i := 0; i < n; i++ {
			tup := schema.NewTuple(s)
			if !rng.Bernoulli(r, trueFreq) {
				tup.Cat[2] = 1
			}
			rp, err := col.Perturb(tup, r)
			if err != nil {
				t.Fatal(err)
			}
			if err := agg.Add(rp); err != nil {
				t.Fatal(err)
			}
		}
		f, hw, err := agg.FreqCI(2, 0, 1.96)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(f-trueFreq) <= hw {
			covered++
		}
	}
	// The oracle variance formula ignores attribute-sampling variation,
	// so allow slightly lower coverage than nominal.
	if rate := float64(covered) / reps; rate < 0.88 {
		t.Errorf("FreqCI coverage = %v, want >= 0.88", rate)
	}
}

func TestFreqCIErrors(t *testing.T) {
	s := testSchema(t)
	col, _ := NewCollector(s, 1, pmFactory, oueFactory)
	agg := NewAggregator(col)
	if _, _, err := agg.FreqCI(0, 0, 1.96); err == nil {
		t.Error("FreqCI on numeric attribute should error")
	}
	if _, _, err := agg.FreqCI(2, 9, 1.96); err == nil {
		t.Error("FreqCI with out-of-range value should error")
	}
	_, hw, err := agg.FreqCI(2, 0, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(hw, 1) {
		t.Errorf("empty aggregator freq half-width = %v, want +Inf", hw)
	}
}
