// Package mech defines the interfaces shared by all local-differential-
// privacy perturbation mechanisms in this module, plus the naive
// budget-splitting composition baseline used throughout Section VI of the
// paper.
//
// A Mechanism perturbs a single numeric value in [-1, 1]; a VectorPerturber
// perturbs a whole d-dimensional numeric tuple in [-1, 1]^d. The paper's
// Algorithm 4 (internal/core), Duchi et al.'s Algorithm 3 (internal/duchi),
// and the per-attribute composition wrapper in this package all satisfy
// VectorPerturber so the experiment harness and the LDP-SGD trainer can use
// them interchangeably.
package mech

import (
	"errors"
	"fmt"

	"ldp/internal/rng"
)

// ErrInvalidEpsilon is returned by mechanism constructors when the privacy
// budget is not strictly positive or is NaN/Inf.
var ErrInvalidEpsilon = errors.New("mech: privacy budget must be a positive finite number")

// Mechanism is a randomized function that perturbs one numeric value under
// eps-local differential privacy. Implementations are safe for concurrent
// use: all mutable state lives in the caller-supplied PRNG.
type Mechanism interface {
	// Name returns a short identifier ("pm", "hm", "duchi", "laplace", ...).
	Name() string
	// Epsilon returns the privacy budget the mechanism was built with.
	Epsilon() float64
	// Perturb returns an unbiased randomization of t. Inputs outside
	// [-1, 1] are clamped.
	Perturb(t float64, r *rng.Rand) float64
	// Variance returns the closed-form noise variance Var[t*|t] for
	// input t in [-1, 1].
	Variance(t float64) float64
	// WorstCaseVariance returns max over t in [-1,1] of Variance(t).
	WorstCaseVariance() float64
}

// Factory builds a Mechanism for a given budget. Algorithm 4 instantiates
// the factory at eps/k; the composition baseline at eps/d.
type Factory func(eps float64) (Mechanism, error)

// VectorPerturber perturbs a d-dimensional numeric tuple in [-1, 1]^d under
// eps-LDP (for the whole tuple). The output is a dense vector whose
// coordinate-wise expectation equals the input.
type VectorPerturber interface {
	// Name returns a short identifier.
	Name() string
	// Epsilon returns the total privacy budget for the tuple.
	Epsilon() float64
	// Dim returns the tuple dimensionality d.
	Dim() int
	// PerturbVector appends nothing and returns a freshly allocated
	// unbiased randomization of t, which must have length Dim().
	// Coordinates outside [-1, 1] are clamped before perturbation.
	PerturbVector(t []float64, r *rng.Rand) []float64
}

// VectorPerturberInto is the allocation-aware extension of
// VectorPerturber: PerturbVectorInto writes the dense output vector into
// dst's storage (append-style: dst is truncated and regrown to Dim(), its
// capacity reused when sufficient) and returns it. Client simulation and
// benchmark loops that randomize millions of tuples should reuse one
// buffer through it; PerturbInto dispatches to it when available.
type VectorPerturberInto interface {
	VectorPerturber
	PerturbVectorInto(dst, t []float64, r *rng.Rand) []float64
}

// PerturbInto randomizes t through p, reusing dst's storage when p
// implements VectorPerturberInto and falling back to the allocating
// PerturbVector otherwise. Loops over mixed perturber sets use it to get
// the allocation-free path where it exists without type-switching at
// every site.
func PerturbInto(p VectorPerturber, dst, t []float64, r *rng.Rand) []float64 {
	if pi, ok := p.(VectorPerturberInto); ok {
		return pi.PerturbVectorInto(dst, t, r)
	}
	return p.PerturbVector(t, r)
}

// ValidateEpsilon returns ErrInvalidEpsilon unless eps is a positive finite
// float.
func ValidateEpsilon(eps float64) error {
	if !(eps > 0) || eps > 1e308 {
		return fmt.Errorf("%w: %v", ErrInvalidEpsilon, eps)
	}
	return nil
}

// Clamp1 limits v to the mechanism input domain [-1, 1].
func Clamp1(v float64) float64 {
	if v < -1 {
		return -1
	}
	if v > 1 {
		return 1
	}
	return v
}

// Composed is the budget-splitting baseline: it perturbs each of the d
// coordinates independently with a 1-D mechanism run at eps/d. By the
// composition theorem the whole tuple satisfies eps-LDP. Its estimation
// error grows super-linearly in d (Section IV), which is exactly what the
// paper's experiments demonstrate; it exists here as a comparator.
type Composed struct {
	inner Mechanism
	eps   float64
	d     int
}

// NewComposed builds the composition baseline over d coordinates from the
// given 1-D mechanism factory, instantiated at eps/d.
func NewComposed(factory Factory, eps float64, d int) (*Composed, error) {
	if err := ValidateEpsilon(eps); err != nil {
		return nil, err
	}
	if d < 1 {
		return nil, fmt.Errorf("mech: composition dimension must be >= 1, got %d", d)
	}
	inner, err := factory(eps / float64(d))
	if err != nil {
		return nil, err
	}
	return &Composed{inner: inner, eps: eps, d: d}, nil
}

// Name returns "split-" followed by the inner mechanism's name.
func (c *Composed) Name() string { return "split-" + c.inner.Name() }

// Epsilon returns the total tuple budget.
func (c *Composed) Epsilon() float64 { return c.eps }

// Dim returns the tuple dimensionality.
func (c *Composed) Dim() int { return c.d }

// Inner exposes the per-coordinate mechanism (running at eps/d).
func (c *Composed) Inner() Mechanism { return c.inner }

// PerturbVector perturbs every coordinate independently at eps/d.
func (c *Composed) PerturbVector(t []float64, r *rng.Rand) []float64 {
	out := make([]float64, c.d)
	for i := 0; i < c.d; i++ {
		out[i] = c.inner.Perturb(t[i], r)
	}
	return out
}

// CoordinateVariance returns the per-coordinate noise variance of the
// composition baseline for input value v.
func (c *Composed) CoordinateVariance(v float64) float64 {
	return c.inner.Variance(v)
}
