package mech

import (
	"errors"
	"math"
	"testing"

	"ldp/internal/rng"
)

// fakeMech is a deterministic test double: it "perturbs" by adding a fixed
// offset, and records the budget it was built with.
type fakeMech struct{ eps, offset float64 }

func (f *fakeMech) Name() string                           { return "fake" }
func (f *fakeMech) Epsilon() float64                       { return f.eps }
func (f *fakeMech) Perturb(t float64, _ *rng.Rand) float64 { return Clamp1(t) + f.offset }
func (f *fakeMech) Variance(float64) float64               { return 1 }
func (f *fakeMech) WorstCaseVariance() float64             { return 1 }

func fakeFactory(eps float64) (Mechanism, error) {
	if err := ValidateEpsilon(eps); err != nil {
		return nil, err
	}
	return &fakeMech{eps: eps, offset: 0.25}, nil
}

func TestValidateEpsilon(t *testing.T) {
	for _, eps := range []float64{0, -1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := ValidateEpsilon(eps); err == nil {
			t.Errorf("ValidateEpsilon(%v): want error", eps)
		} else if !errors.Is(err, ErrInvalidEpsilon) {
			t.Errorf("ValidateEpsilon(%v): error %v not wrapping ErrInvalidEpsilon", eps, err)
		}
	}
	for _, eps := range []float64{1e-9, 0.5, 8, 100} {
		if err := ValidateEpsilon(eps); err != nil {
			t.Errorf("ValidateEpsilon(%v): unexpected error %v", eps, err)
		}
	}
}

func TestClamp1(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0.5, 0.5}, {-1.5, -1}, {3, 1}, {-1, -1}, {1, 1}, {0, 0},
	}
	for _, c := range cases {
		if got := Clamp1(c.in); got != c.want {
			t.Errorf("Clamp1(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNewComposedSplitsBudget(t *testing.T) {
	c, err := NewComposed(fakeFactory, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Inner().Epsilon() != 0.5 {
		t.Errorf("inner eps = %v, want 0.5", c.Inner().Epsilon())
	}
	if c.Epsilon() != 2 || c.Dim() != 4 {
		t.Errorf("Epsilon=%v Dim=%d", c.Epsilon(), c.Dim())
	}
	if c.Name() != "split-fake" {
		t.Errorf("Name = %q", c.Name())
	}
	if c.CoordinateVariance(0.3) != 1 {
		t.Errorf("CoordinateVariance = %v", c.CoordinateVariance(0.3))
	}
}

func TestNewComposedValidation(t *testing.T) {
	if _, err := NewComposed(fakeFactory, 0, 4); err == nil {
		t.Error("want error for eps=0")
	}
	if _, err := NewComposed(fakeFactory, 1, 0); err == nil {
		t.Error("want error for d=0")
	}
	failing := func(float64) (Mechanism, error) { return nil, errors.New("boom") }
	if _, err := NewComposed(failing, 1, 2); err == nil {
		t.Error("factory error must propagate")
	}
}

func TestComposedPerturbsEveryCoordinate(t *testing.T) {
	c, err := NewComposed(fakeFactory, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := c.PerturbVector([]float64{0, 0.5, 2 /* clamped to 1 */}, rng.New(1))
	want := []float64{0.25, 0.75, 1.25}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("coord %d = %v, want %v", i, got[i], want[i])
		}
	}
}
