package pipeline

import (
	"sync"
	"testing"
)

// TestGradientIngestModelReadRace interleaves concurrent AddBatch
// gradient ingest with Trainer round advancement and model reads (the
// state GET /v1/model serves). Run it under -race, as the CI race job
// does; under the plain runner it still proves two invariants exactly:
//
//   - no torn model reads: with the identity mechanism every accepted
//     report is the all-ones gradient, so every published model must
//     satisfy Beta[0] == Beta[1] == expectedBeta(Round) bit-for-bit, and
//     rounds must be observed in nondecreasing order;
//   - exactly-once round transitions: training ends Done with exactly
//     Rounds*GroupSize accepted reports — a double-advanced or skipped
//     round would leave a different count — and accepted+stale equals
//     the number of reports submitted.
func TestGradientIngestModelReadRace(t *testing.T) {
	const (
		rounds     = 20
		group      = 32
		writers    = 8
		perBatch   = 8
		readers    = 4
		readPasses = 2000
	)
	p := newGradientPipeline(t, rounds, group)
	tr := p.Trainer()

	// Exact trajectory table, computed up front.
	wantBeta := make([]float64, rounds+1)
	for r := 1; r <= rounds; r++ {
		wantBeta[r] = expectedBeta(r)
	}

	var submitted int64
	var mu sync.Mutex // guards submitted
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := NewReportBatch()
			n := int64(0)
			for {
				m := tr.Model()
				if m.Done {
					break
				}
				b.Reset()
				for i := 0; i < perBatch; i++ {
					b.StartGradientReport(int32(m.Round))
					b.AppendNumeric(0, 1)
					b.AppendNumeric(1, 1)
				}
				if err := p.AddBatch(b); err != nil {
					t.Error(err)
					return
				}
				n += perBatch
			}
			mu.Lock()
			submitted += n
			mu.Unlock()
		}()
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := 0
			for i := 0; i < readPasses; i++ {
				m := tr.Model()
				if m.Round < last {
					t.Errorf("model round went backwards: %d after %d", m.Round, last)
					return
				}
				last = m.Round
				if m.Round < 0 || m.Round > rounds || len(m.Beta) != 2 {
					t.Errorf("malformed model %+v", m)
					return
				}
				if m.Beta[0] != m.Beta[1] || m.Beta[0] != wantBeta[m.Round] {
					t.Errorf("torn model read at round %d: beta = %v, want %v", m.Round, m.Beta, wantBeta[m.Round])
					return
				}
				// Cross-state reads race alongside: counters and snapshots
				// must not tear either.
				_ = p.N()
				if i%100 == 0 {
					_ = p.Snapshot()
					_ = p.TaskCounts()
				}
			}
		}()
	}
	wg.Wait()

	m := tr.Model()
	if !m.Done || m.Round != rounds {
		t.Fatalf("final model = %+v, want done at round %d", m, rounds)
	}
	if m.Beta[0] != wantBeta[rounds] || m.Beta[1] != wantBeta[rounds] {
		t.Fatalf("final beta = %v, want %v", m.Beta, wantBeta[rounds])
	}
	if got, want := tr.Accepted(), int64(rounds*group); got != want {
		t.Fatalf("accepted = %d, want exactly %d (exactly-once round transitions)", got, want)
	}
	if got, want := tr.Accepted()+tr.Stale(), submitted; got != want {
		t.Fatalf("accepted+stale = %d, want %d submitted (lost or double-counted reports)", got, want)
	}
}
