package pipeline

import (
	"math"
	"strings"
	"testing"

	"ldp/internal/core"
	"ldp/internal/rangequery"
	"ldp/internal/rng"
)

// statePipeline builds a pipeline with every analytics task registered.
func statePipeline(t testing.TB, shards int) *Pipeline {
	t.Helper()
	p, err := New(testSchema(t), 4,
		WithShards(shards),
		WithRange(rangequery.Config{Buckets: 32, GridCells: 4}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// quantize snaps a value onto a 2^-10 grid. Sums of such dyadic rationals
// are exact in float64 at any association order, which is what makes the
// bit-identical distributed-exactness assertions meaningful for the mean
// sums (support counts are small integers and always exact).
func quantize(v float64) float64 { return math.Round(v*1024) / 1024 }

// ingestStateReports feeds n randomized reports (seeded from stream) into
// each of the given pipelines, quantizing numeric payloads so that sums
// are exact under regrouping.
func ingestStateReports(t testing.TB, stream uint64, n int, ps ...*Pipeline) {
	t.Helper()
	s := ps[0].Schema()
	for i := 0; i < n; i++ {
		r := rng.NewStream(stream, uint64(i))
		rep, err := ps[0].Randomize(sampleTuple(s, r), r)
		if err != nil {
			t.Fatal(err)
		}
		for e := range rep.Entries {
			if rep.Entries[e].Kind == core.EntryNumeric {
				rep.Entries[e].Value = quantize(rep.Entries[e].Value)
			}
		}
		for _, p := range ps {
			if err := p.Add(rep); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// assertResultsIdentical compares every estimate surface of two results
// bit for bit.
func assertResultsIdentical(t *testing.T, got, want *Result) {
	t.Helper()
	if got.N() != want.N() || got.Watermark() != want.Watermark() {
		t.Fatalf("N/watermark: got %d/%d, want %d/%d", got.N(), got.Watermark(), want.N(), want.Watermark())
	}
	gm, wm := got.Means(), want.Means()
	for k, v := range wm {
		if gm[k] != v {
			t.Errorf("Means[%s]: got %v, want %v (diff %g)", k, gm[k], v, gm[k]-v)
		}
	}
	for _, attr := range []string{"gender"} {
		gf, err1 := got.FreqView(attr)
		wf, err2 := want.FreqView(attr)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		for i := range wf {
			if gf[i] != wf[i] {
				t.Errorf("FreqView(%s)[%d]: got %v, want %v", attr, i, gf[i], wf[i])
			}
		}
	}
	queries := []RangeQuery{
		{Attr: "age", Lo: -0.5, Hi: 0.5},
		{Attr: "income", Lo: -1, Hi: 0.25},
		{Attr: "age", Lo: -0.25, Hi: 0.75, Attr2: "income", Lo2: -0.5, Hi2: 0.5},
	}
	for _, q := range queries {
		gr, err1 := got.Range(q)
		wr, err2 := want.Range(q)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if gr != wr {
			t.Errorf("Range(%+v): got %v, want %v", q, gr, wr)
		}
	}
}

func TestStateSnapshotMergeExact(t *testing.T) {
	src := statePipeline(t, 3)
	ref := statePipeline(t, 1)
	ingestStateReports(t, 11, 4000, src, ref)

	st := src.StateSnapshot()
	if st.Total() != 4000 {
		t.Fatalf("state total %d, want 4000", st.Total())
	}
	dst := statePipeline(t, 2)
	if err := dst.MergeState(st); err != nil {
		t.Fatal(err)
	}
	if dst.Watermark() != 4000 {
		t.Fatalf("merged watermark %d, want 4000", dst.Watermark())
	}
	assertResultsIdentical(t, dst.Snapshot(), ref.Snapshot())
}

func TestStateSubAddRoundTrip(t *testing.T) {
	src := statePipeline(t, 2)
	ingestStateReports(t, 21, 1500, src)
	st1 := src.StateSnapshot()
	ingestStateReports(t, 22, 1500, src)
	st2 := src.StateSnapshot()

	delta, err := st2.Sub(st1)
	if err != nil {
		t.Fatal(err)
	}
	if delta.Total() != 1500 {
		t.Fatalf("delta total %d, want 1500", delta.Total())
	}

	// acked + delta must reproduce the full state exactly.
	acked := st1.Clone()
	if err := acked.Add(delta); err != nil {
		t.Fatal(err)
	}
	dst1 := statePipeline(t, 1)
	if err := dst1.MergeState(acked); err != nil {
		t.Fatal(err)
	}
	dst2 := statePipeline(t, 1)
	if err := dst2.MergeState(st2); err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, dst1.Snapshot(), dst2.Snapshot())

	// Sub against nil is a deep copy.
	full, err := st2.Sub(nil)
	if err != nil {
		t.Fatal(err)
	}
	if full.Total() != st2.Total() {
		t.Fatalf("Sub(nil) total %d, want %d", full.Total(), st2.Total())
	}
}

func TestMergeStateViewInvalidation(t *testing.T) {
	src := statePipeline(t, 1)
	ingestStateReports(t, 31, 200, src)
	dst := statePipeline(t, 1)
	v0 := dst.View()
	if err := dst.MergeState(src.StateSnapshot()); err != nil {
		t.Fatal(err)
	}
	v1 := dst.View()
	if v1 == v0 || v1.N() != 200 {
		t.Fatalf("view did not rebuild after MergeState: N=%d", v1.N())
	}
}

func TestCheckStateRejects(t *testing.T) {
	src := statePipeline(t, 1)
	ingestStateReports(t, 41, 100, src)
	dst := statePipeline(t, 1)

	cases := []struct {
		name    string
		mutate  func(st *AggState)
		wantErr string
	}{
		{"negative count", func(st *AggState) { st.NMean = -1 }, "negative report count"},
		{"dim mismatch", func(st *AggState) { st.MeanSum = st.MeanSum[:1] }, "dimension mismatch"},
		{"non-finite sum", func(st *AggState) { st.MeanSum[0] = math.NaN() }, "non-finite mean sum"},
		{"negative support", func(st *AggState) { st.FreqCounts[2][0] = -3 }, "negative or non-finite"},
		{"trainer state", func(st *AggState) { st.Trainer = &TrainerState{} }, "training state"},
		{"range count mismatch", func(st *AggState) { st.Range.N++ }, "does not match"},
		{"range domain", func(st *AggState) {
			st.Range.Levels[0].Counts = st.Range.Levels[0].Counts[:1]
		}, "domain"},
		{"counts for numeric attr", func(st *AggState) { st.FreqN[0] = 5 }, "numeric attribute"},
	}
	for _, tc := range cases {
		st := src.StateSnapshot()
		tc.mutate(st)
		err := dst.MergeState(st)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want contains %q", tc.name, err, tc.wantErr)
		}
	}
	if err := dst.MergeState(nil); err == nil {
		t.Error("MergeState(nil) succeeded")
	}
	if dst.Watermark() != 0 {
		t.Fatalf("rejected merges mutated state: watermark %d", dst.Watermark())
	}
}

func TestFingerprint(t *testing.T) {
	base := statePipeline(t, 1)
	same := statePipeline(t, 4) // shard count must not matter
	if base.Fingerprint() != same.Fingerprint() {
		t.Fatal("fingerprint differs across shard counts")
	}

	s := testSchema(t)
	build := func(eps float64, opts ...Option) *Pipeline {
		p, err := New(s, eps, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	rc := rangequery.Config{Buckets: 32, GridCells: 4}
	variants := map[string]*Pipeline{
		"eps":      build(2, WithRange(rc)),
		"no range": build(4),
		"buckets":  build(4, WithRange(rangequery.Config{Buckets: 64, GridCells: 4})),
		"cells":    build(4, WithRange(rangequery.Config{Buckets: 32, GridCells: 8})),
	}
	for name, p := range variants {
		if p.Fingerprint() == base.Fingerprint() {
			t.Errorf("%s: fingerprint collision with base", name)
		}
	}

	// Gradient presence must NOT change the fingerprint: a training root
	// still accepts analytics fan-in.
	grad := build(4, WithRange(rc), WithGradient(GradientConfig{Dim: 3, Rounds: 2, GroupSize: 4, Eta: 1, Lambda: 1e-4}))
	if grad.Fingerprint() != base.Fingerprint() {
		t.Error("gradient task changed the fingerprint")
	}
}

func TestStateSnapshotCarriesTrainerButMergeRejects(t *testing.T) {
	p, err := New(testSchema(t), 4, WithGradient(GradientConfig{Dim: 3, Rounds: 2, GroupSize: 4, Eta: 1, Lambda: 1e-4}))
	if err != nil {
		t.Fatal(err)
	}
	st := p.StateSnapshot()
	if st.Trainer == nil {
		t.Fatal("trainer snapshot missing from exported state")
	}
	dst, err := New(testSchema(t), 4, WithGradient(GradientConfig{Dim: 3, Rounds: 2, GroupSize: 4, Eta: 1, Lambda: 1e-4}))
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.MergeState(st); err == nil {
		t.Fatal("MergeState accepted trainer-bearing state")
	}
	st.Trainer = nil
	if err := dst.MergeState(st); err != nil {
		t.Fatalf("MergeState rejected trainer-free state: %v", err)
	}
}
