package pipeline

import (
	"fmt"
	"sync/atomic"
	"time"

	"ldp/internal/freq"
	"ldp/internal/rangequery"
	"ldp/internal/schema"
)

// RangeQuery describes a range query against a Result. Attr alone selects
// a 1-D query over [Lo, Hi]; setting Attr2 as well selects the conjunctive
// 2-D query Attr in [Lo, Hi] AND Attr2 in [Lo2, Hi2].
type RangeQuery struct {
	Attr     string
	Lo, Hi   float64
	Attr2    string
	Lo2, Hi2 float64
}

// Result is an immutable point-in-time view of a Pipeline's aggregate
// state, produced by Pipeline.Snapshot (or served from the epoch cache by
// Pipeline.View). It answers every query kind the pipeline collects: Mean
// for numeric attributes, Freq for categorical attributes, and Range for
// 1-D/2-D range queries. Methods are safe for concurrent use.
//
// Internally a Result is raw state plus precomputed constants, not
// rebuilt estimators: numeric sums, pooled frequency-oracle support
// counts debiased lazily per queried attribute (the combined estimate is
// memoized, so repeated queries are lookups), and a rangequery.View whose
// interval-tree estimates and Norm-Sub-consistent grids were computed
// once at snapshot time.
type Result struct {
	sch *schema.Schema

	// watermark is the ingest watermark the snapshot captured: exactly
	// the number of reports it contains. epoch and built are stamped by
	// the view cache (epoch 0 for a plain Snapshot).
	watermark int64
	epoch     uint64
	built     time.Time

	nMean, nFreq, nJoint, nRange int64

	meanSum  []float64
	jointSum []float64

	// Pooled support counts by attribute (nil entries for numeric
	// attributes), with the oracles that debias them. The freq task and
	// legacy joint reports run their oracles at different budgets, so the
	// two streams pool separately and combine at query time.
	freqOracles  []freq.Oracle
	jointOracles []freq.Oracle
	freqCounts   [][]float64
	freqN        []int64
	jointCounts  [][]float64
	jointN       []int64

	// freqCache memoizes the combined debiased estimate per attribute:
	// computed on first query, a pure lookup afterwards.
	freqCache []atomic.Pointer[[]float64]

	rangeView *rangequery.View
}

// N returns the total number of reports in the snapshot.
func (r *Result) N() int64 { return r.nMean + r.nFreq + r.nJoint + r.nRange }

// NTask returns the number of reports of one task kind in the snapshot.
func (r *Result) NTask(kind TaskKind) int64 {
	switch kind {
	case TaskMean:
		return r.nMean
	case TaskFreq:
		return r.nFreq
	case TaskJoint:
		return r.nJoint
	case TaskRange:
		return r.nRange
	default:
		return 0
	}
}

// Watermark returns the ingest watermark the snapshot captured: the
// number of reports folded into the pipeline's shards when it was taken
// (equal to N by construction).
func (r *Result) Watermark() int64 { return r.watermark }

// Epoch returns the view-cache build sequence number of this result, or 0
// for a result built by a direct Snapshot call. Epochs from one
// pipeline's View are strictly increasing, which is what makes them
// usable as HTTP ETags: equal epoch implies byte-identical answers.
func (r *Result) Epoch() uint64 { return r.epoch }

// BuiltAt returns when the view cache materialized this result. It is
// the zero time for a result built by a direct Snapshot call, and for
// cached views on pipelines without a wall-clock staleness bound (the
// timestamp exists to serve that bound, so it is only taken when
// WithQueryStaleness configures a nonzero maxAge).
func (r *Result) BuiltAt() time.Time { return r.built }

// Schema returns the snapshot's schema.
func (r *Result) Schema() *schema.Schema { return r.sch }

// attrIndex resolves an attribute name.
func (r *Result) attrIndex(name string) (int, error) {
	for i, a := range r.sch.Attrs {
		if a.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("pipeline: unknown attribute %q", name)
}

// Mean estimates the mean of the named numeric attribute. Reports from
// the mean task and legacy joint reports are both unbiased per-report
// contributions to the attribute sum, so the combined estimator divides
// the pooled sum by the pooled report count.
func (r *Result) Mean(attr string) (float64, error) {
	i, err := r.attrIndex(attr)
	if err != nil {
		return 0, err
	}
	if r.sch.Attrs[i].Kind != schema.Numeric {
		return 0, fmt.Errorf("pipeline: attribute %q is not numeric", attr)
	}
	n := r.nMean + r.nJoint
	if n == 0 {
		return 0, nil
	}
	return (r.meanSum[i] + r.jointSum[i]) / float64(n), nil
}

// Means returns the estimated mean of every numeric attribute, keyed by
// attribute name.
func (r *Result) Means() map[string]float64 {
	out := make(map[string]float64)
	for _, a := range r.sch.Attrs {
		if a.Kind != schema.Numeric {
			continue
		}
		m, _ := r.Mean(a.Name)
		out[a.Name] = m
	}
	return out
}

// freqCombined returns the memoized combined frequency estimate of
// categorical attribute i: on first call it debiases the freq-task and
// legacy-joint support counts through their DebiasViews and combines the
// two streams weighted by per-attribute reporter counts; afterwards it is
// an atomic load. The returned slice is shared — callers must not write
// to it.
func (r *Result) freqCombined(i int) []float64 {
	if ptr := r.freqCache[i].Load(); ptr != nil {
		return *ptr
	}
	out := make([]float64, r.sch.Attrs[i].Cardinality)
	var nF, nJ int64
	if r.freqCounts != nil && r.freqCounts[i] != nil {
		nF = r.freqN[i]
	}
	if r.jointCounts != nil && r.jointCounts[i] != nil {
		nJ = r.jointN[i]
	}
	if nF+nJ > 0 {
		wF := float64(nF) / float64(nF+nJ)
		wJ := float64(nJ) / float64(nF+nJ)
		if nF > 0 {
			fv := freq.NewDebiasView(r.freqOracles[i], r.freqCounts[i], nF)
			for v := range out {
				out[v] += wF * fv.Estimate(v)
			}
		}
		if nJ > 0 {
			jv := freq.NewDebiasView(r.jointOracles[i], r.jointCounts[i], nJ)
			for v := range out {
				out[v] += wJ * jv.Estimate(v)
			}
		}
	}
	// A racing first query may store a concurrently computed slice; both
	// are identical (pure function of immutable state), so either wins.
	r.freqCache[i].Store(&out)
	return out
}

// Freq estimates the frequency of every value of the named categorical
// attribute. The returned slice is a fresh copy the caller may modify;
// query paths that must not allocate should use FreqView.
func (r *Result) Freq(attr string) ([]float64, error) {
	shared, err := r.FreqView(attr)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(shared))
	copy(out, shared)
	return out, nil
}

// FreqView returns the combined frequency estimate of the named
// categorical attribute as a shared read-only slice: after the first call
// for an attribute the answer is memoized on the Result, so a cached-view
// query allocates nothing. Callers must not modify the returned slice.
func (r *Result) FreqView(attr string) ([]float64, error) {
	i, err := r.attrIndex(attr)
	if err != nil {
		return nil, err
	}
	if r.sch.Attrs[i].Kind != schema.Categorical {
		return nil, fmt.Errorf("pipeline: attribute %q is not categorical", attr)
	}
	return r.freqCombined(i), nil
}

// Range answers a 1-D or 2-D range query (see RangeQuery) from the
// snapshot's precomputed range view: a pure lookup with zero allocation.
// It errors when the pipeline was built without WithRange.
func (r *Result) Range(q RangeQuery) (float64, error) {
	if r.rangeView == nil {
		return 0, fmt.Errorf("pipeline: range queries need a pipeline built with WithRange")
	}
	i, err := r.attrIndex(q.Attr)
	if err != nil {
		return 0, err
	}
	if q.Attr2 == "" {
		return r.rangeView.Range1D(i, q.Lo, q.Hi)
	}
	j, err := r.attrIndex(q.Attr2)
	if err != nil {
		return 0, err
	}
	return r.rangeView.Range2D(i, j, q.Lo, q.Hi, q.Lo2, q.Hi2)
}

// RangeView exposes the snapshot's precomputed range-query view (nil when
// the range task is absent), for callers that need the lower-level
// estimator surface.
func (r *Result) RangeView() *rangequery.View { return r.rangeView }
