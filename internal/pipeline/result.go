package pipeline

import (
	"fmt"

	"ldp/internal/freq"
	"ldp/internal/rangequery"
	"ldp/internal/schema"
)

// RangeQuery describes a range query against a Result. Attr alone selects
// a 1-D query over [Lo, Hi]; setting Attr2 as well selects the conjunctive
// 2-D query Attr in [Lo, Hi] AND Attr2 in [Lo2, Hi2].
type RangeQuery struct {
	Attr     string
	Lo, Hi   float64
	Attr2    string
	Lo2, Hi2 float64
}

// Result is an immutable point-in-time view of a Pipeline's aggregate
// state, produced by Pipeline.Snapshot. It answers every query kind the
// pipeline collects: Mean for numeric attributes, Freq for categorical
// attributes, and Range for 1-D/2-D range queries. Methods are safe for
// concurrent use.
type Result struct {
	sch *schema.Schema

	nMean, nFreq, nJoint, nRange int64

	meanSum  []float64
	jointSum []float64
	freqEst  []*freq.Estimator
	jointEst []*freq.Estimator
	rangeAgg *rangequery.Aggregator
}

// N returns the total number of reports in the snapshot.
func (r *Result) N() int64 { return r.nMean + r.nFreq + r.nJoint + r.nRange }

// NTask returns the number of reports of one task kind in the snapshot.
func (r *Result) NTask(kind TaskKind) int64 {
	switch kind {
	case TaskMean:
		return r.nMean
	case TaskFreq:
		return r.nFreq
	case TaskJoint:
		return r.nJoint
	case TaskRange:
		return r.nRange
	default:
		return 0
	}
}

// Schema returns the snapshot's schema.
func (r *Result) Schema() *schema.Schema { return r.sch }

// attrIndex resolves an attribute name.
func (r *Result) attrIndex(name string) (int, error) {
	for i, a := range r.sch.Attrs {
		if a.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("pipeline: unknown attribute %q", name)
}

// Mean estimates the mean of the named numeric attribute. Reports from
// the mean task and legacy joint reports are both unbiased per-report
// contributions to the attribute sum, so the combined estimator divides
// the pooled sum by the pooled report count.
func (r *Result) Mean(attr string) (float64, error) {
	i, err := r.attrIndex(attr)
	if err != nil {
		return 0, err
	}
	if r.sch.Attrs[i].Kind != schema.Numeric {
		return 0, fmt.Errorf("pipeline: attribute %q is not numeric", attr)
	}
	n := r.nMean + r.nJoint
	if n == 0 {
		return 0, nil
	}
	return (r.meanSum[i] + r.jointSum[i]) / float64(n), nil
}

// Means returns the estimated mean of every numeric attribute, keyed by
// attribute name.
func (r *Result) Means() map[string]float64 {
	out := make(map[string]float64)
	for _, a := range r.sch.Attrs {
		if a.Kind != schema.Numeric {
			continue
		}
		m, _ := r.Mean(a.Name)
		out[a.Name] = m
	}
	return out
}

// Freq estimates the frequency of every value of the named categorical
// attribute. Freq-task reports and legacy joint reports run their oracles
// at different budgets, so each stream is debiased with its own estimator
// and the two estimates are combined weighted by per-attribute reporter
// counts.
func (r *Result) Freq(attr string) ([]float64, error) {
	i, err := r.attrIndex(attr)
	if err != nil {
		return nil, err
	}
	a := r.sch.Attrs[i]
	if a.Kind != schema.Categorical {
		return nil, fmt.Errorf("pipeline: attribute %q is not categorical", attr)
	}
	var fEst, jEst *freq.Estimator
	if r.freqEst != nil {
		fEst = r.freqEst[i]
	}
	if r.jointEst != nil {
		jEst = r.jointEst[i]
	}
	var nF, nJ int64
	if fEst != nil {
		nF = fEst.N()
	}
	if jEst != nil {
		nJ = jEst.N()
	}
	out := make([]float64, a.Cardinality)
	if nF+nJ == 0 {
		return out, nil
	}
	wF := float64(nF) / float64(nF+nJ)
	wJ := float64(nJ) / float64(nF+nJ)
	if nF > 0 {
		for v, f := range fEst.Estimates() {
			out[v] += wF * f
		}
	}
	if nJ > 0 {
		for v, f := range jEst.Estimates() {
			out[v] += wJ * f
		}
	}
	return out, nil
}

// Range answers a 1-D or 2-D range query (see RangeQuery). It errors when
// the pipeline was built without WithRange.
func (r *Result) Range(q RangeQuery) (float64, error) {
	if r.rangeAgg == nil {
		return 0, fmt.Errorf("pipeline: range queries need a pipeline built with WithRange")
	}
	i, err := r.attrIndex(q.Attr)
	if err != nil {
		return 0, err
	}
	if q.Attr2 == "" {
		return r.rangeAgg.Range1D(i, q.Lo, q.Hi)
	}
	j, err := r.attrIndex(q.Attr2)
	if err != nil {
		return 0, err
	}
	return r.rangeAgg.Range2D(i, j, q.Lo, q.Hi, q.Lo2, q.Hi2)
}

// RangeAggregator exposes the snapshot's merged range aggregator (nil when
// the range task is absent), for callers that need the lower-level
// estimator surface.
func (r *Result) RangeAggregator() *rangequery.Aggregator { return r.rangeAgg }
