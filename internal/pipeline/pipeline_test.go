package pipeline

import (
	"math"
	"strings"
	"testing"

	"ldp/internal/core"
	"ldp/internal/freq"
	"ldp/internal/mech"
	"ldp/internal/rangequery"
	"ldp/internal/rng"
	"ldp/internal/schema"
	"ldp/internal/stattest"
)

func testSchema(t testing.TB) *schema.Schema {
	t.Helper()
	s, err := schema.New(
		schema.Attribute{Name: "age", Kind: schema.Numeric},
		schema.Attribute{Name: "income", Kind: schema.Numeric},
		schema.Attribute{Name: "gender", Kind: schema.Categorical, Cardinality: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// sampleTuple draws one synthetic user: skewed numerics, biased binary
// categorical.
func sampleTuple(s *schema.Schema, r *rng.Rand) schema.Tuple {
	tup := schema.NewTuple(s)
	tup.Num[0] = math.Tanh(0.4 + 0.3*r.NormFloat64())
	tup.Num[1] = math.Tanh(-0.2 + 0.5*r.NormFloat64())
	if r.Float64() < 0.7 {
		tup.Cat[2] = 1
	}
	return tup
}

func TestPipelineEndToEnd(t *testing.T) {
	s := testSchema(t)
	p, err := New(s, 4,
		WithShards(4),
		WithRange(rangequery.Config{Buckets: 64, GridCells: 4}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Tasks()) != 3 {
		t.Fatalf("got %d tasks, want 3", len(p.Tasks()))
	}

	const users = 60_000
	var trueAge, trueInc, trueG1, trueBand float64
	for i := 0; i < users; i++ {
		r := rng.NewStream(7, uint64(i))
		tup := sampleTuple(s, r)
		trueAge += tup.Num[0]
		trueInc += tup.Num[1]
		trueG1 += float64(tup.Cat[2])
		if tup.Num[0] >= -0.5 && tup.Num[0] <= 0.5 {
			trueBand++
		}
		rep, err := p.Randomize(tup, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	if p.N() != users {
		t.Fatalf("N = %d, want %d", p.N(), users)
	}

	res := p.Snapshot()
	if res.N() != users {
		t.Fatalf("snapshot N = %d, want %d", res.N(), users)
	}
	// The mean estimates must land within 5 sigma of the truth, with
	// sigma from the mean task's closed-form worst-case per-report
	// variance over the reports the task actually received (stattest
	// replaces the old hand-picked 0.05 tolerance).
	mt := p.MeanTask()
	scale := float64(len(s.NumericIdx())) / float64(mt.K())
	wcPerReport := math.Max(
		scale*mt.Mechanism().Variance(0),
		scale*(mt.Mechanism().Variance(1)+1)-1,
	)
	nMean := int(res.NTask(TaskMean))
	age, err := res.Mean("age")
	if err != nil {
		t.Fatal(err)
	}
	stattest.CheckEstimate(t, "Mean(age)", age, trueAge/users, wcPerReport, nMean)
	inc, err := res.Mean("income")
	if err != nil {
		t.Fatal(err)
	}
	stattest.CheckEstimate(t, "Mean(income)", inc, trueInc/users, wcPerReport, nMean)
	freqs, err := res.Freq("gender")
	if err != nil {
		t.Fatal(err)
	}
	if want := trueG1 / users; math.Abs(freqs[1]-want) > 0.05 {
		t.Errorf("Freq(gender)[1] = %v, want about %v", freqs[1], want)
	}
	mass, err := res.Range(RangeQuery{Attr: "age", Lo: -0.5, Hi: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Range estimates carry LDP noise over the task's subsample plus
	// outward rounding of query endpoints to bucket boundaries, so the
	// tolerance is looser than for means.
	if want := trueBand / users; math.Abs(mass-want) > 0.12 {
		t.Errorf("Range(age in [-0.5,0.5]) = %v, want about %v", mass, want)
	}

	// Wrong-kind queries error.
	if _, err := res.Mean("gender"); err == nil {
		t.Error("Mean on categorical attribute should error")
	}
	if _, err := res.Freq("age"); err == nil {
		t.Error("Freq on numeric attribute should error")
	}
	if _, err := res.Mean("nope"); err == nil {
		t.Error("unknown attribute should error")
	}
}

func TestPipelineJointIngest(t *testing.T) {
	s := testSchema(t)
	p, err := New(s, 1, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	col, err := core.NewCollector(s, 1,
		func(e float64) (mech.Mechanism, error) { return core.NewPiecewise(e) },
		func(e float64, k int) (freq.Oracle, error) { return freq.NewOUE(e, k) },
	)
	if err != nil {
		t.Fatal(err)
	}

	const users = 50_000
	var trueAge, trueG1 float64
	for i := 0; i < users; i++ {
		r := rng.NewStream(11, uint64(i))
		tup := sampleTuple(s, r)
		trueAge += tup.Num[0]
		trueG1 += float64(tup.Cat[2])
		rep, err := col.Perturb(tup, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Add(Report{Task: TaskJoint, Entries: rep.Entries}); err != nil {
			t.Fatal(err)
		}
	}

	res := p.Snapshot()
	if res.NTask(TaskJoint) != users {
		t.Fatalf("joint count = %d, want %d", res.NTask(TaskJoint), users)
	}
	age, err := res.Mean("age")
	if err != nil {
		t.Fatal(err)
	}
	if want := trueAge / users; math.Abs(age-want) > 0.08 {
		t.Errorf("joint Mean(age) = %v, want about %v", age, want)
	}
	freqs, err := res.Freq("gender")
	if err != nil {
		t.Fatal(err)
	}
	if want := trueG1 / users; math.Abs(freqs[1]-want) > 0.08 {
		t.Errorf("joint Freq(gender)[1] = %v, want about %v", freqs[1], want)
	}
}

func TestPipelineTaskWeights(t *testing.T) {
	s := testSchema(t)
	p, err := New(s, 1, WithTaskWeight(TaskFreq, 0))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	for i := 0; i < 500; i++ {
		rep, err := p.Randomize(sampleTuple(s, r), r)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Task == TaskFreq {
			t.Fatal("zero-weight task received a report")
		}
		if err := p.Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	if n := p.Snapshot().NTask(TaskMean); n == 0 {
		t.Error("mean task should receive every report")
	}
}

func TestPipelineOptionErrors(t *testing.T) {
	s := testSchema(t)
	cases := []struct {
		name string
		opts []Option
		want string
	}{
		{"bad shards", []Option{WithShards(0)}, "shards"},
		{"negative weight", []Option{WithTaskWeight(TaskMean, -1)}, "weight"},
		{"joint weight", []Option{WithTaskWeight(TaskJoint, 1)}, "cannot weight"},
		{"all zero", []Option{WithTaskWeight(TaskMean, 0), WithTaskWeight(TaskFreq, 0)}, "zero"},
		{"nil mech", []Option{WithMechanism(nil)}, "WithMechanism"},
		{"nil oracle", []Option{WithOracle(nil)}, "WithOracle"},
	}
	for _, tc := range cases {
		if _, err := New(s, 1, tc.opts...); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}

	// A weight for a task the schema cannot register errors.
	numOnly, err := schema.New(schema.Attribute{Name: "x", Kind: schema.Numeric})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(numOnly, 1, WithTaskWeight(TaskFreq, 1)); err == nil {
		t.Error("weight for unregistered task should error")
	}
	// Range weight without WithRange errors too.
	if _, err := New(numOnly, 1, WithTaskWeight(TaskRange, 1)); err == nil {
		t.Error("range weight without WithRange should error")
	}
	if _, err := New(numOnly, 0, nil...); err == nil {
		t.Error("eps = 0 should error")
	}
}

func TestPipelineValidation(t *testing.T) {
	s := testSchema(t)
	p, err := New(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	bits := freq.NewBitset(2)
	cases := []struct {
		name string
		rep  Report
	}{
		{"unknown task", Report{Task: TaskKind(99)}},
		{"empty mean", Report{Task: TaskMean}},
		{"attr out of range", Report{Task: TaskMean, Entries: []core.Entry{{Attr: 9, Kind: core.EntryNumeric}}}},
		{"mean on categorical", Report{Task: TaskMean, Entries: []core.Entry{{Attr: 2, Kind: core.EntryNumeric}}}},
		{"nan value", Report{Task: TaskMean, Entries: []core.Entry{{Attr: 0, Kind: core.EntryNumeric, Value: math.NaN()}}}},
		{"freq with numeric entry", Report{Task: TaskFreq, Entries: []core.Entry{{Attr: 0, Kind: core.EntryNumeric}}}},
		{"bitset width", Report{Task: TaskFreq, Entries: []core.Entry{{Attr: 2, Kind: core.EntryCategoricalBits, Resp: freq.Response{Bits: append(bits, 0)}}}}},
		{"grr value range", Report{Task: TaskFreq, Entries: []core.Entry{{Attr: 2, Kind: core.EntryCategoricalValue, Resp: freq.Response{Value: 7}}}}},
		{"range without task", Report{Task: TaskRange}},
	}
	for _, tc := range cases {
		if err := p.Validate(tc.rep); err == nil {
			t.Errorf("%s: Validate accepted a malformed report", tc.name)
		}
		if err := p.Add(tc.rep); err == nil {
			t.Errorf("%s: Add accepted a malformed report", tc.name)
		}
	}
	if p.N() != 0 {
		t.Errorf("rejected reports must not count: N = %d", p.N())
	}

	// Response shape must match the oracle: a GRR pipeline rejects bitset
	// entries (an all-ones bitset would poison every domain value), and an
	// OUE pipeline rejects single-value entries.
	grr, err := New(s, 1, WithOracle(func(e float64, k int) (freq.Oracle, error) { return freq.NewGRR(e, k) }))
	if err != nil {
		t.Fatal(err)
	}
	allOnes := freq.NewBitset(2)
	allOnes.Set(0)
	allOnes.Set(1)
	bitsRep := Report{Task: TaskFreq, Entries: []core.Entry{{Attr: 2, Kind: core.EntryCategoricalBits, Resp: freq.Response{Bits: allOnes}}}}
	if err := grr.Add(bitsRep); err == nil {
		t.Error("GRR pipeline accepted a bitset entry")
	}
	valRep := Report{Task: TaskFreq, Entries: []core.Entry{{Attr: 2, Kind: core.EntryCategoricalValue, Resp: freq.Response{Value: 1}}}}
	if err := p.Add(valRep); err == nil {
		t.Error("OUE pipeline accepted a single-value entry")
	}
	if err := grr.Add(valRep); err != nil {
		t.Errorf("GRR pipeline rejected a well-formed value entry: %v", err)
	}
}

func TestPipelineMerge(t *testing.T) {
	s := testSchema(t)
	build := func(shards int) *Pipeline {
		p, err := New(s, 1, WithShards(shards), WithRange(rangequery.Config{Buckets: 32, GridCells: 2}))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	whole, p1, p2 := build(1), build(2), build(3)

	const users = 20_000
	for i := 0; i < users; i++ {
		r := rng.NewStream(13, uint64(i))
		tup := sampleTuple(s, r)
		rep, err := whole.Randomize(tup, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := whole.Add(rep); err != nil {
			t.Fatal(err)
		}
		half := p1
		if i%2 == 1 {
			half = p2
		}
		if err := half.Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	if err := p1.Merge(p2); err != nil {
		t.Fatal(err)
	}
	if p1.N() != users {
		t.Fatalf("merged N = %d, want %d", p1.N(), users)
	}

	a, b := whole.Snapshot(), p1.Snapshot()
	for _, attr := range []string{"age", "income"} {
		ma, _ := a.Mean(attr)
		mb, _ := b.Mean(attr)
		if math.Abs(ma-mb) > 1e-9 {
			t.Errorf("merged Mean(%s) = %v, direct %v", attr, mb, ma)
		}
	}
	fa, _ := a.Freq("gender")
	fb, _ := b.Freq("gender")
	for v := range fa {
		if math.Abs(fa[v]-fb[v]) > 1e-9 {
			t.Errorf("merged Freq(gender)[%d] = %v, direct %v", v, fb[v], fa[v])
		}
	}
	ra, _ := a.Range(RangeQuery{Attr: "age", Lo: -0.3, Hi: 0.6})
	rb, _ := b.Range(RangeQuery{Attr: "age", Lo: -0.3, Hi: 0.6})
	if math.Abs(ra-rb) > 1e-9 {
		t.Errorf("merged Range = %v, direct %v", rb, ra)
	}

	// Incompatible pipelines refuse to merge.
	other, err := New(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.Merge(other); err == nil {
		t.Error("merge across budgets should error")
	}
	if err := p1.Merge(nil); err == nil {
		t.Error("merge with nil should error")
	}
}

func TestSnapshotIsImmutable(t *testing.T) {
	s := testSchema(t)
	p, err := New(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	add := func(n int) {
		for i := 0; i < n; i++ {
			rep, err := p.Randomize(sampleTuple(s, r), r)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Add(rep); err != nil {
				t.Fatal(err)
			}
		}
	}
	add(100)
	res := p.Snapshot()
	n0 := res.N()
	m0, _ := res.Mean("age")
	add(400)
	if res.N() != n0 {
		t.Error("snapshot N changed after later Adds")
	}
	if m1, _ := res.Mean("age"); m1 != m0 {
		t.Error("snapshot mean changed after later Adds")
	}
}
