package pipeline

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"ldp/internal/rangequery"
	"ldp/internal/rng"
	"ldp/internal/telemetry"
)

// incPipeline builds a pipeline with every analytics task plus the
// gradient trainer registered, instrumented so the tests can tell
// incremental rebuilds from full ones by counter.
func incPipeline(t testing.TB, shards int, opts ...Option) (*Pipeline, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	opts = append([]Option{
		WithShards(shards),
		WithRange(rangequery.Config{Buckets: 32, GridCells: 4}),
		WithGradient(GradientConfig{
			Dim: 2, Rounds: 8, GroupSize: 64,
			Eta: 1, Lambda: 1e-4, Mechanism: identityFactory,
		}),
		WithTelemetry(reg),
	}, opts...)
	p, err := New(testSchema(t), 4, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return p, reg
}

// rebuildCounts reads the rebuild-kind counters.
func rebuildCounts(p *Pipeline) (inc, full uint64) {
	return p.met.rebuildInc.Value(), p.met.rebuildFull.Value()
}

// TestIncrementalViewMatchesSnapshot is the correctness anchor for
// delta-proportional view maintenance: after every kind of ingest edge —
// single Add, AddBatch, MergeState fan-in, gradient folds, and a
// crossover-triggering burst — the cached view must answer every query
// surface bit-exactly like a fresh full Snapshot at the same watermark.
// The rebuild-kind counters prove each comparison exercised the path it
// claims to (incremental syncs for small deltas, full fallback past the
// crossover, incremental again after the fallback re-arms the baselines).
func TestIncrementalViewMatchesSnapshot(t *testing.T) {
	p, _ := incPipeline(t, 3)

	// Cold start: the first view has no predecessor, so it must be full.
	ingestStateReports(t, 11, 2000, p)
	assertResultsIdentical(t, p.View(), p.Snapshot())
	if inc, full := rebuildCounts(p); inc != 0 || full != 1 {
		t.Fatalf("after cold view: inc=%d full=%d, want 0/1", inc, full)
	}

	// Small deltas: every rebuild folds only the delta.
	for round := 0; round < 5; round++ {
		ingestStateReports(t, uint64(20+round), 15, p)
		assertResultsIdentical(t, p.View(), p.Snapshot())
	}
	if inc, full := rebuildCounts(p); inc != 5 || full != 1 {
		t.Fatalf("after small deltas: inc=%d full=%d, want 5/1", inc, full)
	}

	// Gradient reports ride the trainer, not the shards: they must not
	// invalidate the view or perturb its answers.
	v := p.View()
	r := rng.New(7)
	for i := 0; i < 3; i++ {
		rep, err := p.GradientTask().RandomizeGradient(0, []float64{0.25, -0.5}, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	if p.View() != v {
		t.Fatal("gradient folds invalidated the analytics view")
	}
	assertResultsIdentical(t, p.View(), p.Snapshot())

	// Cluster fan-in: MergeState marks exactly the state's active
	// components dirty, and the next incremental rebuild folds them.
	src := statePipeline(t, 2)
	ingestStateReports(t, 31, 60, src)
	if err := p.MergeState(src.StateSnapshot()); err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, p.View(), p.Snapshot())
	if inc, full := rebuildCounts(p); inc != 6 || full != 1 {
		t.Fatalf("after MergeState: inc=%d full=%d, want 6/1", inc, full)
	}

	// A delta past the crossover fraction falls back to a full snapshot…
	ingestStateReports(t, 41, 3000, p)
	assertResultsIdentical(t, p.View(), p.Snapshot())
	if inc, full := rebuildCounts(p); inc != 6 || full != 2 {
		t.Fatalf("after burst: inc=%d full=%d, want 6/2", inc, full)
	}

	// …and the fallback keeps the baselines synced, so the very next
	// small delta is incremental again and still bit-exact.
	ingestStateReports(t, 43, 10, p)
	assertResultsIdentical(t, p.View(), p.Snapshot())
	if inc, full := rebuildCounts(p); inc != 7 || full != 2 {
		t.Fatalf("after re-arm: inc=%d full=%d, want 7/2", inc, full)
	}
}

// TestIncrementalViewOption pins the WithIncrementalView contract:
// out-of-range fractions are rejected at construction, and zero disables
// the incremental path entirely (every rebuild is a full snapshot, still
// bit-exact).
func TestIncrementalViewOption(t *testing.T) {
	for _, bad := range []float64{-0.1, 1.01, math.NaN()} {
		if _, err := New(testSchema(t), 4, WithIncrementalView(bad)); err == nil {
			t.Errorf("WithIncrementalView(%v) accepted", bad)
		}
	}

	p, _ := incPipeline(t, 2, WithIncrementalView(0))
	ingestStateReports(t, 51, 500, p)
	assertResultsIdentical(t, p.View(), p.Snapshot())
	ingestStateReports(t, 52, 5, p)
	assertResultsIdentical(t, p.View(), p.Snapshot())
	if inc, full := rebuildCounts(p); inc != 0 || full != 2 {
		t.Fatalf("disabled incremental path: inc=%d full=%d, want 0/2", inc, full)
	}

	// A tight crossover forces the full path whenever the delta fraction
	// is exceeded, without ever going stale.
	q, _ := incPipeline(t, 2, WithIncrementalView(0.001))
	ingestStateReports(t, 53, 1000, q)
	q.View()
	ingestStateReports(t, 54, 100, q) // ~9% of the watermark: past 0.1%
	assertResultsIdentical(t, q.View(), q.Snapshot())
	if inc, full := rebuildCounts(q); inc != 0 || full != 2 {
		t.Fatalf("tight crossover: inc=%d full=%d, want 0/2", inc, full)
	}
	ingestStateReports(t, 55, 1, q) // 1 of ~1101: under 0.1%… barely not
	// 1/1101 ≈ 0.09% < 0.1%, so this one is incremental.
	assertResultsIdentical(t, q.View(), q.Snapshot())
	if inc, _ := rebuildCounts(q); inc != 1 {
		t.Fatalf("sub-crossover delta was not incremental (inc=%d)", inc)
	}
}

// TestIncrementalViewConcurrentMerge hammers the incremental builder
// from every ingest edge at once: AddBatch writers, single-report Add
// writers, a MergeState fan-in goroutine, and queriers pulling View at
// full rate. Run under -race (the CI race job does) to prove the dirty
// bitsets and baseline syncs tear nothing; under the plain runner it
// checks per-querier monotone epochs/watermarks, and after quiescing it
// anchors the final incrementally-maintained view against a fresh full
// Snapshot bit for bit.
func TestIncrementalViewConcurrentMerge(t *testing.T) {
	p, _ := incPipeline(t, 4)

	const (
		batchWriters = 2
		batches      = 40
		batchSize    = 25
		addWriters   = 2
		adds         = 300
		merges       = 10
		mergeSize    = 40
		queriers     = 3
		perQuerier   = 300
	)

	// Pre-build all ingest payloads outside the clocked region.
	prebuilt := make([][]*ReportBatch, batchWriters)
	for w := range prebuilt {
		prebuilt[w] = make([]*ReportBatch, batches)
		for i := range prebuilt[w] {
			b := NewReportBatch()
			for j := 0; j < batchSize; j++ {
				r := rng.NewStream(uint64(200+w), uint64(i*batchSize+j))
				rep, err := p.Randomize(sampleTuple(p.Schema(), r), r)
				if err != nil {
					t.Fatal(err)
				}
				b.Append(rep)
			}
			prebuilt[w][i] = b
		}
	}
	single := make([][]Report, addWriters)
	for w := range single {
		single[w] = make([]Report, adds)
		for i := range single[w] {
			r := rng.NewStream(uint64(300+w), uint64(i))
			rep, err := p.Randomize(sampleTuple(p.Schema(), r), r)
			if err != nil {
				t.Fatal(err)
			}
			single[w][i] = rep
		}
	}
	states := make([]*AggState, merges)
	for i := range states {
		src := statePipeline(t, 1)
		ingestStateReports(t, uint64(400+i), mergeSize, src)
		states[i] = src.StateSnapshot()
	}

	var wg sync.WaitGroup
	var fail atomic.Bool
	for w := 0; w < batchWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, b := range prebuilt[w] {
				if err := p.AddBatch(b); err != nil {
					t.Error(err)
					fail.Store(true)
					return
				}
			}
		}(w)
	}
	for w := 0; w < addWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, rep := range single[w] {
				if err := p.Add(rep); err != nil {
					t.Error(err)
					fail.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, st := range states {
			if err := p.MergeState(st); err != nil {
				t.Error(err)
				fail.Store(true)
				return
			}
		}
	}()
	for qg := 0; qg < queriers; qg++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastEpoch uint64
			var lastWM int64
			for i := 0; i < perQuerier && !fail.Load(); i++ {
				v := p.View()
				if e := v.Epoch(); e < lastEpoch {
					t.Errorf("epoch went backwards: %d after %d", e, lastEpoch)
					fail.Store(true)
					return
				} else {
					lastEpoch = e
				}
				if wm := v.Watermark(); wm < lastWM {
					t.Errorf("watermark went backwards: %d after %d", wm, lastWM)
					fail.Store(true)
					return
				} else {
					lastWM = wm
				}
				if v.N() != v.Watermark() {
					t.Errorf("torn view: N %d != watermark %d", v.N(), v.Watermark())
					fail.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if fail.Load() {
		t.FailNow()
	}

	want := int64(batchWriters*batches*batchSize + addWriters*adds + merges*mergeSize)
	if got := p.Watermark(); got != want {
		t.Fatalf("final watermark %d, want %d", got, want)
	}
	// Quiesced: the incrementally-maintained view must equal a fresh full
	// snapshot on every query surface.
	assertResultsIdentical(t, p.View(), p.Snapshot())
}
