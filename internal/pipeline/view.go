package pipeline

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// viewCache memoizes one immutable Result behind an atomic pointer: the
// read half of the pipeline's epoch machinery. A query loads the pointer,
// checks the lock-free ingest watermark against the staleness bound, and
// serves the cached result without touching a single shard lock; only
// when the watermark has moved past the bound (or the view has aged out)
// does one query rebuild, single-flight — a stampede of concurrent
// queries triggers at most one Snapshot, with the others serving the
// previous view until the fresh one lands.
type viewCache struct {
	cur atomic.Pointer[Result]
	seq atomic.Uint64 // build counter; stamped into Result.epoch

	// mu serializes rebuilds (single-flight). It is never taken on the
	// cached-hit path.
	mu sync.Mutex

	// maxStale is how many reports the cached view may trail the ingest
	// watermark before a query rebuilds it (0 = any ingest invalidates);
	// maxAge is the wall-clock analogue (0 = no age bound).
	maxStale int64
	maxAge   time.Duration
}

// WithQueryStaleness bounds how stale the cached query view (Pipeline.View)
// may get before a query rebuilds it: a cached view is served as long as
// it trails the ingest watermark by at most `reports` reports AND is
// younger than maxAge (0 disables the age bound). The default bound is 0
// reports — the cached view is served only while no new report has been
// folded, so an uncontended query is exact — which already collapses a
// query stampede on an idle aggregator to one snapshot. Servers answering
// heavy dashboard traffic under full-rate ingest should set a real bound
// (say, 10k reports or 1s): estimates over millions of reports move by
// O(1/n) per report, so bounded staleness is statistically invisible while
// making the steady-state query cost a single atomic load.
//
// One exception to the bound: while a rebuild is in flight, concurrent
// View calls return the previous view (whatever its trail) instead of
// queueing behind the snapshot — availability over exactness for the
// duration of one rebuild. Callers that need a point-in-time-exact result
// regardless of concurrent ingest should call Snapshot directly.
func WithQueryStaleness(reports int64, maxAge time.Duration) Option {
	return func(c *config) error {
		if reports < 0 {
			return fmt.Errorf("pipeline: query staleness must be >= 0 reports, got %d", reports)
		}
		if maxAge < 0 {
			return fmt.Errorf("pipeline: query max age must be >= 0, got %v", maxAge)
		}
		c.staleReports = reports
		c.staleAge = maxAge
		return nil
	}
}

// View returns a point-in-time Result, served from the epoch cache when it
// is within the configured staleness bound (see WithQueryStaleness) and
// rebuilt single-flight otherwise; while one caller rebuilds, concurrent
// callers serve the previous view even past the bound rather than block
// (see the exception note on WithQueryStaleness). The cached-hit path is
// lock-free and allocation-free: one atomic pointer load plus one atomic
// load per shard for the watermark check. The returned Result is immutable
// and safe for concurrent use; successive rebuilds carry strictly
// increasing Epoch values, so transports can key response caches (and
// HTTP ETags) on it.
func (p *Pipeline) View() *Result {
	if v := p.view.cur.Load(); v != nil && p.viewFresh(v) {
		p.met.viewHits.Inc()
		return v
	}
	return p.refreshView()
}

// viewFresh reports whether a cached result is still within the staleness
// bound. It allocates nothing.
func (p *Pipeline) viewFresh(v *Result) bool {
	if p.view.maxAge > 0 && time.Since(v.built) > p.view.maxAge {
		return false
	}
	return p.Watermark()-v.watermark <= p.view.maxStale
}

// refreshView rebuilds the cached view single-flight. Losers of the build
// race serve the previous view rather than pile up behind the builder;
// they block only when there is no view at all yet.
func (p *Pipeline) refreshView() *Result {
	if !p.view.mu.TryLock() {
		// Another query is already snapshotting. Anything cached is at
		// worst one rebuild behind — serve it instead of stampeding.
		if v := p.view.cur.Load(); v != nil {
			p.met.viewLosers.Inc()
			return v
		}
		p.view.mu.Lock()
	}
	defer p.view.mu.Unlock()
	// The builder we waited on (or a freshness race winner) may have
	// stored a result that is already fresh enough.
	if v := p.view.cur.Load(); v != nil && p.viewFresh(v) {
		p.met.viewHits.Inc()
		return v
	}
	// The start timestamp is taken only when the rebuild histogram is
	// live, so the telemetry-disabled rebuild path skips the clock reads.
	var start time.Time
	if p.met.rebuild != nil {
		start = time.Now()
	}
	res := p.Snapshot()
	res.epoch = p.view.seq.Add(1)
	res.built = time.Now()
	p.view.cur.Store(res)
	p.met.viewMisses.Inc()
	p.met.rebuild.ObserveSince(start)
	return res
}
