package pipeline

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"ldp/internal/rangequery"
)

// defaultIncFrac is the default crossover threshold of WithIncrementalView:
// a rebuild whose delta exceeds this fraction of the watermark falls back
// to a full sync.
const defaultIncFrac = 0.25

// viewCache memoizes one immutable Result behind an atomic pointer: the
// read half of the pipeline's epoch machinery. A query loads the pointer,
// checks the lock-free ingest watermark against the staleness bound, and
// serves the cached result without touching a single shard lock; only
// when the watermark has moved past the bound (or the view has aged out)
// does one query rebuild, single-flight — a stampede of concurrent
// queries triggers at most one Snapshot, with the others serving the
// previous view until the fresh one lands.
type viewCache struct {
	cur atomic.Pointer[Result]
	seq atomic.Uint64 // build counter; stamped into Result.epoch

	// mu serializes rebuilds (single-flight). It is never taken on the
	// cached-hit path.
	mu sync.Mutex

	// maxStale is how many reports the cached view may trail the ingest
	// watermark before a query rebuilds it (0 = any ingest invalidates);
	// maxAge is the wall-clock analogue (0 = no age bound).
	maxStale int64
	maxAge   time.Duration

	// Incremental-rebuild state, all touched only by the builder under mu.
	// incFrac is the WithIncrementalView crossover (<= 0 disables); base
	// holds one sync point per shard; aggRange carries the cross-shard
	// range support counts every published view derives from. The bitsets
	// are per-build scratch: the unions of the shards' dirty bits
	// (uFreq/uJoint by attribute, uLevel/uGrid by slot) and the
	// copy-on-write markers of the two count-column families.
	incFrac  float64
	slab     shellSlab
	base     []shardBaseline
	aggRange *rangequery.Accumulator
	uFreq    bitset
	uJoint   bitset
	uLevel   bitset
	uGrid    bitset
	cpF      bitset
	cpJ      bitset
}

// shellSlabSize is how many Result shells one slab refill allocates: large
// enough to amortize the five block mallocs across many rebuilds, small
// enough that a caller retaining one Result pins only a few kilobytes of
// neighbouring shells (never their count columns, which are not slabbed).
const shellSlabSize = 32

// shellSlab hands out Result shells carved from blocks allocated a slab at
// a time — the view builder's amortized replacement for newResultShell.
// Only the single-flight builder touches it (under view.mu), so it needs
// no lock; make() zeroes the blocks, and each shell region is handed out
// exactly once, so popped shells are always pristine.
type shellSlab struct {
	res   []Result
	sums  []float64
	cols  [][]float64
	ns    []int64
	cache []atomic.Pointer[[]float64]
}

// shardBaseline is the incremental builder's per-shard sync point: a copy
// of exactly the state of that shard the cached aggregate already folded
// in. The invariant the dirty bits encode — bit clear implies baseline
// equals the shard's live counts for that component — is maintained by
// setting bits on every fold event and clearing them only after a sync
// under the same shard lock.
type shardBaseline struct {
	freq  [][]float64
	joint [][]float64
	rng   *rangequery.Accumulator

	// epoch is the shard's epoch counter at the last sync. Every fold
	// path bumps the shard epoch under the shard lock together with
	// setting dirty bits, and every sync captures it under the same lock
	// while clearing them — so an unchanged epoch proves the shard saw no
	// fold since the last sync and the whole visit (lock included) can be
	// skipped: the scalar baselines below are still exact.
	epoch int64

	// Scalar baselines: verbatim copies of the shard's counters and float
	// sums at the last sync. The builder re-sums these in shard order for
	// every rebuild, which is bit-identical to Snapshot's serial fold
	// over the live shards (a skipped shard's copies equal its live
	// state), while costing clean shards no lock acquisition.
	nMean, nFreq, nJoint, nRange int64
	meanSum, jointSum            []float64
	freqN, jointN                []int64
}

// WithQueryStaleness bounds how stale the cached query view (Pipeline.View)
// may get before a query rebuilds it: a cached view is served as long as
// it trails the ingest watermark by at most `reports` reports AND is
// younger than maxAge (0 disables the age bound). The default bound is 0
// reports — the cached view is served only while no new report has been
// folded, so an uncontended query is exact — which already collapses a
// query stampede on an idle aggregator to one snapshot. Servers answering
// heavy dashboard traffic under full-rate ingest should set a real bound
// (say, 10k reports or 1s): estimates over millions of reports move by
// O(1/n) per report, so bounded staleness is statistically invisible while
// making the steady-state query cost a single atomic load.
//
// One exception to the bound: while a rebuild is in flight, concurrent
// View calls return the previous view (whatever its trail) instead of
// queueing behind the snapshot — availability over exactness for the
// duration of one rebuild. Callers that need a point-in-time-exact result
// regardless of concurrent ingest should call Snapshot directly.
func WithQueryStaleness(reports int64, maxAge time.Duration) Option {
	return func(c *config) error {
		if reports < 0 {
			return fmt.Errorf("pipeline: query staleness must be >= 0 reports, got %d", reports)
		}
		if maxAge < 0 {
			return fmt.Errorf("pipeline: query max age must be >= 0, got %v", maxAge)
		}
		c.staleReports = reports
		c.staleAge = maxAge
		return nil
	}
}

// WithIncrementalView tunes the crossover of incremental view rebuilds:
// when a cached view exists and the ingest delta since it is at most
// maxDeltaFrac of the total watermark, the rebuild folds only the dirty
// shards' count deltas into the previous view's immutable state —
// re-debiasing only the attributes and re-running Norm-Sub only on the
// hierarchy levels and grids that actually changed — instead of
// re-summing the whole domain. Estimates are unaffected: an incremental
// view is bit-identical to the full snapshot at the same watermark.
// maxDeltaFrac must be in [0, 1]; 0 disables incremental maintenance
// entirely (every rebuild is a full snapshot). The default without this
// option is 0.25.
func WithIncrementalView(maxDeltaFrac float64) Option {
	return func(c *config) error {
		if math.IsNaN(maxDeltaFrac) || maxDeltaFrac < 0 || maxDeltaFrac > 1 {
			return fmt.Errorf("pipeline: incremental view fraction must be in [0,1], got %v", maxDeltaFrac)
		}
		c.incFrac = maxDeltaFrac
		c.incSet = true
		return nil
	}
}

// View returns a point-in-time Result, served from the epoch cache when it
// is within the configured staleness bound (see WithQueryStaleness) and
// rebuilt single-flight otherwise; while one caller rebuilds, concurrent
// callers serve the previous view even past the bound rather than block
// (see the exception note on WithQueryStaleness). The cached-hit path is
// lock-free and allocation-free: one atomic pointer load plus one atomic
// load per shard for the watermark check. The returned Result is immutable
// and safe for concurrent use; successive rebuilds carry strictly
// increasing Epoch values, so transports can key response caches (and
// HTTP ETags) on it.
func (p *Pipeline) View() *Result {
	if v := p.view.cur.Load(); v != nil && p.viewFresh(v) {
		p.met.viewHits.Inc()
		return v
	}
	return p.refreshView()
}

// viewFresh reports whether a cached result is still within the staleness
// bound. It allocates nothing.
func (p *Pipeline) viewFresh(v *Result) bool {
	if p.view.maxAge > 0 && time.Since(v.built) > p.view.maxAge {
		return false
	}
	return p.Watermark()-v.watermark <= p.view.maxStale
}

// refreshView rebuilds the cached view single-flight. Losers of the build
// race serve the previous view rather than pile up behind the builder;
// they block only when there is no view at all yet.
func (p *Pipeline) refreshView() *Result {
	if !p.view.mu.TryLock() {
		// Another query is already snapshotting. Anything cached is at
		// worst one rebuild behind — serve it instead of stampeding.
		if v := p.view.cur.Load(); v != nil {
			p.met.viewLosers.Inc()
			return v
		}
		p.view.mu.Lock()
	}
	defer p.view.mu.Unlock()
	// The builder we waited on (or a freshness race winner) may have
	// stored a result that is already fresh enough.
	if v := p.view.cur.Load(); v != nil && p.viewFresh(v) {
		p.met.viewHits.Inc()
		return v
	}
	// The start timestamp is taken only when the rebuild histogram is
	// live, so the telemetry-disabled rebuild path skips the clock reads.
	var start time.Time
	if p.met.rebuild != nil {
		start = time.Now()
	}
	res := p.buildView()
	res.epoch = p.view.seq.Add(1)
	// The build timestamp only feeds the wall-clock staleness bound, so
	// pipelines without one (the default) skip the clock read per rebuild.
	if p.view.maxAge > 0 {
		res.built = time.Now()
	}
	p.view.cur.Store(res)
	p.met.viewMisses.Inc()
	p.met.rebuild.ObserveSince(start)
	return res
}

// buildView materializes the next cached view. With incremental
// maintenance disabled it is a plain full snapshot; otherwise it routes
// through buildSync, choosing the incremental path when a previous view
// exists and the ingest delta since it is within the crossover fraction.
// The caller holds view.mu (rebuilds are single-flight).
func (p *Pipeline) buildView() *Result {
	vc := &p.view
	if vc.incFrac <= 0 {
		p.met.rebuildFull.Inc()
		return p.Snapshot()
	}
	p.ensureBuilderState()
	prev := vc.cur.Load()
	full := prev == nil
	if !full {
		wm := p.Watermark()
		if delta := wm - prev.watermark; float64(delta) > vc.incFrac*float64(wm) {
			full = true
		}
	}
	return p.buildSync(prev, full)
}

// ensureBuilderState lazily allocates the incremental builder's per-shard
// baselines, running aggregate, and scratch bitsets. The caller holds
// view.mu; the state lives for the pipeline's lifetime once created.
func (p *Pipeline) ensureBuilderState() {
	vc := &p.view
	if vc.base != nil {
		return
	}
	d := p.sch.Dim()
	// The baselines live in one value slice, with the scalar float sums and
	// reporter counts carved out of two shared backing arrays: the per-build
	// scalar re-sum walks them front to back, so keeping every shard's
	// scalars contiguous turns that walk into a linear scan instead of a
	// pointer chase across per-shard allocations.
	vc.base = make([]shardBaseline, len(p.shards))
	sums := make([]float64, len(p.shards)*2*d)
	nInts := 0
	if p.freq != nil {
		nInts += d
	}
	if p.joint.oracles != nil {
		nInts += d
	}
	ns := make([]int64, len(p.shards)*nInts)
	for i := range vc.base {
		b := &vc.base[i]
		b.meanSum = sums[2*i*d : (2*i+1)*d : (2*i+1)*d]
		b.jointSum = sums[(2*i+1)*d : (2*i+2)*d : (2*i+2)*d]
		ints := ns[i*nInts : (i+1)*nInts : (i+1)*nInts]
		if p.freq != nil {
			b.freqN = ints[:d:d]
			ints = ints[d:]
		}
		if p.joint.oracles != nil {
			b.jointN = ints
		}
		p.initBaseline(b)
	}
	if p.rangeT != nil {
		vc.aggRange = rangequery.NewAccumulator(p.rangeT.col)
		vc.uLevel = newBits(p.lvlSlots)
		vc.uGrid = newBits(p.gridSlots)
	}
	if p.freq != nil {
		vc.uFreq = newBits(d)
		vc.cpF = newBits(d)
	}
	if p.joint.oracles != nil {
		vc.uJoint = newBits(d)
		vc.cpJ = newBits(d)
	}
}

// initBaseline allocates the per-value state of one zeroed per-shard sync
// point with the pipeline's shapes; the scalar baseline slices were carved
// out of the shared backing arrays by ensureBuilderState.
func (p *Pipeline) initBaseline(b *shardBaseline) {
	d := p.sch.Dim()
	if p.freq != nil {
		b.freq = make([][]float64, d)
		for _, j := range p.freq.catIdx {
			b.freq[j] = make([]float64, p.sch.Attrs[j].Cardinality)
		}
	}
	if p.joint.oracles != nil {
		b.joint = make([][]float64, d)
		for j, o := range p.joint.oracles {
			if o != nil {
				b.joint[j] = make([]float64, o.Cardinality())
			}
		}
	}
	if p.rangeT != nil {
		b.rng = rangequery.NewAccumulator(p.rangeT.col)
	}
}

// newResultShellSlab pops one Result shell off the builder's slab,
// refilling it (shellSlabSize shells per refill) when empty: the same
// shell newResultShell builds, at a fraction of the per-rebuild allocation
// cost. The caller holds view.mu.
func (p *Pipeline) newResultShellSlab() *Result {
	s := &p.view.slab
	if len(s.res) == 0 {
		d, fams := p.shellShape()
		s.res = make([]Result, shellSlabSize)
		s.sums = make([]float64, shellSlabSize*2*d)
		s.cols = make([][]float64, shellSlabSize*fams*d)
		s.ns = make([]int64, shellSlabSize*fams*d)
		s.cache = make([]atomic.Pointer[[]float64], shellSlabSize*d)
	}
	d, fams := p.shellShape()
	res := &s.res[0]
	s.res = s.res[1:]
	sums := s.sums[: 2*d : 2*d]
	s.sums = s.sums[2*d:]
	cols := s.cols[: fams*d : fams*d]
	s.cols = s.cols[fams*d:]
	ns := s.ns[: fams*d : fams*d]
	s.ns = s.ns[fams*d:]
	cache := s.cache[:d:d]
	s.cache = s.cache[d:]
	p.fillResultShell(res, sums, cols, ns, cache)
	return res
}

// buildSync builds the next view by folding each shard's delta against the
// builder's per-shard baselines, in one shard-lock hold per shard: the
// scalar counters, float sums, and reporter counts are re-summed in shard
// order (cheap — O(shards x attrs) — and bit-identical to the serial and
// parallel Snapshot fold order), while the expensive per-value support
// counts move by baseline delta only where dirty bits say something
// changed. In full mode every registered component syncs regardless of
// bits — the same machinery, so the baselines stay current and incremental
// rebuilds re-arm after any fallback. Support counts are integer-valued
// float64 sums of indicators, so baseline-delta arithmetic is exact and an
// incremental view is bit-identical to a full snapshot at the same
// watermark. The caller holds view.mu.
func (p *Pipeline) buildSync(prev *Result, full bool) *Result {
	vc := &p.view
	res := p.newResultShellSlab()
	fresh := prev == nil
	if fresh {
		full = true
		p.allocCountCols(res)
	} else {
		// Seed the count columns aliasing the previous view's; syncFamily
		// copies a column the moment its first delta lands (published
		// views are immutable), and clean columns stay shared.
		if res.freqCounts != nil {
			copy(res.freqCounts, prev.freqCounts)
		}
		if res.jointCounts != nil {
			copy(res.jointCounts, prev.jointCounts)
		}
		vc.cpF.zero()
		vc.cpJ.zero()
	}
	vc.uFreq.zero()
	vc.uJoint.zero()
	vc.uLevel.zero()
	vc.uGrid.zero()
	var rangeNBefore int64
	if vc.aggRange != nil {
		rangeNBefore = vc.aggRange.N()
	}
	dirtyShards := 0
	for si, sh := range p.shards {
		base := &vc.base[si]
		// Unchanged epoch ⇒ no fold since the last sync (bump and sync
		// both happen under the shard lock): the baselines are exact and
		// the shard needs no lock at all. A fold racing this lock-free
		// read lands in the next rebuild, exactly as it would have had it
		// arrived just after this shard's lock was released.
		if epoch := sh.epoch.Load(); epoch == base.epoch {
			continue
		}
		sh.mu.Lock()
		base.epoch = sh.epoch.Load()
		base.nMean, base.nFreq = sh.nMean, sh.nFreq
		base.nJoint, base.nRange = sh.nJoint, sh.nRange
		copy(base.meanSum, sh.meanSum)
		copy(base.jointSum, sh.jointSum)
		if base.freqN != nil {
			copy(base.freqN, sh.freqN)
		}
		if base.jointN != nil {
			copy(base.jointN, sh.jointN)
		}
		if sh.dFreq.any() || sh.dJoint.any() || sh.dLevel.any() || sh.dGrid.any() {
			dirtyShards++
		}
		if res.freqCounts != nil {
			syncFamily(full, fresh, sh.dFreq, vc.uFreq, vc.cpF, res.freqCounts, sh.freqCounts, base.freq)
		}
		if res.jointCounts != nil {
			syncFamily(full, fresh, sh.dJoint, vc.uJoint, vc.cpJ, res.jointCounts, sh.jointCounts, base.joint)
		}
		if sh.rangeAcc != nil {
			if full {
				for li := 0; li < p.lvlSlots; li++ {
					sh.rangeAcc.SyncDeltaLevel(li, base.rng, vc.aggRange)
				}
				for g := 0; g < p.gridSlots; g++ {
					sh.rangeAcc.SyncDeltaGrid(g, base.rng, vc.aggRange)
				}
			} else {
				acc := sh.rangeAcc
				sh.dLevel.forEach(func(li int) {
					vc.uLevel.set(li)
					acc.SyncDeltaLevel(li, base.rng, vc.aggRange)
				})
				sh.dGrid.forEach(func(g int) {
					vc.uGrid.set(g)
					acc.SyncDeltaGrid(g, base.rng, vc.aggRange)
				})
			}
			// Unconditional: a report can move a reporter count without
			// moving any support count.
			sh.rangeAcc.SyncDeltaN(base.rng, vc.aggRange)
		}
		sh.dFreq.zero()
		sh.dJoint.zero()
		sh.dLevel.zero()
		sh.dGrid.zero()
		sh.mu.Unlock()
	}
	// Scalars re-sum from the baselines serially in shard order — the
	// same values in the same order as Snapshot's serial fold over the
	// live shards, so the float sums are bit-identical.
	for bi := range vc.base {
		base := &vc.base[bi]
		res.nMean += base.nMean
		res.nFreq += base.nFreq
		res.nJoint += base.nJoint
		res.nRange += base.nRange
		for i, v := range base.meanSum {
			res.meanSum[i] += v
		}
		for i, v := range base.jointSum {
			res.jointSum[i] += v
		}
		if res.freqN != nil {
			for i, n := range base.freqN {
				res.freqN[i] += n
			}
		}
		if res.jointN != nil {
			for i, n := range base.jointN {
				res.jointN[i] += n
			}
		}
	}
	res.watermark = res.nMean + res.nFreq + res.nJoint + res.nRange
	if vc.aggRange != nil {
		switch {
		case full || prev.rangeView == nil:
			res.rangeView = vc.aggRange.ViewWith(derivWorkers())
		case !vc.uLevel.any() && !vc.uGrid.any() && vc.aggRange.N() == rangeNBefore:
			// Not a single range report arrived since the previous view
			// (every range fold bumps the reporter count), so the previous
			// range view is exact as-is — no per-slot walk, no allocation.
			res.rangeView = prev.rangeView
		default:
			res.rangeView = vc.aggRange.RebuildView(prev.rangeView, vc.uLevel.get, vc.uGrid.get)
		}
	}
	if !full && res.freqCache != nil && prev.freqCache != nil {
		// Forward the memoized debias results of untouched attributes:
		// their inputs are unchanged, so the cached combined estimates are
		// still exact and the first query per attribute stays a lookup.
		for j := range p.attrMeta {
			if p.attrMeta[j].numeric || vc.uFreq.get(j) || vc.uJoint.get(j) {
				continue
			}
			if ptr := prev.freqCache[j].Load(); ptr != nil {
				res.freqCache[j].Store(ptr)
			}
		}
	}
	if full {
		p.met.rebuildFull.Inc()
	} else {
		p.met.rebuildInc.Inc()
		p.met.dirtyShards.Observe(int64(dirtyShards))
		p.met.dirtyComps.Observe(int64(vc.uFreq.count() + vc.uJoint.count() +
			vc.uLevel.count() + vc.uGrid.count()))
	}
	return res
}

// syncFamily folds one shard's count-column deltas for one oracle family
// into the result and advances the shard's baselines to match. In full
// mode every registered column syncs regardless of dirty bits; otherwise
// only the shard's dirty columns do, and their attributes accumulate into
// the build's union set (union bits gate debias-cache forwarding, so they
// are set for every event-dirty column even when its count delta turns
// out to be zero — the reporter count still moved). A result column still
// aliasing the previous view is copied before its first change. The
// caller holds the shard lock.
func syncFamily(full, fresh bool, dirty, union, copied bitset, resCols, shCols, baseCols [][]float64) {
	sync := func(j int) {
		cur := shCols[j]
		if cur == nil {
			return
		}
		base, dst := baseCols[j], resCols[j]
		for v, c := range cur {
			if delta := c - base[v]; delta != 0 {
				if !fresh && !copied.get(j) {
					dst = append([]float64(nil), dst...)
					resCols[j] = dst
					copied.set(j)
				}
				dst[v] += delta
				base[v] = c
			}
		}
	}
	if full {
		for j := range shCols {
			sync(j)
		}
		return
	}
	dirty.forEach(func(j int) {
		union.set(j)
		sync(j)
	})
}
