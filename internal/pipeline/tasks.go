package pipeline

import (
	"fmt"

	"ldp/internal/core"
	"ldp/internal/freq"
	"ldp/internal/mech"
	"ldp/internal/rangequery"
	"ldp/internal/rng"
	"ldp/internal/schema"
)

// Task is one randomization sub-task of a Pipeline. The concrete tasks are
// MeanTask, FreqTask, and RangeTask; they are constructed by New and
// cannot be registered from outside the package.
type Task interface {
	// Kind identifies the task's payload type.
	Kind() TaskKind
	// Name is a short human-readable identifier ("mean", "freq", "range").
	Name() string
	// Randomize perturbs one user tuple into a unified Report under the
	// task's full eps budget. The tuple must satisfy Check against the
	// pipeline's schema (Pipeline.Randomize checks; call it unless you
	// have already validated the tuple yourself).
	Randomize(t schema.Tuple, r *rng.Rand) (Report, error)
}

// MeanTask estimates numeric-attribute means with the paper's Algorithm 4
// restricted to the numeric attributes: each routed user samples
// k = max(1, min(dNum, floor(eps/2.5))) of the dNum numeric attributes,
// perturbs each with the 1-D mechanism at budget eps/k, and scales by
// dNum/k so the report is coordinate-wise unbiased over the task's users.
type MeanTask struct {
	numIdx []int
	k      int
	scale  float64
	eps    float64
	inner  mech.Mechanism
}

func newMeanTask(s *schema.Schema, eps float64, factory mech.Factory) (*MeanTask, error) {
	numIdx := s.NumericIdx()
	k := core.KFor(eps, len(numIdx))
	inner, err := factory(eps / float64(k))
	if err != nil {
		return nil, fmt.Errorf("pipeline: mean task mechanism: %w", err)
	}
	return &MeanTask{
		numIdx: numIdx,
		k:      k,
		scale:  float64(len(numIdx)) / float64(k),
		eps:    eps,
		inner:  inner,
	}, nil
}

// Kind returns TaskMean.
func (t *MeanTask) Kind() TaskKind { return TaskMean }

// Name returns "mean".
func (t *MeanTask) Name() string { return "mean" }

// K returns the number of numeric attributes each routed user reports.
func (t *MeanTask) K() int { return t.k }

// Epsilon returns the task's total budget (the pipeline budget).
func (t *MeanTask) Epsilon() float64 { return t.eps }

// Mechanism returns the 1-D mechanism running at eps/k.
func (t *MeanTask) Mechanism() mech.Mechanism { return t.inner }

// Randomize implements Task.
func (t *MeanTask) Randomize(tp schema.Tuple, r *rng.Rand) (Report, error) {
	entries := make([]core.Entry, 0, t.k)
	for _, pos := range rng.SampleWithoutReplacement(r, len(t.numIdx), t.k) {
		j := t.numIdx[pos]
		entries = append(entries, core.Entry{
			Attr:  j,
			Kind:  core.EntryNumeric,
			Value: t.scale * t.inner.Perturb(tp.Num[j], r),
		})
	}
	return Report{Task: TaskMean, Entries: entries}, nil
}

// FreqTask estimates categorical-value frequencies: each routed user
// samples k = max(1, min(dCat, floor(eps/2.5))) of the dCat categorical
// attributes (the paper's Eq. 12 budget rule) and perturbs each with the
// frequency oracle at budget eps/k. The aggregator debiases per attribute
// over the users that actually reported it.
type FreqTask struct {
	catIdx  []int
	k       int
	eps     float64
	oracles []freq.Oracle // indexed by schema attribute; nil for numeric
	bits    bool          // whether the oracle responses carry bitsets
}

func newFreqTask(s *schema.Schema, eps float64, factory freq.Factory) (*FreqTask, error) {
	catIdx := s.CategoricalIdx()
	k := core.KFor(eps, len(catIdx))
	budget := eps / float64(k)
	oracles := make([]freq.Oracle, s.Dim())
	for _, j := range catIdx {
		o, err := factory(budget, s.Attrs[j].Cardinality)
		if err != nil {
			return nil, fmt.Errorf("pipeline: freq task oracle for attribute %q: %w", s.Attrs[j].Name, err)
		}
		oracles[j] = o
	}
	return &FreqTask{
		catIdx:  catIdx,
		k:       k,
		eps:     eps,
		oracles: oracles,
		bits:    freq.UsesBitset(oracles[catIdx[0]]),
	}, nil
}

// Kind returns TaskFreq.
func (t *FreqTask) Kind() TaskKind { return TaskFreq }

// Name returns "freq".
func (t *FreqTask) Name() string { return "freq" }

// K returns the number of categorical attributes each routed user reports.
func (t *FreqTask) K() int { return t.k }

// Epsilon returns the task's total budget (the pipeline budget).
func (t *FreqTask) Epsilon() float64 { return t.eps }

// Oracle returns the frequency oracle for schema attribute attr, or nil
// if the attribute is numeric.
func (t *FreqTask) Oracle(attr int) freq.Oracle {
	if attr < 0 || attr >= len(t.oracles) {
		return nil
	}
	return t.oracles[attr]
}

// Randomize implements Task.
func (t *FreqTask) Randomize(tp schema.Tuple, r *rng.Rand) (Report, error) {
	entries := make([]core.Entry, 0, t.k)
	for _, pos := range rng.SampleWithoutReplacement(r, len(t.catIdx), t.k) {
		j := t.catIdx[pos]
		resp := t.oracles[j].Perturb(tp.Cat[j], r)
		kind := core.EntryCategoricalBits
		if resp.Bits == nil {
			kind = core.EntryCategoricalValue
		}
		entries = append(entries, core.Entry{Attr: j, Kind: kind, Resp: resp})
	}
	return Report{Task: TaskFreq, Entries: entries}, nil
}

// RangeTask answers 1-D and 2-D range queries through the rangequery
// subsystem: each routed user reports either a dyadic interval of one
// numeric attribute at a sampled hierarchy depth, or one cell of a 2-D
// grid over an attribute pair.
type RangeTask struct {
	col *rangequery.Collector
}

// Kind returns TaskRange.
func (t *RangeTask) Kind() TaskKind { return TaskRange }

// Name returns "range".
func (t *RangeTask) Name() string { return "range" }

// Epsilon returns the task's total budget (the pipeline budget).
func (t *RangeTask) Epsilon() float64 { return t.col.Epsilon() }

// Collector returns the underlying rangequery collector.
func (t *RangeTask) Collector() *rangequery.Collector { return t.col }

// Randomize implements Task.
func (t *RangeTask) Randomize(tp schema.Tuple, r *rng.Rand) (Report, error) {
	rr, err := t.col.Perturb(tp, r)
	if err != nil {
		return Report{}, err
	}
	return Report{Task: TaskRange, Range: rr}, nil
}
