package pipeline

import (
	"fmt"
	"hash/fnv"
	"math"

	"ldp/internal/rangequery"
	"ldp/internal/schema"
)

// AggState is the exported raw aggregate of a pipeline: the additive
// sums, support counts, and reporter counts every estimate derives from,
// summed across shards. Two states exported from pipelines with the same
// Fingerprint combine by elementwise addition, and the estimates computed
// from a sum of states are identical to the estimates a single pipeline
// would compute after ingesting all the underlying reports — that
// exactness is what the cluster fan-in tier is built on.
//
// Slices are indexed by schema attribute; FreqCounts/JointCounts entries
// are nil for numeric attributes (mirroring the shard layout). Trainer,
// when present, is a read-only observability snapshot: round-based
// federated training state has no meaningful union, so MergeState rejects
// states that carry it.
type AggState struct {
	NMean  int64
	NFreq  int64
	NJoint int64
	NRange int64

	MeanSum  []float64
	JointSum []float64

	FreqCounts  [][]float64
	FreqN       []int64
	JointCounts [][]float64
	JointN      []int64

	// Range is the range-task accumulator state; nil when the pipeline
	// has no range task.
	Range *rangequery.AccState

	// Trainer is the federated-SGD coordinator snapshot; nil when the
	// pipeline has no gradient task. It never merges.
	Trainer *TrainerState
}

// TrainerState is an observability snapshot of the federated SGD
// coordinator, carried by exported states (and the cluster snapshot wire
// format) for inspection only.
type TrainerState struct {
	Round    int
	Done     bool
	Accepted int64
	Stale    int64
	Beta     []float64
}

// Total returns the number of shard-folded reports the state carries
// (gradient reports ride the trainer and are not counted, matching
// Watermark).
func (st *AggState) Total() int64 {
	return st.NMean + st.NFreq + st.NJoint + st.NRange
}

// newAggState allocates a zero state with the pipeline's shapes.
func (p *Pipeline) newAggState() *AggState {
	d := p.sch.Dim()
	st := &AggState{
		MeanSum:  make([]float64, d),
		JointSum: make([]float64, d),
	}
	if p.freq != nil {
		st.FreqCounts = make([][]float64, d)
		st.FreqN = make([]int64, d)
		for _, j := range p.freq.catIdx {
			st.FreqCounts[j] = make([]float64, p.sch.Attrs[j].Cardinality)
		}
	}
	if p.joint.oracles != nil {
		st.JointCounts = make([][]float64, d)
		st.JointN = make([]int64, d)
		for j, o := range p.joint.oracles {
			if o != nil {
				st.JointCounts[j] = make([]float64, o.Cardinality())
			}
		}
	}
	return st
}

// StateSnapshot exports the pipeline's raw aggregate state, summed across
// shards. Like Snapshot it locks shards one at a time, so concurrent
// ingest on other shards proceeds; reports folded while the export is in
// progress may or may not be included. The returned state shares no
// memory with the pipeline.
func (p *Pipeline) StateSnapshot() *AggState {
	st := p.newAggState()
	var rangeAcc *rangequery.Accumulator
	if p.rangeT != nil {
		rangeAcc = rangequery.NewAccumulator(p.rangeT.col)
	}
	for _, sh := range p.shards {
		sh.mu.Lock()
		st.NMean += sh.nMean
		st.NFreq += sh.nFreq
		st.NJoint += sh.nJoint
		st.NRange += sh.nRange
		for i, v := range sh.meanSum {
			st.MeanSum[i] += v
		}
		for i, v := range sh.jointSum {
			st.JointSum[i] += v
		}
		for i := range st.FreqCounts {
			if dst := st.FreqCounts[i]; dst != nil {
				for v, c := range sh.freqCounts[i] {
					dst[v] += c
				}
				st.FreqN[i] += sh.freqN[i]
			}
		}
		for i := range st.JointCounts {
			if dst := st.JointCounts[i]; dst != nil {
				for v, c := range sh.jointCounts[i] {
					dst[v] += c
				}
				st.JointN[i] += sh.jointN[i]
			}
		}
		if rangeAcc != nil {
			rangeAcc.Merge(sh.rangeAcc)
		}
		sh.mu.Unlock()
	}
	if rangeAcc != nil {
		st.Range = rangeAcc.ExportState()
	}
	if p.trainer != nil {
		m := p.trainer.Model()
		st.Trainer = &TrainerState{
			Round:    m.Round,
			Done:     m.Done,
			Accepted: p.trainer.Accepted(),
			Stale:    p.trainer.Stale(),
			Beta:     m.Beta,
		}
	}
	return st
}

// CheckState validates a state's shape and values against the pipeline
// configuration without mutating anything. Counts and reporter counts
// must be non-negative and finite (they are monotone sums of indicators;
// anything else means a corrupt or malicious snapshot), numeric sums must
// be finite, and every per-attribute slice must match the schema exactly.
func (p *Pipeline) CheckState(st *AggState) error {
	if st == nil {
		return fmt.Errorf("pipeline: nil state")
	}
	if st.Trainer != nil {
		return fmt.Errorf("pipeline: merging federated training state is not supported")
	}
	if st.NMean < 0 || st.NFreq < 0 || st.NJoint < 0 || st.NRange < 0 {
		return fmt.Errorf("pipeline: negative report count in state")
	}
	d := p.sch.Dim()
	if len(st.MeanSum) != d || len(st.JointSum) != d {
		return fmt.Errorf("pipeline: state dimension mismatch (%d mean / %d joint sums, schema has %d attributes)",
			len(st.MeanSum), len(st.JointSum), d)
	}
	for _, v := range st.MeanSum {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("pipeline: non-finite mean sum in state")
		}
	}
	for _, v := range st.JointSum {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("pipeline: non-finite joint sum in state")
		}
	}
	if p.mean == nil && st.NMean != 0 {
		return fmt.Errorf("pipeline: state has mean reports but no mean task is registered")
	}
	if err := p.checkCountColumns("freq", p.freq != nil, st.NFreq, st.FreqCounts, st.FreqN, func(j int) int {
		return p.sch.Attrs[j].Cardinality
	}); err != nil {
		return err
	}
	jointCard := func(j int) int { return p.joint.oracles[j].Cardinality() }
	if err := p.checkCountColumns("joint", p.joint.oracles != nil, st.NJoint, st.JointCounts, st.JointN, jointCard); err != nil {
		return err
	}
	switch {
	case p.rangeT == nil:
		if st.Range != nil || st.NRange != 0 {
			return fmt.Errorf("pipeline: state has range state but no range task is registered")
		}
	case st.Range == nil:
		if st.NRange != 0 {
			return fmt.Errorf("pipeline: state counts %d range reports but carries no range state", st.NRange)
		}
	default:
		if err := p.rangeCheck.CheckState(st.Range); err != nil {
			return err
		}
		if st.Range.N != st.NRange {
			return fmt.Errorf("pipeline: range state count %d does not match report count %d", st.Range.N, st.NRange)
		}
	}
	return nil
}

// checkCountColumns validates one oracle count family (freq or joint)
// against the schema: present exactly when the task is registered, with
// per-attribute domains matching card(j) for categorical attributes and
// nil columns for numeric ones.
func (p *Pipeline) checkCountColumns(name string, has bool, n int64, counts [][]float64, ns []int64, card func(int) int) error {
	if !has {
		if counts != nil || ns != nil || n != 0 {
			return fmt.Errorf("pipeline: state has %s counts but no %s state is registered", name, name)
		}
		return nil
	}
	d := p.sch.Dim()
	if len(counts) != d || len(ns) != d {
		return fmt.Errorf("pipeline: state %s counts cover %d attributes, schema has %d", name, len(counts), d)
	}
	for j := 0; j < d; j++ {
		numeric := p.sch.Attrs[j].Kind == schema.Numeric
		if numeric {
			if counts[j] != nil || ns[j] != 0 {
				return fmt.Errorf("pipeline: state has %s counts for numeric attribute %q", name, p.sch.Attrs[j].Name)
			}
			continue
		}
		if len(counts[j]) != card(j) {
			return fmt.Errorf("pipeline: state %s counts for attribute %q have domain %d, want %d",
				name, p.sch.Attrs[j].Name, len(counts[j]), card(j))
		}
		if ns[j] < 0 {
			return fmt.Errorf("pipeline: negative %s reporter count for attribute %q", name, p.sch.Attrs[j].Name)
		}
		for _, v := range counts[j] {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("pipeline: %s count for attribute %q is negative or non-finite", name, p.sch.Attrs[j].Name)
			}
		}
	}
	return nil
}

// MergeState validates st and folds it into the aggregate state under one
// shard's lock, advancing that shard's epoch by the state's report total
// so cached views invalidate exactly as if the underlying reports had
// been ingested locally. Safe for concurrent use with ingest, queries,
// and other MergeState calls. The state is only read.
func (p *Pipeline) MergeState(st *AggState) error {
	if err := p.CheckState(st); err != nil {
		return err
	}
	// Round-robin the merge target so repeated pushes spread across the
	// shard set, same as single-report ingest.
	var idx uint64
	if n := uint64(len(p.shards)); n > 1 {
		idx = p.cursor.Add(1) % n
	}
	sh := p.shards[idx]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.nMean += st.NMean
	sh.nFreq += st.NFreq
	sh.nJoint += st.NJoint
	sh.nRange += st.NRange
	for i, v := range st.MeanSum {
		sh.meanSum[i] += v
	}
	for i, v := range st.JointSum {
		sh.jointSum[i] += v
	}
	for i := range st.FreqCounts {
		if src := st.FreqCounts[i]; src != nil {
			dst := sh.freqCounts[i]
			for v, c := range src {
				dst[v] += c
			}
			sh.freqN[i] += st.FreqN[i]
		}
	}
	for i := range st.JointCounts {
		if src := st.JointCounts[i]; src != nil {
			dst := sh.jointCounts[i]
			for v, c := range src {
				dst[v] += c
			}
			sh.jointN[i] += st.JointN[i]
		}
	}
	if st.Range != nil {
		if err := sh.rangeAcc.AddState(st.Range); err != nil {
			// CheckState already validated shapes; this is unreachable, but
			// surface it rather than silently under-merging.
			return err
		}
	}
	// Mark the components the state actually touched so the next
	// incremental view rebuild re-syncs exactly those. Activity is judged
	// by reporter count OR support counts: a merged state can move one
	// without the other, and either moves the debiased estimate.
	for i := range st.FreqCounts {
		if colActive(st.FreqCounts[i], st.FreqN[i]) {
			sh.dFreq.set(i)
		}
	}
	for i := range st.JointCounts {
		if colActive(st.JointCounts[i], st.JointN[i]) {
			sh.dJoint.set(i)
		}
	}
	if st.Range != nil {
		for li := range st.Range.Levels {
			if colActive(st.Range.Levels[li].Counts, st.Range.Levels[li].N) {
				sh.dLevel.set(li)
			}
		}
		for g := range st.Range.Grids {
			if colActive(st.Range.Grids[g].Counts, st.Range.Grids[g].N) {
				sh.dGrid.set(g)
			}
		}
	}
	sh.epoch.Add(st.Total())
	return nil
}

// colActive reports whether a merged count column carries any activity: a
// nonzero reporter count or any nonzero support count.
func colActive(counts []float64, n int64) bool {
	if n != 0 {
		return true
	}
	for _, c := range counts {
		if c != 0 {
			return true
		}
	}
	return false
}

// Sub returns the elementwise difference cur - prev: the delta to ship
// after prev was already acknowledged by the receiver. A nil prev returns
// a deep copy. Both states must come from pipelines with the same
// Fingerprint. Trainer snapshots do not subtract; the result carries
// none.
func (cur *AggState) Sub(prev *AggState) (*AggState, error) {
	if prev == nil {
		out := cur.Clone()
		out.Trainer = nil
		return out, nil
	}
	if len(cur.MeanSum) != len(prev.MeanSum) ||
		len(cur.FreqCounts) != len(prev.FreqCounts) ||
		len(cur.JointCounts) != len(prev.JointCounts) ||
		(cur.Range == nil) != (prev.Range == nil) {
		return nil, fmt.Errorf("pipeline: subtracting states of different shapes")
	}
	out := &AggState{
		NMean:    cur.NMean - prev.NMean,
		NFreq:    cur.NFreq - prev.NFreq,
		NJoint:   cur.NJoint - prev.NJoint,
		NRange:   cur.NRange - prev.NRange,
		MeanSum:  subVec(cur.MeanSum, prev.MeanSum),
		JointSum: subVec(cur.JointSum, prev.JointSum),
	}
	var err error
	if out.FreqCounts, out.FreqN, err = subCols(cur.FreqCounts, cur.FreqN, prev.FreqCounts, prev.FreqN); err != nil {
		return nil, err
	}
	if out.JointCounts, out.JointN, err = subCols(cur.JointCounts, cur.JointN, prev.JointCounts, prev.JointN); err != nil {
		return nil, err
	}
	if cur.Range != nil {
		if out.Range, err = cur.Range.Sub(prev.Range); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func subVec(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

func subCols(ac [][]float64, an []int64, bc [][]float64, bn []int64) ([][]float64, []int64, error) {
	if ac == nil {
		return nil, nil, nil
	}
	counts := make([][]float64, len(ac))
	ns := make([]int64, len(an))
	for j := range ac {
		if (ac[j] == nil) != (bc[j] == nil) || len(ac[j]) != len(bc[j]) {
			return nil, nil, fmt.Errorf("pipeline: subtracting states of different shapes")
		}
		if ac[j] != nil {
			counts[j] = subVec(ac[j], bc[j])
			ns[j] = an[j] - bn[j]
		}
	}
	return counts, ns, nil
}

// Add folds o into the state elementwise; shapes must match. Trainer
// snapshots do not add and must be absent from o.
func (st *AggState) Add(o *AggState) error {
	if o == nil {
		return nil
	}
	if o.Trainer != nil {
		return fmt.Errorf("pipeline: adding federated training state is not supported")
	}
	if len(st.MeanSum) != len(o.MeanSum) || len(st.JointSum) != len(o.JointSum) {
		return fmt.Errorf("pipeline: adding states of different shapes")
	}
	if err := addCols(st.FreqCounts, st.FreqN, o.FreqCounts, o.FreqN); err != nil {
		return err
	}
	if err := addCols(st.JointCounts, st.JointN, o.JointCounts, o.JointN); err != nil {
		return err
	}
	if (st.Range == nil) != (o.Range == nil) {
		return fmt.Errorf("pipeline: adding states of different shapes")
	}
	if o.Range != nil {
		if err := st.Range.Add(o.Range); err != nil {
			return err
		}
	}
	for i, v := range o.MeanSum {
		st.MeanSum[i] += v
	}
	for i, v := range o.JointSum {
		st.JointSum[i] += v
	}
	st.NMean += o.NMean
	st.NFreq += o.NFreq
	st.NJoint += o.NJoint
	st.NRange += o.NRange
	return nil
}

func addCols(ac [][]float64, an []int64, bc [][]float64, bn []int64) error {
	if (ac == nil) != (bc == nil) || len(ac) != len(bc) {
		return fmt.Errorf("pipeline: adding states of different shapes")
	}
	for j := range bc {
		if (ac[j] == nil) != (bc[j] == nil) || len(ac[j]) != len(bc[j]) {
			return fmt.Errorf("pipeline: adding states of different shapes")
		}
		for v, c := range bc[j] {
			ac[j][v] += c
		}
		if bc[j] != nil {
			an[j] += bn[j]
		}
	}
	return nil
}

// Clone deep-copies the state.
func (st *AggState) Clone() *AggState {
	out := &AggState{
		NMean:    st.NMean,
		NFreq:    st.NFreq,
		NJoint:   st.NJoint,
		NRange:   st.NRange,
		MeanSum:  append([]float64(nil), st.MeanSum...),
		JointSum: append([]float64(nil), st.JointSum...),
	}
	out.FreqCounts, out.FreqN = cloneCols(st.FreqCounts, st.FreqN)
	out.JointCounts, out.JointN = cloneCols(st.JointCounts, st.JointN)
	if st.Range != nil {
		out.Range = st.Range.Clone()
	}
	if st.Trainer != nil {
		tr := *st.Trainer
		tr.Beta = append([]float64(nil), st.Trainer.Beta...)
		out.Trainer = &tr
	}
	return out
}

func cloneCols(c [][]float64, n []int64) ([][]float64, []int64) {
	if c == nil {
		return nil, nil
	}
	counts := make([][]float64, len(c))
	for j := range c {
		if c[j] != nil {
			counts[j] = append([]float64(nil), c[j]...)
		}
	}
	return counts, append([]int64(nil), n...)
}

// ValidateBatch checks every report of a decoded batch against the
// pipeline configuration without folding anything — exactly the
// validation AddBatch runs first. A server persisting accepted frames
// before folding them (write-ahead order) uses it to reject a bad batch
// before the log grows.
func (p *Pipeline) ValidateBatch(b *ReportBatch) error { return p.validateBatch(b) }

// Fingerprint is a stable hash of everything two pipelines must agree on
// for their aggregate states to mean the same thing: the schema
// (attribute names, kinds, cardinalities), the privacy budget, the
// registered analytics task set, and each task's estimator geometry and
// oracle identity (name and support probabilities — the debias
// parameters). Routing weights and shard counts are excluded: they change
// who reports what, not what the counts mean. The gradient task is also
// excluded — trainer state never rides the cluster snapshots, so a root
// may coordinate training while accepting analytics fan-in.
func (p *Pipeline) Fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "ldpstate1|eps=%x|d=%d", math.Float64bits(p.eps), p.sch.Dim())
	for _, a := range p.sch.Attrs {
		fmt.Fprintf(h, "|attr=%s,%d,%d", a.Name, a.Kind, a.Cardinality)
	}
	if p.mean != nil {
		fmt.Fprintf(h, "|mean=%s,k=%d", p.mean.inner.Name(), p.mean.k)
	}
	if p.freq != nil {
		fmt.Fprintf(h, "|freq=k%d", p.freq.k)
		for _, j := range p.freq.catIdx {
			o := p.freq.oracles[j]
			pp, q := o.SupportProbs()
			fmt.Fprintf(h, ",%s/%x/%x", o.Name(), math.Float64bits(pp), math.Float64bits(q))
		}
	}
	if p.joint.oracles != nil {
		fmt.Fprint(h, "|joint=")
		for _, o := range p.joint.oracles {
			if o != nil {
				pp, q := o.SupportProbs()
				fmt.Fprintf(h, "%s/%x/%x,", o.Name(), math.Float64bits(pp), math.Float64bits(q))
			}
		}
	}
	if p.rangeT != nil {
		col := p.rangeT.col
		hier := col.Hierarchy()
		fmt.Fprintf(h, "|range=B%d", hier.Buckets())
		for d := 1; d <= hier.Depths(); d++ {
			o := hier.Oracle(d)
			pp, q := o.SupportProbs()
			fmt.Fprintf(h, ",%s/%x/%x", o.Name(), math.Float64bits(pp), math.Float64bits(q))
		}
		if g := col.Grid(); g != nil {
			pp, q := g.Oracle().SupportProbs()
			fmt.Fprintf(h, "|grid=g%d,%s/%x/%x,pairs%d",
				g.Cells(), g.Oracle().Name(), math.Float64bits(pp), math.Float64bits(q), len(col.Pairs()))
		}
	}
	return h.Sum64()
}
