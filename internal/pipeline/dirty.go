package pipeline

import "math/bits"

// bitset is a fixed-capacity dirty-bit vector. The sharded pipeline keeps
// one per shard per component family (freq attrs, joint attrs, hierarchy
// level slots, grid slots), written under the shard lock by the fold
// paths and drained under the same lock by the incremental view builder.
// A nil bitset is a valid empty set: families a pipeline configuration
// does not register stay nil and every operation no-ops.
type bitset []uint64

// newBits allocates a bitset with capacity for n bits.
func newBits(n int) bitset { return make(bitset, (n+63)/64) }

// set marks bit i. Out-of-range indices (and nil sets) are ignored so
// callers never need capacity guards.
func (b bitset) set(i int) {
	if w := i >> 6; w >= 0 && w < len(b) {
		b[w] |= 1 << (uint(i) & 63)
	}
}

// get reports whether bit i is set; false for out-of-range indices and
// nil sets.
func (b bitset) get(i int) bool {
	w := i >> 6
	return w >= 0 && w < len(b) && b[w]&(1<<(uint(i)&63)) != 0
}

// zero clears every bit.
func (b bitset) zero() {
	for i := range b {
		b[i] = 0
	}
}

// any reports whether any bit is set.
func (b bitset) any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// count returns the number of set bits.
func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// forEach calls f with the index of every set bit, ascending.
func (b bitset) forEach(f func(int)) {
	for wi, w := range b {
		for w != 0 {
			f(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}
