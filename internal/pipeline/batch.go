package pipeline

import (
	"sync"

	"ldp/internal/core"
	"ldp/internal/freq"
	"ldp/internal/rangequery"
)

// ReportBatch is a reusable columnar batch of decoded reports: the unit of
// work of the ingest hot path. Instead of one Report struct (and one
// bitset allocation) per frame, a batch stores every report's payload in
// task-tagged parallel columns over shared flat buffers — entry
// attributes, kinds, numeric values, categorical values, and bitset spans
// into one []uint64 — so decoding a frame appends a few array elements and
// folding a batch walks contiguous memory. A Reset keeps every buffer's
// capacity, which is what makes the steady state allocation-free; GetBatch
// and PutBatch recycle batches through a sync.Pool.
//
// A batch is built by the appenders (StartEntryReport/AppendNumeric/
// AppendValue/AppendBits, AppendRangeValue/AppendRangeBits, or the
// convenience Append), is read by Pipeline.AddBatch, and is not safe for
// concurrent mutation. Reports can be materialized individually with
// Report for inspection and tests; the hot path never does.
type ReportBatch struct {
	task   []TaskKind // one element per report
	round  []int32    // one element per report; the training round of a gradient report, 0 otherwise
	nGrad  int        // number of gradient reports (lets AddBatch skip the trainer lock entirely)
	entOff []int32    // entry span of report i: [entOff[i], entOff[i+1])

	// Entry columns (mean/freq/joint reports), one element per entry.
	entAttr   []int32
	entKind   []uint8 // core.EntryKind
	entNum    []float64
	entCat    []int32
	entBitOff []int32
	entBitLen []int32

	// Range columns: rngIdx[i] indexes them for reports with task
	// TaskRange and is -1 otherwise.
	rngIdx    []int32
	rngKind   []uint8 // rangequery.ReportKind
	rngAttr   []int32
	rngDepth  []int32
	rngPair   []int32
	rngVal    []int32
	rngBitOff []int32
	rngBitLen []int32

	// bits is the shared flat buffer behind every bitset span.
	bits []uint64
}

// NewReportBatch returns an empty batch. Callers that ingest continuously
// should prefer GetBatch/PutBatch, which recycle grown buffers.
func NewReportBatch() *ReportBatch {
	return &ReportBatch{entOff: make([]int32, 1, 64)}
}

var batchPool = sync.Pool{New: func() any { return NewReportBatch() }}

// GetBatch returns an empty batch from the package pool. Return it with
// PutBatch when done to keep the steady state allocation-free.
func GetBatch() *ReportBatch { return batchPool.Get().(*ReportBatch) }

// PutBatch resets a batch and returns it to the package pool. The caller
// must not use the batch (or any slice obtained from it) afterwards.
func PutBatch(b *ReportBatch) {
	if b == nil {
		return
	}
	b.Reset()
	batchPool.Put(b)
}

// Len returns the number of reports in the batch.
func (b *ReportBatch) Len() int { return len(b.task) }

// Task returns the task tag of report i.
func (b *ReportBatch) Task(i int) TaskKind { return b.task[i] }

// Round returns the training round of report i (meaningful for gradient
// reports; 0 for every other task).
func (b *ReportBatch) Round(i int) int32 { return b.round[i] }

// Reset empties the batch, keeping every buffer's capacity for reuse.
func (b *ReportBatch) Reset() {
	b.task = b.task[:0]
	b.round = b.round[:0]
	b.nGrad = 0
	b.entOff = b.entOff[:1]
	b.entOff[0] = 0
	b.entAttr = b.entAttr[:0]
	b.entKind = b.entKind[:0]
	b.entNum = b.entNum[:0]
	b.entCat = b.entCat[:0]
	b.entBitOff = b.entBitOff[:0]
	b.entBitLen = b.entBitLen[:0]
	b.rngIdx = b.rngIdx[:0]
	b.rngKind = b.rngKind[:0]
	b.rngAttr = b.rngAttr[:0]
	b.rngDepth = b.rngDepth[:0]
	b.rngPair = b.rngPair[:0]
	b.rngVal = b.rngVal[:0]
	b.rngBitOff = b.rngBitOff[:0]
	b.rngBitLen = b.rngBitLen[:0]
	b.bits = b.bits[:0]
}

// BatchMark is a position in a batch, taken with Mark and restored with
// Truncate: a decoder that fails mid-frame rolls the batch back to the
// last complete report.
type BatchMark struct {
	reports, entries, ranges, bits, grads int
}

// Mark records the current end of the batch.
func (b *ReportBatch) Mark() BatchMark {
	return BatchMark{
		reports: len(b.task),
		entries: len(b.entAttr),
		ranges:  len(b.rngKind),
		bits:    len(b.bits),
		grads:   b.nGrad,
	}
}

// Truncate discards everything appended after the mark.
func (b *ReportBatch) Truncate(m BatchMark) {
	b.task = b.task[:m.reports]
	b.round = b.round[:m.reports]
	b.nGrad = m.grads
	b.entOff = b.entOff[:m.reports+1]
	b.entOff[m.reports] = int32(m.entries)
	b.entAttr = b.entAttr[:m.entries]
	b.entKind = b.entKind[:m.entries]
	b.entNum = b.entNum[:m.entries]
	b.entCat = b.entCat[:m.entries]
	b.entBitOff = b.entBitOff[:m.entries]
	b.entBitLen = b.entBitLen[:m.entries]
	b.rngIdx = b.rngIdx[:m.reports]
	b.rngKind = b.rngKind[:m.ranges]
	b.rngAttr = b.rngAttr[:m.ranges]
	b.rngDepth = b.rngDepth[:m.ranges]
	b.rngPair = b.rngPair[:m.ranges]
	b.rngVal = b.rngVal[:m.ranges]
	b.rngBitOff = b.rngBitOff[:m.ranges]
	b.rngBitLen = b.rngBitLen[:m.ranges]
	b.bits = b.bits[:m.bits]
}

// StartEntryReport begins a new entry-list report (TaskMean, TaskFreq, or
// TaskJoint; range reports are appended whole with AppendRangeValue or
// AppendRangeBits). Subsequent AppendNumeric/AppendValue/AppendBits calls
// attach entries to it.
func (b *ReportBatch) StartEntryReport(task TaskKind) {
	b.task = append(b.task, task)
	b.round = append(b.round, 0)
	b.entOff = append(b.entOff, int32(len(b.entAttr)))
	b.rngIdx = append(b.rngIdx, -1)
}

// StartGradientReport begins a new gradient report for the given training
// round. Subsequent AppendNumeric calls attach its perturbed coordinates
// (attr = coordinate index).
func (b *ReportBatch) StartGradientReport(round int32) {
	b.task = append(b.task, TaskGradient)
	b.round = append(b.round, round)
	b.nGrad++
	b.entOff = append(b.entOff, int32(len(b.entAttr)))
	b.rngIdx = append(b.rngIdx, -1)
}

// appendEntry grows every entry column by one element.
func (b *ReportBatch) appendEntry(attr int, kind core.EntryKind, num float64, cat, bitOff, bitLen int32) {
	b.entAttr = append(b.entAttr, int32(attr))
	b.entKind = append(b.entKind, uint8(kind))
	b.entNum = append(b.entNum, num)
	b.entCat = append(b.entCat, cat)
	b.entBitOff = append(b.entBitOff, bitOff)
	b.entBitLen = append(b.entBitLen, bitLen)
	b.entOff[len(b.entOff)-1] = int32(len(b.entAttr))
}

// AppendNumeric attaches a numeric entry to the current entry report.
func (b *ReportBatch) AppendNumeric(attr int, v float64) {
	b.appendEntry(attr, core.EntryNumeric, v, 0, 0, 0)
}

// AppendValue attaches a value-type (GRR) categorical entry to the current
// entry report.
func (b *ReportBatch) AppendValue(attr int, v int) {
	b.appendEntry(attr, core.EntryCategoricalValue, 0, int32(v), 0, 0)
}

// AppendBits attaches a unary-encoding categorical entry to the current
// entry report and returns the span of the shared bit buffer backing it.
// The caller must overwrite all `words` elements before the next append
// (the span may contain stale words from a previous use of the batch) and
// must not hold the slice across further appends.
func (b *ReportBatch) AppendBits(attr int, words int) []uint64 {
	off := len(b.bits)
	dst := b.growBits(words)
	b.appendEntry(attr, core.EntryCategoricalBits, 0, 0, int32(off), int32(words))
	return dst
}

// AppendRangeValue appends a whole range report with a value-type (GRR)
// oracle response.
func (b *ReportBatch) AppendRangeValue(kind rangequery.ReportKind, attr, depth, pair, value int) {
	b.appendRange(kind, attr, depth, pair, int32(value), 0, 0)
}

// AppendRangeBits appends a whole range report with a unary-encoding
// oracle response and returns the span of the shared bit buffer backing
// it, under the same fill-before-next-append contract as AppendBits.
func (b *ReportBatch) AppendRangeBits(kind rangequery.ReportKind, attr, depth, pair, words int) []uint64 {
	off := len(b.bits)
	dst := b.growBits(words)
	b.appendRange(kind, attr, depth, pair, 0, int32(off), int32(words))
	return dst
}

func (b *ReportBatch) appendRange(kind rangequery.ReportKind, attr, depth, pair int, val, bitOff, bitLen int32) {
	b.task = append(b.task, TaskRange)
	b.round = append(b.round, 0)
	b.entOff = append(b.entOff, int32(len(b.entAttr)))
	b.rngIdx = append(b.rngIdx, int32(len(b.rngKind)))
	b.rngKind = append(b.rngKind, uint8(kind))
	b.rngAttr = append(b.rngAttr, int32(attr))
	b.rngDepth = append(b.rngDepth, int32(depth))
	b.rngPair = append(b.rngPair, int32(pair))
	b.rngVal = append(b.rngVal, val)
	b.rngBitOff = append(b.rngBitOff, bitOff)
	b.rngBitLen = append(b.rngBitLen, bitLen)
}

// growBits extends the shared bit buffer by `words` elements without
// zeroing them and returns the new span.
func (b *ReportBatch) growBits(words int) []uint64 {
	off := len(b.bits)
	need := off + words
	if cap(b.bits) < need {
		grown := make([]uint64, need, max(2*need, 64))
		copy(grown, b.bits)
		b.bits = grown
	} else {
		b.bits = b.bits[:need]
	}
	return b.bits[off:need]
}

// Append adds one materialized report to the batch, copying its payload
// into the columns. The report is not retained.
func (b *ReportBatch) Append(rep Report) {
	if rep.Task == TaskRange {
		rr := rep.Range
		if rr.Resp.Bits != nil {
			copy(b.AppendRangeBits(rr.Kind, rr.Attr, rr.Depth, rr.Pair, len(rr.Resp.Bits)), rr.Resp.Bits)
		} else {
			b.AppendRangeValue(rr.Kind, rr.Attr, rr.Depth, rr.Pair, rr.Resp.Value)
		}
		return
	}
	if rep.Task == TaskGradient {
		b.StartGradientReport(rep.Round)
	} else {
		b.StartEntryReport(rep.Task)
	}
	for _, e := range rep.Entries {
		switch e.Kind {
		case core.EntryNumeric:
			b.AppendNumeric(e.Attr, e.Value)
		case core.EntryCategoricalBits:
			copy(b.AppendBits(e.Attr, len(e.Resp.Bits)), e.Resp.Bits)
		default:
			b.AppendValue(e.Attr, e.Resp.Value)
		}
	}
}

// Report materializes report i as a standalone Report (bitsets are
// copied, so the result outlives the batch). It allocates; the aggregation
// hot path reads the columns directly instead.
func (b *ReportBatch) Report(i int) Report {
	if b.task[i] == TaskRange {
		rr := b.rangeAlias(i)
		rr.Resp.Bits = append(freq.Bitset(nil), rr.Resp.Bits...)
		if len(rr.Resp.Bits) == 0 {
			rr.Resp.Bits = nil
		}
		return Report{Task: TaskRange, Range: rr}
	}
	lo, hi := b.entOff[i], b.entOff[i+1]
	entries := make([]core.Entry, 0, hi-lo)
	for e := lo; e < hi; e++ {
		ent := b.entryAlias(e)
		if ent.Resp.Bits != nil {
			ent.Resp.Bits = append(freq.Bitset(nil), ent.Resp.Bits...)
		}
		entries = append(entries, ent)
	}
	return Report{Task: b.task[i], Round: b.round[i], Entries: entries}
}

// entryAlias materializes entry e as a core.Entry whose bitset (if any)
// aliases the batch's shared bit buffer: a stack value for validation and
// folding, not for retention.
func (b *ReportBatch) entryAlias(e int32) core.Entry {
	ent := core.Entry{Attr: int(b.entAttr[e]), Kind: core.EntryKind(b.entKind[e])}
	switch ent.Kind {
	case core.EntryNumeric:
		ent.Value = b.entNum[e]
	case core.EntryCategoricalBits:
		off := b.entBitOff[e]
		ent.Resp.Bits = freq.Bitset(b.bits[off : off+b.entBitLen[e]])
	default:
		ent.Resp.Value = int(b.entCat[e])
	}
	return ent
}

// rangeAlias materializes range report i with the same aliasing contract
// as entryAlias. The caller must have checked task[i] == TaskRange.
func (b *ReportBatch) rangeAlias(i int) rangequery.Report {
	r := b.rngIdx[i]
	rep := rangequery.Report{
		Kind:  rangequery.ReportKind(b.rngKind[r]),
		Attr:  int(b.rngAttr[r]),
		Depth: int(b.rngDepth[r]),
		Pair:  int(b.rngPair[r]),
	}
	if n := b.rngBitLen[r]; n > 0 {
		off := b.rngBitOff[r]
		rep.Resp.Bits = freq.Bitset(b.bits[off : off+n])
	} else {
		rep.Resp.Value = int(b.rngVal[r])
	}
	return rep
}
