package pipeline

import (
	"testing"

	"ldp/internal/rng"
	"ldp/internal/schema"
	"ldp/internal/stattest"
)

// TestMeanTaskEstimatorStatistics feeds a population with a known fixed
// tuple through the full Randomize -> Add -> Snapshot path and accepts
// the mean estimates only if they sit within 5 standard deviations of the
// truth, with the standard deviation derived from the mean task's own
// closed-form per-report variance — the stattest harness's replacement
// for hand-picked tolerances.
func TestMeanTaskEstimatorStatistics(t *testing.T) {
	s, err := schema.New(
		schema.Attribute{Name: "a", Kind: schema.Numeric},
		schema.Attribute{Name: "b", Kind: schema.Numeric},
	)
	if err != nil {
		t.Fatal(err)
	}
	truth := []float64{0.55, -0.35}
	for _, eps := range []float64{1, 4} {
		p, err := New(s, eps, WithShards(2))
		if err != nil {
			t.Fatal(err)
		}
		const users = 40_000
		tup := schema.NewTuple(s)
		copy(tup.Num, truth)
		for i := 0; i < users; i++ {
			rep, err := p.Randomize(tup, rng.NewStream(0x517A7+uint64(eps*10), uint64(i)))
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Add(rep); err != nil {
				t.Fatal(err)
			}
		}
		res := p.Snapshot()
		mt := p.MeanTask()
		scale := float64(s.Dim()) / float64(mt.K())
		for j, a := range s.Attrs {
			// Dense-equivalent per-report variance of Algorithm 4 at input
			// t: (d/k)(Var_inner(t) + t^2) - t^2.
			v := truth[j]
			perReport := scale*(mt.Mechanism().Variance(v)+v*v) - v*v
			got, err := res.Mean(a.Name)
			if err != nil {
				t.Fatal(err)
			}
			stattest.CheckEstimate(t, a.Name, got, v, perReport, users)
		}
	}
}
