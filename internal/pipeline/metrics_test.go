package pipeline

import (
	"fmt"
	"strings"
	"testing"

	"ldp/internal/core"
	"ldp/internal/rng"
	"ldp/internal/telemetry"
)

// scrape renders a registry's full Prometheus exposition.
func scrape(t *testing.T, reg *telemetry.Registry) string {
	t.Helper()
	var sb strings.Builder
	if _, err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// mustContain asserts one exact sample line is present in an exposition.
func mustContain(t *testing.T, exp, line string) {
	t.Helper()
	if !strings.Contains(exp, line+"\n") {
		t.Fatalf("exposition missing line %q:\n%s", line, exp)
	}
}

// TestIngestMetricsExactCounts folds a known workload and asserts the
// instrumented counts are exact: batches, batch sizes, rejects, per-task
// report totals, per-shard fills, and the watermark all line up with the
// pipeline's own ground truth.
func TestIngestMetricsExactCounts(t *testing.T) {
	reg := telemetry.NewRegistry()
	p, err := New(testSchema(t), 1, WithShards(2), WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}

	const perBatch, batches = 100, 3
	r := rng.New(11)
	for b := 0; b < batches; b++ {
		batch := NewReportBatch()
		for i := 0; i < perBatch; i++ {
			rep, err := p.Randomize(sampleTuple(p.Schema(), r), r)
			if err != nil {
				t.Fatal(err)
			}
			batch.Append(rep)
		}
		if err := p.AddBatch(batch); err != nil {
			t.Fatal(err)
		}
	}

	if got := p.met.batches.Value(); got != batches {
		t.Fatalf("batches counter = %d, want %d", got, batches)
	}
	if got := p.met.batchSize.Count(); got != batches {
		t.Fatalf("batch size observations = %d, want %d", got, batches)
	}
	// 100 lands in bucket 7 (64..127).
	if got := p.met.batchSize.Bucket(7); got != batches {
		t.Fatalf("batch size bucket 7 = %d, want %d", got, batches)
	}

	// Rejects: one bad single report, one bad batch, neither folds state.
	bad := Report{Task: TaskMean, Entries: []core.Entry{{Attr: 99, Kind: core.EntryNumeric}}}
	if err := p.Add(bad); err == nil {
		t.Fatal("bad report accepted")
	}
	badBatch := NewReportBatch()
	badBatch.Append(bad)
	if err := p.AddBatch(badBatch); err == nil {
		t.Fatal("bad batch accepted")
	}
	if p.met.rejectReports.Value() != 1 || p.met.rejectBatches.Value() != 1 {
		t.Fatalf("rejects = report %d batch %d, want 1 and 1",
			p.met.rejectReports.Value(), p.met.rejectBatches.Value())
	}

	// The func-backed series must agree with the pipeline's own counters.
	exp := scrape(t, reg)
	counts := p.TaskCounts()
	mustContain(t, exp, fmt.Sprintf(`ldp_ingest_reports_total{task="mean"} %d`, counts[TaskMean]))
	mustContain(t, exp, fmt.Sprintf(`ldp_ingest_reports_total{task="freq"} %d`, counts[TaskFreq]))
	mustContain(t, exp, `ldp_ingest_reports_total{task="joint"} 0`)
	mustContain(t, exp, fmt.Sprintf("ldp_ingest_watermark %d", p.Watermark()))
	var shardSum int64
	for i, sh := range p.shards {
		n := sh.epoch.Load()
		shardSum += n
		mustContain(t, exp, fmt.Sprintf(`ldp_ingest_shard_reports{shard="%d"} %d`, i, n))
	}
	if shardSum != batches*perBatch {
		t.Fatalf("shard fills sum to %d, want %d", shardSum, batches*perBatch)
	}
	mustContain(t, exp, fmt.Sprintf("ldp_ingest_batches_total %d", batches))
	mustContain(t, exp, `ldp_ingest_rejects_total{path="batch"} 1`)
	mustContain(t, exp, `ldp_ingest_rejects_total{path="report"} 1`)
}

// TestViewMetricsExactCounts drives the cached-view state machine through
// a miss, a hit, and a staleness-forced rebuild, checking the counters at
// each step (the default staleness bound 0 makes every step exact).
func TestViewMetricsExactCounts(t *testing.T) {
	reg := telemetry.NewRegistry()
	p, err := New(testSchema(t), 1, WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	add := func() {
		rep, err := p.Randomize(sampleTuple(p.Schema(), r), r)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Add(rep); err != nil {
			t.Fatal(err)
		}
	}

	add()
	p.View() // cold: rebuild
	p.View() // unchanged watermark: cached hit
	p.View() // cached hit
	add()
	p.View() // stale: rebuild

	if h, m := p.met.viewHits.Value(), p.met.viewMisses.Value(); h != 2 || m != 2 {
		t.Fatalf("view hits/misses = %d/%d, want 2/2", h, m)
	}
	if got := p.met.rebuild.Count(); got != 2 {
		t.Fatalf("rebuild histogram count = %d, want 2", got)
	}
	exp := scrape(t, reg)
	mustContain(t, exp, "ldp_view_hits_total 2")
	mustContain(t, exp, "ldp_view_misses_total 2")
	mustContain(t, exp, "ldp_view_losers_total 0")
	mustContain(t, exp, "ldp_view_epoch 2")
}

// TestTrainerMetrics folds accepted and stale gradients and checks the
// trainer's func-backed series, including the group fill resetting when a
// round advances.
func TestTrainerMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	p, err := New(testSchema(t), 5, WithTelemetry(reg), WithGradient(GradientConfig{
		Dim: 2, Rounds: 4, GroupSize: 3,
		Eta: 1, Lambda: 1e-4, Mechanism: identityFactory,
	}))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	grad := []float64{0.25, -0.5}
	submit := func(round int) {
		rep, err := p.GradientTask().RandomizeGradient(round, grad, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Add(rep); err != nil {
			t.Fatal(err)
		}
	}

	submit(0)
	submit(0)
	submit(2) // valid round tag, but not the collecting round: stale
	if got := p.Trainer().Fill(); got != 2 {
		t.Fatalf("Fill = %d, want 2", got)
	}
	exp := scrape(t, reg)
	mustContain(t, exp, "ldp_trainer_round 0")
	mustContain(t, exp, "ldp_trainer_done 0")
	mustContain(t, exp, "ldp_trainer_group_fill 2")
	mustContain(t, exp, "ldp_trainer_accepted_total 2")
	mustContain(t, exp, "ldp_trainer_stale_total 1")
	mustContain(t, exp, `ldp_ingest_reports_total{task="gradient"} 2`)

	submit(0) // fills the group: round advances, fill resets
	if got := p.Trainer().Fill(); got != 0 {
		t.Fatalf("Fill after round advance = %d, want 0", got)
	}
	exp = scrape(t, reg)
	mustContain(t, exp, "ldp_trainer_round 1")
	mustContain(t, exp, "ldp_trainer_group_fill 0")
	mustContain(t, exp, "ldp_trainer_accepted_total 3")
}

// TestTelemetryDisabled proves the default (no WithTelemetry) pipeline
// runs every instrumented path with nil handles: ingest, rejects, and
// view traffic must all work and count nothing.
func TestTelemetryDisabled(t *testing.T) {
	p, err := New(testSchema(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	batch := NewReportBatch()
	for i := 0; i < 10; i++ {
		rep, err := p.Randomize(sampleTuple(p.Schema(), r), r)
		if err != nil {
			t.Fatal(err)
		}
		batch.Append(rep)
	}
	if err := p.AddBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(Report{Task: TaskMean}); err == nil {
		t.Fatal("empty report accepted")
	}
	p.View()
	p.View()
	if p.met.batches != nil || p.met.viewHits != nil || p.met.rebuild != nil {
		t.Fatal("metric handles live without WithTelemetry")
	}
}
