package pipeline

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"ldp/internal/core"
	"ldp/internal/mech"
	"ldp/internal/rng"
	"ldp/internal/schema"
)

// Federated LDP-SGD (the paper's Section V) as a pipeline task: the server
// publishes the current model, each participating user computes the
// gradient of the loss at that model on their own example, clips it
// per-coordinate to [-1, 1], randomizes it with the paper's Algorithm-4
// numeric scheme (sample k of the d coordinates, perturb each with a 1-D
// mechanism at budget eps/k, scale by d/k), and submits only the
// randomized gradient. When a round's group fills, the Trainer averages
// the unbiased noisy gradients and takes one SGD step. Each user
// participates in at most one round — the paper shows splitting a user's
// budget over m iterations is strictly worse — so a training run consumes
// GroupSize*Rounds distinct users.

// GradientConfig parameterizes the federated SGD task registered with
// WithGradient.
type GradientConfig struct {
	// Dim is the gradient dimensionality (the ERM feature dimension),
	// independent of the pipeline schema's attribute count.
	Dim int
	// Rounds is the total number of SGD rounds; after the last round the
	// published model is final and further reports are dropped.
	Rounds int
	// GroupSize is the number of gradient reports that fill one round.
	// Size it from the mechanism's per-coordinate variance (see
	// erm.GroupSizeForVariance) so the averaged noise is useful.
	GroupSize int
	// Eta scales the learning schedule gamma_t = Eta / sqrt(t).
	Eta float64
	// Lambda is the L2 regularization weight the clients train with. The
	// server only echoes it through the model endpoint so clients cannot
	// disagree; it does not enter the server-side update.
	Lambda float64
	// Mechanism is the 1-D numeric mechanism factory (default: the
	// pipeline's mechanism factory, i.e. HM unless WithMechanism says
	// otherwise), instantiated at eps/k.
	Mechanism mech.Factory
}

func (c GradientConfig) validate() error {
	if c.Dim < 1 {
		return fmt.Errorf("pipeline: gradient dimension must be >= 1, got %d", c.Dim)
	}
	if c.Rounds < 1 {
		return fmt.Errorf("pipeline: gradient rounds must be >= 1, got %d", c.Rounds)
	}
	if c.GroupSize < 1 {
		return fmt.Errorf("pipeline: gradient group size must be >= 1, got %d", c.GroupSize)
	}
	if !(c.Eta > 0) || math.IsInf(c.Eta, 0) {
		return fmt.Errorf("pipeline: gradient eta must be positive and finite, got %v", c.Eta)
	}
	if c.Lambda < 0 || math.IsNaN(c.Lambda) || math.IsInf(c.Lambda, 0) {
		return fmt.Errorf("pipeline: gradient lambda must be finite and >= 0, got %v", c.Lambda)
	}
	return nil
}

// WithGradient registers the federated SGD task: the pipeline grows a
// Trainer that accumulates gradient reports round by round and advances
// the model, and a GradientTask that randomizes client gradients. Tuples
// are never routed to the gradient task; clients call
// GradientTask.RandomizeGradient (or transport.SGDClient) instead.
func WithGradient(cfg GradientConfig) Option {
	return func(c *config) error {
		if err := cfg.validate(); err != nil {
			return err
		}
		c.gradient = &cfg
		return nil
	}
}

// GradientTask randomizes one user's clipped gradient under the full
// budget eps: sample k = max(1, min(d, floor(eps/2.5))) of the d
// coordinates, perturb each with the 1-D mechanism at eps/k, scale by
// d/k so the report is coordinate-wise unbiased over the round's group.
type GradientTask struct {
	dim    int
	rounds int
	k      int
	scale  float64
	eps    float64
	inner  mech.Mechanism
}

func newGradientTask(eps float64, cfg GradientConfig, fallback mech.Factory) (*GradientTask, error) {
	factory := cfg.Mechanism
	if factory == nil {
		factory = fallback
	}
	k := core.KFor(eps, cfg.Dim)
	inner, err := factory(eps / float64(k))
	if err != nil {
		return nil, fmt.Errorf("pipeline: gradient task mechanism: %w", err)
	}
	return &GradientTask{
		dim:    cfg.Dim,
		rounds: cfg.Rounds,
		k:      k,
		scale:  float64(cfg.Dim) / float64(k),
		eps:    eps,
		inner:  inner,
	}, nil
}

// Kind returns TaskGradient.
func (t *GradientTask) Kind() TaskKind { return TaskGradient }

// Name returns "gradient".
func (t *GradientTask) Name() string { return "gradient" }

// Dim returns the gradient dimensionality.
func (t *GradientTask) Dim() int { return t.dim }

// K returns the number of coordinates each user reports.
func (t *GradientTask) K() int { return t.k }

// Epsilon returns the task's total budget (the pipeline budget).
func (t *GradientTask) Epsilon() float64 { return t.eps }

// Mechanism returns the 1-D mechanism running at eps/k.
func (t *GradientTask) Mechanism() mech.Mechanism { return t.inner }

// Randomize implements Task. Gradient reports are not derived from schema
// tuples, so tuple routing never selects this task; it exists to keep the
// task set uniform.
func (t *GradientTask) Randomize(schema.Tuple, *rng.Rand) (Report, error) {
	return Report{}, fmt.Errorf("pipeline: the gradient task randomizes gradients, not tuples; use RandomizeGradient")
}

// RandomizeGradient perturbs one user's local gradient for the given
// round into an eps-LDP report. The gradient must have length Dim;
// coordinates are clipped to [-1, 1] first (the paper's per-coordinate
// clipping), so callers pass the raw loss gradient. It runs entirely on
// the user's side; only the Report leaves the device.
func (t *GradientTask) RandomizeGradient(round int, grad []float64, r *rng.Rand) (Report, error) {
	if len(grad) != t.dim {
		return Report{}, fmt.Errorf("pipeline: gradient has %d coordinates, task built for %d", len(grad), t.dim)
	}
	if round < 0 || round >= t.rounds {
		return Report{}, fmt.Errorf("pipeline: gradient round %d outside [0,%d)", round, t.rounds)
	}
	entries := make([]core.Entry, 0, t.k)
	for _, j := range rng.SampleWithoutReplacement(r, t.dim, t.k) {
		entries = append(entries, core.Entry{
			Attr:  j,
			Kind:  core.EntryNumeric,
			Value: t.scale * t.inner.Perturb(mech.Clamp1(grad[j]), r),
		})
	}
	return Report{Task: TaskGradient, Round: int32(round), Entries: entries}, nil
}

// Model is an immutable published model snapshot. Round is the round the
// model collects gradients for: clients tag their reports with it. Beta
// must not be mutated by callers — the Trainer publishes each snapshot
// once and never writes to it again, which is what makes lock-free reads
// safe.
type Model struct {
	Round int       `json:"round"`
	Done  bool      `json:"done"`
	Beta  []float64 `json:"beta"`
}

// Trainer is the server-side federated SGD coordinator. Gradient reports
// fold into the current round's accumulator under one lock; when the
// group fills, the model advances by one SGD step
// (beta <- beta - gamma_t * avg, gamma_t = eta/sqrt(t)) and a fresh
// immutable Model is published through an atomic pointer, so Model()
// reads never block ingest and can never observe a torn update. Reports
// tagged with any round other than the current one are counted stale and
// dropped: each accepted report contributes to exactly one round, and
// each round advances exactly once.
type Trainer struct {
	dim       int
	groupSize int
	rounds    int
	eta       float64
	lambda    float64

	mu    sync.Mutex
	sum   []float64
	count int

	accepted atomic.Int64
	stale    atomic.Int64
	model    atomic.Pointer[Model]
}

func newTrainer(cfg GradientConfig) *Trainer {
	tr := &Trainer{
		dim:       cfg.Dim,
		groupSize: cfg.GroupSize,
		rounds:    cfg.Rounds,
		eta:       cfg.Eta,
		lambda:    cfg.Lambda,
		sum:       make([]float64, cfg.Dim),
	}
	tr.model.Store(&Model{Round: 0, Beta: make([]float64, cfg.Dim)})
	return tr
}

// Model returns the current published model. The snapshot is immutable;
// callers must not write to Beta.
func (tr *Trainer) Model() *Model { return tr.model.Load() }

// Dim returns the gradient dimensionality.
func (tr *Trainer) Dim() int { return tr.dim }

// GroupSize returns the number of reports that fill one round.
func (tr *Trainer) GroupSize() int { return tr.groupSize }

// Rounds returns the total number of SGD rounds.
func (tr *Trainer) Rounds() int { return tr.rounds }

// Eta returns the learning-rate scale.
func (tr *Trainer) Eta() float64 { return tr.eta }

// Lambda returns the L2 regularization weight clients train with.
func (tr *Trainer) Lambda() float64 { return tr.lambda }

// Accepted returns the number of gradient reports folded into a round.
func (tr *Trainer) Accepted() int64 { return tr.accepted.Load() }

// Stale returns the number of gradient reports dropped because their
// round tag did not match the collecting round (late arrivals after a
// round filled, or anything after training finished).
func (tr *Trainer) Stale() int64 { return tr.stale.Load() }

// Fill returns the number of gradient reports accumulated toward the
// current round's group so far; it resets to zero when a round advances.
// A monitoring read: it takes the trainer lock, so the fold path pays
// nothing for it.
func (tr *Trainer) Fill() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.count
}

// foldBatch folds every gradient report of a validated batch into the
// trainer under a single lock acquisition. Reports for stale rounds are
// dropped; a round that fills mid-batch advances immediately, so the
// remaining reports of that round in the same batch count as stale.
func (tr *Trainer) foldBatch(b *ReportBatch) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for i := range b.task {
		if b.task[i] != TaskGradient {
			continue
		}
		tr.foldLocked(b.round[i], b, int(b.entOff[i]), int(b.entOff[i+1]))
	}
}

// foldOne folds a single validated gradient report.
func (tr *Trainer) foldOne(rep Report) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	m := tr.model.Load()
	if m.Done || int(rep.Round) != m.Round {
		tr.stale.Add(1)
		return
	}
	for _, e := range rep.Entries {
		tr.sum[e.Attr] += e.Value
	}
	tr.bump(m)
}

// foldLocked folds entry span [lo, hi) of a batch's gradient report. The
// caller holds tr.mu.
func (tr *Trainer) foldLocked(round int32, b *ReportBatch, lo, hi int) {
	m := tr.model.Load()
	if m.Done || int(round) != m.Round {
		tr.stale.Add(1)
		return
	}
	for e := lo; e < hi; e++ {
		tr.sum[b.entAttr[e]] += b.entNum[e]
	}
	tr.bump(m)
}

// bump counts one accepted report and advances the round when the group
// fills. The caller holds tr.mu.
func (tr *Trainer) bump(m *Model) {
	tr.count++
	tr.accepted.Add(1)
	if tr.count < tr.groupSize {
		return
	}
	t := m.Round + 1
	gamma := tr.eta / math.Sqrt(float64(t))
	inv := 1 / float64(tr.groupSize)
	beta := make([]float64, tr.dim)
	for j := range beta {
		beta[j] = m.Beta[j] - gamma*tr.sum[j]*inv
		tr.sum[j] = 0
	}
	tr.count = 0
	tr.model.Store(&Model{Round: t, Done: t >= tr.rounds, Beta: beta})
}
