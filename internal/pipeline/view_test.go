package pipeline

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ldp/internal/rangequery"
	"ldp/internal/rng"
)

// viewTestPipeline builds a 3-attribute pipeline with the range task on,
// so a view carries every query surface.
func viewTestPipeline(t testing.TB, opts ...Option) *Pipeline {
	t.Helper()
	opts = append([]Option{
		WithShards(4),
		WithRange(rangequery.Config{Buckets: 32, GridCells: 2}),
	}, opts...)
	p, err := New(testSchema(t), 2, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// ingestReports folds n pre-randomized reports through AddBatch.
func ingestReports(t testing.TB, p *Pipeline, seed uint64, n int) {
	t.Helper()
	b := NewReportBatch()
	for i := 0; i < n; i++ {
		r := rng.NewStream(seed, uint64(i))
		rep, err := p.Randomize(sampleTuple(p.Schema(), r), r)
		if err != nil {
			t.Fatal(err)
		}
		b.Append(rep)
	}
	if err := p.AddBatch(b); err != nil {
		t.Fatal(err)
	}
}

// queryAll answers every query kind the test schema supports and returns
// the answers in a fixed order, for bit-exact comparison.
func queryAll(t testing.TB, res *Result) []float64 {
	t.Helper()
	var out []float64
	for _, name := range []string{"age", "income"} {
		m, err := res.Mean(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, m)
	}
	fr, err := res.Freq("gender")
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, fr...)
	for _, q := range []RangeQuery{
		{Attr: "age", Lo: -0.5, Hi: 0.5},
		{Attr: "income", Lo: 0.03, Hi: 0.91},
		{Attr: "age", Lo: -1, Hi: 1},
		{Attr: "age", Lo: -0.5, Hi: 0.5, Attr2: "income", Lo2: -0.25, Hi2: 0.75},
	} {
		mass, err := res.Range(q)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, mass)
	}
	return out
}

// TestViewMatchesSnapshot is the view-cache correctness anchor: at a
// quiescent watermark, the cached view must answer every query kind
// bit-exactly like a fresh uncached Snapshot.
func TestViewMatchesSnapshot(t *testing.T) {
	p := viewTestPipeline(t)
	ingestReports(t, p, 11, 5000)

	view := p.View()
	snap := p.Snapshot()
	if view.Watermark() != snap.Watermark() {
		t.Fatalf("view watermark %d != snapshot watermark %d", view.Watermark(), snap.Watermark())
	}
	if view.Watermark() != p.Watermark() {
		t.Fatalf("view watermark %d != pipeline watermark %d", view.Watermark(), p.Watermark())
	}
	if n := view.N(); n != view.Watermark() {
		t.Fatalf("view N %d != watermark %d", n, view.Watermark())
	}
	va, sa := queryAll(t, view), queryAll(t, snap)
	for i := range va {
		if va[i] != sa[i] {
			t.Fatalf("answer %d: cached view %v != fresh snapshot %v", i, va[i], sa[i])
		}
	}

	// Repeated queries against the same view are stable (memoized paths
	// return the same values).
	vb := queryAll(t, view)
	for i := range va {
		if va[i] != vb[i] {
			t.Fatalf("answer %d drifted on repeat: %v then %v", i, va[i], vb[i])
		}
	}

	// And after more ingest the rebuilt view matches a rebuilt snapshot.
	ingestReports(t, p, 13, 3000)
	view2, snap2 := p.View(), p.Snapshot()
	if view2 == view {
		t.Fatal("view not rebuilt after watermark advanced")
	}
	if view2.Epoch() <= view.Epoch() {
		t.Fatalf("epoch did not advance: %d then %d", view.Epoch(), view2.Epoch())
	}
	va2, sa2 := queryAll(t, view2), queryAll(t, snap2)
	for i := range va2 {
		if va2[i] != sa2[i] {
			t.Fatalf("answer %d after rebuild: view %v != snapshot %v", i, va2[i], sa2[i])
		}
	}
}

// TestViewCachedWhileFresh checks the staleness-bound contract: within
// the bound the very same Result pointer is served; past it, a query
// rebuilds.
func TestViewCachedWhileFresh(t *testing.T) {
	p := viewTestPipeline(t, WithQueryStaleness(100, 0))
	ingestReports(t, p, 3, 500)

	v1 := p.View()
	if v2 := p.View(); v2 != v1 {
		t.Fatal("idle View() calls must serve the identical cached Result")
	}
	ingestReports(t, p, 5, 100) // exactly at the bound: still fresh
	if v2 := p.View(); v2 != v1 {
		t.Fatalf("view rebuilt within staleness bound (trail %d <= 100)", p.Watermark()-v1.Watermark())
	}
	ingestReports(t, p, 7, 1) // past the bound
	v3 := p.View()
	if v3 == v1 {
		t.Fatal("view served past its staleness bound")
	}
	if v3.Watermark() != p.Watermark() {
		t.Fatalf("rebuilt view watermark %d, want %d", v3.Watermark(), p.Watermark())
	}

	// Default bound (0 reports): any ingest invalidates.
	pd := viewTestPipeline(t)
	ingestReports(t, pd, 3, 100)
	d1 := pd.View()
	ingestReports(t, pd, 4, 1)
	if pd.View() == d1 {
		t.Fatal("default-staleness view served after ingest")
	}
}

// TestViewMaxAge checks the wall-clock bound.
func TestViewMaxAge(t *testing.T) {
	p := viewTestPipeline(t, WithQueryStaleness(1<<40, 10*time.Millisecond))
	ingestReports(t, p, 3, 100)
	v1 := p.View()
	if p.View() != v1 {
		t.Fatal("young view not served")
	}
	time.Sleep(25 * time.Millisecond)
	if p.View() == v1 {
		t.Fatal("aged-out view still served")
	}
}

// TestViewAfterMerge checks that Merge advances the watermark so cached
// views are invalidated by merged-in state like any other ingest.
func TestViewAfterMerge(t *testing.T) {
	p := viewTestPipeline(t)
	q := viewTestPipeline(t)
	ingestReports(t, p, 3, 200)
	ingestReports(t, q, 4, 300)
	v1 := p.View()
	if err := p.Merge(q); err != nil {
		t.Fatal(err)
	}
	if got := p.Watermark(); got != 500 {
		t.Fatalf("watermark after merge = %d, want 500", got)
	}
	v2 := p.View()
	if v2 == v1 {
		t.Fatal("cached view served after Merge changed the state")
	}
	if v2.N() != 500 {
		t.Fatalf("merged view N = %d, want 500", v2.N())
	}
}

// TestViewConcurrentIngest interleaves full-rate AddBatch ingest with
// concurrent cached queries. Run under -race (the CI race job does) to
// prove the lock-free read path tears nothing; under the plain runner it
// still checks that epochs and watermarks observed by every query
// goroutine are monotonically non-decreasing and that query answers stay
// internally consistent.
func TestViewConcurrentIngest(t *testing.T) {
	p := viewTestPipeline(t, WithQueryStaleness(64, 0))

	const (
		writers    = 4
		batches    = 60
		batchSize  = 50
		queriers   = 4
		perQuerier = 400
	)

	// Pre-build batches outside the clocked region.
	prebuilt := make([][]*ReportBatch, writers)
	for w := range prebuilt {
		prebuilt[w] = make([]*ReportBatch, batches)
		for i := range prebuilt[w] {
			b := NewReportBatch()
			for j := 0; j < batchSize; j++ {
				r := rng.NewStream(uint64(100+w), uint64(i*batchSize+j))
				rep, err := p.Randomize(sampleTuple(p.Schema(), r), r)
				if err != nil {
					t.Fatal(err)
				}
				b.Append(rep)
			}
			prebuilt[w][i] = b
		}
	}

	var wg sync.WaitGroup
	var fail atomic.Bool
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, b := range prebuilt[w] {
				if err := p.AddBatch(b); err != nil {
					t.Error(err)
					fail.Store(true)
					return
				}
			}
		}(w)
	}
	for qg := 0; qg < queriers; qg++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastEpoch uint64
			var lastWM int64
			for i := 0; i < perQuerier && !fail.Load(); i++ {
				v := p.View()
				if e := v.Epoch(); e < lastEpoch {
					t.Errorf("epoch went backwards: %d after %d", e, lastEpoch)
					fail.Store(true)
					return
				} else {
					lastEpoch = e
				}
				if wm := v.Watermark(); wm < lastWM {
					t.Errorf("watermark went backwards: %d after %d", wm, lastWM)
					fail.Store(true)
					return
				} else {
					lastWM = wm
				}
				if v.N() != v.Watermark() {
					t.Errorf("torn view: N %d != watermark %d", v.N(), v.Watermark())
					fail.Store(true)
					return
				}
				if _, err := v.Mean("age"); err != nil {
					t.Error(err)
					fail.Store(true)
					return
				}
				fr, err := v.FreqView("gender")
				if err != nil {
					t.Error(err)
					fail.Store(true)
					return
				}
				_ = fr[0] + fr[1]
				if _, err := v.Range(RangeQuery{Attr: "age", Lo: -0.5, Hi: 0.5}); err != nil {
					t.Error(err)
					fail.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if fail.Load() {
		t.FailNow()
	}

	want := int64(writers * batches * batchSize)
	if got := p.Watermark(); got != want {
		t.Fatalf("final watermark %d, want %d", got, want)
	}
	v := p.View()
	if v.Watermark() != want {
		// The last View may predate the final batch only within the
		// staleness bound.
		if want-v.Watermark() > 64 {
			t.Fatalf("final view trails by %d > staleness bound", want-v.Watermark())
		}
	}
}
