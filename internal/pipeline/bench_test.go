package pipeline

import (
	"fmt"
	"testing"

	"ldp/internal/dataset"
	"ldp/internal/rangequery"
	"ldp/internal/rng"
	"ldp/internal/telemetry"
)

// benchReports pre-randomizes n reports so only the aggregation side is on
// the clock.
func benchReports(b *testing.B, p *Pipeline, n int) []Report {
	b.Helper()
	r := rng.New(7)
	reps := make([]Report, n)
	for i := range reps {
		rep, err := p.Randomize(sampleTuple(p.Schema(), r), r)
		if err != nil {
			b.Fatal(err)
		}
		reps[i] = rep
	}
	return reps
}

// BenchmarkPipelineAdd measures the per-report ingest wrapper. The fold
// itself is allocation-free; steady state should report 0 allocs/op.
func BenchmarkPipelineAdd(b *testing.B) {
	p, err := New(testSchema(b), 1, WithShards(4))
	if err != nil {
		b.Fatal(err)
	}
	reps := benchReports(b, p, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Add(reps[i%len(reps)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineAddBR measures the per-report ingest wrapper on the
// 16-attribute BR census schema — the configuration the ingest-throughput
// experiment records — so the single-report slow path is benchmarked at
// production width, not just on the 3-attribute test schema.
func BenchmarkPipelineAddBR(b *testing.B) {
	c := dataset.NewBR()
	p, err := New(c.Schema(), 1, WithShards(1))
	if err != nil {
		b.Fatal(err)
	}
	reps := make([]Report, 4096)
	for i := range reps {
		r := rng.NewStream(1, uint64(i))
		rep, err := p.Randomize(c.Tuple(r), r)
		if err != nil {
			b.Fatal(err)
		}
		reps[i] = rep
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Add(reps[i%len(reps)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineAddBatch measures the columnar batch fold at the
// batch-size axis of the ingest benchmark. One op folds one whole batch;
// steady state must report 0 allocs/op — and therefore 0 allocs/report.
func BenchmarkPipelineAddBatch(b *testing.B) {
	for _, bs := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("size%d", bs), func(b *testing.B) {
			p, err := New(testSchema(b), 1, WithShards(4))
			if err != nil {
				b.Fatal(err)
			}
			batch := NewReportBatch()
			for _, rep := range benchReports(b, p, bs) {
				batch.Append(rep)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.AddBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*bs), "ns/report")
		})
	}
}

// BenchmarkBatchAppend measures building a batch from materialized
// reports (the bench harness path; the server decodes wire frames into
// the batch directly).
func BenchmarkBatchAppend(b *testing.B) {
	p, err := New(testSchema(b), 1)
	if err != nil {
		b.Fatal(err)
	}
	reps := benchReports(b, p, 1024)
	batch := NewReportBatch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.Reset()
		for _, rep := range reps {
			batch.Append(rep)
		}
	}
}

// benchQueryPipeline builds an ingested pipeline with every query
// surface for the query-path benchmarks.
func benchQueryPipeline(b *testing.B, opts ...Option) *Pipeline {
	b.Helper()
	p, err := New(testSchema(b), 2, append([]Option{WithShards(4),
		WithRange(rangequery.Config{Buckets: 64, GridCells: 4})}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	batch := NewReportBatch()
	for _, rep := range benchReports(b, p, 4096) {
		batch.Append(rep)
	}
	if err := p.AddBatch(batch); err != nil {
		b.Fatal(err)
	}
	return p
}

// queryOnce runs one dashboard-shaped query mix (a mean, a frequency
// histogram, a 1-D range, and a 2-D range) against a result.
func queryOnce(b *testing.B, res *Result) float64 {
	m, err := res.Mean("age")
	if err != nil {
		b.Fatal(err)
	}
	fr, err := res.FreqView("gender")
	if err != nil {
		b.Fatal(err)
	}
	mass1, err := res.Range(RangeQuery{Attr: "age", Lo: -0.5, Hi: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	mass2, err := res.Range(RangeQuery{Attr: "age", Lo: -0.5, Hi: 0.5, Attr2: "income", Lo2: 0, Hi2: 1})
	if err != nil {
		b.Fatal(err)
	}
	return m + fr[0] + mass1 + mass2
}

// BenchmarkQueryCached measures the cached-hit query path: View() plus
// the dashboard query mix against an unchanged watermark. This is the
// steady state of a dashboard-heavy server, and it must stay lock-free
// and allocation-free — the CI allocation guard fails on any alloc/op.
func BenchmarkQueryCached(b *testing.B) {
	p := benchQueryPipeline(b)
	sink := queryOnce(b, p.View()) // warm the view and its memoized paths
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += queryOnce(b, p.View())
	}
	_ = sink
}

// BenchmarkQuerySnapshot measures the uncached baseline the view cache
// replaces: a full Snapshot rebuild per query, the cost every /v1/query
// request paid before the epoch cache.
func BenchmarkQuerySnapshot(b *testing.B) {
	p := benchQueryPipeline(b)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += queryOnce(b, p.Snapshot())
	}
	_ = sink
}

// BenchmarkViewRefreshIncremental measures the sustained view-refresh
// path under ingest: every iteration folds one report and rebuilds the
// view, so each View() call is an incremental rebuild over a delta of
// exactly one report. This is the cold-query cliff the delta-proportional
// builder removes — the per-refresh cost must track the delta, not the
// domain, and the CI allocation guard bounds it to a small constant
// number of allocations (the fresh Result shell plus the handful of
// re-derived slices), independent of domain size.
func BenchmarkViewRefreshIncremental(b *testing.B) {
	p := benchQueryPipeline(b)
	reps := benchReports(b, p, 256)
	sink := queryOnce(b, p.View()) // cold full build outside the loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Add(reps[i%len(reps)]); err != nil {
			b.Fatal(err)
		}
		sink += queryOnce(b, p.View())
	}
	_ = sink
}

// BenchmarkAddBatchInstrumented is BenchmarkPipelineAddBatch/size1024
// with a live telemetry registry wired in: the CI allocation guard holds
// it to 0 allocs/op, proving instrumentation does not reintroduce
// allocation on the batch ingest path, and its ns/report stands next to
// the uninstrumented number in BENCH_pipeline.json as the overhead bound.
func BenchmarkAddBatchInstrumented(b *testing.B) {
	const bs = 1024
	p, err := New(testSchema(b), 1, WithShards(4), WithTelemetry(telemetry.NewRegistry()))
	if err != nil {
		b.Fatal(err)
	}
	batch := NewReportBatch()
	for _, rep := range benchReports(b, p, bs) {
		batch.Append(rep)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.AddBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*bs), "ns/report")
}

// BenchmarkQueryCachedInstrumented is BenchmarkQueryCached with a live
// telemetry registry: the cached-hit path gains exactly one counter add
// (the view-hit counter) and must stay at 0 allocs/op.
func BenchmarkQueryCachedInstrumented(b *testing.B) {
	p := benchQueryPipeline(b, WithTelemetry(telemetry.NewRegistry()))
	sink := queryOnce(b, p.View())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += queryOnce(b, p.View())
	}
	_ = sink
}

// BenchmarkGradientAddBatch measures gradient-report ingest through the
// trainer: the steady-state fold is flat array arithmetic under one lock
// acquisition per batch; allocation happens only on a round advance
// (2 small objects per round), so with a group far larger than the batch
// the loop reports 0 allocs/op.
func BenchmarkGradientAddBatch(b *testing.B) {
	p, err := New(testSchema(b), 5, WithGradient(GradientConfig{
		Dim: 90, Rounds: 1 << 20, GroupSize: 1 << 30,
		Eta: 1, Lambda: 1e-4, Mechanism: identityFactory,
	}))
	if err != nil {
		b.Fatal(err)
	}
	const size = 1024
	grad := make([]float64, 90)
	for j := range grad {
		grad[j] = 0.5
	}
	batch := NewReportBatch()
	r := rng.New(3)
	for i := 0; i < size; i++ {
		rep, err := p.GradientTask().RandomizeGradient(0, grad, r)
		if err != nil {
			b.Fatal(err)
		}
		batch.Append(rep)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.AddBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size), "ns/report")
}
