// Package pipeline unifies the repository's collection stacks behind one
// task-based API, the architecture of the paper's system model (Section
// II): the aggregator runs a single stream of randomized reports and
// answers mean, frequency, and range queries from it.
//
// A Pipeline is built from a schema, a total per-user privacy budget eps,
// and a set of functional options. It registers up to four tasks:
//
//   - MeanTask — Algorithm-4 attribute sampling over the numeric
//     attributes, perturbed with a 1-D mechanism (HM by default);
//   - FreqTask — attribute sampling over the categorical attributes,
//     perturbed with a frequency oracle (OUE by default);
//   - RangeTask — the rangequery subsystem's hierarchical-interval /
//     2-D-grid sub-tasks (enabled with WithRange);
//   - GradientTask — federated LDP-SGD over clipped per-example loss
//     gradients, coordinated round by round by a Trainer (enabled with
//     WithGradient; see gradient.go).
//
// Each user is routed to exactly one task (a data-independent coin flip)
// and spends the entire budget eps on that task's randomizer, in the
// user-partition spirit of the paper's Algorithm 4 and the RS+FD /
// AHEAD lines of work: the released Report is an eps-LDP view of the
// tuple because exactly one eps-LDP randomizer output is published.
// The gradient task sits outside tuple routing — its users are training
// participants who each contribute one randomized gradient to one round —
// but its reports share the wire envelope, the columnar batch decode
// path, and AddBatch ingest with every other task.
//
// The server side is production-shaped: aggregation state is sharded
// (WithShards) and batch-first. The unit of ingest is the columnar
// ReportBatch — AddBatch validates a whole batch without locks, then
// folds one contiguous span per shard under a single lock acquisition,
// with shard accumulators kept as flat sums and raw support counts so the
// steady-state fold allocates nothing. Per-report Add is a thin wrapper
// locking one shard, and Snapshot/Merge never take a global lock — they
// visit shards one at a time, so ingest on the other shards proceeds
// concurrently. Legacy Algorithm-4 reports (the v1 wire format, decoded
// as TaskJoint) fold into the same state, so a fleet of old clients can
// keep reporting through a new server during migration.
package pipeline

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ldp/internal/core"
	"ldp/internal/freq"
	"ldp/internal/mech"
	"ldp/internal/rangequery"
	"ldp/internal/rng"
	"ldp/internal/schema"
	"ldp/internal/telemetry"
)

// TaskKind identifies the sub-task a unified report answers.
type TaskKind uint8

const (
	// TaskMean is the numeric-mean task (Algorithm 4 over numeric attrs).
	TaskMean TaskKind = iota + 1
	// TaskFreq is the categorical-frequency task.
	TaskFreq
	// TaskRange is the range-query task (hierarchies + 2-D grids).
	TaskRange
	// TaskJoint is the legacy Algorithm-4 mixed report (numeric and
	// categorical entries in one report, scaled over the full schema). New
	// pipelines never produce it; it exists so v1 wire frames keep folding
	// into a unified aggregator.
	TaskJoint
	// TaskGradient is the federated LDP-SGD task (registered with
	// WithGradient): each report carries one user's randomized clipped
	// gradient for a specific training round.
	TaskGradient
)

// String returns the task tag used in wire formats, logs and options.
func (k TaskKind) String() string {
	switch k {
	case TaskMean:
		return "mean"
	case TaskFreq:
		return "freq"
	case TaskRange:
		return "range"
	case TaskJoint:
		return "joint"
	case TaskGradient:
		return "gradient"
	default:
		return fmt.Sprintf("TaskKind(%d)", uint8(k))
	}
}

// Report is one user's randomized submission to the unified pipeline:
// exactly one task's payload, identified by Task. Mean, freq, and joint
// payloads are attribute-indexed entry lists; gradient payloads are
// coordinate-indexed entry lists tagged with the training round; range
// payloads are rangequery reports.
type Report struct {
	Task    TaskKind
	Round   int32             // TaskGradient: the training round
	Entries []core.Entry      // TaskMean, TaskFreq, TaskJoint, TaskGradient
	Range   rangequery.Report // TaskRange
}

// Option configures a Pipeline under construction.
type Option func(*config) error

type config struct {
	mechFactory   mech.Factory
	oracleFactory freq.Factory
	rangeCfg      *rangequery.Config
	gradient      *GradientConfig
	shards        int
	weights       map[TaskKind]float64
	staleReports  int64
	staleAge      time.Duration
	incFrac       float64
	incSet        bool
	telemetry     *telemetry.Registry
}

// WithMechanism selects the 1-D numeric mechanism factory used by the mean
// task (and the legacy-compat joint state). The default is the paper's
// Hybrid Mechanism.
func WithMechanism(f mech.Factory) Option {
	return func(c *config) error {
		if f == nil {
			return fmt.Errorf("pipeline: WithMechanism(nil)")
		}
		c.mechFactory = f
		return nil
	}
}

// WithOracle selects the frequency-oracle factory used by the freq and
// range tasks (and the legacy-compat joint state). The default is OUE.
func WithOracle(f freq.Factory) Option {
	return func(c *config) error {
		if f == nil {
			return fmt.Errorf("pipeline: WithOracle(nil)")
		}
		c.oracleFactory = f
		return nil
	}
}

// WithRange registers the range-query task with the given configuration
// (the zero Config selects B=256 hierarchy buckets, 8x8 grids, and the
// pipeline's oracle).
func WithRange(cfg rangequery.Config) Option {
	return func(c *config) error {
		c.rangeCfg = &cfg
		return nil
	}
}

// WithShards sets the number of aggregation shards. More shards admit more
// concurrent Add calls; estimates are independent of the shard count. The
// default is 1; servers should set it near GOMAXPROCS.
func WithShards(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("pipeline: shards must be >= 1, got %d", n)
		}
		c.shards = n
		return nil
	}
}

// WithTaskWeight sets the routing weight of a registered task (default 1
// for every registered task). Weights are normalized; a zero weight keeps
// the task's aggregation state but routes no users to it. Setting a weight
// for a task the pipeline does not register is an error.
func WithTaskWeight(kind TaskKind, w float64) Option {
	return func(c *config) error {
		if kind != TaskMean && kind != TaskFreq && kind != TaskRange {
			return fmt.Errorf("pipeline: cannot weight task %v", kind)
		}
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("pipeline: task weight must be finite and >= 0, got %v", w)
		}
		c.weights[kind] = w
		return nil
	}
}

// WithTelemetry registers the pipeline's metric families — ingest volume
// per task and shard, batch sizes, validation rejects, view-cache traffic
// and rebuild latency, trainer round state — on reg and keeps them live
// (see metrics.go for the family list). The instrumentation is shaped so
// the per-report fold loops gain no atomics: per-task and per-shard
// counts are read from existing fold state at scrape time, and the only
// hot-path updates are one counter add and one histogram add per batch
// (not per report) and one counter add per query. A nil registry disables
// telemetry entirely (the default).
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(c *config) error {
		c.telemetry = reg
		return nil
	}
}

// jointCompat holds the state needed to fold legacy Algorithm-4 reports
// (TaskJoint) into the pipeline: the oracle parameters the old collector
// would have used for this schema and budget.
type jointCompat struct {
	oracles []freq.Oracle // indexed by schema attribute; nil for numeric
	bits    bool          // whether the oracle responses carry bitsets
}

// shard is one lock domain of the aggregation state. Its accumulators are
// flat arrays — numeric sums and raw frequency-oracle support counts per
// attribute — so folding a report (or a whole batch span) is direct array
// arithmetic with no estimator or interface indirection; Snapshot rebuilds
// debiasing estimators from the counts. Everything is guarded by mu.
type shard struct {
	mu sync.Mutex

	// epoch counts the reports folded into this shard, mirrored into an
	// atomic so the pipeline's ingest watermark (the freshness signal of
	// the cached query view) is readable without taking any shard lock.
	// It is written only while mu is held, immediately after the fold, so
	// under mu it is exactly nMean+nFreq+nJoint+nRange.
	epoch atomic.Int64

	nMean    int64
	nFreq    int64
	nJoint   int64
	nRange   int64
	meanSum  []float64 // mean-task numeric sums, indexed by attribute
	jointSum []float64 // joint-report numeric sums

	// Frequency-oracle support counts, indexed by attribute (nil for
	// numeric attributes), with per-attribute reporter counts. The freq
	// task and legacy joint reports run their oracles at different
	// budgets, so they accumulate separately.
	freqCounts  [][]float64
	freqN       []int64
	jointCounts [][]float64
	jointN      []int64

	rangeAcc *rangequery.Accumulator // nil when the range task is absent

	// Dirty bits for incremental view maintenance, written by the fold
	// paths under mu on every event that touches a component and drained
	// (synced into the cached view's aggregate, then cleared) by the view
	// builder under the same lock. A clear bit is a guarantee: the
	// builder's per-shard baseline for that component equals the shard's
	// live counts. Bits are event-driven, not diff-driven — a report can
	// change only a reporter count (an all-zero OUE bitset) and the
	// component's debiased estimate still moves, so every fold marks the
	// components it touched regardless of what the counts did.
	dFreq  bitset // freq-task count columns, by schema attribute
	dJoint bitset // legacy-joint count columns, by schema attribute
	dLevel bitset // hierarchy level slots (see rangequery.Collector.LevelIndex)
	dGrid  bitset // 2-D grid slots, by pair index
}

// Pipeline is the unified collector/aggregator. The randomization side
// (Randomize and the task randomizers) is stateless and safe for
// concurrent use with per-goroutine PRNGs; the aggregation side (Add,
// Snapshot, Merge) is sharded and safe for concurrent use.
type Pipeline struct {
	sch     *schema.Schema
	eps     float64
	tasks   []Task
	routed  []Task    // tasks with positive weight, aligned with cum
	cum     []float64 // cumulative routing probabilities over routed
	mean    *MeanTask
	freq    *FreqTask
	rangeT  *RangeTask
	grad    *GradientTask
	trainer *Trainer
	joint   jointCompat
	shards  []*shard
	cursor  atomic.Uint64
	sticky  atomic.Uint64
	view    viewCache
	met     pipelineMetrics // nil handles (no-ops) without WithTelemetry

	// rangeCheck validates range reports against the immutable collector
	// configuration without touching any shard state.
	rangeCheck *rangequery.Accumulator

	// lvlBase maps a schema attribute to the base of its hierarchy level
	// slots (lvlBase[attr]+depth-1 is the slot of one level; -1 for
	// non-numeric attributes); lvlSlots/gridSlots size the dirty bitsets.
	// All zero/nil when the range task is absent.
	lvlBase   []int
	lvlSlots  int
	gridSlots int

	// attrMeta caches per-attribute validation facts (kind, cardinality,
	// bitset width) so the batch validator is a table-driven columnar loop
	// instead of per-entry schema chasing.
	attrMeta []attrMeta
}

// attrMeta is the per-attribute validation table entry.
type attrMeta struct {
	numeric bool
	card    int32 // categorical cardinality
	words   int32 // freq.BitsetWords(card)
}

// New builds a pipeline for schema s at total per-user budget eps. Tasks
// are derived from the schema: a mean task when s has numeric attributes,
// a freq task when it has categorical attributes, and a range task when
// WithRange is given. At least one task must be registrable.
func New(s *schema.Schema, eps float64, opts ...Option) (*Pipeline, error) {
	if s == nil {
		return nil, fmt.Errorf("pipeline: nil schema")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := mech.ValidateEpsilon(eps); err != nil {
		return nil, err
	}
	cfg := config{
		mechFactory:   func(e float64) (mech.Mechanism, error) { return core.NewHybrid(e) },
		oracleFactory: func(e float64, k int) (freq.Oracle, error) { return freq.NewOUE(e, k) },
		shards:        1,
		weights:       make(map[TaskKind]float64),
	}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}

	p := &Pipeline{sch: s, eps: eps}
	numIdx, catIdx := s.NumericIdx(), s.CategoricalIdx()
	if len(numIdx) > 0 {
		t, err := newMeanTask(s, eps, cfg.mechFactory)
		if err != nil {
			return nil, err
		}
		p.mean = t
		p.tasks = append(p.tasks, t)
	}
	if len(catIdx) > 0 {
		t, err := newFreqTask(s, eps, cfg.oracleFactory)
		if err != nil {
			return nil, err
		}
		p.freq = t
		p.tasks = append(p.tasks, t)
	}
	if cfg.rangeCfg != nil {
		rc := *cfg.rangeCfg
		if rc.Oracle == nil {
			rc.Oracle = cfg.oracleFactory
		}
		col, err := rangequery.NewCollector(s, eps, rc)
		if err != nil {
			return nil, err
		}
		p.rangeT = &RangeTask{col: col}
		p.tasks = append(p.tasks, p.rangeT)
		p.rangeCheck = rangequery.NewAccumulator(col)
	}
	if cfg.gradient != nil {
		t, err := newGradientTask(eps, *cfg.gradient, cfg.mechFactory)
		if err != nil {
			return nil, err
		}
		p.grad = t
		p.trainer = newTrainer(*cfg.gradient)
		p.tasks = append(p.tasks, t)
	}
	if len(p.tasks) == 0 {
		return nil, fmt.Errorf("pipeline: no tasks for this schema (no numeric or categorical attributes and no WithRange)")
	}
	for kind := range cfg.weights {
		if p.task(kind) == nil {
			return nil, fmt.Errorf("pipeline: weight set for task %v, which this pipeline does not register", kind)
		}
	}

	// Routing distribution over the registered tasks. The gradient task is
	// never routed: its reports are derived from the published model, not
	// from tuples (clients call RandomizeGradient directly).
	total := 0.0
	for _, t := range p.tasks {
		if t.Kind() == TaskGradient {
			continue
		}
		w, ok := cfg.weights[t.Kind()]
		if !ok {
			w = 1
		}
		if w > 0 {
			p.routed = append(p.routed, t)
			total += w
			p.cum = append(p.cum, total)
		}
	}
	if len(p.routed) == 0 && p.grad == nil {
		return nil, fmt.Errorf("pipeline: every task weight is zero")
	}
	for i := range p.cum {
		p.cum[i] /= total
	}

	// Legacy-compat joint state: the oracle parameters a v1 core.Collector
	// would use for this schema and budget (eps/k with k over all d
	// attributes).
	if len(catIdx) > 0 {
		kJoint := core.KFor(eps, s.Dim())
		p.joint.oracles = make([]freq.Oracle, s.Dim())
		budget := eps / float64(kJoint)
		for _, j := range catIdx {
			o, err := cfg.oracleFactory(budget, s.Attrs[j].Cardinality)
			if err != nil {
				return nil, fmt.Errorf("pipeline: joint-compat oracle for attribute %q: %w", s.Attrs[j].Name, err)
			}
			p.joint.oracles[j] = o
		}
		p.joint.bits = freq.UsesBitset(p.joint.oracles[catIdx[0]])
	}

	p.attrMeta = make([]attrMeta, s.Dim())
	for i, a := range s.Attrs {
		m := attrMeta{numeric: a.Kind == schema.Numeric}
		if !m.numeric {
			m.card = int32(a.Cardinality)
			m.words = int32(freq.BitsetWords(a.Cardinality))
		}
		p.attrMeta[i] = m
	}

	if p.rangeT != nil {
		col := p.rangeT.col
		p.lvlSlots = col.LevelSlots()
		p.gridSlots = col.GridSlots()
		p.lvlBase = make([]int, s.Dim())
		for i := range p.lvlBase {
			p.lvlBase[i] = col.LevelIndex(i, 1)
		}
	}
	p.shards = make([]*shard, cfg.shards)
	for i := range p.shards {
		p.shards[i] = p.newShard()
	}
	p.view.maxStale = cfg.staleReports
	p.view.maxAge = cfg.staleAge
	p.view.incFrac = defaultIncFrac
	if cfg.incSet {
		p.view.incFrac = cfg.incFrac
	}
	p.initTelemetry(cfg.telemetry)
	return p, nil
}

func (p *Pipeline) newShard() *shard {
	d := p.sch.Dim()
	sh := &shard{
		meanSum:  make([]float64, d),
		jointSum: make([]float64, d),
	}
	if p.freq != nil {
		sh.freqCounts = make([][]float64, d)
		sh.freqN = make([]int64, d)
		for _, j := range p.freq.catIdx {
			sh.freqCounts[j] = make([]float64, p.sch.Attrs[j].Cardinality)
		}
	}
	if p.joint.oracles != nil {
		sh.jointCounts = make([][]float64, d)
		sh.jointN = make([]int64, d)
		for j, o := range p.joint.oracles {
			if o != nil {
				sh.jointCounts[j] = make([]float64, o.Cardinality())
			}
		}
	}
	if p.rangeT != nil {
		sh.rangeAcc = rangequery.NewAccumulator(p.rangeT.col)
		sh.dLevel = newBits(p.lvlSlots)
		sh.dGrid = newBits(p.gridSlots)
	}
	if p.freq != nil {
		sh.dFreq = newBits(d)
	}
	if p.joint.oracles != nil {
		sh.dJoint = newBits(d)
	}
	return sh
}

// Schema returns the pipeline's schema.
func (p *Pipeline) Schema() *schema.Schema { return p.sch }

// Epsilon returns the total per-user budget.
func (p *Pipeline) Epsilon() float64 { return p.eps }

// Shards returns the number of aggregation shards.
func (p *Pipeline) Shards() int { return len(p.shards) }

// Tasks returns the registered tasks in routing order.
func (p *Pipeline) Tasks() []Task {
	out := make([]Task, len(p.tasks))
	copy(out, p.tasks)
	return out
}

// task returns the registered task of the given kind, or nil.
func (p *Pipeline) task(kind TaskKind) Task {
	switch kind {
	case TaskMean:
		if p.mean != nil {
			return p.mean
		}
	case TaskFreq:
		if p.freq != nil {
			return p.freq
		}
	case TaskRange:
		if p.rangeT != nil {
			return p.rangeT
		}
	case TaskGradient:
		if p.grad != nil {
			return p.grad
		}
	}
	return nil
}

// MeanTask returns the registered mean task, or nil.
func (p *Pipeline) MeanTask() *MeanTask { return p.mean }

// FreqTask returns the registered freq task, or nil.
func (p *Pipeline) FreqTask() *FreqTask { return p.freq }

// RangeTask returns the registered range task, or nil.
func (p *Pipeline) RangeTask() *RangeTask { return p.rangeT }

// GradientTask returns the registered federated SGD task, or nil.
func (p *Pipeline) GradientTask() *GradientTask { return p.grad }

// Trainer returns the federated SGD coordinator, or nil when the pipeline
// was built without WithGradient.
func (p *Pipeline) Trainer() *Trainer { return p.trainer }

// Randomize routes one user to a task (a data-independent draw from the
// routing distribution) and randomizes their tuple into a unified Report
// under eps-LDP. It runs entirely on the user's side; only the Report is
// meant to leave the device.
func (p *Pipeline) Randomize(t schema.Tuple, r *rng.Rand) (Report, error) {
	if err := t.Check(p.sch); err != nil {
		return Report{}, err
	}
	if len(p.routed) == 0 {
		return Report{}, fmt.Errorf("pipeline: no tuple-routed tasks (gradient-only pipeline; use GradientTask.RandomizeGradient)")
	}
	u := r.Float64()
	task := p.routed[len(p.routed)-1]
	for i, c := range p.cum {
		if u < c {
			task = p.routed[i]
			break
		}
	}
	return task.Randomize(t, r)
}

// Add folds one report into the aggregate state. Reports are validated
// against the schema and oracle shapes before any state changes, so a
// malformed (or adversarial) report never corrupts or panics the
// aggregator. Safe for concurrent use; only one shard is locked. Batch
// ingest should prefer AddBatch, which amortizes the validation pass and
// the lock round-trip over many reports.
//
// Validation runs through the same table-driven fast path the batch
// validator uses (attrMeta carries the per-attribute facts), so the
// per-report cost is a few array lookups; the scalar checkers run only to
// rebuild the precise error message once a report is known bad.
func (p *Pipeline) Add(rep Report) error {
	if err := p.validateFast(&rep); err != nil {
		p.met.rejectReports.Inc()
		return err
	}
	if rep.Task == TaskGradient {
		p.trainer.foldOne(rep)
		return nil
	}
	// Shard selection is sticky: keep folding into the shard the previous
	// Add used — an uncontended writer then works one cache-hot shard
	// instead of spraying single reports across the whole set (which also
	// keeps incremental view rebuilds to one dirty shard) — and move to
	// the round-robin cursor's next shard only when the sticky shard's
	// lock is actually contended, which is what spreads concurrent
	// writers onto distinct shards. The single-shard pipeline (the common
	// CLI and test configuration) skips all of it.
	var idx uint64
	if n := uint64(len(p.shards)); n > 1 {
		idx = p.sticky.Load()
		sh := p.shards[idx]
		if sh.mu.TryLock() {
			p.foldReport(sh, &rep)
			sh.epoch.Add(1)
			sh.mu.Unlock()
			return nil
		}
		c := p.cursor.Add(1)
		if n&(n-1) == 0 {
			idx = c & (n - 1)
		} else {
			idx = c % n
		}
		p.sticky.Store(idx)
	}
	sh := p.shards[idx]
	sh.mu.Lock()
	p.foldReport(sh, &rep)
	sh.epoch.Add(1)
	sh.mu.Unlock()
	return nil
}

// validateFast accept-checks a report with the columnar validation table
// and falls back to the scalar checkers (validate) only to produce the
// detailed error. It accepts exactly the reports validate accepts.
func (p *Pipeline) validateFast(rep *Report) error {
	switch rep.Task {
	case TaskRange:
		if p.rangeT == nil {
			return fmt.Errorf("pipeline: range report but no range task is registered")
		}
		return p.rangeCheck.Validate(rep.Range)
	case TaskGradient:
		if p.grad == nil || len(rep.Entries) == 0 || len(rep.Entries) > p.grad.dim ||
			rep.Round < 0 || int(rep.Round) >= p.grad.rounds {
			return p.validate(*rep)
		}
		for i := range rep.Entries {
			e := &rep.Entries[i]
			if e.Kind != core.EntryNumeric || e.Attr < 0 || e.Attr >= p.grad.dim ||
				math.IsNaN(e.Value) || math.IsInf(e.Value, 0) {
				return p.validate(*rep)
			}
		}
		return nil
	}
	n, d := len(rep.Entries), len(p.attrMeta)
	var wantBits, jointCats bool
	switch rep.Task {
	case TaskMean:
		if p.mean == nil || n == 0 || n > d {
			return p.validate(*rep)
		}
		jointCats = true
	case TaskFreq:
		if p.freq == nil || n == 0 || n > d {
			return p.validate(*rep)
		}
		wantBits, jointCats = p.freq.bits, true
	case TaskJoint:
		if n == 0 || n > d {
			return p.validate(*rep)
		}
		wantBits, jointCats = p.joint.bits, p.joint.oracles != nil
	default:
		return p.validate(*rep)
	}
	for i := range rep.Entries {
		e := &rep.Entries[i]
		ok := false
		if e.Attr >= 0 && e.Attr < d {
			m := p.attrMeta[e.Attr]
			switch e.Kind {
			case core.EntryNumeric:
				ok = rep.Task != TaskFreq && m.numeric && !math.IsNaN(e.Value) && !math.IsInf(e.Value, 0)
			case core.EntryCategoricalBits:
				ok = rep.Task != TaskMean && !m.numeric && wantBits && jointCats &&
					len(e.Resp.Bits) == int(m.words)
			case core.EntryCategoricalValue:
				ok = rep.Task != TaskMean && !m.numeric && !wantBits && jointCats &&
					e.Resp.Value >= 0 && e.Resp.Value < int(m.card)
			}
		}
		if !ok {
			return p.validate(*rep)
		}
	}
	return nil
}

// foldReport folds one validated report into a shard. The caller holds the
// shard lock.
func (p *Pipeline) foldReport(sh *shard, rep *Report) {
	switch rep.Task {
	case TaskMean:
		for i := range rep.Entries {
			e := &rep.Entries[i]
			sh.meanSum[e.Attr] += e.Value
		}
		sh.nMean++
	case TaskFreq:
		for i := range rep.Entries {
			e := &rep.Entries[i]
			if e.Kind == core.EntryCategoricalBits {
				freq.FoldBits(sh.freqCounts[e.Attr], e.Resp.Bits)
			} else {
				sh.freqCounts[e.Attr][e.Resp.Value]++
			}
			sh.freqN[e.Attr]++
			sh.dFreq.set(int(e.Attr))
		}
		sh.nFreq++
	case TaskJoint:
		for i := range rep.Entries {
			e := &rep.Entries[i]
			switch e.Kind {
			case core.EntryNumeric:
				sh.jointSum[e.Attr] += e.Value
			case core.EntryCategoricalBits:
				freq.FoldBits(sh.jointCounts[e.Attr], e.Resp.Bits)
				sh.jointN[e.Attr]++
				sh.dJoint.set(int(e.Attr))
			default:
				sh.jointCounts[e.Attr][e.Resp.Value]++
				sh.jointN[e.Attr]++
				sh.dJoint.set(int(e.Attr))
			}
		}
		sh.nJoint++
	case TaskRange:
		sh.rangeAcc.FoldValidated(rep.Range)
		sh.markRange(p, &rep.Range)
		sh.nRange++
	}
}

// markRange sets the dirty bit of the one component a validated range
// report touched. The caller holds the shard lock.
func (sh *shard) markRange(p *Pipeline, rr *rangequery.Report) {
	if rr.Kind == rangequery.KindHier {
		sh.dLevel.set(p.lvlBase[rr.Attr] + rr.Depth - 1)
	} else {
		sh.dGrid.set(rr.Pair)
	}
}

// AddBatch folds a whole batch of reports into the aggregate state. The
// batch is validated up front without any locks (a malformed report
// rejects the batch before any state changes); the reports are then
// partitioned into one contiguous span per shard and each span folds under
// a single lock acquisition, so the per-report cost in the steady state is
// pure array arithmetic: no allocation, no per-report locking, no
// estimator indirection. The span-to-shard assignment rotates with every
// batch, so concurrent AddBatch callers start on different shards and
// small batches still spread across the shard set over time.
//
// The batch is only read; it can be reused (Reset) or returned to the pool
// (PutBatch) as soon as AddBatch returns. Safe for concurrent use.
func (p *Pipeline) AddBatch(b *ReportBatch) error {
	if b.Len() == 0 {
		return nil
	}
	if err := p.validateBatch(b); err != nil {
		p.met.rejectBatches.Inc()
		return err
	}
	p.foldBatchValidated(b)
	return nil
}

// AddBatchValidated folds a batch the caller has already checked with
// ValidateBatch, skipping revalidation. It exists for callers that must
// sequence validation before a side effect and the fold after it — the
// WAL-first serve path validates, persists the raw frames, then folds —
// without paying for two validation passes. Folding an unvalidated batch
// corrupts aggregate state; there is no safety net here.
func (p *Pipeline) AddBatchValidated(b *ReportBatch) {
	if b.Len() == 0 {
		return
	}
	p.foldBatchValidated(b)
}

// minBatchSpan is the smallest per-shard chunk foldBatchValidated will
// split a batch into (see the splitting comment there).
const minBatchSpan = 64

func (p *Pipeline) foldBatchValidated(b *ReportBatch) {
	n := b.Len()
	// Gradient reports bypass the shards: round accumulation and the
	// exactly-once round advance live on the Trainer, which folds every
	// gradient report of the batch under a single lock acquisition.
	// Gradient-free batches never touch the trainer lock, so analytics
	// ingest stays fully sharded on mixed pipelines.
	if p.trainer != nil && b.nGrad > 0 {
		p.trainer.foldBatch(b)
	}
	// Split the batch across at most enough shards to keep every chunk at
	// least minBatchSpan reports: below that, a chunk costs more in lock
	// and cache-line traffic (and in dirty shards for the incremental view
	// builder) than its parallelism buys, so a small batch folds whole
	// into one shard. The rotating start keeps concurrent small batches —
	// and successive ones — landing on different shards.
	total := len(p.shards)
	s := total
	if maxChunks := (n + minBatchSpan - 1) / minBatchSpan; maxChunks < s {
		s = maxChunks
	}
	start := int(p.cursor.Add(1) % uint64(total))
	for k := 0; k < s; k++ {
		lo, hi := k*n/s, (k+1)*n/s
		if lo == hi {
			continue
		}
		sh := p.shards[(start+k)%total]
		sh.mu.Lock()
		if folded := p.foldSpan(sh, b, lo, hi); folded > 0 {
			sh.epoch.Add(int64(folded))
		}
		sh.mu.Unlock()
	}
	// Telemetry is per batch, not per report: two atomic adds amortized
	// over the whole batch keep the fold loops uninstrumented.
	p.met.batches.Inc()
	p.met.batchSize.Observe(int64(n))
}

// foldSpan folds the validated reports [lo, hi) of a batch into a shard:
// pure array arithmetic, no validation, no allocation. It returns the
// number of reports folded into the shard (gradient reports ride the
// trainer, not the shards, so they do not advance the shard epoch). The
// caller holds the shard lock.
func (p *Pipeline) foldSpan(sh *shard, b *ReportBatch, lo, hi int) int {
	folded := 0
	for i := lo; i < hi; i++ {
		switch b.task[i] {
		case TaskMean:
			for e := b.entOff[i]; e < b.entOff[i+1]; e++ {
				sh.meanSum[b.entAttr[e]] += b.entNum[e]
			}
			sh.nMean++
			folded++
		case TaskFreq:
			for e := b.entOff[i]; e < b.entOff[i+1]; e++ {
				attr := b.entAttr[e]
				if core.EntryKind(b.entKind[e]) == core.EntryCategoricalBits {
					off := b.entBitOff[e]
					freq.FoldBits(sh.freqCounts[attr], b.bits[off:off+b.entBitLen[e]])
				} else {
					sh.freqCounts[attr][b.entCat[e]]++
				}
				sh.freqN[attr]++
				sh.dFreq.set(int(attr))
			}
			sh.nFreq++
			folded++
		case TaskJoint:
			for e := b.entOff[i]; e < b.entOff[i+1]; e++ {
				attr := b.entAttr[e]
				switch core.EntryKind(b.entKind[e]) {
				case core.EntryNumeric:
					sh.jointSum[attr] += b.entNum[e]
				case core.EntryCategoricalBits:
					off := b.entBitOff[e]
					freq.FoldBits(sh.jointCounts[attr], b.bits[off:off+b.entBitLen[e]])
					sh.jointN[attr]++
					sh.dJoint.set(int(attr))
				default:
					sh.jointCounts[attr][b.entCat[e]]++
					sh.jointN[attr]++
					sh.dJoint.set(int(attr))
				}
			}
			sh.nJoint++
			folded++
		case TaskRange:
			rr := b.rangeAlias(i)
			sh.rangeAcc.FoldValidated(rr)
			sh.markRange(p, &rr)
			sh.nRange++
			folded++
		}
	}
	return folded
}

// Validate checks a report's shape against the pipeline configuration —
// schema bounds, entry kinds, oracle response shapes (an all-ones bitset
// folded into a value-type estimator would poison every domain value) —
// without touching any shard state, so a whole batch can be validated
// before any of it is folded in. Add validates implicitly.
func (p *Pipeline) Validate(rep Report) error { return p.validate(rep) }

func (p *Pipeline) validate(rep Report) error {
	if rep.Task == TaskRange {
		if p.rangeT == nil {
			return fmt.Errorf("pipeline: range report but no range task is registered")
		}
		return p.rangeCheck.Validate(rep.Range)
	}
	if rep.Task == TaskGradient {
		if err := p.checkGradientHeader(rep.Round, len(rep.Entries)); err != nil {
			return err
		}
		for _, e := range rep.Entries {
			if err := p.checkGradientEntry(e); err != nil {
				return err
			}
		}
		return nil
	}
	wantBits, err := p.checkHeader(rep.Task, len(rep.Entries))
	if err != nil {
		return err
	}
	for _, e := range rep.Entries {
		if err := p.checkEntry(rep.Task, e, wantBits); err != nil {
			return err
		}
	}
	return nil
}

// validateBatch checks every report of a batch against the pipeline
// configuration without touching any shard state or materializing any
// report: a table-driven loop over the columns (attrMeta carries the
// per-attribute facts) with every accept-path check inlined; the detailed
// error message is rebuilt through the scalar path only once a report is
// known bad.
func (p *Pipeline) validateBatch(b *ReportBatch) error {
	meta := p.attrMeta
	kinds, attrs := b.entKind, b.entAttr
	d := len(meta)
	hasMean, hasFreq := p.mean != nil, p.freq != nil
	hasJoint := p.joint.oracles != nil
	freqBits := hasFreq && p.freq.bits
	jointBits := p.joint.bits
	for i := 0; i < len(b.task); i++ {
		task := b.task[i]
		lo, hi := int(b.entOff[i]), int(b.entOff[i+1])
		n := hi - lo
		var wantBits, jointCats bool
		switch task {
		case TaskMean:
			if !hasMean || n == 0 || n > d {
				return p.validateSlow(b, i)
			}
			jointCats = true
		case TaskFreq:
			if !hasFreq || n == 0 || n > d {
				return p.validateSlow(b, i)
			}
			wantBits, jointCats = freqBits, true
		case TaskJoint:
			if n == 0 || n > d {
				return p.validateSlow(b, i)
			}
			wantBits, jointCats = jointBits, hasJoint
		case TaskRange:
			if p.rangeT == nil {
				return fmt.Errorf("pipeline: report %d: range report but no range task is registered", i)
			}
			if err := p.rangeCheck.Validate(b.rangeAlias(i)); err != nil {
				return fmt.Errorf("pipeline: report %d: %w", i, err)
			}
			continue
		case TaskGradient:
			if p.grad == nil || n == 0 || n > p.grad.dim ||
				b.round[i] < 0 || int(b.round[i]) >= p.grad.rounds {
				return p.validateSlow(b, i)
			}
			gdim := int32(p.grad.dim)
			for e := lo; e < hi; e++ {
				v := b.entNum[e]
				if core.EntryKind(kinds[e]) != core.EntryNumeric ||
					attrs[e] < 0 || attrs[e] >= gdim ||
					math.IsNaN(v) || math.IsInf(v, 0) {
					return p.validateSlow(b, i)
				}
			}
			continue
		default:
			return p.validateSlow(b, i)
		}
		for e := lo; e < hi; e++ {
			ok := false
			if a := attrs[e]; a >= 0 && int(a) < d {
				m := meta[a]
				switch core.EntryKind(kinds[e]) {
				case core.EntryNumeric:
					v := b.entNum[e]
					ok = task != TaskFreq && m.numeric && !math.IsNaN(v) && !math.IsInf(v, 0)
				case core.EntryCategoricalBits:
					ok = task != TaskMean && !m.numeric && wantBits && jointCats &&
						b.entBitLen[e] == m.words
				case core.EntryCategoricalValue:
					v := b.entCat[e]
					ok = task != TaskMean && !m.numeric && !wantBits && jointCats &&
						v >= 0 && v < m.card
				}
			}
			if !ok {
				return p.validateSlow(b, i)
			}
		}
	}
	return nil
}

// validateSlow re-validates report i of a batch through the scalar
// checkers to produce the precise error message. It only runs once the
// fast columnar pass has found the report (or its header) bad.
func (p *Pipeline) validateSlow(b *ReportBatch, i int) error {
	task := b.task[i]
	lo, hi := b.entOff[i], b.entOff[i+1]
	if task == TaskGradient {
		if err := p.checkGradientHeader(b.round[i], int(hi-lo)); err != nil {
			return fmt.Errorf("pipeline: report %d: %w", i, err)
		}
		for e := lo; e < hi; e++ {
			if err := p.checkGradientEntry(b.entryAlias(e)); err != nil {
				return fmt.Errorf("pipeline: report %d: %w", i, err)
			}
		}
		return fmt.Errorf("pipeline: report %d: invalid gradient entry", i)
	}
	wantBits, err := p.checkHeader(task, int(hi-lo))
	if err != nil {
		return fmt.Errorf("pipeline: report %d: %w", i, err)
	}
	for e := lo; e < hi; e++ {
		if err := p.checkEntry(task, b.entryAlias(e), wantBits); err != nil {
			return fmt.Errorf("pipeline: report %d: %w", i, err)
		}
	}
	return fmt.Errorf("pipeline: report %d: invalid entry", i)
}

// checkGradientHeader validates the round tag and coordinate count of a
// gradient report against the immutable trainer configuration. The check
// is configuration-only — whether the round is the one currently
// collecting is decided at fold time under the trainer lock (a stale
// round is dropped, not an error).
func (p *Pipeline) checkGradientHeader(round int32, entries int) error {
	if p.grad == nil {
		return fmt.Errorf("pipeline: gradient report but no gradient task is registered")
	}
	if round < 0 || int(round) >= p.grad.rounds {
		return fmt.Errorf("pipeline: gradient round %d outside [0,%d)", round, p.grad.rounds)
	}
	if entries == 0 || entries > p.grad.dim {
		return fmt.Errorf("pipeline: gradient report with %d entries for dimension %d", entries, p.grad.dim)
	}
	return nil
}

// checkGradientEntry validates one coordinate of a gradient report.
func (p *Pipeline) checkGradientEntry(e core.Entry) error {
	if e.Kind != core.EntryNumeric {
		return fmt.Errorf("pipeline: gradient report with non-numeric entry")
	}
	if e.Attr < 0 || e.Attr >= p.grad.dim {
		return fmt.Errorf("pipeline: gradient coordinate %d outside [0,%d)", e.Attr, p.grad.dim)
	}
	if math.IsNaN(e.Value) || math.IsInf(e.Value, 0) {
		return fmt.Errorf("pipeline: non-finite gradient coordinate value")
	}
	return nil
}

// checkHeader validates the task tag and entry count of an entry-list
// report and resolves the expected oracle response shape.
func (p *Pipeline) checkHeader(task TaskKind, entries int) (wantBits bool, err error) {
	d := p.sch.Dim()
	switch task {
	case TaskMean:
		if p.mean == nil {
			return false, fmt.Errorf("pipeline: mean report but no mean task is registered")
		}
		if entries == 0 || entries > d {
			return false, fmt.Errorf("pipeline: mean report with %d entries", entries)
		}
		return false, nil
	case TaskFreq:
		if p.freq == nil {
			return false, fmt.Errorf("pipeline: freq report but no freq task is registered")
		}
		if entries == 0 || entries > d {
			return false, fmt.Errorf("pipeline: freq report with %d entries", entries)
		}
		return p.freq.bits, nil
	case TaskJoint:
		if entries == 0 || entries > d {
			return false, fmt.Errorf("pipeline: joint report with %d entries", entries)
		}
		return p.joint.bits, nil
	default:
		return false, fmt.Errorf("pipeline: unknown task %v", task)
	}
}

// checkEntry validates one entry of an entry-list report: schema bounds,
// kind consistency with both the task and the attribute, and oracle
// response shape. It allocates nothing on the accept path.
func (p *Pipeline) checkEntry(task TaskKind, e core.Entry, wantBits bool) error {
	switch task {
	case TaskMean:
		if e.Kind != core.EntryNumeric {
			return fmt.Errorf("pipeline: mean report with non-numeric entry")
		}
	case TaskFreq:
		if e.Kind == core.EntryNumeric {
			return fmt.Errorf("pipeline: freq report with numeric entry")
		}
	case TaskJoint:
		if e.Kind != core.EntryNumeric && p.joint.oracles == nil {
			return fmt.Errorf("pipeline: joint categorical entry but schema has no categorical attributes")
		}
	}
	d := p.sch.Dim()
	if e.Attr < 0 || e.Attr >= d {
		return fmt.Errorf("pipeline: entry attribute %d out of range [0,%d)", e.Attr, d)
	}
	a := p.sch.Attrs[e.Attr]
	switch e.Kind {
	case core.EntryNumeric:
		if a.Kind != schema.Numeric {
			return fmt.Errorf("pipeline: numeric entry for categorical attribute %q", a.Name)
		}
		if math.IsNaN(e.Value) || math.IsInf(e.Value, 0) {
			return fmt.Errorf("pipeline: non-finite value for attribute %q", a.Name)
		}
	case core.EntryCategoricalBits:
		if a.Kind != schema.Categorical {
			return fmt.Errorf("pipeline: categorical entry for numeric attribute %q", a.Name)
		}
		if !wantBits {
			return fmt.Errorf("pipeline: bitset entry for attribute %q, but the oracle reports single values", a.Name)
		}
		if want := freq.BitsetWords(a.Cardinality); len(e.Resp.Bits) != want {
			return fmt.Errorf("pipeline: attribute %q bitset has %d words, want %d", a.Name, len(e.Resp.Bits), want)
		}
	case core.EntryCategoricalValue:
		if a.Kind != schema.Categorical {
			return fmt.Errorf("pipeline: categorical entry for numeric attribute %q", a.Name)
		}
		if wantBits {
			return fmt.Errorf("pipeline: value entry for attribute %q, but the oracle reports bitsets", a.Name)
		}
		if e.Resp.Value < 0 || e.Resp.Value >= a.Cardinality {
			return fmt.Errorf("pipeline: attribute %q value %d outside [0,%d)", a.Name, e.Resp.Value, a.Cardinality)
		}
	default:
		return fmt.Errorf("pipeline: unknown entry kind %d", e.Kind)
	}
	return nil
}

// N returns the total number of reports aggregated so far (for the
// gradient task, the reports accepted into a round; stale drops are not
// counted).
func (p *Pipeline) N() int64 {
	var n int64
	for _, sh := range p.shards {
		sh.mu.Lock()
		n += sh.nMean + sh.nFreq + sh.nJoint + sh.nRange
		sh.mu.Unlock()
	}
	if p.trainer != nil {
		n += p.trainer.Accepted()
	}
	return n
}

// TaskCounts returns the number of aggregated reports per task kind.
// Unlike Snapshot it only sums counters, so it is cheap enough for
// monitoring loops.
func (p *Pipeline) TaskCounts() map[TaskKind]int64 {
	out := make(map[TaskKind]int64, 4)
	for _, sh := range p.shards {
		sh.mu.Lock()
		out[TaskMean] += sh.nMean
		out[TaskFreq] += sh.nFreq
		out[TaskJoint] += sh.nJoint
		out[TaskRange] += sh.nRange
		sh.mu.Unlock()
	}
	if p.trainer != nil {
		out[TaskGradient] += p.trainer.Accepted()
	}
	for k, n := range out {
		if n == 0 {
			delete(out, k)
		}
	}
	return out
}

// Watermark returns the total number of reports folded into the shard
// state so far (gradient reports ride the Trainer and are not counted).
// It reads one atomic per shard — no locks — so freshness checks on the
// cached query view are free even under full-rate ingest.
func (p *Pipeline) Watermark() int64 {
	var n int64
	for _, sh := range p.shards {
		n += sh.epoch.Load()
	}
	return n
}

// Snapshot combines every shard into an immutable, queryable Result. It
// locks shards one at a time, so concurrent Adds on other shards are not
// blocked. Reports added while the snapshot is in progress may or may not
// be included.
//
// The result holds raw pooled support counts, not rebuilt estimators:
// debiasing happens lazily per queried attribute (freq.DebiasView with
// the schema's precomputed support probabilities), and the range state is
// precomputed once into a rangequery.View so every Range call is a pure
// lookup. Most callers should prefer View, which memoizes one Result
// behind an atomic pointer and rebuilds only when the ingest watermark
// moves past the configured staleness bound.
func (p *Pipeline) Snapshot() *Result {
	res := p.newResultShell()
	p.allocCountCols(res)
	var rangeAcc *rangequery.Accumulator
	if p.rangeT != nil {
		rangeAcc = rangequery.NewAccumulator(p.rangeT.col)
	}
	if workers := p.snapWorkers(); workers > 1 {
		p.snapshotParallel(res, rangeAcc, workers)
	} else {
		for _, sh := range p.shards {
			sh.mu.Lock()
			p.sumShardCounts(res, sh, rangeAcc)
			for i, v := range sh.meanSum {
				res.meanSum[i] += v
			}
			for i, v := range sh.jointSum {
				res.jointSum[i] += v
			}
			sh.mu.Unlock()
		}
	}
	// The shard epochs equal the per-task counters under each shard lock,
	// so the snapshot's watermark is exactly the reports it contains.
	res.watermark = res.nMean + res.nFreq + res.nJoint + res.nRange
	if rangeAcc != nil {
		// Debias every depth and run Norm-Sub once, outside all locks:
		// Range answers on the result are pure lookups.
		res.rangeView = rangeAcc.ViewWith(derivWorkers())
	}
	return res
}

// newResultShell allocates a Result with the pipeline's shapes: fresh
// scalar and float-sum storage, per-family column tables with nil count
// columns (allocCountCols zero-fills them; the incremental builder seeds
// them from the previous view instead and copies on first change), and
// the lazy debias cache.
func (p *Pipeline) newResultShell() *Result {
	d, fams := p.shellShape()
	// One backing array per element type: the shell is allocated on every
	// rebuild, so its fixed-size slices are carved from shared blocks
	// (capacity-capped so an append could never bleed across) to keep the
	// rebuild's allocation count flat. The view builder goes further and
	// carves whole slabs of shells at once (see newResultShellSlab).
	res := &Result{}
	p.fillResultShell(res,
		make([]float64, 2*d),
		make([][]float64, fams*d),
		make([]int64, fams*d),
		make([]atomic.Pointer[[]float64], d))
	return res
}

// shellShape returns the two dimensions every shell block is sized by: the
// schema dimension and the number of registered count-column families.
func (p *Pipeline) shellShape() (d, fams int) {
	d = p.sch.Dim()
	if p.freq != nil {
		fams++
	}
	if p.joint.oracles != nil {
		fams++
	}
	return d, fams
}

// fillResultShell wires a zeroed Result and zeroed backing blocks (sized
// per shellShape) into a ready shell: sub-slices are capacity-capped so an
// append could never bleed into a neighbour's region.
func (p *Pipeline) fillResultShell(res *Result, sums []float64, cols [][]float64, ns []int64, cache []atomic.Pointer[[]float64]) {
	d := p.sch.Dim()
	res.sch = p.sch
	res.meanSum = sums[:d:d]
	res.jointSum = sums[d : 2*d : 2*d]
	hasFreq, hasJoint := p.freq != nil, p.joint.oracles != nil
	if !hasFreq && !hasJoint {
		return
	}
	if hasFreq {
		res.freqOracles = p.freq.oracles
		res.freqCounts = cols[:d:d]
		res.freqN = ns[:d:d]
		cols, ns = cols[d:], ns[d:]
	}
	if hasJoint {
		res.jointOracles = p.joint.oracles
		res.jointCounts = cols[:d:d]
		res.jointN = ns[:d:d]
	}
	res.freqCache = cache[:d:d]
}

// allocCountCols zero-fills a result shell's count columns.
func (p *Pipeline) allocCountCols(res *Result) {
	if res.freqCounts != nil {
		for _, j := range p.freq.catIdx {
			res.freqCounts[j] = make([]float64, p.sch.Attrs[j].Cardinality)
		}
	}
	if res.jointCounts != nil {
		for j, o := range p.joint.oracles {
			if o != nil {
				res.jointCounts[j] = make([]float64, o.Cardinality())
			}
		}
	}
}

// sumShardCounts folds one shard's integer-valued state — scalar counters,
// oracle support counts, reporter counts, and the range accumulator — into
// a result (and range accumulator). The float sums are left to the caller:
// integer-valued counts are exact under any fold grouping, float sums are
// not, and every snapshot path must fold them in shard order so results
// are bit-identical regardless of how the summation was parallelized. The
// caller holds the shard lock.
func (p *Pipeline) sumShardCounts(res *Result, sh *shard, acc *rangequery.Accumulator) {
	res.nMean += sh.nMean
	res.nFreq += sh.nFreq
	res.nJoint += sh.nJoint
	res.nRange += sh.nRange
	for i := range res.freqCounts {
		if dst := res.freqCounts[i]; dst != nil {
			for v, c := range sh.freqCounts[i] {
				dst[v] += c
			}
			res.freqN[i] += sh.freqN[i]
		}
	}
	for i := range res.jointCounts {
		if dst := res.jointCounts[i]; dst != nil {
			for v, c := range sh.jointCounts[i] {
				dst[v] += c
			}
			res.jointN[i] += sh.jointN[i]
		}
	}
	if acc != nil {
		acc.Merge(sh.rangeAcc)
	}
}

// snapshotParallel sums the shards into res on workers goroutines, each
// owning a contiguous shard range with its own partial accumulator. The
// integer-valued partials reduce in any grouping without changing a bit;
// the float mean/joint sums come back as per-shard copies and reduce
// serially in shard order, so the parallel snapshot is bit-identical to
// the serial one (and to the incremental builder's running sums).
func (p *Pipeline) snapshotParallel(res *Result, rangeAcc *rangequery.Accumulator, workers int) {
	nsh := len(p.shards)
	parts := make([]*Result, workers)
	partAccs := make([]*rangequery.Accumulator, workers)
	meanCopies := make([][]float64, nsh)
	jointCopies := make([][]float64, nsh)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			part := p.newResultShell()
			p.allocCountCols(part)
			var acc *rangequery.Accumulator
			if rangeAcc != nil {
				acc = rangequery.NewAccumulator(p.rangeT.col)
			}
			for si := w * nsh / workers; si < (w+1)*nsh/workers; si++ {
				sh := p.shards[si]
				sh.mu.Lock()
				meanCopies[si] = append([]float64(nil), sh.meanSum...)
				jointCopies[si] = append([]float64(nil), sh.jointSum...)
				p.sumShardCounts(part, sh, acc)
				sh.mu.Unlock()
			}
			parts[w], partAccs[w] = part, acc
		}(w)
	}
	wg.Wait()
	for w, part := range parts {
		res.nMean += part.nMean
		res.nFreq += part.nFreq
		res.nJoint += part.nJoint
		res.nRange += part.nRange
		for i := range res.freqCounts {
			if dst := res.freqCounts[i]; dst != nil {
				for v, c := range part.freqCounts[i] {
					dst[v] += c
				}
				res.freqN[i] += part.freqN[i]
			}
		}
		for i := range res.jointCounts {
			if dst := res.jointCounts[i]; dst != nil {
				for v, c := range part.jointCounts[i] {
					dst[v] += c
				}
				res.jointN[i] += part.jointN[i]
			}
		}
		if rangeAcc != nil {
			rangeAcc.Merge(partAccs[w])
		}
	}
	for si := range p.shards {
		for i, v := range meanCopies[si] {
			res.meanSum[i] += v
		}
		for i, v := range jointCopies[si] {
			res.jointSum[i] += v
		}
	}
}

// snapWorkers is the shard-summation fan-out of a full snapshot, bounded
// by the shard count, the CPU count, and a small cap (the reduction is
// memory-bound; wider fan-out just shuffles cache lines).
func (p *Pipeline) snapWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > len(p.shards) {
		w = len(p.shards)
	}
	if w > 4 {
		w = 4
	}
	if w < 1 {
		w = 1
	}
	return w
}

// derivWorkers is the view-derivation fan-out (per-attribute debias and
// per-grid Norm-Sub), bounded by the CPU count and the same small cap; it
// is independent of the shard count because derivation cost scales with
// the schema, not the shards.
func derivWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > 4 {
		w = 4
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Merge folds another pipeline's aggregate state into this one. Both
// pipelines must be built from the same schema, budget, and task set.
// Shard counts may differ; each source shard is snapshotted under its own
// lock before this pipeline locks, so concurrent cross-merges (and
// self-merges) cannot deadlock.
func (p *Pipeline) Merge(o *Pipeline) error {
	if err := p.compatible(o); err != nil {
		return err
	}
	for i, src := range o.shards {
		// Copy the source shard without holding any destination lock.
		src.mu.Lock()
		tmp := p.newShard()
		tmp.addShard(src)
		src.mu.Unlock()

		dst := p.shards[i%len(p.shards)]
		dst.mu.Lock()
		dst.addShard(tmp)
		// Bulk state arrivals carry no per-component provenance; mark
		// everything dirty so the next incremental rebuild re-syncs it all.
		p.markAllDirty(dst)
		dst.mu.Unlock()
	}
	return nil
}

// markAllDirty conservatively marks every registered component of a shard
// dirty. The caller holds the shard lock.
func (p *Pipeline) markAllDirty(sh *shard) {
	for j, m := range p.attrMeta {
		if !m.numeric {
			sh.dFreq.set(j)
			sh.dJoint.set(j)
		}
	}
	for li := 0; li < p.lvlSlots; li++ {
		sh.dLevel.set(li)
	}
	for g := 0; g < p.gridSlots; g++ {
		sh.dGrid.set(g)
	}
}

// addShard folds another shard's state into this one. Both shards must be
// built by the same pipeline configuration; the caller holds whatever
// locks guard the two shards.
func (sh *shard) addShard(o *shard) {
	sh.epoch.Add(o.nMean + o.nFreq + o.nJoint + o.nRange)
	sh.nMean += o.nMean
	sh.nFreq += o.nFreq
	sh.nJoint += o.nJoint
	sh.nRange += o.nRange
	for j, v := range o.meanSum {
		sh.meanSum[j] += v
	}
	for j, v := range o.jointSum {
		sh.jointSum[j] += v
	}
	for j, counts := range o.freqCounts {
		for v, c := range counts {
			sh.freqCounts[j][v] += c
		}
	}
	for j, n := range o.freqN {
		sh.freqN[j] += n
	}
	for j, counts := range o.jointCounts {
		for v, c := range counts {
			sh.jointCounts[j][v] += c
		}
	}
	for j, n := range o.jointN {
		sh.jointN[j] += n
	}
	if sh.rangeAcc != nil {
		sh.rangeAcc.Merge(o.rangeAcc)
	}
}

// compatible checks that o's configuration matches p's closely enough to
// merge state.
func (p *Pipeline) compatible(o *Pipeline) error {
	if o == nil {
		return fmt.Errorf("pipeline: merge with nil pipeline")
	}
	if p.eps != o.eps {
		return fmt.Errorf("pipeline: merge across budgets (%g vs %g)", p.eps, o.eps)
	}
	if p.sch.Dim() != o.sch.Dim() {
		return fmt.Errorf("pipeline: merge across schemas (%d vs %d attributes)", p.sch.Dim(), o.sch.Dim())
	}
	for i, a := range p.sch.Attrs {
		b := o.sch.Attrs[i]
		if a.Name != b.Name || a.Kind != b.Kind || (a.Kind == schema.Categorical && a.Cardinality != b.Cardinality) {
			return fmt.Errorf("pipeline: merge across schemas (attribute %d: %q vs %q)", i, a.Name, b.Name)
		}
	}
	if (p.mean == nil) != (o.mean == nil) || (p.freq == nil) != (o.freq == nil) || (p.rangeT == nil) != (o.rangeT == nil) || (p.grad == nil) != (o.grad == nil) {
		return fmt.Errorf("pipeline: merge across task sets")
	}
	if p.grad != nil {
		// Round-based training state (current round, partially filled
		// group) has no meaningful union across trainers.
		return fmt.Errorf("pipeline: merging federated training state is not supported")
	}
	return nil
}
