package pipeline

import (
	"strconv"

	"ldp/internal/telemetry"
)

// pipelineMetrics holds the pipeline's hot-path metric handles. When the
// pipeline is built without WithTelemetry every handle is nil, and every
// handle method is a nil-safe no-op, so the instrumentation sites read
// identically whether or not a registry is wired in.
//
// The split between handle-backed and func-backed series is deliberate:
// only signals that cannot be recovered from existing program state get a
// hot-path handle (batch count, batch size, rejects, view cache traffic,
// rebuild latency), and each of those sits on a once-per-batch or
// once-per-query edge — never inside the per-report fold loops. Per-task
// report counts, shard fills, the watermark, and the trainer's round
// state are already maintained by the fold paths, so they are exposed as
// scrape-time funcs and cost the ingest hot path nothing.
type pipelineMetrics struct {
	batches       *telemetry.Counter   // batches folded by AddBatch
	batchSize     *telemetry.Histogram // reports per folded batch
	rejectBatches *telemetry.Counter   // batches rejected by validation
	rejectReports *telemetry.Counter   // single reports rejected by validation

	viewHits   *telemetry.Counter   // queries served from the cached view
	viewMisses *telemetry.Counter   // view rebuilds (snapshots)
	viewLosers *telemetry.Counter   // stale serves while a rebuild was in flight
	rebuild    *telemetry.Histogram // rebuild latency, ns

	rebuildInc  *telemetry.Counter   // delta-proportional (incremental) rebuilds
	rebuildFull *telemetry.Counter   // full-snapshot rebuilds (cold or past crossover)
	dirtyShards *telemetry.Histogram // shards with any dirty component per incremental rebuild
	dirtyComps  *telemetry.Histogram // dirty components (attrs + levels + grids) per incremental rebuild
}

// initTelemetry registers the pipeline's metric families on reg and
// captures the hot-path handles. Called once from New, after the shards
// and trainer exist, so the func-backed series close over live state. A
// nil registry registers nothing and leaves every handle nil.
func (p *Pipeline) initTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	m := &p.met
	m.batches = reg.Counter("ldp_ingest_batches_total",
		"Report batches folded by AddBatch.")
	m.batchSize = reg.Histogram("ldp_ingest_batch_size",
		"Reports per folded batch (power-of-two buckets).")
	const rejectsHelp = "Ingest submissions rejected by validation, by path (batch or single report)."
	m.rejectBatches = reg.Counter("ldp_ingest_rejects_total", rejectsHelp, telemetry.L("path", "batch"))
	m.rejectReports = reg.Counter("ldp_ingest_rejects_total", rejectsHelp, telemetry.L("path", "report"))

	const reportsHelp = "Reports folded into the aggregate state, by task."
	kinds := []TaskKind{TaskJoint} // legacy v1 frames fold on any pipeline
	if p.mean != nil {
		kinds = append(kinds, TaskMean)
	}
	if p.freq != nil {
		kinds = append(kinds, TaskFreq)
	}
	if p.rangeT != nil {
		kinds = append(kinds, TaskRange)
	}
	for _, kind := range kinds {
		reg.CounterFunc("ldp_ingest_reports_total", reportsHelp,
			func() float64 { return float64(p.taskTotal(kind)) },
			telemetry.L("task", kind.String()))
	}
	if p.trainer != nil {
		reg.CounterFunc("ldp_ingest_reports_total", reportsHelp,
			func() float64 { return float64(p.trainer.Accepted()) },
			telemetry.L("task", TaskGradient.String()))
	}
	for i, sh := range p.shards {
		reg.GaugeFunc("ldp_ingest_shard_reports",
			"Reports folded per aggregation shard.",
			func() float64 { return float64(sh.epoch.Load()) },
			telemetry.L("shard", strconv.Itoa(i)))
	}
	reg.GaugeFunc("ldp_ingest_watermark",
		"Total reports folded into shard state (the query-view freshness signal).",
		func() float64 { return float64(p.Watermark()) })

	m.viewHits = reg.Counter("ldp_view_hits_total",
		"Queries served from the cached view without a rebuild.")
	m.viewMisses = reg.Counter("ldp_view_misses_total",
		"Cached-view rebuilds (snapshots over all shards).")
	m.viewLosers = reg.Counter("ldp_view_losers_total",
		"Queries that served the previous view while a rebuild was in flight.")
	m.rebuild = reg.Histogram("ldp_view_rebuild_duration_ns",
		"Latency of cached-view rebuilds in nanoseconds (power-of-two buckets).")
	const rebuildKindHelp = "Cached-view rebuilds by kind: incremental (delta-proportional) or full (cold start or past the crossover fraction)."
	m.rebuildInc = reg.Counter("ldp_view_rebuilds_total", rebuildKindHelp, telemetry.L("kind", "incremental"))
	m.rebuildFull = reg.Counter("ldp_view_rebuilds_total", rebuildKindHelp, telemetry.L("kind", "full"))
	m.dirtyShards = reg.Histogram("ldp_view_dirty_shards",
		"Shards carrying any dirty component per incremental rebuild (power-of-two buckets).")
	m.dirtyComps = reg.Histogram("ldp_view_dirty_components",
		"Dirty components (attributes, hierarchy levels, grids) synced per incremental rebuild (power-of-two buckets).")
	reg.GaugeFunc("ldp_view_epoch",
		"Build counter of the cached query view.",
		func() float64 { return float64(p.view.seq.Load()) })

	if tr := p.trainer; tr != nil {
		reg.GaugeFunc("ldp_trainer_round",
			"Federated SGD round currently collecting gradients.",
			func() float64 { return float64(tr.Model().Round) })
		reg.GaugeFunc("ldp_trainer_done",
			"1 once every SGD round has advanced, else 0.",
			func() float64 {
				if tr.Model().Done {
					return 1
				}
				return 0
			})
		reg.CounterFunc("ldp_trainer_accepted_total",
			"Gradient reports folded into a round.",
			func() float64 { return float64(tr.Accepted()) })
		reg.CounterFunc("ldp_trainer_stale_total",
			"Gradient reports dropped for a non-current round tag.",
			func() float64 { return float64(tr.Stale()) })
		reg.GaugeFunc("ldp_trainer_group_fill",
			"Gradient reports accumulated toward the current round's group.",
			func() float64 { return float64(tr.Fill()) })
	}
}

// taskTotal sums one task kind's folded-report count across the shards: a
// scrape-time read over the counters the fold paths already maintain, so
// the per-task exposition series add no hot-path atomics.
func (p *Pipeline) taskTotal(kind TaskKind) int64 {
	var n int64
	for _, sh := range p.shards {
		sh.mu.Lock()
		switch kind {
		case TaskMean:
			n += sh.nMean
		case TaskFreq:
			n += sh.nFreq
		case TaskJoint:
			n += sh.nJoint
		case TaskRange:
			n += sh.nRange
		}
		sh.mu.Unlock()
	}
	return n
}
