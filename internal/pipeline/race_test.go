package pipeline

import (
	"sync"
	"testing"

	"ldp/internal/core"
	"ldp/internal/freq"
	"ldp/internal/rangequery"
	"ldp/internal/rng"
)

// TestPipelineConcurrentIngest hammers Add, N, Snapshot, and Merge from
// many goroutines at once. Run it under -race (the CI race job does) to
// verify the sharded aggregator's locking discipline; under the plain
// runner it still checks that no report is lost or double-counted.
func TestPipelineConcurrentIngest(t *testing.T) {
	s := testSchema(t)
	newP := func() *Pipeline {
		p, err := New(s, 1, WithShards(4), WithRange(rangequery.Config{Buckets: 32, GridCells: 2}))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p := newP()

	const (
		writers   = 8
		perWriter = 400
		mergers   = 2
		perMerger = 100
		snapshots = 200
	)

	// Pre-randomize reports so the workers exercise only the aggregation
	// side.
	makeReports := func(seed uint64, n int) []Report {
		reps := make([]Report, n)
		for i := range reps {
			r := rng.NewStream(seed, uint64(i))
			rep, err := p.Randomize(sampleTuple(s, r), r)
			if err != nil {
				t.Fatal(err)
			}
			reps[i] = rep
		}
		return reps
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for _, rep := range makeReports(seed, perWriter) {
				if err := p.Add(rep); err != nil {
					t.Error(err)
					return
				}
			}
		}(uint64(100 + w))
	}
	for m := 0; m < mergers; m++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			other := newP()
			for _, rep := range makeReports(seed, perMerger) {
				if err := other.Add(rep); err != nil {
					t.Error(err)
					return
				}
			}
			if err := p.Merge(other); err != nil {
				t.Error(err)
			}
		}(uint64(200 + m))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < snapshots; i++ {
			res := p.Snapshot()
			if _, err := res.Mean("age"); err != nil {
				t.Error(err)
				return
			}
			if _, err := res.Freq("gender"); err != nil {
				t.Error(err)
				return
			}
			_ = p.N()
		}
	}()
	wg.Wait()

	want := int64(writers*perWriter + mergers*perMerger)
	if got := p.N(); got != want {
		t.Fatalf("after concurrent ingest N = %d, want %d", got, want)
	}
	if got := p.Snapshot().N(); got != want {
		t.Fatalf("after concurrent ingest snapshot N = %d, want %d", got, want)
	}
}

// TestPipelineAddBatchSnapshotMergeRace interleaves AddBatch with
// Snapshot and Merge under load (run it with -race, as the CI race job
// does). Every mean report in the batch contributes exactly 1.0 to the
// "age" sum, so any snapshot must observe Mean("age") == 1.0 exactly: a
// torn shard read — a report count visible without its sum, or half a
// batch span — would break the equality. The same batch value is shared
// by every writer, which also proves AddBatch treats batches as
// read-only.
func TestPipelineAddBatchSnapshotMergeRace(t *testing.T) {
	s := testSchema(t)
	newP := func() *Pipeline {
		p, err := New(s, 1, WithShards(4))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p := newP()

	const (
		meanPerBatch = 33
		freqPerBatch = 17
		writers      = 4
		perWriter    = 150
		mergers      = 2
		perMerger    = 20
		snapshots    = 150
	)
	shared := NewReportBatch()
	gbits := freq.NewBitset(2)
	gbits.Set(1)
	for i := 0; i < meanPerBatch; i++ {
		shared.Append(Report{Task: TaskMean, Entries: []core.Entry{
			{Attr: 0, Kind: core.EntryNumeric, Value: 1},
		}})
	}
	for i := 0; i < freqPerBatch; i++ {
		shared.Append(Report{Task: TaskFreq, Entries: []core.Entry{
			{Attr: 2, Kind: core.EntryCategoricalBits, Resp: freq.Response{Bits: gbits}},
		}})
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := p.AddBatch(shared); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for m := 0; m < mergers; m++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perMerger; i++ {
				other := newP()
				if err := other.AddBatch(shared); err != nil {
					t.Error(err)
					return
				}
				if err := p.Merge(other); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < snapshots; i++ {
			res := p.Snapshot()
			if res.NTask(TaskMean) == 0 {
				continue
			}
			if m, err := res.Mean("age"); err != nil || m != 1 {
				t.Errorf("torn snapshot: Mean(age) = %v, %v (want exactly 1)", m, err)
				return
			}
		}
	}()
	wg.Wait()

	batches := int64(writers*perWriter + mergers*perMerger)
	if got, want := p.N(), batches*(meanPerBatch+freqPerBatch); got != want {
		t.Fatalf("after concurrent batch ingest N = %d, want %d", got, want)
	}
	res := p.Snapshot()
	if got, want := res.NTask(TaskMean), batches*meanPerBatch; got != want {
		t.Fatalf("snapshot mean count = %d, want %d", got, want)
	}
	if m, _ := res.Mean("age"); m != 1 {
		t.Fatalf("final Mean(age) = %v, want exactly 1", m)
	}
}

// TestPipelineConcurrentCrossMerge checks the copy-then-apply merge
// protocol: two pipelines merging into each other concurrently must not
// deadlock.
func TestPipelineConcurrentCrossMerge(t *testing.T) {
	s := testSchema(t)
	build := func() *Pipeline {
		p, err := New(s, 1, WithShards(2))
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(17)
		for i := 0; i < 50; i++ {
			rep, err := p.Randomize(sampleTuple(s, r), r)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Add(rep); err != nil {
				t.Fatal(err)
			}
		}
		return p
	}
	a, b := build(), build()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func() { defer wg.Done(); _ = a.Merge(b) }()
		go func() { defer wg.Done(); _ = b.Merge(a) }()
	}
	wg.Wait()
}
