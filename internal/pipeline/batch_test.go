package pipeline

import (
	"strings"
	"testing"

	"ldp/internal/core"
	"ldp/internal/freq"
	"ldp/internal/rangequery"
	"ldp/internal/rng"
)

// batchTestPipeline registers all three tasks so batches carry every
// payload shape.
func batchTestPipeline(t testing.TB) *Pipeline {
	t.Helper()
	p, err := New(testSchema(t), 2, WithShards(3),
		WithRange(rangequery.Config{Buckets: 32, GridCells: 2}))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestBatchAppendReportRoundTrip: Append then Report reproduces every
// report exactly, and materialized reports do not alias batch buffers.
func TestBatchAppendReportRoundTrip(t *testing.T) {
	p := batchTestPipeline(t)
	r := rng.New(3)
	b := NewReportBatch()
	var reps []Report
	seen := map[TaskKind]bool{}
	for i := 0; i < 200; i++ {
		rep, err := p.Randomize(sampleTuple(p.Schema(), r), r)
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, rep)
		b.Append(rep)
		seen[rep.Task] = true
	}
	if len(seen) < 3 {
		t.Fatalf("only tasks %v sampled", seen)
	}
	if b.Len() != len(reps) {
		t.Fatalf("batch holds %d reports, want %d", b.Len(), len(reps))
	}
	for i, want := range reps {
		got := b.Report(i)
		if got.Task != want.Task {
			t.Fatalf("report %d task %v, want %v", i, got.Task, want.Task)
		}
		if len(got.Entries) != len(want.Entries) {
			t.Fatalf("report %d has %d entries, want %d", i, len(got.Entries), len(want.Entries))
		}
		for j := range want.Entries {
			we, ge := want.Entries[j], got.Entries[j]
			if we.Attr != ge.Attr || we.Kind != ge.Kind || we.Value != ge.Value || we.Resp.Value != ge.Resp.Value {
				t.Fatalf("report %d entry %d changed: %+v != %+v", i, j, ge, we)
			}
			if len(we.Resp.Bits) != len(ge.Resp.Bits) {
				t.Fatalf("report %d entry %d bitset length changed", i, j)
			}
			for w := range we.Resp.Bits {
				if we.Resp.Bits[w] != ge.Resp.Bits[w] {
					t.Fatalf("report %d entry %d bits changed", i, j)
				}
			}
		}
		if wr, gr := want.Range, got.Range; wr.Kind != gr.Kind || wr.Attr != gr.Attr ||
			wr.Depth != gr.Depth || wr.Pair != gr.Pair || wr.Resp.Value != gr.Resp.Value {
			t.Fatalf("report %d range header changed", i)
		}
	}

	// Mutating a materialized bitset must not write through to the batch.
	for i := range reps {
		got := b.Report(i)
		for j, e := range got.Entries {
			if e.Resp.Bits != nil {
				before := b.Report(i).Entries[j].Resp.Bits[0]
				e.Resp.Bits[0] ^= ^uint64(0)
				if b.Report(i).Entries[j].Resp.Bits[0] != before {
					t.Fatal("materialized report aliases the batch bit buffer")
				}
				return
			}
		}
	}
}

// TestBatchMarkTruncate: Truncate rolls the batch back to a mark exactly,
// discarding partial appends.
func TestBatchMarkTruncate(t *testing.T) {
	b := NewReportBatch()
	b.StartEntryReport(TaskMean)
	b.AppendNumeric(0, 0.5)
	mark := b.Mark()

	b.StartEntryReport(TaskFreq)
	bits := b.AppendBits(2, 1)
	bits[0] = 0b10
	b.AppendRangeValue(rangequery.KindHier, 0, 3, 0, 5)
	if b.Len() != 3 {
		t.Fatalf("batch holds %d reports before truncate, want 3", b.Len())
	}
	b.Truncate(mark)
	if b.Len() != 1 {
		t.Fatalf("batch holds %d reports after truncate, want 1", b.Len())
	}
	rep := b.Report(0)
	if rep.Task != TaskMean || len(rep.Entries) != 1 || rep.Entries[0].Value != 0.5 {
		t.Fatalf("surviving report changed: %+v", rep)
	}

	// The truncated space is reusable.
	b.StartEntryReport(TaskMean)
	b.AppendNumeric(1, -0.25)
	if b.Len() != 2 || b.Report(1).Entries[0].Value != -0.25 {
		t.Fatal("append after truncate misplaced")
	}
}

// TestAddBatchRejectsAtomically: one malformed report rejects the whole
// batch before any state changes.
func TestAddBatchRejectsAtomically(t *testing.T) {
	p := batchTestPipeline(t)
	r := rng.New(9)
	b := NewReportBatch()
	for i := 0; i < 10; i++ {
		rep, err := p.Randomize(sampleTuple(p.Schema(), r), r)
		if err != nil {
			t.Fatal(err)
		}
		b.Append(rep)
	}
	// An undersized bitset for the categorical attribute (wants 1 word).
	b.StartEntryReport(TaskFreq)
	b.AppendBits(2, 0)

	err := p.AddBatch(b)
	if err == nil {
		t.Fatal("AddBatch accepted a malformed bitset")
	}
	if !strings.Contains(err.Error(), "report 10") {
		t.Fatalf("error %q does not name the failing report", err)
	}
	if got := p.N(); got != 0 {
		t.Fatalf("rejected batch still folded %d reports", got)
	}

	// The same batch without the bad tail folds fine.
	good := NewReportBatch()
	for i := 0; i < b.Len()-1; i++ {
		good.Append(b.Report(i))
	}
	if err := p.AddBatch(good); err != nil {
		t.Fatal(err)
	}
	if got := p.N(); got != 10 {
		t.Fatalf("N = %d after valid batch, want 10", got)
	}
}

// TestAddBatchEmpty: an empty batch is a no-op.
func TestAddBatchEmpty(t *testing.T) {
	p := batchTestPipeline(t)
	if err := p.AddBatch(NewReportBatch()); err != nil {
		t.Fatal(err)
	}
	if p.N() != 0 {
		t.Fatal("empty batch changed state")
	}
}

// TestAddBatchSpreadsShards: a large batch leaves no shard empty (the
// span partition touches every shard) and small batches rotate across
// shards over successive calls.
func TestAddBatchSpreadsShards(t *testing.T) {
	p, err := New(testSchema(t), 1, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	one := NewReportBatch()
	one.Append(Report{Task: TaskMean, Entries: []core.Entry{{Attr: 0, Kind: core.EntryNumeric, Value: 1}}})
	for i := 0; i < 8; i++ {
		if err := p.AddBatch(one); err != nil {
			t.Fatal(err)
		}
	}
	touched := 0
	for _, sh := range p.shards {
		if sh.nMean > 0 {
			touched++
		}
	}
	if touched != 4 {
		t.Fatalf("8 single-report batches touched %d of 4 shards", touched)
	}
	if got := p.N(); got != 8 {
		t.Fatalf("N = %d, want 8", got)
	}
}

// TestFoldBitsMatchesPerBit: the vectorized bit fold counts exactly the
// bits a per-bit Get loop counts, ignoring stray high bits past the
// cardinality (decoded frames are attacker-controlled).
func TestFoldBitsMatchesPerBit(t *testing.T) {
	const card = 70 // 2-word bitset, 58 stray bits in word 2
	o, err := freq.NewOUE(1, card)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	vec := freq.NewEstimator(o)
	ref := make([]float64, card)
	for i := 0; i < 500; i++ {
		resp := o.Perturb(r.IntN(card), r)
		resp.Bits[1] |= 0xffff << 20 // adversarial stray bits >= 70
		for v := 0; v < card; v++ {
			if resp.Bits.Get(v) {
				ref[v]++
			}
		}
		vec.AddBits(resp.Bits)
	}
	if vec.N() != 500 {
		t.Fatalf("N %d != 500", vec.N())
	}
	for v, got := range vec.Counts() {
		if got != ref[v] {
			t.Fatalf("count[%d] = %v, want %v", v, got, ref[v])
		}
	}
}
