package pipeline

import (
	"math"
	"strings"
	"testing"

	"ldp/internal/core"
	"ldp/internal/freq"
	"ldp/internal/mech"
	"ldp/internal/rng"
	"ldp/internal/schema"
)

// identityMech passes values through unperturbed. With eps large enough
// that k == Dim (every coordinate sampled, scale 1), gradient ingest
// becomes exactly deterministic: the tests can assert model trajectories
// with ==, so any torn read or double-counted round is visible.
type identityMech struct{}

func (identityMech) Name() string                           { return "identity" }
func (identityMech) Epsilon() float64                       { return 1e9 }
func (identityMech) Perturb(t float64, _ *rng.Rand) float64 { return t }
func (identityMech) Variance(float64) float64               { return 0 }
func (identityMech) WorstCaseVariance() float64             { return 0 }

func identityFactory(float64) (mech.Mechanism, error) { return identityMech{}, nil }

// newGradientPipeline builds a deterministic 2-D gradient pipeline:
// eps=5 makes k = 2 = Dim, so every report carries both coordinates at
// scale 1.
func newGradientPipeline(t testing.TB, rounds, group int) *Pipeline {
	t.Helper()
	p, err := New(testSchema(t), 5, WithGradient(GradientConfig{
		Dim:       2,
		Rounds:    rounds,
		GroupSize: group,
		Eta:       1,
		Lambda:    1e-4,
		Mechanism: identityFactory,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.GradientTask().K(); got != 2 {
		t.Fatalf("k = %d, want 2 (test needs every coordinate sampled)", got)
	}
	return p
}

// expectedBeta returns the exact model trajectory when every accepted
// report is the all-ones gradient: beta_r = -sum_{t=1..r} 1/sqrt(t).
func expectedBeta(round int) float64 {
	b := 0.0
	for t := 1; t <= round; t++ {
		b -= 1 / math.Sqrt(float64(t))
	}
	return b
}

func onesReport(t testing.TB, p *Pipeline, round int) Report {
	t.Helper()
	rep, err := p.GradientTask().RandomizeGradient(round, []float64{1, 1}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestTrainerDeterministicTrajectory(t *testing.T) {
	const rounds, group = 3, 4
	p := newGradientPipeline(t, rounds, group)
	tr := p.Trainer()
	if m := tr.Model(); m.Round != 0 || m.Done || len(m.Beta) != 2 {
		t.Fatalf("initial model = %+v", m)
	}

	for r := 0; r < rounds; r++ {
		for g := 0; g < group; g++ {
			if err := p.Add(onesReport(t, p, r)); err != nil {
				t.Fatal(err)
			}
		}
		m := tr.Model()
		if m.Round != r+1 {
			t.Fatalf("after round %d: model round = %d", r, m.Round)
		}
		want := expectedBeta(r + 1)
		if m.Beta[0] != want || m.Beta[1] != want {
			t.Fatalf("after round %d: beta = %v, want [%v %v]", r, m.Beta, want, want)
		}
	}
	m := tr.Model()
	if !m.Done {
		t.Fatal("model not done after final round")
	}
	if got := tr.Accepted(); got != rounds*group {
		t.Fatalf("accepted = %d, want %d", got, rounds*group)
	}

	// Everything after Done is stale, as is a wrong-round report.
	if err := p.Add(onesReport(t, p, rounds-1)); err != nil {
		t.Fatal(err)
	}
	if got := tr.Stale(); got != 1 {
		t.Fatalf("stale = %d, want 1", got)
	}
	if got := tr.Accepted(); got != rounds*group {
		t.Fatalf("accepted moved to %d after done", got)
	}

	if got := p.N(); got != rounds*group {
		t.Fatalf("N = %d, want %d (stale drops are not aggregated)", got, rounds*group)
	}
	if got := p.TaskCounts()[TaskGradient]; got != rounds*group {
		t.Fatalf("TaskCounts[gradient] = %d, want %d", got, rounds*group)
	}
}

func TestTrainerStaleRoundDropped(t *testing.T) {
	p := newGradientPipeline(t, 4, 2)
	// Round 1 report while round 0 collects: validation passes (the round
	// exists) but the trainer drops it.
	if err := p.Add(onesReport(t, p, 1)); err != nil {
		t.Fatal(err)
	}
	tr := p.Trainer()
	if tr.Stale() != 1 || tr.Accepted() != 0 {
		t.Fatalf("stale=%d accepted=%d, want 1/0", tr.Stale(), tr.Accepted())
	}
	if m := tr.Model(); m.Round != 0 {
		t.Fatalf("round advanced to %d on a stale report", m.Round)
	}
}

func TestGradientBatchIngest(t *testing.T) {
	const rounds, group = 2, 8
	p := newGradientPipeline(t, rounds, group)

	// A batch holding round 0's full group plus 3 extra same-round
	// reports: the round must advance exactly once, mid-batch, and the
	// extras must count stale.
	b := NewReportBatch()
	for i := 0; i < group+3; i++ {
		b.Append(onesReport(t, p, 0))
	}
	if err := p.AddBatch(b); err != nil {
		t.Fatal(err)
	}
	tr := p.Trainer()
	m := tr.Model()
	if m.Round != 1 || m.Done {
		t.Fatalf("model after batch = %+v, want round 1", m)
	}
	if m.Beta[0] != expectedBeta(1) {
		t.Fatalf("beta = %v, want %v", m.Beta[0], expectedBeta(1))
	}
	if tr.Accepted() != group || tr.Stale() != 3 {
		t.Fatalf("accepted=%d stale=%d, want %d/3", tr.Accepted(), tr.Stale(), group)
	}

	// Mixed batch: gradient reports ride alongside mean/freq reports on
	// the same ingest path.
	b.Reset()
	gbits := freq.NewBitset(2)
	gbits.Set(1)
	b.Append(Report{Task: TaskMean, Entries: []core.Entry{{Attr: 0, Kind: core.EntryNumeric, Value: 0.5}}})
	for i := 0; i < group; i++ {
		b.Append(onesReport(t, p, 1))
	}
	b.Append(Report{Task: TaskFreq, Entries: []core.Entry{{Attr: 2, Kind: core.EntryCategoricalBits, Resp: freq.Response{Bits: gbits}}}})
	if err := p.AddBatch(b); err != nil {
		t.Fatal(err)
	}
	m = tr.Model()
	if m.Round != rounds || !m.Done {
		t.Fatalf("model after mixed batch = %+v, want done at round %d", m, rounds)
	}
	res := p.Snapshot()
	if res.NTask(TaskMean) != 1 || res.NTask(TaskFreq) != 1 {
		t.Fatalf("mixed batch lost non-gradient reports: mean=%d freq=%d", res.NTask(TaskMean), res.NTask(TaskFreq))
	}
}

func TestGradientValidation(t *testing.T) {
	p := newGradientPipeline(t, 2, 4)
	noGrad, err := New(testSchema(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	good := onesReport(t, p, 0)

	cases := []struct {
		name string
		p    *Pipeline
		rep  Report
		want string
	}{
		{"unregistered", noGrad, good, "no gradient task"},
		{"negative round", p, Report{Task: TaskGradient, Round: -1, Entries: good.Entries}, "round"},
		{"round beyond horizon", p, Report{Task: TaskGradient, Round: 99, Entries: good.Entries}, "round"},
		{"no entries", p, Report{Task: TaskGradient}, "entries"},
		{"too many entries", p, Report{Task: TaskGradient, Entries: []core.Entry{
			{Attr: 0, Kind: core.EntryNumeric, Value: 1},
			{Attr: 1, Kind: core.EntryNumeric, Value: 1},
			{Attr: 0, Kind: core.EntryNumeric, Value: 1},
		}}, "entries"},
		{"coordinate out of range", p, Report{Task: TaskGradient, Entries: []core.Entry{
			{Attr: 7, Kind: core.EntryNumeric, Value: 1},
		}}, "coordinate"},
		{"non-numeric entry", p, Report{Task: TaskGradient, Entries: []core.Entry{
			{Attr: 0, Kind: core.EntryCategoricalValue},
		}}, "non-numeric"},
		{"NaN value", p, Report{Task: TaskGradient, Entries: []core.Entry{
			{Attr: 0, Kind: core.EntryNumeric, Value: math.NaN()},
		}}, "non-finite"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Scalar and batch validators must agree.
			if err := tc.p.Add(tc.rep); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Add error = %v, want containing %q", err, tc.want)
			}
			b := NewReportBatch()
			b.Append(tc.rep)
			if err := tc.p.AddBatch(b); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("AddBatch error = %v, want containing %q", err, tc.want)
			}
		})
	}

	// A bad gradient report rejects the whole batch before any state
	// change — including the trainer's.
	b := NewReportBatch()
	for i := 0; i < 3; i++ {
		b.Append(good)
	}
	b.Append(Report{Task: TaskGradient, Round: 99, Entries: good.Entries})
	if err := p.AddBatch(b); err == nil {
		t.Fatal("batch with bad gradient report accepted")
	}
	if p.Trainer().Accepted() != 0 || p.Trainer().Stale() != 0 {
		t.Fatalf("rejected batch mutated trainer: accepted=%d stale=%d", p.Trainer().Accepted(), p.Trainer().Stale())
	}
}

func TestRandomizeGradientContract(t *testing.T) {
	p := newGradientPipeline(t, 2, 4)
	gt := p.GradientTask()
	if _, err := gt.RandomizeGradient(0, []float64{1}, rng.New(1)); err == nil {
		t.Error("wrong gradient length accepted")
	}
	if _, err := gt.RandomizeGradient(2, []float64{1, 1}, rng.New(1)); err == nil {
		t.Error("round beyond horizon accepted")
	}
	if _, err := gt.RandomizeGradient(-1, []float64{1, 1}, rng.New(1)); err == nil {
		t.Error("negative round accepted")
	}
	// Clipping: a huge raw gradient must come back clipped (identity
	// mechanism, scale 1 -> exactly +-1).
	rep, err := gt.RandomizeGradient(0, []float64{50, -50}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range rep.Entries {
		if math.Abs(e.Value) != 1 {
			t.Errorf("coordinate %d = %v, want clipped to +-1", e.Attr, e.Value)
		}
	}
	// Tuples are never routed to the gradient task.
	if _, err := gt.Randomize(schema.NewTuple(p.Schema()), rng.New(1)); err == nil {
		t.Error("Randomize on the gradient task should error")
	}
}

func TestGradientOnlyPipelineRouting(t *testing.T) {
	p := newGradientPipeline(t, 2, 4)
	// The schema has numeric + categorical attrs, so mean and freq are
	// still routed; the gradient task never is.
	r := rng.New(5)
	for i := 0; i < 200; i++ {
		rep, err := p.Randomize(sampleTuple(p.Schema(), r), r)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Task == TaskGradient {
			t.Fatal("tuple routed to the gradient task")
		}
	}
}

func TestGradientMergeUnsupported(t *testing.T) {
	a := newGradientPipeline(t, 2, 4)
	b := newGradientPipeline(t, 2, 4)
	if err := a.Merge(b); err == nil || !strings.Contains(err.Error(), "not supported") {
		t.Errorf("merge of trainers = %v, want unsupported error", err)
	}
	plain, err := New(testSchema(t), 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(plain); err == nil {
		t.Error("merge across task sets accepted")
	}
}

func TestGradientBatchRoundTrip(t *testing.T) {
	p := newGradientPipeline(t, 8, 4)
	b := NewReportBatch()
	want := onesReport(t, p, 5)
	b.Append(want)
	if got := b.Round(0); got != 5 {
		t.Fatalf("batch round = %d, want 5", got)
	}
	got := b.Report(0)
	if got.Task != TaskGradient || got.Round != 5 || len(got.Entries) != len(want.Entries) {
		t.Fatalf("round trip = %+v, want %+v", got, want)
	}
	// Truncate must roll the round column back with the rest.
	mark := b.Mark()
	b.Append(onesReport(t, p, 6))
	b.Truncate(mark)
	if b.Len() != 1 || b.Round(0) != 5 {
		t.Fatalf("after truncate: len=%d round=%d, want 1/5", b.Len(), b.Round(0))
	}
}
