// Package noise implements the additive-noise baselines reviewed in Section
// III-A of the paper. Each perturbs a numeric value t in [-1, 1] (input
// sensitivity 2) by adding data-independent noise:
//
//   - Laplace: the classic Laplace mechanism, noise Lap(2/eps) with
//     variance 8/eps^2.
//   - SCDF (Soria-Comas and Domingo-Ferrer) and Staircase (Geng et al.):
//     two members of the banded piecewise-constant noise family of Eq. 2 —
//     a flat center band [-m, m] of density a, flanked by width-2 bands
//     whose density decays geometrically by e^{-eps} per band.
//
// Unlike the paper's PM/HM, all three produce unbounded outputs; their
// variance is independent of the input value.
package noise

import (
	"math"

	"ldp/internal/mech"
	"ldp/internal/rng"
)

// Laplace is the Laplace mechanism for one numeric attribute in [-1, 1]:
// t* = t + Lap(2/eps).
type Laplace struct {
	eps   float64
	scale float64
}

// NewLaplace constructs a Laplace mechanism with sensitivity 2.
func NewLaplace(eps float64) (*Laplace, error) {
	if err := mech.ValidateEpsilon(eps); err != nil {
		return nil, err
	}
	return &Laplace{eps: eps, scale: 2 / eps}, nil
}

// Name returns "laplace".
func (m *Laplace) Name() string { return "laplace" }

// Epsilon returns the privacy budget.
func (m *Laplace) Epsilon() float64 { return m.eps }

// Perturb returns t + Lap(2/eps). Inputs outside [-1,1] are clamped.
func (m *Laplace) Perturb(t float64, r *rng.Rand) float64 {
	return mech.Clamp1(t) + rng.Laplace(r, m.scale)
}

// Variance returns 8/eps^2, independent of t.
func (m *Laplace) Variance(float64) float64 { return 2 * m.scale * m.scale }

// WorstCaseVariance returns 8/eps^2.
func (m *Laplace) WorstCaseVariance() float64 { return m.Variance(0) }

var _ mech.Mechanism = (*Laplace)(nil)

// banded is the shared implementation of the piecewise-constant noise
// family of Eq. 2: density a on the center band [-m, m] and a*e^{-(j+1)eps}
// on the bands ±[m+2j, m+2(j+1)], j = 0, 1, ...
type banded struct {
	name     string
	eps      float64
	m        float64 // center band half-width
	a        float64 // center band density
	pCenter  float64 // probability mass of the center band: 2am
	q        float64 // per-band decay e^{-eps}
	variance float64 // E[noise^2], precomputed
}

func newBanded(name string, eps, m, a float64) *banded {
	b := &banded{
		name:    name,
		eps:     eps,
		m:       m,
		a:       a,
		pCenter: 2 * a * m,
		q:       math.Exp(-eps),
	}
	b.variance = b.secondMoment()
	return b
}

// secondMoment integrates x^2 against the band density, summing bands until
// the terms are negligible.
func (b *banded) secondMoment() float64 {
	acc := 2 * b.a * b.m * b.m * b.m / 3
	for j := 0; ; j++ {
		lo := b.m + 2*float64(j)
		hi := lo + 2
		term := 2 * b.a * math.Exp(-float64(j+1)*b.eps) * (hi*hi*hi - lo*lo*lo) / 3
		acc += term
		if term < 1e-16*acc || j > 10000 {
			return acc
		}
	}
}

// Name returns the mechanism identifier.
func (b *banded) Name() string { return b.name }

// Epsilon returns the privacy budget.
func (b *banded) Epsilon() float64 { return b.eps }

// CenterHalfWidth returns m, the half-width of the flat center band.
func (b *banded) CenterHalfWidth() float64 { return b.m }

// CenterDensity returns a, the density on the center band.
func (b *banded) CenterDensity() float64 { return b.a }

// Noise draws one sample from the banded noise distribution.
func (b *banded) Noise(r *rng.Rand) float64 {
	if rng.Bernoulli(r, b.pCenter) {
		return rng.Uniform(r, -b.m, b.m)
	}
	// Conditional band index is geometric with ratio e^{-eps}.
	j := rng.Geometric(r, b.q)
	x := b.m + 2*float64(j) + rng.Uniform(r, 0, 2)
	if rng.Bernoulli(r, 0.5) {
		return -x
	}
	return x
}

// Perturb returns t + noise. Inputs outside [-1,1] are clamped.
func (b *banded) Perturb(t float64, r *rng.Rand) float64 {
	return mech.Clamp1(t) + b.Noise(r)
}

// Variance returns the (input-independent) noise variance.
func (b *banded) Variance(float64) float64 { return b.variance }

// WorstCaseVariance equals Variance since the noise is data independent.
func (b *banded) WorstCaseVariance() float64 { return b.variance }

// Pdf evaluates the noise density at x (used by the LDP ratio tests).
func (b *banded) Pdf(x float64) float64 {
	x = math.Abs(x)
	if x <= b.m {
		return b.a
	}
	j := math.Floor((x - b.m) / 2)
	return b.a * math.Exp(-(j+1)*b.eps)
}

// SCDF is the Soria-Comas/Domingo-Ferrer optimal data-independent noise for
// sensitivity 2: center density a = eps/4 and half-width
// m = 2(1 - e^{-eps} - eps e^{-eps}) / (eps (1 - e^{-eps})).
type SCDF struct{ *banded }

// NewSCDF constructs the SCDF mechanism.
func NewSCDF(eps float64) (*SCDF, error) {
	if err := mech.ValidateEpsilon(eps); err != nil {
		return nil, err
	}
	em := math.Exp(-eps)
	m := 2 * (1 - em - eps*em) / (eps * (1 - em))
	return &SCDF{newBanded("scdf", eps, m, eps/4)}, nil
}

var _ mech.Mechanism = (*SCDF)(nil)

// Staircase is Geng et al.'s staircase mechanism for sensitivity 2 with the
// variance-optimal break point m = 2/(1+e^{eps/2}) and center density
// a = (1-e^{-eps}) / (2m + 4e^{-eps} - 2m e^{-eps}).
type Staircase struct{ *banded }

// NewStaircase constructs the staircase mechanism.
func NewStaircase(eps float64) (*Staircase, error) {
	if err := mech.ValidateEpsilon(eps); err != nil {
		return nil, err
	}
	em := math.Exp(-eps)
	m := 2 / (1 + math.Exp(eps/2))
	a := (1 - em) / (2*m + 4*em - 2*m*em)
	return &Staircase{newBanded("staircase", eps, m, a)}, nil
}

var _ mech.Mechanism = (*Staircase)(nil)
