package noise

import (
	"math"
	"testing"

	"ldp/internal/mathx"
	"ldp/internal/rng"
	"ldp/internal/stats"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestConstructorsRejectBadEpsilon(t *testing.T) {
	for _, eps := range []float64{0, -2, math.NaN()} {
		if _, err := NewLaplace(eps); err == nil {
			t.Errorf("NewLaplace(%v): want error", eps)
		}
		if _, err := NewSCDF(eps); err == nil {
			t.Errorf("NewSCDF(%v): want error", eps)
		}
		if _, err := NewStaircase(eps); err == nil {
			t.Errorf("NewStaircase(%v): want error", eps)
		}
	}
}

func TestLaplaceVarianceFormula(t *testing.T) {
	m, _ := NewLaplace(2)
	if !almostEqual(m.Variance(0.3), 2, 1e-12) { // 8/eps^2 = 8/4
		t.Errorf("Variance = %v, want 2", m.Variance(0.3))
	}
}

func TestLaplaceUnbiasedAndVariance(t *testing.T) {
	m, _ := NewLaplace(1)
	r := rng.New(1)
	const n = 400000
	var acc stats.Running
	for i := 0; i < n; i++ {
		acc.Add(m.Perturb(0.25, r))
	}
	if math.Abs(acc.Mean()-0.25) > 5*math.Sqrt(8/float64(n)) {
		t.Errorf("mean = %v, want 0.25", acc.Mean())
	}
	if math.Abs(acc.Variance()-8) > 0.3 {
		t.Errorf("variance = %v, want 8", acc.Variance())
	}
}

func TestBandedDensityNormalizes(t *testing.T) {
	// Integrate the pdf numerically; must be ~1 for both family members.
	for _, eps := range []float64{0.5, 1, 2, 4} {
		sc, _ := NewSCDF(eps)
		st, _ := NewStaircase(eps)
		for _, b := range []*banded{sc.banded, st.banded} {
			// Center + enough bands for the geometric tail.
			total := 2 * b.a * b.m
			for j := 0; j < 200; j++ {
				total += 4 * b.a * math.Exp(-float64(j+1)*eps)
			}
			if !almostEqual(total, 1, 1e-9) {
				t.Errorf("%s eps=%v: total mass %v, want 1", b.name, eps, total)
			}
		}
	}
}

func TestBandedPdfMatchesSecondMoment(t *testing.T) {
	// Cross-check the analytic band-sum second moment against numeric
	// integration of Pdf.
	sc, _ := NewSCDF(1)
	got := sc.Variance(0)
	want := 2 * mathx.Integrate(func(x float64) float64 { return x * x * sc.Pdf(x) }, 0, 60, 200000)
	if !almostEqual(got, want, 1e-3*want) {
		t.Errorf("second moment %v, want %v (numeric)", got, want)
	}
}

func TestSCDFParameters(t *testing.T) {
	// a = eps/4 and m in (0, 1]; m -> 1 as eps -> 0 and m -> 0 as eps grows.
	small, _ := NewSCDF(0.001)
	if !almostEqual(small.CenterDensity(), 0.001/4, 1e-12) {
		t.Errorf("a = %v", small.CenterDensity())
	}
	if small.CenterHalfWidth() < 0.9 || small.CenterHalfWidth() > 1.01 {
		t.Errorf("m(0.001) = %v, want ~1", small.CenterHalfWidth())
	}
	big, _ := NewSCDF(20)
	if big.CenterHalfWidth() > 0.11 {
		t.Errorf("m(20) = %v, want ~2/eps", big.CenterHalfWidth())
	}
}

func TestStaircaseParameters(t *testing.T) {
	m, _ := NewStaircase(2)
	want := 2 / (1 + math.E) // eps/2 = 1
	if !almostEqual(m.CenterHalfWidth(), want, 1e-12) {
		t.Errorf("m = %v, want %v", m.CenterHalfWidth(), want)
	}
}

func TestBandedUnbiased(t *testing.T) {
	r := rng.New(2)
	const n = 400000
	for _, eps := range []float64{0.5, 2} {
		sc, _ := NewSCDF(eps)
		st, _ := NewStaircase(eps)
		for _, m := range []interface {
			Perturb(float64, *rng.Rand) float64
			Variance(float64) float64
			Name() string
		}{sc, st} {
			var acc stats.Running
			for i := 0; i < n; i++ {
				acc.Add(m.Perturb(-0.6, r))
			}
			tol := 5 * math.Sqrt(m.Variance(0)/n)
			if math.Abs(acc.Mean()+0.6) > tol {
				t.Errorf("%s eps=%v: mean %v, want -0.6 +- %v", m.Name(), eps, acc.Mean(), tol)
			}
		}
	}
}

func TestBandedEmpiricalVarianceMatchesAnalytic(t *testing.T) {
	r := rng.New(3)
	const n = 400000
	for _, eps := range []float64{1, 4} {
		sc, _ := NewSCDF(eps)
		st, _ := NewStaircase(eps)
		for _, m := range []interface {
			Perturb(float64, *rng.Rand) float64
			Variance(float64) float64
			Name() string
		}{sc, st} {
			var acc stats.Running
			for i := 0; i < n; i++ {
				acc.Add(m.Perturb(0, r))
			}
			want := m.Variance(0)
			if math.Abs(acc.Variance()-want) > 0.05*want {
				t.Errorf("%s eps=%v: var %v, want %v", m.Name(), eps, acc.Variance(), want)
			}
		}
	}
}

func TestBandedLDPRatioBound(t *testing.T) {
	// For additive noise, eps-LDP on domain [-1,1] (sensitivity 2) is
	// pdf(x-t)/pdf(x-t') <= e^eps for all x and |t-t'| <= 2. Check the
	// shifted-density ratio on a grid.
	for _, eps := range []float64{0.5, 1, 3} {
		sc, _ := NewSCDF(eps)
		st, _ := NewStaircase(eps)
		for _, b := range []*banded{sc.banded, st.banded} {
			maxRatio := 0.0
			for x := -8.0; x <= 8; x += 0.001 {
				p1 := b.Pdf(x - 1) // input t = 1
				p2 := b.Pdf(x + 1) // input t = -1
				if p2 > 0 {
					maxRatio = math.Max(maxRatio, p1/p2)
				}
			}
			if maxRatio > math.Exp(eps)+1e-6 {
				t.Errorf("%s eps=%v: ratio %v exceeds e^eps=%v", b.name, eps, maxRatio, math.Exp(eps))
			}
		}
	}
}

func TestStaircaseBeatsLaplaceAtHighEps(t *testing.T) {
	// The optimized staircase noise should have lower variance than
	// Laplace for large eps (its key selling point).
	la, _ := NewLaplace(4)
	st, _ := NewStaircase(4)
	if st.Variance(0) >= la.Variance(0) {
		t.Errorf("staircase var %v >= laplace var %v at eps=4", st.Variance(0), la.Variance(0))
	}
}

func TestNoiseSampleMatchesPdfShape(t *testing.T) {
	// Empirical mass of the center band must match 2am.
	st, _ := NewStaircase(1)
	r := rng.New(4)
	const n = 300000
	center := 0
	for i := 0; i < n; i++ {
		if x := st.banded.Noise(r); math.Abs(x) <= st.CenterHalfWidth() {
			center++
		}
	}
	want := 2 * st.CenterDensity() * st.CenterHalfWidth()
	got := float64(center) / n
	if math.Abs(got-want) > 5*math.Sqrt(want*(1-want)/n) {
		t.Errorf("center band mass = %v, want %v", got, want)
	}
}
