package erm

import (
	"testing"

	"ldp/internal/core"
	"ldp/internal/mech"
	"ldp/internal/rng"
	"ldp/internal/stattest"
)

// TestGroupAveragedGradientStatistics is the statistical contract the
// LDP-SGD trainer rests on (Section V): averaging a group's randomized
// clipped gradients is an unbiased estimate of the average clipped
// gradient, with per-coordinate variance coordVar/|G|. GroupSizeForVariance
// sizes |G| so the residual noise standard deviation is ~0.25; both facts
// are asserted through the stattest harness rather than eyeballed
// tolerances.
func TestGroupAveragedGradientStatistics(t *testing.T) {
	const (
		d      = 8
		eps    = 1.0
		trials = 4_000
	)
	hm := func(e float64) (mech.Mechanism, error) { return core.NewHybrid(e) }
	col, err := core.NewNumericCollector(hm, eps, d)
	if err != nil {
		t.Fatal(err)
	}
	grad := []float64{0.9, -0.3, 0.1, 0, -1, 0.5, -0.7, 0.2}
	const coord = 0
	coordVar := col.CoordinateVariance(grad[coord])
	group := GroupSizeForVariance(1<<20, coordVar) // n large: no clamp
	if group < 64 {
		t.Fatalf("group size %d below the 64 floor", group)
	}

	s := stattest.Trials(trials, 0x56D, func(r *rng.Rand) float64 {
		sum := 0.0
		for g := 0; g < group; g++ {
			sum += col.PerturbVector(grad, r)[coord]
		}
		return sum / float64(group)
	})
	s.CheckUnbiased(t, "group-averaged gradient", grad[coord])
	s.CheckVariance(t, "group-averaged gradient", coordVar/float64(group), 0.1)
	// The sizing rule's promise: residual noise std <= 0.25 (within the
	// same acceptance factor).
	s.CheckVarianceAtMost(t, "group sizing target", 0.25*0.25, 0.1)
}
