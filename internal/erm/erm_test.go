package erm

import (
	"math"
	"testing"

	"ldp/internal/core"
	"ldp/internal/dataset"
	"ldp/internal/mech"
	"ldp/internal/rng"
)

func pmFactory(eps float64) (mech.Mechanism, error) { return core.NewPiecewise(eps) }

// numericalGradient approximates the gradient of Loss by central finite
// differences.
func numericalGradient(task Task, beta, x []float64, y, lambda float64) []float64 {
	const h = 1e-6
	out := make([]float64, len(beta))
	for i := range beta {
		bp := append([]float64(nil), beta...)
		bm := append([]float64(nil), beta...)
		bp[i] += h
		bm[i] -= h
		out[i] = (Loss(task, bp, x, y, lambda) - Loss(task, bm, x, y, lambda)) / (2 * h)
	}
	return out
}

func TestGradientMatchesFiniteDifferences(t *testing.T) {
	r := rng.New(1)
	for _, task := range []Task{LinearRegression, LogisticRegression, SVM} {
		for trial := 0; trial < 20; trial++ {
			d := 4
			beta := make([]float64, d)
			x := make([]float64, d)
			for i := 0; i < d; i++ {
				beta[i] = rng.Uniform(r, -1, 1)
				x[i] = rng.Uniform(r, -1, 1)
			}
			y := 1.0
			if task == LinearRegression {
				y = rng.Uniform(r, -1, 1)
			} else if rng.Bernoulli(r, 0.5) {
				y = -1
			}
			// Hinge loss is non-differentiable at margin 1; skip trials
			// too close to the kink.
			if task == SVM && math.Abs(1-y*Dot(x, beta)) < 1e-3 {
				continue
			}
			got := Gradient(task, beta, x, y, 1e-2, make([]float64, d))
			want := numericalGradient(task, beta, x, y, 1e-2)
			for i := range got {
				if math.Abs(got[i]-want[i]) > 1e-4 {
					t.Errorf("%v trial %d coord %d: grad %v, numeric %v", task, trial, i, got[i], want[i])
				}
			}
		}
	}
}

func TestLossStability(t *testing.T) {
	// Logistic loss must not overflow for extreme margins.
	beta := []float64{100}
	if l := Loss(LogisticRegression, beta, []float64{1}, -1, 0); math.IsInf(l, 0) || math.IsNaN(l) {
		t.Errorf("loss overflow: %v", l)
	}
	if l := Loss(LogisticRegression, beta, []float64{1}, 1, 0); l < 0 || l > 1e-10 {
		t.Errorf("loss at huge positive margin should be ~0, got %v", l)
	}
}

func TestTaskString(t *testing.T) {
	if LinearRegression.String() != "linreg" || LogisticRegression.String() != "logreg" || SVM.String() != "svm" {
		t.Error("unexpected task names")
	}
	if LinearRegression.IsClassification() || !SVM.IsClassification() {
		t.Error("IsClassification wrong")
	}
}

// syntheticClassification builds a linearly separable-ish dataset with
// margin noise.
func syntheticClassification(n, d int, seed uint64) []dataset.ERMExample {
	w := make([]float64, d)
	for i := range w {
		w[i] = math.Pow(-1, float64(i)) * (0.5 + 0.5*float64(i%3))
	}
	out := make([]dataset.ERMExample, n)
	for i := range out {
		r := rng.NewStream(seed, uint64(i))
		x := make([]float64, d)
		for j := range x {
			x[j] = rng.Uniform(r, -1, 1)
		}
		y := 1.0
		if Dot(w, x)+0.1*r.NormFloat64() < 0 {
			y = -1
		}
		out[i] = dataset.ERMExample{X: x, YCls: y, YReg: mechClamp(Dot(w, x) / float64(d))}
	}
	return out
}

func mechClamp(v float64) float64 { return mech.Clamp1(v) }

func TestNonPrivateLogisticLearnsSeparableData(t *testing.T) {
	ex := syntheticClassification(20000, 6, 2)
	cfg := Config{Task: LogisticRegression, Lambda: 1e-4, Eta: 1, GroupSize: 50}
	beta, err := Train(cfg, ex[:16000], nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rate := MisclassificationRate(beta, ex[16000:]); rate > 0.12 {
		t.Errorf("non-private logistic misclassification = %v, want < 0.12", rate)
	}
}

func TestNonPrivateSVMLearnsSeparableData(t *testing.T) {
	ex := syntheticClassification(20000, 6, 4)
	cfg := Config{Task: SVM, Lambda: 1e-4, Eta: 0.5, GroupSize: 50}
	beta, err := Train(cfg, ex[:16000], nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rate := MisclassificationRate(beta, ex[16000:]); rate > 0.12 {
		t.Errorf("non-private SVM misclassification = %v, want < 0.12", rate)
	}
}

func TestNonPrivateLinearRegressionRecoversModel(t *testing.T) {
	// y = x'w with small noise; SGD should drive test MSE well below the
	// variance of y.
	const d = 5
	w := []float64{0.3, -0.2, 0.1, 0.25, -0.15}
	n := 30000
	ex := make([]dataset.ERMExample, n)
	varY := 0.0
	for i := range ex {
		r := rng.NewStream(8, uint64(i))
		x := make([]float64, d)
		for j := range x {
			x[j] = rng.Uniform(r, -1, 1)
		}
		y := Dot(w, x) + 0.02*r.NormFloat64()
		ex[i] = dataset.ERMExample{X: x, YReg: mechClamp(y), YCls: 1}
		varY += y * y
	}
	varY /= float64(n)
	cfg := Config{Task: LinearRegression, Lambda: 1e-4, Eta: 0.5, GroupSize: 30}
	beta, err := Train(cfg, ex[:24000], nil, 9)
	if err != nil {
		t.Fatal(err)
	}
	mse := RegressionMSE(beta, ex[24000:])
	if mse > varY/5 {
		t.Errorf("MSE %v should be far below Var[y] %v", mse, varY)
	}
}

func TestLDPTrainingApproachesNonPrivateAtHighEps(t *testing.T) {
	ex := syntheticClassification(30000, 6, 10)
	cfg := Config{Task: LogisticRegression, Lambda: 1e-4, Eta: 1, GroupSize: 300}
	nonPriv, err := Train(cfg, ex[:24000], nil, 11)
	if err != nil {
		t.Fatal(err)
	}
	pert, err := core.NewNumericCollector(pmFactory, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	priv, err := Train(cfg, ex[:24000], pert, 11)
	if err != nil {
		t.Fatal(err)
	}
	rNP := MisclassificationRate(nonPriv, ex[24000:])
	rP := MisclassificationRate(priv, ex[24000:])
	if rP > rNP+0.15 {
		t.Errorf("eps=8 LDP rate %v too far above non-private %v", rP, rNP)
	}
}

func TestTrainValidation(t *testing.T) {
	ex := syntheticClassification(100, 3, 12)
	if _, err := Train(Config{Task: SVM, Eta: 1, GroupSize: 10}, nil, nil, 1); err != ErrNoExamples {
		t.Errorf("want ErrNoExamples, got %v", err)
	}
	if _, err := Train(Config{Task: SVM, Eta: 0, GroupSize: 10}, ex, nil, 1); err == nil {
		t.Error("want error for eta=0")
	}
	if _, err := Train(Config{Task: SVM, Eta: 1, GroupSize: 0}, ex, nil, 1); err == nil {
		t.Error("want error for group size 0")
	}
	if _, err := Train(Config{Task: SVM, Eta: 1, GroupSize: 1000}, ex, nil, 1); err == nil {
		t.Error("want error for group larger than dataset")
	}
	if _, err := Train(Config{Task: SVM, Eta: 1, Lambda: -1, GroupSize: 10}, ex, nil, 1); err == nil {
		t.Error("want error for negative lambda")
	}
	pert, _ := core.NewNumericCollector(pmFactory, 1, 99)
	if _, err := Train(Config{Task: SVM, Eta: 1, GroupSize: 10}, ex, pert, 1); err == nil {
		t.Error("want error for dimension mismatch")
	}
}

func TestTrainDeterministic(t *testing.T) {
	ex := syntheticClassification(2000, 4, 13)
	cfg := Config{Task: LogisticRegression, Lambda: 1e-4, Eta: 1, GroupSize: 100}
	pert, _ := core.NewNumericCollector(pmFactory, 2, 4)
	a, err := Train(cfg, ex, pert, 77)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(cfg, ex, pert, 77)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("training must be deterministic for a fixed seed")
		}
	}
}

func TestDefaultGroupSize(t *testing.T) {
	if g := DefaultGroupSize(100000, 90, 0.5); g < 64 {
		t.Errorf("group size %d too small", g)
	}
	// Must leave at least 4 iterations.
	if g := DefaultGroupSize(1000, 90, 0.1); g > 250 {
		t.Errorf("group size %d exceeds n/4", g)
	}
	if g := DefaultGroupSize(100000, 4, 8); g != 64 {
		t.Errorf("floor group size = %d, want 64", g)
	}
}

func TestEvaluateSplits(t *testing.T) {
	ex := syntheticClassification(5000, 4, 14)
	cfg := Config{Task: LogisticRegression, Lambda: 1e-4, Eta: 1, GroupSize: 50}
	evals, err := EvaluateSplits(cfg, ex, nil, 3, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) != 3 {
		t.Fatalf("got %d evals, want 3", len(evals))
	}
	for _, e := range evals {
		if e.Misclassification < 0 || e.Misclassification > 0.5 {
			t.Errorf("misclassification %v out of plausible range", e.Misclassification)
		}
	}
	if _, err := EvaluateSplits(cfg, ex[:5], nil, 2, 1); err == nil {
		t.Error("want error for tiny dataset")
	}
}

func TestClippingBoundsPerturberInput(t *testing.T) {
	// With clipping on (default), the vector handed to the perturber must
	// be in [-1,1]^d. Use a probe perturber to verify.
	probe := &probePerturber{d: 3}
	ex := syntheticClassification(300, 3, 16)
	cfg := Config{Task: LinearRegression, Lambda: 0, Eta: 5, GroupSize: 10}
	if _, err := Train(cfg, ex, probe, 17); err != nil {
		t.Fatal(err)
	}
	if !probe.sawCalls {
		t.Fatal("probe never called")
	}
	if probe.sawOutOfRange {
		t.Error("clipped gradients escaped [-1,1]")
	}
}

type probePerturber struct {
	d             int
	sawCalls      bool
	sawOutOfRange bool
}

func (p *probePerturber) Name() string     { return "probe" }
func (p *probePerturber) Epsilon() float64 { return 1 }
func (p *probePerturber) Dim() int         { return p.d }
func (p *probePerturber) PerturbVector(t []float64, _ *rng.Rand) []float64 {
	p.sawCalls = true
	for _, v := range t {
		if v < -1 || v > 1 {
			p.sawOutOfRange = true
		}
	}
	out := make([]float64, len(t))
	copy(out, t)
	return out
}

func TestMetricsEmptyInputs(t *testing.T) {
	if MisclassificationRate([]float64{1}, nil) != 0 {
		t.Error("empty misclassification should be 0")
	}
	if RegressionMSE([]float64{1}, nil) != 0 {
		t.Error("empty MSE should be 0")
	}
}
