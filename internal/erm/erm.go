// Package erm implements the paper's Section V case study: training
// empirical-risk-minimization models (linear regression, logistic
// regression, SVM with hinge loss, all L2-regularized) by stochastic
// gradient descent where each iteration's gradient is the average of
// eps-LDP randomized, per-coordinate-clipped user gradients.
//
// Each user participates in at most one iteration (the paper shows that
// splitting a user's budget over m iterations is strictly worse), so the
// number of iterations is n / |G| for group size |G|.
package erm

import (
	"errors"
	"fmt"
	"math"

	"ldp/internal/dataset"
	"ldp/internal/mech"
	"ldp/internal/rng"
)

// Task selects the loss function.
type Task int

const (
	// LinearRegression uses squared loss (x'b - y)^2 with y in [-1, 1].
	LinearRegression Task = iota
	// LogisticRegression uses log(1 + exp(-y x'b)) with y in {-1, +1}.
	LogisticRegression
	// SVM uses the hinge loss max(0, 1 - y x'b) with y in {-1, +1}.
	SVM
)

// String returns the task name.
func (t Task) String() string {
	switch t {
	case LinearRegression:
		return "linreg"
	case LogisticRegression:
		return "logreg"
	case SVM:
		return "svm"
	default:
		return fmt.Sprintf("Task(%d)", int(t))
	}
}

// IsClassification reports whether the task predicts a binary label.
func (t Task) IsClassification() bool { return t != LinearRegression }

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Loss returns l'(beta; x, y) = l(beta; x, y) + (lambda/2) ||beta||^2 for
// the given task.
func Loss(task Task, beta, x []float64, y, lambda float64) float64 {
	margin := Dot(x, beta)
	var l float64
	switch task {
	case LinearRegression:
		d := margin - y
		l = d * d
	case LogisticRegression:
		// log(1+e^{-z}) computed stably for large |z|.
		z := y * margin
		if z > 0 {
			l = math.Log1p(math.Exp(-z))
		} else {
			l = -z + math.Log1p(math.Exp(z))
		}
	case SVM:
		l = math.Max(0, 1-y*margin)
	}
	return l + lambda/2*Dot(beta, beta)
}

// Gradient writes the gradient of l'(beta; x, y) into dst (length matching
// beta) and returns dst.
func Gradient(task Task, beta, x []float64, y, lambda float64, dst []float64) []float64 {
	margin := Dot(x, beta)
	var scale float64
	switch task {
	case LinearRegression:
		scale = 2 * (margin - y)
	case LogisticRegression:
		// d/dz log(1+e^{-z}) = -1/(1+e^z); chain rule over z = y x'b.
		scale = -y / (1 + math.Exp(y*margin))
	case SVM:
		if 1-y*margin > 0 {
			scale = -y
		}
	}
	for i := range dst {
		dst[i] = scale*x[i] + lambda*beta[i]
	}
	return dst
}

// Predict returns the raw score x'b; classification tasks threshold it at
// zero.
func Predict(beta, x []float64) float64 { return Dot(x, beta) }

// Config parameterizes training.
type Config struct {
	// Task selects the loss.
	Task Task
	// Lambda is the L2 regularization weight (the paper uses 1e-4).
	Lambda float64
	// Eta scales the learning schedule gamma_t = Eta / sqrt(t).
	Eta float64
	// GroupSize is the number of users contributing to each iteration's
	// averaged gradient.
	GroupSize int
	// NoClip disables the per-coordinate gradient clipping to [-1, 1].
	// The paper always clips; this exists for the clipping ablation.
	NoClip bool
}

func (c Config) validate(n int) error {
	if c.Lambda < 0 {
		return fmt.Errorf("erm: negative lambda %v", c.Lambda)
	}
	if c.Eta <= 0 {
		return fmt.Errorf("erm: learning rate eta must be positive, got %v", c.Eta)
	}
	if c.GroupSize < 1 {
		return fmt.Errorf("erm: group size must be >= 1, got %d", c.GroupSize)
	}
	if n < c.GroupSize {
		return fmt.Errorf("erm: %d examples is fewer than one group of %d", n, c.GroupSize)
	}
	return nil
}

// ErrNoExamples is returned by Train when the training set is empty.
var ErrNoExamples = errors.New("erm: no training examples")

// DefaultGroupSize returns a group size large enough that the averaged
// noisy gradient is useful: it targets a per-coordinate noise standard
// deviation of 0.25, sizing the group from the worst-case per-coordinate
// variance of the PM-based collector (~ d * 4e^{eps/2}/(3(e^{eps/2}-1)^2)
// for eps <= 2.5). This realizes the paper's requirement
// |G| = Omega(d log d / eps^2) with an explicit constant. The result is
// clamped to [64, n/8] so small simulations still get several iterations.
//
// When the gradient perturber is not PM-based, size the group from that
// mechanism's own variance with GroupSizeForVariance instead.
func DefaultGroupSize(n, d int, eps float64) int {
	k := float64(maxInt(1, minInt(d, int(eps/2.5))))
	e := math.Exp(eps / (2 * k))
	perCoordVar := float64(d) / k * 4 * e / (3 * (e - 1) * (e - 1))
	return GroupSizeForVariance(n, perCoordVar)
}

// GroupSizeForVariance sizes an SGD group so that averaging perCoordVar
// per-coordinate gradient noise over the group leaves a standard deviation
// of ~0.25, clamped to [64, n/8].
func GroupSizeForVariance(n int, perCoordVar float64) int {
	const targetStd = 0.25
	g := int(math.Ceil(perCoordVar / (targetStd * targetStd)))
	if g < 64 {
		g = 64
	}
	if max := n / 8; g > max && max >= 1 {
		g = max
	}
	return g
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Train runs group-based SGD. Each user's gradient is clipped
// per-coordinate to [-1, 1] and randomized by pert; pert == nil trains
// non-privately on exact averaged gradients. Examples are consumed in a
// seed-determined shuffled order, each at most once. It returns the final
// parameter vector.
func Train(cfg Config, examples []dataset.ERMExample, pert mech.VectorPerturber, seed uint64) ([]float64, error) {
	if len(examples) == 0 {
		return nil, ErrNoExamples
	}
	if err := cfg.validate(len(examples)); err != nil {
		return nil, err
	}
	d := len(examples[0].X)
	if pert != nil && pert.Dim() != d {
		return nil, fmt.Errorf("erm: perturber dimension %d != feature dimension %d", pert.Dim(), d)
	}

	order := rng.SampleWithoutReplacement(rng.New(seed), len(examples), len(examples))
	beta := make([]float64, d)
	grad := make([]float64, d)
	avg := make([]float64, d)
	iterations := len(examples) / cfg.GroupSize
	pos := 0
	for t := 1; t <= iterations; t++ {
		for i := range avg {
			avg[i] = 0
		}
		for g := 0; g < cfg.GroupSize; g++ {
			ex := examples[order[pos]]
			// One independent randomness stream per user keeps the
			// result invariant to any future parallelization.
			r := rng.NewStream(seed^0x5bd1e995, uint64(order[pos]))
			pos++
			y := ex.YCls
			if cfg.Task == LinearRegression {
				y = ex.YReg
			}
			Gradient(cfg.Task, beta, ex.X, y, cfg.Lambda, grad)
			if !cfg.NoClip {
				for i, v := range grad {
					grad[i] = mech.Clamp1(v)
				}
			}
			if pert != nil {
				noisy := pert.PerturbVector(grad, r)
				for i, v := range noisy {
					avg[i] += v
				}
			} else {
				for i, v := range grad {
					avg[i] += v
				}
			}
		}
		gamma := cfg.Eta / math.Sqrt(float64(t))
		inv := 1 / float64(cfg.GroupSize)
		for i := range beta {
			beta[i] -= gamma * avg[i] * inv
		}
	}
	return beta, nil
}

// MisclassificationRate returns the fraction of examples whose label
// sign(x'b) disagrees with YCls.
func MisclassificationRate(beta []float64, examples []dataset.ERMExample) float64 {
	if len(examples) == 0 {
		return 0
	}
	wrong := 0
	for _, ex := range examples {
		pred := 1.0
		if Predict(beta, ex.X) < 0 {
			pred = -1
		}
		if pred != ex.YCls {
			wrong++
		}
	}
	return float64(wrong) / float64(len(examples))
}

// RegressionMSE returns the mean squared residual (x'b - YReg)^2.
func RegressionMSE(beta []float64, examples []dataset.ERMExample) float64 {
	if len(examples) == 0 {
		return 0
	}
	sum := 0.0
	for _, ex := range examples {
		d := Predict(beta, ex.X) - ex.YReg
		sum += d * d
	}
	return sum / float64(len(examples))
}

// SplitEval holds the outcome of one train/test split.
type SplitEval struct {
	Misclassification float64
	MSE               float64
}

// EvaluateSplits runs `splits` random 90/10 train/test evaluations (the
// cheaper stand-in for the paper's 5x 10-fold cross validation; see
// DESIGN.md) and returns the per-split metrics. buildPert constructs a
// fresh perturber per split (nil trains non-privately).
func EvaluateSplits(cfg Config, examples []dataset.ERMExample, buildPert func() (mech.VectorPerturber, error), splits int, seed uint64) ([]SplitEval, error) {
	if len(examples) < 10 {
		return nil, fmt.Errorf("erm: need at least 10 examples, got %d", len(examples))
	}
	out := make([]SplitEval, 0, splits)
	for s := 0; s < splits; s++ {
		r := rng.NewStream(seed, uint64(s))
		order := rng.SampleWithoutReplacement(r, len(examples), len(examples))
		cut := len(examples) / 10
		test := make([]dataset.ERMExample, 0, cut)
		train := make([]dataset.ERMExample, 0, len(examples)-cut)
		for i, idx := range order {
			if i < cut {
				test = append(test, examples[idx])
			} else {
				train = append(train, examples[idx])
			}
		}
		var pert mech.VectorPerturber
		if buildPert != nil {
			p, err := buildPert()
			if err != nil {
				return nil, err
			}
			pert = p
		}
		beta, err := Train(cfg, train, pert, seed+uint64(s)*7919)
		if err != nil {
			return nil, err
		}
		out = append(out, SplitEval{
			Misclassification: MisclassificationRate(beta, test),
			MSE:               RegressionMSE(beta, test),
		})
	}
	return out, nil
}
