package freq

import (
	"testing"

	"ldp/internal/rng"
)

// TestSyncDelta pins the incremental-maintenance primitive: repeated
// baseline-delta syncs from multiple independently growing estimators
// must leave the aggregate bit-identical to a direct merge of the
// sources, advance each baseline to its source, and be a no-op when
// nothing changed.
func TestSyncDelta(t *testing.T) {
	for _, o := range oracles(t, 1.2, 8) {
		t.Run(o.Name(), func(t *testing.T) {
			shards := []*Estimator{NewEstimator(o), NewEstimator(o)}
			bases := []*Estimator{NewEstimator(o), NewEstimator(o)}
			agg := NewEstimator(o)
			r := rng.New(41)

			for round := 0; round < 3; round++ {
				// Shard 1 sits out odd rounds, so its sync must move nothing.
				for si, sh := range shards {
					if si == 1 && round%2 == 1 {
						continue
					}
					for i := 0; i < 200; i++ {
						sh.Add(o.Perturb(r.IntN(8), r))
					}
				}
				for si, sh := range shards {
					SyncDelta(sh, bases[si], agg)
				}

				ref := NewEstimator(o)
				for _, sh := range shards {
					ref.Merge(sh)
				}
				if agg.N() != ref.N() {
					t.Fatalf("round %d: agg n %d != ref n %d", round, agg.N(), ref.N())
				}
				ac, rc := agg.Counts(), ref.Counts()
				for i := range rc {
					if ac[i] != rc[i] {
						t.Fatalf("round %d count[%d]: agg %v != ref %v", round, i, ac[i], rc[i])
					}
				}
				for si, b := range bases {
					if b.N() != shards[si].N() {
						t.Fatalf("round %d: base %d n %d != shard n %d", round, si, b.N(), shards[si].N())
					}
					bc, sc := b.Counts(), shards[si].Counts()
					for i := range sc {
						if bc[i] != sc[i] {
							t.Fatalf("round %d base %d count[%d]: %v != %v", round, si, i, bc[i], sc[i])
						}
					}
				}
			}

			// Quiescent shards: a sync is a pure no-op.
			before, n := agg.Counts(), agg.N()
			for si, sh := range shards {
				SyncDelta(sh, bases[si], agg)
			}
			if agg.N() != n {
				t.Fatal("no-op sync moved the reporter count")
			}
			after := agg.Counts()
			for i := range before {
				if after[i] != before[i] {
					t.Fatalf("no-op sync moved count[%d]", i)
				}
			}
		})
	}
}
