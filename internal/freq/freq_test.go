package freq

import (
	"math"
	"testing"
	"testing/quick"

	"ldp/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func oracles(t *testing.T, eps float64, k int) []Oracle {
	t.Helper()
	oue, err := NewOUE(eps, k)
	if err != nil {
		t.Fatal(err)
	}
	sue, err := NewSUE(eps, k)
	if err != nil {
		t.Fatal(err)
	}
	grr, err := NewGRR(eps, k)
	if err != nil {
		t.Fatal(err)
	}
	return []Oracle{oue, sue, grr}
}

func TestConstructorsValidate(t *testing.T) {
	if _, err := NewOUE(0, 4); err == nil {
		t.Error("OUE: want error for eps=0")
	}
	if _, err := NewOUE(1, 1); err == nil {
		t.Error("OUE: want error for k=1")
	}
	if _, err := NewSUE(-1, 4); err == nil {
		t.Error("SUE: want error for eps<0")
	}
	if _, err := NewSUE(1, 0); err == nil {
		t.Error("SUE: want error for k=0")
	}
	if _, err := NewGRR(math.NaN(), 4); err == nil {
		t.Error("GRR: want error for NaN eps")
	}
	if _, err := NewGRR(1, 1); err == nil {
		t.Error("GRR: want error for k=1")
	}
}

func TestBitset(t *testing.T) {
	b := NewBitset(130)
	for _, i := range []int{0, 63, 64, 129} {
		b.Set(i)
		if !b.Get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if b.Count() != 4 {
		t.Errorf("Count = %d, want 4", b.Count())
	}
	if b.Get(1) || b.Get(128) {
		t.Error("unexpected bit set")
	}
	c := b.Clone()
	c.Set(1)
	if b.Get(1) {
		t.Error("Clone aliases the original")
	}
}

func TestSupportProbsSeparation(t *testing.T) {
	// All oracles need p > q for the estimator to be well-defined.
	for _, o := range oracles(t, 1, 8) {
		p, q := o.SupportProbs()
		if p <= q {
			t.Errorf("%s: p=%v <= q=%v", o.Name(), p, q)
		}
	}
}

func TestGRRSupportProbs(t *testing.T) {
	g, _ := NewGRR(math.Log(3), 4) // e^eps = 3
	p, q := g.SupportProbs()
	if !almostEqual(p, 0.5, 1e-12) { // 3/(3+3)
		t.Errorf("p = %v, want 0.5", p)
	}
	if !almostEqual(q, 1.0/6, 1e-12) {
		t.Errorf("q = %v, want 1/6", q)
	}
}

func TestOUEBitProbabilities(t *testing.T) {
	o, _ := NewOUE(1, 4)
	r := rng.New(1)
	const n = 200000
	ones := make([]int, 4)
	for i := 0; i < n; i++ {
		resp := o.Perturb(2, r)
		for v := 0; v < 4; v++ {
			if resp.Bits.Get(v) {
				ones[v]++
			}
		}
	}
	p, q := o.SupportProbs()
	for v := 0; v < 4; v++ {
		want := q
		if v == 2 {
			want = p
		}
		got := float64(ones[v]) / n
		if math.Abs(got-want) > 5*math.Sqrt(want*(1-want)/n) {
			t.Errorf("bit %d rate = %v, want %v", v, got, want)
		}
	}
}

func TestEstimatorUnbiasedAllOracles(t *testing.T) {
	// Population with known frequencies; every oracle's debiased
	// estimates must match within sampling noise.
	truth := []float64{0.5, 0.3, 0.15, 0.05}
	const n = 150000
	for _, o := range oracles(t, 1.5, len(truth)) {
		r := rng.New(42)
		est := NewEstimator(o)
		for i := 0; i < n; i++ {
			v := pickValue(truth, r)
			est.Add(o.Perturb(v, r))
		}
		got := est.Estimates()
		for v, want := range truth {
			tol := 6 * math.Sqrt(TheoreticalVariance(o, want, n))
			if math.Abs(got[v]-want) > tol {
				t.Errorf("%s value %d: est %v, want %v +- %v", o.Name(), v, got[v], want, tol)
			}
		}
	}
}

func pickValue(freqs []float64, r *rng.Rand) int {
	u := r.Float64()
	acc := 0.0
	for v, f := range freqs {
		acc += f
		if u < acc {
			return v
		}
	}
	return len(freqs) - 1
}

func TestEstimatorEmpiricalVarianceMatchesTheory(t *testing.T) {
	// Repeated estimation of a single value's frequency: the spread of the
	// estimates should match TheoreticalVariance.
	o, _ := NewOUE(1, 4)
	r := rng.New(7)
	truth := []float64{0.4, 0.3, 0.2, 0.1}
	const n, reps = 2000, 300
	sumSq := 0.0
	for rep := 0; rep < reps; rep++ {
		est := NewEstimator(o)
		for i := 0; i < n; i++ {
			est.Add(o.Perturb(pickValue(truth, r), r))
		}
		d := est.Estimates()[0] - truth[0]
		sumSq += d * d
	}
	got := sumSq / reps
	want := TheoreticalVariance(o, truth[0], n)
	if math.Abs(got-want) > 0.25*want {
		t.Errorf("empirical MSE %v, want ~%v", got, want)
	}
}

func TestOUEBeatsSUEAndGRRLargeDomain(t *testing.T) {
	// OUE's worst-case variance should beat SUE always, and GRR once the
	// domain is large relative to e^eps.
	const eps, k = 1.0, 32
	oue, _ := NewOUE(eps, k)
	sue, _ := NewSUE(eps, k)
	grr, _ := NewGRR(eps, k)
	vOUE := TheoreticalVariance(oue, 0, 1000)
	vSUE := TheoreticalVariance(sue, 0, 1000)
	vGRR := TheoreticalVariance(grr, 0, 1000)
	if vOUE >= vSUE {
		t.Errorf("OUE var %v >= SUE var %v", vOUE, vSUE)
	}
	if vOUE >= vGRR {
		t.Errorf("OUE var %v >= GRR var %v at k=%d", vOUE, vGRR, k)
	}
}

func TestGRRBeatsOUESmallDomain(t *testing.T) {
	// For k < 3e^eps + 2 (roughly), GRR is the better oracle; at k=2,
	// eps=2 this clearly holds.
	oue, _ := NewOUE(2, 2)
	grr, _ := NewGRR(2, 2)
	if TheoreticalVariance(grr, 0, 1000) >= TheoreticalVariance(oue, 0, 1000) {
		t.Error("GRR should beat OUE on a binary domain at eps=2")
	}
}

func TestPerturbClampsOutOfRange(t *testing.T) {
	for _, o := range oracles(t, 1, 4) {
		r := rng.New(3)
		// Must not panic, and must produce valid responses.
		for _, v := range []int{-5, 4, 100} {
			resp := o.Perturb(v, r)
			if resp.Bits == nil && (resp.Value < 0 || resp.Value >= 4) {
				t.Errorf("%s: out-of-range response value %d", o.Name(), resp.Value)
			}
		}
	}
}

func TestEstimatorMerge(t *testing.T) {
	o, _ := NewOUE(1, 4)
	r := rng.New(8)
	whole := NewEstimator(o)
	a, b := NewEstimator(o), NewEstimator(o)
	for i := 0; i < 2000; i++ {
		resp := o.Perturb(i%4, r)
		whole.Add(resp)
		if i%2 == 0 {
			a.Add(resp)
		} else {
			b.Add(resp)
		}
	}
	a.Merge(b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	ea, ew := a.Estimates(), whole.Estimates()
	for v := range ea {
		if !almostEqual(ea[v], ew[v], 1e-12) {
			t.Errorf("value %d: merged %v, whole %v", v, ea[v], ew[v])
		}
	}
}

func TestEstimatorAddCounts(t *testing.T) {
	o, _ := NewOUE(1, 3)
	e := NewEstimator(o)
	if err := e.AddCounts([]float64{10, 5, 1}, 20); err != nil {
		t.Fatal(err)
	}
	if e.N() != 20 {
		t.Errorf("N = %d, want 20", e.N())
	}
	if err := e.AddCounts([]float64{1, 2}, 3); err == nil {
		t.Error("want length-mismatch error")
	}
}

func TestEstimatorEmpty(t *testing.T) {
	o, _ := NewOUE(1, 3)
	for _, v := range NewEstimator(o).Estimates() {
		if v != 0 {
			t.Error("empty estimator should return zeros")
		}
	}
}

func TestGRRLDPRatioExact(t *testing.T) {
	// GRR's output distribution is discrete; max ratio over inputs is
	// p/q' where q' is the off-value probability = e^eps exactly.
	g, _ := NewGRR(1.3, 7)
	p, _ := g.SupportProbs()
	off := (1 - p) / 6
	if ratio := p / off; !almostEqual(ratio, math.Exp(1.3), 1e-9) {
		t.Errorf("ratio = %v, want e^1.3 = %v", ratio, math.Exp(1.3))
	}
}

func TestUnaryEncodingLDPRatio(t *testing.T) {
	// For unary encodings the likelihood ratio of a full response vector
	// factorizes; the worst case over two inputs v != v' is
	// (p(1-q))/(q(1-p)) which must be <= e^eps.
	for _, eps := range []float64{0.5, 1, 2} {
		oue, _ := NewOUE(eps, 4)
		sue, _ := NewSUE(eps, 4)
		for _, o := range []Oracle{oue, sue} {
			p, q := o.SupportProbs()
			ratio := (p * (1 - q)) / (q * (1 - p))
			if ratio > math.Exp(eps)+1e-9 {
				t.Errorf("%s eps=%v: ratio %v > e^eps %v", o.Name(), eps, ratio, math.Exp(eps))
			}
		}
	}
}

func TestEstimatesSumNearOne(t *testing.T) {
	// Frequencies over the full domain should sum to ~1 after debiasing.
	o, _ := NewGRR(2, 5)
	r := rng.New(9)
	truth := []float64{0.2, 0.2, 0.2, 0.2, 0.2}
	est := NewEstimator(o)
	for i := 0; i < 100000; i++ {
		est.Add(o.Perturb(pickValue(truth, r), r))
	}
	sum := 0.0
	for _, v := range est.Estimates() {
		sum += v
	}
	if math.Abs(sum-1) > 0.02 {
		t.Errorf("estimates sum = %v, want ~1", sum)
	}
}

// TestDebiasViewMatchesEstimates pins the lazy debiasing view against
// Estimator.Estimates bit-for-bit: the snapshot query path debiases
// through views, so any drift between the two would silently change
// query answers.
func TestDebiasViewMatchesEstimates(t *testing.T) {
	for _, mk := range []func() Oracle{
		func() Oracle { o, _ := NewOUE(1, 10); return o },
		func() Oracle { o, _ := NewSUE(1, 10); return o },
		func() Oracle { o, _ := NewGRR(1, 10); return o },
	} {
		o := mk()
		est := NewEstimator(o)
		r := rng.New(21)
		for i := 0; i < 5000; i++ {
			est.Add(o.Perturb(r.IntN(10), r))
		}
		want := est.Estimates()
		view := est.CountsView()
		if view.N() != est.N() || view.Len() != 10 {
			t.Fatalf("%s: view shape N=%d len=%d", o.Name(), view.N(), view.Len())
		}
		for v := range want {
			if got := view.Estimate(v); got != want[v] {
				t.Errorf("%s value %d: view %v != estimates %v", o.Name(), v, got, want[v])
			}
		}
		appended := view.AppendEstimates(make([]float64, 0, 10))
		for v := range want {
			if appended[v] != want[v] {
				t.Errorf("%s value %d: appended %v != estimates %v", o.Name(), v, appended[v], want[v])
			}
		}
		// A detached view over copied counts answers identically.
		detached := NewDebiasView(o, est.Counts(), est.N())
		for v := range want {
			if detached.Estimate(v) != want[v] {
				t.Errorf("%s value %d: detached view drifted", o.Name(), v)
			}
		}
		if c := view.Count(3); c != est.Counts()[3] {
			t.Errorf("%s: Count(3) = %v, want %v", o.Name(), c, est.Counts()[3])
		}
	}

	// Empty views estimate zero everywhere, like an empty estimator.
	o, _ := NewOUE(1, 4)
	empty := NewEstimator(o).CountsView()
	for v := 0; v < 4; v++ {
		if empty.Estimate(v) != 0 {
			t.Errorf("empty view estimate(%d) = %v, want 0", v, empty.Estimate(v))
		}
	}
}

func TestOracleDeterministicGivenSeed(t *testing.T) {
	f := func(seed uint64, v uint8) bool {
		o, _ := NewOUE(1, 8)
		a := o.Perturb(int(v%8), rng.New(seed))
		b := o.Perturb(int(v%8), rng.New(seed))
		for i := range a.Bits {
			if a.Bits[i] != b.Bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
