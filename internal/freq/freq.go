// Package freq implements locally differentially private frequency oracles
// for categorical attributes, in the "pure protocol" framework of Wang et
// al. (USENIX Security 2017):
//
//   - OUE, optimized unary encoding — the oracle the paper plugs into its
//     multidimensional collector (Section IV-C);
//   - SUE, symmetric unary encoding (basic RAPPOR);
//   - GRR, generalized randomized response (k-RR).
//
// Each oracle perturbs a value v in {0, ..., k-1} into a Response and
// exposes the pair (p, q): the probability that a response "supports" the
// true value and the probability that it supports any other fixed value.
// The aggregator debiases support counts with
//
//	freqHat[v] = (count[v]/n - q) / (p - q),
//
// which is unbiased for the population frequency of v among the n
// reporting users.
package freq

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"ldp/internal/mech"
	"ldp/internal/rng"
)

// ErrCardinality is returned when an oracle is constructed with fewer than
// two categorical values.
var ErrCardinality = errors.New("freq: cardinality must be >= 2")

// Response is one perturbed categorical report. For unary encodings
// (OUE/SUE) Bits holds a bitset of Cardinality bits; for GRR Bits is nil
// and Value holds the reported value.
type Response struct {
	Value int
	Bits  Bitset
}

// Bitset is a little-endian fixed-width bit vector.
type Bitset []uint64

// NewBitset allocates a bitset able to hold n bits.
func NewBitset(n int) Bitset { return make(Bitset, BitsetWords(n)) }

// BitsetWords returns the number of 64-bit words a Bitset over an n-value
// domain occupies (len(NewBitset(n)) without the allocation; validation
// hot paths use it to check response widths).
func BitsetWords(n int) int { return (n + 63) / 64 }

// UsesBitset reports whether the oracle's responses carry a unary-encoding
// bitset (OUE/SUE) rather than a single reported value (GRR). The response
// shape is a fixed property of the oracle type, probed once with a
// throwaway PRNG; aggregators cache the answer to reject responses of the
// wrong shape (an all-ones bitset folded into a value-type estimator would
// poison every domain value at once).
func UsesBitset(o Oracle) bool { return o.Perturb(0, rng.New(0)).Bits != nil }

// Set sets bit i.
func (b Bitset) Set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

// Get reports whether bit i is set.
func (b Bitset) Get(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// Count returns the number of set bits.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns a copy of the bitset.
func (b Bitset) Clone() Bitset {
	c := make(Bitset, len(b))
	copy(c, b)
	return c
}

// Oracle is a frequency oracle over a fixed categorical domain.
// Implementations are safe for concurrent use; all mutable state lives in
// the caller-supplied PRNG.
type Oracle interface {
	// Name returns a short identifier ("oue", "sue", "grr").
	Name() string
	// Epsilon returns the privacy budget.
	Epsilon() float64
	// Cardinality returns the domain size k.
	Cardinality() int
	// Perturb randomizes a value v in {0..k-1}. Out-of-range values
	// are clamped into the domain.
	Perturb(v int, r *rng.Rand) Response
	// SupportProbs returns (p, q): the probability a response supports
	// the true value, and the probability it supports a fixed other
	// value.
	SupportProbs() (p, q float64)
	// Supports reports whether a response supports candidate value v.
	Supports(resp Response, v int) bool
}

// Factory builds an Oracle for a given budget and cardinality; Algorithm 4
// instantiates it at eps/k for each sampled categorical attribute.
type Factory func(eps float64, cardinality int) (Oracle, error)

func clampValue(v, k int) int {
	if v < 0 {
		return 0
	}
	if v >= k {
		return k - 1
	}
	return v
}

// --- OUE ---

// OUE is the optimized unary encoding protocol: the true value's bit is
// kept with probability p = 1/2, every other bit is flipped on with
// probability q = 1/(e^eps+1). Among unary encodings it minimizes estimator
// variance, which for small frequencies approaches 4e^eps/(n(e^eps-1)^2).
type OUE struct {
	eps float64
	k   int
	q   float64
}

// NewOUE constructs an OUE oracle for domain size k.
func NewOUE(eps float64, k int) (*OUE, error) {
	if err := mech.ValidateEpsilon(eps); err != nil {
		return nil, err
	}
	if k < 2 {
		return nil, fmt.Errorf("%w: got %d", ErrCardinality, k)
	}
	return &OUE{eps: eps, k: k, q: 1 / (math.Exp(eps) + 1)}, nil
}

// Name returns "oue".
func (o *OUE) Name() string { return "oue" }

// Epsilon returns the privacy budget.
func (o *OUE) Epsilon() float64 { return o.eps }

// Cardinality returns the domain size.
func (o *OUE) Cardinality() int { return o.k }

// SupportProbs returns p = 1/2, q = 1/(e^eps+1).
func (o *OUE) SupportProbs() (p, q float64) { return 0.5, o.q }

// Perturb one-hot encodes v and flips each bit with its OUE probability.
func (o *OUE) Perturb(v int, r *rng.Rand) Response {
	v = clampValue(v, o.k)
	bitsOut := NewBitset(o.k)
	for i := 0; i < o.k; i++ {
		keep := o.q
		if i == v {
			keep = 0.5
		}
		if rng.Bernoulli(r, keep) {
			bitsOut.Set(i)
		}
	}
	return Response{Bits: bitsOut}
}

// Supports reports whether bit v is set.
func (o *OUE) Supports(resp Response, v int) bool { return resp.Bits.Get(v) }

var _ Oracle = (*OUE)(nil)

// --- SUE ---

// SUE is symmetric unary encoding (the basic RAPPOR randomizer): every bit
// is reported truthfully with probability e^{eps/2}/(e^{eps/2}+1).
type SUE struct {
	eps float64
	k   int
	p   float64
}

// NewSUE constructs a SUE oracle for domain size k.
func NewSUE(eps float64, k int) (*SUE, error) {
	if err := mech.ValidateEpsilon(eps); err != nil {
		return nil, err
	}
	if k < 2 {
		return nil, fmt.Errorf("%w: got %d", ErrCardinality, k)
	}
	e := math.Exp(eps / 2)
	return &SUE{eps: eps, k: k, p: e / (e + 1)}, nil
}

// Name returns "sue".
func (s *SUE) Name() string { return "sue" }

// Epsilon returns the privacy budget.
func (s *SUE) Epsilon() float64 { return s.eps }

// Cardinality returns the domain size.
func (s *SUE) Cardinality() int { return s.k }

// SupportProbs returns p = e^{eps/2}/(e^{eps/2}+1) and q = 1-p.
func (s *SUE) SupportProbs() (p, q float64) { return s.p, 1 - s.p }

// Perturb one-hot encodes v and reports each bit truthfully with
// probability p.
func (s *SUE) Perturb(v int, r *rng.Rand) Response {
	v = clampValue(v, s.k)
	bitsOut := NewBitset(s.k)
	for i := 0; i < s.k; i++ {
		truthful := rng.Bernoulli(r, s.p)
		isOne := i == v
		if isOne == truthful {
			bitsOut.Set(i)
		}
	}
	return Response{Bits: bitsOut}
}

// Supports reports whether bit v is set.
func (s *SUE) Supports(resp Response, v int) bool { return resp.Bits.Get(v) }

var _ Oracle = (*SUE)(nil)

// --- GRR ---

// GRR is generalized randomized response (k-RR): report the true value with
// probability e^eps/(e^eps+k-1), otherwise a uniformly random other value.
// Its variance degrades linearly in k, which is why the paper prefers OUE
// for large domains.
type GRR struct {
	eps   float64
	k     int
	pTrue float64
}

// NewGRR constructs a GRR oracle for domain size k.
func NewGRR(eps float64, k int) (*GRR, error) {
	if err := mech.ValidateEpsilon(eps); err != nil {
		return nil, err
	}
	if k < 2 {
		return nil, fmt.Errorf("%w: got %d", ErrCardinality, k)
	}
	e := math.Exp(eps)
	return &GRR{eps: eps, k: k, pTrue: e / (e + float64(k) - 1)}, nil
}

// Name returns "grr".
func (g *GRR) Name() string { return "grr" }

// Epsilon returns the privacy budget.
func (g *GRR) Epsilon() float64 { return g.eps }

// Cardinality returns the domain size.
func (g *GRR) Cardinality() int { return g.k }

// SupportProbs returns p = e^eps/(e^eps+k-1), q = 1/(e^eps+k-1).
func (g *GRR) SupportProbs() (p, q float64) {
	return g.pTrue, (1 - g.pTrue) / float64(g.k-1)
}

// Perturb reports v truthfully with probability p, else one of the k-1
// other values uniformly.
func (g *GRR) Perturb(v int, r *rng.Rand) Response {
	v = clampValue(v, g.k)
	if rng.Bernoulli(r, g.pTrue) {
		return Response{Value: v}
	}
	other := r.IntN(g.k - 1)
	if other >= v {
		other++
	}
	return Response{Value: other}
}

// Supports reports whether the response's value equals v.
func (g *GRR) Supports(resp Response, v int) bool { return resp.Value == v }

var _ Oracle = (*GRR)(nil)

// --- Estimation ---

// Estimator accumulates responses for one categorical attribute and
// produces debiased frequency estimates. It is not safe for concurrent use;
// use one per goroutine and Merge.
type Estimator struct {
	oracle Oracle
	counts []float64
	n      int64
}

// NewEstimator creates an estimator bound to the given oracle.
func NewEstimator(o Oracle) *Estimator {
	return &Estimator{oracle: o, counts: make([]float64, o.Cardinality())}
}

// Add folds one response into the support counts.
func (e *Estimator) Add(resp Response) {
	if resp.Bits != nil {
		e.AddBits(resp.Bits)
		return
	}
	e.AddValue(resp.Value)
}

// AddBits folds one unary-encoded response, given as raw bitset words,
// into the support counts. It is the vectorized fold the batch ingest path
// calls directly with subslices of a flat word buffer: no Response value,
// no per-bit Get calls, no allocation.
func (e *Estimator) AddBits(words []uint64) {
	e.n++
	FoldBits(e.counts, words)
}

// AddValue folds one value-type (GRR) response into the support counts.
// Out-of-range values count the reporter but support no candidate,
// matching Add's handling of malformed responses.
func (e *Estimator) AddValue(v int) {
	e.n++
	if v >= 0 && v < len(e.counts) {
		e.counts[v]++
	}
}

// FoldBits increments counts[v] for every set bit v of a unary-encoded
// response given as raw bitset words: the innermost loop of the aggregation
// hot path. It visits only the set bits (one TrailingZeros per set bit)
// instead of testing every domain value, and ignores stray bits at or past
// len(counts) exactly as the per-bit fold did.
func FoldBits(counts []float64, words []uint64) {
	base := 0
	for _, w := range words {
		for w != 0 {
			v := base + bits.TrailingZeros64(w)
			if v >= len(counts) {
				return
			}
			counts[v]++
			w &= w - 1
		}
		base += 64
	}
}

// CountsView returns a debiasing view over the estimator's live support
// counts without copying them. The view is valid only while the estimator
// is not folded into concurrently; snapshot paths that need an immutable
// view should copy the counts first (NewDebiasView over Counts()).
func (e *Estimator) CountsView() DebiasView {
	return NewDebiasView(e.oracle, e.counts, e.n)
}

// DebiasView is an immutable lazy debiasing view over raw support counts:
// the oracle's (p, q) support probabilities are captured once at
// construction, and every Estimate call is two flops over the count array
// — no estimator object, no interface dispatch, no allocation. It is the
// query-side dual of the flat count accumulators the sharded ingest path
// keeps: a snapshot copies counts out of the shards and wraps them in
// views, and debiasing happens only for the attributes actually queried.
//
// The view aliases the count slice it is given; the caller promises the
// counts are not mutated for the lifetime of the view. Views are safe for
// concurrent use under that contract.
type DebiasView struct {
	counts []float64
	n      int64
	p, q   float64
}

// NewDebiasView wraps pooled support counts for n responses of oracle o in
// a lazy debiasing view. The counts are aliased, not copied.
func NewDebiasView(o Oracle, counts []float64, n int64) DebiasView {
	p, q := o.SupportProbs()
	return DebiasView{counts: counts, n: n, p: p, q: q}
}

// N returns the number of responses behind the view.
func (v DebiasView) N() int64 { return v.n }

// Len returns the domain size.
func (v DebiasView) Len() int { return len(v.counts) }

// Count returns the raw support count of value i.
func (v DebiasView) Count(i int) float64 { return v.counts[i] }

// Estimate returns the debiased frequency estimate of value i, computed
// with exactly the arithmetic of Estimator.Estimates (so a view over an
// estimator's counts is bit-identical to its Estimates slice). With no
// responses it returns 0.
func (v DebiasView) Estimate(i int) float64 {
	if v.n == 0 {
		return 0
	}
	return (v.counts[i]/float64(v.n) - v.q) / (v.p - v.q)
}

// AppendEstimates appends the debiased estimate of every domain value to
// dst and returns the extended slice; with a pre-sized dst it allocates
// nothing.
func (v DebiasView) AppendEstimates(dst []float64) []float64 {
	for i := range v.counts {
		dst = append(dst, v.Estimate(i))
	}
	return dst
}

// SyncDelta folds the elementwise difference cur - base of two
// estimators' support counts (and reporter counts) into dst, and advances
// base to match cur: the primitive behind incremental view maintenance,
// where base is a per-shard baseline of the last synced state, cur the
// shard's live estimator, and dst the cumulative cross-shard aggregate.
// All three estimators must share a domain. Only entries whose counts
// actually moved are touched, so the cost is proportional to the delta's
// support, not the domain.
//
// Support counts are integer-valued float64 sums of 0/1 indicators, so
// the baseline-delta arithmetic is exact (no rounding below 2^53): after
// any interleaving of syncs, dst holds bit-identical counts to a direct
// elementwise sum of the cur estimators.
func SyncDelta(cur, base, dst *Estimator) {
	for i, v := range cur.counts {
		if d := v - base.counts[i]; d != 0 {
			dst.counts[i] += d
			base.counts[i] = v
		}
	}
	if d := cur.n - base.n; d != 0 {
		dst.n += d
		base.n = cur.n
	}
}

// AddCounts folds pre-aggregated support counts for nUsers responses
// (used when merging transport-level aggregates).
func (e *Estimator) AddCounts(counts []float64, nUsers int64) error {
	if len(counts) != len(e.counts) {
		return fmt.Errorf("freq: count vector has %d entries, want %d", len(counts), len(e.counts))
	}
	for i, c := range counts {
		e.counts[i] += c
	}
	e.n += nUsers
	return nil
}

// Merge combines another estimator (for the same oracle configuration).
func (e *Estimator) Merge(o *Estimator) {
	for i := range e.counts {
		e.counts[i] += o.counts[i]
	}
	e.n += o.n
}

// N returns the number of responses aggregated.
func (e *Estimator) N() int64 { return e.n }

// Counts returns a copy of the raw support counts (one per domain value).
func (e *Estimator) Counts() []float64 {
	out := make([]float64, len(e.counts))
	copy(out, e.counts)
	return out
}

// Estimates returns the debiased frequency estimate for every value in the
// domain. With no responses it returns all zeros. It is a materializing
// wrapper over CountsView, so the two paths cannot drift.
func (e *Estimator) Estimates() []float64 {
	return e.CountsView().AppendEstimates(make([]float64, 0, len(e.counts)))
}

// TheoreticalVariance returns the per-value estimation variance of the
// oracle for n users when the true frequency is f:
//
//	Var = q(1-q) / (n (p-q)^2)  +  f (1 - p - q) / (n (p - q))
//
// (Wang et al. 2017, Eq. 6).
func TheoreticalVariance(o Oracle, f float64, n int) float64 {
	p, q := o.SupportProbs()
	nn := float64(n)
	return q*(1-q)/(nn*(p-q)*(p-q)) + f*(1-p-q)/(nn*(p-q))
}
