package chaos

import (
	"context"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"ldp/internal/cluster"
	"ldp/internal/core"
	"ldp/internal/pipeline"
	"ldp/internal/rangequery"
	"ldp/internal/reportlog"
	"ldp/internal/rng"
	"ldp/internal/schema"
	"ldp/internal/transport"
)

func testSchema(t testing.TB) *schema.Schema {
	t.Helper()
	s, err := schema.New(
		schema.Attribute{Name: "age", Kind: schema.Numeric},
		schema.Attribute{Name: "income", Kind: schema.Numeric},
		schema.Attribute{Name: "gender", Kind: schema.Categorical, Cardinality: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testPipeline(t testing.TB) *pipeline.Pipeline {
	t.Helper()
	p, err := pipeline.New(testSchema(t), 4,
		pipeline.WithRange(rangequery.Config{Buckets: 32, GridCells: 4}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// quantReports randomizes n reports from the given stream, snapping
// numeric payloads onto a dyadic 2^-10 grid so distributed sums are
// bit-exact under any regrouping — the property that lets the suite
// assert exactness, not approximate closeness, under chaos.
func quantReports(t testing.TB, p *pipeline.Pipeline, stream uint64, n int) []pipeline.Report {
	t.Helper()
	s := p.Schema()
	reps := make([]pipeline.Report, 0, n)
	for i := 0; i < n; i++ {
		r := rng.NewStream(stream, uint64(i))
		tup := schema.NewTuple(s)
		tup.Num[0] = math.Tanh(0.4 + 0.3*r.NormFloat64())
		tup.Num[1] = math.Tanh(-0.2 + 0.5*r.NormFloat64())
		if r.Float64() < 0.7 {
			tup.Cat[2] = 1
		}
		rep, err := p.Randomize(tup, r)
		if err != nil {
			t.Fatal(err)
		}
		for e := range rep.Entries {
			if rep.Entries[e].Kind == core.EntryNumeric {
				rep.Entries[e].Value = math.Round(rep.Entries[e].Value*1024) / 1024
			}
		}
		reps = append(reps, rep)
	}
	return reps
}

func addAll(t testing.TB, reps []pipeline.Report, ps ...*pipeline.Pipeline) {
	t.Helper()
	for _, rep := range reps {
		for _, p := range ps {
			if err := p.Add(rep); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// assertSameEstimates requires got's every estimate to equal want's
// bit for bit: means, the categorical frequency view, and a 2-D range
// mass. Any duplicated or lost report under chaos shows up here.
func assertSameEstimates(t *testing.T, what string, want, got *pipeline.Pipeline) {
	t.Helper()
	wv, gv := want.View(), got.View()
	if wv.N() != gv.N() {
		t.Fatalf("%s: folded %d reports, want %d", what, gv.N(), wv.N())
	}
	wm, gm := wv.Means(), gv.Means()
	for k, w := range wm {
		if g := gm[k]; g != w {
			t.Errorf("%s: mean[%s] = %v, want %v (bit-exact)", what, k, g, w)
		}
	}
	wf, err := wv.FreqView("gender")
	if err != nil {
		t.Fatal(err)
	}
	gf, err := gv.FreqView("gender")
	if err != nil {
		t.Fatal(err)
	}
	for i := range wf {
		if gf[i] != wf[i] {
			t.Errorf("%s: freq[gender][%d] = %v, want %v (bit-exact)", what, i, gf[i], wf[i])
		}
	}
	rq := pipeline.RangeQuery{Attr: "age", Lo: -0.5, Hi: 0.8, Attr2: "income", Lo2: -1, Hi2: 0.25}
	wr, err := wv.Range(rq)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := gv.Range(rq)
	if err != nil {
		t.Fatal(err)
	}
	if wr != gr {
		t.Errorf("%s: range mass = %v, want %v (bit-exact)", what, gr, wr)
	}
}

// checkGoroutines returns a cleanup asserting the goroutine count
// settles back to where it started (fault injection must not strand
// senders or timers).
func checkGoroutines(t *testing.T) func() {
	before := runtime.NumGoroutine()
	return func() {
		deadline := time.Now().Add(3 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if now := runtime.NumGoroutine(); now > before {
			buf := make([]byte, 1<<17)
			n := runtime.Stack(buf, true)
			t.Errorf("goroutine leak: %d before, %d after\n%s", before, now, buf[:n])
		}
	}
}

// pushUntilAcked drives a forwarder until the root has acknowledged
// target reports, tolerating injected failures and open-breaker
// fail-fasts along the way.
func pushUntilAcked(t *testing.T, fw *cluster.Forwarder, target int64) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for {
		if _, reports := fw.Acked(); reports >= target {
			return
		}
		if err := fw.Push(ctx); err != nil {
			if ctx.Err() != nil {
				_, reports := fw.Acked()
				t.Fatalf("gave up at %d/%d acked reports: %v", reports, target, err)
			}
			if errors.Is(err, cluster.ErrBreakerOpen) {
				time.Sleep(time.Millisecond)
			}
		}
	}
}

// fastForwarder builds a forwarder tuned for test time: millisecond
// retries and a breaker that re-probes almost immediately.
func fastForwarder(t *testing.T, p *pipeline.Pipeline, rootURL, edge string, client *http.Client, sync func() error) *cluster.Forwarder {
	t.Helper()
	fw, err := cluster.NewForwarder(p, cluster.ForwarderConfig{
		RootURL:    rootURL,
		EdgeID:     edge,
		HTTPClient: client,
		Sync:       sync,
		Retry:      cluster.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
		Breaker:    cluster.BreakerConfig{Threshold: 3, Cooldown: 2 * time.Millisecond, MaxCooldown: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

// chaosClient builds an http.Client carrying the plan's faults over its
// own private transport (so idle connections are per-test and the
// goroutine-leak check stays honest).
func chaosClient(t *testing.T, plan *Plan) *http.Client {
	t.Helper()
	base := &http.Transport{}
	t.Cleanup(base.CloseIdleConnections)
	return &http.Client{Transport: plan.Transport(base), Timeout: 5 * time.Second}
}

// TestFanInExactUnderChaos is the heart of the suite: two edges fan into
// one root through a fault-injecting transport, in two ingest waves, and
// the root's estimates must come out bit-identical to a reference
// pipeline that folded every report locally — i.e. identical to what a
// no-fault run produces. Drops, blackholed acks, 503 storms, latency,
// and truncated response bodies may slow the fan-in down, but may not
// change a single bit of the answer.
func TestFanInExactUnderChaos(t *testing.T) {
	schedules := []struct {
		name string
		spec Spec
	}{
		{"clean", Spec{}},
		{"drop_heavy", Spec{Drop: 0.4}},
		{"blackhole", Spec{Blackhole: 0.6}},
		{"err5xx", Spec{Err5xx: 0.4}},
		{"latency", Spec{Latency: 0.5, MaxDelay: 5 * time.Millisecond}},
		{"partial_body", Spec{Partial: 0.6}},
		{"mixed", Spec{Drop: 0.15, Blackhole: 0.1, Err5xx: 0.15, Latency: 0.1, Partial: 0.1, MaxDelay: 5 * time.Millisecond}},
	}
	const (
		perEdgeWave = 60
		waves       = 5
	)
	for _, sched := range schedules {
		t.Run(sched.name, func(t *testing.T) {
			defer checkGoroutines(t)()

			ref := testPipeline(t)
			root := testPipeline(t)
			rootSrv := httptest.NewServer(transport.NewPipelineServer(root, nil))
			defer rootSrv.Close()

			plan, err := NewPlan(42, sched.spec)
			if err != nil {
				t.Fatal(err)
			}
			client := chaosClient(t, plan)

			edges := []*pipeline.Pipeline{testPipeline(t), testPipeline(t)}
			fws := []*cluster.Forwarder{
				fastForwarder(t, edges[0], rootSrv.URL, "edge-a", client, nil),
				fastForwarder(t, edges[1], rootSrv.URL, "edge-b", client, nil),
			}

			for wave := 0; wave < waves; wave++ {
				for e, edge := range edges {
					stream := uint64(10*(e+1) + wave)
					reps := quantReports(t, ref, stream, perEdgeWave)
					addAll(t, reps, ref, edge)
				}
				target := int64((wave + 1) * perEdgeWave)
				for _, fw := range fws {
					pushUntilAcked(t, fw, target)
				}
			}

			assertSameEstimates(t, sched.name, ref, root)
			if sched.spec != (Spec{}) {
				inj := plan.Injected()
				total := uint64(0)
				for f, n := range inj {
					if f != FaultNone {
						total += n
					}
				}
				if total == 0 {
					t.Errorf("schedule %q injected no faults over %d requests — the run proved nothing", sched.name, plan.Requests())
				}
				t.Logf("%s: %d requests, faults %v", sched.name, plan.Requests(), inj)
			}
		})
	}
}

// TestPlanDeterminism pins the reproducibility contract: the same seed
// and spec draw the same fault sequence.
func TestPlanDeterminism(t *testing.T) {
	spec := Spec{Drop: 0.2, Blackhole: 0.1, Err5xx: 0.2, Latency: 0.2, Partial: 0.1}
	a, _ := NewPlan(7, spec)
	b, _ := NewPlan(7, spec)
	for i := 0; i < 2000; i++ {
		fa, da := a.next()
		fb, db := b.next()
		if fa != fb || da != db {
			t.Fatalf("draw %d diverged: (%v,%v) vs (%v,%v)", i, fa, da, fb, db)
		}
	}
	c, _ := NewPlan(8, spec)
	diff := false
	for i := 0; i < 2000; i++ {
		fa, _ := a.next()
		fc, _ := c.next()
		if fa != fc {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds drew identical schedules")
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("seed=9,drop=0.25,err5xx=0.5,delay=30ms")
	if err != nil {
		t.Fatal(err)
	}
	if p.seed != 9 || p.spec.Drop != 0.25 || p.spec.Err5xx != 0.5 || p.spec.MaxDelay != 30*time.Millisecond {
		t.Fatalf("parsed plan %+v", p.spec)
	}
	if _, err := ParsePlan(""); err != nil {
		t.Fatalf("empty plan: %v", err)
	}
	for _, bad := range []string{"drop", "drop=x", "seed=-1", "wat=1", "drop=0.9,err5xx=0.9"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

// TestEdgeRestartUnderChaos is the in-process SIGTERM analog: an edge
// with a WAL ingests, pushes under chaos, shuts down cleanly (final
// push, WAL close), and a fresh process — new pipeline replayed from the
// WAL, new forwarder under the same edge ID — carries on. The root must
// end bit-identical to the reference with every report counted once.
func TestEdgeRestartUnderChaos(t *testing.T) {
	defer checkGoroutines(t)()

	ref := testPipeline(t)
	root := testPipeline(t)
	rootSrv := httptest.NewServer(transport.NewPipelineServer(root, nil))
	defer rootSrv.Close()

	plan, err := NewPlan(11, Spec{Drop: 0.2, Blackhole: 0.15, Partial: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	client := chaosClient(t, plan)

	walDir := filepath.Join(t.TempDir(), "wal")
	wal, err := reportlog.Open(walDir, 1<<20, reportlog.WithGroupCommit(time.Hour, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	edge := testPipeline(t)
	ingest := func(p *pipeline.Pipeline, w *reportlog.Writer, stream uint64, n int) {
		reps := quantReports(t, ref, stream, n)
		addAll(t, reps, ref, p)
		var frame []byte
		for _, rep := range reps {
			frame, err = transport.AppendEnvelope(frame[:0], rep)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Append(frame); err != nil {
				t.Fatal(err)
			}
		}
	}

	const wave = 120
	ingest(edge, wal, 1, wave)
	fw := fastForwarder(t, edge, rootSrv.URL, "edge-restart", client, wal.Sync)
	pushUntilAcked(t, fw, wave)

	// Clean shutdown: one final best-effort push, then close the WAL
	// (which commits the group-commit buffer). The long group-commit
	// interval above means an unclean exit here WOULD lose buffered
	// records — the ordered shutdown is what keeps the acked baseline
	// durable.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	fw.Push(ctx)
	cancel()
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": recover + replay the WAL into a fresh pipeline; the new
	// forwarder resyncs its acked baseline from the root.
	if _, err := reportlog.Recover(walDir); err != nil {
		t.Fatal(err)
	}
	edge2 := testPipeline(t)
	n, err := transport.ReplayPipeline(edge2, func(fn func([]byte) error) error {
		_, err := reportlog.Replay(walDir, fn)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != wave {
		t.Fatalf("replayed %d reports, want %d", n, wave)
	}
	wal2, err := reportlog.Open(walDir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()

	ingest(edge2, wal2, 2, wave)
	fw2 := fastForwarder(t, edge2, rootSrv.URL, "edge-restart", client, wal2.Sync)
	pushUntilAcked(t, fw2, 2*wave)

	assertSameEstimates(t, "edge restart", ref, root)
}

// TestFlakySinkNeverDoubleCounts drives single-report uploads through a
// retrying client against a server whose WAL randomly refuses appends:
// every failed persist must 500 with nothing folded, so the retries land
// each report exactly once in both the pipeline and the log.
func TestFlakySinkNeverDoubleCounts(t *testing.T) {
	defer checkGoroutines(t)()

	walDir := filepath.Join(t.TempDir(), "wal")
	wal, err := reportlog.Open(walDir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	flaky, err := NewFlakySink(wal, 5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	ref := testPipeline(t)
	serverPipe := testPipeline(t)
	srv := httptest.NewServer(transport.NewPipelineServer(serverPipe, flaky))
	defer srv.Close()

	base := &http.Transport{}
	t.Cleanup(base.CloseIdleConnections)
	c := NewClientHelper(srv.URL, serverPipe, base)

	const n = 200
	reps := quantReports(t, ref, 3, n)
	addAll(t, reps, ref)
	ctx := context.Background()
	for _, rep := range reps {
		if err := c.SendReport(ctx, rep); err != nil {
			t.Fatalf("send through flaky sink: %v", err)
		}
	}
	if flaky.Failures() == 0 {
		t.Fatal("flaky sink never failed — the run proved nothing")
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}

	assertSameEstimates(t, "flaky sink", ref, serverPipe)

	// The WAL holds each report exactly once: a restart replays to the
	// same totals.
	replayed := testPipeline(t)
	got, err := transport.ReplayPipeline(replayed, func(fn func([]byte) error) error {
		_, err := reportlog.Replay(walDir, fn)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("WAL replayed %d reports, want %d", got, n)
	}
	assertSameEstimates(t, "flaky sink replay", ref, replayed)
}

// NewClientHelper builds a retrying PipelineClient on a private
// transport (keeps the goroutine/idle-conn accounting per-test).
func NewClientHelper(url string, p *pipeline.Pipeline, base http.RoundTripper) *transport.PipelineClient {
	return transport.NewPipelineClient(url, p,
		transport.WithHTTPClient(&http.Client{Transport: base, Timeout: 5 * time.Second}),
		transport.WithRetry(cluster.RetryPolicy{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}),
	)
}
