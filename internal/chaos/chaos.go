// Package chaos provides deterministic fault injection for the
// resilience test suites and smoke scripts: a seeded http.RoundTripper
// that drops, delays, truncates, or rejects requests on a reproducible
// schedule, and a flaky persistence sink. Faults are drawn from a
// counter-seeded PRNG — run k of a plan always draws the same fault for
// the k-th request — so a chaos test that fails replays bit-identically
// under the same seed, and the suite can assert exactness (root totals
// equal durable edge totals) rather than mere survival.
package chaos

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ldp/internal/rng"
)

// Fault enumerates the injectable failure modes.
type Fault int

const (
	// FaultNone passes the request through untouched.
	FaultNone Fault = iota
	// FaultDrop fails the request before it is sent: the server never
	// sees it (a connect error).
	FaultDrop
	// FaultBlackhole sends the request and discards the response: the
	// server did the work, the client sees a connection error. This is
	// the fault that separates exactly-once protocols from at-least-once
	// ones.
	FaultBlackhole
	// Fault5xx answers 503 (with a Retry-After hint) without forwarding.
	Fault5xx
	// FaultLatency delays the request, then forwards it.
	FaultLatency
	// FaultPartial forwards the request but truncates the response body
	// halfway, so the client's decode fails mid-stream.
	FaultPartial
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultBlackhole:
		return "blackhole"
	case Fault5xx:
		return "err5xx"
	case FaultLatency:
		return "latency"
	case FaultPartial:
		return "partial"
	default:
		return "unknown"
	}
}

// Spec is a fault schedule: per-request probabilities for each fault
// kind (the remainder passes clean). Probabilities must be non-negative
// and sum to at most 1.
type Spec struct {
	Drop      float64
	Blackhole float64
	Err5xx    float64
	Latency   float64
	Partial   float64
	// MaxDelay bounds FaultLatency's injected delay (default 50ms). The
	// actual delay is uniform in (0, MaxDelay].
	MaxDelay time.Duration
}

func (s Spec) validate() error {
	sum := 0.0
	for _, p := range []float64{s.Drop, s.Blackhole, s.Err5xx, s.Latency, s.Partial} {
		if p < 0 || p > 1 {
			return fmt.Errorf("chaos: probability %v outside [0,1]", p)
		}
		sum += p
	}
	if sum > 1 {
		return fmt.Errorf("chaos: fault probabilities sum to %v > 1", sum)
	}
	return nil
}

// Plan is a seeded, concurrency-safe fault schedule. The i-th request
// through any of the plan's transports draws its fault from stream i of
// the seed, so a run is reproducible given the same request order.
type Plan struct {
	seed uint64
	spec Spec
	n    atomic.Uint64 // requests scheduled so far

	injected [6]atomic.Uint64 // per-fault counts, indexed by Fault
}

// NewPlan builds a plan from a seed and schedule.
func NewPlan(seed uint64, spec Spec) (*Plan, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if spec.MaxDelay <= 0 {
		spec.MaxDelay = 50 * time.Millisecond
	}
	return &Plan{seed: seed, spec: spec}, nil
}

// ParsePlan parses a flag-friendly plan spec:
//
//	seed=7,drop=0.1,blackhole=0.05,err5xx=0.1,latency=0.2,partial=0.05,delay=30ms
//
// Every key is optional; omitted probabilities are zero, the default
// seed is 1. An empty string is a valid no-fault plan.
func ParsePlan(s string) (*Plan, error) {
	seed := uint64(1)
	var spec Spec
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("chaos: bad plan element %q (want key=value)", kv)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad seed %q", v)
			}
			seed = n
		case "delay":
			d, err := time.ParseDuration(v)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad delay %q", v)
			}
			spec.MaxDelay = d
		case "drop", "blackhole", "err5xx", "latency", "partial":
			p, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad probability %q for %s", v, k)
			}
			switch k {
			case "drop":
				spec.Drop = p
			case "blackhole":
				spec.Blackhole = p
			case "err5xx":
				spec.Err5xx = p
			case "latency":
				spec.Latency = p
			case "partial":
				spec.Partial = p
			}
		default:
			return nil, fmt.Errorf("chaos: unknown plan key %q", k)
		}
	}
	return NewPlan(seed, spec)
}

// next draws the fault for the next request in schedule order.
func (p *Plan) next() (Fault, time.Duration) {
	i := p.n.Add(1) - 1
	r := rng.NewStream(p.seed, i)
	x := r.Float64()
	f := FaultNone
	switch s := &p.spec; {
	case x < s.Drop:
		f = FaultDrop
	case x < s.Drop+s.Blackhole:
		f = FaultBlackhole
	case x < s.Drop+s.Blackhole+s.Err5xx:
		f = Fault5xx
	case x < s.Drop+s.Blackhole+s.Err5xx+s.Latency:
		f = FaultLatency
	case x < s.Drop+s.Blackhole+s.Err5xx+s.Latency+s.Partial:
		f = FaultPartial
	}
	p.injected[f].Add(1)
	var delay time.Duration
	if f == FaultLatency {
		delay = time.Duration((0.1 + 0.9*r.Float64()) * float64(p.spec.MaxDelay))
	}
	return f, delay
}

// Injected returns how many times each fault has fired (index by Fault;
// FaultNone counts clean pass-throughs).
func (p *Plan) Injected() map[Fault]uint64 {
	m := make(map[Fault]uint64, 6)
	for f := FaultNone; f <= FaultPartial; f++ {
		if n := p.injected[f].Load(); n > 0 {
			m[f] = n
		}
	}
	return m
}

// Requests returns the number of requests scheduled so far.
func (p *Plan) Requests() uint64 { return p.n.Load() }

// Transport wraps base (nil: http.DefaultTransport) with the plan's
// fault schedule.
func (p *Plan) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &roundTripper{plan: p, base: base}
}

// Client returns an *http.Client whose transport injects the plan's
// faults (convenience for wiring into ForwarderConfig.HTTPClient or
// transport.WithHTTPClient).
func (p *Plan) Client(timeout time.Duration) *http.Client {
	return &http.Client{Transport: p.Transport(nil), Timeout: timeout}
}

type roundTripper struct {
	plan *Plan
	base http.RoundTripper
}

// errInjected marks chaos-injected connection failures so tests (and
// humans reading retry logs) can tell them from real ones.
type errInjected struct{ fault Fault }

func (e *errInjected) Error() string { return "chaos: injected " + e.fault.String() }

// Timeout and Temporary make the injected error look like transient
// network weather to any classifier that asks.
func (e *errInjected) Timeout() bool   { return false }
func (e *errInjected) Temporary() bool { return true }

var err5xxBody = "chaos: injected 503\n"

func (t *roundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	f, delay := t.plan.next()
	switch f {
	case FaultDrop:
		// The request never leaves: drain nothing, fail like a refused
		// connection.
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, &errInjected{fault: f}
	case Fault5xx:
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		h := make(http.Header, 2)
		h.Set("Retry-After", "0")
		h.Set("Content-Type", "text/plain; charset=utf-8")
		return &http.Response{
			Status:        "503 Service Unavailable",
			StatusCode:    http.StatusServiceUnavailable,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        h,
			Body:          io.NopCloser(strings.NewReader(err5xxBody)),
			ContentLength: int64(len(err5xxBody)),
			Request:       req,
		}, nil
	case FaultLatency:
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(delay):
		}
		return t.base.RoundTrip(req)
	case FaultBlackhole:
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		// The server's answer is swallowed whole: the caller cannot tell
		// whether its request was processed.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, &errInjected{fault: f}
	case FaultPartial:
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = truncateBody(resp.Body)
		return resp, nil
	default:
		return t.base.RoundTrip(req)
	}
}

// truncateBody reads the whole underlying body (so the connection is
// reusable) and serves back half of it, ending in the abrupt error a cut
// connection produces mid-read.
func truncateBody(rc io.ReadCloser) io.ReadCloser {
	all, _ := io.ReadAll(rc)
	rc.Close()
	return &partialBody{data: all[:len(all)/2]}
}

type partialBody struct {
	data []byte
	off  int
}

func (b *partialBody) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.ErrUnexpectedEOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}

func (b *partialBody) Close() error { return nil }
