package chaos

import (
	"fmt"
	"sync/atomic"

	"ldp/internal/rng"
)

// Sink matches transport.Sink without importing it (the interfaces are
// structurally identical, so a FlakySink satisfies both).
type Sink interface {
	Append(payload []byte) error
}

// FlakySink wraps a persistence sink with a seeded failure schedule: the
// i-th Append fails (before touching the underlying sink) with
// probability p, drawn from stream i of the seed. The aggregator
// persists WAL-first, so a failed Append must surface as a 500 with
// nothing folded — the chaos suite asserts a retrying client still lands
// every report exactly once.
type FlakySink struct {
	base Sink
	seed uint64
	p    float64
	n    atomic.Uint64

	failures atomic.Uint64
}

// NewFlakySink wraps base; p is the per-append failure probability.
func NewFlakySink(base Sink, seed uint64, p float64) (*FlakySink, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("chaos: failure probability %v outside [0,1]", p)
	}
	return &FlakySink{base: base, seed: seed, p: p}, nil
}

// Append implements Sink.
func (s *FlakySink) Append(payload []byte) error {
	i := s.n.Add(1) - 1
	if rng.NewStream(s.seed, i).Float64() < s.p {
		s.failures.Add(1)
		return &errInjected{fault: FaultDrop}
	}
	return s.base.Append(payload)
}

// Failures returns how many appends were failed by the schedule.
func (s *FlakySink) Failures() uint64 { return s.failures.Load() }
