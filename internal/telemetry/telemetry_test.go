package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeSemantics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	if c.Value() != 0 {
		t.Fatalf("fresh counter = %d", c.Value())
	}
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}

	g := r.Gauge("test_gauge", "a gauge")
	g.Set(7)
	g.Add(-10)
	if g.Value() != -3 {
		t.Fatalf("gauge = %d, want -3", g.Value())
	}
}

func TestNilSafety(t *testing.T) {
	// Nil handles (the registry-disabled build) must absorb every update.
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(123)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Bucket(0) != 0 {
		t.Fatal("nil metric reported a value")
	}

	// A nil registry issues nil handles and writes nothing.
	var r *Registry
	if r.Counter("x_total", "h") != nil || r.Gauge("x", "h") != nil || r.Histogram("x_ns", "h") != nil {
		t.Fatal("nil registry issued a live handle")
	}
	r.CounterFunc("x_fn_total", "h", func() float64 { return 1 })
	r.GaugeFunc("x_fn", "h", func() float64 { return 1 })
	var sb strings.Builder
	if n, err := r.WriteProm(&sb); n != 0 || err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry wrote %d bytes (err %v)", n, err)
	}
	if v := r.Expvar()(); len(v.(map[string]any)) != 0 {
		t.Fatalf("nil registry expvar = %v", v)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewRegistry().Histogram("lat_ns", "latency")
	// Bucket 0: v <= 0. Bucket i: 2^(i-1) <= v <= 2^i - 1.
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1 << 38, HistogramBuckets - 1}, {1 << 50, HistogramBuckets - 1},
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	counts := map[int]uint64{}
	for _, c := range cases {
		counts[c.bucket]++
	}
	for i := 0; i < HistogramBuckets; i++ {
		if got := h.Bucket(i); got != counts[i] {
			t.Errorf("bucket %d = %d, want %d", i, got, counts[i])
		}
	}
	if h.Count() != uint64(len(cases)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(cases))
	}
	if BucketUpperBound(0) != 0 || BucketUpperBound(3) != 7 || BucketUpperBound(HistogramBuckets-1) != ^uint64(0) {
		t.Fatal("bucket bounds wrong")
	}
}

func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("ok_total", "help", L("a", "1"))
	mustPanic("invalid name", func() { r.Counter("bad name", "h") })
	mustPanic("invalid label", func() { r.Counter("ok2_total", "h", L("0bad", "v")) })
	mustPanic("duplicate series", func() { r.Counter("ok_total", "help", L("a", "1")) })
	mustPanic("label order is canonical", func() {
		r2 := NewRegistry()
		r2.Counter("c_total", "h", L("a", "1"), L("b", "2"))
		r2.Counter("c_total", "h", L("b", "2"), L("a", "1"))
	})
	mustPanic("type conflict", func() { r.Gauge("ok_total", "help") })
	mustPanic("help conflict", func() { r.Counter("ok_total", "other help", L("a", "2")) })
	mustPanic("nil func", func() { r.CounterFunc("fn_total", "h", nil) })

	// Same family, distinct labels: allowed.
	r.Counter("ok_total", "help", L("a", "2"))
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "h", L("v", "a\"b\\c\nd")).Inc()
	var sb strings.Builder
	if _, err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{v="a\"b\\c\nd"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("exposition %q missing %q", sb.String(), want)
	}
}

func TestExpvarSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("ev_total", "h").Add(3)
	r.Gauge("ev_gauge", "h", L("k", "v")).Set(-2)
	r.GaugeFunc("ev_fn", "h", func() float64 { return 1.5 })
	h := r.Histogram("ev_ns", "h")
	h.Observe(5)
	h.Observe(100)

	blob := []byte(r.Expvar().String()) // expvar renders vars via String()
	var got map[string]any
	if err := json.Unmarshal(blob, &got); err != nil {
		t.Fatal(err)
	}
	if got["ev_total"].(float64) != 3 {
		t.Fatalf("ev_total = %v", got["ev_total"])
	}
	if got[`ev_gauge{k="v"}`].(float64) != -2 {
		t.Fatalf("ev_gauge = %v", got[`ev_gauge{k="v"}`])
	}
	if got["ev_fn"].(float64) != 1.5 {
		t.Fatalf("ev_fn = %v", got["ev_fn"])
	}
	hist := got["ev_ns"].(map[string]any)
	if hist["count"].(float64) != 2 {
		t.Fatalf("histogram count = %v", hist["count"])
	}
}
