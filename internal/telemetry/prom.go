package telemetry

import (
	"expvar"
	"io"
	"net/http"
	"strconv"
)

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteProm writes every registered family in the Prometheus text
// exposition format (version 0.0.4): a # HELP and # TYPE line per
// family, one sample line per series, and for histograms the cumulative
// _bucket series plus _sum (approximate; see Histogram) and _count. The
// whole exposition is rendered into a reused buffer under the registry
// lock and written with a single Write, so a scrape does not interleave
// with another scrape's output. A nil registry writes nothing.
func (r *Registry) WriteProm(w io.Writer) (int, error) {
	if r == nil {
		return 0, nil
	}
	r.mu.Lock()
	buf := r.scratch[:0]
	for _, f := range r.fams {
		buf = append(buf, "# HELP "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, escapeHelp(f.help)...)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.typ.String()...)
		buf = append(buf, '\n')
		for _, s := range f.series {
			buf = appendSeries(buf, f, s)
		}
	}
	r.scratch = buf
	n, err := w.Write(buf)
	r.mu.Unlock()
	return n, err
}

func appendSeries(buf []byte, f *family, s *series) []byte {
	if s.h != nil {
		return appendHistogram(buf, f.name, s)
	}
	buf = append(buf, s.prefix...)
	buf = append(buf, ' ')
	switch {
	case s.c != nil:
		buf = strconv.AppendUint(buf, s.c.Value(), 10)
	case s.g != nil:
		buf = strconv.AppendInt(buf, s.g.Value(), 10)
	default:
		buf = strconv.AppendFloat(buf, s.fn(), 'g', -1, 64)
	}
	return append(buf, '\n')
}

// appendHistogram renders the cumulative _bucket/_sum/_count triple for
// one histogram series, splicing le into any existing label block.
func appendHistogram(buf []byte, name string, s *series) []byte {
	var cum uint64
	for i := 0; i < HistogramBuckets; i++ {
		cum += s.h.Bucket(i)
		buf = append(buf, name...)
		buf = append(buf, "_bucket"...)
		buf = appendLabelsWithLE(buf, s.labels, i)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, cum, 10)
		buf = append(buf, '\n')
	}
	buf = append(buf, name...)
	buf = append(buf, "_sum"...)
	buf = append(buf, s.labels...)
	buf = append(buf, ' ')
	buf = strconv.AppendFloat(buf, s.h.approxSum(), 'g', -1, 64)
	buf = append(buf, '\n')
	buf = append(buf, name...)
	buf = append(buf, "_count"...)
	buf = append(buf, s.labels...)
	buf = append(buf, ' ')
	buf = strconv.AppendUint(buf, cum, 10)
	return append(buf, '\n')
}

// appendLabelsWithLE appends {existing...,le="bound"}.
func appendLabelsWithLE(buf []byte, labels string, bucket int) []byte {
	if labels == "" {
		buf = append(buf, '{')
	} else {
		buf = append(buf, labels[:len(labels)-1]...) // strip trailing '}'
		buf = append(buf, ',')
	}
	buf = append(buf, `le="`...)
	if bucket >= HistogramBuckets-1 {
		buf = append(buf, "+Inf"...)
	} else {
		buf = strconv.AppendUint(buf, BucketUpperBound(bucket), 10)
	}
	return append(buf, `"}`...)
}

// escapeHelp escapes backslash and newline in a help string.
func escapeHelp(help string) string {
	out := make([]byte, 0, len(help))
	for i := 0; i < len(help); i++ {
		switch help[i] {
		case '\\':
			out = append(out, `\\`...)
		case '\n':
			out = append(out, `\n`...)
		default:
			out = append(out, help[i])
		}
	}
	return string(out)
}

// Handler returns an http.Handler serving the text exposition: the
// /metrics endpoint of a debug listener. A nil registry serves 404.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if r == nil {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", PromContentType)
		_, _ = r.WriteProm(w)
	})
}

// Expvar returns an expvar.Func exposing a snapshot of every series as a
// JSON object keyed by the series' exposition name ("name{labels}"):
// counters and gauges as numbers, histograms as {count, sum, buckets}.
// Publish it once per process, e.g.
//
//	expvar.Publish("ldp", reg.Expvar())
//
// (expvar panics on duplicate names, so the publish belongs in main, not
// in library code). A nil registry exposes an empty object.
func (r *Registry) Expvar() expvar.Func {
	return func() any {
		out := map[string]any{}
		if r == nil {
			return out
		}
		r.mu.Lock()
		defer r.mu.Unlock()
		for _, f := range r.fams {
			for _, s := range f.series {
				switch {
				case s.c != nil:
					out[s.prefix] = s.c.Value()
				case s.g != nil:
					out[s.prefix] = s.g.Value()
				case s.fn != nil:
					out[s.prefix] = s.fn()
				case s.h != nil:
					buckets := make([]uint64, HistogramBuckets)
					for i := range buckets {
						buckets[i] = s.h.Bucket(i)
					}
					out[s.prefix] = map[string]any{
						"count":   s.h.Count(),
						"sum":     s.h.approxSum(),
						"buckets": buckets,
					}
				}
			}
		}
		return out
	}
}
