package telemetry

import (
	"strconv"
	"strings"
	"testing"
)

// TestWritePromGolden pins the exact exposition of a small registry: the
// format is a wire contract with Prometheus scrapers, so any drift must
// be deliberate.
func TestWritePromGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("ldp_test_reports_total", "Reports folded.", L("task", "mean")).Add(7)
	r.Counter("ldp_test_reports_total", "Reports folded.", L("task", "freq")).Add(2)
	r.Gauge("ldp_test_watermark", "Ingest watermark.").Set(9)
	r.GaugeFunc("ldp_test_fill", "Group fill.", func() float64 { return 0.5 })

	var sb strings.Builder
	n, err := r.WriteProm(&sb)
	if err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if n != len(got) {
		t.Fatalf("WriteProm reported %d bytes, wrote %d", n, len(got))
	}
	want := `# HELP ldp_test_reports_total Reports folded.
# TYPE ldp_test_reports_total counter
ldp_test_reports_total{task="mean"} 7
ldp_test_reports_total{task="freq"} 2
# HELP ldp_test_watermark Ingest watermark.
# TYPE ldp_test_watermark gauge
ldp_test_watermark 9
# HELP ldp_test_fill Group fill.
# TYPE ldp_test_fill gauge
ldp_test_fill 0.5
`
	if got != want {
		t.Fatalf("exposition drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// promSample is one parsed exposition sample.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseProm is a minimal parser of the text exposition format, enough to
// round-trip what WriteProm emits: # lines are validated for HELP/TYPE
// shape, sample lines are split into name, label block, and value.
func parseProm(t *testing.T, text string) (samples []promSample, types map[string]string) {
	t.Helper()
	types = map[string]string{}
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if typ := parts[3]; typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("unknown type in %q", line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			if len(strings.Fields(line)) < 3 {
				t.Fatalf("malformed HELP line %q", line)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		head, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(strings.Replace(valStr, "+Inf", "Inf", 1), 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		s := promSample{labels: map[string]string{}, value: val}
		if i := strings.IndexByte(head, '{'); i >= 0 {
			if !strings.HasSuffix(head, "}") {
				t.Fatalf("unterminated label block in %q", line)
			}
			s.name = head[:i]
			for _, pair := range splitLabelPairs(t, head[i+1:len(head)-1]) {
				eq := strings.IndexByte(pair, '=')
				if eq < 0 || len(pair) < eq+3 || pair[eq+1] != '"' || pair[len(pair)-1] != '"' {
					t.Fatalf("malformed label pair %q in %q", pair, line)
				}
				s.labels[pair[:eq]] = unescapeLabel(pair[eq+2 : len(pair)-1])
			}
		} else {
			s.name = head
		}
		samples = append(samples, s)
	}
	return samples, types
}

// splitLabelPairs splits k="v",k2="v2" on commas outside quotes.
func splitLabelPairs(t *testing.T, s string) []string {
	t.Helper()
	var out []string
	start, inQuote := 0, false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '\\' && inQuote:
			i++
		case s[i] == '"':
			inQuote = !inQuote
		case s[i] == ',' && !inQuote:
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if inQuote {
		t.Fatalf("unterminated quote in label block %q", s)
	}
	return append(out, s[start:])
}

func unescapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\"`, `"`)
	s = strings.ReplaceAll(s, `\n`, "\n")
	return strings.ReplaceAll(s, `\\`, `\`)
}

// TestWritePromRoundTrip writes a registry covering every metric shape
// and parses the exposition back, asserting the recovered samples match
// the registry's ground truth — including histogram bucket cumulativity
// and the _count invariant.
func TestWritePromRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_reqs_total", "Requests.", L("route", "/v1/report"), L("code", "2xx")).Add(31)
	r.Counter("rt_reqs_total", "Requests.", L("route", "/v1/query"), L("code", "4xx")).Add(4)
	r.Gauge("rt_epoch", "Epoch.").Set(12)
	r.CounterFunc("rt_fn_total", "Func counter.", func() float64 { return 99 })
	h := r.Histogram("rt_lat_ns", "Latency.", L("route", "/v1/report"))
	for _, v := range []int64{0, 1, 3, 900, 7_000_000, 1 << 45} {
		h.Observe(v)
	}

	var sb strings.Builder
	if _, err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	samples, types := parseProm(t, sb.String())

	if types["rt_reqs_total"] != "counter" || types["rt_epoch"] != "gauge" || types["rt_lat_ns"] != "histogram" {
		t.Fatalf("types = %v", types)
	}

	find := func(name string, labels map[string]string) promSample {
		t.Helper()
	outer:
		for _, s := range samples {
			if s.name != name || len(s.labels) != len(labels) {
				continue
			}
			for k, v := range labels {
				if s.labels[k] != v {
					continue outer
				}
			}
			return s
		}
		t.Fatalf("no sample %s%v in:\n%s", name, labels, sb.String())
		return promSample{}
	}

	if v := find("rt_reqs_total", map[string]string{"route": "/v1/report", "code": "2xx"}).value; v != 31 {
		t.Fatalf("report 2xx = %v", v)
	}
	if v := find("rt_reqs_total", map[string]string{"route": "/v1/query", "code": "4xx"}).value; v != 4 {
		t.Fatalf("query 4xx = %v", v)
	}
	if v := find("rt_epoch", nil).value; v != 12 {
		t.Fatalf("epoch = %v", v)
	}
	if v := find("rt_fn_total", nil).value; v != 99 {
		t.Fatalf("fn = %v", v)
	}

	// Histogram: every bucket is cumulative, the +Inf bucket equals
	// _count, and _count equals the number of observations.
	route := map[string]string{"route": "/v1/report"}
	if v := find("rt_lat_ns_count", route).value; v != 6 {
		t.Fatalf("_count = %v", v)
	}
	var prev float64 = -1
	var infSeen bool
	for _, s := range samples {
		if s.name != "rt_lat_ns_bucket" {
			continue
		}
		if s.value < prev {
			t.Fatalf("bucket counts not cumulative at le=%q", s.labels["le"])
		}
		prev = s.value
		if s.labels["le"] == "+Inf" {
			infSeen = true
			if s.value != 6 {
				t.Fatalf("+Inf bucket = %v, want 6", s.value)
			}
		}
	}
	if !infSeen {
		t.Fatal("no +Inf bucket emitted")
	}
	if v := find("rt_lat_ns_sum", route).value; v <= 0 {
		t.Fatalf("_sum = %v, want > 0", v)
	}

	// A second scrape over the reused buffer is byte-identical.
	var sb2 strings.Builder
	if _, err := r.WriteProm(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != sb.String() {
		t.Fatal("repeated scrape of an unchanged registry differs")
	}
}
