package telemetry

import (
	"io"
	"sync"
	"testing"
)

// TestConcurrentHammer interleaves hot-path updates on every metric shape
// with concurrent WriteProm scrapes and expvar snapshots: under -race
// this proves the update paths are lock-free-safe against exposition,
// and the final counts prove no increment was lost.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "c")
	labeled := r.Counter("hammer_labeled_total", "c", L("k", "v"))
	g := r.Gauge("hammer_gauge", "g")
	h := r.Histogram("hammer_ns", "h")
	r.GaugeFunc("hammer_fn", "fn", func() float64 { return float64(c.Value()) })

	const (
		writers = 8
		perG    = 5000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				labeled.Add(2)
				g.Set(int64(i))
				h.Observe(seed + int64(i))
			}
		}(int64(w))
	}
	// Scrapers run concurrently with the writers.
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ev := r.Expvar()
			for i := 0; i < 200; i++ {
				if _, err := r.WriteProm(io.Discard); err != nil {
					t.Error(err)
					return
				}
				_ = ev()
			}
		}()
	}
	wg.Wait()

	if c.Value() != writers*perG {
		t.Fatalf("counter = %d, want %d", c.Value(), writers*perG)
	}
	if labeled.Value() != 2*writers*perG {
		t.Fatalf("labeled counter = %d, want %d", labeled.Value(), 2*writers*perG)
	}
	if h.Count() != writers*perG {
		t.Fatalf("histogram count = %d, want %d", h.Count(), writers*perG)
	}
}
