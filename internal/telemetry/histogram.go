package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// HistogramBuckets is the fixed bucket count of every Histogram. Bucket 0
// holds observations <= 0; bucket i (1 <= i < HistogramBuckets-1) holds
// observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i - 1];
// the last bucket is the overflow (+Inf) bucket. 40 buckets cover
// nanosecond latencies up to ~9 minutes and sizes up to ~2^38 before
// overflowing, in 320 bytes per histogram.
const HistogramBuckets = 40

// Histogram is a fixed-bucket lock-free histogram over power-of-two
// boundaries: Observe computes the bucket with one bits.Len64 and does a
// single atomic add — no locks, no floating point, no allocation — which
// is what lets rebuild latencies and batch sizes be recorded from the
// hot paths. The trade-off of keeping Observe to one atomic is that the
// exposition's _sum line is approximated from bucket midpoints (each
// bucket's count times 1.5*2^(i-1), the midpoint of its range) rather
// than tracked exactly; bucket counts and _count are exact.
type Histogram struct {
	buckets [HistogramBuckets]atomic.Uint64
}

// Observe records one value (a duration in nanoseconds, a byte size, a
// batch length — the buckets are unit-agnostic powers of two). A nil
// receiver is a no-op.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
		if i > HistogramBuckets-1 {
			i = HistogramBuckets - 1
		}
	}
	h.buckets[i].Add(1)
}

// ObserveSince records the elapsed nanoseconds since start: the latency
// idiom, h.ObserveSince(start) at the end of the timed section. A nil
// receiver is a no-op (time.Since is still evaluated by the caller's
// argument; callers on allocation-guarded paths gate on Enabled
// instrumentation before taking the start timestamp).
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Nanoseconds())
}

// Count returns the exact total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Bucket returns the exact count of bucket i (0 on nil).
func (h *Histogram) Bucket(i int) uint64 {
	if h == nil {
		return 0
	}
	return h.buckets[i].Load()
}

// BucketUpperBound returns the inclusive upper bound of bucket i: 0 for
// bucket 0, 2^i - 1 for the middle buckets, and MaxUint64 (rendered
// +Inf) for the last.
func BucketUpperBound(i int) uint64 {
	switch {
	case i <= 0:
		return 0
	case i >= HistogramBuckets-1:
		return ^uint64(0)
	default:
		return 1<<uint(i) - 1
	}
}

// approxSum estimates the sum of all observations from bucket midpoints;
// see the type comment for the contract.
func (h *Histogram) approxSum() float64 {
	var sum float64
	for i := 1; i < HistogramBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		sum += float64(n) * 1.5 * float64(uint64(1)<<uint(i-1))
	}
	return sum
}
