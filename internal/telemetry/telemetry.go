// Package telemetry is the repository's stdlib-only metrics subsystem:
// a registry of named counters, gauges, and histograms with Prometheus
// text-format exposition and an expvar bridge, built so the ingest and
// query hot paths can be instrumented without allocating.
//
// The design has two halves with very different cost budgets:
//
//   - Updates (Counter.Add, Gauge.Set, Histogram.Observe) run on the hot
//     paths: each is a single atomic RMW on a cache-line-padded word, with
//     no locks, no maps, and no allocation. Every metric handle is
//     nil-safe — methods on a nil *Counter/*Gauge/*Histogram are no-ops —
//     so instrumented code reads identically whether or not a registry is
//     wired in, and a registry-disabled build pays only a predictable
//     nil-check branch per site.
//   - Registration and exposition (Registry.Counter, WriteProm, Expvar)
//     run at construction and scrape time: they take the registry lock,
//     allocate freely, and pre-render each series' exposition prefix so a
//     scrape is a walk over atomic loads.
//
// Registration is expected at construction time (a pipeline or server
// registers everything it will ever increment before serving traffic);
// misuse — an invalid metric name, a duplicate (name, labels) series, or
// re-registering a name under a different type or help string — panics,
// in the tradition of metrics registries, because it is a programming
// error no caller can meaningfully handle at runtime.
//
// All Registry methods are nil-receiver-safe: registering against a nil
// *Registry returns nil handles (whose updates are no-ops), which is how
// instrumentation is disabled wholesale.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric: one atomic word padded
// out to a cache line so hot counters updated by different cores do not
// false-share. The zero value is usable; registry-issued counters are
// preferred so the value is scrapable.
type Counter struct {
	v atomic.Uint64
	_ [56]byte
}

// Inc adds 1. A nil receiver is a no-op.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. A nil receiver is a no-op.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable signed metric, padded like Counter.
type Gauge struct {
	v atomic.Int64
	_ [56]byte
}

// Set stores v. A nil receiver is a no-op.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds n (which may be negative). A nil receiver is a no-op.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current gauge value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Label is one name="value" pair attached to a metric series.
type Label struct{ Key, Value string }

// L is shorthand for Label{Key: k, Value: v}.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// metricType is the exposition TYPE of a family.
type metricType uint8

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance of a family. Exactly one of c, g, h, fn
// is set; prefix is the pre-rendered exposition line head
// ("name" or "name{k=\"v\"}"), so a scrape concatenates bytes.
type series struct {
	labels string // rendered {...} part, "" when unlabeled; dedup key
	prefix string // family name + labels
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

// family is every series registered under one metric name.
type family struct {
	name   string
	help   string
	typ    metricType
	series []*series
}

// Registry holds an ordered set of metric families. The zero value is
// ready to use; a nil *Registry accepts every call and returns nil
// (no-op) metric handles, which is how telemetry is disabled.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family

	// scratch is the reused exposition buffer (guarded by mu).
	scratch []byte
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{byName: make(map[string]*family)} }

// Counter registers (or finds) the counter series (name, labels) and
// returns its handle. Panics on an invalid name or a conflicting
// registration; see the package comment.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.register(name, help, typeCounter, labels, &series{c: c})
	return c
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — the right shape when the count already exists as program
// state (an aggregate over shard counters, say) and mirroring it on the
// hot path would cost an extra atomic.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	if fn == nil {
		panic("telemetry: CounterFunc with nil fn")
	}
	r.register(name, help, typeCounter, labels, &series{fn: fn})
}

// Gauge registers (or finds) the gauge series (name, labels).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{}
	r.register(name, help, typeGauge, labels, &series{g: g})
	return g
}

// GaugeFunc registers a gauge series read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	if fn == nil {
		panic("telemetry: GaugeFunc with nil fn")
	}
	r.register(name, help, typeGauge, labels, &series{fn: fn})
}

// Histogram registers the histogram series (name, labels) and returns
// its handle. Buckets are fixed powers of two (see Histogram); for
// latency metrics the convention is a name ending in _duration_ns.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	h := &Histogram{}
	r.register(name, help, typeHistogram, labels, &series{h: h})
	return h
}

func (r *Registry) register(name, help string, typ metricType, labels []Label, s *series) {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	s.labels = renderLabels(labels)
	s.prefix = name + s.labels

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName == nil {
		r.byName = make(map[string]*family)
	}
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.fams = append(r.fams, f)
	} else {
		if f.typ != typ {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %s, was %s", name, typ, f.typ))
		}
		if f.help != help {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with different help", name))
		}
	}
	for _, prev := range f.series {
		if prev.labels == s.labels {
			panic(fmt.Sprintf("telemetry: duplicate series %s", s.prefix))
		}
	}
	f.series = append(f.series, s)
}

// validName reports whether name matches the Prometheus metric-name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// renderLabels renders a sorted, escaped {k="v",...} block ("" for no
// labels). Sorting makes the rendering canonical, so two registrations
// with the same label set in different order collide as duplicates
// instead of silently producing two series.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range ls {
		if !validLabelName(l.Key) {
			panic(fmt.Sprintf("telemetry: invalid label name %q", l.Key))
		}
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteString(`"`)
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabelValue escapes backslash, double quote, and newline per the
// exposition format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteByte(v[i])
		}
	}
	return sb.String()
}
