package stattest

import (
	"math"
	"testing"

	"ldp/internal/rng"
)

// TestTrialsMoments pins the summary against a distribution with known
// moments: Uniform[-1, 1] has mean 0 and variance 1/3.
func TestTrialsMoments(t *testing.T) {
	s := Trials(200_000, 42, func(r *rng.Rand) float64 {
		return rng.Uniform(r, -1, 1)
	})
	if err := s.unbiasedErr(0); err != nil {
		t.Errorf("uniform mean: %v", err)
	}
	if err := s.varianceErr(1.0/3, 0.02); err != nil {
		t.Errorf("uniform variance: %v", err)
	}
	if s.SE() <= 0 {
		t.Errorf("SE = %v, want > 0", s.SE())
	}
}

// TestChecksHaveTeeth verifies the harness actually rejects biased and
// over-noisy samplers — an acceptance test that passes everything would
// silently gut every suite built on it.
func TestChecksHaveTeeth(t *testing.T) {
	biased := Trials(50_000, 7, func(r *rng.Rand) float64 {
		return rng.Uniform(r, -1, 1) + 0.1 // bias far beyond 5 SE
	})
	if err := biased.unbiasedErr(0); err == nil {
		t.Error("unbiasedErr accepted a sampler with bias 0.1")
	}
	noisy := Trials(50_000, 8, func(r *rng.Rand) float64 {
		return 3 * rng.Uniform(r, -1, 1) // variance 3 = 9x the claimed 1/3
	})
	if err := noisy.varianceErr(1.0/3, 0.2); err == nil {
		t.Error("varianceErr accepted a sampler with 9x the claimed variance")
	}
	if err := noisy.varianceAtMostErr(1.0/3, 0.2); err == nil {
		t.Error("varianceAtMostErr accepted a sampler far above the bound")
	}
	if err := estimateErr(1.0, 0.0, 0.25, 10_000); err == nil {
		t.Error("estimateErr accepted an estimate 200 sigma from the truth")
	}
}

// TestCheckEstimateAcceptsWithinSigma covers the accept path with an
// exactly computable configuration.
func TestCheckEstimateAcceptsWithinSigma(t *testing.T) {
	// 4 sigma off with variance bound 1 over n=100: tol = 5*0.1 = 0.5.
	if err := estimateErr(0.4, 0, 1, 100); err != nil {
		t.Errorf("estimate 4 sigma from truth should pass: %v", err)
	}
	if err := estimateErr(0.6, 0, 1, 100); err == nil {
		t.Error("estimate 6 sigma from truth should fail")
	}
}

// TestTrialsDeterministic: same seed, same summary — the property that
// keeps the statistical suites from flaking.
func TestTrialsDeterministic(t *testing.T) {
	f := func(r *rng.Rand) float64 { return r.NormFloat64() }
	a, b := Trials(1000, 99, f), Trials(1000, 99, f)
	if a != b {
		t.Errorf("same seed produced different summaries: %+v vs %+v", a, b)
	}
	c := Trials(1000, 100, f)
	if a == c {
		t.Error("different seeds produced identical summaries")
	}
}

// TestTrialsPanicsOnTooFew documents the minimum-trials contract.
func TestTrialsPanicsOnTooFew(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Trials(1, ...) should panic")
		}
	}()
	Trials(1, 1, func(*rng.Rand) float64 { return 0 })
}

// TestVarNonNegative: catastrophic cancellation must never produce a
// negative variance.
func TestVarNonNegative(t *testing.T) {
	s := Trials(1000, 3, func(*rng.Rand) float64 { return 1e9 })
	if s.Var < 0 {
		t.Errorf("constant sampler variance = %v, want >= 0", s.Var)
	}
	if math.Abs(s.Mean-1e9) > 1e-3 {
		t.Errorf("constant sampler mean = %v", s.Mean)
	}
}
