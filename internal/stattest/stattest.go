// Package stattest is the statistical acceptance-test harness shared by
// the mechanism, estimator, and trainer test suites. Instead of loose
// hand-picked tolerances ("the estimate should be within 0.05"), tests
// assert the two properties the paper actually proves:
//
//   - unbiasedness: the empirical mean of many seeded trials must sit
//     within Z standard errors of the expected value, where the standard
//     error comes from the trials themselves (or from a supplied
//     closed-form per-report variance bound);
//   - variance: the empirical variance must match the paper's closed-form
//     expression within a stated relative factor, and must never exceed
//     the worst-case bound.
//
// Everything is deterministic for a fixed seed (trial i draws from stream
// (seed, i)), so a passing test stays passing; Z = 5 keeps the residual
// per-check false-positive probability below ~1e-6 even if a seed change
// redraws every sample.
package stattest

import (
	"fmt"
	"math"
	"testing"

	"ldp/internal/mech"
	"ldp/internal/rng"
)

// Z is the acceptance threshold in standard errors for the mean checks.
const Z = 5

// Summary holds the empirical moments of a seeded many-trial experiment.
type Summary struct {
	// N is the number of trials.
	N int
	// Mean is the empirical mean over the trials.
	Mean float64
	// Var is the unbiased sample variance over the trials.
	Var float64
}

// Trials runs f once per trial, each with an independent PRNG stream
// derived from (seed, trial index), and summarizes the outcomes.
func Trials(trials int, seed uint64, f func(r *rng.Rand) float64) Summary {
	if trials < 2 {
		panic("stattest: need at least 2 trials")
	}
	sum, sumSq := 0.0, 0.0
	for i := 0; i < trials; i++ {
		v := f(rng.NewStream(seed, uint64(i)))
		sum += v
		sumSq += v * v
	}
	n := float64(trials)
	mean := sum / n
	return Summary{
		N:    trials,
		Mean: mean,
		Var:  math.Max(0, (sumSq-n*mean*mean)/(n-1)),
	}
}

// SE returns the standard error of the empirical mean.
func (s Summary) SE() float64 { return math.Sqrt(s.Var / float64(s.N)) }

// unbiasedErr is the testable core of CheckUnbiased.
func (s Summary) unbiasedErr(want float64) error {
	tol := Z*s.SE() + 1e-12
	if diff := math.Abs(s.Mean - want); diff > tol {
		return fmt.Errorf("empirical mean %.6g differs from expected %.6g by %.3g > %d standard errors (%.3g)",
			s.Mean, want, diff, Z, tol)
	}
	return nil
}

// CheckUnbiased asserts that the empirical mean is within Z standard
// errors of want: the estimator-bias acceptance test.
func (s Summary) CheckUnbiased(tb testing.TB, name string, want float64) {
	tb.Helper()
	if err := s.unbiasedErr(want); err != nil {
		tb.Errorf("%s: %v", name, err)
	}
}

// varianceErr is the testable core of CheckVariance.
func (s Summary) varianceErr(want, rtol float64) error {
	if want < 0 || rtol <= 0 {
		return fmt.Errorf("bad bound %v / factor %v", want, rtol)
	}
	if s.Var < want*(1-rtol) || s.Var > want*(1+rtol) {
		return fmt.Errorf("empirical variance %.6g outside [%.6g, %.6g] (closed form %.6g, factor %g)",
			s.Var, want*(1-rtol), want*(1+rtol), want, rtol)
	}
	return nil
}

// CheckVariance asserts that the empirical variance matches the
// closed-form value want within the relative factor rtol.
func (s Summary) CheckVariance(tb testing.TB, name string, want, rtol float64) {
	tb.Helper()
	if err := s.varianceErr(want, rtol); err != nil {
		tb.Errorf("%s: %v", name, err)
	}
}

// varianceAtMostErr is the testable core of CheckVarianceAtMost.
func (s Summary) varianceAtMostErr(bound, rtol float64) error {
	if s.Var > bound*(1+rtol) {
		return fmt.Errorf("empirical variance %.6g exceeds worst-case bound %.6g by more than factor %g",
			s.Var, bound, 1+rtol)
	}
	return nil
}

// CheckVarianceAtMost asserts that the empirical variance does not exceed
// the closed-form worst-case bound by more than the relative factor rtol.
func (s Summary) CheckVarianceAtMost(tb testing.TB, name string, bound, rtol float64) {
	tb.Helper()
	if err := s.varianceAtMostErr(bound, rtol); err != nil {
		tb.Errorf("%s: %v", name, err)
	}
}

// estimateErr is the testable core of CheckEstimate.
func estimateErr(got, want, varBound float64, n int) error {
	if n < 1 || varBound < 0 {
		return fmt.Errorf("bad n %d / variance bound %v", n, varBound)
	}
	tol := Z*math.Sqrt(varBound/float64(n)) + 1e-12
	if diff := math.Abs(got - want); diff > tol {
		return fmt.Errorf("estimate %.6g differs from %.6g by %.3g > %d sigma (%.3g) for n=%d, per-report variance bound %.4g",
			got, want, diff, Z, tol, n, varBound)
	}
	return nil
}

// CheckEstimate asserts that an estimate built by averaging n unbiased
// reports with per-report variance at most varBound is within Z standard
// deviations of want — the principled form of "the mean estimate should
// be close to the truth".
func CheckEstimate(tb testing.TB, name string, got, want, varBound float64, n int) {
	tb.Helper()
	if err := estimateErr(got, want, varBound, n); err != nil {
		tb.Errorf("%s: %v", name, err)
	}
}

// CheckMechanism runs the full acceptance suite on a 1-D mechanism: at
// every probe input the perturbed output must be unbiased, its empirical
// variance must match the closed-form Variance(t) within rtol, and
// neither the closed form nor the samples may exceed WorstCaseVariance.
func CheckMechanism(tb testing.TB, m mech.Mechanism, inputs []float64, trials int, seed uint64, rtol float64) {
	tb.Helper()
	wc := m.WorstCaseVariance()
	for i, t := range inputs {
		s := Trials(trials, seed+uint64(i)*0x9e3779b9, func(r *rng.Rand) float64 {
			return m.Perturb(t, r)
		})
		name := fmt.Sprintf("%s(eps=%g) at t=%g", m.Name(), m.Epsilon(), t)
		s.CheckUnbiased(tb, name, t)
		s.CheckVariance(tb, name, m.Variance(t), rtol)
		s.CheckVarianceAtMost(tb, name, wc, rtol)
		if m.Variance(t) > wc*(1+1e-9) {
			tb.Errorf("%s: closed-form Variance(t)=%.6g exceeds WorstCaseVariance()=%.6g", name, m.Variance(t), wc)
		}
	}
}

// CheckVectorPerturber runs the acceptance suite on one coordinate of a
// d-dimensional perturber (Algorithm 4 collectors, Duchi's Algorithm 3,
// the composition baseline): coordinate coord of the dense output must be
// unbiased for input[coord], with empirical variance matching coordVar
// (the closed-form per-coordinate variance at that value) within rtol.
func CheckVectorPerturber(tb testing.TB, p mech.VectorPerturber, input []float64, coord int, coordVar float64, trials int, seed uint64, rtol float64) {
	tb.Helper()
	s := Trials(trials, seed, func(r *rng.Rand) float64 {
		return p.PerturbVector(input, r)[coord]
	})
	name := fmt.Sprintf("%s(eps=%g, d=%d) coord %d", p.Name(), p.Epsilon(), p.Dim(), coord)
	s.CheckUnbiased(tb, name, input[coord])
	s.CheckVariance(tb, name, coordVar, rtol)
}
