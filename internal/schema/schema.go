// Package schema describes the shape of user records collected under local
// differential privacy: an ordered list of attributes, each either numeric
// with domain [-1, 1] or categorical with a finite value domain
// {0, ..., Cardinality-1}.
//
// The schema is shared knowledge between users and the aggregator (Section
// II of the paper assumes the aggregator knows attribute domains); it is the
// contract that the perturbation mechanisms, the wire format, and the
// estimators all agree on.
package schema

import (
	"fmt"
)

// Kind distinguishes numeric from categorical attributes.
type Kind int

const (
	// Numeric attributes take values in the continuous domain [-1, 1].
	Numeric Kind = iota
	// Categorical attributes take values in {0, ..., Cardinality-1}.
	Categorical
)

// String returns a human-readable kind name.
func (k Kind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Categorical:
		return "categorical"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Attribute is one column of a user record.
type Attribute struct {
	// Name identifies the attribute in reports and output tables.
	Name string
	// Kind is Numeric or Categorical.
	Kind Kind
	// Cardinality is the number of distinct values of a categorical
	// attribute; it is ignored for numeric attributes.
	Cardinality int
}

// Schema is an ordered list of attributes. The zero value is an empty
// schema.
type Schema struct {
	Attrs []Attribute
}

// New constructs a schema from the given attributes and validates it.
func New(attrs ...Attribute) (*Schema, error) {
	s := &Schema{Attrs: attrs}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dim returns the number of attributes d.
func (s *Schema) Dim() int { return len(s.Attrs) }

// Validate checks the schema for structural errors: empty schemas, blank or
// duplicate names, and categorical attributes with cardinality below 2.
func (s *Schema) Validate() error {
	if len(s.Attrs) == 0 {
		return fmt.Errorf("schema: no attributes")
	}
	seen := make(map[string]bool, len(s.Attrs))
	for i, a := range s.Attrs {
		if a.Name == "" {
			return fmt.Errorf("schema: attribute %d has empty name", i)
		}
		if seen[a.Name] {
			return fmt.Errorf("schema: duplicate attribute name %q", a.Name)
		}
		seen[a.Name] = true
		switch a.Kind {
		case Numeric:
		case Categorical:
			if a.Cardinality < 2 {
				return fmt.Errorf("schema: categorical attribute %q needs cardinality >= 2, got %d", a.Name, a.Cardinality)
			}
		default:
			return fmt.Errorf("schema: attribute %q has unknown kind %d", a.Name, int(a.Kind))
		}
	}
	return nil
}

// NumericIdx returns the indices of the numeric attributes, in order.
func (s *Schema) NumericIdx() []int {
	var idx []int
	for i, a := range s.Attrs {
		if a.Kind == Numeric {
			idx = append(idx, i)
		}
	}
	return idx
}

// CategoricalIdx returns the indices of the categorical attributes, in order.
func (s *Schema) CategoricalIdx() []int {
	var idx []int
	for i, a := range s.Attrs {
		if a.Kind == Categorical {
			idx = append(idx, i)
		}
	}
	return idx
}

// OneHotDim returns the dimensionality after the ERM one-hot encoding of
// Section VI-B: each numeric attribute contributes 1 and each categorical
// attribute with cardinality c contributes c-1 binary attributes.
func (s *Schema) OneHotDim() int {
	d := 0
	for _, a := range s.Attrs {
		if a.Kind == Numeric {
			d++
		} else {
			d += a.Cardinality - 1
		}
	}
	return d
}

// Tuple is a single user's record under a schema. Both slices have length
// Dim(); Num[i] is meaningful when attribute i is numeric (value in [-1,1]),
// and Cat[i] when it is categorical (value in {0..Cardinality-1}).
type Tuple struct {
	Num []float64
	Cat []int
}

// NewTuple allocates an all-zero tuple for schema s.
func NewTuple(s *Schema) Tuple {
	return Tuple{Num: make([]float64, s.Dim()), Cat: make([]int, s.Dim())}
}

// Check verifies that t is well-formed for schema s: slice lengths match,
// numeric values lie in [-1, 1], and categorical values are in range.
func (t Tuple) Check(s *Schema) error {
	if len(t.Num) != s.Dim() || len(t.Cat) != s.Dim() {
		return fmt.Errorf("schema: tuple has %d/%d slots, schema has %d", len(t.Num), len(t.Cat), s.Dim())
	}
	for i, a := range s.Attrs {
		switch a.Kind {
		case Numeric:
			if v := t.Num[i]; v < -1 || v > 1 {
				return fmt.Errorf("schema: attribute %q value %v outside [-1,1]", a.Name, v)
			}
		case Categorical:
			if v := t.Cat[i]; v < 0 || v >= a.Cardinality {
				return fmt.Errorf("schema: attribute %q value %d outside [0,%d)", a.Name, v, a.Cardinality)
			}
		}
	}
	return nil
}
