package schema

import (
	"strings"
	"testing"
)

func validSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := New(
		Attribute{Name: "x", Kind: Numeric},
		Attribute{Name: "y", Kind: Numeric},
		Attribute{Name: "c", Kind: Categorical, Cardinality: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValid(t *testing.T) {
	s := validSchema(t)
	if s.Dim() != 3 {
		t.Errorf("Dim = %d", s.Dim())
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string][]Attribute{
		"empty":         {},
		"blank name":    {{Name: "", Kind: Numeric}},
		"duplicate":     {{Name: "a", Kind: Numeric}, {Name: "a", Kind: Numeric}},
		"cardinality 1": {{Name: "c", Kind: Categorical, Cardinality: 1}},
		"cardinality 0": {{Name: "c", Kind: Categorical}},
		"unknown kind":  {{Name: "c", Kind: Kind(9)}},
	}
	for name, attrs := range cases {
		if _, err := New(attrs...); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestKindString(t *testing.T) {
	if Numeric.String() != "numeric" || Categorical.String() != "categorical" {
		t.Error("kind names wrong")
	}
	if !strings.Contains(Kind(7).String(), "7") {
		t.Error("unknown kind should include its value")
	}
}

func TestIndexHelpers(t *testing.T) {
	s := validSchema(t)
	num, cat := s.NumericIdx(), s.CategoricalIdx()
	if len(num) != 2 || num[0] != 0 || num[1] != 1 {
		t.Errorf("NumericIdx = %v", num)
	}
	if len(cat) != 1 || cat[0] != 2 {
		t.Errorf("CategoricalIdx = %v", cat)
	}
}

func TestOneHotDim(t *testing.T) {
	s := validSchema(t)
	// 2 numeric + (4-1) binaries.
	if got := s.OneHotDim(); got != 5 {
		t.Errorf("OneHotDim = %d, want 5", got)
	}
}

func TestTupleCheck(t *testing.T) {
	s := validSchema(t)
	good := NewTuple(s)
	good.Num[0], good.Cat[2] = 0.5, 3
	if err := good.Check(s); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}

	outOfDomain := NewTuple(s)
	outOfDomain.Num[1] = 1.5
	if err := outOfDomain.Check(s); err == nil {
		t.Error("numeric out of [-1,1] accepted")
	}

	outOfRange := NewTuple(s)
	outOfRange.Cat[2] = 4
	if err := outOfRange.Check(s); err == nil {
		t.Error("categorical out of range accepted")
	}

	negative := NewTuple(s)
	negative.Cat[2] = -1
	if err := negative.Check(s); err == nil {
		t.Error("negative categorical accepted")
	}

	short := Tuple{Num: []float64{0}, Cat: []int{0}}
	if err := short.Check(s); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestTupleBoundaryValues(t *testing.T) {
	s := validSchema(t)
	tup := NewTuple(s)
	tup.Num[0], tup.Num[1] = -1, 1
	tup.Cat[2] = 0
	if err := tup.Check(s); err != nil {
		t.Errorf("boundary values rejected: %v", err)
	}
}
