// Package dataset provides the workloads of the paper's Section VI:
//
//   - synthetic census populations shaped like the IPUMS BR and MX
//     extracts the paper uses (the real extracts are not redistributable;
//     see DESIGN.md for the substitution argument): BR has 16 attributes
//     (6 numeric + 10 categorical), MX has 19 (5 numeric + 14
//     categorical), and after the Section VI-B one-hot encoding their ERM
//     dimensionalities are 90 and 94, exactly as in the paper;
//   - the purely numeric synthetic sources of Figures 5 and 6: truncated
//     Gaussian N(mu, 1/16), uniform on [-1,1], and the power law
//     ~ c(x+2)^{-10};
//   - the ERM encoding (one-hot categorical expansion, income as the
//     dependent variable) and CSV import/export.
//
// Generation is deterministic: each user's record is a pure function of a
// caller-supplied PRNG, so harness code derives one rng stream per user and
// results are independent of goroutine scheduling.
package dataset

import (
	"math"
	"sync"

	"ldp/internal/rng"
	"ldp/internal/schema"
)

// Source is a purely numeric tuple generator with values in [-1, 1]^d
// (Figures 5 and 6 workloads).
type Source struct {
	name string
	d    int
	fill func(dst []float64, r *rng.Rand)
}

// Name returns the source identifier.
func (s *Source) Name() string { return s.name }

// Dim returns the tuple dimensionality.
func (s *Source) Dim() int { return s.d }

// Fill writes one tuple into dst (length Dim()).
func (s *Source) Fill(dst []float64, r *rng.Rand) { s.fill(dst, r) }

// NewGaussianSource returns a d-dimensional source whose coordinates are
// i.i.d. N(mu, 1/16) truncated to [-1, 1] (the Figure 5 workload; the
// paper's text says standard deviation 1/4).
func NewGaussianSource(d int, mu float64) *Source {
	return &Source{
		name: "gaussian",
		d:    d,
		fill: func(dst []float64, r *rng.Rand) {
			for i := range dst {
				dst[i] = rng.TruncGauss(r, mu, 0.25, -1, 1)
			}
		},
	}
}

// NewUniformSource returns a d-dimensional source uniform on [-1, 1]^d
// (Figure 6a).
func NewUniformSource(d int) *Source {
	return &Source{
		name: "uniform",
		d:    d,
		fill: func(dst []float64, r *rng.Rand) {
			for i := range dst {
				dst[i] = rng.Uniform(r, -1, 1)
			}
		},
	}
}

// NewPowerLawSource returns a d-dimensional source with i.i.d. coordinates
// from the density proportional to (x+2)^{-10} on [-1, 1] (Figure 6b).
func NewPowerLawSource(d int) *Source {
	return &Source{
		name: "powerlaw",
		d:    d,
		fill: func(dst []float64, r *rng.Rand) {
			for i := range dst {
				dst[i] = rng.PowerLaw(r)
			}
		},
	}
}

// catSpec describes one categorical attribute of a census: skewed base
// weights over its values and a tilt coefficient coupling it to the
// latent socioeconomic factor (so attributes are mutually correlated, as
// in real census data).
type catSpec struct {
	name    string
	weights []float64
	zTilt   float64
}

// Census is a synthetic census population generator over a mixed schema.
type Census struct {
	name  string
	sch   *schema.Schema
	cats  []catSpec // aligned with the categorical attributes, in order
	nNum  int
	incAt int // index of the income attribute in the schema

	thresholdOnce sync.Once
	threshold     float64 // classification threshold for income (median)
}

// Name returns "br" or "mx".
func (c *Census) Name() string { return c.name }

// Schema returns the census schema.
func (c *Census) Schema() *schema.Schema { return c.sch }

// IncomeAttr returns the schema index of the income attribute (the ERM
// dependent variable).
func (c *Census) IncomeAttr() int { return c.incAt }

func uniformWeights(k int) []float64 {
	w := make([]float64, k)
	for i := range w {
		w[i] = 1
	}
	return w
}

// zipfWeights returns weights proportional to 1/(i+1)^s — a skewed
// popularity profile typical of census categoricals (region, language...).
func zipfWeights(k int, s float64) []float64 {
	w := make([]float64, k)
	for i := range w {
		w[i] = math.Pow(float64(i+1), -s)
	}
	return w
}

// NewBR returns the BR-like census: 16 attributes, 6 numeric and 10
// categorical; one-hot ERM dimensionality 90 (5 numeric features + 85
// binaries), matching the paper's BR extract.
func NewBR() *Census {
	cats := []catSpec{
		{"gender", uniformWeights(2), 0},
		{"marital", []float64{5, 4, 1.5, 1, 0.5}, 0.2},
		{"region", zipfWeights(27, 1.1), 0},
		{"education", zipfWeights(11, 0.8), 0.9},
		{"employment", []float64{6, 2, 1, 1, 0.6, 0.3, 0.2}, 0.6},
		{"religion", zipfWeights(8, 1.4), 0},
		{"urban", []float64{8, 2}, 0.3},
		{"ownership", []float64{7, 2.5, 1}, 0.4},
		{"language", zipfWeights(10, 2.0), 0},
		{"occupation", zipfWeights(20, 0.9), 0.7},
	}
	return newCensus("br", 6, cats)
}

// NewMX returns the MX-like census: 19 attributes, 5 numeric and 14
// categorical; one-hot ERM dimensionality 94 (4 numeric features + 90
// binaries), matching the paper's MX extract.
func NewMX() *Census {
	cats := []catSpec{
		{"gender", uniformWeights(2), 0},
		{"marital", []float64{5, 4, 1.5, 1, 0.5}, 0.2},
		{"state", zipfWeights(32, 1.0), 0},
		{"literacy", []float64{9, 1}, 0.8},
		{"education", zipfWeights(11, 0.8), 0.9},
		{"employment", []float64{6, 2, 1, 1, 0.6, 0.3, 0.2}, 0.6},
		{"religion", zipfWeights(6, 1.6), 0},
		{"indigenous", []float64{8.5, 1.5}, -0.4},
		{"urban", []float64{7.5, 2.5}, 0.3},
		{"ownership", []float64{7, 2.5, 1}, 0.4},
		{"occupation", zipfWeights(15, 0.9), 0.7},
		{"industry", zipfWeights(10, 0.8), 0.5},
		{"disability", []float64{9.3, 0.7}, -0.2},
		{"migrant", zipfWeights(5, 1.8), 0.1},
	}
	return newCensus("mx", 5, cats)
}

// numericNames are the numeric attribute names shared by both censuses;
// BR additionally has "children". Income is attribute index 1.
var numericNames = []string{"age", "income", "hours", "eduyears", "famsize", "children"}

func newCensus(name string, nNum int, cats []catSpec) *Census {
	attrs := make([]schema.Attribute, 0, nNum+len(cats))
	for i := 0; i < nNum; i++ {
		attrs = append(attrs, schema.Attribute{Name: numericNames[i], Kind: schema.Numeric})
	}
	for _, cs := range cats {
		attrs = append(attrs, schema.Attribute{
			Name:        cs.name,
			Kind:        schema.Categorical,
			Cardinality: len(cs.weights),
		})
	}
	sch, err := schema.New(attrs...)
	if err != nil {
		// The specs above are static; a failure here is a programming
		// error, not an input error.
		panic("dataset: invalid built-in census schema: " + err.Error())
	}
	return &Census{name: name, sch: sch, cats: cats, nNum: nNum, incAt: 1}
}

// sampleCat draws a categorical value with the spec's weights tilted by the
// user's latent factor z: w_i' = w_i * exp(zTilt * z * i / k).
func sampleCat(spec catSpec, z float64, r *rng.Rand) int {
	k := len(spec.weights)
	if spec.zTilt == 0 {
		return sampleWeights(spec.weights, r)
	}
	w := make([]float64, k)
	for i := range w {
		w[i] = spec.weights[i] * math.Exp(spec.zTilt*z*float64(i)/float64(k))
	}
	return sampleWeights(w, r)
}

func sampleWeights(w []float64, r *rng.Rand) int {
	total := 0.0
	for _, x := range w {
		total += x
	}
	u := r.Float64() * total
	acc := 0.0
	for i, x := range w {
		acc += x
		if u < acc {
			return i
		}
	}
	return len(w) - 1
}

// incomeMax is the fixed normalization cap for raw income (in the
// generator's abstract currency units); values above it clip to 1 after
// normalization, mimicking the paper's domain normalization.
const incomeMax = 60000.0

// Tuple generates one user record from the caller's PRNG stream.
//
// A latent socioeconomic factor z couples education, employment, hours and
// income, so the ERM tasks have learnable signal; raw income is log-normal
// (heavy tailed), which after normalization concentrates most values at
// small magnitudes — the regime where PM/HM shine (Section III-B).
func (c *Census) Tuple(r *rng.Rand) schema.Tuple {
	t := schema.NewTuple(c.sch)
	z := r.NormFloat64()

	ageYears := rng.TruncGauss(r, 38, 15, 16, 95)
	eduYears := rng.TruncGauss(r, 9+2.2*z, 2.5, 0, 18)
	hours := rng.TruncGauss(r, 38+3*z, 10, 0, 90)
	famsize := rng.TruncGauss(r, 4-0.5*z, 1.6, 1, 12)
	logInc := 7.2 + 0.55*z + 0.09*eduYears + 0.016*ageYears -
		0.00021*(ageYears-47)*(ageYears-47) + 0.45*r.NormFloat64()
	income := math.Exp(logInc)

	// Normalize to [-1, 1].
	t.Num[0] = mathClamp(2*(ageYears-16)/(95-16)-1, -1, 1)
	t.Num[1] = mathClamp(2*income/incomeMax-1, -1, 1)
	t.Num[2] = mathClamp(2*hours/90-1, -1, 1)
	t.Num[3] = mathClamp(2*eduYears/18-1, -1, 1)
	t.Num[4] = mathClamp(2*(famsize-1)/11-1, -1, 1)
	if c.nNum > 5 {
		children := rng.TruncGauss(r, 1.6-0.3*z, 1.4, 0, 10)
		t.Num[5] = mathClamp(2*children/10-1, -1, 1)
	}

	for i, spec := range c.cats {
		t.Cat[c.nNum+i] = sampleCat(spec, z, r)
	}
	return t
}

func mathClamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// IncomeThreshold returns the population median of the normalized income
// attribute, used to binarize income for the classification tasks
// (Section VI-B maps incomes above the mean to 1; the generator's median is
// a more robust cut for a heavy-tailed attribute and keeps classes
// balanced). The value is estimated once from 200k records under a fixed
// seed and cached.
func (c *Census) IncomeThreshold() float64 {
	c.thresholdOnce.Do(func() {
		const n = 200000
		vals := make([]float64, n)
		for i := range vals {
			r := rng.NewStream(0xC0FFEE, uint64(i))
			vals[i] = c.Tuple(r).Num[c.incAt]
		}
		c.threshold = quickMedian(vals)
	})
	return c.threshold
}

// quickMedian computes the median via Hoare-partition quickselect (the
// input is scratch and may be reordered).
func quickMedian(xs []float64) float64 {
	k := len(xs) / 2
	lo, hi := 0, len(xs)-1
	for lo < hi {
		j := partition(xs, lo, hi)
		if k <= j {
			hi = j
		} else {
			lo = j + 1
		}
	}
	return xs[k]
}

// partition is the canonical Hoare partition: after it returns j, every
// element of xs[lo..j] is <= every element of xs[j+1..hi].
func partition(xs []float64, lo, hi int) int {
	pivot := xs[lo+(hi-lo)/2]
	i, j := lo-1, hi+1
	for {
		for {
			i++
			if xs[i] >= pivot {
				break
			}
		}
		for {
			j--
			if xs[j] <= pivot {
				break
			}
		}
		if i >= j {
			return j
		}
		xs[i], xs[j] = xs[j], xs[i]
	}
}
