package dataset

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"

	"ldp/internal/rng"
	"ldp/internal/stats"
)

func TestSourcesStayInDomain(t *testing.T) {
	sources := []*Source{
		NewGaussianSource(16, 0.5),
		NewUniformSource(16),
		NewPowerLawSource(16),
	}
	r := rng.New(1)
	buf := make([]float64, 16)
	for _, s := range sources {
		if s.Dim() != 16 {
			t.Errorf("%s: Dim = %d", s.Name(), s.Dim())
		}
		for i := 0; i < 2000; i++ {
			s.Fill(buf, r)
			for _, v := range buf {
				if v < -1 || v > 1 {
					t.Fatalf("%s: value %v outside [-1,1]", s.Name(), v)
				}
			}
		}
	}
}

func TestGaussianSourceMean(t *testing.T) {
	s := NewGaussianSource(4, 1.0/3)
	r := rng.New(2)
	buf := make([]float64, 4)
	var acc stats.Running
	for i := 0; i < 100000; i++ {
		s.Fill(buf, r)
		acc.Add(buf[0])
	}
	// Truncation pulls the mean slightly toward 0; just check closeness.
	if math.Abs(acc.Mean()-1.0/3) > 0.01 {
		t.Errorf("mean = %v, want ~1/3", acc.Mean())
	}
}

func TestCensusSchemas(t *testing.T) {
	br, mx := NewBR(), NewMX()
	if got := br.Schema().Dim(); got != 16 {
		t.Errorf("BR dim = %d, want 16", got)
	}
	if got := len(br.Schema().NumericIdx()); got != 6 {
		t.Errorf("BR numeric attrs = %d, want 6", got)
	}
	if got := len(br.Schema().CategoricalIdx()); got != 10 {
		t.Errorf("BR categorical attrs = %d, want 10", got)
	}
	if got := mx.Schema().Dim(); got != 19 {
		t.Errorf("MX dim = %d, want 19", got)
	}
	if got := len(mx.Schema().NumericIdx()); got != 5 {
		t.Errorf("MX numeric attrs = %d, want 5", got)
	}
	if got := len(mx.Schema().CategoricalIdx()); got != 14 {
		t.Errorf("MX categorical attrs = %d, want 14", got)
	}
}

func TestERMDimsMatchPaper(t *testing.T) {
	// Section VI-B: after one-hot encoding BR has d=90, MX has d=94.
	if got := NewBR().ERMDim(); got != 90 {
		t.Errorf("BR ERM dim = %d, want 90", got)
	}
	if got := NewMX().ERMDim(); got != 94 {
		t.Errorf("MX ERM dim = %d, want 94", got)
	}
}

func TestCensusTuplesValid(t *testing.T) {
	for _, c := range []*Census{NewBR(), NewMX()} {
		for i := 0; i < 5000; i++ {
			r := rng.NewStream(7, uint64(i))
			tup := c.Tuple(r)
			if err := tup.Check(c.Schema()); err != nil {
				t.Fatalf("%s user %d: %v", c.Name(), i, err)
			}
		}
	}
}

func TestCensusDeterministic(t *testing.T) {
	c := NewBR()
	a := c.Tuple(rng.NewStream(3, 42))
	b := c.Tuple(rng.NewStream(3, 42))
	for i := range a.Num {
		if a.Num[i] != b.Num[i] || a.Cat[i] != b.Cat[i] {
			t.Fatal("same stream must give identical tuples")
		}
	}
}

func TestCensusIncomeSkewedSmall(t *testing.T) {
	// The normalized income should be concentrated at small magnitudes
	// (log-normal raw incomes far below the cap) — the regime the paper
	// highlights for PM/HM.
	c := NewBR()
	var vals []float64
	for i := 0; i < 20000; i++ {
		vals = append(vals, c.Tuple(rng.NewStream(11, uint64(i))).Num[c.IncomeAttr()])
	}
	sort.Float64s(vals)
	med := vals[len(vals)/2]
	if med > -0.2 {
		t.Errorf("income median = %v, expected well below 0 (skewed)", med)
	}
	// But the attribute must not be constant: some earners approach 1.
	if vals[len(vals)-1] < 0.5 {
		t.Errorf("max income = %v, expected a heavy upper tail", vals[len(vals)-1])
	}
}

func TestCensusCorrelationEducationIncome(t *testing.T) {
	// The latent factor must couple education and income (needed for the
	// ERM tasks to be learnable).
	c := NewBR()
	var edu, inc []float64
	for i := 0; i < 20000; i++ {
		tup := c.Tuple(rng.NewStream(13, uint64(i)))
		edu = append(edu, tup.Num[3])
		inc = append(inc, tup.Num[1])
	}
	if corr := pearson(edu, inc); corr < 0.2 {
		t.Errorf("education-income correlation = %v, want > 0.2", corr)
	}
}

func pearson(a, b []float64) float64 {
	ma, mb := stats.Mean(a), stats.Mean(b)
	var num, va, vb float64
	for i := range a {
		num += (a[i] - ma) * (b[i] - mb)
		va += (a[i] - ma) * (a[i] - ma)
		vb += (b[i] - mb) * (b[i] - mb)
	}
	return num / math.Sqrt(va*vb)
}

func TestIncomeThresholdBalancesClasses(t *testing.T) {
	for _, c := range []*Census{NewBR(), NewMX()} {
		pos := 0
		const n = 20000
		for i := 0; i < n; i++ {
			ex := c.EncodeERM(c.Tuple(rng.NewStream(17, uint64(i))))
			if ex.YCls > 0 {
				pos++
			}
		}
		frac := float64(pos) / n
		if frac < 0.4 || frac > 0.6 {
			t.Errorf("%s: positive class fraction = %v, want ~0.5", c.Name(), frac)
		}
	}
}

func TestIncomeThresholdCached(t *testing.T) {
	c := NewBR()
	a := c.IncomeThreshold()
	b := c.IncomeThreshold()
	if a != b {
		t.Error("threshold must be cached and stable")
	}
	if a <= -1 || a >= 1 {
		t.Errorf("threshold %v outside (-1,1)", a)
	}
}

func TestEncodeERMShape(t *testing.T) {
	c := NewMX()
	ex := c.EncodeERM(c.Tuple(rng.NewStream(19, 0)))
	if len(ex.X) != c.ERMDim() {
		t.Fatalf("len(X) = %d, want %d", len(ex.X), c.ERMDim())
	}
	for _, v := range ex.X {
		if v < -1 || v > 1 {
			t.Fatalf("feature %v outside [-1,1]", v)
		}
	}
	if ex.YCls != 1 && ex.YCls != -1 {
		t.Fatalf("YCls = %v", ex.YCls)
	}
	if ex.YReg < -1 || ex.YReg > 1 {
		t.Fatalf("YReg = %v", ex.YReg)
	}
}

func TestEncodeERMOneHotInvariant(t *testing.T) {
	// Each categorical block has at most one bit set, and the last value
	// maps to the all-zero block.
	c := NewBR()
	tup := c.Tuple(rng.NewStream(23, 5))
	// Force a known categorical value: attribute "gender" (index 6), k=2,
	// so its block is a single binary feature at x index 5 (after the 5
	// non-income numeric features).
	tup.Cat[6] = 1 // last value -> reference level, bit must be 0
	if got := c.EncodeERM(tup).X[5]; got != 0 {
		t.Errorf("reference level bit = %v, want 0", got)
	}
	tup.Cat[6] = 0
	if got := c.EncodeERM(tup).X[5]; got != 1 {
		t.Errorf("first level bit = %v, want 1", got)
	}
}

func TestERMExamplesDeterministic(t *testing.T) {
	c := NewBR()
	a := c.ERMExamples(50, 99)
	b := c.ERMExamples(50, 99)
	for i := range a {
		if a[i].YReg != b[i].YReg || a[i].YCls != b[i].YCls {
			t.Fatal("ERMExamples must be deterministic in the seed")
		}
	}
}

func TestQuickMedian(t *testing.T) {
	cases := [][]float64{
		{3},
		{2, 1},
		{5, 1, 4, 2, 3},
		{1, 1, 1, 1},
		{-2, 7, 0, 7, -5, 3, 3},
	}
	for _, xs := range cases {
		cp := append([]float64(nil), xs...)
		got := quickMedian(cp)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		want := sorted[len(sorted)/2]
		if got != want {
			t.Errorf("quickMedian(%v) = %v, want %v", xs, got, want)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	c := NewBR()
	var buf bytes.Buffer
	const n = 200
	if err := WriteCSV(&buf, c, n, 31); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, c.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("read %d tuples, want %d", len(got), n)
	}
	want := c.Tuple(rng.NewStream(31, 0))
	for j := range want.Num {
		if math.Abs(got[0].Num[j]-want.Num[j]) > 1e-6 || got[0].Cat[j] != want.Cat[j] {
			t.Fatalf("tuple 0 attr %d: got (%v,%d), want (%v,%d)",
				j, got[0].Num[j], got[0].Cat[j], want.Num[j], want.Cat[j])
		}
	}
}

func TestReadCSVRejectsBadInput(t *testing.T) {
	c := NewBR()
	s := c.Schema()
	if _, err := ReadCSV(strings.NewReader(""), s); err == nil {
		t.Error("empty input should error")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n"), s); err == nil {
		t.Error("wrong column count should error")
	}
	// Correct header but a bad numeric cell.
	var buf bytes.Buffer
	if err := WriteCSV(&buf, c, 1, 1); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(buf.String(), "\n", 2)
	bad := lines[0] + "\n" + strings.Replace(lines[1], ",", ",not-a-number", 1)
	_ = bad
	badRow := lines[0] + "\nx" + lines[1][1:]
	if _, err := ReadCSV(strings.NewReader(badRow), s); err == nil {
		t.Error("malformed numeric cell should error")
	}
	// Out-of-domain value.
	cols := make([]string, s.Dim())
	for i := range cols {
		cols[i] = "0"
	}
	cols[0] = "7" // numeric out of [-1,1]
	rec := lines[0] + "\n" + strings.Join(cols, ",") + "\n"
	if _, err := ReadCSV(strings.NewReader(rec), s); err == nil {
		t.Error("out-of-domain value should error")
	}
	// Header name mismatch.
	hdr := strings.Replace(lines[0], "age", "AGE", 1)
	if _, err := ReadCSV(strings.NewReader(hdr+"\n"), s); err == nil {
		t.Error("header mismatch should error")
	}
}

func TestZipfWeightsSkewed(t *testing.T) {
	w := zipfWeights(5, 1.0)
	for i := 1; i < len(w); i++ {
		if w[i] >= w[i-1] {
			t.Errorf("weights not decreasing: %v", w)
		}
	}
}
