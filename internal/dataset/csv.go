package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"ldp/internal/rng"
	"ldp/internal/schema"
)

// WriteCSV writes n census records (with a header row) to w, generated
// deterministically from seed. Numeric attributes are written as decimal
// floats in [-1, 1], categorical attributes as value indices.
func WriteCSV(w io.Writer, c *Census, n int, seed uint64) error {
	cw := csv.NewWriter(w)
	header := make([]string, c.sch.Dim())
	for i, a := range c.sch.Attrs {
		header[i] = a.Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	row := make([]string, c.sch.Dim())
	for i := 0; i < n; i++ {
		t := c.Tuple(rng.NewStream(seed, uint64(i)))
		for j, a := range c.sch.Attrs {
			if a.Kind == schema.Numeric {
				row[j] = strconv.FormatFloat(t.Num[j], 'g', 9, 64)
			} else {
				row[j] = strconv.Itoa(t.Cat[j])
			}
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses records written by WriteCSV against the given schema. The
// header row must match the schema's attribute names in order.
func ReadCSV(r io.Reader, s *schema.Schema) ([]schema.Tuple, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	if len(header) != s.Dim() {
		return nil, fmt.Errorf("dataset: header has %d columns, schema has %d", len(header), s.Dim())
	}
	for i, name := range header {
		if s.Attrs[i].Name != name {
			return nil, fmt.Errorf("dataset: column %d is %q, schema expects %q", i, name, s.Attrs[i].Name)
		}
	}
	var out []schema.Tuple
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		t := schema.NewTuple(s)
		for j, a := range s.Attrs {
			if a.Kind == schema.Numeric {
				v, err := strconv.ParseFloat(row[j], 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: line %d column %q: %w", line, a.Name, err)
				}
				t.Num[j] = v
			} else {
				v, err := strconv.Atoi(row[j])
				if err != nil {
					return nil, fmt.Errorf("dataset: line %d column %q: %w", line, a.Name, err)
				}
				t.Cat[j] = v
			}
		}
		if err := t.Check(s); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		out = append(out, t)
	}
}
