package dataset

import (
	"ldp/internal/rng"
	"ldp/internal/schema"
)

// ERMExample is one training example for the empirical-risk-minimization
// tasks of Section V: a feature vector X in [-1, 1]^d, the regression
// target YReg in [-1, 1] (normalized income), and the classification label
// YCls in {-1, +1} (income above/below the population median).
type ERMExample struct {
	X    []float64
	YReg float64
	YCls float64
}

// ERMDim returns the encoded feature dimensionality of the census: every
// numeric attribute except income contributes one feature, and every
// categorical attribute with cardinality c contributes c-1 binary features
// (the Section VI-B encoding). For BR this is 90, for MX 94.
func (c *Census) ERMDim() int {
	d := 0
	for i, a := range c.sch.Attrs {
		if i == c.incAt {
			continue
		}
		if a.Kind == schema.Numeric {
			d++
		} else {
			d += a.Cardinality - 1
		}
	}
	return d
}

// EncodeERM converts a census tuple into an ERM example. The l-th value
// (l < cardinality-1) of a categorical attribute sets the l-th of its
// binary features to 1; the last value sets none (reference level).
func (c *Census) EncodeERM(t schema.Tuple) ERMExample {
	x := make([]float64, 0, c.ERMDim())
	for i, a := range c.sch.Attrs {
		if i == c.incAt {
			continue
		}
		if a.Kind == schema.Numeric {
			x = append(x, t.Num[i])
			continue
		}
		bits := make([]float64, a.Cardinality-1)
		if v := t.Cat[i]; v < a.Cardinality-1 {
			bits[v] = 1
		}
		x = append(x, bits...)
	}
	y := t.Num[c.incAt]
	cls := -1.0
	if y > c.IncomeThreshold() {
		cls = 1
	}
	return ERMExample{X: x, YReg: y, YCls: cls}
}

// ERMExamples generates n encoded examples deterministically from the base
// seed (user i draws from stream (seed, i)).
func (c *Census) ERMExamples(n int, seed uint64) []ERMExample {
	out := make([]ERMExample, n)
	for i := range out {
		r := rng.NewStream(seed, uint64(i))
		out[i] = c.EncodeERM(c.Tuple(r))
	}
	return out
}
