package experiment

import "testing"

func TestRangeRuns(t *testing.T) {
	tables, err := runRange(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("got %d tables, want accuracy + throughput", len(tables))
	}
	acc, speed := tables[0], tables[1]
	if len(acc.Rows) != 2 || len(speed.Rows) != 2 {
		t.Fatalf("want one row per eps: got %d/%d", len(acc.Rows), len(speed.Rows))
	}
	for _, row := range acc.Rows {
		if len(row.Values) != 3 {
			t.Fatalf("accuracy row has %d columns, want 3", len(row.Values))
		}
		for i, v := range row.Values {
			if v < 0 || v > 1 {
				t.Errorf("eps=%s: MSE column %d = %v outside [0,1]", row.X, i, v)
			}
		}
	}
	// Higher eps must not make things dramatically worse; check the grid
	// column shrinks from eps=0.5 to eps=4 (it is the best-conditioned
	// estimate and the gap is large).
	if acc.Rows[1].Values[2] >= acc.Rows[0].Values[2] {
		t.Errorf("2-D grid MSE did not improve with eps: %v -> %v",
			acc.Rows[0].Values[2], acc.Rows[1].Values[2])
	}
	for _, row := range speed.Rows {
		if row.Values[0] <= 0 {
			t.Errorf("eps=%s: non-positive throughput %v", row.X, row.Values[0])
		}
	}
}
