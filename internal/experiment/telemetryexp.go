package experiment

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"ldp/internal/dataset"
	"ldp/internal/pipeline"
	"ldp/internal/rng"
	"ldp/internal/telemetry"
)

func init() {
	register(Runner{
		Name: "telemetry",
		Desc: "telemetry overhead on the ingest hot path: plain vs instrumented columnar AddBatch (batch 1024) across shard counts, with overhead_pct",
		Run:  runTelemetryBench,
	})
}

// telemetryShardCounts is the shard axis of the overhead benchmark.
var telemetryShardCounts = []int{1, 4, 8}

// telemetryBatchSize matches the pipeline experiment's fastest ingest
// configuration; overhead is measured where it would hurt most.
const telemetryBatchSize = 1024

// runTelemetryBench measures what the telemetry subsystem costs on the
// ingest hot path: the identical pre-randomized, pre-batched report
// stream is folded through a plain pipeline and through one built with
// WithTelemetry (per-batch counters, batch-size histogram, scrape-time
// func metrics), and the column overhead_pct reports the throughput gap.
// The design target is under 2%: hot counters are per-batch (two atomic
// adds per 1024 reports) and everything per-task is read at scrape time,
// so the fold loops themselves are untouched. As in the pipeline
// experiment, the best of opts.Runs timings is kept per configuration.
func runTelemetryBench(opts Options) ([]Table, error) {
	opts = opts.normalized()
	c := dataset.NewBR()
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}

	p0, err := pipeline.New(c.Schema(), opts.Eps)
	if err != nil {
		return nil, err
	}
	reps := make([]pipeline.Report, opts.N)
	for i := range reps {
		r := rng.NewStream(opts.Seed, uint64(i))
		rep, err := p0.Randomize(c.Tuple(r), r)
		if err != nil {
			return nil, err
		}
		reps[i] = rep
	}

	var batches []*pipeline.ReportBatch
	for lo := 0; lo < len(reps); lo += telemetryBatchSize {
		hi := lo + telemetryBatchSize
		if hi > len(reps) {
			hi = len(reps)
		}
		b := pipeline.NewReportBatch()
		for _, rep := range reps[lo:hi] {
			b.Append(rep)
		}
		batches = append(batches, b)
	}

	timeIngest := func(p *pipeline.Pipeline) (float64, error) {
		var firstErr error
		var mu sync.Mutex
		start := time.Now()
		var wg sync.WaitGroup
		chunk := (len(batches) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > len(batches) {
				hi = len(batches)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					if err := p.AddBatch(batches[i]); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
				}
			}(lo, hi)
		}
		wg.Wait()
		elapsed := time.Since(start)
		if firstErr != nil {
			return 0, firstErr
		}
		return float64(len(reps)) / elapsed.Seconds(), nil
	}

	// best rebuilds the pipeline each run through buildOpts — the
	// instrumented configuration needs a fresh registry per pipeline
	// (re-registering a series on one registry is a programming error).
	best := func(buildOpts func() []pipeline.Option) (float64, error) {
		bestRate := 0.0
		for run := 0; run < opts.Runs; run++ {
			p, err := pipeline.New(c.Schema(), opts.Eps, buildOpts()...)
			if err != nil {
				return 0, err
			}
			rate, err := timeIngest(p)
			if err != nil {
				return 0, err
			}
			if rate > bestRate {
				bestRate = rate
			}
		}
		return bestRate, nil
	}

	table := Table{
		ID:      "telemetry",
		Title:   fmt.Sprintf("telemetry ingest overhead, %d reports, batch %d, %d workers (best of %d runs)", opts.N, telemetryBatchSize, workers, opts.Runs),
		XLabel:  "aggregator",
		YLabel:  "reports/sec (and overhead %)",
		Columns: []string{"plain_reports_per_sec", "telemetry_reports_per_sec", "overhead_pct"},
	}
	for _, shards := range telemetryShardCounts {
		plain, err := best(func() []pipeline.Option {
			return []pipeline.Option{pipeline.WithShards(shards)}
		})
		if err != nil {
			return nil, err
		}
		instr, err := best(func() []pipeline.Option {
			return []pipeline.Option{pipeline.WithShards(shards), pipeline.WithTelemetry(telemetry.NewRegistry())}
		})
		if err != nil {
			return nil, err
		}
		overhead := (plain - instr) / plain * 100
		table.Rows = append(table.Rows, TableRow{
			X:      fmt.Sprintf("pipeline-%d-shards-batch%d", shards, telemetryBatchSize),
			Values: []float64{plain, instr, overhead},
		})
	}
	return []Table{table}, nil
}
