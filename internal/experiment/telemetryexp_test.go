package experiment

import "testing"

func TestTelemetryBenchShape(t *testing.T) {
	opts := small()
	opts.N = 4_096
	opts.Runs = 1
	tables, err := runTelemetryBench(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("got %d tables, want 1", len(tables))
	}
	tb := tables[0]
	if len(tb.Columns) != 3 || tb.Columns[2] != "overhead_pct" {
		t.Fatalf("unexpected columns %v", tb.Columns)
	}
	if len(tb.Rows) != len(telemetryShardCounts) {
		t.Fatalf("got %d rows, want %d", len(tb.Rows), len(telemetryShardCounts))
	}
	for _, row := range tb.Rows {
		plain, instr := row.Values[0], row.Values[1]
		if plain <= 0 || instr <= 0 {
			t.Errorf("row %s: non-positive throughput %v", row.X, row.Values)
		}
		// No tight overhead bound at unit-test scale (noise dominates),
		// but the instrumented path must be the same order of magnitude.
		if instr < plain/2 {
			t.Errorf("row %s: instrumented %v below half of plain %v", row.X, instr, plain)
		}
	}
}
