package experiment

import "testing"

func TestFaninRuns(t *testing.T) {
	o := small()
	o.N = 2_000
	tables, err := runFaninBench(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("got %d tables, want 1", len(tables))
	}
	tb := tables[0]
	// single + one row per edge count.
	if want := 1 + len(faninEdgeCounts); len(tb.Rows) != want {
		t.Fatalf("got %d rows, want %d", len(tb.Rows), want)
	}
	mseCol, exactCol := -1, -1
	for i, c := range tb.Columns {
		switch c {
		case "mean_mse":
			mseCol = i
		case "exact_vs_single":
			exactCol = i
		}
	}
	if mseCol < 0 || exactCol < 0 {
		t.Fatalf("missing columns in %v", tb.Columns)
	}
	// The fan-in must not change the estimates: every topology reports
	// the single node's exact MSE and passes the bitwise check (the run
	// errors out before returning a row if the root diverges).
	base := tb.Rows[0].Values[mseCol]
	for _, row := range tb.Rows {
		if row.Values[mseCol] != base {
			t.Errorf("row %q: MSE %v != single-node %v", row.X, row.Values[mseCol], base)
		}
		if row.Values[exactCol] != 1 {
			t.Errorf("row %q: exactness flag %v", row.X, row.Values[exactCol])
		}
	}
}
