package experiment

import (
	"fmt"

	"ldp/internal/core"
	"ldp/internal/dataset"
	"ldp/internal/duchi"
	"ldp/internal/freq"
	"ldp/internal/mech"
	"ldp/internal/noise"
	"ldp/internal/rng"
	"ldp/internal/schema"
)

func init() {
	register(Runner{
		Name: "fig4",
		Desc: "Fig 4: MSE of mean (numeric) and frequency (categorical) estimation on BR/MX vs eps",
		Run:  runFig4,
	})
	register(Runner{
		Name: "fig5",
		Desc: "Fig 5: MSE on 16-dim truncated Gaussian N(mu, 1/16), mu in {0,1/3,2/3,1}, vs eps",
		Run:  runFig5,
	})
	register(Runner{
		Name: "fig6",
		Desc: "Fig 6: MSE on 16-dim uniform and power-law synthetic data vs eps",
		Run:  runFig6,
	})
	register(Runner{
		Name: "fig7",
		Desc: "Fig 7: MSE vs number of users (MX schema, numeric and categorical)",
		Run:  runFig7,
	})
	register(Runner{
		Name: "fig8",
		Desc: "Fig 8: MSE vs dimensionality (MX schema prefixes, numeric and categorical)",
		Run:  runFig8,
	})
	register(Runner{
		Name: "ablation-k",
		Desc: "Ablation: empirical MSE of Algorithm 4 for k = 1..d vs the Eq. 12 rule",
		Run:  runAblationK,
	})
	register(Runner{
		Name: "ablation-freq",
		Desc: "Ablation: OUE vs GRR vs SUE as the categorical oracle inside Algorithm 4",
		Run:  runAblationFreq,
	})
}

// numericMethods is the method set for purely numeric populations (Figures
// 5 and 6): the split-budget baselines at eps/d per attribute, Duchi's
// multidimensional mechanism at eps, and Algorithm 4 with PM/HM at eps.
var numericMethods = []string{"laplace", "scdf", "duchi", "pm", "hm"}

func buildNumericPerturber(name string, eps float64, d int) (mech.VectorPerturber, error) {
	switch name {
	case "laplace":
		return mech.NewComposed(lapFactory, eps, d)
	case "scdf":
		return mech.NewComposed(scdfFactory, eps, d)
	case "staircase":
		return mech.NewComposed(stairFactory, eps, d)
	case "duchi":
		return duchi.NewMulti(eps, d)
	case "pm":
		return core.NewNumericCollector(pmFactory, eps, d)
	case "hm":
		return core.NewNumericCollector(hmFactory, eps, d)
	default:
		return nil, fmt.Errorf("experiment: unknown numeric method %q", name)
	}
}

// runNumericOnce simulates one run over a purely numeric population and
// returns the MSE of the estimated attribute means per method.
func runNumericOnce(src *dataset.Source, methods []string, eps float64, n int, seed uint64) (map[string]float64, error) {
	d := src.Dim()
	perts := make([]mech.VectorPerturber, len(methods))
	for i, m := range methods {
		p, err := buildNumericPerturber(m, eps, d)
		if err != nil {
			return nil, err
		}
		perts[i] = p
	}
	truth := make([]float64, d)
	sums := make([][]float64, len(methods))
	for i := range sums {
		sums[i] = make([]float64, d)
	}
	tuple := make([]float64, d)
	outs := make([][]float64, len(perts))
	for u := 0; u < n; u++ {
		r := rng.NewStream(seed, uint64(u))
		src.Fill(tuple, r)
		for j, v := range tuple {
			truth[j] += v
		}
		for i, p := range perts {
			outs[i] = mech.PerturbInto(p, outs[i], tuple, r)
			for j, v := range outs[i] {
				sums[i][j] += v
			}
		}
	}
	res := make(map[string]float64, len(methods))
	for i, m := range methods {
		mse := 0.0
		for j := 0; j < d; j++ {
			diff := (sums[i][j] - truth[j]) / float64(n)
			mse += diff * diff
		}
		res[m] = mse / float64(d)
	}
	return res, nil
}

// mixedNumericMethods and mixedCatMethods are the Figure 4 method sets: the
// best-effort composition of existing work against the proposed collector.
var (
	mixedNumericMethods = []string{"laplace", "scdf", "staircase", "duchi", "pm", "hm"}
	mixedCatMethods     = []string{"oue-split", "proposed"}
)

// runMixedOnce simulates one run of the Figure 4/7/8 pipeline over a mixed
// numeric+categorical population:
//
//   - split-budget baselines give every attribute eps/d (Laplace, SCDF,
//     Staircase per numeric attribute; OUE per categorical attribute) and
//     Duchi's Algorithm 3 runs on the numeric block with budget
//     eps*dn/d, exactly the best-effort combination of Section VI-A;
//   - the proposed solution runs Algorithm 4 over all d attributes (PM and
//     HM variants; categorical frequencies come from the PM collector).
//
// It returns per-method MSEs: over numeric attribute means, and over all
// (categorical attribute, value) frequency pairs.
func runMixedOnce(sch *schema.Schema, gen func(r *rng.Rand) schema.Tuple, eps float64, n int, seed uint64) (map[string]float64, error) {
	d := sch.Dim()
	numIdx, catIdx := sch.NumericIdx(), sch.CategoricalIdx()
	dn, dc := len(numIdx), len(catIdx)
	epsEach := eps / float64(d)

	lap, err := noise.NewLaplace(epsEach)
	if err != nil {
		return nil, err
	}
	scdf, err := noise.NewSCDF(epsEach)
	if err != nil {
		return nil, err
	}
	stair, err := noise.NewStaircase(epsEach)
	if err != nil {
		return nil, err
	}
	var duMulti *duchi.Multi
	if dn > 0 {
		duMulti, err = duchi.NewMulti(eps*float64(dn)/float64(d), dn)
		if err != nil {
			return nil, err
		}
	}
	colPM, err := core.NewCollector(sch, eps, pmFactory, oueFactory)
	if err != nil {
		return nil, err
	}
	colHM, err := core.NewCollector(sch, eps, hmFactory, oueFactory)
	if err != nil {
		return nil, err
	}
	aggPM, aggHM := core.NewAggregator(colPM), core.NewAggregator(colHM)

	splitOracles := make([]freq.Oracle, dc)
	splitEsts := make([]*freq.Estimator, dc)
	for i, a := range catIdx {
		o, err := freq.NewOUE(epsEach, sch.Attrs[a].Cardinality)
		if err != nil {
			return nil, err
		}
		splitOracles[i] = o
		splitEsts[i] = freq.NewEstimator(o)
	}

	truthNum := make([]float64, dn)
	truthCat := make([][]float64, dc)
	for i, a := range catIdx {
		truthCat[i] = make([]float64, sch.Attrs[a].Cardinality)
	}
	lapSum := make([]float64, dn)
	scdfSum := make([]float64, dn)
	stairSum := make([]float64, dn)
	duSum := make([]float64, dn)
	numVec := make([]float64, dn)

	for u := 0; u < n; u++ {
		r := rng.NewStream(seed, uint64(u))
		tup := gen(r)
		for i, a := range numIdx {
			v := tup.Num[a]
			truthNum[i] += v
			numVec[i] = v
			lapSum[i] += lap.Perturb(v, r)
			scdfSum[i] += scdf.Perturb(v, r)
			stairSum[i] += stair.Perturb(v, r)
		}
		for i, a := range catIdx {
			truthCat[i][tup.Cat[a]]++
		}
		if duMulti != nil {
			for i, v := range duMulti.PerturbVector(numVec, r) {
				duSum[i] += v
			}
		}
		repPM, err := colPM.Perturb(tup, r)
		if err != nil {
			return nil, err
		}
		if err := aggPM.Add(repPM); err != nil {
			return nil, err
		}
		repHM, err := colHM.Perturb(tup, r)
		if err != nil {
			return nil, err
		}
		if err := aggHM.Add(repHM); err != nil {
			return nil, err
		}
		for i, a := range catIdx {
			splitEsts[i].Add(splitOracles[i].Perturb(tup.Cat[a], r))
		}
	}

	res := map[string]float64{}
	nf := float64(n)
	numMSE := func(sums []float64) float64 {
		if dn == 0 {
			return 0
		}
		mse := 0.0
		for i := range sums {
			diff := (sums[i] - truthNum[i]) / nf
			mse += diff * diff
		}
		return mse / float64(dn)
	}
	res["num/laplace"] = numMSE(lapSum)
	res["num/scdf"] = numMSE(scdfSum)
	res["num/staircase"] = numMSE(stairSum)
	if duMulti != nil {
		res["num/duchi"] = numMSE(duSum)
	}
	meansMSE := func(agg *core.Aggregator) float64 {
		if dn == 0 {
			return 0
		}
		mse := 0.0
		for i, m := range agg.MeanEstimates() {
			diff := m - truthNum[i]/nf
			mse += diff * diff
		}
		return mse / float64(dn)
	}
	res["num/pm"] = meansMSE(aggPM)
	res["num/hm"] = meansMSE(aggHM)

	if dc > 0 {
		catMSE := func(estFor func(i, attr int) ([]float64, error)) (float64, error) {
			mse, count := 0.0, 0
			for i, a := range catIdx {
				est, err := estFor(i, a)
				if err != nil {
					return 0, err
				}
				for v := range est {
					diff := est[v] - truthCat[i][v]/nf
					mse += diff * diff
					count++
				}
			}
			return mse / float64(count), nil
		}
		split, err := catMSE(func(i, _ int) ([]float64, error) { return splitEsts[i].Estimates(), nil })
		if err != nil {
			return nil, err
		}
		proposed, err := catMSE(func(_, a int) ([]float64, error) { return aggPM.FreqEstimates(a) })
		if err != nil {
			return nil, err
		}
		res["cat/oue-split"] = split
		res["cat/proposed"] = proposed
	}
	return res, nil
}

// mixedTables converts averaged mixed-run results into the numeric and
// categorical tables for one x position, appending to the passed tables.
func appendMixedRow(numT, catT *Table, x string, avg map[string]float64) {
	numRow := TableRow{X: x}
	for _, m := range mixedNumericMethods {
		numRow.Values = append(numRow.Values, avg["num/"+m])
	}
	numT.Rows = append(numT.Rows, numRow)
	// A schema prefix may contain no categorical attributes (fig8 at
	// d=5); skip the categorical row rather than print zeros.
	if _, ok := avg["cat/proposed"]; !ok {
		return
	}
	catRow := TableRow{X: x}
	for _, m := range mixedCatMethods {
		catRow.Values = append(catRow.Values, avg["cat/"+m])
	}
	catT.Rows = append(catT.Rows, catRow)
}

func newMixedTables(id, dataName, xlabel string) (Table, Table) {
	numT := Table{
		ID:      id,
		Title:   fmt.Sprintf("%s-numeric: MSE of mean estimation", dataName),
		XLabel:  xlabel,
		YLabel:  "MSE over numeric attribute means",
		Columns: append([]string(nil), mixedNumericMethods...),
	}
	catT := Table{
		ID:      id,
		Title:   fmt.Sprintf("%s-categorical: MSE of frequency estimation", dataName),
		XLabel:  xlabel,
		YLabel:  "MSE over categorical value frequencies",
		Columns: append([]string(nil), mixedCatMethods...),
	}
	return numT, catT
}

func runFig4(opts Options) ([]Table, error) {
	opts = opts.normalized()
	var tables []Table
	for _, c := range []*dataset.Census{dataset.NewBR(), dataset.NewMX()} {
		numT, catT := newMixedTables("fig4", c.Name(), "eps")
		for ei, eps := range opts.EpsList {
			avg, err := averageRuns(opts.Runs, opts.Workers, func(run int) (map[string]float64, error) {
				seed := opts.Seed + uint64(run*1_000_003+ei*7907)
				return runMixedOnce(c.Schema(), c.Tuple, eps, opts.N, seed)
			})
			if err != nil {
				return nil, err
			}
			appendMixedRow(&numT, &catT, fmt.Sprintf("%g", eps), avg)
		}
		tables = append(tables, numT, catT)
	}
	return tables, nil
}

func runFig5(opts Options) ([]Table, error) {
	opts = opts.normalized()
	var tables []Table
	for _, mu := range []float64{0, 1.0 / 3, 2.0 / 3, 1} {
		src := dataset.NewGaussianSource(16, mu)
		t := Table{
			ID:      "fig5",
			Title:   fmt.Sprintf("MSE on 16-dim Gaussian N(%.3f, 1/16) truncated to [-1,1]", mu),
			XLabel:  "eps",
			YLabel:  "MSE over attribute means",
			Columns: append([]string(nil), numericMethods...),
		}
		for ei, eps := range opts.EpsList {
			avg, err := averageRuns(opts.Runs, opts.Workers, func(run int) (map[string]float64, error) {
				seed := opts.Seed + uint64(run*1_000_003+ei*7907+int(mu*1000)*17)
				return runNumericOnce(src, numericMethods, eps, opts.N, seed)
			})
			if err != nil {
				return nil, err
			}
			row := TableRow{X: fmt.Sprintf("%g", eps)}
			for _, m := range numericMethods {
				row.Values = append(row.Values, avg[m])
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func runFig6(opts Options) ([]Table, error) {
	opts = opts.normalized()
	var tables []Table
	for si, src := range []*dataset.Source{dataset.NewUniformSource(16), dataset.NewPowerLawSource(16)} {
		t := Table{
			ID:      "fig6",
			Title:   fmt.Sprintf("MSE on 16-dim %s data", src.Name()),
			XLabel:  "eps",
			YLabel:  "MSE over attribute means",
			Columns: append([]string(nil), numericMethods...),
		}
		for ei, eps := range opts.EpsList {
			avg, err := averageRuns(opts.Runs, opts.Workers, func(run int) (map[string]float64, error) {
				seed := opts.Seed + uint64(run*1_000_003+ei*7907+si*104729)
				return runNumericOnce(src, numericMethods, eps, opts.N, seed)
			})
			if err != nil {
				return nil, err
			}
			row := TableRow{X: fmt.Sprintf("%g", eps)}
			for _, m := range numericMethods {
				row.Values = append(row.Values, avg[m])
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func runFig7(opts Options) ([]Table, error) {
	opts = opts.normalized()
	c := dataset.NewMX()
	numT, catT := newMixedTables("fig7", c.Name(), "n")
	numT.Title += fmt.Sprintf(" (eps=%g)", opts.Eps)
	catT.Title += fmt.Sprintf(" (eps=%g)", opts.Eps)
	for ni, n := range []int{opts.N / 16, opts.N / 8, opts.N / 4, opts.N / 2, opts.N} {
		if n < 100 {
			continue
		}
		avg, err := averageRuns(opts.Runs, opts.Workers, func(run int) (map[string]float64, error) {
			seed := opts.Seed + uint64(run*1_000_003+ni*7907)
			return runMixedOnce(c.Schema(), c.Tuple, opts.Eps, n, seed)
		})
		if err != nil {
			return nil, err
		}
		appendMixedRow(&numT, &catT, fmt.Sprintf("%d", n), avg)
	}
	return []Table{numT, catT}, nil
}

func runFig8(opts Options) ([]Table, error) {
	opts = opts.normalized()
	c := dataset.NewMX()
	full := c.Schema()
	numT, catT := newMixedTables("fig8", c.Name(), "d")
	numT.Title += fmt.Sprintf(" (eps=%g)", opts.Eps)
	catT.Title += fmt.Sprintf(" (eps=%g)", opts.Eps)
	for di, d := range []int{5, 10, 15, 19} {
		sub, err := schema.New(full.Attrs[:d]...)
		if err != nil {
			return nil, err
		}
		gen := func(r *rng.Rand) schema.Tuple {
			t := c.Tuple(r)
			return schema.Tuple{Num: t.Num[:d], Cat: t.Cat[:d]}
		}
		avg, err := averageRuns(opts.Runs, opts.Workers, func(run int) (map[string]float64, error) {
			seed := opts.Seed + uint64(run*1_000_003+di*7907)
			return runMixedOnce(sub, gen, opts.Eps, opts.N, seed)
		})
		if err != nil {
			return nil, err
		}
		appendMixedRow(&numT, &catT, fmt.Sprintf("%d", d), avg)
	}
	return []Table{numT, catT}, nil
}

func runAblationK(opts Options) ([]Table, error) {
	opts = opts.normalized()
	const d = 10
	src := dataset.NewGaussianSource(d, 1.0/3)
	epsList := []float64{2.5, 5, 7.5}
	cols := make([]string, 0, d+1)
	for k := 1; k <= d; k++ {
		cols = append(cols, fmt.Sprintf("k=%d", k))
	}
	cols = append(cols, "k=Eq.12")
	t := Table{
		ID:      "ablation-k",
		Title:   fmt.Sprintf("Algorithm 4 (PM) empirical MSE for fixed k vs the Eq. 12 rule, d=%d Gaussian", d),
		XLabel:  "eps",
		YLabel:  "MSE over attribute means",
		Columns: cols,
	}
	for ei, eps := range epsList {
		avg, err := averageRuns(opts.Runs, opts.Workers, func(run int) (map[string]float64, error) {
			seed := opts.Seed + uint64(run*1_000_003+ei*7907)
			res := map[string]float64{}
			for k := 1; k <= d; k++ {
				col, err := core.NewNumericCollectorK(pmFactory, eps, d, k)
				if err != nil {
					return nil, err
				}
				mse, err := numericMSEWithPerturber(src, col, opts.N, seed+uint64(k)*31)
				if err != nil {
					return nil, err
				}
				res[fmt.Sprintf("k=%d", k)] = mse
			}
			return res, nil
		})
		if err != nil {
			return nil, err
		}
		row := TableRow{X: fmt.Sprintf("%g", eps)}
		for k := 1; k <= d; k++ {
			row.Values = append(row.Values, avg[fmt.Sprintf("k=%d", k)])
		}
		row.Values = append(row.Values, avg[fmt.Sprintf("k=%d", core.KFor(eps, d))])
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}

// numericMSEWithPerturber measures the mean-estimation MSE of one
// perturber over a generated population.
func numericMSEWithPerturber(src *dataset.Source, p mech.VectorPerturber, n int, seed uint64) (float64, error) {
	d := src.Dim()
	truth := make([]float64, d)
	sum := make([]float64, d)
	tuple := make([]float64, d)
	var out []float64
	for u := 0; u < n; u++ {
		r := rng.NewStream(seed, uint64(u))
		src.Fill(tuple, r)
		for j, v := range tuple {
			truth[j] += v
		}
		out = mech.PerturbInto(p, out, tuple, r)
		for j, v := range out {
			sum[j] += v
		}
	}
	mse := 0.0
	for j := 0; j < d; j++ {
		diff := (sum[j] - truth[j]) / float64(n)
		mse += diff * diff
	}
	return mse / float64(d), nil
}

func runAblationFreq(opts Options) ([]Table, error) {
	opts = opts.normalized()
	c := dataset.NewMX()
	full := c.Schema()
	// Categorical-only prefix of the MX schema.
	catIdx := full.CategoricalIdx()
	attrs := make([]schema.Attribute, len(catIdx))
	for i, a := range catIdx {
		attrs[i] = full.Attrs[a]
	}
	sub, err := schema.New(attrs...)
	if err != nil {
		return nil, err
	}
	gen := func(r *rng.Rand) schema.Tuple {
		t := c.Tuple(r)
		out := schema.NewTuple(sub)
		for i, a := range catIdx {
			out.Cat[i] = t.Cat[a]
		}
		return out
	}
	oracles := []struct {
		name    string
		factory freq.Factory
	}{
		{"oue", oueFactory},
		{"grr", grrFactory},
		{"sue", sueFactory},
	}
	t := Table{
		ID:      "ablation-freq",
		Title:   "categorical frequency MSE of Algorithm 4 with different oracles (MX categorical attributes)",
		XLabel:  "eps",
		YLabel:  "MSE over value frequencies",
		Columns: []string{"oue", "grr", "sue"},
	}
	for ei, eps := range opts.EpsList {
		avg, err := averageRuns(opts.Runs, opts.Workers, func(run int) (map[string]float64, error) {
			seed := opts.Seed + uint64(run*1_000_003+ei*7907)
			res := map[string]float64{}
			for _, o := range oracles {
				mse, err := categoricalMSEWithOracle(sub, gen, o.factory, eps, opts.N, seed)
				if err != nil {
					return nil, err
				}
				res[o.name] = mse
			}
			return res, nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, TableRow{
			X:      fmt.Sprintf("%g", eps),
			Values: []float64{avg["oue"], avg["grr"], avg["sue"]},
		})
	}
	return []Table{t}, nil
}

func categoricalMSEWithOracle(sch *schema.Schema, gen func(*rng.Rand) schema.Tuple, factory freq.Factory, eps float64, n int, seed uint64) (float64, error) {
	col, err := core.NewCollector(sch, eps, pmFactory, factory)
	if err != nil {
		return 0, err
	}
	agg := core.NewAggregator(col)
	truth := make([][]float64, sch.Dim())
	for i, a := range sch.Attrs {
		truth[i] = make([]float64, a.Cardinality)
	}
	for u := 0; u < n; u++ {
		r := rng.NewStream(seed, uint64(u))
		tup := gen(r)
		for i := range sch.Attrs {
			truth[i][tup.Cat[i]]++
		}
		rep, err := col.Perturb(tup, r)
		if err != nil {
			return 0, err
		}
		if err := agg.Add(rep); err != nil {
			return 0, err
		}
	}
	mse, count := 0.0, 0
	for i := range sch.Attrs {
		est, err := agg.FreqEstimates(i)
		if err != nil {
			return 0, err
		}
		for v := range est {
			diff := est[v] - truth[i][v]/float64(n)
			mse += diff * diff
			count++
		}
	}
	return mse / float64(count), nil
}
