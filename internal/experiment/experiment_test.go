package experiment

import (
	"bytes"
	"strings"
	"testing"

	"ldp/internal/dataset"
)

// small returns options scaled down for unit tests.
func small() Options {
	return Options{
		N:        8_000,
		Runs:     2,
		Seed:     7,
		Workers:  2,
		EpsList:  []float64{0.5, 4},
		Eps:      1,
		ERMUsers: 4_000,
		Splits:   1,
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9", "fig10", "fig11",
		"ablation-alpha", "ablation-k", "ablation-freq", "ablation-clip",
		"ablation-comm", "range", "pipeline", "federated", "query",
		"telemetry", "fanin", "audit",
	}
	for _, name := range want {
		if _, err := Get(name); err != nil {
			t.Errorf("experiment %q not registered: %v", name, err)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d runners, want %d", len(All()), len(want))
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestNormalizedDefaults(t *testing.T) {
	var zero Options
	n := zero.normalized()
	d := Defaults()
	if n.N != d.N || n.Runs != d.Runs || len(n.EpsList) != len(d.EpsList) || n.Workers < 1 {
		t.Errorf("normalized zero options = %+v", n)
	}
}

func TestTable1Runs(t *testing.T) {
	tables, err := runTable1(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("got %d tables", len(tables))
	}
	// Every d>1 row must have HM < PM < Duchi.
	for _, row := range tables[1].Rows {
		if !(row.Values[0] < row.Values[1] && row.Values[1] < row.Values[2]) {
			t.Errorf("row %s: ordering violated: %v", row.X, row.Values)
		}
	}
}

func TestFig1Shape(t *testing.T) {
	tables, err := runFig1(small())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.Rows) < 50 {
		t.Fatalf("fig1 has %d rows", len(tb.Rows))
	}
	// HM (last column) is the lower envelope everywhere.
	for _, row := range tb.Rows {
		hm := row.Values[3]
		for j := 0; j < 3; j++ {
			if hm > row.Values[j]+1e-9 {
				t.Errorf("eps=%s: HM %v above %s %v", row.X, hm, tb.Columns[j], row.Values[j])
			}
		}
	}
}

func TestFig2PdfPieces(t *testing.T) {
	tables, err := runFig2(small())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	// Two density levels only (plus zero never appears inside [-C, C]).
	seen := map[string]bool{}
	for _, row := range tb.Rows {
		for _, v := range row.Values {
			seen[formatValue(v)] = true
		}
	}
	if len(seen) > 3 {
		t.Errorf("PM pdf should take at most 2-3 distinct levels on the grid, got %d", len(seen))
	}
}

func TestFig3RatiosBelowOne(t *testing.T) {
	tables, err := runFig3(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("got %d tables, want 4", len(tables))
	}
	for _, tb := range tables {
		for _, row := range tb.Rows {
			for j, v := range row.Values {
				if v >= 1 {
					t.Errorf("%s eps=%s col %s: ratio %v >= 1", tb.Title, row.X, tb.Columns[j], v)
				}
			}
		}
	}
}

func TestMixedRunOrderingBRSmall(t *testing.T) {
	// One scaled-down mixed run: the proposed methods must beat the
	// split-budget baselines clearly on both metrics.
	c := dataset.NewBR()
	avg, err := averageRuns(2, 2, func(run int) (map[string]float64, error) {
		return runMixedOnce(c.Schema(), c.Tuple, 1.0, 12_000, uint64(run*99+3))
	})
	if err != nil {
		t.Fatal(err)
	}
	if avg["num/pm"] >= avg["num/laplace"] {
		t.Errorf("PM MSE %v should beat split Laplace %v", avg["num/pm"], avg["num/laplace"])
	}
	if avg["num/hm"] >= avg["num/laplace"] {
		t.Errorf("HM MSE %v should beat split Laplace %v", avg["num/hm"], avg["num/laplace"])
	}
	if avg["cat/proposed"] >= avg["cat/oue-split"] {
		t.Errorf("proposed categorical MSE %v should beat OUE-split %v", avg["cat/proposed"], avg["cat/oue-split"])
	}
	for _, k := range []string{"num/scdf", "num/staircase", "num/duchi"} {
		if avg[k] <= 0 {
			t.Errorf("missing metric %s", k)
		}
	}
}

func TestNumericRunOrderingGaussian(t *testing.T) {
	src := dataset.NewGaussianSource(16, 2.0/3)
	avg, err := averageRuns(2, 2, func(run int) (map[string]float64, error) {
		return runNumericOnce(src, numericMethods, 1.0, 12_000, uint64(run*77+5))
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sampling-based PM/HM must beat the eps/d-composition baselines.
	if avg["pm"] >= avg["laplace"] || avg["hm"] >= avg["laplace"] {
		t.Errorf("PM %v / HM %v should beat split Laplace %v", avg["pm"], avg["hm"], avg["laplace"])
	}
	// And beat or match Duchi's multidimensional method (Corollary 2).
	if avg["pm"] >= 1.5*avg["duchi"] {
		t.Errorf("PM MSE %v unexpectedly far above Duchi %v", avg["pm"], avg["duchi"])
	}
}

func TestFig7MSEDecreasesWithN(t *testing.T) {
	opts := small()
	opts.N = 16_000
	opts.Runs = 2
	tables, err := runFig7(opts)
	if err != nil {
		t.Fatal(err)
	}
	numT := tables[0]
	if len(numT.Rows) < 3 {
		t.Fatalf("fig7 numeric has %d rows", len(numT.Rows))
	}
	// PM column: MSE at the largest n must be below MSE at the smallest.
	col := indexOf(numT.Columns, "pm")
	first, last := numT.Rows[0].Values[col], numT.Rows[len(numT.Rows)-1].Values[col]
	if last >= first {
		t.Errorf("PM MSE did not decrease with n: %v -> %v", first, last)
	}
}

func indexOf(xs []string, want string) int {
	for i, x := range xs {
		if x == want {
			return i
		}
	}
	return -1
}

func TestFig8Runs(t *testing.T) {
	opts := small()
	opts.N = 6_000
	tables, err := runFig8(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || len(tables[0].Rows) != 4 {
		t.Fatalf("unexpected fig8 shape: %d tables, %d rows", len(tables), len(tables[0].Rows))
	}
}

func TestAblationAlphaOptimalWins(t *testing.T) {
	tables, err := runAblationAlpha(small())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	optCol := len(tb.Columns) - 1
	for _, row := range tb.Rows {
		for j := 0; j < optCol; j++ {
			if row.Values[optCol] > row.Values[j]+1e-9 {
				t.Errorf("eps=%s: Eq.7 alpha (%v) worse than %s (%v)",
					row.X, row.Values[optCol], tb.Columns[j], row.Values[j])
			}
		}
	}
}

func TestRenderText(t *testing.T) {
	tb := Table{
		ID: "x", Title: "demo", XLabel: "eps", YLabel: "mse",
		Columns: []string{"a", "longname"},
		Rows: []TableRow{
			{X: "0.5", Values: []float64{1.5, 0.000012}},
			{X: "4", Values: []float64{0, 12345678}},
		},
	}
	var buf bytes.Buffer
	if err := Render(&buf, tb); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# x — demo", "eps", "longname", "1.5", "1.2000e-05", "0"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTSV(t *testing.T) {
	tb := Table{
		ID: "x", Title: "demo", XLabel: "n",
		Columns: []string{"m1"},
		Rows:    []TableRow{{X: "10", Values: []float64{0.25}}},
	}
	var buf bytes.Buffer
	if err := RenderTSV(&buf, tb); err != nil {
		t.Fatal(err)
	}
	want := "n\tm1\n10\t0.25\n"
	if buf.String() != want {
		t.Errorf("TSV = %q, want %q", buf.String(), want)
	}
}

func TestAblationCommShape(t *testing.T) {
	opts := small()
	opts.EpsList = []float64{1}
	tables, err := runAblationComm(opts)
	if err != nil {
		t.Fatal(err)
	}
	row := tables[0].Rows[0]
	proposed, split, duchiOue := row.Values[0], row.Values[1], row.Values[2]
	if proposed <= 0 || split <= 0 {
		t.Fatal("empty sizes")
	}
	// Algorithm 4 sends k entries instead of all d; it must be several
	// times smaller than the every-attribute uploads.
	if proposed*3 > split {
		t.Errorf("proposed %v bytes not clearly below split %v", proposed, split)
	}
	// Laplace-split and Duchi-split frames carry the same entry layout.
	if split != duchiOue {
		t.Errorf("split %v != duchi %v (same wire layout expected)", split, duchiOue)
	}
}

func TestAverageRunsPropagatesError(t *testing.T) {
	_, err := averageRuns(3, 2, func(run int) (map[string]float64, error) {
		if run == 1 {
			return nil, errTest
		}
		return map[string]float64{"a": 1}, nil
	})
	if err != errTest {
		t.Errorf("err = %v, want errTest", err)
	}
}

var errTest = errString("test error")

type errString string

func (e errString) Error() string { return string(e) }

func TestAverageRunsAverages(t *testing.T) {
	avg, err := averageRuns(4, 4, func(run int) (map[string]float64, error) {
		return map[string]float64{"v": float64(run)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if avg["v"] != 1.5 {
		t.Errorf("avg = %v, want 1.5", avg["v"])
	}
}
