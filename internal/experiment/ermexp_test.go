package experiment

import (
	"testing"

	"ldp/internal/erm"
)

func TestERMFigureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ERM figure is slow; skipped with -short")
	}
	opts := small()
	opts.ERMUsers = 3_000
	opts.EpsList = []float64{4}
	opts.Splits = 1
	tables, err := runERMFigure("fig9", erm.LogisticRegression, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 { // BR and MX
		t.Fatalf("got %d tables", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) != 1 || len(tb.Rows[0].Values) != len(ermMethods) {
			t.Fatalf("unexpected table shape: %+v", tb.Rows)
		}
		for j, v := range tb.Rows[0].Values {
			if v < 0 || v > 0.7 {
				t.Errorf("%s %s: misclassification %v implausible", tb.Title, tb.Columns[j], v)
			}
		}
		// The non-private baseline should be no worse than the Laplace
		// baseline at this scale.
		np := tb.Rows[0].Values[indexOf(tb.Columns, "nonprivate")]
		lap := tb.Rows[0].Values[indexOf(tb.Columns, "laplace")]
		if np > lap+0.05 {
			t.Errorf("%s: non-private %v worse than laplace %v", tb.Title, np, lap)
		}
		// At this tiny scale the eps/d Laplace baseline's gradients are
		// pure noise, so its model must be near-random — this guards
		// against accidentally rescaled metrics (the mergeRuns vs
		// averageRuns distinction).
		if lap < 0.2 {
			t.Errorf("%s: laplace misclassification %v implausibly low", tb.Title, lap)
		}
	}
}

func TestMergeRunsDoesNotAverage(t *testing.T) {
	merged, err := mergeRuns(3, 2, func(run int) (map[string]float64, error) {
		return map[string]float64{string(rune('a' + run)): 2}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 3 {
		t.Fatalf("merged %d keys, want 3", len(merged))
	}
	for k, v := range merged {
		if v != 2 {
			t.Errorf("key %s = %v, want 2 (mergeRuns must not divide)", k, v)
		}
	}
}

func TestScaledPerturberUnbiasedWrapper(t *testing.T) {
	p, err := buildERMPerturber("pm", 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	sp := &scaledPerturber{inner: p, scale: 8}
	if sp.Dim() != 3 || sp.Epsilon() != 4 {
		t.Error("scaled perturber must preserve dim and epsilon")
	}
	if sp.Name() == p.Name() {
		t.Error("scaled perturber should rename itself")
	}
}

func TestBuildERMPerturber(t *testing.T) {
	for _, m := range ermMethods {
		p, err := buildERMPerturber(m, 1, 5)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if m == "nonprivate" {
			if p != nil {
				t.Error("nonprivate should be nil perturber")
			}
			continue
		}
		if p.Dim() != 5 {
			t.Errorf("%s: dim %d", m, p.Dim())
		}
	}
	if _, err := buildERMPerturber("bogus", 1, 5); err == nil {
		t.Error("unknown method should error")
	}
	if _, err := buildNumericPerturber("bogus", 1, 5); err == nil {
		t.Error("unknown numeric method should error")
	}
}
