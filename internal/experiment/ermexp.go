package experiment

import (
	"fmt"

	"ldp/internal/analysis"
	"ldp/internal/core"
	"ldp/internal/dataset"
	"ldp/internal/duchi"
	"ldp/internal/erm"
	"ldp/internal/mech"
	"ldp/internal/rng"
)

func init() {
	register(Runner{
		Name: "fig9",
		Desc: "Fig 9: logistic regression misclassification rate vs eps on BR/MX",
		Run:  func(o Options) ([]Table, error) { return runERMFigure("fig9", erm.LogisticRegression, o) },
	})
	register(Runner{
		Name: "fig10",
		Desc: "Fig 10: SVM misclassification rate vs eps on BR/MX",
		Run:  func(o Options) ([]Table, error) { return runERMFigure("fig10", erm.SVM, o) },
	})
	register(Runner{
		Name: "fig11",
		Desc: "Fig 11: linear regression MSE vs eps on BR/MX",
		Run:  func(o Options) ([]Table, error) { return runERMFigure("fig11", erm.LinearRegression, o) },
	})
	register(Runner{
		Name: "ablation-clip",
		Desc: "Ablation: LDP-SGD with and without per-coordinate gradient clipping",
		Run:  runAblationClip,
	})
}

// ermMethods is the Figure 9-11 method set. "laplace" is the Laplace
// mechanism applied per coordinate at eps/d; "nonprivate" trains on exact
// gradients.
var ermMethods = []string{"laplace", "duchi", "pm", "hm", "nonprivate"}

func buildERMPerturber(name string, eps float64, d int) (mech.VectorPerturber, error) {
	switch name {
	case "nonprivate":
		return nil, nil
	case "laplace":
		return mech.NewComposed(lapFactory, eps, d)
	case "duchi":
		return duchi.NewMulti(eps, d)
	case "pm":
		return core.NewNumericCollector(pmFactory, eps, d)
	case "hm":
		return core.NewNumericCollector(hmFactory, eps, d)
	default:
		return nil, fmt.Errorf("experiment: unknown ERM method %q", name)
	}
}

// groupSizeFor sizes each method's SGD group from its own per-coordinate
// gradient-noise variance, so every method is run with a sensibly tuned
// protocol (an undersized group would unfairly drown a high-variance
// mechanism in noise; an oversized one would waste its iterations).
func groupSizeFor(method string, n, d int, eps float64) int {
	switch method {
	case "nonprivate":
		// Exact gradients: favor more iterations.
		g := n / 50
		if g < 64 {
			g = 64
		}
		return g
	case "laplace":
		perCoord := 8 * float64(d) * float64(d) / (eps * eps)
		return erm.GroupSizeForVariance(n, perCoord)
	case "duchi":
		return erm.GroupSizeForVariance(n, analysis.MaxVarDuchiMulti(eps, d))
	case "hm":
		return erm.GroupSizeForVariance(n, analysis.MaxVarHMMulti(eps, d))
	default: // pm
		return erm.DefaultGroupSize(n, d, eps)
	}
}

// etaFor returns the SGD learning-rate scale for each task; values chosen
// so the non-private baseline converges within one pass at the default
// scale.
func etaFor(task erm.Task) float64 {
	switch task {
	case erm.LinearRegression:
		return 0.3
	case erm.LogisticRegression:
		return 1.0
	default: // SVM
		return 0.5
	}
}

func runERMFigure(id string, task erm.Task, opts Options) ([]Table, error) {
	opts = opts.normalized()
	ylabel := "misclassification rate"
	if task == erm.LinearRegression {
		ylabel = "test MSE"
	}
	var tables []Table
	for _, c := range []*dataset.Census{dataset.NewBR(), dataset.NewMX()} {
		examples := c.ERMExamples(opts.ERMUsers, opts.Seed)
		d := c.ERMDim()
		t := Table{
			ID:      id,
			Title:   fmt.Sprintf("%s on %s (d=%d, n=%d, %d splits)", task, c.Name(), d, opts.ERMUsers, opts.Splits),
			XLabel:  "eps",
			YLabel:  ylabel,
			Columns: append([]string(nil), ermMethods...),
		}
		for ei, eps := range opts.EpsList {
			row := TableRow{X: fmt.Sprintf("%g", eps)}
			avg, err := mergeRuns(len(ermMethods), opts.Workers, func(mi int) (map[string]float64, error) {
				method := ermMethods[mi]
				cfg := erm.Config{
					Task:      task,
					Lambda:    1e-4,
					Eta:       etaFor(task),
					GroupSize: groupSizeFor(method, opts.ERMUsers*9/10, d, eps),
				}
				evals, err := erm.EvaluateSplits(cfg, examples, func() (mech.VectorPerturber, error) {
					return buildERMPerturber(method, eps, d)
				}, opts.Splits, opts.Seed+uint64(ei*7907))
				if err != nil {
					return nil, err
				}
				sum := 0.0
				for _, e := range evals {
					if task == erm.LinearRegression {
						sum += e.MSE
					} else {
						sum += e.Misclassification
					}
				}
				return map[string]float64{method: sum / float64(len(evals))}, nil
			})
			if err != nil {
				return nil, err
			}
			for _, m := range ermMethods {
				row.Values = append(row.Values, avg[m])
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// scaledPerturber handles out-of-range gradients without clipping: it
// shrinks the input by a fixed range bound before perturbation and
// re-expands the output, which stays unbiased but multiplies the noise
// variance by scale^2. It is the alternative the paper's gradient clipping
// is implicitly compared against.
type scaledPerturber struct {
	inner mech.VectorPerturber
	scale float64
}

func (s *scaledPerturber) Name() string     { return s.inner.Name() + "-scaled" }
func (s *scaledPerturber) Epsilon() float64 { return s.inner.Epsilon() }
func (s *scaledPerturber) Dim() int         { return s.inner.Dim() }

func (s *scaledPerturber) PerturbVector(t []float64, r *rng.Rand) []float64 {
	shrunk := make([]float64, len(t))
	for i, v := range t {
		shrunk[i] = v / s.scale
	}
	out := s.inner.PerturbVector(shrunk, r)
	for i := range out {
		out[i] *= s.scale
	}
	return out
}

func runAblationClip(opts Options) ([]Table, error) {
	opts = opts.normalized()
	c := dataset.NewBR()
	examples := c.ERMExamples(opts.ERMUsers, opts.Seed)
	d := c.ERMDim()
	// Linear-regression gradients 2(x'b - y)x genuinely exceed [-1,1];
	// compare the paper's per-coordinate clipping against unbiased
	// range scaling (divide by a bound of 8, re-multiply after).
	const rangeBound = 8.0
	t := Table{
		ID:      "ablation-clip",
		Title:   fmt.Sprintf("linear regression on %s with PM gradients: clipping vs unbiased range scaling", c.Name()),
		XLabel:  "eps",
		YLabel:  "test MSE",
		Columns: []string{"clipped", "scaled"},
	}
	for ei, eps := range opts.EpsList {
		row := TableRow{X: fmt.Sprintf("%g", eps)}
		for _, scaled := range []bool{false, true} {
			cfg := erm.Config{
				Task:      erm.LinearRegression,
				Lambda:    1e-4,
				Eta:       etaFor(erm.LinearRegression),
				GroupSize: erm.DefaultGroupSize(opts.ERMUsers*9/10, d, eps),
				NoClip:    scaled,
			}
			evals, err := erm.EvaluateSplits(cfg, examples, func() (mech.VectorPerturber, error) {
				p, err := buildERMPerturber("pm", eps, d)
				if err != nil {
					return nil, err
				}
				if scaled {
					return &scaledPerturber{inner: p, scale: rangeBound}, nil
				}
				return p, nil
			}, opts.Splits, opts.Seed+uint64(ei*7907))
			if err != nil {
				return nil, err
			}
			sum := 0.0
			for _, e := range evals {
				sum += e.MSE
			}
			row.Values = append(row.Values, sum/float64(len(evals)))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}
