package experiment

import (
	"fmt"
	"io"
	"strings"
)

// Render writes a table as aligned human-readable text.
func Render(w io.Writer, t Table) error {
	if _, err := fmt.Fprintf(w, "# %s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	if t.YLabel != "" {
		if _, err := fmt.Fprintf(w, "# values: %s\n", t.YLabel); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Columns)+1)
	widths[0] = len(t.XLabel)
	for _, r := range t.Rows {
		if len(r.X) > widths[0] {
			widths[0] = len(r.X)
		}
	}
	cells := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		cells[i] = make([]string, len(r.Values))
		for j, v := range r.Values {
			cells[i][j] = formatValue(v)
		}
	}
	for j, c := range t.Columns {
		widths[j+1] = len(c)
		for i := range cells {
			if j < len(cells[i]) && len(cells[i][j]) > widths[j+1] {
				widths[j+1] = len(cells[i][j])
			}
		}
	}
	head := make([]string, 0, len(widths))
	head = append(head, pad(t.XLabel, widths[0]))
	for j, c := range t.Columns {
		head = append(head, pad(c, widths[j+1]))
	}
	if _, err := fmt.Fprintln(w, strings.Join(head, "  ")); err != nil {
		return err
	}
	for i, r := range t.Rows {
		line := make([]string, 0, len(widths))
		line = append(line, pad(r.X, widths[0]))
		for j := range r.Values {
			line = append(line, pad(cells[i][j], widths[j+1]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(line, "  ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderTSV writes a table as tab-separated values (one header line),
// convenient for gnuplot or spreadsheet import.
func RenderTSV(w io.Writer, t Table) error {
	cols := append([]string{t.XLabel}, t.Columns...)
	if _, err := fmt.Fprintln(w, strings.Join(cols, "\t")); err != nil {
		return err
	}
	for _, r := range t.Rows {
		fields := make([]string, 0, len(r.Values)+1)
		fields = append(fields, r.X)
		for _, v := range r.Values {
			fields = append(fields, formatValue(v))
		}
		if _, err := fmt.Fprintln(w, strings.Join(fields, "\t")); err != nil {
			return err
		}
	}
	return nil
}

func formatValue(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case v == 0:
		return "0"
	case av >= 0.01 && av < 10000:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", v), "0"), ".")
	default:
		return fmt.Sprintf("%.4e", v)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
