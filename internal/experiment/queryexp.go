package experiment

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ldp/internal/dataset"
	"ldp/internal/pipeline"
	"ldp/internal/rangequery"
	"ldp/internal/rng"
)

func init() {
	register(Runner{
		Name: "query",
		Desc: "query-path throughput: cold Snapshot-per-query vs the epoch-cached View (ingest idle vs full batch rate), plus incremental refresh at 1/64/4096-report deltas, at 1/4/8 shards",
		Run:  runQueryBench,
	})
}

// queryShardCounts is the shard axis of the query benchmark.
var queryShardCounts = []int{1, 4, 8}

// Query counts per timing run: the cold path pays a full snapshot rebuild
// per query, the cached path is two orders of magnitude cheaper, so the
// two use different op counts to keep wall time comparable.
const (
	coldQueries   = 4_000
	cachedQueries = 400_000
	// queryStaleness is the view-cache bound the cached modes run with:
	// large enough that full-rate ingest does not force a rebuild per
	// query, small enough to be statistically invisible at bench scale.
	queryStaleness = 10_000
)

// queryDeltaSizes is the delta axis of the incremental-refresh rows: each
// op folds this many reports and then queries the view at the default
// exact staleness bound, so every op pays one delta-proportional rebuild.
// Op counts shrink with the delta to keep wall time comparable.
var queryDeltaSizes = []struct {
	delta   int
	queries int
}{
	{1, 100_000},
	{64, 20_000},
	{4096, 1_000},
}

// runQueryBench measures read-path throughput (dashboard query mixes per
// second): the pre-PR cost model (a full Pipeline.Snapshot rebuild per
// query) against the epoch-cached View, with the aggregator idle and with
// concurrent AddBatch ingest running at full rate, at 1, 4, and 8 shards.
// One query op is a dashboard mix: one mean, one frequency histogram, one
// 1-D range, and one 2-D range. opts.Workers goroutines issue queries
// concurrently; the best of opts.Runs timings is reported.
func runQueryBench(opts Options) ([]Table, error) {
	opts = opts.normalized()
	c := dataset.NewBR()
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}

	newPipeline := func(shards int) (*pipeline.Pipeline, error) {
		return pipeline.New(c.Schema(), opts.Eps,
			pipeline.WithShards(shards),
			pipeline.WithRange(rangequery.Config{}),
			pipeline.WithQueryStaleness(queryStaleness, 0),
		)
	}

	// Pre-randomize one report stream (the randomizer side is identical
	// across configurations) and pre-build the ingest batches.
	p0, err := newPipeline(1)
	if err != nil {
		return nil, err
	}
	const batchSize = 1024
	var batches []*pipeline.ReportBatch
	b := pipeline.NewReportBatch()
	for i := 0; i < opts.N; i++ {
		r := rng.NewStream(opts.Seed, uint64(i))
		rep, err := p0.Randomize(c.Tuple(r), r)
		if err != nil {
			return nil, err
		}
		b.Append(rep)
		if b.Len() == batchSize {
			batches = append(batches, b)
			b = pipeline.NewReportBatch()
		}
	}
	if b.Len() > 0 {
		batches = append(batches, b)
	}

	// Pre-randomize the incremental-refresh deltas: a pool of single
	// reports for the delta-1 rows and pre-built batches for the larger
	// deltas, drawn from streams disjoint with the bulk ingest above.
	const deltaPool = 8192
	deltaReps := make([]pipeline.Report, deltaPool)
	for i := range deltaReps {
		r := rng.NewStream(opts.Seed+1, uint64(i))
		rep, err := p0.Randomize(c.Tuple(r), r)
		if err != nil {
			return nil, err
		}
		deltaReps[i] = rep
	}
	deltaBatches := map[int][]*pipeline.ReportBatch{}
	for _, ds := range queryDeltaSizes {
		if ds.delta == 1 {
			continue
		}
		for off := 0; off+ds.delta <= deltaPool; off += ds.delta {
			db := pipeline.NewReportBatch()
			for _, rep := range deltaReps[off : off+ds.delta] {
				db.Append(rep)
			}
			deltaBatches[ds.delta] = append(deltaBatches[ds.delta], db)
		}
	}

	// queryOnce is the dashboard mix; res may be a cached view or a fresh
	// snapshot.
	queryOnce := func(res *pipeline.Result) error {
		if _, err := res.Mean("age"); err != nil {
			return err
		}
		if _, err := res.FreqView("gender"); err != nil {
			return err
		}
		if _, err := res.Range(pipeline.RangeQuery{Attr: "age", Lo: -0.5, Hi: 0.5}); err != nil {
			return err
		}
		_, err := res.Range(pipeline.RangeQuery{
			Attr: "age", Lo: -0.5, Hi: 0.5,
			Attr2: "income", Lo2: 0, Hi2: 1,
		})
		return err
	}

	// timeQueries clocks n query ops split across the workers.
	timeQueries := func(n int, query func() error) (float64, error) {
		var firstErr error
		var mu sync.Mutex
		var wg sync.WaitGroup
		start := time.Now()
		chunk := (n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(count int) {
				defer wg.Done()
				for i := 0; i < count; i++ {
					if err := query(); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
				}
			}(hi - lo)
		}
		wg.Wait()
		elapsed := time.Since(start)
		if firstErr != nil {
			return 0, firstErr
		}
		return float64(n) / elapsed.Seconds(), nil
	}

	table := Table{
		ID: "query",
		Title: fmt.Sprintf("query throughput after %d reports, %d query workers (best of %d runs); one query = mean+freq+1D range+2D range; inc-deltaN rows fold N reports per query at exact staleness",
			opts.N, workers, opts.Runs),
		XLabel:  "configuration",
		YLabel:  "queries/sec",
		Columns: []string{"queries_per_sec"},
	}

	for _, shards := range queryShardCounts {
		p, err := newPipeline(shards)
		if err != nil {
			return nil, err
		}
		for _, bb := range batches {
			if err := p.AddBatch(bb); err != nil {
				return nil, err
			}
		}

		type mode struct {
			name    string
			queries int
			query   func() error
			ingest  bool
		}
		modes := []mode{
			{"cold-idle", coldQueries, func() error { return queryOnce(p.Snapshot()) }, false},
			{"cached-idle", cachedQueries, func() error { return queryOnce(p.View()) }, false},
			{"cold-ingest", coldQueries, func() error { return queryOnce(p.Snapshot()) }, true},
			{"cached-ingest", cachedQueries, func() error { return queryOnce(p.View()) }, true},
		}
		for _, m := range modes {
			bestRate := 0.0
			for run := 0; run < opts.Runs; run++ {
				var stop atomic.Bool
				var ingesters sync.WaitGroup
				var ingestErr atomic.Pointer[error]
				if m.ingest {
					// Two writers keep AddBatch running at full rate for
					// the duration of the timing window. An ingest error
					// fails the benchmark — a silently idle writer would
					// make the *-ingest rows measure an idle aggregator.
					for w := 0; w < 2; w++ {
						ingesters.Add(1)
						go func(w int) {
							defer ingesters.Done()
							for i := w; !stop.Load(); i = (i + 1) % len(batches) {
								if err := p.AddBatch(batches[i%len(batches)]); err != nil {
									ingestErr.Store(&err)
									return
								}
							}
						}(w)
					}
				}
				rate, err := timeQueries(m.queries, m.query)
				stop.Store(true)
				ingesters.Wait()
				if err == nil {
					if pe := ingestErr.Load(); pe != nil {
						err = fmt.Errorf("ingest writer failed during %s: %w", m.name, *pe)
					}
				}
				if err != nil {
					return nil, err
				}
				if rate > bestRate {
					bestRate = rate
				}
			}
			table.Rows = append(table.Rows, TableRow{
				X:      fmt.Sprintf("%s-%dshards", m.name, shards),
				Values: []float64{bestRate},
			})
		}

		// Incremental-refresh rows: a fresh pipeline at the default exact
		// staleness bound (any ingest invalidates the view), so every op —
		// fold a delta, query the view — pays one rebuild proportional to
		// that delta. Contrast with cold-idle above, where each query paid
		// a full domain-proportional Snapshot.
		for _, ds := range queryDeltaSizes {
			bestRate := 0.0
			for run := 0; run < opts.Runs; run++ {
				ip, err := pipeline.New(c.Schema(), opts.Eps,
					pipeline.WithShards(shards),
					pipeline.WithRange(rangequery.Config{}),
				)
				if err != nil {
					return nil, err
				}
				for _, bb := range batches {
					if err := ip.AddBatch(bb); err != nil {
						return nil, err
					}
				}
				ip.View() // warm: the first rebuild is the one full build
				var idx atomic.Int64
				var query func() error
				if ds.delta == 1 {
					query = func() error {
						rep := deltaReps[int(idx.Add(1))%deltaPool]
						if err := ip.Add(rep); err != nil {
							return err
						}
						return queryOnce(ip.View())
					}
				} else {
					dbs := deltaBatches[ds.delta]
					query = func() error {
						db := dbs[int(idx.Add(1))%len(dbs)]
						if err := ip.AddBatch(db); err != nil {
							return err
						}
						return queryOnce(ip.View())
					}
				}
				rate, err := timeQueries(ds.queries, query)
				if err != nil {
					return nil, err
				}
				if rate > bestRate {
					bestRate = rate
				}
			}
			table.Rows = append(table.Rows, TableRow{
				X:      fmt.Sprintf("inc-delta%d-%dshards", ds.delta, shards),
				Values: []float64{bestRate},
			})
		}
	}
	return []Table{table}, nil
}
