package experiment

import (
	"fmt"

	"ldp/internal/core"
	"ldp/internal/dataset"
	"ldp/internal/duchi"
	"ldp/internal/freq"
	"ldp/internal/rng"
	"ldp/internal/schema"
	"ldp/internal/transport"
)

func init() {
	register(Runner{
		Name: "ablation-comm",
		Desc: "Ablation: wire bytes per user report — Algorithm 4 vs split-budget and Duchi encodings",
		Run:  runAblationComm,
	})
}

// runAblationComm measures the average serialized report size per user for
// the pipelines compared in Figure 4, using the repository's wire format
// for every method:
//
//   - proposed: Algorithm 4's k sampled entries (numeric value or OUE
//     bitset);
//   - oue+laplace split: every attribute reported every time — dn numeric
//     entries plus dc OUE bitsets;
//   - duchi+oue split: Duchi's corner vector for the numeric block (dn
//     numeric entries) plus dc OUE bitsets.
//
// The paper's related work (Ren et al.) is criticized for exactly this
// kind of k-sized-vector-per-attribute communication blowup; this table
// quantifies it.
func runAblationComm(opts Options) ([]Table, error) {
	opts = opts.normalized()
	c := dataset.NewBR()
	sch := c.Schema()
	t := Table{
		ID:      "ablation-comm",
		Title:   "average report size on the BR schema (bytes/user, wire format)",
		XLabel:  "eps",
		YLabel:  "mean frame bytes per user",
		Columns: []string{"proposed", "split-laplace+oue", "duchi+oue"},
	}
	const users = 300
	for _, eps := range opts.EpsList {
		propBytes, err := meanProposedBytes(c, eps, users, opts.Seed)
		if err != nil {
			return nil, err
		}
		splitBytes, err := meanSplitBytes(sch, c, eps, users, opts.Seed, false)
		if err != nil {
			return nil, err
		}
		duchiBytes, err := meanSplitBytes(sch, c, eps, users, opts.Seed, true)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, TableRow{
			X:      fmt.Sprintf("%g", eps),
			Values: []float64{propBytes, splitBytes, duchiBytes},
		})
	}
	return []Table{t}, nil
}

func meanProposedBytes(c *dataset.Census, eps float64, users int, seed uint64) (float64, error) {
	col, err := core.NewCollector(c.Schema(), eps, pmFactory, oueFactory)
	if err != nil {
		return 0, err
	}
	total := 0
	for u := 0; u < users; u++ {
		r := rng.NewStream(seed, uint64(u))
		rep, err := col.Perturb(c.Tuple(r), r)
		if err != nil {
			return 0, err
		}
		total += len(transport.EncodeReport(rep))
	}
	return float64(total) / float64(users), nil
}

// meanSplitBytes sizes the best-effort baseline's upload: a report frame
// carrying every attribute (numeric entries for the numeric block —
// identical size for Laplace noise values and Duchi corner coordinates —
// and one OUE bitset per categorical attribute).
func meanSplitBytes(sch *schema.Schema, c *dataset.Census, eps float64, users int, seed uint64, useDuchi bool) (float64, error) {
	numIdx, catIdx := sch.NumericIdx(), sch.CategoricalIdx()
	d := sch.Dim()
	epsEach := eps / float64(d)
	var du *duchi.Multi
	var err error
	if useDuchi && len(numIdx) > 0 {
		du, err = duchi.NewMulti(eps*float64(len(numIdx))/float64(d), len(numIdx))
		if err != nil {
			return 0, err
		}
	}
	oracles := make([]freq.Oracle, len(catIdx))
	for i, a := range catIdx {
		if oracles[i], err = freq.NewOUE(epsEach, sch.Attrs[a].Cardinality); err != nil {
			return 0, err
		}
	}
	total := 0
	numVec := make([]float64, len(numIdx))
	for u := 0; u < users; u++ {
		r := rng.NewStream(seed, uint64(u))
		tup := c.Tuple(r)
		var entries []core.Entry
		if du != nil {
			for i, a := range numIdx {
				numVec[i] = tup.Num[a]
			}
			for i, v := range du.PerturbVector(numVec, r) {
				entries = append(entries, core.Entry{Attr: numIdx[i], Kind: core.EntryNumeric, Value: v})
			}
		} else {
			for _, a := range numIdx {
				entries = append(entries, core.Entry{Attr: a, Kind: core.EntryNumeric, Value: tup.Num[a]})
			}
		}
		for i, a := range catIdx {
			entries = append(entries, core.Entry{
				Attr: a,
				Kind: core.EntryCategoricalBits,
				Resp: oracles[i].Perturb(tup.Cat[a], r),
			})
		}
		total += len(transport.EncodeReport(core.Report{Entries: entries}))
	}
	return float64(total) / float64(users), nil
}
