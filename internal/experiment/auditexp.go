package experiment

import (
	"fmt"

	"ldp/internal/audit"
	"ldp/internal/core"
	"ldp/internal/freq"
	"ldp/internal/pipeline"
	"ldp/internal/rangequery"
	"ldp/internal/schema"
)

// The audit experiment black-box audits one honest randomizer per task
// kind across the eps sweep and emits the empirical-eps lower bound
// (audit.Result.EmpiricalEps) per mechanism: an eps_emp-vs-eps curve. For
// honest mechanisms eps_emp must stay at or below the claimed eps (the
// audit is a lower bound); the overclaim column audits a mechanism that
// spends 4x the eps it claims and demonstrates the engine's teeth by
// rising far above the diagonal. Options.N is the per-probe sample count,
// so `-n` trades audit tightness for speed.

func init() {
	register(Runner{
		Name: "audit",
		Desc: "empirical eps lower bounds (eps_emp) per task kind vs claimed eps, plus an overclaim control",
		Run:  runAuditExp,
	})
}

var auditColumns = []string{"pm", "hm", "grr8", "oue8", "hier16", "grid4", "gradient", "wire", "overclaim-pm"}

func runAuditExp(o Options) ([]Table, error) {
	o = o.normalized()
	tab := Table{
		ID:      "audit",
		Title:   "Black-box eps-LDP audit: empirical eps lower bounds",
		XLabel:  "claimed eps",
		YLabel:  "eps_emp lower bound (overclaim-pm spends 4x its claim)",
		Columns: auditColumns,
	}
	type rowRes struct {
		vals []float64
		err  error
	}
	rows := make([]rowRes, len(o.EpsList))
	_, err := collectRuns(len(o.EpsList), o.Workers, func(run int) (map[string]float64, error) {
		vals, err := auditRow(o, o.EpsList[run], o.Seed+uint64(run)*1000)
		rows[run] = rowRes{vals: vals, err: err}
		return nil, err
	})
	if err != nil {
		return nil, err
	}
	for i, eps := range o.EpsList {
		if rows[i].err != nil {
			return nil, rows[i].err
		}
		tab.Rows = append(tab.Rows, TableRow{X: fmt.Sprintf("%g", eps), Values: rows[i].vals})
	}
	return []Table{tab}, nil
}

// auditRow audits every column's randomizer at one claimed eps and
// returns the eps_emp values aligned with auditColumns.
func auditRow(o Options, eps float64, seed uint64) ([]float64, error) {
	cfg := func(i int) audit.Config {
		return audit.Config{Samples: o.N, Seed: seed + uint64(i)}
	}
	var vals []float64
	add := func(res audit.Result, err error) error {
		if err != nil {
			return err
		}
		vals = append(vals, res.EmpiricalEps)
		return nil
	}

	pm, err := core.NewPiecewise(eps)
	if err != nil {
		return nil, err
	}
	if err := add(audit.Mechanism(pm, cfg(0))); err != nil {
		return nil, err
	}
	hm, err := core.NewHybrid(eps)
	if err != nil {
		return nil, err
	}
	if err := add(audit.Mechanism(hm, cfg(1))); err != nil {
		return nil, err
	}

	grr, err := freq.NewGRR(eps, 8)
	if err != nil {
		return nil, err
	}
	if err := add(audit.Oracle(grr, nil, cfg(2))); err != nil {
		return nil, err
	}
	oue, err := freq.NewOUE(eps, 8)
	if err != nil {
		return nil, err
	}
	if err := add(audit.Oracle(oue, nil, cfg(3))); err != nil {
		return nil, err
	}

	hier, err := rangequery.NewHierCollector(eps, 16, nil)
	if err != nil {
		return nil, err
	}
	if err := add(audit.Hierarchy(hier, nil, cfg(4))); err != nil {
		return nil, err
	}
	grid, err := rangequery.NewGridCollector(eps, 4, nil)
	if err != nil {
		return nil, err
	}
	if err := add(audit.Grid(grid, nil, cfg(5))); err != nil {
		return nil, err
	}

	// Gradient: audit the exact per-coordinate mechanism instance the
	// gradient task perturbs with (its own claim is eps/k; k coordinates
	// compose to eps per report).
	gs, err := schema.New(schema.Attribute{Name: "x", Kind: schema.Numeric})
	if err != nil {
		return nil, err
	}
	gp, err := pipeline.New(gs, eps, pipeline.WithGradient(pipeline.GradientConfig{
		Dim: 30, Rounds: 5, GroupSize: 32, Eta: 1, Lambda: 1e-4,
	}))
	if err != nil {
		return nil, err
	}
	if err := add(audit.Mechanism(gp.GradientTask().Mechanism(), cfg(6))); err != nil {
		return nil, err
	}

	// End-to-end wire path over a small mixed schema with range reports.
	ws, err := schema.New(
		schema.Attribute{Name: "x", Kind: schema.Numeric},
		schema.Attribute{Name: "y", Kind: schema.Numeric},
		schema.Attribute{Name: "c", Kind: schema.Categorical, Cardinality: 4},
	)
	if err != nil {
		return nil, err
	}
	wp, err := pipeline.New(ws, eps, pipeline.WithRange(rangequery.Config{Buckets: 8, GridCells: 2}))
	if err != nil {
		return nil, err
	}
	a := schema.NewTuple(ws)
	a.Num[0], a.Num[1], a.Cat[2] = -1, -1, 0
	b := schema.NewTuple(ws)
	b.Num[0], b.Num[1], b.Cat[2] = 1, 1, 3
	if err := add(audit.WirePath(wp, []schema.Tuple{a, b}, cfg(7))); err != nil {
		return nil, err
	}

	// The teeth control: a PM spending 4x its claimed budget. Its eps_emp
	// must sit far above the diagonal while every honest column stays at
	// or below it.
	spend, err := core.NewPiecewise(4 * eps)
	if err != nil {
		return nil, err
	}
	if err := add(audit.Mechanism(audit.Overclaim(spend, eps), cfg(8))); err != nil {
		return nil, err
	}
	return vals, nil
}
