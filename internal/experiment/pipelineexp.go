package experiment

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"ldp/internal/core"
	"ldp/internal/dataset"
	"ldp/internal/pipeline"
	"ldp/internal/rng"
)

func init() {
	register(Runner{
		Name: "pipeline",
		Desc: "unified-pipeline ingest throughput: sharded aggregator (1/4/8 shards), per-report Add vs columnar AddBatch (1/64/1024 reports per batch), vs legacy single lock",
		Run:  runPipelineBench,
	})
}

// pipelineBatchSizes is the batch-size axis of the ingest benchmark: one
// AddBatch call folds this many reports.
var pipelineBatchSizes = []int{1, 64, 1024}

// pipelineShardCounts is the shard axis of the ingest benchmark.
var pipelineShardCounts = []int{1, 4, 8}

// runPipelineBench measures server-side ingest throughput (reports/sec):
// the legacy single-lock core.Aggregator against the unified pipeline's
// sharded aggregator at 1, 4, and 8 shards, ingesting per report (Add)
// and in columnar batches of 1, 64, and 1024 reports (AddBatch). Reports
// are pre-randomized (and pre-batched) so only the fold is on the clock;
// opts.Workers goroutines feed each aggregator and the best of opts.Runs
// timings is reported (throughput is a max-statistic: slower runs measure
// scheduler interference, not the data structure).
func runPipelineBench(opts Options) ([]Table, error) {
	opts = opts.normalized()
	c := dataset.NewBR()
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Pre-randomize the unified report stream once; every pipeline
	// configuration ingests the identical stream.
	p0, err := pipeline.New(c.Schema(), opts.Eps)
	if err != nil {
		return nil, err
	}
	reps := make([]pipeline.Report, opts.N)
	for i := range reps {
		r := rng.NewStream(opts.Seed, uint64(i))
		rep, err := p0.Randomize(c.Tuple(r), r)
		if err != nil {
			return nil, err
		}
		reps[i] = rep
	}

	// And the legacy stream for the single-lock baseline.
	col, err := core.NewCollector(c.Schema(), opts.Eps, pmFactory, oueFactory)
	if err != nil {
		return nil, err
	}
	legacy := make([]core.Report, opts.N)
	for i := range legacy {
		r := rng.NewStream(opts.Seed+1, uint64(i))
		rep, err := col.Perturb(c.Tuple(r), r)
		if err != nil {
			return nil, err
		}
		legacy[i] = rep
	}

	// Pre-batch the unified stream once per batch size; batches are only
	// read during AddBatch, so every run and shard configuration can share
	// them.
	batchesBySize := make(map[int][]*pipeline.ReportBatch, len(pipelineBatchSizes))
	for _, bs := range pipelineBatchSizes {
		var batches []*pipeline.ReportBatch
		for lo := 0; lo < len(reps); lo += bs {
			hi := lo + bs
			if hi > len(reps) {
				hi = len(reps)
			}
			b := pipeline.NewReportBatch()
			for _, rep := range reps[lo:hi] {
				b.Append(rep)
			}
			batches = append(batches, b)
		}
		batchesBySize[bs] = batches
	}

	// timeIngest clocks items 0..n-1 (reports or whole batches, weighing
	// nReports in total) split contiguously across the workers.
	timeIngest := func(n, nReports int, add func(i int) error) (float64, error) {
		var firstErr error
		var mu sync.Mutex
		start := time.Now()
		var wg sync.WaitGroup
		chunk := (n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					if err := add(i); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
				}
			}(lo, hi)
		}
		wg.Wait()
		elapsed := time.Since(start)
		if firstErr != nil {
			return 0, firstErr
		}
		return float64(nReports) / elapsed.Seconds(), nil
	}

	best := func(n int, build func() (func(i int) error, error)) (float64, error) {
		bestRate := 0.0
		for run := 0; run < opts.Runs; run++ {
			add, err := build()
			if err != nil {
				return 0, err
			}
			rate, err := timeIngest(n, len(reps), add)
			if err != nil {
				return 0, err
			}
			if rate > bestRate {
				bestRate = rate
			}
		}
		return bestRate, nil
	}

	table := Table{
		ID:      "pipeline",
		Title:   fmt.Sprintf("ingest throughput, %d reports, %d workers (best of %d runs)", opts.N, workers, opts.Runs),
		XLabel:  "aggregator",
		YLabel:  "reports/sec",
		Columns: []string{"reports_per_sec"},
	}

	rate, err := best(len(legacy), func() (func(i int) error, error) {
		agg := core.NewAggregator(col)
		return func(i int) error { return agg.Add(legacy[i]) }, nil
	})
	if err != nil {
		return nil, err
	}
	table.Rows = append(table.Rows, TableRow{X: "legacy-single-lock", Values: []float64{rate}})

	for _, shards := range pipelineShardCounts {
		newPipeline := func() (*pipeline.Pipeline, error) {
			return pipeline.New(c.Schema(), opts.Eps, pipeline.WithShards(shards))
		}
		rate, err := best(len(reps), func() (func(i int) error, error) {
			p, err := newPipeline()
			if err != nil {
				return nil, err
			}
			return func(i int) error { return p.Add(reps[i]) }, nil
		})
		if err != nil {
			return nil, err
		}
		table.Rows = append(table.Rows, TableRow{X: fmt.Sprintf("pipeline-%d-shards", shards), Values: []float64{rate}})

		for _, bs := range pipelineBatchSizes {
			batches := batchesBySize[bs]
			rate, err := best(len(batches), func() (func(i int) error, error) {
				p, err := newPipeline()
				if err != nil {
					return nil, err
				}
				return func(i int) error { return p.AddBatch(batches[i]) }, nil
			})
			if err != nil {
				return nil, err
			}
			table.Rows = append(table.Rows, TableRow{X: fmt.Sprintf("pipeline-%d-shards-batch%d", shards, bs), Values: []float64{rate}})
		}
	}
	return []Table{table}, nil
}
