package experiment

import (
	"fmt"
	"time"

	"ldp/internal/hist"
	"ldp/internal/mech"
	"ldp/internal/rangequery"
	"ldp/internal/rng"
	"ldp/internal/schema"
)

func init() {
	register(Runner{
		Name: "range",
		Desc: "Range queries: 1-D hierarchical vs flat MSE, 2-D grid MSE, and collection throughput vs eps",
		Run:  runRange,
	})
}

// The range workload measures the new rangequery subsystem on a synthetic
// two-attribute population (correlated truncated Gaussians): the mean
// squared error of 1-D range answers through the hierarchical interval
// oracle versus the flat B-bucket histogram baseline, the MSE of 2-D
// rectangle answers through the consistent g x g grid, and the user-side
// collection throughput (perturb + aggregate) in reports per second.
const (
	rangeBuckets = 256
	rangeCells   = 8
)

// rangeQueries1D are value ranges evaluated on both 1-D protocols; they
// mix narrow, medium and wide spans.
var rangeQueries1D = [][2]float64{
	{-0.25, 0.25}, {0, 0.75}, {-0.9, -0.4}, {-0.5, 1}, {0.4, 0.6},
}

// rangeQueries2D are (x-range, y-range) rectangles for the grid.
var rangeQueries2D = [][4]float64{
	{-0.5, 0.5, -0.5, 0.5}, {0, 1, -1, 0}, {-0.75, 0, -0.25, 0.75},
}

func runRange(opts Options) ([]Table, error) {
	opts = opts.normalized()
	s, err := schema.New(
		schema.Attribute{Name: "x", Kind: schema.Numeric},
		schema.Attribute{Name: "y", Kind: schema.Numeric},
	)
	if err != nil {
		return nil, err
	}

	accuracy := Table{
		ID:      "range-mse",
		Title:   fmt.Sprintf("range-query MSE, n=%d, B=%d, g=%d", opts.N, rangeBuckets, rangeCells),
		XLabel:  "eps",
		YLabel:  "mean squared error over the query workload",
		Columns: []string{"1d-hier", "1d-flat", "2d-grid"},
	}
	speed := Table{
		ID:      "range-throughput",
		Title:   "range-report collection throughput (perturb + aggregate)",
		XLabel:  "eps",
		YLabel:  "thousand reports per second",
		Columns: []string{"kreports/s"},
	}

	for _, eps := range opts.EpsList {
		avg, err := averageRuns(opts.Runs, opts.Workers, func(run int) (map[string]float64, error) {
			return rangeRun(s, eps, opts.N, opts.Seed+uint64(1000*run))
		})
		if err != nil {
			return nil, err
		}
		x := fmt.Sprintf("%g", eps)
		accuracy.Rows = append(accuracy.Rows, TableRow{
			X:      x,
			Values: []float64{avg["hier"], avg["flat"], avg["grid"]},
		})
		speed.Rows = append(speed.Rows, TableRow{
			X:      x,
			Values: []float64{avg["krps"]},
		})
	}
	return []Table{accuracy, speed}, nil
}

// rangeRun simulates one population of n users through the range pipeline
// and the flat baseline, and scores both against the empirical truth.
func rangeRun(s *schema.Schema, eps float64, n int, seed uint64) (map[string]float64, error) {
	col, err := rangequery.NewCollector(s, eps, rangequery.Config{
		Buckets: rangeBuckets, GridCells: rangeCells,
	})
	if err != nil {
		return nil, err
	}
	agg := rangequery.NewAggregator(col)
	// Flat baseline: each user reports their leaf bucket of one uniformly
	// sampled attribute through OUE over all B values.
	flatCol, err := hist.NewCollector(eps, rangeBuckets, nil)
	if err != nil {
		return nil, err
	}
	flatEst := []*hist.Estimator{hist.NewEstimator(flatCol), hist.NewEstimator(flatCol)}

	vals := make([][2]float64, n)
	start := time.Now()
	for i := 0; i < n; i++ {
		r := rng.NewStream(seed, uint64(i))
		x := rng.TruncGauss(r, 0.2, 0.4, -1, 1)
		y := mech.Clamp1(-x/2 + 0.3*r.NormFloat64())
		vals[i] = [2]float64{x, y}
		tp := schema.NewTuple(s)
		tp.Num[0], tp.Num[1] = x, y
		rep, err := col.Perturb(tp, r)
		if err != nil {
			return nil, err
		}
		if err := agg.Add(rep); err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start)
	for i := 0; i < n; i++ {
		r := rng.NewStream(seed+7, uint64(i))
		a := r.IntN(2)
		flatEst[a].Add(flatCol.Perturb(vals[i][a], r))
	}

	res := map[string]float64{
		"krps": float64(n) / elapsed.Seconds() / 1000,
	}
	// 1-D MSE over both attributes and the query workload.
	var hierSE, flatSE float64
	for a := 0; a < 2; a++ {
		for _, q := range rangeQueries1D {
			truth := 0.0
			for _, v := range vals {
				if v[a] >= q[0] && v[a] <= q[1] {
					truth++
				}
			}
			truth /= float64(n)
			got, err := agg.Range1D(a, q[0], q[1])
			if err != nil {
				return nil, err
			}
			hierSE += (got - truth) * (got - truth)
			flat := flatEst[a].RangeMass(q[0], q[1])
			flatSE += (flat - truth) * (flat - truth)
		}
	}
	nq := float64(2 * len(rangeQueries1D))
	res["hier"] = hierSE / nq
	res["flat"] = flatSE / nq

	var gridSE float64
	for _, q := range rangeQueries2D {
		truth := 0.0
		for _, v := range vals {
			if v[0] >= q[0] && v[0] <= q[1] && v[1] >= q[2] && v[1] <= q[3] {
				truth++
			}
		}
		truth /= float64(n)
		got, err := agg.Range2D(0, 1, q[0], q[1], q[2], q[3])
		if err != nil {
			return nil, err
		}
		gridSE += (got - truth) * (got - truth)
	}
	res["grid"] = gridSE / float64(len(rangeQueries2D))
	return res, nil
}
