package experiment

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"time"

	"ldp/internal/cluster"
	"ldp/internal/core"
	"ldp/internal/dataset"
	"ldp/internal/pipeline"
	"ldp/internal/rangequery"
	"ldp/internal/rng"
	"ldp/internal/transport"
)

func init() {
	register(Runner{
		Name: "fanin",
		Desc: "cluster fan-in: aggregate ingest rate and end-to-end mean MSE for 1 root x 2/4/8 edges vs a single node, over real HTTP /v1/merge pushes",
		Run:  runFaninBench,
	})
}

// faninEdgeCounts is the fleet-size axis.
var faninEdgeCounts = []int{2, 4, 8}

const faninBatchSize = 1024

// runFaninBench models an edge->root aggregation tier and compares it
// with one node ingesting everything. Edges of a real deployment are
// separate machines, so on a single benchmarking host each edge's ingest
// is timed in isolation (serially, with nothing else running) and the
// fleet's aggregate rate is the sum of the isolated rates — the standard
// scale-out model for shared-nothing ingest, which fan-in makes exact
// here because edges share no state until the merge. The root's cost of
// absorbing the fleet — full snapshot encode, HTTP push, decode,
// validate, fold — is measured separately over real /v1/merge requests,
// and the end-to-end check is strict: the root's estimates after all
// pushes must be bit-identical to the single node's (report values are
// dyadically quantized so float summation is exact under regrouping),
// hence identical MSE against ground truth.
func runFaninBench(opts Options) ([]Table, error) {
	opts = opts.normalized()
	c := dataset.NewBR()

	newPipeline := func() (*pipeline.Pipeline, error) {
		return pipeline.New(c.Schema(), opts.Eps,
			pipeline.WithShards(1), // single-core host: shards add nothing here
			pipeline.WithRange(rangequery.Config{}),
		)
	}

	// Randomize the whole population once; every configuration ingests
	// the same reports. Numeric payloads are snapped to a 2^-10 dyadic
	// grid so per-edge partial sums recombine bit-exactly at the root.
	p0, err := newPipeline()
	if err != nil {
		return nil, err
	}
	sch := c.Schema()
	numeric := sch.NumericIdx()
	trueSum := make([]float64, sch.Dim())
	reports := make([]pipeline.Report, opts.N)
	for i := range reports {
		r := rng.NewStream(opts.Seed, uint64(i))
		tup := c.Tuple(r)
		for _, j := range numeric {
			trueSum[j] += tup.Num[j]
		}
		rep, err := p0.Randomize(tup, r)
		if err != nil {
			return nil, err
		}
		for e := range rep.Entries {
			if rep.Entries[e].Kind == core.EntryNumeric {
				rep.Entries[e].Value = math.Round(rep.Entries[e].Value*1024) / 1024
			}
		}
		reports[i] = rep
	}

	// meanMSE scores a result's mean estimates against ground truth.
	meanMSE := func(res *pipeline.Result) (float64, error) {
		var sum float64
		for _, j := range numeric {
			est, err := res.Mean(sch.Attrs[j].Name)
			if err != nil {
				return 0, err
			}
			diff := est - trueSum[j]/float64(opts.N)
			sum += diff * diff
		}
		return sum / float64(len(numeric)), nil
	}

	// batchify splits a report subset into ingest batches.
	batchify := func(reps []pipeline.Report) []*pipeline.ReportBatch {
		var batches []*pipeline.ReportBatch
		b := pipeline.NewReportBatch()
		for _, rep := range reps {
			b.Append(rep)
			if b.Len() == faninBatchSize {
				batches = append(batches, b)
				b = pipeline.NewReportBatch()
			}
		}
		if b.Len() > 0 {
			batches = append(batches, b)
		}
		return batches
	}

	// timeIngest clocks batches into a pipeline, best of opts.Runs
	// (ingest only; the pipeline keeps the last run's reports folded in,
	// which later runs' timings are insensitive to — folding is pure
	// array addition, independent of accumulated totals).
	timeIngest := func(p *pipeline.Pipeline, batches []*pipeline.ReportBatch, n int) (float64, error) {
		best := 0.0
		for run := 0; run < opts.Runs; run++ {
			start := time.Now()
			for _, b := range batches {
				if err := p.AddBatch(b); err != nil {
					return 0, err
				}
			}
			if rate := float64(n) / time.Since(start).Seconds(); rate > best {
				best = rate
			}
		}
		return best, nil
	}

	// Single-node baseline: one pipeline ingests everything.
	single, err := newPipeline()
	if err != nil {
		return nil, err
	}
	singleRate, err := timeIngest(single, batchify(reports), opts.N)
	if err != nil {
		return nil, err
	}
	// Rebuild cleanly for the exactness reference (timing runs folded the
	// population opts.Runs times).
	single, err = newPipeline()
	if err != nil {
		return nil, err
	}
	for _, rep := range reports {
		if err := single.Add(rep); err != nil {
			return nil, err
		}
	}
	singleView := single.Snapshot()
	singleMSE, err := meanMSE(singleView)
	if err != nil {
		return nil, err
	}

	table := Table{
		ID: "fanin",
		Title: fmt.Sprintf("edge->root fan-in over /v1/merge, %d reports split across the fleet (per-edge rates measured in isolation, best of %d; aggregate = sum)",
			opts.N, opts.Runs),
		XLabel:  "topology",
		YLabel:  "see columns",
		Columns: []string{"aggregate_reports_per_sec", "speedup_vs_single", "merge_wall_ms", "merge_reports_per_sec", "mean_mse", "exact_vs_single"},
	}
	table.Rows = append(table.Rows, TableRow{
		X:      "single",
		Values: []float64{singleRate, 1, 0, 0, singleMSE, 1},
	})

	for _, edges := range faninEdgeCounts {
		// Partition the population round-robin across the fleet.
		parts := make([][]pipeline.Report, edges)
		for i, rep := range reports {
			parts[i%edges] = append(parts[i%edges], rep)
		}

		// Isolated per-edge ingest rates (the timing pipelines are
		// throwaways; the fan-in below uses freshly built edges so the
		// root receives each report exactly once).
		aggregate := 0.0
		for e := 0; e < edges; e++ {
			p, err := newPipeline()
			if err != nil {
				return nil, err
			}
			rate, err := timeIngest(p, batchify(parts[e]), len(parts[e]))
			if err != nil {
				return nil, err
			}
			aggregate += rate
		}

		// Real fan-in: edges push their full state to a root server over
		// HTTP, timed end to end (snapshot, encode, POST, decode,
		// validate, fold, ack).
		root, err := newPipeline()
		if err != nil {
			return nil, err
		}
		srv := httptest.NewServer(transport.NewPipelineServer(root, nil))
		mergeStart := time.Now()
		for e := 0; e < edges; e++ {
			p, err := newPipeline()
			if err != nil {
				srv.Close()
				return nil, err
			}
			for _, rep := range parts[e] {
				if err := p.Add(rep); err != nil {
					srv.Close()
					return nil, err
				}
			}
			fw, err := cluster.NewForwarder(p, cluster.ForwarderConfig{
				RootURL: srv.URL,
				EdgeID:  fmt.Sprintf("edge-%d", e),
			})
			if err != nil {
				srv.Close()
				return nil, err
			}
			if err := fw.Push(context.Background()); err != nil {
				srv.Close()
				return nil, err
			}
		}
		mergeWall := time.Since(mergeStart)
		srv.Close()

		// End-to-end exactness: the root must reproduce the single node
		// bit for bit.
		rootView := root.Snapshot()
		exact := 1.0
		if rootView.N() != singleView.N() {
			return nil, fmt.Errorf("fanin: root N %d != single %d", rootView.N(), singleView.N())
		}
		sm, rm := singleView.Means(), rootView.Means()
		for k, v := range sm {
			if rm[k] != v {
				return nil, fmt.Errorf("fanin: Means[%s] diverged: root %v, single %v", k, rm[k], v)
			}
		}
		rootMSE, err := meanMSE(rootView)
		if err != nil {
			return nil, err
		}

		table.Rows = append(table.Rows, TableRow{
			X: fmt.Sprintf("%d edges", edges),
			Values: []float64{
				aggregate,
				aggregate / singleRate,
				float64(mergeWall.Milliseconds()),
				float64(opts.N) / mergeWall.Seconds(),
				rootMSE,
				exact,
			},
		})
	}
	return []Table{table}, nil
}
