// Package experiment regenerates every table and figure of the paper's
// evaluation (Section VI) plus the design-choice ablations listed in
// DESIGN.md. Each experiment is a named Runner producing one or more
// Tables; cmd/ldpbench and the repository's benchmark suite are thin
// wrappers around this package.
//
// Experiments are deterministic for a fixed Options.Seed: user i of run r
// always draws from the same PRNG stream regardless of parallelism.
package experiment

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"ldp/internal/core"
	"ldp/internal/freq"
	"ldp/internal/mech"
	"ldp/internal/noise"
)

// Options control experiment scale. The defaults reproduce the paper's
// comparisons at laptop scale (see DESIGN.md for the scaling argument);
// raise N, Runs and ERMUsers toward the paper's 4M/100-run configuration
// when more time is available.
type Options struct {
	// N is the population size for mean/frequency estimation experiments.
	N int
	// Runs is the number of independent repetitions averaged per point.
	Runs int
	// Seed is the base PRNG seed.
	Seed uint64
	// Workers bounds the number of concurrently executing runs.
	Workers int
	// EpsList is the privacy-budget sweep for the eps-axis figures.
	EpsList []float64
	// Eps is the fixed budget for figures whose x-axis is not eps.
	Eps float64
	// ERMUsers is the dataset size for the SGD experiments.
	ERMUsers int
	// Splits is the number of train/test splits per ERM configuration.
	Splits int
}

// Defaults returns the default experiment options.
func Defaults() Options {
	return Options{
		N:        100_000,
		Runs:     5,
		Seed:     1,
		Workers:  runtime.GOMAXPROCS(0),
		EpsList:  []float64{0.5, 1, 2, 4},
		Eps:      1,
		ERMUsers: 40_000,
		Splits:   3,
	}
}

func (o Options) normalized() Options {
	d := Defaults()
	if o.N <= 0 {
		o.N = d.N
	}
	if o.Runs <= 0 {
		o.Runs = d.Runs
	}
	if o.Workers <= 0 {
		o.Workers = d.Workers
	}
	if len(o.EpsList) == 0 {
		o.EpsList = d.EpsList
	}
	if o.Eps <= 0 {
		o.Eps = d.Eps
	}
	if o.ERMUsers <= 0 {
		o.ERMUsers = d.ERMUsers
	}
	if o.Splits <= 0 {
		o.Splits = d.Splits
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

// Table is one figure panel or table: named value columns over an x axis.
type Table struct {
	// ID is the experiment identifier ("fig4"), Title a human caption.
	ID, Title string
	// XLabel names the x column; YLabel describes the values.
	XLabel, YLabel string
	// Columns are the series names, aligned with TableRow.Values.
	Columns []string
	// Rows hold one x position each.
	Rows []TableRow
}

// TableRow is one x position of a Table.
type TableRow struct {
	X      string
	Values []float64
}

// Runner is a registered experiment.
type Runner struct {
	// Name is the CLI identifier (e.g. "fig4").
	Name string
	// Desc is a one-line description shown by `ldpbench -list`.
	Desc string
	// Run executes the experiment.
	Run func(Options) ([]Table, error)
}

var registry = map[string]Runner{}

func register(r Runner) {
	if _, dup := registry[r.Name]; dup {
		panic("experiment: duplicate runner " + r.Name)
	}
	registry[r.Name] = r
}

// Get returns the named runner.
func Get(name string) (Runner, error) {
	r, ok := registry[name]
	if !ok {
		return Runner{}, fmt.Errorf("experiment: unknown experiment %q (use -list)", name)
	}
	return r, nil
}

// All returns every registered runner sorted by name.
func All() []Runner {
	out := make([]Runner, 0, len(registry))
	for _, r := range registry {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// --- shared factories ---

func pmFactory(eps float64) (mech.Mechanism, error)  { return core.NewPiecewise(eps) }
func hmFactory(eps float64) (mech.Mechanism, error)  { return core.NewHybrid(eps) }
func lapFactory(eps float64) (mech.Mechanism, error) { return noise.NewLaplace(eps) }
func scdfFactory(eps float64) (mech.Mechanism, error) {
	return noise.NewSCDF(eps)
}
func stairFactory(eps float64) (mech.Mechanism, error) {
	return noise.NewStaircase(eps)
}
func oueFactory(eps float64, k int) (freq.Oracle, error) { return freq.NewOUE(eps, k) }
func grrFactory(eps float64, k int) (freq.Oracle, error) { return freq.NewGRR(eps, k) }
func sueFactory(eps float64, k int) (freq.Oracle, error) { return freq.NewSUE(eps, k) }

// --- parallel run averaging ---

// collectRuns executes f for run indices 0..runs-1 (at most workers
// concurrently) and returns the per-run result maps in index order.
func collectRuns(runs, workers int, f func(run int) (map[string]float64, error)) ([]map[string]float64, error) {
	if workers > runs {
		workers = runs
	}
	results := make([]map[string]float64, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for run := 0; run < runs; run++ {
		wg.Add(1)
		go func(run int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[run], errs[run] = f(run)
		}(run)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// mergeRuns runs f in parallel and merges the disjoint-key result maps
// without averaging (used when each invocation computes different series,
// e.g. one method each).
func mergeRuns(runs, workers int, f func(run int) (map[string]float64, error)) (map[string]float64, error) {
	results, err := collectRuns(runs, workers, f)
	if err != nil {
		return nil, err
	}
	merged := map[string]float64{}
	for _, m := range results {
		for k, v := range m {
			merged[k] = v
		}
	}
	return merged, nil
}

// averageRuns executes f for run indices 0..runs-1 (at most workers
// concurrently) and averages the per-key results. Every run must produce
// the same key set (use mergeRuns for disjoint keys).
func averageRuns(runs, workers int, f func(run int) (map[string]float64, error)) (map[string]float64, error) {
	results, err := collectRuns(runs, workers, f)
	if err != nil {
		return nil, err
	}
	avg := map[string]float64{}
	for _, m := range results {
		for k, v := range m {
			avg[k] += v
		}
	}
	for k := range avg {
		avg[k] /= float64(runs)
	}
	return avg, nil
}
