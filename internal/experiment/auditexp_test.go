package experiment

import "testing"

func TestAuditExperiment(t *testing.T) {
	r, err := Get("audit")
	if err != nil {
		t.Fatal(err)
	}
	// Reduced sample count: the Clopper-Pearson bounds only get looser
	// (more conservative) with fewer samples, so honest columns cannot
	// false-flag, and the 4x overclaim control is strong enough to clear
	// the diagonal even at 3000 samples per probe.
	tables, err := r.Run(Options{N: 3_000, Seed: 42, EpsList: []float64{0.5, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("want 1 table, got %d", len(tables))
	}
	tab := tables[0]
	if len(tab.Columns) != len(auditColumns) {
		t.Fatalf("want %d columns, got %v", len(auditColumns), tab.Columns)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(tab.Rows))
	}
	overIdx := len(tab.Columns) - 1
	if tab.Columns[overIdx] != "overclaim-pm" {
		t.Fatalf("last column must be the overclaim control, got %q", tab.Columns[overIdx])
	}
	for i, eps := range []float64{0.5, 2} {
		row := tab.Rows[i]
		if len(row.Values) != len(tab.Columns) {
			t.Fatalf("row %d: %d values for %d columns", i, len(row.Values), len(tab.Columns))
		}
		for c, v := range row.Values {
			if c == overIdx {
				if v <= eps {
					t.Errorf("eps=%g: overclaim control eps_emp=%v did not exceed the claimed eps", eps, v)
				}
				continue
			}
			if v < 0 || v > eps {
				t.Errorf("eps=%g %s: honest eps_emp=%v outside [0, eps]", eps, tab.Columns[c], v)
			}
		}
	}
}

func TestAuditExperimentDeterministic(t *testing.T) {
	r, err := Get("audit")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{N: 1_500, Seed: 7, EpsList: []float64{1}}
	a, err := r.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	for c := range a[0].Rows[0].Values {
		if a[0].Rows[0].Values[c] != b[0].Rows[0].Values[c] {
			t.Fatalf("column %s not deterministic: %v vs %v",
				a[0].Columns[c], a[0].Rows[0].Values[c], b[0].Rows[0].Values[c])
		}
	}
}
