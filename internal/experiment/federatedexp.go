package experiment

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"ldp/internal/analysis"
	"ldp/internal/dataset"
	"ldp/internal/erm"
	"ldp/internal/pipeline"
	"ldp/internal/rng"
	"ldp/internal/transport"
)

func init() {
	register(Runner{
		Name: "federated",
		Desc: "Federated LDP-SGD over localhost HTTP: logistic accuracy and ingest throughput vs eps",
		Run:  runFederated,
	})
}

// runFederated trains a logistic-regression model end to end over the
// wire — GradientTask reports through POST /v1/report, model polling
// through GET /v1/model — and compares the resulting test accuracy
// against the in-process non-private SGD baseline, while measuring the
// gradient ingest rate the HTTP path sustains.
func runFederated(opts Options) ([]Table, error) {
	opts = opts.normalized()
	census := dataset.NewBR()
	examples := census.ERMExamples(opts.ERMUsers, opts.Seed)
	d := census.ERMDim()
	train, test := examples[:opts.ERMUsers*9/10], examples[opts.ERMUsers*9/10:]

	acc := Table{
		ID:      "federated",
		Title:   fmt.Sprintf("federated LDP-SGD (logistic) on %s over localhost HTTP (d=%d, n=%d)", census.Name(), d, len(train)),
		XLabel:  "eps",
		YLabel:  "misclassification rate",
		Columns: []string{"federated", "nonprivate"},
	}
	thr := Table{
		ID:      "federated-throughput",
		Title:   "federated LDP-SGD gradient ingest over localhost HTTP",
		XLabel:  "eps",
		YLabel:  "value",
		Columns: []string{"rounds", "group size", "reports/s"},
	}

	const (
		lambda = 1e-4
		eta    = 1.0
	)
	for _, eps := range opts.EpsList {
		groupSize := erm.GroupSizeForVariance(len(train), analysis.MaxVarHMMulti(eps, d))
		rounds := len(train) / groupSize
		if rounds < 1 {
			rounds = 1
		}
		cfg := pipeline.GradientConfig{
			Dim: d, Rounds: rounds, GroupSize: groupSize, Eta: eta, Lambda: lambda,
		}
		rate, elapsed, accepted, err := trainFederated(census, eps, cfg, train, test, opts.Seed)
		if err != nil {
			return nil, err
		}

		base := erm.Config{Task: erm.LogisticRegression, Lambda: lambda, Eta: eta, GroupSize: groupSize}
		beta, err := erm.Train(base, train, nil, opts.Seed)
		if err != nil {
			return nil, err
		}

		x := fmt.Sprintf("%g", eps)
		acc.Rows = append(acc.Rows, TableRow{X: x, Values: []float64{
			rate, erm.MisclassificationRate(beta, test),
		}})
		thr.Rows = append(thr.Rows, TableRow{X: x, Values: []float64{
			float64(rounds), float64(groupSize), float64(accepted) / elapsed.Seconds(),
		}})
	}
	return []Table{acc, thr}, nil
}

// trainFederated runs one full federated training over an httptest
// server and returns the test misclassification rate, the wall-clock
// ingest duration, and the number of accepted gradient reports.
func trainFederated(census *dataset.Census, eps float64, cfg pipeline.GradientConfig, train, test []dataset.ERMExample, seed uint64) (rate float64, elapsed time.Duration, accepted int64, err error) {
	serverPipe, err := pipeline.New(census.Schema(), eps, pipeline.WithGradient(cfg))
	if err != nil {
		return 0, 0, 0, err
	}
	srv := httptest.NewServer(transport.NewPipelineServer(serverPipe, nil))
	defer srv.Close()
	clientPipe, err := pipeline.New(census.Schema(), eps, pipeline.WithGradient(cfg))
	if err != nil {
		return 0, 0, 0, err
	}
	sgd, err := transport.NewSGDClient(srv.URL, clientPipe, erm.LogisticRegression, cfg.Lambda)
	if err != nil {
		return 0, 0, 0, err
	}

	// Round-batched protocol: fetch the model once per round, then submit
	// the whole group's randomized gradients as one batched upload (each
	// user still contributes exactly one report).
	ctx := context.Background()
	start := time.Now()
	pos := 0
	for {
		state, err := sgd.FetchModel(ctx)
		if err != nil {
			return 0, 0, 0, err
		}
		if state.Done || pos+cfg.GroupSize > len(train) {
			break
		}
		r := rng.NewStream(seed^0x5bd1e995, uint64(state.Round))
		if err := sgd.SubmitExamples(ctx, state, train[pos:pos+cfg.GroupSize], r); err != nil {
			return 0, 0, 0, err
		}
		pos += cfg.GroupSize
	}
	elapsed = time.Since(start)

	state, err := sgd.FetchModel(ctx)
	if err != nil {
		return 0, 0, 0, err
	}
	return erm.MisclassificationRate(state.Beta, test), elapsed, state.Accepted, nil
}
