package experiment

import (
	"fmt"

	"ldp/internal/analysis"
	"ldp/internal/core"
)

func init() {
	register(Runner{
		Name: "table1",
		Desc: "Table I: worst-case variance regimes of HM/PM/Duchi (d=1 and d>1)",
		Run:  runTable1,
	})
	register(Runner{
		Name: "fig1",
		Desc: "Fig 1: worst-case noise variance vs eps, one-dimensional mechanisms",
		Run:  runFig1,
	})
	register(Runner{
		Name: "fig2",
		Desc: "Fig 2: Piecewise Mechanism output pdf for t in {0, 0.5, 1}",
		Run:  runFig2,
	})
	register(Runner{
		Name: "fig3",
		Desc: "Fig 3: worst-case variance of PM/HM as a fraction of Duchi's, d in {5,10,20,40}",
		Run:  runFig3,
	})
	register(Runner{
		Name: "ablation-alpha",
		Desc: "Ablation: HM worst-case variance across mixing coefficients alpha vs Eq. 7",
		Run:  runAblationAlpha,
	})
}

// epsGrid returns the dense eps axis used by the analytic figures.
func epsGrid() []float64 {
	var out []float64
	for e := 0.1; e <= 8.001; e += 0.1 {
		out = append(out, e)
	}
	return out
}

func runTable1(Options) ([]Table, error) {
	star, sharp := analysis.EpsStar(), analysis.EpsSharp()
	d1 := Table{
		ID:      "table1",
		Title:   "worst-case variances and regime, d = 1",
		XLabel:  "eps",
		YLabel:  "MaxVar (HM, PM, Duchi); regime per Table I",
		Columns: []string{"MaxVarHM", "MaxVarPM", "MaxVarDuchi"},
	}
	probes := []struct {
		label string
		eps   float64
	}{
		{"0.30", 0.3},
		{fmt.Sprintf("eps*=%.4f", star), star},
		{"0.90", 0.9},
		{fmt.Sprintf("eps#=%.4f", sharp), sharp},
		{"2.00", 2},
		{"4.00", 4},
		{"8.00", 8},
	}
	for _, p := range probes {
		d1.Rows = append(d1.Rows, TableRow{
			X: fmt.Sprintf("%s  [%s]", p.label, analysis.ClassifyD1(p.eps)),
			Values: []float64{
				analysis.MaxVarHM(p.eps),
				analysis.MaxVarPM(p.eps),
				analysis.MaxVarDuchi(p.eps),
			},
		})
	}

	dMulti := Table{
		ID:      "table1",
		Title:   "worst-case per-coordinate variances, d > 1 (HM < PM < Duchi everywhere)",
		XLabel:  "d,eps",
		YLabel:  "MaxVar per coordinate",
		Columns: []string{"MaxVarHM", "MaxVarPM", "MaxVarDuchi"},
	}
	for _, d := range []int{2, 5, 10, 40} {
		for _, eps := range []float64{0.5, 1, 4, 8} {
			dMulti.Rows = append(dMulti.Rows, TableRow{
				X: fmt.Sprintf("d=%d eps=%g", d, eps),
				Values: []float64{
					analysis.MaxVarHMMulti(eps, d),
					analysis.MaxVarPMMulti(eps, d),
					analysis.MaxVarDuchiMulti(eps, d),
				},
			})
		}
	}
	return []Table{d1, dMulti}, nil
}

func runFig1(Options) ([]Table, error) {
	t := Table{
		ID:      "fig1",
		Title:   "worst-case noise variance vs privacy budget (1-D)",
		XLabel:  "eps",
		YLabel:  "worst-case noise variance",
		Columns: []string{"laplace", "duchi", "pm", "hm"},
	}
	for _, eps := range epsGrid() {
		t.Rows = append(t.Rows, TableRow{
			X: fmt.Sprintf("%.2f", eps),
			Values: []float64{
				analysis.VarLaplace(eps),
				analysis.MaxVarDuchi(eps),
				analysis.MaxVarPM(eps),
				analysis.MaxVarHM(eps),
			},
		})
	}
	return []Table{t}, nil
}

func runFig2(opts Options) ([]Table, error) {
	opts = opts.normalized()
	pm, err := core.NewPiecewise(opts.Eps)
	if err != nil {
		return nil, err
	}
	c := pm.SupportBound()
	t := Table{
		ID:      "fig2",
		Title:   fmt.Sprintf("PM output pdf at eps=%g (C=%.4f)", opts.Eps, c),
		XLabel:  "x",
		YLabel:  "pdf(t*=x | t)",
		Columns: []string{"t=0", "t=0.5", "t=1"},
	}
	const steps = 200
	for i := 0; i <= steps; i++ {
		x := -c + 2*c*float64(i)/steps
		t.Rows = append(t.Rows, TableRow{
			X: fmt.Sprintf("%.4f", x),
			Values: []float64{
				pm.Pdf(0, x),
				pm.Pdf(0.5, x),
				pm.Pdf(1, x),
			},
		})
	}
	return []Table{t}, nil
}

func runFig3(Options) ([]Table, error) {
	var tables []Table
	for _, d := range []int{5, 10, 20, 40} {
		t := Table{
			ID:      "fig3",
			Title:   fmt.Sprintf("worst-case variance relative to Duchi et al., d=%d", d),
			XLabel:  "eps",
			YLabel:  "MaxVar(method)/MaxVar(Duchi)",
			Columns: []string{"pm/duchi", "hm/duchi"},
		}
		for _, eps := range epsGrid() {
			du := analysis.MaxVarDuchiMulti(eps, d)
			t.Rows = append(t.Rows, TableRow{
				X: fmt.Sprintf("%.2f", eps),
				Values: []float64{
					analysis.MaxVarPMMulti(eps, d) / du,
					analysis.MaxVarHMMulti(eps, d) / du,
				},
			})
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func runAblationAlpha(opts Options) ([]Table, error) {
	opts = opts.normalized()
	alphas := []float64{0, 0.25, 0.5, 0.75, 1}
	cols := make([]string, 0, len(alphas)+1)
	for _, a := range alphas {
		cols = append(cols, fmt.Sprintf("alpha=%.2f", a))
	}
	cols = append(cols, "alpha=Eq.7")
	t := Table{
		ID:      "ablation-alpha",
		Title:   "HM worst-case variance for fixed mixing coefficients vs the optimal Eq. 7 rule",
		XLabel:  "eps",
		YLabel:  "worst-case noise variance",
		Columns: cols,
	}
	for _, eps := range []float64{0.25, 0.5, 0.61, 1, 1.29, 2, 4, 8} {
		row := TableRow{X: fmt.Sprintf("%.2f", eps)}
		for _, a := range alphas {
			m, err := core.NewHybridAlpha(eps, a)
			if err != nil {
				return nil, err
			}
			row.Values = append(row.Values, m.WorstCaseVariance())
		}
		opt, err := core.NewHybrid(eps)
		if err != nil {
			return nil, err
		}
		row.Values = append(row.Values, opt.WorstCaseVariance())
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}
