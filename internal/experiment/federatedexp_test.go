package experiment

import (
	"testing"
)

func TestFederatedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("federated training is slow; skipped with -short")
	}
	opts := small()
	opts.ERMUsers = 4_000
	opts.EpsList = []float64{4}
	tables, err := runFederated(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("got %d tables, want accuracy + throughput", len(tables))
	}
	acc := tables[0]
	if len(acc.Rows) != 1 || len(acc.Rows[0].Values) != 2 {
		t.Fatalf("unexpected accuracy table shape: %+v", acc.Rows)
	}
	for j, v := range acc.Rows[0].Values {
		if v < 0 || v > 0.7 {
			t.Errorf("%s: misclassification %v implausible", acc.Columns[j], v)
		}
	}
	thr := tables[1]
	rate := thr.Rows[0].Values[2]
	if rate <= 0 {
		t.Errorf("ingest rate %v, want > 0", rate)
	}
}
