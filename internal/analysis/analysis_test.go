package analysis

import (
	"math"
	"testing"

	"ldp/internal/core"
	"ldp/internal/duchi"
	"ldp/internal/mech"
	"ldp/internal/noise"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestClosedFormsMatchMechanisms(t *testing.T) {
	// The analysis formulas are written independently of the mechanism
	// structs; they must agree everywhere.
	for _, eps := range []float64{0.2, 0.61, 1, 1.29, 2, 5, 8} {
		pm, _ := core.NewPiecewise(eps)
		hm, _ := core.NewHybrid(eps)
		du, _ := duchi.NewOneDim(eps)
		la, _ := noise.NewLaplace(eps)
		for _, ti := range []float64{0, 0.3, 0.8, 1} {
			if !almostEqual(VarPM(eps, ti), pm.Variance(ti), 1e-9*pm.Variance(ti)) {
				t.Errorf("eps=%v t=%v: VarPM mismatch", eps, ti)
			}
			if !almostEqual(VarHM(eps, ti), hm.Variance(ti), 1e-9*hm.Variance(ti)) {
				t.Errorf("eps=%v t=%v: VarHM mismatch", eps, ti)
			}
			if !almostEqual(VarDuchi(eps, ti), du.Variance(ti), 1e-9*du.Variance(ti)) {
				t.Errorf("eps=%v t=%v: VarDuchi mismatch", eps, ti)
			}
		}
		if !almostEqual(VarLaplace(eps), la.Variance(0), 1e-9*la.Variance(0)) {
			t.Errorf("eps=%v: VarLaplace mismatch", eps)
		}
		if !almostEqual(MaxVarPM(eps), pm.WorstCaseVariance(), 1e-9*MaxVarPM(eps)) {
			t.Errorf("eps=%v: MaxVarPM mismatch", eps)
		}
		if !almostEqual(MaxVarHM(eps), hm.WorstCaseVariance(), 1e-9*MaxVarHM(eps)) {
			t.Errorf("eps=%v: MaxVarHM mismatch", eps)
		}
	}
}

func TestMaxVarPMIsMaxOverT(t *testing.T) {
	for _, eps := range []float64{0.5, 2} {
		max := 0.0
		for ti := 0.0; ti <= 1.0001; ti += 0.01 {
			max = math.Max(max, VarPM(eps, math.Min(ti, 1)))
		}
		if !almostEqual(max, MaxVarPM(eps), 1e-9*max) {
			t.Errorf("eps=%v: grid max %v != MaxVarPM %v", eps, max, MaxVarPM(eps))
		}
	}
}

func TestCrossoverMatchesEpsSharp(t *testing.T) {
	// The numerically solved PM/Duchi crossover must equal the paper's
	// closed-form eps#.
	got, err := CrossoverPMDuchi()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, EpsSharp(), 1e-6) {
		t.Errorf("crossover = %v, want eps# = %v", got, EpsSharp())
	}
}

func TestNumericAlphaMatchesLemma3(t *testing.T) {
	// Grid search over alpha must land on Eq. 7's closed form.
	for _, eps := range []float64{0.3, 0.5, 0.7, 1, 2, 4} {
		got := NumericOptimalAlpha(eps, 20000)
		want := OptimalAlpha(eps)
		if !almostEqual(got, want, 1e-3) {
			t.Errorf("eps=%v: numeric alpha %v, want %v", eps, got, want)
		}
	}
}

func TestTableID1Regimes(t *testing.T) {
	star, sharp := EpsStar(), EpsSharp()
	cases := []struct {
		eps  float64
		want Ordering
	}{
		{sharp + 0.5, HMltPMltDu},
		{4, HMltPMltDu},
		{sharp, HMltPMeqDu},
		{(star + sharp) / 2, HMltDultPM},
		{0.8, HMltDultPM},
		{star, HMeqDultPM},
		{0.3, HMeqDultPM},
		{0.05, HMeqDultPM},
	}
	for _, c := range cases {
		if got := ClassifyD1(c.eps); got != c.want {
			t.Errorf("ClassifyD1(%v) = %q, want %q", c.eps, got, c.want)
		}
	}
}

func TestCorollary2MultidimDominance(t *testing.T) {
	// For every d > 1 and eps > 0: MaxVarHM < MaxVarPM < MaxVarDuchi
	// (per coordinate, with the Eq. 12 sampling rule).
	for _, d := range []int{2, 3, 5, 10, 20, 40, 90} {
		for eps := 0.1; eps <= 8.01; eps += 0.1 {
			h := MaxVarHMMulti(eps, d)
			p := MaxVarPMMulti(eps, d)
			du := MaxVarDuchiMulti(eps, d)
			if !(h < p) {
				t.Errorf("d=%d eps=%.2f: MaxVarHM %v !< MaxVarPM %v", d, eps, h, p)
			}
			if !(p < du) {
				t.Errorf("d=%d eps=%.2f: MaxVarPM %v !< MaxVarDuchi %v", d, eps, p, du)
			}
		}
	}
}

func TestFig3RatiosBelowOne(t *testing.T) {
	// Figure 3: the PM/HM-to-Duchi worst-case ratio stays below 1, and
	// for HM below ~0.77 for the plotted dimensionalities.
	for _, d := range []int{5, 10, 20, 40} {
		for eps := 0.1; eps <= 8.01; eps += 0.1 {
			du := MaxVarDuchiMulti(eps, d)
			if r := MaxVarPMMulti(eps, d) / du; r >= 1 {
				t.Errorf("d=%d eps=%.2f: PM ratio %v >= 1", d, eps, r)
			}
			if r := MaxVarHMMulti(eps, d) / du; r > 0.77 {
				t.Errorf("d=%d eps=%.2f: HM ratio %v > 0.77", d, eps, r)
			}
		}
	}
}

func TestMultiFormulasMatchCollector(t *testing.T) {
	// Eq. 14 / corrected Eq. 15 must match the collector's generic
	// (d/k) E[x^2] - t^2 computation.
	pmFactory := func(e float64) (mech.Mechanism, error) { return core.NewPiecewise(e) }
	hmFactory := func(e float64) (mech.Mechanism, error) { return core.NewHybrid(e) }
	for _, d := range []int{1, 4, 16} {
		for _, eps := range []float64{0.5, 1, 4, 8} {
			cp, err := core.NewNumericCollector(pmFactory, eps, d)
			if err != nil {
				t.Fatal(err)
			}
			ch, err := core.NewNumericCollector(hmFactory, eps, d)
			if err != nil {
				t.Fatal(err)
			}
			for _, ti := range []float64{0, 0.5, 1} {
				if got, want := VarPMMulti(eps, d, ti), cp.CoordinateVariance(ti); !almostEqual(got, want, 1e-9*want) {
					t.Errorf("d=%d eps=%v t=%v: VarPMMulti %v != collector %v", d, eps, ti, got, want)
				}
				if got, want := VarHMMulti(eps, d, ti), ch.CoordinateVariance(ti); !almostEqual(got, want, 1e-9*want) {
					t.Errorf("d=%d eps=%v t=%v: VarHMMulti %v != collector %v", d, eps, ti, got, want)
				}
			}
		}
	}
}

func TestMaxVarDuchiMultiMatchesMechanism(t *testing.T) {
	for _, d := range []int{2, 7, 16} {
		for _, eps := range []float64{0.5, 2} {
			m, err := duchi.NewMulti(eps, d)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := MaxVarDuchiMulti(eps, d), m.WorstCaseCoordinateVariance(); !almostEqual(got, want, 1e-9*want) {
				t.Errorf("d=%d eps=%v: %v != %v", d, eps, got, want)
			}
		}
	}
}

func TestFig1ShapeLaplaceVsDuchiCrossover(t *testing.T) {
	// Figure 1's qualitative shape: Duchi beats Laplace at small eps but
	// loses at large eps (its variance is bounded below by 1).
	if !(MaxVarDuchi(0.5) < VarLaplace(0.5)) {
		t.Error("at eps=0.5 Duchi should beat Laplace")
	}
	if !(MaxVarDuchi(6) > VarLaplace(6)) {
		t.Error("at eps=6 Laplace should beat Duchi")
	}
	// Duchi's variance never drops below 1.
	if MaxVarDuchi(50) < 1 {
		t.Error("Duchi worst-case variance must stay above 1")
	}
}

func TestHMBestEverywhere1D(t *testing.T) {
	// Fig. 1: the HM curve lower-bounds PM, Duchi and Laplace throughout.
	for eps := 0.05; eps <= 8; eps += 0.05 {
		h := MaxVarHM(eps)
		if h > MaxVarPM(eps)+1e-12 || h > MaxVarDuchi(eps)+1e-12 || h > VarLaplace(eps)+1e-12 {
			t.Errorf("eps=%v: HM %v not minimal among {PM %v, Duchi %v, Laplace %v}",
				eps, h, MaxVarPM(eps), MaxVarDuchi(eps), VarLaplace(eps))
		}
	}
}
