// Package analysis provides the paper's closed-form noise-variance
// expressions and the regime analysis behind Table I, Figure 1 and Figure
// 3, implemented independently of the mechanism code so the two can
// cross-check each other in tests.
//
// All functions take the privacy budget eps (> 0); the *Multi variants also
// take the dimensionality d and internally apply the paper's sampling rule
// k = max(1, min(d, floor(eps/2.5))) (Eq. 12).
package analysis

import (
	"math"

	"ldp/internal/core"
	"ldp/internal/duchi"
	"ldp/internal/mathx"
)

// EpsStar re-exports the eps* constant of Eq. 6 (~0.61): at or below it the
// Hybrid Mechanism degenerates to Duchi et al.'s method.
func EpsStar() float64 { return mathx.EpsStar() }

// EpsSharp re-exports the eps# constant of Table I (~1.29): the budget at
// which PM's and Duchi's worst-case variances cross.
func EpsSharp() float64 { return mathx.EpsSharp() }

// --- One-dimensional variances ---

// VarLaplace returns the Laplace mechanism's noise variance 8/eps^2
// (input independent).
func VarLaplace(eps float64) float64 { return 8 / (eps * eps) }

// VarDuchi returns Duchi et al.'s 1-D noise variance for input t (Eq. 4):
// ((e^eps+1)/(e^eps-1))^2 - t^2.
func VarDuchi(eps, t float64) float64 {
	b := (math.Exp(eps) + 1) / (math.Exp(eps) - 1)
	return b*b - t*t
}

// MaxVarDuchi returns Duchi et al.'s worst-case 1-D variance, at t = 0.
func MaxVarDuchi(eps float64) float64 { return VarDuchi(eps, 0) }

// VarPM returns the Piecewise Mechanism's noise variance for input t
// (Lemma 1).
func VarPM(eps, t float64) float64 {
	e2 := math.Exp(eps / 2)
	return t*t/(e2-1) + (e2+3)/(3*(e2-1)*(e2-1))
}

// MaxVarPM returns PM's worst-case variance 4e^{eps/2}/(3(e^{eps/2}-1)^2),
// at |t| = 1.
func MaxVarPM(eps float64) float64 {
	e2 := math.Exp(eps / 2)
	return 4 * e2 / (3 * (e2 - 1) * (e2 - 1))
}

// OptimalAlpha returns the Hybrid Mechanism's mixing coefficient of Eq. 7.
func OptimalAlpha(eps float64) float64 {
	if eps > mathx.EpsStar() {
		return 1 - math.Exp(-eps/2)
	}
	return 0
}

// VarHM returns the Hybrid Mechanism's noise variance for input t with the
// optimal alpha: alpha*VarPM + (1-alpha)*VarDuchi.
func VarHM(eps, t float64) float64 {
	a := OptimalAlpha(eps)
	return a*VarPM(eps, t) + (1-a)*VarDuchi(eps, t)
}

// MaxVarHM returns HM's worst-case variance (Eq. 8).
func MaxVarHM(eps float64) float64 {
	if eps > mathx.EpsStar() {
		e2 := math.Exp(eps / 2)
		e1 := math.Exp(eps)
		return (e2+3)/(3*e2*(e2-1)) + (e1+1)*(e1+1)/(e2*(e1-1)*(e1-1))
	}
	return MaxVarDuchi(eps)
}

// --- Multidimensional variances (per coordinate, Eqs. 13-15) ---

// MaxVarDuchiMulti returns the worst-case per-coordinate variance of
// Duchi et al.'s Algorithm 3: C_d^2 ((e^eps+1)/(e^eps-1))^2, at t = 0
// (Eq. 13).
func MaxVarDuchiMulti(eps float64, d int) float64 {
	b := duchi.B(eps, d)
	return b * b
}

// VarPMMulti returns the per-coordinate variance of Algorithm 4 with a PM
// inner mechanism for coordinate value t (Eq. 14).
func VarPMMulti(eps float64, d int, t float64) float64 {
	k := float64(core.KFor(eps, d))
	e := math.Exp(eps / (2 * k))
	dd := float64(d)
	return dd*(e+3)/(3*k*(e-1)*(e-1)) + (dd*e/(k*(e-1))-1)*t*t
}

// MaxVarPMMulti returns the worst case of Eq. 14, at |t| = 1 (the t^2
// coefficient is positive for every d >= 1).
func MaxVarPMMulti(eps float64, d int) float64 { return VarPMMulti(eps, d, 1) }

// VarHMMulti returns the per-coordinate variance of Algorithm 4 with an HM
// inner mechanism for coordinate value t. It follows the derivation
// Var = (d/k) E[x^2] - t^2 (the paper's Eq. 15 lower branch prints
// "+ (d/k-1)t^2" where the derivation gives "- t^2"; see DESIGN.md).
func VarHMMulti(eps float64, d int, t float64) float64 {
	k := float64(core.KFor(eps, d))
	budget := eps / k
	dd := float64(d)
	// E[x^2] for the 1-D HM at the split budget.
	ex2 := VarHM(budget, t) + t*t
	return dd/k*ex2 - t*t
}

// MaxVarHMMulti returns the worst case of VarHMMulti over t in [-1, 1]:
// at |t| = 1 when the split budget exceeds eps* (constant-variance regime)
// and at t = 0 otherwise.
func MaxVarHMMulti(eps float64, d int) float64 {
	return math.Max(VarHMMulti(eps, d, 0), VarHMMulti(eps, d, 1))
}

// --- Regime analysis (Table I) ---

// Ordering describes the relative order of the three worst-case variances
// for a given setting, using the paper's notation.
type Ordering string

// The five rows of Table I.
const (
	HMltPMltDu Ordering = "HM < PM < Duchi"
	HMltPMeqDu Ordering = "HM < PM = Duchi"
	HMltDultPM Ordering = "HM < Duchi < PM"
	HMeqDultPM Ordering = "HM = Duchi < PM"
)

// ClassifyD1 returns the Table I row for dimension 1 at budget eps, derived
// from the closed forms (not hard-coded thresholds).
func ClassifyD1(eps float64) Ordering {
	const rel = 1e-9
	hm, pm, du := MaxVarHM(eps), MaxVarPM(eps), MaxVarDuchi(eps)
	switch {
	case math.Abs(pm-du) <= rel*du && hm < pm:
		return HMltPMeqDu
	case math.Abs(hm-du) <= rel*du && du < pm:
		return HMeqDultPM
	case hm < pm && pm < du:
		return HMltPMltDu
	default:
		return HMltDultPM
	}
}

// CrossoverPMDuchi solves MaxVarPM(eps) = MaxVarDuchi(eps) numerically; the
// result must agree with the closed-form eps# (verified in tests).
func CrossoverPMDuchi() (float64, error) {
	return mathx.Bisect(func(e float64) float64 {
		return MaxVarPM(e) - MaxVarDuchi(e)
	}, 0.1, 8, 1e-12)
}

// NumericOptimalAlpha minimizes the worst-case variance of the
// alpha-mixture numerically over a fine grid, returning the best alpha.
// It exists to validate Lemma 3's closed form.
func NumericOptimalAlpha(eps float64, gridSteps int) float64 {
	bestAlpha, bestVal := 0.0, math.Inf(1)
	for i := 0; i <= gridSteps; i++ {
		a := float64(i) / float64(gridSteps)
		// Worst case of the mixture over t: quadratic in t^2, so the
		// extremes t=0 and t=1 suffice.
		v0 := a*VarPM(eps, 0) + (1-a)*VarDuchi(eps, 0)
		v1 := a*VarPM(eps, 1) + (1-a)*VarDuchi(eps, 1)
		if v := math.Max(v0, v1); v < bestVal {
			bestVal, bestAlpha = v, a
		}
	}
	return bestAlpha
}
