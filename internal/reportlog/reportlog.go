// Package reportlog is an append-only, segmented, CRC-checked log for the
// raw report frames an aggregator receives. It gives the collection
// pipeline durability: the aggregator's in-memory state can be rebuilt by
// replaying the log after a crash.
//
// Record layout (little endian):
//
//	[ length uint32 ][ crc32(payload) uint32 ][ payload ... ]
//
// Segments are named seg-NNNNNN.log and rotated when they exceed the
// configured size. Replay stops cleanly at the first torn or corrupt
// record (the expected state after a crash mid-write); Recover truncates
// that tail so appends can resume safely.
package reportlog

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

const (
	headerSize = 8
	segPrefix  = "seg-"
	segSuffix  = ".log"
)

// ErrCorruptRecord reports a record whose checksum did not match; it is
// wrapped in errors returned by Replay when strict verification is on.
var ErrCorruptRecord = errors.New("reportlog: corrupt record")

// MaxRecordSize bounds a single record payload (a defensive limit against
// reading a garbage length field as a huge allocation).
const MaxRecordSize = 16 << 20

// Writer appends records to the newest segment of a log directory.
// Appends are internally serialized, so concurrent use is safe; callers
// that need multi-record atomicity (one HTTP batch = several records)
// still guard externally, as the transport server does.
type Writer struct {
	mu          sync.Mutex
	dir         string
	segmentSize int64
	f           *os.File
	seq         int
	size        int64 // bytes already written to the current segment

	// Group-commit state (zero when disabled): records accumulate in buf
	// and reach the file — followed by one fsync — when buf crosses
	// flushBytes, when the interval flusher fires, or on Sync/Close.
	buf        []byte
	flushBytes int
	interval   time.Duration
	dirty      bool          // file has writes not yet fsynced
	ferr       error         // sticky background-flush failure
	stop       chan struct{} // closes the interval flusher
	done       chan struct{} // flusher exited
}

// Option configures a Writer.
type Option func(*Writer)

// WithGroupCommit batches appends in memory and commits them — one
// write(2) plus one fsync — when flushBytes have accumulated or the
// interval elapses, whichever comes first. This replaces per-record
// write(2) calls (and the per-request Sync a durability-conscious caller
// would otherwise need) with two syscalls per group: the classic WAL
// group-commit trade of a bounded durability window (at most interval)
// for an order-of-magnitude cheaper append path. Sync still forces an
// immediate commit, so callers with a stronger requirement (the cluster
// forwarder before a push) keep their guarantee.
//
// A non-positive flushBytes defaults to 256 KiB; a non-positive interval
// defaults to 100ms.
func WithGroupCommit(interval time.Duration, flushBytes int) Option {
	return func(w *Writer) {
		if flushBytes <= 0 {
			flushBytes = 256 << 10
		}
		if interval <= 0 {
			interval = 100 * time.Millisecond
		}
		w.flushBytes = flushBytes
		w.interval = interval
	}
}

// Open prepares dir (created if missing) for appending, continuing after
// the newest existing segment. segmentSize is the rotation threshold in
// bytes (minimum 1 KiB). With no options the Writer behaves as it always
// has: one write(2) per record, durability only on Sync/Close.
func Open(dir string, segmentSize int64, opts ...Option) (*Writer, error) {
	if segmentSize < 1024 {
		return nil, fmt.Errorf("reportlog: segment size %d below 1KiB minimum", segmentSize)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("reportlog: create dir: %w", err)
	}
	segs, err := Segments(dir)
	if err != nil {
		return nil, err
	}
	w := &Writer{dir: dir, segmentSize: segmentSize}
	for _, opt := range opts {
		opt(w)
	}
	if len(segs) == 0 {
		if err := w.rotate(); err != nil {
			return nil, err
		}
	} else {
		last := segs[len(segs)-1]
		w.seq = seqOf(last)
		f, err := os.OpenFile(filepath.Join(dir, last), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("reportlog: open segment: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("reportlog: stat segment: %w", err)
		}
		w.f, w.size = f, st.Size()
	}
	if w.interval > 0 {
		w.stop, w.done = make(chan struct{}), make(chan struct{})
		go w.flusher()
	}
	return w, nil
}

// flusher is the interval half of group commit: it bounds how long a
// buffered (or written-but-unsynced) record can stay volatile.
func (w *Writer) flusher() {
	defer close(w.done)
	t := time.NewTicker(w.interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.mu.Lock()
			if err := w.commitLocked(); err != nil && w.ferr == nil {
				// Surface the failure on the next Append/Sync instead of
				// losing records silently.
				w.ferr = err
			}
			w.mu.Unlock()
		}
	}
}

func segName(seq int) string { return fmt.Sprintf("%s%06d%s", segPrefix, seq, segSuffix) }

func seqOf(name string) int {
	var seq int
	fmt.Sscanf(name, segPrefix+"%06d"+segSuffix, &seq)
	return seq
}

// Segments lists the log's segment file names in replay order.
func Segments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("reportlog: list segments: %w", err)
	}
	var segs []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && len(name) > len(segPrefix)+len(segSuffix) &&
			name[:len(segPrefix)] == segPrefix && filepath.Ext(name) == segSuffix {
			segs = append(segs, name)
		}
	}
	sort.Strings(segs)
	return segs, nil
}

func (w *Writer) rotate() error {
	if w.f != nil {
		if err := w.f.Close(); err != nil {
			return fmt.Errorf("reportlog: close segment: %w", err)
		}
	}
	w.seq++
	f, err := os.OpenFile(filepath.Join(w.dir, segName(w.seq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("reportlog: create segment: %w", err)
	}
	w.f, w.size = f, 0
	return nil
}

// Append writes one record. The payload is copied into the record frame;
// it may be reused by the caller afterwards. Under group commit the
// record lands in the in-memory buffer (no syscall) and becomes durable
// at the next commit point; otherwise it is written through immediately.
func (w *Writer) Append(payload []byte) error {
	if len(payload) > MaxRecordSize {
		return fmt.Errorf("reportlog: record of %d bytes exceeds limit %d", len(payload), MaxRecordSize)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.ferr != nil {
		return w.ferr
	}
	if w.size+int64(len(w.buf)) >= w.segmentSize {
		// Commit buffered records into the old segment before rotating so
		// file boundaries stay record boundaries.
		if err := w.commitLocked(); err != nil {
			return err
		}
		if err := w.rotate(); err != nil {
			return err
		}
	}
	if w.flushBytes > 0 {
		var hdr [headerSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		w.buf = append(w.buf, hdr[:]...)
		w.buf = append(w.buf, payload...)
		if len(w.buf) >= w.flushBytes {
			return w.commitLocked()
		}
		return nil
	}
	return w.writeLocked(payload)
}

// writeLocked is the unbuffered append path: header + payload straight
// to the file.
func (w *Writer) writeLocked(payload []byte) error {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("reportlog: write header: %w", err)
	}
	if _, err := w.f.Write(payload); err != nil {
		return fmt.Errorf("reportlog: write payload: %w", err)
	}
	w.size += int64(headerSize + len(payload))
	return nil
}

// commitLocked makes every buffered record durable: one write(2) for the
// whole buffer, one fsync. Without group commit it is a plain fsync (and
// skipped entirely while nothing new has been written).
func (w *Writer) commitLocked() error {
	if len(w.buf) > 0 {
		n, err := w.f.Write(w.buf)
		if err != nil {
			// A short write leaves a torn record at the tail — exactly the
			// state Recover handles. Drop the unwritten suffix and stop
			// accepting appends via the sticky error.
			w.size += int64(n)
			w.ferr = fmt.Errorf("reportlog: flush: %w", err)
			return w.ferr
		}
		w.size += int64(n)
		w.buf = w.buf[:0]
		w.dirty = true
	}
	if !w.dirty && w.flushBytes > 0 {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("reportlog: sync: %w", err)
	}
	w.dirty = false
	return nil
}

// Healthy reports whether the Writer can still accept appends: nil
// normally, the sticky failure once a flush — foreground or the interval
// flusher's — has failed. Readiness probes use it, so a server whose disk
// died stops attracting traffic before clients see their 500s.
func (w *Writer) Healthy() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.ferr
}

// Sync commits buffered records and flushes the current segment to
// stable storage.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.ferr != nil {
		return w.ferr
	}
	return w.commitLocked()
}

// Close commits, syncs, and closes the current segment, stopping the
// interval flusher if one is running.
func (w *Writer) Close() error {
	if w.stop != nil {
		close(w.stop)
		<-w.done
		w.stop = nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	cerr := w.ferr
	if cerr == nil {
		cerr = w.commitLocked()
	}
	if err := w.f.Close(); cerr == nil {
		cerr = err
	} else {
		w.f.Close()
	}
	return cerr
}

// ReplayStats summarizes a replay.
type ReplayStats struct {
	// Records is the number of intact records delivered.
	Records int
	// Truncated is true if a torn or corrupt tail record was found (and
	// replay stopped there).
	Truncated bool
	// Segment and Offset locate the start of the bad tail when Truncated.
	Segment string
	Offset  int64
}

// replayBufSize is the bufio window replay reads segments through: large
// enough that a restart streams the log in quarter-megabyte read(2)
// calls instead of two tiny reads per record.
const replayBufSize = 256 << 10

// Replay feeds every intact record in order to fn. It stops without error
// at the first torn or corrupt record — the normal post-crash state —
// reporting it in the stats. An error from fn aborts the replay.
//
// The payload slice is reused between calls: fn must copy anything it
// keeps past its return (the transport decoders already do — they unpack
// frames into their own structures).
func Replay(dir string, fn func(payload []byte) error) (ReplayStats, error) {
	var stats ReplayStats
	segs, err := Segments(dir)
	if err != nil {
		return stats, err
	}
	// One read window and one payload buffer serve the whole replay:
	// restart time is dominated by decode-and-fold, and this keeps the I/O
	// side at two large buffers instead of two allocations per record.
	br := bufio.NewReaderSize(nil, replayBufSize)
	var payload []byte
	for _, seg := range segs {
		ok, err := replaySegment(dir, seg, br, &payload, fn, &stats)
		if err != nil {
			return stats, err
		}
		if !ok {
			return stats, nil // truncated: stop at the bad tail
		}
	}
	return stats, nil
}

func replaySegment(dir, seg string, br *bufio.Reader, payload *[]byte, fn func([]byte) error, stats *ReplayStats) (bool, error) {
	f, err := os.Open(filepath.Join(dir, seg))
	if err != nil {
		return false, fmt.Errorf("reportlog: open %s: %w", seg, err)
	}
	defer f.Close()
	br.Reset(f)
	var offset int64
	var hdr [headerSize]byte
	for {
		_, err := io.ReadFull(br, hdr[:])
		if err == io.EOF {
			return true, nil
		}
		if err != nil { // torn header
			stats.Truncated, stats.Segment, stats.Offset = true, seg, offset
			return false, nil
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > MaxRecordSize {
			stats.Truncated, stats.Segment, stats.Offset = true, seg, offset
			return false, nil
		}
		if int(length) > cap(*payload) {
			*payload = make([]byte, length)
		}
		p := (*payload)[:length]
		if _, err := io.ReadFull(br, p); err != nil { // torn payload
			stats.Truncated, stats.Segment, stats.Offset = true, seg, offset
			return false, nil
		}
		if crc32.ChecksumIEEE(p) != sum {
			stats.Truncated, stats.Segment, stats.Offset = true, seg, offset
			return false, nil
		}
		if err := fn(p); err != nil {
			return false, err
		}
		stats.Records++
		offset += int64(headerSize) + int64(length)
	}
}

// Recover scans the log and truncates any torn or corrupt tail (and removes
// any later segments) so that appending can resume on a clean prefix. It
// returns the replay stats of the intact prefix.
func Recover(dir string) (ReplayStats, error) {
	stats, err := Replay(dir, func([]byte) error { return nil })
	if err != nil {
		return stats, err
	}
	if !stats.Truncated {
		return stats, nil
	}
	if err := os.Truncate(filepath.Join(dir, stats.Segment), stats.Offset); err != nil {
		return stats, fmt.Errorf("reportlog: truncate %s: %w", stats.Segment, err)
	}
	segs, err := Segments(dir)
	if err != nil {
		return stats, err
	}
	bad := seqOf(stats.Segment)
	for _, seg := range segs {
		if seqOf(seg) > bad {
			if err := os.Remove(filepath.Join(dir, seg)); err != nil {
				return stats, fmt.Errorf("reportlog: remove %s: %w", seg, err)
			}
		}
	}
	return stats, nil
}
