// Package reportlog is an append-only, segmented, CRC-checked log for the
// raw report frames an aggregator receives. It gives the collection
// pipeline durability: the aggregator's in-memory state can be rebuilt by
// replaying the log after a crash.
//
// Record layout (little endian):
//
//	[ length uint32 ][ crc32(payload) uint32 ][ payload ... ]
//
// Segments are named seg-NNNNNN.log and rotated when they exceed the
// configured size. Replay stops cleanly at the first torn or corrupt
// record (the expected state after a crash mid-write); Recover truncates
// that tail so appends can resume safely.
package reportlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

const (
	headerSize = 8
	segPrefix  = "seg-"
	segSuffix  = ".log"
)

// ErrCorruptRecord reports a record whose checksum did not match; it is
// wrapped in errors returned by Replay when strict verification is on.
var ErrCorruptRecord = errors.New("reportlog: corrupt record")

// MaxRecordSize bounds a single record payload (a defensive limit against
// reading a garbage length field as a huge allocation).
const MaxRecordSize = 16 << 20

// Writer appends records to the newest segment of a log directory.
// Writer is not safe for concurrent use; guard it externally (the transport
// server does).
type Writer struct {
	dir         string
	segmentSize int64
	f           *os.File
	seq         int
	size        int64
}

// Open prepares dir (created if missing) for appending, continuing after
// the newest existing segment. segmentSize is the rotation threshold in
// bytes (minimum 1 KiB).
func Open(dir string, segmentSize int64) (*Writer, error) {
	if segmentSize < 1024 {
		return nil, fmt.Errorf("reportlog: segment size %d below 1KiB minimum", segmentSize)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("reportlog: create dir: %w", err)
	}
	segs, err := Segments(dir)
	if err != nil {
		return nil, err
	}
	w := &Writer{dir: dir, segmentSize: segmentSize}
	if len(segs) == 0 {
		if err := w.rotate(); err != nil {
			return nil, err
		}
		return w, nil
	}
	last := segs[len(segs)-1]
	w.seq = seqOf(last)
	f, err := os.OpenFile(filepath.Join(dir, last), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("reportlog: open segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("reportlog: stat segment: %w", err)
	}
	w.f, w.size = f, st.Size()
	return w, nil
}

func segName(seq int) string { return fmt.Sprintf("%s%06d%s", segPrefix, seq, segSuffix) }

func seqOf(name string) int {
	var seq int
	fmt.Sscanf(name, segPrefix+"%06d"+segSuffix, &seq)
	return seq
}

// Segments lists the log's segment file names in replay order.
func Segments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("reportlog: list segments: %w", err)
	}
	var segs []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && len(name) > len(segPrefix)+len(segSuffix) &&
			name[:len(segPrefix)] == segPrefix && filepath.Ext(name) == segSuffix {
			segs = append(segs, name)
		}
	}
	sort.Strings(segs)
	return segs, nil
}

func (w *Writer) rotate() error {
	if w.f != nil {
		if err := w.f.Close(); err != nil {
			return fmt.Errorf("reportlog: close segment: %w", err)
		}
	}
	w.seq++
	f, err := os.OpenFile(filepath.Join(w.dir, segName(w.seq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("reportlog: create segment: %w", err)
	}
	w.f, w.size = f, 0
	return nil
}

// Append writes one record. The payload is copied into the record frame;
// it may be reused by the caller afterwards.
func (w *Writer) Append(payload []byte) error {
	if len(payload) > MaxRecordSize {
		return fmt.Errorf("reportlog: record of %d bytes exceeds limit %d", len(payload), MaxRecordSize)
	}
	if w.size >= w.segmentSize {
		if err := w.rotate(); err != nil {
			return err
		}
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("reportlog: write header: %w", err)
	}
	if _, err := w.f.Write(payload); err != nil {
		return fmt.Errorf("reportlog: write payload: %w", err)
	}
	w.size += int64(headerSize + len(payload))
	return nil
}

// Sync flushes the current segment to stable storage.
func (w *Writer) Sync() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("reportlog: sync: %w", err)
	}
	return nil
}

// Close syncs and closes the current segment.
func (w *Writer) Close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("reportlog: sync on close: %w", err)
	}
	return w.f.Close()
}

// ReplayStats summarizes a replay.
type ReplayStats struct {
	// Records is the number of intact records delivered.
	Records int
	// Truncated is true if a torn or corrupt tail record was found (and
	// replay stopped there).
	Truncated bool
	// Segment and Offset locate the start of the bad tail when Truncated.
	Segment string
	Offset  int64
}

// Replay feeds every intact record in order to fn. It stops without error
// at the first torn or corrupt record — the normal post-crash state —
// reporting it in the stats. An error from fn aborts the replay.
func Replay(dir string, fn func(payload []byte) error) (ReplayStats, error) {
	var stats ReplayStats
	segs, err := Segments(dir)
	if err != nil {
		return stats, err
	}
	for _, seg := range segs {
		ok, err := replaySegment(dir, seg, fn, &stats)
		if err != nil {
			return stats, err
		}
		if !ok {
			return stats, nil // truncated: stop at the bad tail
		}
	}
	return stats, nil
}

func replaySegment(dir, seg string, fn func([]byte) error, stats *ReplayStats) (bool, error) {
	f, err := os.Open(filepath.Join(dir, seg))
	if err != nil {
		return false, fmt.Errorf("reportlog: open %s: %w", seg, err)
	}
	defer f.Close()
	var offset int64
	hdr := make([]byte, headerSize)
	for {
		_, err := io.ReadFull(f, hdr)
		if err == io.EOF {
			return true, nil
		}
		if err != nil { // torn header
			stats.Truncated, stats.Segment, stats.Offset = true, seg, offset
			return false, nil
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > MaxRecordSize {
			stats.Truncated, stats.Segment, stats.Offset = true, seg, offset
			return false, nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil { // torn payload
			stats.Truncated, stats.Segment, stats.Offset = true, seg, offset
			return false, nil
		}
		if crc32.ChecksumIEEE(payload) != sum {
			stats.Truncated, stats.Segment, stats.Offset = true, seg, offset
			return false, nil
		}
		if err := fn(payload); err != nil {
			return false, err
		}
		stats.Records++
		offset += int64(headerSize) + int64(length)
	}
}

// Recover scans the log and truncates any torn or corrupt tail (and removes
// any later segments) so that appending can resume on a clean prefix. It
// returns the replay stats of the intact prefix.
func Recover(dir string) (ReplayStats, error) {
	stats, err := Replay(dir, func([]byte) error { return nil })
	if err != nil {
		return stats, err
	}
	if !stats.Truncated {
		return stats, nil
	}
	if err := os.Truncate(filepath.Join(dir, stats.Segment), stats.Offset); err != nil {
		return stats, fmt.Errorf("reportlog: truncate %s: %w", stats.Segment, err)
	}
	segs, err := Segments(dir)
	if err != nil {
		return stats, err
	}
	bad := seqOf(stats.Segment)
	for _, seg := range segs {
		if seqOf(seg) > bad {
			if err := os.Remove(filepath.Join(dir, seg)); err != nil {
				return stats, fmt.Errorf("reportlog: remove %s: %w", seg, err)
			}
		}
	}
	return stats, nil
}
