package reportlog

import (
	"encoding/binary"
	"fmt"
	"path/filepath"
	"testing"
)

// buildReplayLog writes records records of size payloadSize across a
// multi-segment log and returns its directory.
func buildReplayLog(tb testing.TB, records, payloadSize int) string {
	tb.Helper()
	dir := tb.TempDir()
	w, err := Open(filepath.Join(dir, "wal"), 1<<20, WithGroupCommit(0, 0))
	if err != nil {
		tb.Fatal(err)
	}
	payload := make([]byte, payloadSize)
	for i := 0; i < records; i++ {
		binary.LittleEndian.PutUint64(payload, uint64(i))
		if err := w.Append(payload); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	return filepath.Join(dir, "wal")
}

// BenchmarkReplay is the restart-time path: stream every record of a
// multi-segment log through a no-op fold. The buffered reader and reused
// payload buffer keep it at two long-lived buffers total, so allocs/op
// should stay flat however many records the log holds.
func BenchmarkReplay(b *testing.B) {
	for _, size := range []int{128, 4096} {
		b.Run(fmt.Sprintf("payload=%d", size), func(b *testing.B) {
			const records = 4096
			dir := buildReplayLog(b, records, size)
			b.SetBytes(int64(records) * int64(headerSize+size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stats, err := Replay(dir, func([]byte) error { return nil })
				if err != nil {
					b.Fatal(err)
				}
				if stats.Records != records {
					b.Fatalf("replayed %d records, want %d", stats.Records, records)
				}
			}
		})
	}
}

// TestReplayReusesPayloadBuffer pins the contract the buffered replay
// path adds: the slice handed to fn is only valid during the call.
func TestReplayReusesPayloadBuffer(t *testing.T) {
	dir := buildReplayLog(t, 64, 512)
	var prev []byte
	shared := 0
	_, err := Replay(dir, func(p []byte) error {
		if prev != nil && &prev[0] == &p[0] {
			shared++
		}
		prev = p
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Same-size records must ride one buffer, not an allocation each.
	if shared == 0 {
		t.Fatal("replay allocated a fresh payload buffer per record")
	}
}

func TestWriterHealthy(t *testing.T) {
	w, err := Open(filepath.Join(t.TempDir(), "wal"), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Healthy(); err != nil {
		t.Fatalf("fresh writer unhealthy: %v", err)
	}
	if err := w.Append([]byte("rec")); err != nil {
		t.Fatal(err)
	}
	if err := w.Healthy(); err != nil {
		t.Fatalf("writer unhealthy after append: %v", err)
	}
	// A sticky flush failure surfaces through Healthy.
	w.mu.Lock()
	w.ferr = ErrCorruptRecord
	w.mu.Unlock()
	if err := w.Healthy(); err == nil {
		t.Fatal("sticky error not reported")
	}
}
