package reportlog

import (
	"fmt"
	"testing"
	"time"
)

func record(i, size int) []byte {
	b := make([]byte, size)
	copy(b, fmt.Sprintf("record-%06d", i))
	return b
}

func replayCount(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	stats, err := Replay(dir, func([]byte) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Truncated {
		t.Fatalf("unexpected torn tail in %s", dir)
	}
	return n
}

func TestGroupCommitSyncMakesBufferedRecordsVisible(t *testing.T) {
	dir := t.TempDir()
	// Large flushBytes and long interval: nothing commits on its own.
	w, err := Open(dir, 1<<20, WithGroupCommit(time.Hour, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Append(record(i, 100)); err != nil {
			t.Fatal(err)
		}
	}
	// Buffered only: the segment on disk holds nothing yet.
	if n := replayCount(t, dir); n != 0 {
		t.Fatalf("records visible before commit: %d", n)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if n := replayCount(t, dir); n != 10 {
		t.Fatalf("after Sync: %d records, want 10", n)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestGroupCommitFlushesOnByteThreshold(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, 1<<20, WithGroupCommit(time.Hour, 1024))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// 12 records × (8+100) bytes crosses the 1 KiB threshold.
	for i := 0; i < 12; i++ {
		if err := w.Append(record(i, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if n := replayCount(t, dir); n == 0 {
		t.Fatal("byte threshold did not trigger a commit")
	}
}

func TestGroupCommitIntervalFlush(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, 1<<20, WithGroupCommit(5*time.Millisecond, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(record(0, 64)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for replayCount(t, dir) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval flusher never committed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestGroupCommitRotationKeepsRecordBoundaries(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, 1024, WithGroupCommit(time.Hour, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := w.Append(record(i, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected rotation, got %d segment(s)", len(segs))
	}
	i := 0
	stats, err := Replay(dir, func(p []byte) error {
		want := fmt.Sprintf("record-%06d", i)
		if string(p[:len(want)]) != want {
			return fmt.Errorf("record %d out of order: %q", i, p[:len(want)])
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != n || stats.Truncated {
		t.Fatalf("replayed %d records (truncated=%v), want %d", stats.Records, stats.Truncated, n)
	}
}

func TestGroupCommitCloseCommitsTail(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, 1<<20, WithGroupCommit(time.Hour, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := w.Append(record(i, 32)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if n := replayCount(t, dir); n != 7 {
		t.Fatalf("after Close: %d records, want 7", n)
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, 1<<20, WithGroupCommit(time.Millisecond, 4096))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			for i := 0; i < 100; i++ {
				if err := w.Append(record(g*1000+i, 64)); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if n := replayCount(t, dir); n != 400 {
		t.Fatalf("replayed %d records, want 400", n)
	}
}

// BenchmarkAppend is the before/after pair for the group-commit change.
// The durability-equivalent baseline for group commit is write+Sync per
// record ("synced"); the historical default ("unbuffered") never fsynced
// on the append path at all and is kept for reference.
func BenchmarkAppend(b *testing.B) {
	payload := record(0, 512)
	run := func(name string, opts ...Option) {
		b.Run(name, func(b *testing.B) {
			w, err := Open(b.TempDir(), 1<<30, opts...)
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			sync := name == "synced"
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Append(payload); err != nil {
					b.Fatal(err)
				}
				if sync {
					if err := w.Sync(); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
	run("unbuffered")
	run("synced")
	run("groupcommit", WithGroupCommit(10*time.Millisecond, 256<<10))
}
