package reportlog

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, dir string, segSize int64) *Writer {
	t.Helper()
	w, err := Open(dir, segSize)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestOpenRejectsTinySegments(t *testing.T) {
	if _, err := Open(t.TempDir(), 100); err == nil {
		t.Error("want error for segment size below 1KiB")
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, 1<<20)
	var want [][]byte
	for i := 0; i < 100; i++ {
		rec := []byte(fmt.Sprintf("record-%03d", i))
		want = append(want, rec)
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	stats, err := Replay(dir, func(p []byte) error {
		cp := append([]byte(nil), p...)
		got = append(got, cp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Truncated {
		t.Error("clean log reported truncated")
	}
	if stats.Records != len(want) {
		t.Fatalf("replayed %d records, want %d", stats.Records, len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRotationCreatesSegments(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, 1024)
	rec := bytes.Repeat([]byte("x"), 300)
	for i := 0; i < 20; i++ { // ~6KB total
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Errorf("expected rotation to create >= 3 segments, got %d (%v)", len(segs), segs)
	}
	stats, err := Replay(dir, func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 20 {
		t.Errorf("replayed %d, want 20", stats.Records)
	}
}

func TestReopenContinuesAppending(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, 1<<20)
	if err := w.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2 := openT(t, dir, 1<<20)
	if err := w2.Append([]byte("second")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	var got []string
	if _, err := Replay(dir, func(p []byte) error { got = append(got, string(p)); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "first" || got[1] != "second" {
		t.Fatalf("got %v", got)
	}
}

func TestTornTailStopsReplay(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, 1<<20)
	for i := 0; i < 10; i++ {
		if err := w.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: chop 3 bytes off the tail.
	segs, _ := Segments(dir)
	path := filepath.Join(dir, segs[len(segs)-1])
	st, _ := os.Stat(path)
	if err := os.Truncate(path, st.Size()-3); err != nil {
		t.Fatal(err)
	}
	stats, err := Replay(dir, func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Truncated {
		t.Fatal("expected truncation to be detected")
	}
	if stats.Records != 9 {
		t.Errorf("replayed %d intact records, want 9", stats.Records)
	}
}

func TestCorruptPayloadDetected(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, 1<<20)
	for i := 0; i < 5; i++ {
		if err := w.Append([]byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := Segments(dir)
	path := filepath.Join(dir, segs[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the third record's payload.
	recLen := 8 + len("payload-0")
	data[2*recLen+8+3] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	stats, err := Replay(dir, func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Truncated || stats.Records != 2 {
		t.Errorf("stats = %+v, want truncated after 2 records", stats)
	}
}

func TestRecoverTruncatesTailAndLaterSegments(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, 1024)
	rec := bytes.Repeat([]byte("y"), 300)
	for i := 0; i < 12; i++ {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := Segments(dir)
	if len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(segs))
	}
	// Corrupt the second segment's first record payload.
	path := filepath.Join(dir, segs[1])
	data, _ := os.ReadFile(path)
	data[8+10] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	stats, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Truncated {
		t.Fatal("Recover should report truncation")
	}
	// After recovery: replay is clean and later segments are gone.
	after, err := Replay(dir, func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if after.Truncated {
		t.Error("log still corrupt after Recover")
	}
	if after.Records != stats.Records {
		t.Errorf("post-recovery records %d != pre %d", after.Records, stats.Records)
	}
	segsAfter, _ := Segments(dir)
	if len(segsAfter) != 2 {
		t.Errorf("later segments not removed: %v", segsAfter)
	}
	// Appending after recovery works.
	w2 := openT(t, dir, 1024)
	if err := w2.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	final, err := Replay(dir, func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if final.Truncated || final.Records != stats.Records+1 {
		t.Errorf("final stats = %+v", final)
	}
}

func TestRecoverCleanLogIsNoOp(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, 1<<20)
	if err := w.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	stats, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Truncated || stats.Records != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestAppendRejectsHugeRecord(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, 1<<20)
	defer w.Close()
	if err := w.Append(make([]byte, MaxRecordSize+1)); err == nil {
		t.Error("want error for oversized record")
	}
}

func TestReplayEmptyDir(t *testing.T) {
	stats, err := Replay(t.TempDir(), func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 0 || stats.Truncated {
		t.Errorf("stats = %+v", stats)
	}
	// Nonexistent directory is also fine (no segments).
	stats, err = Replay(filepath.Join(t.TempDir(), "missing"), func([]byte) error { return nil })
	if err != nil || stats.Records != 0 {
		t.Errorf("missing dir: stats=%+v err=%v", stats, err)
	}
}

func TestReplayCallbackErrorAborts(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, 1<<20)
	for i := 0; i < 3; i++ {
		if err := w.Append([]byte("z")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	wantErr := fmt.Errorf("stop")
	n := 0
	_, err := Replay(dir, func([]byte) error {
		n++
		if n == 2 {
			return wantErr
		}
		return nil
	})
	if err == nil || err.Error() != "stop" {
		t.Errorf("err = %v, want stop", err)
	}
}

func TestEmptyPayloadRecord(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, 1<<20)
	if err := w.Append(nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	stats, err := Replay(dir, func(p []byte) error {
		if len(p) != 0 {
			t.Errorf("payload = %v, want empty", p)
		}
		return nil
	})
	if err != nil || stats.Records != 1 {
		t.Errorf("stats=%+v err=%v", stats, err)
	}
}
