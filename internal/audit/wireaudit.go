package audit

import (
	"fmt"

	"ldp/internal/core"
	"ldp/internal/freq"
	"ldp/internal/pipeline"
	"ldp/internal/rangequery"
	"ldp/internal/rng"
	"ldp/internal/schema"
	"ldp/internal/transport"
)

// WirePath black-box audits a whole Pipeline end to end: every draw runs
// Pipeline.Randomize, encodes the report with the production wire encoder
// (transport.AppendEnvelope), decodes it through the columnar batch
// decoder (transport.DecodeBatch), and projects the decoded report — so
// the audited distribution is exactly the bytes that leave the client,
// including anything a codec bug might add or leak.
//
// probes are complete user tuples under the pipeline's schema (at least
// two, each valid per Tuple.Check). The decoded report is projected to a
// unified bin space covering every tuple-routed task:
//
//   - mean reports: the first entry's (attribute, value), values binned
//     per attribute on the engine's quantile grid;
//   - freq reports: the first entry's attribute plus its response,
//     projected onto the probes' categorical values (unary oracles) or
//     the exact symbol (value-type oracles);
//   - range reports: per (attribute, depth) hierarchy blocks projected
//     onto the probes' bucket ancestors, and per-pair grid blocks
//     projected onto the probes' cells;
//   - anything malformed or unroutable falls into an "invalid" bin.
//
// Gradient tasks are not tuple-routed; audit them directly with
// Mechanism(p.GradientTask().Mechanism(), cfg).
func WirePath(p *pipeline.Pipeline, probes []schema.Tuple, cfg Config) (Result, error) {
	s := p.Schema()
	if len(probes) < 2 {
		return Result{}, errConfig("need at least two probe tuples, got %d", len(probes))
	}
	for i, t := range probes {
		if err := t.Check(s); err != nil {
			return Result{}, errConfig("probe tuple %d: %v", i, err)
		}
	}

	lay, err := newWireLayout(p, probes)
	if err != nil {
		return Result{}, err
	}

	labels := make([]string, len(probes))
	for i := range probes {
		labels[i] = fmt.Sprintf("tuple#%d", i)
	}

	// Reused per-draw codec state: the envelope buffer and the decode
	// batch. draw is called sequentially from a single goroutine, so one
	// of each suffices for the whole audit.
	buf := make([]byte, 0, 256)
	batch := pipeline.GetBatch()
	defer pipeline.PutBatch(batch)

	src := &source{
		eps:      p.Epsilon(),
		inputs:   labels,
		discrete: lay.total,
		families: lay.families,
		famLabel: lay.famLabel,
		binLabel: lay.binLabel,
		draw: func(i int, r *rng.Rand) outcome {
			rep, err := p.Randomize(probes[i], r)
			if err != nil {
				return outcome{fam: -1, bin: lay.invalid}
			}
			buf, err = transport.AppendEnvelope(buf[:0], rep)
			if err != nil {
				return outcome{fam: -1, bin: lay.invalid}
			}
			batch.Reset()
			if n, err := transport.DecodeBatch(buf, batch); err != nil || n != 1 {
				return outcome{fam: -1, bin: lay.invalid}
			}
			return lay.project(batch.Report(0))
		},
	}
	return src.run(cfg)
}

// wireBlock is one discrete bin block of the wire-path bin space.
type wireBlock struct {
	base  int
	bins  int
	bits  bool  // project bitset responses (vs. exact values)
	words int   // expected bitset width
	card  int   // oracle cardinality (value-type bound)
	probe []int // projected bit positions (bitset blocks)
}

// wireLayout maps decoded pipeline reports onto the audit's unified bin
// space: continuous families for mean entries, discrete blocks for freq
// and range responses, one "invalid" sink for everything else.
type wireLayout struct {
	sch      *schema.Schema
	total    int
	invalid  int
	families int

	meanFam  []int        // schema attr -> continuous family (-1 none)
	famName  []string     // family -> label
	freqBlk  []*wireBlock // schema attr -> freq block (nil none)
	hierBlk  [][]*wireBlock
	hierMax  int
	gridBlk  []*wireBlock
	binNames []string
}

func newWireLayout(p *pipeline.Pipeline, probes []schema.Tuple) (*wireLayout, error) {
	s := p.Schema()
	lay := &wireLayout{
		sch:     s,
		meanFam: make([]int, s.Dim()),
		freqBlk: make([]*wireBlock, s.Dim()),
	}
	for i := range lay.meanFam {
		lay.meanFam[i] = -1
	}

	if p.MeanTask() != nil {
		for _, j := range s.NumericIdx() {
			lay.meanFam[j] = lay.families
			lay.famName = append(lay.famName, fmt.Sprintf("mean:%s", s.Attrs[j].Name))
			lay.families++
		}
	}

	addBlock := func(bins int) *wireBlock {
		blk := &wireBlock{base: lay.total, bins: bins}
		lay.total += bins
		return blk
	}

	if ft := p.FreqTask(); ft != nil {
		for _, j := range s.CategoricalIdx() {
			o := ft.Oracle(j)
			var vals []int
			for _, t := range probes {
				vals = append(vals, t.Cat[j])
			}
			vals = dedupeInts(vals)
			if len(vals) > 16 {
				return nil, errConfig("probe tuples span %d values of attribute %q; bitset audits support at most 16", len(vals), s.Attrs[j].Name)
			}
			var blk *wireBlock
			if freq.UsesBitset(o) {
				blk = addBlock(1 << len(vals))
				blk.bits = true
				blk.words = freq.BitsetWords(o.Cardinality())
				blk.probe = vals
			} else {
				blk = addBlock(o.Cardinality())
			}
			blk.card = o.Cardinality()
			lay.freqBlk[j] = blk
			for b := 0; b < blk.bins; b++ {
				lay.binNames = append(lay.binNames, fmt.Sprintf("freq:%s:%s", s.Attrs[j].Name, blockBinName(blk, b)))
			}
		}
	}

	if rt := p.RangeTask(); rt != nil {
		col := rt.Collector()
		hier, disc := col.Hierarchy(), col.Discretizer()
		D := hier.Depths()
		lay.hierMax = D
		lay.hierBlk = make([][]*wireBlock, s.Dim())
		for _, j := range s.NumericIdx() {
			var buckets []int
			for _, t := range probes {
				buckets = append(buckets, disc.BucketOf(t.Num[j]))
			}
			buckets = dedupeInts(buckets)
			if len(buckets) > 16 {
				return nil, errConfig("probe tuples span %d buckets of attribute %q; audits support at most 16", len(buckets), s.Attrs[j].Name)
			}
			lay.hierBlk[j] = make([]*wireBlock, D+1)
			for d := 1; d <= D; d++ {
				o := hier.Oracle(d)
				var blk *wireBlock
				if freq.UsesBitset(o) {
					blk = addBlock(1 << len(buckets))
					blk.bits = true
					blk.words = freq.BitsetWords(o.Cardinality())
					blk.probe = make([]int, len(buckets))
					for bi, b := range buckets {
						blk.probe[bi] = b >> (D - d)
					}
				} else {
					blk = addBlock(o.Cardinality())
				}
				blk.card = o.Cardinality()
				lay.hierBlk[j][d] = blk
				for b := 0; b < blk.bins; b++ {
					lay.binNames = append(lay.binNames, fmt.Sprintf("hier:%s:d%d:%s", s.Attrs[j].Name, d, blockBinName(blk, b)))
				}
			}
		}
		if g := col.Grid(); g != nil {
			lay.gridBlk = make([]*wireBlock, len(col.Pairs()))
			o := g.Oracle()
			for pi, pair := range col.Pairs() {
				var cells []int
				for _, t := range probes {
					cells = append(cells, g.CellOf(t.Num[pair[0]], t.Num[pair[1]]))
				}
				cells = dedupeInts(cells)
				if len(cells) > 16 {
					return nil, errConfig("probe tuples span %d grid cells of pair %d; audits support at most 16", len(cells), pi)
				}
				var blk *wireBlock
				if freq.UsesBitset(o) {
					blk = addBlock(1 << len(cells))
					blk.bits = true
					blk.words = freq.BitsetWords(o.Cardinality())
					blk.probe = cells
				} else {
					blk = addBlock(o.Cardinality())
				}
				blk.card = o.Cardinality()
				lay.gridBlk[pi] = blk
				for b := 0; b < blk.bins; b++ {
					lay.binNames = append(lay.binNames, fmt.Sprintf("grid:p%d:%s", pi, blockBinName(blk, b)))
				}
			}
		}
	}

	lay.invalid = lay.total
	lay.total++
	lay.binNames = append(lay.binNames, "invalid")
	return lay, nil
}

// blockBinName names bin b of a block: a projected-bit pattern for bitset
// blocks, the exact output symbol otherwise.
func blockBinName(blk *wireBlock, b int) string {
	if !blk.bits {
		return fmt.Sprintf("out=%d", b)
	}
	pat := make([]byte, len(blk.probe))
	for j := range blk.probe {
		pat[j] = '0'
		if b&(1<<j) != 0 {
			pat[j] = '1'
		}
	}
	return fmt.Sprintf("bits=%s", pat)
}

func (l *wireLayout) famLabel(f int) string { return l.famName[f] }

func (l *wireLayout) binLabel(b int) string { return l.binNames[b] }

// projectResp maps a frequency-oracle response through a block, or to the
// invalid sink when its shape does not match.
func (l *wireLayout) projectResp(blk *wireBlock, resp freq.Response) outcome {
	if blk.bits {
		if resp.Bits == nil || len(resp.Bits) != blk.words {
			return outcome{fam: -1, bin: l.invalid}
		}
		idx := 0
		for j, pos := range blk.probe {
			if resp.Bits.Get(pos) {
				idx |= 1 << j
			}
		}
		return outcome{fam: -1, bin: blk.base + idx}
	}
	if resp.Bits != nil || resp.Value < 0 || resp.Value >= blk.card {
		return outcome{fam: -1, bin: l.invalid}
	}
	return outcome{fam: -1, bin: blk.base + resp.Value}
}

// project maps one decoded report to an outcome. Only the report's first
// entry is projected — a sound distinguisher by the data-processing
// inequality, and enough to expose every per-entry randomizer because
// attribute sampling is data-independent.
func (l *wireLayout) project(rep pipeline.Report) outcome {
	switch rep.Task {
	case pipeline.TaskMean:
		if len(rep.Entries) == 0 {
			return outcome{fam: -1, bin: l.invalid}
		}
		e := rep.Entries[0]
		if e.Kind != core.EntryNumeric || e.Attr < 0 || e.Attr >= len(l.meanFam) || l.meanFam[e.Attr] < 0 {
			return outcome{fam: -1, bin: l.invalid}
		}
		return outcome{fam: l.meanFam[e.Attr], val: e.Value}
	case pipeline.TaskFreq:
		if len(rep.Entries) == 0 {
			return outcome{fam: -1, bin: l.invalid}
		}
		e := rep.Entries[0]
		if e.Attr < 0 || e.Attr >= len(l.freqBlk) || l.freqBlk[e.Attr] == nil {
			return outcome{fam: -1, bin: l.invalid}
		}
		return l.projectResp(l.freqBlk[e.Attr], e.Resp)
	case pipeline.TaskRange:
		rr := rep.Range
		if rr.Kind == rangequery.KindHier {
			if rr.Attr < 0 || rr.Attr >= len(l.hierBlk) || l.hierBlk[rr.Attr] == nil ||
				rr.Depth < 1 || rr.Depth > l.hierMax {
				return outcome{fam: -1, bin: l.invalid}
			}
			return l.projectResp(l.hierBlk[rr.Attr][rr.Depth], rr.Resp)
		}
		if rr.Pair < 0 || rr.Pair >= len(l.gridBlk) {
			return outcome{fam: -1, bin: l.invalid}
		}
		return l.projectResp(l.gridBlk[rr.Pair], rr.Resp)
	default:
		return outcome{fam: -1, bin: l.invalid}
	}
}
