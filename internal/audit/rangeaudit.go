package audit

import (
	"fmt"

	"ldp/internal/freq"
	"ldp/internal/rangequery"
	"ldp/internal/rng"
)

// HierEncoder is the slice of rangequery.HierCollector the hierarchy audit
// needs: the claimed budget, the tree shape, the per-depth oracles (to
// learn the response format), and the randomizer itself.
// *rangequery.HierCollector satisfies it.
type HierEncoder interface {
	Epsilon() float64
	Buckets() int
	Depths() int
	Oracle(depth int) freq.Oracle
	Perturb(bucket int, r *rng.Rand) rangequery.HierReport
}

// GridEncoder is the slice of rangequery.GridCollector the 2-D grid audit
// needs. *rangequery.GridCollector satisfies it.
type GridEncoder interface {
	Epsilon() float64
	Cells() int
	Oracle() freq.Oracle
	CellOf(x, y float64) int
	Perturb(x, y float64, r *rng.Rand) freq.Response
}

// Hierarchy black-box audits a hierarchical range-report encoder: the
// whole (depth, response) report is the output, so both the frequency
// oracle at each depth and the depth-sampling channel itself are audited
// — an encoder whose depth choice depends on the bucket leaks through the
// depth marginal alone, and this audit sees it.
//
// probes are the true bucket indices to compare (nil selects the two
// extreme buckets plus the middle). Per depth d the response is projected
// onto the probes' depth-d ancestors' bits (unary oracles) or the exact
// reported node (value-type oracles); reports with an out-of-range depth
// or a malformed response fall into a dedicated "invalid" bin.
func Hierarchy(h HierEncoder, probes []int, cfg Config) (Result, error) {
	B, D := h.Buckets(), h.Depths()
	if len(probes) == 0 {
		probes = []int{0, B / 2, B - 1}
	}
	probes = dedupeInts(probes)
	if len(probes) < 2 {
		return Result{}, errConfig("need at least two distinct probe buckets, got %d", len(probes))
	}
	for _, b := range probes {
		if b < 0 || b >= B {
			return Result{}, errConfig("probe bucket %d outside domain [0,%d)", b, B)
		}
	}
	if len(probes) > 16 {
		return Result{}, errConfig("hierarchy audits support at most 16 probe buckets, got %d", len(probes))
	}

	labels := make([]string, len(probes))
	for i, b := range probes {
		labels[i] = fmt.Sprintf("bucket=%d", b)
	}

	// Per-depth bin blocks. Unary oracles project onto the probed
	// buckets' ancestor bits (2^len(probes) bins per depth); value-type
	// oracles get one bin per node (2^d bins at depth d). The final bin
	// is the shared "invalid" sink.
	type depthBlock struct {
		base  int
		bins  int
		bits  bool
		words int
		card  int
	}
	blocks := make([]depthBlock, D+1) // 1-based depth
	total := 0
	for d := 1; d <= D; d++ {
		o := h.Oracle(d)
		blk := depthBlock{base: total, card: o.Cardinality()}
		if freq.UsesBitset(o) {
			blk.bits = true
			blk.words = freq.BitsetWords(blk.card)
			blk.bins = 1 << len(probes)
		} else {
			blk.bins = blk.card
		}
		blocks[d] = blk
		total += blk.bins
	}
	invalid := total
	total++

	binLabel := func(b int) string {
		if b == invalid {
			return "invalid"
		}
		for d := 1; d <= D; d++ {
			blk := blocks[d]
			if b < blk.base || b >= blk.base+blk.bins {
				continue
			}
			off := b - blk.base
			if !blk.bits {
				return fmt.Sprintf("depth=%d node=%d", d, off)
			}
			pat := make([]byte, len(probes))
			for j := range probes {
				pat[j] = '0'
				if off&(1<<j) != 0 {
					pat[j] = '1'
				}
			}
			return fmt.Sprintf("depth=%d ancestorbits=%s", d, pat)
		}
		return fmt.Sprintf("bin %d", b)
	}

	src := &source{
		eps:      h.Epsilon(),
		inputs:   labels,
		discrete: total,
		binLabel: binLabel,
		draw: func(i int, r *rng.Rand) outcome {
			rep := h.Perturb(probes[i], r)
			d, resp := rep.Depth, rep.Resp
			if d < 1 || d > D {
				return outcome{fam: -1, bin: invalid}
			}
			blk := blocks[d]
			if blk.bits {
				if resp.Bits == nil || len(resp.Bits) != blk.words {
					return outcome{fam: -1, bin: invalid}
				}
				idx := 0
				for j, pb := range probes {
					if resp.Bits.Get(pb >> (D - d)) {
						idx |= 1 << j
					}
				}
				return outcome{fam: -1, bin: blk.base + idx}
			}
			if resp.Bits != nil || resp.Value < 0 || resp.Value >= blk.card {
				return outcome{fam: -1, bin: invalid}
			}
			return outcome{fam: -1, bin: blk.base + resp.Value}
		},
	}
	return src.run(cfg)
}

// Grid black-box audits a 2-D grid range-report encoder. probes are the
// true (x, y) points to compare, in the encoder's [-1, 1]^2 input domain
// (nil selects the four probe points {(-1,-1), (1,1), (-1,1), (0,0)}).
// Responses are projected onto the probe points' own cells' bits (unary
// oracles) or the exact reported cell (value-type oracles).
func Grid(g GridEncoder, probes [][2]float64, cfg Config) (Result, error) {
	if len(probes) == 0 {
		probes = [][2]float64{{-1, -1}, {1, 1}, {-1, 1}, {0, 0}}
	}
	// Deduplicate by cell: probes in the same cell are indistinguishable
	// to the encoder by construction and would only waste samples.
	cells := make([]int, 0, len(probes))
	pts := make([][2]float64, 0, len(probes))
	for _, p := range probes {
		c := g.CellOf(p[0], p[1])
		dup := false
		for _, seen := range cells {
			if seen == c {
				dup = true
				break
			}
		}
		if !dup {
			cells = append(cells, c)
			pts = append(pts, p)
		}
	}
	if len(pts) < 2 {
		return Result{}, errConfig("need probe points in at least two distinct grid cells, got %d", len(pts))
	}
	if len(pts) > 16 {
		return Result{}, errConfig("grid audits support at most 16 probe cells, got %d", len(pts))
	}

	labels := make([]string, len(pts))
	for i, p := range pts {
		labels[i] = fmt.Sprintf("xy=(%g,%g)", p[0], p[1])
	}

	k := g.Cells()
	o := g.Oracle()
	if !freq.UsesBitset(o) {
		src := &source{
			eps:      g.Epsilon(),
			inputs:   labels,
			discrete: k + 1,
			binLabel: func(b int) string {
				if b == k {
					return "invalid"
				}
				return fmt.Sprintf("cell=%d", b)
			},
			draw: func(i int, r *rng.Rand) outcome {
				resp := g.Perturb(pts[i][0], pts[i][1], r)
				if resp.Bits != nil || resp.Value < 0 || resp.Value >= k {
					return outcome{fam: -1, bin: k}
				}
				return outcome{fam: -1, bin: resp.Value}
			},
		}
		return src.run(cfg)
	}

	nBins := 1 << len(pts)
	words := freq.BitsetWords(k)
	src := &source{
		eps:      g.Epsilon(),
		inputs:   labels,
		discrete: nBins + 1,
		binLabel: func(b int) string {
			if b == nBins {
				return "invalid"
			}
			pat := make([]byte, len(pts))
			for j := range pts {
				pat[j] = '0'
				if b&(1<<j) != 0 {
					pat[j] = '1'
				}
			}
			return fmt.Sprintf("cellbits(%v)=%s", cells, pat)
		},
		draw: func(i int, r *rng.Rand) outcome {
			resp := g.Perturb(pts[i][0], pts[i][1], r)
			if resp.Bits == nil || len(resp.Bits) != words {
				return outcome{fam: -1, bin: nBins}
			}
			idx := 0
			for j, c := range cells {
				if resp.Bits.Get(c) {
					idx |= 1 << j
				}
			}
			return outcome{fam: -1, bin: idx}
		},
	}
	return src.run(cfg)
}
