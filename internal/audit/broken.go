package audit

import (
	"fmt"
	"math"

	"ldp/internal/freq"
	"ldp/internal/mech"
	"ldp/internal/rng"
)

// Deliberately broken randomizers. They exist to give the audit teeth:
// every auditor's test suite must flag these as violations while passing
// the honest implementations, so a future soundness regression in the
// audit engine (too-loose bounds, a projection that discards the leaking
// channel) fails loudly instead of silently approving everything.

// Overclaim wraps a mechanism so that it reports claimEps as its budget
// while actually perturbing with m's larger budget — the canonical
// eps-LDP violation (spending more than claimed) an audit must detect.
func Overclaim(m mech.Mechanism, claimEps float64) mech.Mechanism {
	return &brokenMech{Mechanism: m, claim: claimEps}
}

type brokenMech struct {
	mech.Mechanism
	claim float64
}

func (b *brokenMech) Name() string     { return fmt.Sprintf("overclaim(%s)", b.Mechanism.Name()) }
func (b *brokenMech) Epsilon() float64 { return b.claim }

// OverclaimOracle wraps a frequency oracle so that it claims claimEps
// while perturbing with o's larger budget.
func OverclaimOracle(o freq.Oracle, claimEps float64) freq.Oracle {
	return &brokenOracle{Oracle: o, claim: claimEps}
}

type brokenOracle struct {
	freq.Oracle
	claim float64
}

func (b *brokenOracle) Name() string     { return fmt.Sprintf("overclaim(%s)", b.Oracle.Name()) }
func (b *brokenOracle) Epsilon() float64 { return b.claim }

// NewSkewedGRR builds a GRR-shaped oracle whose flip probabilities are
// wrong: it reports the true value with probability pTrue regardless of
// the claimed budget (honest GRR uses e^eps/(e^eps+k-1)). For
// pTrue > e^eps/(e^eps+k-1) the true symbol is over-reported and the
// worst-case output ratio exceeds e^eps — a subtle sampler bug, not a
// wrapper, so the audit must find it in the output histogram itself.
func NewSkewedGRR(claimEps float64, k int, pTrue float64) (freq.Oracle, error) {
	if err := mech.ValidateEpsilon(claimEps); err != nil {
		return nil, err
	}
	if k < 2 {
		return nil, freq.ErrCardinality
	}
	if pTrue <= 0 || pTrue >= 1 {
		return nil, fmt.Errorf("audit: pTrue must lie in (0,1), got %v", pTrue)
	}
	return &skewedGRR{eps: claimEps, k: k, pTrue: pTrue}, nil
}

type skewedGRR struct {
	eps   float64
	k     int
	pTrue float64
}

func (g *skewedGRR) Name() string     { return "skewed-grr" }
func (g *skewedGRR) Epsilon() float64 { return g.eps }
func (g *skewedGRR) Cardinality() int { return g.k }

func (g *skewedGRR) Perturb(v int, r *rng.Rand) freq.Response {
	if v < 0 {
		v = 0
	}
	if v >= g.k {
		v = g.k - 1
	}
	if rng.Bernoulli(r, g.pTrue) {
		return freq.Response{Value: v}
	}
	other := r.IntN(g.k - 1)
	if other >= v {
		other++
	}
	return freq.Response{Value: other}
}

// SupportProbs reports the probabilities the claimed budget implies, not
// the skewed ones actually used — exactly the lie an aggregator would be
// told.
func (g *skewedGRR) SupportProbs() (p, q float64) {
	e := math.Exp(g.eps)
	return e / (e + float64(g.k) - 1), 1 / (e + float64(g.k) - 1)
}

func (g *skewedGRR) Supports(resp freq.Response, v int) bool { return resp.Value == v }
