//go:build slow

package audit_test

import (
	"testing"

	"ldp/internal/audit"
	"ldp/internal/pipeline"
	"ldp/internal/schema"
)

// TestAuditGradientMechanism black-box-verifies the eps-LDP guarantee of
// the federated SGD gradient perturbation from samples alone: it builds
// the exact mechanism instance GradientTask uses (the pipeline's 1-D
// mechanism at budget eps/k — each report perturbs k coordinates at eps/k
// each, which composes to eps for the whole gradient) and audits its
// output distributions without any access to its internals. The test
// runs under `go test -tags slow -run TestAudit ./internal/audit/` in the
// CI slow job; at 300k samples per probe input it takes tens of seconds.
func TestAuditGradientMechanism(t *testing.T) {
	s, err := schema.New(schema.Attribute{Name: "x", Kind: schema.Numeric})
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{1, 4} {
		p, err := pipeline.New(s, eps, pipeline.WithGradient(pipeline.GradientConfig{
			Dim: 90, Rounds: 10, GroupSize: 64, Eta: 1, Lambda: 1e-4,
		}))
		if err != nil {
			t.Fatal(err)
		}
		gt := p.GradientTask()
		m := gt.Mechanism()
		// The per-coordinate budget really is eps/k: the composition
		// argument below audits against the mechanism's own claim.
		if got, want := m.Epsilon()*float64(gt.K()), eps; got < want*(1-1e-9) || got > want*(1+1e-9) {
			t.Fatalf("eps=%g: k=%d coordinates at eps=%g do not compose to the budget", eps, gt.K(), m.Epsilon())
		}
		res := audit.Mechanism(m, audit.Config{Samples: 300_000, Seed: 0xA0D17 + uint64(eps)})
		t.Log(res)
		if res.Violated {
			t.Errorf("eps=%g: gradient mechanism violates its claimed budget: %v", eps, res)
		}
	}
}

// TestAuditGradientMechanismHasTeeth proves the audit would catch a
// broken gradient mechanism: a wrapper claiming half the budget it spends
// must be flagged.
func TestAuditGradientMechanismHasTeeth(t *testing.T) {
	s, err := schema.New(schema.Attribute{Name: "x", Kind: schema.Numeric})
	if err != nil {
		t.Fatal(err)
	}
	p, err := pipeline.New(s, 4, pipeline.WithGradient(pipeline.GradientConfig{
		Dim: 90, Rounds: 10, GroupSize: 64, Eta: 1, Lambda: 1e-4,
	}))
	if err != nil {
		t.Fatal(err)
	}
	over := audit.Overclaim(p.GradientTask().Mechanism(), 1)
	res := audit.Mechanism(over, audit.Config{Samples: 300_000, Seed: 0xBAD})
	t.Log(res)
	if !res.Violated {
		t.Error("audit failed to flag a mechanism spending 4x its claimed budget")
	}
}
