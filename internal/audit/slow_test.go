//go:build slow

package audit

import (
	"testing"

	"ldp/internal/core"
	"ldp/internal/freq"
	"ldp/internal/mech"
	"ldp/internal/pipeline"
	"ldp/internal/rangequery"
	"ldp/internal/rng"
	"ldp/internal/schema"
)

// The slow tag runs the full audit teeth matrix: for every task kind —
// mean, frequency, range (hierarchy + grid), gradient, and the end-to-end
// wire path — the honest implementation must pass across the experiment
// eps grid {0.5, 1, 2, 4} and a deliberately broken variant must be
// flagged. CI runs this as `go test -tags slow ./internal/audit/`.

var slowEpsGrid = []float64{0.5, 1, 2, 4}

// --- mean ---

func TestAuditMeanMechanisms(t *testing.T) {
	for _, eps := range slowEpsGrid {
		pm, err := core.NewPiecewise(eps)
		if err != nil {
			t.Fatal(err)
		}
		hm, err := core.NewHybrid(eps)
		if err != nil {
			t.Fatal(err)
		}
		for name, m := range map[string]mech.Mechanism{"pm": pm, "hm": hm} {
			res, err := Mechanism(m, Config{Samples: 300_000, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("eps=%g %s: %s", eps, name, res)
			if res.Violated {
				t.Errorf("eps=%g: honest %s flagged: %s", eps, name, res)
			}
		}
	}
}

func TestAuditMeanMechanismsHaveTeeth(t *testing.T) {
	spend, err := core.NewPiecewise(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Mechanism(Overclaim(spend, 1), Config{Samples: 300_000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if !res.Violated {
		t.Errorf("PM spending eps=4 claiming eps=1 not flagged: %s", res)
	}
}

// --- frequency ---

func TestAuditFrequencyOracles(t *testing.T) {
	for _, eps := range slowEpsGrid {
		grr, err := freq.NewGRR(eps, 8)
		if err != nil {
			t.Fatal(err)
		}
		oue, err := freq.NewOUE(eps, 8)
		if err != nil {
			t.Fatal(err)
		}
		for name, o := range map[string]freq.Oracle{"grr": grr, "oue": oue} {
			res, err := Oracle(o, nil, Config{Samples: 200_000, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("eps=%g %s: %s", eps, name, res)
			if res.Violated {
				t.Errorf("eps=%g: honest %s flagged: %s", eps, name, res)
			}
		}
	}
}

func TestAuditFrequencyOraclesHaveTeeth(t *testing.T) {
	// An OUE spending eps=4 claiming eps=1: the support-bit ratio
	// (1-q)/q = e^4 exceeds e^1 on a single projected bit.
	spendOUE, err := freq.NewOUE(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Oracle(OverclaimOracle(spendOUE, 1), nil, Config{Samples: 200_000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if !res.Violated {
		t.Errorf("overclaiming OUE not flagged: %s", res)
	}

	// A GRR whose sampler keeps the true value with probability 0.9
	// regardless of the claimed eps=1 — a biased-flip implementation bug,
	// not a wrapper.
	skewed, err := NewSkewedGRR(1, 8, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	res, err = Oracle(skewed, nil, Config{Samples: 200_000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if !res.Violated {
		t.Errorf("skewed GRR not flagged: %s", res)
	}
}

// --- range: hierarchy ---

func TestAuditHierarchyEncoder(t *testing.T) {
	for _, eps := range slowEpsGrid {
		h, err := rangequery.NewHierCollector(eps, 16, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Hierarchy(h, nil, Config{Samples: 200_000, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("eps=%g hier: %s", eps, res)
		if res.Violated {
			t.Errorf("eps=%g: honest hierarchy encoder flagged: %s", eps, res)
		}
	}
}

// leakyHier routes the report depth by the true bucket (low buckets to
// depth 1, high buckets to the leaf depth) instead of sampling it
// uniformly: each individual oracle response is still honestly
// randomized, but the depth channel is a deterministic function of the
// input — the kind of encoder bug no per-oracle test can see.
type leakyHier struct {
	*rangequery.HierCollector
}

func (l leakyHier) Perturb(bucket int, r *rng.Rand) rangequery.HierReport {
	if bucket < 0 {
		bucket = 0
	}
	if bucket >= l.Buckets() {
		bucket = l.Buckets() - 1
	}
	depth := 1
	if bucket >= l.Buckets()/2 {
		depth = l.Depths()
	}
	node := bucket >> (l.Depths() - depth)
	return rangequery.HierReport{Depth: depth, Resp: l.Oracle(depth).Perturb(node, r)}
}

func TestAuditHierarchyEncoderHasTeeth(t *testing.T) {
	h, err := rangequery.NewHierCollector(1, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Hierarchy(leakyHier{h}, nil, Config{Samples: 200_000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if !res.Violated {
		t.Errorf("depth-leaking hierarchy encoder not flagged: %s", res)
	}
}

// --- range: grid ---

func TestAuditGridEncoder(t *testing.T) {
	for _, eps := range slowEpsGrid {
		g, err := rangequery.NewGridCollector(eps, 4, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Grid(g, nil, Config{Samples: 200_000, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("eps=%g grid: %s", eps, res)
		if res.Violated {
			t.Errorf("eps=%g: honest grid encoder flagged: %s", eps, res)
		}
	}
}

// leakyGrid emits the user's true cell as a plaintext one-hot bitset half
// the time and randomizes honestly otherwise — an encoder that skips its
// oracle on a code path.
type leakyGrid struct {
	*rangequery.GridCollector
}

func (l leakyGrid) Perturb(x, y float64, r *rng.Rand) freq.Response {
	if rng.Bernoulli(r, 0.5) {
		b := freq.NewBitset(l.Cells())
		b.Set(l.CellOf(x, y))
		return freq.Response{Bits: b}
	}
	return l.GridCollector.Perturb(x, y, r)
}

func TestAuditGridEncoderHasTeeth(t *testing.T) {
	g, err := rangequery.NewGridCollector(1, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Grid(leakyGrid{g}, nil, Config{Samples: 200_000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if !res.Violated {
		t.Errorf("cell-leaking grid encoder not flagged: %s", res)
	}
}

// --- gradient ---

// TestAuditGradientMechanism black-box-verifies the eps-LDP guarantee of
// the federated SGD gradient perturbation from samples alone: it builds
// the exact mechanism instance GradientTask uses (the pipeline's 1-D
// mechanism at budget eps/k — each report perturbs k coordinates at eps/k
// each, which composes to eps for the whole gradient) and audits its
// output distributions without any access to its internals.
func TestAuditGradientMechanism(t *testing.T) {
	s, err := schema.New(schema.Attribute{Name: "x", Kind: schema.Numeric})
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{1, 4} {
		p, err := pipeline.New(s, eps, pipeline.WithGradient(pipeline.GradientConfig{
			Dim: 90, Rounds: 10, GroupSize: 64, Eta: 1, Lambda: 1e-4,
		}))
		if err != nil {
			t.Fatal(err)
		}
		gt := p.GradientTask()
		m := gt.Mechanism()
		// The per-coordinate budget really is eps/k: the composition
		// argument below audits against the mechanism's own claim.
		if got, want := m.Epsilon()*float64(gt.K()), eps; got < want*(1-1e-9) || got > want*(1+1e-9) {
			t.Fatalf("eps=%g: k=%d coordinates at eps=%g do not compose to the budget", eps, gt.K(), m.Epsilon())
		}
		res, err := Mechanism(m, Config{Samples: 300_000, Seed: 0xA0D17 + uint64(eps)})
		if err != nil {
			t.Fatal(err)
		}
		t.Log(res)
		if res.Violated {
			t.Errorf("eps=%g: gradient mechanism violates its claimed budget: %v", eps, res)
		}
	}
}

// TestAuditGradientMechanismHasTeeth proves the audit would catch a
// broken gradient mechanism: a wrapper claiming a quarter of the budget
// it spends must be flagged.
func TestAuditGradientMechanismHasTeeth(t *testing.T) {
	s, err := schema.New(schema.Attribute{Name: "x", Kind: schema.Numeric})
	if err != nil {
		t.Fatal(err)
	}
	p, err := pipeline.New(s, 4, pipeline.WithGradient(pipeline.GradientConfig{
		Dim: 90, Rounds: 10, GroupSize: 64, Eta: 1, Lambda: 1e-4,
	}))
	if err != nil {
		t.Fatal(err)
	}
	over := Overclaim(p.GradientTask().Mechanism(), 1)
	res, err := Mechanism(over, Config{Samples: 300_000, Seed: 0xBAD})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if !res.Violated {
		t.Error("audit failed to flag a mechanism spending 4x its claimed budget")
	}
}

// --- end-to-end wire path ---

func TestAuditWirePath(t *testing.T) {
	s := wireSchema(t)
	for _, eps := range slowEpsGrid {
		p, err := pipeline.New(s, eps, pipeline.WithRange(rangequery.Config{Buckets: 8, GridCells: 2}))
		if err != nil {
			t.Fatal(err)
		}
		res, err := WirePath(p, wireProbes(s), Config{Samples: 150_000, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("eps=%g wire: %s", eps, res)
		if res.Violated {
			t.Errorf("eps=%g: honest pipeline wire path flagged: %s", eps, res)
		}
	}
}

func TestAuditWirePathHasTeeth(t *testing.T) {
	s := wireSchema(t)
	// A freq-task oracle that overclaims through the whole wire stack:
	// Randomize -> envelope encode -> batch decode must still expose it.
	leaky, err := pipeline.New(s, 1,
		pipeline.WithRange(rangequery.Config{Buckets: 8, GridCells: 2}),
		pipeline.WithOracle(func(e float64, k int) (freq.Oracle, error) {
			o, err := freq.NewGRR(6, k)
			if err != nil {
				return nil, err
			}
			return OverclaimOracle(o, e), nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := WirePath(leaky, wireProbes(s), Config{Samples: 150_000, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if !res.Violated {
		t.Errorf("overclaiming oracle behind the wire path not flagged: %s", res)
	}
}
