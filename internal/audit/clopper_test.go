package audit

import (
	"math"
	"testing"
)

// binomUpperTail computes P[Bin(n,p) >= k] by direct summation of the
// exact binomial pmf (through log-space terms, so n in the thousands stays
// accurate). It is the independent reference the Clopper-Pearson bounds
// are tested against.
func binomUpperTail(k, n int64, p float64) float64 {
	if k <= 0 {
		return 1
	}
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	lgn, _ := math.Lgamma(float64(n) + 1)
	sum := 0.0
	for j := k; j <= n; j++ {
		lgj, _ := math.Lgamma(float64(j) + 1)
		lgnj, _ := math.Lgamma(float64(n-j) + 1)
		sum += math.Exp(lgn - lgj - lgnj + float64(j)*math.Log(p) + float64(n-j)*math.Log1p(-p))
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// binomLowerTail computes P[Bin(n,p) <= k] the same way.
func binomLowerTail(k, n int64, p float64) float64 {
	if k >= n {
		return 1
	}
	return 1 - binomUpperTail(k+1, n, p)
}

func TestRegIncBetaMatchesBinomialTail(t *testing.T) {
	// I_p(k, n-k+1) = P[Bin(n,p) >= k] — the identity both bounds invert.
	for _, tc := range []struct {
		k, n int64
		p    float64
	}{
		{1, 10, 0.1}, {1, 10, 0.5}, {5, 10, 0.5}, {9, 10, 0.9},
		{3, 25, 0.2}, {20, 25, 0.7}, {50, 1000, 0.05}, {500, 1000, 0.5},
		{1, 200, 0.001}, {199, 200, 0.999},
	} {
		got := regIncBeta(tc.p, float64(tc.k), float64(tc.n-tc.k+1))
		want := binomUpperTail(tc.k, tc.n, tc.p)
		if math.Abs(got-want) > 1e-10 {
			t.Errorf("I_%v(%d, %d) = %v, binomial tail = %v", tc.p, tc.k, tc.n-tc.k+1, got, want)
		}
	}
}

func TestBinomBoundsInvertExactTails(t *testing.T) {
	// The defining property of the bounds: at the lower bound,
	// P[Bin(n,p) >= k] = alpha; at the upper bound, P[Bin(n,p) <= k] =
	// alpha. Table-driven over interior k, checked against the directly
	// summed tails.
	for _, tc := range []struct {
		k, n  int64
		alpha float64
	}{
		{1, 20, 0.05}, {3, 20, 0.05}, {10, 20, 0.01}, {19, 20, 0.05},
		{2, 100, 1e-3}, {50, 100, 1e-6}, {97, 100, 1e-3},
		{7, 5000, 1e-6}, {4800, 5000, 1e-4},
	} {
		lo := BinomLower(tc.k, tc.n, tc.alpha)
		if tail := binomUpperTail(tc.k, tc.n, lo); math.Abs(tail-tc.alpha) > 1e-9 {
			t.Errorf("BinomLower(%d,%d,%v)=%v: upper tail there is %v, want alpha", tc.k, tc.n, tc.alpha, lo, tail)
		}
		up := BinomUpper(tc.k, tc.n, tc.alpha)
		if tail := binomLowerTail(tc.k, tc.n, up); math.Abs(tail-tc.alpha) > 1e-9 {
			t.Errorf("BinomUpper(%d,%d,%v)=%v: lower tail there is %v, want alpha", tc.k, tc.n, tc.alpha, up, tail)
		}
		if !(lo < float64(tc.k)/float64(tc.n)) || !(up > float64(tc.k)/float64(tc.n)) {
			t.Errorf("bounds [%v,%v] do not bracket k/n=%v", lo, up, float64(tc.k)/float64(tc.n))
		}
	}
}

func TestBinomBoundsEdgeCases(t *testing.T) {
	const alpha = 0.01
	for _, n := range []int64{1, 10, 1000} {
		// k=0: lower is exactly 0, upper has the closed form 1-alpha^(1/n).
		if got := BinomLower(0, n, alpha); got != 0 {
			t.Errorf("BinomLower(0,%d)=%v, want 0", n, got)
		}
		wantUp := 1 - math.Pow(alpha, 1/float64(n))
		if got := BinomUpper(0, n, alpha); math.Abs(got-wantUp) > 1e-12 {
			t.Errorf("BinomUpper(0,%d)=%v, want %v", n, got, wantUp)
		}
		// The closed form is itself the exact tail inversion:
		// P[Bin(n,p)=0] = (1-p)^n = alpha at p = 1-alpha^(1/n).
		if tail := binomLowerTail(0, n, wantUp); math.Abs(tail-alpha) > 1e-9 {
			t.Errorf("k=0 upper closed form: tail %v, want alpha", tail)
		}

		// k=n mirrors k=0.
		if got := BinomUpper(n, n, alpha); got != 1 {
			t.Errorf("BinomUpper(%d,%d)=%v, want 1", n, n, got)
		}
		wantLo := math.Pow(alpha, 1/float64(n))
		if got := BinomLower(n, n, alpha); math.Abs(got-wantLo) > 1e-12 {
			t.Errorf("BinomLower(%d,%d)=%v, want %v", n, n, got, wantLo)
		}
		if tail := binomUpperTail(n, n, wantLo); math.Abs(tail-alpha) > 1e-9 {
			t.Errorf("k=n lower closed form: tail %v, want alpha", tail)
		}
	}
}

func TestBinomBoundsInvalidArgsPanic(t *testing.T) {
	for _, tc := range []struct {
		k, n  int64
		alpha float64
	}{
		{-1, 10, 0.05}, {11, 10, 0.05}, {0, 0, 0.05}, {1, 10, 0}, {1, 10, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("BinomLower(%d,%d,%v) did not panic", tc.k, tc.n, tc.alpha)
				}
			}()
			BinomLower(tc.k, tc.n, tc.alpha)
		}()
	}
}
