// Package audit empirically verifies the eps-LDP guarantee of the
// module's randomizers from samples alone — no access to their internals.
// It is the black-box counterpart of the closed-form pdf-ratio checks in
// the mechanism test suites, and catches implementation bugs (wrong piece
// boundaries, biased samplers, leaky encoders) that closed-form reasoning
// cannot.
//
// The engine audits every task kind of the pipeline:
//
//   - Mechanism — 1-D numeric mechanisms (PM, HM, Duchi, the noise
//     family, the gradient task's per-coordinate mechanism);
//   - Oracle — frequency oracles (GRR, OUE, SUE) over exact per-symbol
//     bins (GRR) or bitset projections (unary encodings);
//   - Hierarchy, Grid — the range-query report encoders, including the
//     data-independent depth/cell routing they are supposed to have;
//   - WirePath — a whole Pipeline end to end: Randomize, the production
//     wire encoder, and the columnar batch decoder, auditing exactly the
//     bytes that leave the client.
//
// Method: for a pair of probe inputs (a, b), draw many samples of f(a)
// and f(b), map each output to a finite bin (exact symbols for discrete
// outputs, a common quantile-clipped equal-width grid for continuous
// ones), and compare binned frequencies. eps-LDP implies
// P[f(a) in B] <= e^eps * P[f(b) in B] for every bin B, and any
// measurable post-processing of the output preserves that inequality, so
// an empirical ratio significantly above e^eps is a violation witness.
// Per bin the auditor forms the exact one-sided Clopper-Pearson bounds
// (see BinomLower/BinomUpper) and reports the largest resulting lower
// confidence bound on ln(P_a(B)/P_b(B)) over all bins and ordered input
// pairs as EmpiricalEps, the empirical-eps lower bound.
//
// The audit is one-sided: it can expose violations but can only ever
// certify "consistent with eps-LDP at this sample size".
package audit

import (
	"fmt"
	"math"
	"sort"

	"ldp/internal/mech"
	"ldp/internal/rng"
)

// Result summarizes an audit.
type Result struct {
	// Epsilon is the privacy budget the randomizer claims.
	Epsilon float64
	// EmpiricalEps is the audit's empirical-eps lower bound: the largest
	// Clopper-Pearson lower confidence bound on ln(P_a(B)/P_b(B))
	// observed over all bins B and ordered probe pairs (a, b), floored
	// at 0. With probability >= 1-2*Alpha per comparison, the randomizer
	// cannot satisfy eps'-LDP for any eps' < EmpiricalEps.
	EmpiricalEps float64
	// WorstPointEstimate is the largest raw binned log-ratio, with a
	// half-count correction so empty bins stay finite. It is
	// informational; the verdict uses EmpiricalEps.
	WorstPointEstimate float64
	// Violated reports whether EmpiricalEps exceeds Epsilon: the
	// randomizer demonstrably leaks more than it claims (at the audit's
	// confidence level).
	Violated bool
	// PairA and PairB label the probe inputs of the worst witness, and
	// Bin the output bin it was observed in.
	PairA, PairB string
	Bin          string
	// Samples is the per-input sample count used.
	Samples int
}

// String renders a one-line verdict.
func (r Result) String() string {
	verdict := "consistent with"
	if r.Violated {
		verdict = "VIOLATES"
	}
	return fmt.Sprintf("audit: %s eps=%.3f (eps_emp >= %.4f, point estimate %.4f, witness %s vs %s on %s, n=%d)",
		verdict, r.Epsilon, r.EmpiricalEps, r.WorstPointEstimate,
		r.PairA, r.PairB, r.Bin, r.Samples)
}

// Config tunes an audit. The zero value selects the documented defaults.
type Config struct {
	// Samples per probe input (default 200000). More samples tighten the
	// Clopper-Pearson bounds and raise detection power.
	Samples int
	// Bins per continuous output family (default 40). Discrete outputs
	// (categorical symbols, bitset projections, hierarchy depths) get
	// exact per-symbol bins and ignore Bins. Audits that bin continuous
	// outputs require Samples >= Bins.
	Bins int
	// Inputs are the numeric probe values for Mechanism audits; all
	// ordered pairs are compared (default {-1, -0.5, 0, 0.5, 1}). At
	// least two distinct values are required. The discrete auditors
	// (Oracle, Hierarchy, Grid, WirePath) take their probe inputs as an
	// explicit argument instead and ignore this field.
	Inputs []float64
	// Alpha is the per-comparison significance of the one-sided
	// Clopper-Pearson bounds (default 1e-6): each per-bin lower bound on
	// the log-ratio holds with probability >= 1-2*Alpha. It must lie in
	// (0, 0.05]; keep it small — an audit scans hundreds of
	// (pair, bin) comparisons and a violation verdict should never be
	// sampling noise.
	Alpha float64
	// Seed drives the audit's randomness and is used verbatim: seed 0 is
	// a valid seed like any other, and identical Configs produce
	// bit-identical Results.
	Seed uint64
}

// errConfig annotates Config validation failures.
func errConfig(format string, args ...any) error {
	return fmt.Errorf("audit: invalid config: "+format, args...)
}

// normalized applies defaults and validates. needBins says whether the
// audit bins continuous outputs (and therefore needs Samples >= Bins so
// the quantile clip and the per-bin counts are meaningful).
func (c Config) normalized(needBins bool) (Config, error) {
	if c.Samples == 0 {
		c.Samples = 200_000
	}
	if c.Bins == 0 {
		c.Bins = 40
	}
	if c.Alpha == 0 {
		c.Alpha = 1e-6
	}
	if c.Samples < 1 {
		return c, errConfig("Samples must be >= 1, got %d", c.Samples)
	}
	if c.Bins < 2 {
		return c, errConfig("Bins must be >= 2, got %d", c.Bins)
	}
	if needBins && c.Samples < c.Bins {
		return c, errConfig("Samples (%d) < Bins (%d): every continuous bin would be near-empty", c.Samples, c.Bins)
	}
	if !(c.Alpha > 0) || c.Alpha > 0.05 {
		return c, errConfig("Alpha must lie in (0, 0.05], got %v", c.Alpha)
	}
	return c, nil
}

// outcome is one drawn output: either a discrete bin (Fam < 0) or a value
// in a continuous family.
type outcome struct {
	fam int // continuous family index, or -1 for discrete
	bin int // discrete bin index when fam < 0
	val float64
}

// source describes a black-box randomizer under audit: a claimed budget,
// labeled probe inputs, a finite discrete bin space, zero or more
// continuous output families, and a sampler. draw is called sequentially
// from a single goroutine.
type source struct {
	eps      float64
	inputs   []string
	discrete int // discrete bin count (may be 0)
	families int // continuous family count (may be 0)
	famLabel func(f int) string
	binLabel func(b int) string
	draw     func(input int, r *rng.Rand) outcome
}

// run executes the audit: draw, bin, compare.
func (s *source) run(cfg Config) (Result, error) {
	cfg, err := cfg.normalized(s.families > 0)
	if err != nil {
		return Result{}, err
	}
	if len(s.inputs) < 2 {
		return Result{}, errConfig("need at least two distinct probe inputs, got %d", len(s.inputs))
	}
	counts, labels, err := s.tally(cfg)
	if err != nil {
		return Result{}, err
	}
	return s.compare(cfg, counts, labels), nil
}

// tally draws cfg.Samples outputs per probe input and bins them. The
// returned matrix is counts[input][bin] over the unified bin space
// (discrete bins first, then Bins bins per continuous family); labels
// names each bin for witness reporting.
func (s *source) tally(cfg Config) ([][]float64, []string, error) {
	nIn := len(s.inputs)
	disc := make([][]float64, nIn)
	vals := make([][][]float64, nIn)
	for i := 0; i < nIn; i++ {
		r := rng.NewStream(cfg.Seed, uint64(i))
		disc[i] = make([]float64, s.discrete)
		vals[i] = make([][]float64, s.families)
		for j := 0; j < cfg.Samples; j++ {
			o := s.draw(i, r)
			switch {
			case o.fam >= 0 && o.fam < s.families:
				vals[i][o.fam] = append(vals[i][o.fam], o.val)
			case o.fam < 0 && o.bin >= 0 && o.bin < s.discrete:
				disc[i][o.bin]++
			default:
				return nil, nil, fmt.Errorf("audit: source produced outcome outside its declared bin space (fam %d, bin %d)", o.fam, o.bin)
			}
		}
	}

	// Fix a common clipped range per continuous family. Unbounded
	// mechanisms (Laplace & co) are clipped to a high quantile so tail
	// bins keep enough mass to be statistically meaningful; outputs
	// outside the range accumulate in the extreme bins so every draw is
	// counted.
	type famRange struct {
		lo, width float64
		ok        bool
	}
	ranges := make([]famRange, s.families)
	for f := 0; f < s.families; f++ {
		var all []float64
		for i := 0; i < nIn; i++ {
			all = append(all, vals[i][f]...)
		}
		if len(all) == 0 {
			continue // family never sampled; its bins stay empty
		}
		sort.Float64s(all)
		lo := all[clampIndex(int(0.001*float64(len(all))), len(all))]
		hi := all[clampIndex(int(0.999*float64(len(all)))-1, len(all))]
		if hi <= lo {
			hi = lo + 1
		}
		ranges[f] = famRange{lo: lo, width: (hi - lo) / float64(cfg.Bins), ok: true}
	}

	total := s.discrete + s.families*cfg.Bins
	counts := make([][]float64, nIn)
	for i := 0; i < nIn; i++ {
		counts[i] = make([]float64, total)
		copy(counts[i], disc[i])
		for f := 0; f < s.families; f++ {
			if !ranges[f].ok {
				continue
			}
			base := s.discrete + f*cfg.Bins
			for _, x := range vals[i][f] {
				b := int((x - ranges[f].lo) / ranges[f].width)
				if b < 0 {
					b = 0
				}
				if b >= cfg.Bins {
					b = cfg.Bins - 1
				}
				counts[i][base+b]++
			}
		}
	}

	labels := make([]string, total)
	for b := 0; b < s.discrete; b++ {
		if s.binLabel != nil {
			labels[b] = s.binLabel(b)
		} else {
			labels[b] = fmt.Sprintf("bin %d", b)
		}
	}
	for f := 0; f < s.families; f++ {
		name := "out"
		if s.famLabel != nil {
			name = s.famLabel(f)
		}
		for b := 0; b < cfg.Bins; b++ {
			idx := s.discrete + f*cfg.Bins + b
			if ranges[f].ok {
				lo := ranges[f].lo + float64(b)*ranges[f].width
				labels[idx] = fmt.Sprintf("%s[%.3f,%.3f)", name, lo, lo+ranges[f].width)
			} else {
				labels[idx] = fmt.Sprintf("%s[bin %d]", name, b)
			}
		}
	}
	return counts, labels, nil
}

// compare scans all ordered probe pairs and bins for the largest exact
// lower confidence bound on the binned log-probability ratio.
func (s *source) compare(cfg Config, counts [][]float64, labels []string) Result {
	res := Result{
		Epsilon:            s.eps,
		WorstPointEstimate: math.Inf(-1),
		Samples:            cfg.Samples,
	}
	nIn := len(s.inputs)
	total := len(labels)
	n := int64(cfg.Samples)

	// Exact one-sided bounds per (input, bin), shared by every pair the
	// input participates in.
	lower := make([][]float64, nIn)
	upper := make([][]float64, nIn)
	for i := 0; i < nIn; i++ {
		lower[i] = make([]float64, total)
		upper[i] = make([]float64, total)
		for b := 0; b < total; b++ {
			k := int64(counts[i][b])
			lower[i][b] = BinomLower(k, n, cfg.Alpha)
			upper[i][b] = BinomUpper(k, n, cfg.Alpha)
		}
	}

	best := math.Inf(-1)
	for a := 0; a < nIn; a++ {
		for b := 0; b < nIn; b++ {
			if a == b {
				continue
			}
			for bin := 0; bin < total; bin++ {
				ka, kb := counts[a][bin], counts[b][bin]
				if ka == 0 && kb == 0 {
					continue
				}
				// Half-count correction keeps the point estimate
				// finite on empty bins; it is informational only.
				if pe := math.Log((ka + 0.5) / (kb + 0.5)); pe > res.WorstPointEstimate {
					res.WorstPointEstimate = pe
				}
				if ka == 0 {
					continue // lower bound is 0; log-ratio bound is -inf
				}
				bound := math.Log(lower[a][bin] / upper[b][bin])
				if bound > best {
					best = bound
					res.PairA, res.PairB = s.inputs[a], s.inputs[b]
					res.Bin = labels[bin]
				}
			}
		}
	}
	if best > 0 {
		res.EmpiricalEps = best
	}
	res.Violated = best > s.eps
	return res
}

// clampIndex confines a quantile index to [0, n). The previous quantile
// arithmetic underflowed for tiny Samples*Inputs products
// (int(0.999*len)-1 goes negative for a single sample).
func clampIndex(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// Mechanism audits a 1-D numeric mechanism: probe inputs are
// cfg.Inputs, outputs are binned on a common quantile-clipped equal-width
// grid of cfg.Bins bins.
func Mechanism(m mech.Mechanism, cfg Config) (Result, error) {
	inputs := cfg.Inputs
	if len(inputs) == 0 {
		inputs = []float64{-1, -0.5, 0, 0.5, 1}
	}
	inputs = dedupeFloats(inputs)
	if len(inputs) < 2 {
		return Result{}, errConfig("Inputs must contain at least two distinct probe values")
	}
	labels := make([]string, len(inputs))
	for i, t := range inputs {
		labels[i] = fmt.Sprintf("t=%g", t)
	}
	src := &source{
		eps:      m.Epsilon(),
		inputs:   labels,
		families: 1,
		draw: func(i int, r *rng.Rand) outcome {
			return outcome{fam: 0, val: m.Perturb(inputs[i], r)}
		},
	}
	return src.run(cfg)
}

// dedupeFloats drops exact duplicates, preserving first-seen order.
func dedupeFloats(in []float64) []float64 {
	out := make([]float64, 0, len(in))
	for _, v := range in {
		dup := false
		for _, u := range out {
			if u == v {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, v)
		}
	}
	return out
}

// dedupeInts drops duplicates, preserving first-seen order.
func dedupeInts(in []int) []int {
	out := make([]int, 0, len(in))
	for _, v := range in {
		dup := false
		for _, u := range out {
			if u == v {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, v)
		}
	}
	return out
}
