// Package audit empirically verifies the eps-LDP guarantee of a mechanism
// from samples alone — no access to its internals. It is the black-box
// counterpart of the closed-form pdf-ratio checks in the mechanism test
// suites, and catches implementation bugs (wrong piece boundaries, biased
// samplers) that closed-form reasoning cannot.
//
// Method: for a pair of inputs (t, t'), draw many samples of f(t) and
// f(t'), discretize the common output range into bins, and compare binned
// frequencies. eps-LDP implies P[f(t) in B] <= e^eps P[f(t') in B] for
// every bin B, so an empirical ratio significantly above e^eps (beyond
// binomial sampling error) is a violation witness. The auditor reports the
// largest lower confidence bound on ln(ratio) over all bins and input
// pairs.
//
// The audit is one-sided: it can expose violations but can only ever
// certify "consistent with eps-LDP at this sample size".
package audit

import (
	"fmt"
	"math"
	"sort"

	"ldp/internal/mech"
	"ldp/internal/rng"
)

// Result summarizes an audit.
type Result struct {
	// Epsilon is the privacy budget the mechanism claims.
	Epsilon float64
	// WorstLowerBound is the largest lower confidence bound on
	// ln(P[t in B]/P[t' in B]) observed over all bins and input pairs.
	WorstLowerBound float64
	// WorstPointEstimate is the raw (unpenalized) maximum log-ratio.
	WorstPointEstimate float64
	// Violated reports whether WorstLowerBound exceeds Epsilon: the
	// mechanism demonstrably leaks more than it claims (at the audit's
	// confidence level).
	Violated bool
	// Pair and Bin locate the worst witness.
	PairT, PairTPrime float64
	BinLo, BinHi      float64
	// Samples is the per-input sample count used.
	Samples int
}

// String renders a one-line verdict.
func (r Result) String() string {
	verdict := "consistent with"
	if r.Violated {
		verdict = "VIOLATES"
	}
	return fmt.Sprintf("audit: %s eps=%.3f (worst lower bound %.4f, point estimate %.4f, witness t=%g vs t'=%g on [%.3f,%.3f), n=%d)",
		verdict, r.Epsilon, r.WorstLowerBound, r.WorstPointEstimate,
		r.PairT, r.PairTPrime, r.BinLo, r.BinHi, r.Samples)
}

// Config tunes the audit.
type Config struct {
	// Samples per input value (default 200000).
	Samples int
	// Bins for output discretization (default 40).
	Bins int
	// Inputs are the probe values; all ordered pairs are audited
	// (default {-1, -0.5, 0, 0.5, 1}).
	Inputs []float64
	// Z is the one-sided confidence penalty in standard errors applied
	// to the log-ratio lower bound (default 4, i.e. ~3e-5 per-bin false
	// positive rate).
	Z float64
	// Seed drives the audit's randomness.
	Seed uint64
}

func (c Config) normalized() Config {
	if c.Samples <= 0 {
		c.Samples = 200_000
	}
	if c.Bins <= 0 {
		c.Bins = 40
	}
	if len(c.Inputs) == 0 {
		c.Inputs = []float64{-1, -0.5, 0, 0.5, 1}
	}
	if c.Z <= 0 {
		c.Z = 4
	}
	if c.Seed == 0 {
		c.Seed = 0xA0D17
	}
	return c
}

// Mechanism audits a 1-D numeric mechanism.
func Mechanism(m mech.Mechanism, cfg Config) Result {
	cfg = cfg.normalized()
	// Draw all samples first to fix a common binning range. Unbounded
	// mechanisms (Laplace & co) are clipped to a high quantile so tail
	// bins keep enough mass to be statistically meaningful.
	samples := make(map[float64][]float64, len(cfg.Inputs))
	var all []float64
	for i, t := range cfg.Inputs {
		r := rng.NewStream(cfg.Seed, uint64(i))
		xs := make([]float64, cfg.Samples)
		for j := range xs {
			xs[j] = m.Perturb(t, r)
		}
		samples[t] = xs
		all = append(all, xs...)
	}
	sort.Float64s(all)
	lo := all[int(0.001*float64(len(all)))]
	hi := all[int(0.999*float64(len(all)))-1]
	if hi <= lo {
		hi = lo + 1
	}
	width := (hi - lo) / float64(cfg.Bins)

	// Bin counts per input. Outputs outside [lo, hi] accumulate in the
	// extreme bins so every draw is counted.
	counts := make(map[float64][]float64, len(cfg.Inputs))
	for t, xs := range samples {
		c := make([]float64, cfg.Bins)
		for _, x := range xs {
			b := int((x - lo) / width)
			if b < 0 {
				b = 0
			}
			if b >= cfg.Bins {
				b = cfg.Bins - 1
			}
			c[b]++
		}
		counts[t] = c
	}

	res := Result{
		Epsilon:            m.Epsilon(),
		WorstLowerBound:    math.Inf(-1),
		WorstPointEstimate: math.Inf(-1),
		Samples:            cfg.Samples,
	}
	n := float64(cfg.Samples)
	for _, t := range cfg.Inputs {
		for _, tp := range cfg.Inputs {
			if t == tp {
				continue
			}
			ct, cp := counts[t], counts[tp]
			for b := 0; b < cfg.Bins; b++ {
				// Add-one smoothing keeps empty bins finite and is
				// conservative for the violation test.
				pt := (ct[b] + 1) / (n + 1)
				pp := (cp[b] + 1) / (n + 1)
				logRatio := math.Log(pt / pp)
				// Delta-method standard error of a log count ratio.
				se := math.Sqrt(1/(ct[b]+1) + 1/(cp[b]+1))
				lower := logRatio - cfg.Z*se
				if logRatio > res.WorstPointEstimate {
					res.WorstPointEstimate = logRatio
				}
				if lower > res.WorstLowerBound {
					res.WorstLowerBound = lower
					res.PairT, res.PairTPrime = t, tp
					res.BinLo, res.BinHi = lo+float64(b)*width, lo+float64(b+1)*width
				}
			}
		}
	}
	res.Violated = res.WorstLowerBound > m.Epsilon()
	return res
}

// broken wraps a mechanism and reduces its randomness, for self-tests of
// the auditor: it reports the inner epsilon but actually spends more.
type broken struct {
	mech.Mechanism
	claim float64
}

// Epsilon returns the (false) claimed budget.
func (b broken) Epsilon() float64 { return b.claim }

// Overclaim wraps a mechanism built at trueEps so that it claims claimEps
// instead. Auditing the wrapper with claimEps < trueEps must flag a
// violation; it exists for tests and the audit example.
func Overclaim(m mech.Mechanism, claimEps float64) mech.Mechanism {
	return broken{Mechanism: m, claim: claimEps}
}
