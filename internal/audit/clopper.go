package audit

import "math"

// Exact one-sided Clopper-Pearson confidence bounds on a binomial
// proportion. The auditor compares per-bin output probabilities of two
// inputs; the normal approximation it used before is anti-conservative for
// near-empty bins (exactly the bins a tight LDP mechanism produces in its
// low-probability region), so the bounds here are computed from the exact
// binomial tail via the regularized incomplete beta function:
//
//	P[Bin(n,p) >= k] = I_p(k, n-k+1)
//	P[Bin(n,p) <= k] = 1 - I_p(k+1, n-k)
//
// Both functions are deterministic and pure; the unit tests check them
// against directly summed binomial tails, including the k=0 and k=n edge
// cases where the bounds have closed forms.

// BinomLower returns the exact one-sided Clopper-Pearson lower confidence
// bound for a binomial proportion: the largest p such that observing k or
// more successes in n trials has probability at most alpha. For k = 0 it
// is 0; for k = n it is alpha^(1/n). It panics if k is outside [0, n],
// n < 1, or alpha is outside (0, 1) — callers validate their Config first.
func BinomLower(k, n int64, alpha float64) float64 {
	checkBinomArgs(k, n, alpha)
	switch {
	case k == 0:
		return 0
	case k == n:
		return math.Pow(alpha, 1/float64(n))
	}
	// Solve I_p(k, n-k+1) = alpha for p.
	return invRegIncBeta(alpha, float64(k), float64(n-k+1))
}

// BinomUpper returns the exact one-sided Clopper-Pearson upper confidence
// bound for a binomial proportion: the smallest p such that observing k or
// fewer successes in n trials has probability at most alpha. For k = n it
// is 1; for k = 0 it is 1 - alpha^(1/n). It panics on the same argument
// violations as BinomLower.
func BinomUpper(k, n int64, alpha float64) float64 {
	checkBinomArgs(k, n, alpha)
	switch {
	case k == n:
		return 1
	case k == 0:
		return 1 - math.Pow(alpha, 1/float64(n))
	}
	// Solve 1 - I_p(k+1, n-k) = alpha for p.
	return invRegIncBeta(1-alpha, float64(k+1), float64(n-k))
}

func checkBinomArgs(k, n int64, alpha float64) {
	if n < 1 || k < 0 || k > n || !(alpha > 0) || !(alpha < 1) {
		panic("audit: invalid Clopper-Pearson arguments")
	}
}

// invRegIncBeta inverts the regularized incomplete beta function: it
// returns x in [0, 1] with I_x(a, b) = y, by bisection (I_x is strictly
// increasing in x for a, b > 0). 200 halvings take the bracket far below
// float64 resolution, so the result is exact to machine precision.
func invRegIncBeta(y, a, b float64) float64 {
	lo, hi := 0.0, 1.0
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if mid == lo || mid == hi {
			break
		}
		if regIncBeta(mid, a, b) < y {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

// regIncBeta returns the regularized incomplete beta function I_x(a, b)
// for a, b > 0, evaluated through the standard continued fraction with the
// symmetry transform that keeps the fraction in its rapidly converging
// region (x < (a+1)/(a+b+2)).
func regIncBeta(x, a, b float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	lgab, _ := math.Lgamma(a + b)
	front := math.Exp(lgab - lga - lgb + a*math.Log(x) + b*math.Log1p(-x))
	if x < (a+1)/(a+b+2) {
		return front * betacf(x, a, b) / a
	}
	return 1 - front*betacf(1-x, b, a)/b
}

// betacf evaluates the continued fraction of the incomplete beta function
// by the modified Lentz method.
func betacf(x, a, b float64) float64 {
	const (
		maxIter = 500
		conv    = 3e-15
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		// Even step.
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < conv {
			break
		}
	}
	return h
}
