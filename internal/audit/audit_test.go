package audit

import (
	"strings"
	"testing"

	"ldp/internal/core"
	"ldp/internal/duchi"
	"ldp/internal/freq"
	"ldp/internal/mech"
	"ldp/internal/noise"
	"ldp/internal/pipeline"
	"ldp/internal/rangequery"
	"ldp/internal/schema"
)

func quickCfg() Config {
	return Config{Samples: 60_000, Bins: 24, Seed: 99}
}

func auditTargets(t *testing.T, eps float64) map[string]mech.Mechanism {
	t.Helper()
	pm, err := core.NewPiecewise(eps)
	if err != nil {
		t.Fatal(err)
	}
	hm, err := core.NewHybrid(eps)
	if err != nil {
		t.Fatal(err)
	}
	du, err := duchi.NewOneDim(eps)
	if err != nil {
		t.Fatal(err)
	}
	la, err := noise.NewLaplace(eps)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := noise.NewSCDF(eps)
	if err != nil {
		t.Fatal(err)
	}
	st, err := noise.NewStaircase(eps)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]mech.Mechanism{
		"pm": pm, "hm": hm, "duchi": du, "laplace": la, "scdf": sc, "staircase": st,
	}
}

func mustMechanism(t *testing.T, m mech.Mechanism, cfg Config) Result {
	t.Helper()
	res, err := Mechanism(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAllMechanismsPassAudit(t *testing.T) {
	for _, eps := range []float64{0.5, 2} {
		for name, m := range auditTargets(t, eps) {
			res := mustMechanism(t, m, quickCfg())
			if res.Violated {
				t.Errorf("eps=%v %s: audit flagged a violation: %s", eps, name, res)
			}
			if res.EmpiricalEps > m.Epsilon() {
				t.Errorf("eps=%v %s: eps_emp %v above claimed eps", eps, name, res.EmpiricalEps)
			}
		}
	}
}

func TestAuditDetectsOverclaim(t *testing.T) {
	// A mechanism actually spending eps=3 but claiming eps=0.5 must be
	// caught: its output distributions differ far more than e^0.5 allows.
	real, err := core.NewPiecewise(3)
	if err != nil {
		t.Fatal(err)
	}
	res := mustMechanism(t, Overclaim(real, 0.5), quickCfg())
	if !res.Violated {
		t.Errorf("audit failed to flag an eps=3 mechanism claiming eps=0.5: %s", res)
	}
	if res.EmpiricalEps <= 0.5 {
		t.Errorf("empirical eps %v should exceed the claimed 0.5", res.EmpiricalEps)
	}
}

func TestAuditDetectsOverclaimTwoPoint(t *testing.T) {
	// Same for the two-point Duchi mechanism, whose violation shows up
	// directly in the two output atoms.
	real, err := duchi.NewOneDim(4)
	if err != nil {
		t.Fatal(err)
	}
	res := mustMechanism(t, Overclaim(real, 1), quickCfg())
	if !res.Violated {
		t.Errorf("audit failed to flag an eps=4 Duchi claiming eps=1: %s", res)
	}
}

func TestAuditNearTightForDuchi(t *testing.T) {
	// Duchi's ratio bound is achieved exactly at t=1 vs t'=-1, so the
	// point estimate should approach eps from below.
	const eps = 1.0
	du, err := duchi.NewOneDim(eps)
	if err != nil {
		t.Fatal(err)
	}
	res := mustMechanism(t, du, Config{Samples: 200_000, Bins: 16, Seed: 5})
	if res.WorstPointEstimate < 0.8*eps {
		t.Errorf("point estimate %v should be close to eps=%v for Duchi", res.WorstPointEstimate, eps)
	}
	if res.EmpiricalEps < 0.5*eps {
		t.Errorf("empirical eps lower bound %v should be near eps=%v for Duchi at 200k samples", res.EmpiricalEps, eps)
	}
	if res.Violated {
		t.Errorf("tightness must not be flagged as violation: %s", res)
	}
}

// TestSmallSamplesNoFalseViolation is the regression test for the old
// auditor's statistics: its add-one smoothing added one pseudo-count per
// bin while dividing by n+1 (probabilities summing past 1) and paired
// that with a delta-method SE that is anti-conservative on near-empty
// bins, so small-sample audits of honest mechanisms could cross the
// violation threshold. The exact Clopper-Pearson bounds cannot: an honest
// PM must pass at tiny sample counts for every seed tried, while a strong
// overclaimer is still caught at the same size.
func TestSmallSamplesNoFalseViolation(t *testing.T) {
	pm, err := core.NewPiecewise(1)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 8; seed++ {
		res := mustMechanism(t, pm, Config{Samples: 500, Bins: 8, Seed: seed})
		if res.Violated {
			t.Errorf("seed %d: honest PM flagged at 500 samples: %s", seed, res)
		}
	}
	spend8, err := core.NewPiecewise(8)
	if err != nil {
		t.Fatal(err)
	}
	res := mustMechanism(t, Overclaim(spend8, 0.5), Config{Samples: 2_000, Bins: 8, Seed: 1})
	if !res.Violated {
		t.Errorf("overclaim (spend 8, claim 0.5) not flagged at 2000 samples: %s", res)
	}
}

func TestResultString(t *testing.T) {
	pm, _ := core.NewPiecewise(1)
	res := mustMechanism(t, pm, quickCfg())
	s := res.String()
	if !strings.Contains(s, "consistent with") || !strings.Contains(s, "eps_emp") {
		t.Errorf("unexpected verdict string: %s", s)
	}
	res.Violated = true
	if !strings.Contains(res.String(), "VIOLATES") {
		t.Error("violation verdict missing")
	}
}

func TestConfigValidation(t *testing.T) {
	pm, _ := core.NewPiecewise(1)
	for name, cfg := range map[string]Config{
		"negative samples":   {Samples: -5},
		"one bin":            {Bins: 1},
		"samples < bins":     {Samples: 10, Bins: 40},
		"alpha too large":    {Alpha: 0.2},
		"alpha negative":     {Alpha: -1e-6},
		"one distinct input": {Inputs: []float64{0.5, 0.5}},
	} {
		if _, err := Mechanism(pm, cfg); err == nil {
			t.Errorf("%s: expected a config error", name)
		}
	}
	// The engine-level guard: fewer than two probe inputs is an error,
	// never a panic.
	if _, err := (&source{eps: 1, inputs: []string{"only"}}).run(Config{}); err == nil {
		t.Error("single-input source must be rejected")
	}
}

func TestConfigDefaults(t *testing.T) {
	c, err := Config{}.normalized(true)
	if err != nil {
		t.Fatal(err)
	}
	if c.Samples != 200_000 || c.Bins != 40 || c.Alpha != 1e-6 {
		t.Errorf("unexpected defaults: %+v", c)
	}
	if c.Seed != 0 {
		t.Errorf("Seed must be used verbatim; zero stays zero, got %#x", c.Seed)
	}
}

func TestAuditDeterministic(t *testing.T) {
	pm, _ := core.NewPiecewise(1)
	// Identical Config => bit-identical Result, including Seed 0 (the old
	// auditor silently remapped 0 to a magic constant, making seed 0
	// unrequestable).
	for _, seed := range []uint64{0, 99} {
		cfg := Config{Samples: 20_000, Bins: 16, Seed: seed}
		a := mustMechanism(t, pm, cfg)
		b := mustMechanism(t, pm, cfg)
		if a != b {
			t.Errorf("seed %d: audit not deterministic:\n%+v\n%+v", seed, a, b)
		}
	}
	// Distinct seeds genuinely change the draw (seed 0 is its own stream,
	// not an alias of some default).
	a := mustMechanism(t, pm, Config{Samples: 20_000, Bins: 16, Seed: 0})
	c := mustMechanism(t, pm, Config{Samples: 20_000, Bins: 16, Seed: 1})
	if a.WorstPointEstimate == c.WorstPointEstimate {
		t.Error("seeds 0 and 1 produced identical point estimates; seed 0 looks remapped")
	}
}

// --- categorical binning path ---

func TestGRRCategoricalBinning(t *testing.T) {
	// The GRR audit path must bin exactly: one bin per output symbol (plus
	// the invalid sink), and the per-input histogram must sum to Samples —
	// no draw may be dropped or double-counted.
	const k = 5
	o, err := freq.NewGRR(1, k)
	if err != nil {
		t.Fatal(err)
	}
	probes := []int{0, 2, 4}
	src, err := oracleSource(o, probes)
	if err != nil {
		t.Fatal(err)
	}
	if src.discrete != k+1 {
		t.Fatalf("GRR over k=%d symbols must get %d bins (symbols + invalid), got %d", k, k+1, src.discrete)
	}
	cfg, err := Config{Samples: 4_000, Seed: 7}.normalized(false)
	if err != nil {
		t.Fatal(err)
	}
	counts, labels, err := src.tally(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != k+1 || labels[0] != "out=0" || labels[k] != "invalid" {
		t.Fatalf("unexpected bin labels: %v", labels)
	}
	for i := range probes {
		sum := 0.0
		for _, c := range counts[i] {
			sum += c
		}
		if sum != float64(cfg.Samples) {
			t.Errorf("probe %d: histogram sums to %v, want %d", i, sum, cfg.Samples)
		}
		if counts[i][k] != 0 {
			t.Errorf("probe %d: honest GRR put %v draws in the invalid bin", i, counts[i][k])
		}
		// Every symbol must be reachable: honest GRR at eps=1, k=5 emits
		// each symbol with probability >= q ~ 0.15.
		for v := 0; v < k; v++ {
			if counts[i][v] == 0 {
				t.Errorf("probe %d: symbol %d never observed in %d draws", i, v, cfg.Samples)
			}
		}
	}
}

func TestOracleAuditQuick(t *testing.T) {
	grr, err := freq.NewGRR(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	oue, err := freq.NewOUE(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	for name, o := range map[string]freq.Oracle{"grr": grr, "oue": oue} {
		res, err := Oracle(o, nil, Config{Samples: 30_000, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violated {
			t.Errorf("honest %s flagged: %s", name, res)
		}
	}

	// Teeth: an oracle spending e^6 claiming 0.5 and a GRR whose sampler
	// reports the truth far too often.
	spend, err := freq.NewGRR(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Oracle(OverclaimOracle(spend, 0.5), nil, Config{Samples: 30_000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated {
		t.Errorf("overclaiming GRR not flagged: %s", res)
	}
	skewed, err := NewSkewedGRR(0.5, 6, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	res, err = Oracle(skewed, nil, Config{Samples: 30_000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated {
		t.Errorf("skewed GRR sampler not flagged: %s", res)
	}
}

func TestOracleAuditRejectsBadProbes(t *testing.T) {
	o, err := freq.NewGRR(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Oracle(o, []int{0, 9}, Config{}); err == nil {
		t.Error("out-of-domain probe accepted")
	}
	if _, err := Oracle(o, []int{1, 1}, Config{}); err == nil {
		t.Error("single distinct probe accepted")
	}
}

// --- range encoders (reduced-sample; the slow tag runs the full matrix) ---

func TestHierarchyAuditQuick(t *testing.T) {
	h, err := rangequery.NewHierCollector(1, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Hierarchy(h, nil, Config{Samples: 30_000, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violated {
		t.Errorf("honest hierarchy encoder flagged: %s", res)
	}
	if _, err := Hierarchy(h, []int{0, 99}, Config{}); err == nil {
		t.Error("out-of-domain probe bucket accepted")
	}
}

func TestGridAuditQuick(t *testing.T) {
	g, err := rangequery.NewGridCollector(1, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Grid(g, nil, Config{Samples: 30_000, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violated {
		t.Errorf("honest grid encoder flagged: %s", res)
	}
	if _, err := Grid(g, [][2]float64{{-1, -1}, {-0.99, -0.99}}, Config{}); err == nil {
		t.Error("probes in a single cell accepted")
	}
}

// --- wire path (reduced-sample; the slow tag runs the full matrix) ---

func wireSchema(t *testing.T) *schema.Schema {
	t.Helper()
	s, err := schema.New(
		schema.Attribute{Name: "x", Kind: schema.Numeric},
		schema.Attribute{Name: "y", Kind: schema.Numeric},
		schema.Attribute{Name: "c", Kind: schema.Categorical, Cardinality: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func wireProbes(s *schema.Schema) []schema.Tuple {
	a := schema.NewTuple(s)
	a.Num[0], a.Num[1], a.Cat[2] = -1, -1, 0
	b := schema.NewTuple(s)
	b.Num[0], b.Num[1], b.Cat[2] = 1, 1, 3
	return []schema.Tuple{a, b}
}

func TestWirePathAuditQuick(t *testing.T) {
	s := wireSchema(t)
	p, err := pipeline.New(s, 1, pipeline.WithRange(rangequery.Config{Buckets: 8, GridCells: 2}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := WirePath(p, wireProbes(s), Config{Samples: 30_000, Bins: 16, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violated {
		t.Errorf("honest pipeline wire path flagged: %s", res)
	}

	// Teeth: the same pipeline whose mean mechanism overclaims (spends
	// eps=8 while the factory's budget request is honored only in name).
	leaky, err := pipeline.New(s, 1,
		pipeline.WithRange(rangequery.Config{Buckets: 8, GridCells: 2}),
		pipeline.WithMechanism(func(e float64) (mech.Mechanism, error) {
			m, err := core.NewPiecewise(8)
			if err != nil {
				return nil, err
			}
			return Overclaim(m, e), nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	res, err = WirePath(leaky, wireProbes(s), Config{Samples: 30_000, Bins: 16, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated {
		t.Errorf("overclaiming pipeline wire path not flagged: %s", res)
	}
}

func TestWirePathRejectsBadProbes(t *testing.T) {
	s := wireSchema(t)
	p, err := pipeline.New(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WirePath(p, wireProbes(s)[:1], Config{}); err == nil {
		t.Error("single probe tuple accepted")
	}
	bad := schema.NewTuple(s)
	bad.Num[0] = 7 // outside [-1,1]
	if _, err := WirePath(p, []schema.Tuple{bad, bad}, Config{}); err == nil {
		t.Error("invalid probe tuple accepted")
	}
}
