package audit

import (
	"strings"
	"testing"

	"ldp/internal/core"
	"ldp/internal/duchi"
	"ldp/internal/mech"
	"ldp/internal/noise"
)

func quickCfg() Config {
	return Config{Samples: 60_000, Bins: 24, Seed: 99}
}

func auditTargets(t *testing.T, eps float64) map[string]mech.Mechanism {
	t.Helper()
	pm, err := core.NewPiecewise(eps)
	if err != nil {
		t.Fatal(err)
	}
	hm, err := core.NewHybrid(eps)
	if err != nil {
		t.Fatal(err)
	}
	du, err := duchi.NewOneDim(eps)
	if err != nil {
		t.Fatal(err)
	}
	la, err := noise.NewLaplace(eps)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := noise.NewSCDF(eps)
	if err != nil {
		t.Fatal(err)
	}
	st, err := noise.NewStaircase(eps)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]mech.Mechanism{
		"pm": pm, "hm": hm, "duchi": du, "laplace": la, "scdf": sc, "staircase": st,
	}
}

func TestAllMechanismsPassAudit(t *testing.T) {
	for _, eps := range []float64{0.5, 2} {
		for name, m := range auditTargets(t, eps) {
			res := Mechanism(m, quickCfg())
			if res.Violated {
				t.Errorf("eps=%v %s: audit flagged a violation: %s", eps, name, res)
			}
		}
	}
}

func TestAuditDetectsOverclaim(t *testing.T) {
	// A mechanism actually spending eps=3 but claiming eps=0.5 must be
	// caught: its output distributions differ far more than e^0.5 allows.
	real, err := core.NewPiecewise(3)
	if err != nil {
		t.Fatal(err)
	}
	res := Mechanism(Overclaim(real, 0.5), quickCfg())
	if !res.Violated {
		t.Errorf("audit failed to flag an eps=3 mechanism claiming eps=0.5: %s", res)
	}
}

func TestAuditDetectsOverclaimTwoPoint(t *testing.T) {
	// Same for the two-point Duchi mechanism, whose violation shows up
	// directly in the two output atoms.
	real, err := duchi.NewOneDim(4)
	if err != nil {
		t.Fatal(err)
	}
	res := Mechanism(Overclaim(real, 1), quickCfg())
	if !res.Violated {
		t.Errorf("audit failed to flag an eps=4 Duchi claiming eps=1: %s", res)
	}
}

func TestAuditNearTightForDuchi(t *testing.T) {
	// Duchi's ratio bound is achieved exactly at t=1 vs t'=-1, so the
	// point estimate should approach eps from below.
	const eps = 1.0
	du, err := duchi.NewOneDim(eps)
	if err != nil {
		t.Fatal(err)
	}
	res := Mechanism(du, Config{Samples: 200_000, Bins: 16, Seed: 5})
	if res.WorstPointEstimate < 0.8*eps {
		t.Errorf("point estimate %v should be close to eps=%v for Duchi", res.WorstPointEstimate, eps)
	}
	if res.Violated {
		t.Errorf("tightness must not be flagged as violation: %s", res)
	}
}

func TestResultString(t *testing.T) {
	pm, _ := core.NewPiecewise(1)
	res := Mechanism(pm, quickCfg())
	s := res.String()
	if !strings.Contains(s, "consistent with") {
		t.Errorf("unexpected verdict string: %s", s)
	}
	res.Violated = true
	if !strings.Contains(res.String(), "VIOLATES") {
		t.Error("violation verdict missing")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.normalized()
	if c.Samples <= 0 || c.Bins <= 0 || len(c.Inputs) == 0 || c.Z <= 0 || c.Seed == 0 {
		t.Errorf("normalized config incomplete: %+v", c)
	}
}

func TestAuditDeterministic(t *testing.T) {
	pm, _ := core.NewPiecewise(1)
	a := Mechanism(pm, quickCfg())
	b := Mechanism(pm, quickCfg())
	if a.WorstLowerBound != b.WorstLowerBound || a.WorstPointEstimate != b.WorstPointEstimate {
		t.Error("audit must be deterministic for a fixed seed")
	}
}
