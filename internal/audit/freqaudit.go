package audit

import (
	"fmt"

	"ldp/internal/freq"
	"ldp/internal/rng"
)

// Oracle black-box audits a frequency oracle. probes are the true values
// to compare (nil selects a default set: the whole domain when k <= 6,
// otherwise {0, 1, k/2, k-1}); all ordered pairs are compared.
//
// The output space is binned exactly, never by continuous quantiles:
//
//   - value-type oracles (GRR) get one bin per output symbol plus an
//     "invalid" bin for malformed responses, so the audited histogram is
//     the oracle's full output distribution;
//   - unary encodings (OUE/SUE) are projected onto the joint state of the
//     probed values' own bits — 2^len(probes) bins plus "invalid". The
//     projection is sound by the data-processing inequality and tight for
//     OUE, whose worst-case pdf ratio is attained on a single bit.
func Oracle(o freq.Oracle, probes []int, cfg Config) (Result, error) {
	src, err := oracleSource(o, probes)
	if err != nil {
		return Result{}, err
	}
	return src.run(cfg)
}

// oracleSource builds the audit source for a frequency oracle; split from
// Oracle so the categorical binning path (exact per-symbol bins, counts
// summing to Samples) is testable below the statistics.
func oracleSource(o freq.Oracle, probes []int) (*source, error) {
	k := o.Cardinality()
	if len(probes) == 0 {
		if k <= 6 {
			for v := 0; v < k; v++ {
				probes = append(probes, v)
			}
		} else {
			probes = []int{0, 1, k / 2, k - 1}
		}
	}
	probes = dedupeInts(probes)
	if len(probes) < 2 {
		return nil, errConfig("need at least two distinct probe values, got %d", len(probes))
	}
	for _, v := range probes {
		if v < 0 || v >= k {
			return nil, errConfig("probe value %d outside oracle domain [0,%d)", v, k)
		}
	}

	labels := make([]string, len(probes))
	for i, v := range probes {
		labels[i] = fmt.Sprintf("v=%d", v)
	}

	if !freq.UsesBitset(o) {
		// GRR path: exact per-symbol bins. Bin k collects anything
		// malformed (a bitset response, an out-of-range value) so a
		// broken oracle cannot hide outputs from the audit.
		src := &source{
			eps:      o.Epsilon(),
			inputs:   labels,
			discrete: k + 1,
			binLabel: func(b int) string {
				if b == k {
					return "invalid"
				}
				return fmt.Sprintf("out=%d", b)
			},
			draw: func(i int, r *rng.Rand) outcome {
				resp := o.Perturb(probes[i], r)
				if resp.Bits != nil || resp.Value < 0 || resp.Value >= k {
					return outcome{fam: -1, bin: k}
				}
				return outcome{fam: -1, bin: resp.Value}
			},
		}
		return src, nil
	}

	// Unary path: project the bitset onto the probed values' bits.
	if len(probes) > 16 {
		return nil, errConfig("bitset audits support at most 16 probe values (2^probes bins), got %d", len(probes))
	}
	nBins := 1 << len(probes)
	words := freq.BitsetWords(k)
	binLabel := func(b int) string {
		if b == nBins {
			return "invalid"
		}
		pat := make([]byte, len(probes))
		for j := range probes {
			pat[j] = '0'
			if b&(1<<j) != 0 {
				pat[j] = '1'
			}
		}
		return fmt.Sprintf("bits(%v)=%s", probes, pat)
	}
	src := &source{
		eps:      o.Epsilon(),
		inputs:   labels,
		discrete: nBins + 1,
		binLabel: binLabel,
		draw: func(i int, r *rng.Rand) outcome {
			resp := o.Perturb(probes[i], r)
			if resp.Bits == nil || len(resp.Bits) != words {
				return outcome{fam: -1, bin: nBins}
			}
			idx := 0
			for j, v := range probes {
				if resp.Bits.Get(v) {
					idx |= 1 << j
				}
			}
			return outcome{fam: -1, bin: idx}
		},
	}
	return src, nil
}
