package transport

import (
	"context"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"ldp/internal/telemetry"
)

// textContentType is the Content-Type of plain-text responses on the
// shed and health paths, preallocated like jsonContentType so writing it
// costs no allocation.
var textContentType = []string{"text/plain; charset=utf-8"}

// AdmissionConfig bounds the work an aggregator accepts before it falls
// over, instead of after. It applies to the mutating routes (POST
// /v1/report and POST /v1/merge) — the ones that read and decode
// multi-megabyte bodies; cached GETs are cheap enough to always answer.
type AdmissionConfig struct {
	// MaxInFlight is the number of mutating requests processed
	// concurrently; requests beyond it are shed with 429 before their body
	// is read. Zero or negative picks the default (256).
	MaxInFlight int
	// RetryAfter is the backoff hint attached to shed responses (rounded
	// up to whole seconds; default 1s). Clients built WithRetry come back
	// at this cadence instead of their own exponential guess.
	RetryAfter time.Duration
	// Timeout bounds each admitted mutating request via its context, so a
	// client that trickles its body cannot hold an admission slot forever.
	// Zero leaves requests unbounded (the listener's own timeouts still
	// apply).
	Timeout time.Duration
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// WithAdmission enables admission control with the given bounds. Without
// this option every request is admitted, as before.
func WithAdmission(cfg AdmissionConfig) ServerOption {
	return func(s *PipelineServer) { s.adm = newAdmission(cfg) }
}

// admission is the bounded in-flight limiter. The counter is a bare
// atomic — no channel, no mutex — and the 429 header value and body are
// preformatted, so the shed path allocates nothing: under overload the
// refusals must stay cheaper than the work being refused.
type admission struct {
	max      int64
	inflight atomic.Int64
	timeout  time.Duration
	retryHdr []string // preformatted Retry-After seconds
	shedBody []byte
}

func newAdmission(cfg AdmissionConfig) *admission {
	cfg = cfg.withDefaults()
	secs := int64((cfg.RetryAfter + time.Second - 1) / time.Second)
	return &admission{
		max:      int64(cfg.MaxInFlight),
		timeout:  cfg.Timeout,
		retryHdr: []string{strconv.FormatInt(secs, 10)},
		shedBody: []byte("overloaded, retry later\n"),
	}
}

// InFlight returns the number of currently admitted mutating requests
// (for tests and diagnostics).
func (a *admission) InFlight() int64 { return a.inflight.Load() }

// admit wraps a mutating-route handler with the server's admission
// limiter. shed is the route's ldp_http_shed_total counter (nil-safe).
// Without WithAdmission the wrapper is the handler itself — the default
// path gains no indirection.
func (s *PipelineServer) admit(shed *telemetry.Counter, h http.HandlerFunc) http.HandlerFunc {
	a := s.adm
	if a == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if a.inflight.Add(1) > a.max {
			a.inflight.Add(-1)
			shed.Inc()
			hdr := w.Header()
			hdr["Retry-After"] = a.retryHdr
			hdr["Content-Type"] = textContentType
			w.WriteHeader(http.StatusTooManyRequests)
			_, _ = w.Write(a.shedBody)
			return
		}
		defer a.inflight.Add(-1)
		if a.timeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), a.timeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(w, r)
	}
}

// readCapped reads the request body up to limit bytes, reporting a body
// that exceeds the cap instead of silently truncating it. Every mutating
// route reads its body through this helper so the cap handling cannot
// drift between them.
func readCapped(r *http.Request, limit int) (body []byte, tooLarge bool, err error) {
	body, err = io.ReadAll(io.LimitReader(r.Body, int64(limit)+1))
	if err != nil {
		return nil, false, err
	}
	if len(body) > limit {
		return nil, true, nil
	}
	return body, false, nil
}
