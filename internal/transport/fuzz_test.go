package transport

import (
	"testing"

	"ldp/internal/core"
	"ldp/internal/freq"
	"ldp/internal/pipeline"
	"ldp/internal/rangequery"
	"ldp/internal/rng"
	"ldp/internal/schema"
)

// The decoders sit on the network boundary: every byte sequence an
// attacker can send must come back as an error, never a panic or an
// out-of-bounds read. The fuzz targets also pin the round-trip property
// for frames that do decode after mutation of valid seeds.

func FuzzDecodeReport(f *testing.F) {
	// Valid frames (OUE bitsets, GRR values, numeric entries) seed the
	// corpus, plus edge cases the unit tests care about.
	s, err := schema.New(
		schema.Attribute{Name: "x", Kind: schema.Numeric},
		schema.Attribute{Name: "c", Kind: schema.Categorical, Cardinality: 70},
	)
	if err != nil {
		f.Fatal(err)
	}
	for _, oracle := range []freq.Factory{
		func(e float64, k int) (freq.Oracle, error) { return freq.NewOUE(e, k) },
		func(e float64, k int) (freq.Oracle, error) { return freq.NewGRR(e, k) },
	} {
		col, err := core.NewCollector(s, 8, pmFactory, oracle) // k large: all attrs sampled
		if err != nil {
			f.Fatal(err)
		}
		r := rng.New(1)
		for i := 0; i < 5; i++ {
			tup := schema.NewTuple(s)
			tup.Num[0] = rng.Uniform(r, -1, 1)
			tup.Cat[1] = r.IntN(70)
			rep, err := col.Perturb(tup, r)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(EncodeReport(rep))
		}
	}
	f.Add([]byte{})
	f.Add([]byte("LDPR"))
	f.Add([]byte("LDPR\x01\x00\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, frame []byte) {
		rep, err := DecodeReport(frame)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode and decode to the same frame.
		again, err := DecodeReport(EncodeReport(rep))
		if err != nil {
			t.Fatalf("re-decode of valid report failed: %v", err)
		}
		if len(again.Entries) != len(rep.Entries) {
			t.Fatalf("round trip changed entry count: %d != %d", len(again.Entries), len(rep.Entries))
		}
	})
}

// FuzzDecodeEnvelope drives the unified decoder with every frame family
// it accepts — v2 envelopes of all task tags plus both legacy v1 formats —
// and with mutations of them. Malformed version bytes, task tags, and
// payloads must come back as errors, never panics; whatever decodes must
// survive an encode/decode round trip with its task tag intact.
func FuzzDecodeEnvelope(f *testing.F) {
	s, err := schema.New(
		schema.Attribute{Name: "x", Kind: schema.Numeric},
		schema.Attribute{Name: "y", Kind: schema.Numeric},
		schema.Attribute{Name: "c", Kind: schema.Categorical, Cardinality: 70},
	)
	if err != nil {
		f.Fatal(err)
	}
	p, err := pipeline.New(s, 2, pipeline.WithRange(rangequery.Config{Buckets: 32, GridCells: 4}))
	if err != nil {
		f.Fatal(err)
	}
	r := rng.New(7)
	for i := 0; i < 24; i++ {
		tup := schema.NewTuple(s)
		tup.Num[0] = rng.Uniform(r, -1, 1)
		tup.Num[1] = rng.Uniform(r, -1, 1)
		tup.Cat[2] = r.IntN(70)
		rep, err := p.Randomize(tup, r)
		if err != nil {
			f.Fatal(err)
		}
		frame, err := EncodeEnvelope(rep)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	// Legacy v1 seeds: the envelope decoder accepts both formats.
	col, err := core.NewCollector(s, 8, pmFactory,
		func(e float64, k int) (freq.Oracle, error) { return freq.NewOUE(e, k) })
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		tup := schema.NewTuple(s)
		tup.Num[0] = rng.Uniform(r, -1, 1)
		tup.Cat[2] = r.IntN(70)
		rep, err := col.Perturb(tup, r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(EncodeReport(rep))
	}
	rcol, err := rangequery.NewCollector(s, 1, rangequery.Config{Buckets: 32, GridCells: 4})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		tup := schema.NewTuple(s)
		tup.Num[0] = rng.Uniform(r, -1, 1)
		tup.Num[1] = rng.Uniform(r, -1, 1)
		rep, err := rcol.Perturb(tup, r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(EncodeRangeReport(rep))
	}
	f.Add([]byte{})
	f.Add([]byte("LDPR"))
	f.Add([]byte("LDPR\x02\x00\x00\x00\x00"))
	f.Add([]byte("LDPQ\x01\x00\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, frame []byte) {
		rep, err := DecodeEnvelope(frame)
		if err != nil {
			return
		}
		again, err := EncodeEnvelope(rep)
		if err != nil {
			t.Fatalf("re-encode of valid report failed: %v", err)
		}
		rep2, err := DecodeEnvelope(again)
		if err != nil {
			t.Fatalf("re-decode of valid report failed: %v", err)
		}
		if rep2.Task != rep.Task || len(rep2.Entries) != len(rep.Entries) {
			t.Fatalf("round trip changed report: task %v != %v, entries %d != %d",
				rep2.Task, rep.Task, len(rep2.Entries), len(rep.Entries))
		}
	})
}

func FuzzDecodeRangeReport(f *testing.F) {
	s, err := schema.New(
		schema.Attribute{Name: "x", Kind: schema.Numeric},
		schema.Attribute{Name: "y", Kind: schema.Numeric},
	)
	if err != nil {
		f.Fatal(err)
	}
	grr := func(e float64, k int) (freq.Oracle, error) { return freq.NewGRR(e, k) }
	for _, cfg := range []rangequery.Config{
		{Buckets: 32, GridCells: 4},
		{Buckets: 16, GridCells: 2, Oracle: grr},
	} {
		col, err := rangequery.NewCollector(s, 1, cfg)
		if err != nil {
			f.Fatal(err)
		}
		r := rng.New(2)
		for i := 0; i < 6; i++ {
			tup := schema.NewTuple(s)
			tup.Num[0], tup.Num[1] = rng.Uniform(r, -1, 1), rng.Uniform(r, -1, 1)
			rep, err := col.Perturb(tup, r)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(EncodeRangeReport(rep))
		}
	}
	f.Add([]byte{})
	f.Add([]byte("LDPQ"))
	f.Add([]byte("LDPQ\x01\x00\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, frame []byte) {
		rep, err := DecodeRangeReport(frame)
		if err != nil {
			return
		}
		again, err := DecodeRangeReport(EncodeRangeReport(rep))
		if err != nil {
			t.Fatalf("re-decode of valid range report failed: %v", err)
		}
		if again.Kind != rep.Kind || again.Attr != rep.Attr ||
			again.Depth != rep.Depth || again.Pair != rep.Pair {
			t.Fatalf("round trip changed header: %+v != %+v", again, rep)
		}
	})
}

// FuzzDecodeGradient differentially drives the gradient frame family
// through both decoders: for any body, DecodeBatch must decode exactly
// what SplitFrames+DecodeEnvelope would — same rounds, same coordinates —
// reject out-of-range round/coordinate values, and never panic. Whatever
// decodes must survive an encode/decode round trip with its round tag
// intact.
func FuzzDecodeGradient(f *testing.F) {
	s, err := schema.New(schema.Attribute{Name: "x", Kind: schema.Numeric})
	if err != nil {
		f.Fatal(err)
	}
	p, err := pipeline.New(s, 2, pipeline.WithGradient(pipeline.GradientConfig{
		Dim: 6, Rounds: 9, GroupSize: 4, Eta: 1, Lambda: 1e-4,
	}))
	if err != nil {
		f.Fatal(err)
	}
	gt := p.GradientTask()
	r := rng.New(31)
	var body []byte
	for i := 0; i < 8; i++ {
		grad := make([]float64, gt.Dim())
		for j := range grad {
			grad[j] = rng.Uniform(r, -1, 1)
		}
		rep, err := gt.RandomizeGradient(i%9, grad, r)
		if err != nil {
			f.Fatal(err)
		}
		body, err = AppendEnvelope(body, rep)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte(nil), body...))
	}
	f.Add([]byte("LDPR\x02\x02\x00\x00\x00\x05\x00"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, body []byte) {
		if len(body) > MaxBatchSize {
			return
		}
		b := pipeline.NewReportBatch()
		n, err := DecodeBatch(body, b)
		if b.Len() != n {
			t.Fatalf("DecodeBatch returned %d but batch holds %d reports", n, b.Len())
		}
		off := 0
		for i := 0; i < n; i++ {
			flen, ferr := FrameLen(body[off:])
			if ferr != nil || flen > len(body)-off {
				t.Fatalf("frame %d: batch decoder accepted an unframeable prefix: %v", i, ferr)
			}
			want, derr := DecodeEnvelope(body[off : off+flen])
			if derr != nil {
				t.Fatalf("frame %d: batch decoder accepted what DecodeEnvelope rejects: %v", i, derr)
			}
			got := b.Report(i)
			if !pipelineReportsEqual(want, got) {
				t.Fatalf("frame %d decodes differently through the batch path: %+v != %+v", i, got, want)
			}
			if got.Task == pipeline.TaskGradient {
				if got.Round < 0 || got.Round > maxWireRound {
					t.Fatalf("frame %d: decoded round %d outside wire bounds", i, got.Round)
				}
				for _, e := range got.Entries {
					if e.Attr < 0 || e.Attr > maxWireAttr {
						t.Fatalf("frame %d: decoded coordinate %d outside wire bounds", i, e.Attr)
					}
				}
				// Round trip with the round tag intact.
				again, aerr := EncodeGradientReport(got)
				if aerr != nil {
					t.Fatalf("frame %d: re-encode failed: %v", i, aerr)
				}
				rep2, derr2 := DecodeEnvelope(again)
				if derr2 != nil || !pipelineReportsEqual(got, rep2) {
					t.Fatalf("frame %d: gradient round trip changed the report (%v)", i, derr2)
				}
			}
			off += flen
		}
		_ = err // a decode error past the verified prefix is expected
	})
}

// FuzzDecodeBatch differentially checks the columnar batch decoder
// against the materializing per-frame path: for any body, DecodeBatch
// must decode exactly the frames SplitFrames+DecodeEnvelope would, into
// identical reports, and keep the complete prefix when a later frame is
// malformed — without ever panicking.
func FuzzDecodeBatch(f *testing.F) {
	s, err := schema.New(
		schema.Attribute{Name: "x", Kind: schema.Numeric},
		schema.Attribute{Name: "y", Kind: schema.Numeric},
		schema.Attribute{Name: "c", Kind: schema.Categorical, Cardinality: 70},
	)
	if err != nil {
		f.Fatal(err)
	}
	p, err := pipeline.New(s, 2, pipeline.WithRange(rangequery.Config{Buckets: 32, GridCells: 4}))
	if err != nil {
		f.Fatal(err)
	}
	r := rng.New(23)
	var body []byte
	for i := 0; i < 8; i++ {
		tup := schema.NewTuple(s)
		tup.Num[0] = rng.Uniform(r, -1, 1)
		tup.Num[1] = rng.Uniform(r, -1, 1)
		tup.Cat[2] = r.IntN(70)
		rep, err := p.Randomize(tup, r)
		if err != nil {
			f.Fatal(err)
		}
		body, err = AppendEnvelope(body, rep)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte(nil), body...)) // growing multi-frame bodies
	}
	f.Add(append(append([]byte(nil), body...), body[:11]...)) // trailing partial frame
	f.Add([]byte{})
	f.Add([]byte("LDPR\x02\x04\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, body []byte) {
		if len(body) > MaxBatchSize {
			return
		}
		b := pipeline.NewReportBatch()
		n, err := DecodeBatch(body, b)
		if b.Len() != n {
			t.Fatalf("DecodeBatch returned %d but batch holds %d reports", n, b.Len())
		}
		frames, serr := SplitFrames(body)
		if err == nil {
			if serr != nil {
				t.Fatalf("DecodeBatch accepted a body SplitFrames rejects: %v", serr)
			}
			if n != len(frames) {
				t.Fatalf("DecodeBatch decoded %d frames, SplitFrames found %d", n, len(frames))
			}
		}
		// Every decoded report must match the materializing decoder.
		// (SplitFrames returns nothing on a truncated body, so re-slice
		// the decoded prefix by frame length instead.)
		off := 0
		for i := 0; i < n; i++ {
			flen, ferr := FrameLen(body[off:])
			if ferr != nil || flen > len(body)-off {
				t.Fatalf("frame %d: batch decoder accepted an unframeable prefix: %v", i, ferr)
			}
			want, derr := DecodeEnvelope(body[off : off+flen])
			if derr != nil {
				t.Fatalf("frame %d: batch decoder accepted what DecodeEnvelope rejects: %v", i, derr)
			}
			if !pipelineReportsEqual(want, b.Report(i)) {
				t.Fatalf("frame %d decodes differently through the batch path", i)
			}
			off += flen
		}
		// A content error (well-formed framing, bad payload) must be
		// reproducible on the failing frame.
		if err != nil && serr == nil && n < len(frames) {
			if _, derr := DecodeEnvelope(frames[n]); derr == nil {
				t.Fatalf("batch decoder rejected frame %d that DecodeEnvelope accepts: %v", n, err)
			}
		}
	})
}
