package transport

import (
	"encoding/binary"
	"fmt"
	"math"

	"ldp/internal/pipeline"
	"ldp/internal/rangequery"
)

// The columnar batch decode path: a buffer of concatenated report frames
// (a POST /v1/report body, a replayed log chunk) decodes directly into a
// reusable pipeline.ReportBatch — no [][]byte frame list, no Report
// structs, no per-entry bitset allocations. In the steady state (a pooled
// batch whose buffers have grown to the working-set size) decoding a
// frame allocates nothing.

// DecodeBatch appends every report frame in body (any format
// DecodeEnvelope accepts, freely mixed) to the batch and returns the
// number of frames decoded. On error the batch keeps the frames decoded
// before the failing one; the error says which frame failed. Callers
// bound body themselves (the HTTP server enforces MaxBatchSize).
func DecodeBatch(body []byte, b *pipeline.ReportBatch) (int, error) {
	n := 0
	for off := 0; off < len(body); {
		flen, err := FrameLen(body[off:])
		if err != nil {
			return n, fmt.Errorf("transport: frame %d: %w", n, err)
		}
		if flen > len(body)-off {
			return n, fmt.Errorf("transport: frame %d: %w", n, ErrTruncated)
		}
		mark := b.Mark()
		if err := decodeFrameInto(body[off:off+flen], b); err != nil {
			b.Truncate(mark)
			return n, fmt.Errorf("transport: frame %d: %w", n, err)
		}
		off += flen
		n++
	}
	return n, nil
}

// decodeFrameInto decodes one frame (v2 envelope or either legacy v1
// format) into the batch. On error the caller rolls the batch back to its
// mark.
func decodeFrameInto(frame []byte, b *pipeline.ReportBatch) error {
	version, payload, err := parseFrame(frame)
	if err != nil {
		return err
	}
	switch {
	case frameMagicIs(frame, wireMagic) && version == wireEnvelopeVersion:
		if len(payload) < 1 {
			return ErrTruncated
		}
		tag, body := payload[0], payload[1:]
		switch tag {
		case envTaskMean:
			return decodeEntriesInto(body, pipeline.TaskMean, b)
		case envTaskFreq:
			return decodeEntriesInto(body, pipeline.TaskFreq, b)
		case envTaskJoint:
			return decodeEntriesInto(body, pipeline.TaskJoint, b)
		case envTaskRange:
			return decodeRangeReportInto(body, b)
		case envTaskGradient:
			return decodeGradientInto(body, b)
		default:
			return fmt.Errorf("transport: unknown envelope task tag %d", tag)
		}
	case frameMagicIs(frame, wireMagic) && version == wireVersion:
		return decodeEntriesInto(payload, pipeline.TaskJoint, b)
	case frameMagicIs(frame, wireRangeMagic) && version == wireRangeVersion:
		return decodeRangeReportInto(payload, b)
	case frameMagicIs(frame, wireMagic) || frameMagicIs(frame, wireRangeMagic):
		return fmt.Errorf("%w: %d", ErrBadVersion, version)
	default:
		return ErrBadMagic
	}
}

// decodeEntriesInto parses the entry-list payload encoding (see
// appendEntries) straight into the batch columns. It mirrors
// decodeEntries entry for entry but allocates nothing.
func decodeEntriesInto(payload []byte, task pipeline.TaskKind, b *pipeline.ReportBatch) error {
	pos := 0
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return ErrTruncated
	}
	pos += n
	if count > 1<<16 {
		return fmt.Errorf("transport: implausible entry count %d", count)
	}
	b.StartEntryReport(task)
	for i := uint64(0); i < count; i++ {
		attr, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return ErrTruncated
		}
		pos += n
		if attr > maxWireAttr {
			return fmt.Errorf("transport: implausible entry attribute %d", attr)
		}
		if pos >= len(payload) {
			return ErrTruncated
		}
		kind := payload[pos]
		pos++
		switch kind {
		case entryNumeric:
			if pos+8 > len(payload) {
				return ErrTruncated
			}
			b.AppendNumeric(int(attr), math.Float64frombits(binary.LittleEndian.Uint64(payload[pos:])))
			pos += 8
		case entryCatBits:
			words, n := binary.Uvarint(payload[pos:])
			if n <= 0 {
				return ErrTruncated
			}
			pos += n
			if words == 0 {
				return fmt.Errorf("transport: empty bitset entry")
			}
			if words > 1<<12 || pos+int(words)*8 > len(payload) {
				return ErrTruncated
			}
			dst := b.AppendBits(int(attr), int(words))
			for w := range dst {
				dst[w] = binary.LittleEndian.Uint64(payload[pos:])
				pos += 8
			}
		case entryCatValue:
			v, n := binary.Uvarint(payload[pos:])
			if n <= 0 {
				return ErrTruncated
			}
			pos += n
			if v > maxWireValue {
				return fmt.Errorf("transport: implausible categorical value %d", v)
			}
			b.AppendValue(int(attr), int(v))
		default:
			return fmt.Errorf("transport: unknown entry kind %d", kind)
		}
	}
	if pos != len(payload) {
		return fmt.Errorf("transport: %d trailing payload bytes", len(payload)-pos)
	}
	return nil
}

// decodeRangeReportInto parses the range-report payload encoding (see
// appendRangeReport) straight into the batch columns, mirroring
// decodeRangeReport without allocating.
func decodeRangeReportInto(payload []byte, b *pipeline.ReportBatch) error {
	if len(payload) < 1 {
		return ErrTruncated
	}
	pos := 0
	kind := payload[pos]
	pos++
	var rKind rangeReportHeader
	switch kind {
	case rangeKindHier:
		attr, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return ErrTruncated
		}
		pos += n
		depth, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return ErrTruncated
		}
		pos += n
		if attr > 1<<16 || depth > 64 {
			return fmt.Errorf("transport: implausible hierarchy header attr=%d depth=%d", attr, depth)
		}
		rKind = rangeReportHeader{hier: true, attr: int(attr), depth: int(depth)}
	case rangeKindGrid:
		pair, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return ErrTruncated
		}
		pos += n
		if pair > 1<<20 {
			return fmt.Errorf("transport: implausible pair index %d", pair)
		}
		rKind = rangeReportHeader{pair: int(pair)}
	default:
		return fmt.Errorf("transport: unknown range report kind %d", kind)
	}
	if pos >= len(payload) {
		return ErrTruncated
	}
	respKind := payload[pos]
	pos++
	switch respKind {
	case respBits:
		words, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return ErrTruncated
		}
		pos += n
		if words == 0 {
			return fmt.Errorf("transport: empty bitset response")
		}
		if words > 1<<12 || pos+int(words)*8 > len(payload) {
			return ErrTruncated
		}
		dst := rKind.appendBits(b, int(words))
		for w := range dst {
			dst[w] = binary.LittleEndian.Uint64(payload[pos:])
			pos += 8
		}
	case respValue:
		v, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return ErrTruncated
		}
		pos += n
		if v > maxWireValue {
			return fmt.Errorf("transport: implausible response value %d", v)
		}
		rKind.appendValue(b, int(v))
	default:
		return fmt.Errorf("transport: unknown response kind %d", respKind)
	}
	if pos != len(payload) {
		return fmt.Errorf("transport: %d trailing payload bytes", len(payload)-pos)
	}
	return nil
}

// rangeReportHeader carries a parsed range-report header until the
// response is parsed and the whole report can be appended atomically.
type rangeReportHeader struct {
	hier        bool
	attr, depth int
	pair        int
}

func (h rangeReportHeader) kind() rangequery.ReportKind {
	if h.hier {
		return rangequery.KindHier
	}
	return rangequery.KindGrid
}

func (h rangeReportHeader) appendBits(b *pipeline.ReportBatch, words int) []uint64 {
	return b.AppendRangeBits(h.kind(), h.attr, h.depth, h.pair, words)
}

func (h rangeReportHeader) appendValue(b *pipeline.ReportBatch, v int) {
	b.AppendRangeValue(h.kind(), h.attr, h.depth, h.pair, v)
}
