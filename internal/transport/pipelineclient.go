package transport

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"ldp/internal/cluster"
	"ldp/internal/pipeline"
	"ldp/internal/rng"
	"ldp/internal/schema"
)

// ClientOption configures the HTTP behavior of the transport clients.
type ClientOption func(*clientConfig)

type clientConfig struct {
	http    *http.Client
	timeout time.Duration
	retry   cluster.RetryPolicy
	retryOn bool
}

// WithRetry retries failed report uploads under the given policy:
// connection errors and 5xx responses back off exponentially with full
// jitter and try again (the server folds nothing on those responses, so
// redelivery cannot double-count); a 429 is retried at the cadence of the
// server's Retry-After hint (an overloaded aggregator shed the batch
// before decoding it, so redelivery is equally safe); other 4xx responses
// never retry. The whole loop is cut off by the policy's MaxElapsed
// wall-clock deadline, which also cancels in-flight requests, so a root
// that trickles bytes cannot stall a client batch indefinitely. The zero
// policy's fields fall back to cluster.DefaultRetryPolicy, so
// WithRetry(cluster.RetryPolicy{}) asks for default bounded retries.
// Without this option requests are single-shot, as before.
func WithRetry(p cluster.RetryPolicy) ClientOption {
	return func(c *clientConfig) { c.retry = p; c.retryOn = true }
}

// WithHTTPClient uses the given http.Client instead of
// http.DefaultClient (connection pools, proxies, TLS configuration).
func WithHTTPClient(h *http.Client) ClientOption {
	return func(c *clientConfig) { c.http = h }
}

// WithTimeout bounds each request (including reading the response). It
// layers on top of WithHTTPClient by shallow-copying the client with the
// timeout set.
func WithTimeout(d time.Duration) ClientOption {
	return func(c *clientConfig) { c.timeout = d }
}

// ResolveClientOptions folds options into a concrete *http.Client (the
// facade uses it to thread options through the legacy client
// constructors).
func ResolveClientOptions(opts []ClientOption) *http.Client {
	var cfg clientConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	return resolveHTTP(cfg)
}

func resolveHTTP(cfg clientConfig) *http.Client {
	h := cfg.http
	if h == nil {
		h = http.DefaultClient
	}
	if cfg.timeout > 0 {
		clone := *h
		clone.Timeout = cfg.timeout
		h = &clone
	}
	return h
}

// PipelineClient runs on the user's side of the unified pipeline: it
// randomizes tuples locally (the true tuple never leaves the process) and
// submits only versioned envelope frames to the aggregator's /v1/report
// route, singly or in batches. It is safe for concurrent use with
// per-goroutine PRNGs.
type PipelineClient struct {
	baseURL string
	p       *pipeline.Pipeline
	http    *http.Client
	retry   cluster.RetryPolicy
	retryOn bool
}

// NewPipelineClient builds a client for the aggregator at baseURL (no
// trailing slash required), randomizing through the given pipeline.
func NewPipelineClient(baseURL string, p *pipeline.Pipeline, opts ...ClientOption) *PipelineClient {
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	var cfg clientConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	return &PipelineClient{
		baseURL: baseURL, p: p,
		http:  resolveHTTP(cfg),
		retry: cfg.retry, retryOn: cfg.retryOn,
	}
}

// Send randomizes one tuple and posts the resulting frame.
func (c *PipelineClient) Send(ctx context.Context, t schema.Tuple, r *rng.Rand) error {
	rep, err := c.p.Randomize(t, r)
	if err != nil {
		return fmt.Errorf("transport: randomize: %w", err)
	}
	return c.SendReport(ctx, rep)
}

// SendBatch randomizes a batch of tuples and posts all resulting frames
// in one request. The server validates — and, when persistence is on,
// journals — the whole batch before folding any of it in, so a rejected
// batch (400) or a persistence failure (500) has ingested nothing;
// clients built WithRetry redeliver on 5xx and connection errors without
// risk of double-counting.
func (c *PipelineClient) SendBatch(ctx context.Context, tuples []schema.Tuple, r *rng.Rand) error {
	if len(tuples) == 0 {
		return nil
	}
	reps := make([]pipeline.Report, len(tuples))
	for i, t := range tuples {
		rep, err := c.p.Randomize(t, r)
		if err != nil {
			return fmt.Errorf("transport: randomize tuple %d: %w", i, err)
		}
		reps[i] = rep
	}
	return c.SendReports(ctx, reps)
}

// SendReport posts one already-randomized report.
func (c *PipelineClient) SendReport(ctx context.Context, rep pipeline.Report) error {
	return c.SendReports(ctx, []pipeline.Report{rep})
}

// SendReports posts already-randomized reports as one batch.
func (c *PipelineClient) SendReports(ctx context.Context, reps []pipeline.Report) error {
	if len(reps) == 0 {
		return nil
	}
	var body []byte
	for i, rep := range reps {
		var err error
		body, err = AppendEnvelope(body, rep)
		if err != nil {
			return fmt.Errorf("transport: encode report %d: %w", i, err)
		}
	}
	if len(body) > MaxBatchSize {
		return fmt.Errorf("transport: batch of %d bytes exceeds limit %d", len(body), MaxBatchSize)
	}
	if !c.retryOn {
		_, err := c.post(ctx, body)
		return err
	}
	return c.retry.Do(ctx, func(ctx context.Context) (bool, error) { return c.post(ctx, body) })
}

// post delivers one encoded batch, reporting whether a failure is worth
// retrying: connection errors, 5xx responses, and 429 load shedding are
// (the server folds nothing on those), other 4xx responses are not.
func (c *PipelineClient) post(ctx context.Context, body []byte) (retryable bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL+"/v1/report", bytes.NewReader(body))
	if err != nil {
		return false, fmt.Errorf("transport: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.http.Do(req)
	if err != nil {
		return true, fmt.Errorf("transport: post reports: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return respFailure(resp, "aggregator rejected batch")
	}
	return false, nil
}

// respFailure classifies a non-success report-upload response into
// (retryable, error), folding a 429's Retry-After hint into the error so
// the retry policy can honor it. Shared by PipelineClient and SGDClient
// so the two cannot drift.
func respFailure(resp *http.Response, what string) (retryable bool, err error) {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	err = fmt.Errorf("transport: %s: %s: %s", what, resp.Status, bytes.TrimSpace(msg))
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		return true, &cluster.RetryAfterError{
			Err:   err,
			After: cluster.ParseRetryAfter(resp.Header.Get("Retry-After")),
		}
	case resp.StatusCode >= 500:
		return true, err
	default:
		return false, err
	}
}
