package transport

import (
	"bytes"
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ldp/internal/cluster"
	"ldp/internal/core"
	"ldp/internal/pipeline"
	"ldp/internal/rng"
	"ldp/internal/schema"
	"ldp/internal/telemetry"
)

// quantizedReports randomizes n reports seeded from stream, snapping
// numeric payloads onto a 2^-10 dyadic grid so distributed sums are
// bit-exact under any regrouping of the additions.
func quantizedReports(t testing.TB, p *pipeline.Pipeline, stream uint64, n int) []pipeline.Report {
	t.Helper()
	s := p.Schema()
	reps := make([]pipeline.Report, n)
	for i := range reps {
		r := rng.NewStream(stream, uint64(i))
		rep, err := p.Randomize(randomTuple(s, r), r)
		if err != nil {
			t.Fatal(err)
		}
		for e := range rep.Entries {
			if rep.Entries[e].Kind == core.EntryNumeric {
				rep.Entries[e].Value = math.Round(rep.Entries[e].Value*1024) / 1024
			}
		}
		reps[i] = rep
	}
	return reps
}

func addAll(t testing.TB, p *pipeline.Pipeline, reps []pipeline.Report) {
	t.Helper()
	for _, rep := range reps {
		if err := p.Add(rep); err != nil {
			t.Fatal(err)
		}
	}
}

func assertSameEstimates(t *testing.T, got, want *pipeline.Pipeline) {
	t.Helper()
	gv, wv := got.Snapshot(), want.Snapshot()
	if gv.N() != wv.N() {
		t.Fatalf("N: got %d, want %d", gv.N(), wv.N())
	}
	gm, wm := gv.Means(), wv.Means()
	for k, v := range wm {
		if gm[k] != v {
			t.Errorf("Means[%s]: got %v, want %v", k, gm[k], v)
		}
	}
	gf, err1 := gv.FreqView("gender")
	wf, err2 := wv.FreqView("gender")
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i := range wf {
		if gf[i] != wf[i] {
			t.Errorf("FreqView(gender)[%d]: got %v, want %v", i, gf[i], wf[i])
		}
	}
	for _, q := range []pipeline.RangeQuery{
		{Attr: "age", Lo: -0.5, Hi: 0.5},
		{Attr: "age", Lo: -0.25, Hi: 0.75, Attr2: "income", Lo2: -0.5, Hi2: 0.5},
	} {
		gr, err1 := gv.Range(q)
		wr, err2 := wv.Range(q)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if gr != wr {
			t.Errorf("Range(%+v): got %v, want %v", q, gr, wr)
		}
	}
}

// TestMergeFanInExactness is the distributed-exactness acceptance test:
// two edges ingest disjoint report sets and push through real Forwarders
// to a real root server; the root's estimates must be bit-identical to a
// single pipeline that ingested every report directly.
func TestMergeFanInExactness(t *testing.T) {
	root := newTestPipeline(t)
	single := newTestPipeline(t)
	srv := httptest.NewServer(NewPipelineServer(root, nil))
	defer srv.Close()

	ctx := context.Background()
	for i, stream := range []uint64{101, 102} {
		edge := newTestPipeline(t)
		reps := quantizedReports(t, edge, stream, 800)
		addAll(t, edge, reps)
		addAll(t, single, reps)

		fw, err := cluster.NewForwarder(edge, cluster.ForwarderConfig{
			RootURL: srv.URL,
			EdgeID:  []string{"edge-a", "edge-b"}[i],
			Retry:   cluster.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		// Push in two installments to exercise the delta path.
		if err := fw.Push(ctx); err != nil {
			t.Fatal(err)
		}
		more := quantizedReports(t, edge, stream+1000, 200)
		addAll(t, edge, more)
		addAll(t, single, more)
		if err := fw.Push(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if root.Watermark() != 2000 {
		t.Fatalf("root watermark %d, want 2000", root.Watermark())
	}
	assertSameEstimates(t, root, single)
}

// TestMergeIdempotent replays the same snapshot frame and checks the
// dedup: the second delivery acks applied=false and folds nothing.
func TestMergeIdempotent(t *testing.T) {
	root := newTestPipeline(t)
	s := NewPipelineServer(root, nil)
	srv := httptest.NewServer(s)
	defer srv.Close()

	edge := newTestPipeline(t)
	addAll(t, edge, quantizedReports(t, edge, 111, 300))
	st := edge.StateSnapshot()
	frame, err := cluster.EncodeSnapshot(&cluster.Snapshot{
		Fingerprint: edge.Fingerprint(), Edge: "edge-a", Seq: 1, Boot: s.Boot(), State: st,
	})
	if err != nil {
		t.Fatal(err)
	}
	post := func() *http.Response {
		resp, err := http.Post(srv.URL+"/v1/merge", "application/octet-stream", bytes.NewReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := post(); resp.StatusCode != http.StatusOK {
		t.Fatalf("first push: %s", resp.Status)
	}
	if resp := post(); resp.StatusCode != http.StatusOK {
		t.Fatalf("replayed push: %s", resp.Status)
	}
	if root.Watermark() != 300 {
		t.Fatalf("replay double-counted: watermark %d, want 300", root.Watermark())
	}
}

// TestMergeRejections drives every error response of POST /v1/merge and
// checks the merge metric family counts each outcome.
func TestMergeRejections(t *testing.T) {
	reg := telemetry.NewRegistry()
	root := newTestPipeline(t)
	s := NewPipelineServer(root, nil, WithServerTelemetry(reg))
	srv := httptest.NewServer(s)
	defer srv.Close()

	edge := newTestPipeline(t)
	addAll(t, edge, quantizedReports(t, edge, 121, 50))
	st := edge.StateSnapshot()

	post := func(frame []byte) *http.Response {
		resp, err := http.Post(srv.URL+"/v1/merge", "application/octet-stream", bytes.NewReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	enc := func(snap *cluster.Snapshot) []byte {
		frame, err := cluster.EncodeSnapshot(snap)
		if err != nil {
			t.Fatal(err)
		}
		return frame
	}

	// Garbage body.
	if resp := post([]byte("not a snapshot")); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: %s", resp.Status)
	}
	// Fingerprint mismatch.
	if resp := post(enc(&cluster.Snapshot{Fingerprint: 1, Edge: "e", Seq: 1, Boot: s.Boot(), State: st})); resp.StatusCode != http.StatusConflict {
		t.Errorf("fingerprint mismatch: %s", resp.Status)
	}
	// Boot mismatch.
	resp := post(enc(&cluster.Snapshot{Fingerprint: edge.Fingerprint(), Edge: "e", Seq: 1, Boot: "stale-boot", State: st}))
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Errorf("boot mismatch: %s", resp.Status)
	}
	if got := resp.Header.Get(cluster.BootHeader); got != s.Boot() {
		t.Errorf("Ldp-Boot header %q, want %q", got, s.Boot())
	}
	// Invalid state (trainer-bearing snapshots cannot merge).
	bad := st.Clone()
	bad.Trainer = &pipeline.TrainerState{}
	if resp := post(enc(&cluster.Snapshot{Fingerprint: edge.Fingerprint(), Edge: "e", Seq: 1, Boot: s.Boot(), State: bad})); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("trainer state: %s", resp.Status)
	}
	if root.Watermark() != 0 {
		t.Fatalf("rejected merges mutated the pipeline: watermark %d", root.Watermark())
	}

	// One good push, so "applied" appears too.
	if resp := post(enc(&cluster.Snapshot{Fingerprint: edge.Fingerprint(), Edge: "e", Seq: 1, Boot: s.Boot(), State: st})); resp.StatusCode != http.StatusOK {
		t.Errorf("valid push: %s", resp.Status)
	}

	var buf bytes.Buffer
	if _, err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`ldp_cluster_merges_total{result="applied"} 1`,
		`ldp_cluster_merges_total{result="boot_mismatch"} 1`,
		`ldp_cluster_merges_total{result="fingerprint_mismatch"} 1`,
		`ldp_cluster_merges_total{result="rejected"} 2`,
		`ldp_cluster_merged_reports_total 50`,
		`route="/v1/merge"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestMergeResyncRoundTrip covers GET /v1/merge: unknown edges get 404
// plus the boot header; known edges get back exactly the cumulative
// state the root applied for them.
func TestMergeResyncRoundTrip(t *testing.T) {
	root := newTestPipeline(t)
	s := NewPipelineServer(root, nil)
	srv := httptest.NewServer(s)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/merge?edge=ghost")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || resp.Header.Get(cluster.BootHeader) != s.Boot() {
		t.Fatalf("unknown edge: %s, boot %q", resp.Status, resp.Header.Get(cluster.BootHeader))
	}
	if resp, err = http.Get(srv.URL + "/v1/merge"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing edge param: %s", resp.Status)
	}

	edge := newTestPipeline(t)
	addAll(t, edge, quantizedReports(t, edge, 131, 400))
	fw, err := cluster.NewForwarder(edge, cluster.ForwarderConfig{RootURL: srv.URL, EdgeID: "edge-a"})
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Push(context.Background()); err != nil {
		t.Fatal(err)
	}

	resp, err = http.Get(srv.URL + "/v1/merge?edge=edge-a")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("known edge: %s", resp.Status)
	}
	raw := make([]byte, 0, 1<<16)
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		raw = append(raw, buf[:n]...)
		if err != nil {
			break
		}
	}
	snap, err := cluster.DecodeSnapshot(raw)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Edge != "edge-a" || snap.Seq != 1 || snap.Boot != s.Boot() || snap.State.Total() != 400 {
		t.Fatalf("resync snapshot: edge=%q seq=%d boot=%q total=%d", snap.Edge, snap.Seq, snap.Boot, snap.State.Total())
	}
}

// TestMergeConcurrentWithIngest interleaves /v1/merge pushes with local
// AddBatch ingest and View() reads; run under -race this is the
// concurrency acceptance test, and in any mode the final totals must be
// exact.
func TestMergeConcurrentWithIngest(t *testing.T) {
	root := newTestPipeline(t)
	s := NewPipelineServer(root, nil)
	srv := httptest.NewServer(s)
	defer srv.Close()

	const (
		edges     = 3
		pushes    = 5
		perPush   = 40
		localReps = 200
	)

	var wg sync.WaitGroup
	errc := make(chan error, edges+2)
	for e := 0; e < edges; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			edge := newTestPipeline(t)
			fw, err := cluster.NewForwarder(edge, cluster.ForwarderConfig{
				RootURL: srv.URL,
				EdgeID:  string(rune('a' + e)),
				Retry:   cluster.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond},
			})
			if err != nil {
				errc <- err
				return
			}
			for i := 0; i < pushes; i++ {
				addAll(t, edge, quantizedReports(t, edge, uint64(1000*e+i), perPush))
				if err := fw.Push(context.Background()); err != nil {
					errc <- err
					return
				}
			}
		}(e)
	}
	// Local ingest through AddBatch, racing the merges.
	wg.Add(1)
	go func() {
		defer wg.Done()
		reps := quantizedReports(t, root, 777, localReps)
		for i := 0; i < localReps; i += 10 {
			b := pipeline.GetBatch()
			for _, rep := range reps[i : i+10] {
				b.Append(rep)
			}
			if err := root.AddBatch(b); err != nil {
				errc <- err
				pipeline.PutBatch(b)
				return
			}
			pipeline.PutBatch(b)
		}
	}()
	// Concurrent view reads.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			v := root.View()
			_ = v.N()
			_, _ = v.FreqView("gender")
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	want := int64(edges*pushes*perPush + localReps)
	if root.Watermark() != want {
		t.Fatalf("watermark %d, want %d", root.Watermark(), want)
	}
}

// TestClientRetry covers PipelineClient WithRetry: transient 5xx then
// success, no retry on 4xx, exhaustion on persistent failure.
func TestClientRetry(t *testing.T) {
	p := newTestPipeline(t)
	var mu sync.Mutex
	fail5xx, posts := 2, 0
	backend := NewPipelineServer(p, nil)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		posts++
		if fail5xx > 0 {
			fail5xx--
			mu.Unlock()
			http.Error(w, "unavailable", http.StatusServiceUnavailable)
			return
		}
		mu.Unlock()
		backend.ServeHTTP(w, r)
	}))
	defer srv.Close()

	fast := cluster.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
	c := NewPipelineClient(srv.URL, p, WithRetry(fast))
	r := rng.New(42)
	tuples := []schema.Tuple{randomTuple(p.Schema(), r), randomTuple(p.Schema(), r)}
	if err := c.SendBatch(context.Background(), tuples, r); err != nil {
		t.Fatalf("retried batch failed: %v", err)
	}
	if posts != 3 {
		t.Fatalf("expected 3 attempts (2 failures + success), got %d", posts)
	}
	if p.N() != 2 {
		t.Fatalf("pipeline N %d, want 2", p.N())
	}

	// Persistent 5xx exhausts the policy.
	mu.Lock()
	fail5xx, posts = 100, 0
	mu.Unlock()
	if err := c.SendBatch(context.Background(), tuples, r); err == nil {
		t.Fatal("persistent 5xx did not fail")
	}
	mu.Lock()
	defer mu.Unlock()
	if posts != fast.MaxAttempts {
		t.Fatalf("persistent 5xx tried %d times, want %d", posts, fast.MaxAttempts)
	}
}

// TestClientRetryNo4xx asserts a 400 response is returned immediately,
// without burning retry attempts.
func TestClientRetryNo4xx(t *testing.T) {
	var mu sync.Mutex
	posts := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		posts++
		mu.Unlock()
		http.Error(w, "bad report", http.StatusBadRequest)
	}))
	defer srv.Close()

	p := newTestPipeline(t)
	c := NewPipelineClient(srv.URL, p, WithRetry(cluster.RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}))
	r := rng.New(7)
	err := c.SendBatch(context.Background(), []schema.Tuple{randomTuple(p.Schema(), r)}, r)
	if err == nil {
		t.Fatal("400 did not surface")
	}
	mu.Lock()
	defer mu.Unlock()
	if posts != 1 {
		t.Fatalf("400 was retried: %d attempts", posts)
	}
}
