package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"ldp/internal/cluster"
	"ldp/internal/dataset"
	"ldp/internal/erm"
	"ldp/internal/pipeline"
	"ldp/internal/rng"
)

// SGDClient runs on the user's side of the federated LDP-SGD protocol:
// it polls the aggregator's published model, computes the local loss
// gradient on the user's own example, and submits only the clipped,
// randomized gradient through the gradient task. Raw features, labels,
// and exact gradients never leave the process. It is safe for concurrent
// use with per-goroutine PRNGs.
type SGDClient struct {
	baseURL string
	grad    *pipeline.GradientTask
	task    erm.Task
	lambda  float64
	http    *http.Client
	retry   cluster.RetryPolicy
	retryOn bool
}

// NewSGDClient builds a client for the aggregator at baseURL. The
// pipeline must be built with the same WithGradient configuration as the
// server's (it supplies the randomizer); task and lambda select the loss
// the population trains.
func NewSGDClient(baseURL string, p *pipeline.Pipeline, task erm.Task, lambda float64, opts ...ClientOption) (*SGDClient, error) {
	if p == nil || p.GradientTask() == nil {
		return nil, fmt.Errorf("transport: SGDClient needs a pipeline built with WithGradient")
	}
	if lambda < 0 {
		return nil, fmt.Errorf("transport: negative lambda %v", lambda)
	}
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	var cfg clientConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	return &SGDClient{
		baseURL: baseURL,
		grad:    p.GradientTask(),
		task:    task,
		lambda:  lambda,
		http:    resolveHTTP(cfg),
		retry:   cfg.retry,
		retryOn: cfg.retryOn,
	}, nil
}

// FetchModel retrieves the current model state from GET /v1/model.
func (c *SGDClient) FetchModel(ctx context.Context) (ModelState, error) {
	var state ModelState
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+"/v1/model", nil)
	if err != nil {
		return state, fmt.Errorf("transport: build request: %w", err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return state, fmt.Errorf("transport: fetch model: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return state, fmt.Errorf("transport: model endpoint: %s: %s", resp.Status, msg)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<24)).Decode(&state); err != nil {
		return state, fmt.Errorf("transport: decode model: %w", err)
	}
	if len(state.Beta) != c.grad.Dim() {
		return state, fmt.Errorf("transport: model has %d coordinates, client built for %d", len(state.Beta), c.grad.Dim())
	}
	return state, nil
}

// SubmitGradient clips and randomizes one raw local gradient for the
// given round and posts the resulting frame to /v1/report.
func (c *SGDClient) SubmitGradient(ctx context.Context, round int, grad []float64, r *rng.Rand) error {
	return c.SubmitGradients(ctx, round, [][]float64{grad}, r)
}

// SubmitGradients randomizes a group of raw local gradients for the same
// round and posts all frames in one request — the batch path a
// coordinator simulating many users should prefer.
func (c *SGDClient) SubmitGradients(ctx context.Context, round int, grads [][]float64, r *rng.Rand) error {
	if len(grads) == 0 {
		return nil
	}
	var body []byte
	for i, g := range grads {
		rep, err := c.grad.RandomizeGradient(round, g, r)
		if err != nil {
			return fmt.Errorf("transport: randomize gradient %d: %w", i, err)
		}
		body, err = AppendEnvelope(body, rep)
		if err != nil {
			return fmt.Errorf("transport: encode gradient %d: %w", i, err)
		}
	}
	return c.postFrames(ctx, body)
}

// SubmitExamples computes each example's loss gradient at the given
// model state and submits all their clipped randomizations for its round
// in one batched upload: the coordinator-style driver for simulating a
// whole group of users (each example still yields exactly one report).
func (c *SGDClient) SubmitExamples(ctx context.Context, state ModelState, examples []dataset.ERMExample, r *rng.Rand) error {
	if state.Done {
		return fmt.Errorf("transport: training already finished at round %d", state.Round)
	}
	grads := make([][]float64, 0, len(examples))
	for i, ex := range examples {
		if len(ex.X) != c.grad.Dim() {
			return fmt.Errorf("transport: example %d has %d features, model has %d", i, len(ex.X), c.grad.Dim())
		}
		y := ex.YCls
		if c.task == erm.LinearRegression {
			y = ex.YReg
		}
		grads = append(grads, erm.Gradient(c.task, state.Beta, ex.X, y, c.lambda, make([]float64, len(ex.X))))
	}
	return c.SubmitGradients(ctx, state.Round, grads, r)
}

// Contribute performs one user's whole protocol step: fetch the current
// model, compute the local gradient of the configured loss at (x, y),
// and submit its clipped randomization tagged with the model's round. It
// returns the round contributed to, or ok=false (and no error) when
// training has already finished. Each user should call it exactly once —
// the paper's one-user-one-iteration rule.
func (c *SGDClient) Contribute(ctx context.Context, x []float64, y float64, r *rng.Rand) (round int, ok bool, err error) {
	state, err := c.FetchModel(ctx)
	if err != nil {
		return 0, false, err
	}
	if state.Done {
		return state.Round, false, nil
	}
	if len(x) != c.grad.Dim() {
		return 0, false, fmt.Errorf("transport: example has %d features, model has %d", len(x), c.grad.Dim())
	}
	grad := erm.Gradient(c.task, state.Beta, x, y, c.lambda, make([]float64, len(x)))
	if err := c.SubmitGradient(ctx, state.Round, grad, r); err != nil {
		return 0, false, err
	}
	return state.Round, true, nil
}

// postFrames posts concatenated envelope frames to /v1/report. Clients
// built WithRetry redeliver on connection errors, 5xx, and 429 load
// shedding (honoring the Retry-After hint) — the server folds nothing on
// those responses, so redelivery cannot double-count a gradient.
func (c *SGDClient) postFrames(ctx context.Context, body []byte) error {
	if len(body) > MaxBatchSize {
		return fmt.Errorf("transport: batch of %d bytes exceeds limit %d", len(body), MaxBatchSize)
	}
	if !c.retryOn {
		_, err := c.postOnce(ctx, body)
		return err
	}
	return c.retry.Do(ctx, func(ctx context.Context) (bool, error) { return c.postOnce(ctx, body) })
}

func (c *SGDClient) postOnce(ctx context.Context, body []byte) (retryable bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL+"/v1/report", bytes.NewReader(body))
	if err != nil {
		return false, fmt.Errorf("transport: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.http.Do(req)
	if err != nil {
		return true, fmt.Errorf("transport: post gradients: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return respFailure(resp, "aggregator rejected gradients")
	}
	return false, nil
}
