// Package transport implements the collection pipeline of the paper's
// system model (Section II): users randomize their records locally and send
// only the perturbed reports to an aggregator over HTTP.
//
// The wire format is a compact CRC-framed binary encoding of core.Report;
// the server accumulates reports into a core.Aggregator (optionally
// persisting raw frames to a reportlog for crash recovery) and serves mean
// and frequency estimates as JSON.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"ldp/internal/core"
	"ldp/internal/freq"
)

// Frame constants for the report wire format.
const (
	wireMagic   = "LDPR"
	wireVersion = 1

	entryNumeric  = 0
	entryCatBits  = 1
	entryCatValue = 2

	// MaxFrameSize bounds a report frame (defensive limit).
	MaxFrameSize = 1 << 20

	// maxWireAttr and maxWireValue bound decoded attribute indices and
	// categorical values. No real schema comes near them; rejecting the
	// rest at the decode boundary means downstream narrowing (the
	// columnar batch stores both as int32) can never truncate an
	// attacker-chosen value into a valid-looking one.
	maxWireAttr  = 1 << 16
	maxWireValue = 1 << 24
)

// Errors returned by DecodeReport and DecodeRangeReport.
var (
	ErrBadMagic    = errors.New("transport: bad frame magic")
	ErrBadVersion  = errors.New("transport: unsupported frame version")
	ErrBadChecksum = errors.New("transport: frame checksum mismatch")
	ErrTruncated   = errors.New("transport: truncated frame")
)

// encodeFrame wraps a payload in the common self-contained envelope
// shared by every frame type:
//
//	magic(4) version(1) payloadLen(u32) payload crc32(u32)
func encodeFrame(magic string, version byte, payload []byte) []byte {
	frame := make([]byte, 0, len(payload)+13)
	frame = append(frame, magic...)
	frame = append(frame, version)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	return frame
}

// parseFrame validates the structural envelope shared by every frame type
// (size limit, length, checksum) and returns the version and payload.
// Callers dispatch on (magic, version) with frameMagicIs; the magic is not
// returned as a string so the batch decode path stays allocation-free.
func parseFrame(frame []byte) (version byte, payload []byte, err error) {
	if len(frame) > MaxFrameSize {
		return 0, nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", len(frame))
	}
	if len(frame) < 13 {
		return 0, nil, ErrTruncated
	}
	plen := binary.LittleEndian.Uint32(frame[5:9])
	if int(plen) != len(frame)-13 {
		return 0, nil, ErrTruncated
	}
	payload = frame[9 : 9+plen]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(frame[9+plen:]) {
		return 0, nil, ErrBadChecksum
	}
	return frame[4], payload, nil
}

// frameMagicIs reports whether the frame starts with the given 4-byte
// magic. The string conversion in the comparison does not allocate.
func frameMagicIs(frame []byte, magic string) bool {
	return len(frame) >= 4 && string(frame[:4]) == magic
}

// decodeFrame validates the common envelope (size limit, magic, version,
// length, checksum) and returns the payload.
func decodeFrame(magic string, version byte, frame []byte) ([]byte, error) {
	gotVersion, payload, err := parseFrame(frame)
	if err != nil {
		return nil, err
	}
	if !frameMagicIs(frame, magic) {
		return nil, ErrBadMagic
	}
	if gotVersion != version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, gotVersion)
	}
	return payload, nil
}

// EncodeReport serializes a report into a self-contained frame:
//
//	magic(4) version(1) payloadLen(u32) payload crc32(u32)
//
// Payload: entryCount(uvarint) then per entry: attr(uvarint), kind(byte),
// and the kind-specific body (float64 bits, a bitset, or a value index).
func EncodeReport(rep core.Report) []byte {
	return encodeFrame(wireMagic, wireVersion, appendEntries(nil, rep.Entries))
}

// appendEntries appends the entry-list payload encoding shared by the v1
// report frame and the v2 envelope's mean/freq/joint payloads.
func appendEntries(payload []byte, entries []core.Entry) []byte {
	if payload == nil {
		payload = make([]byte, 0, 16+16*len(entries))
	}
	payload = binary.AppendUvarint(payload, uint64(len(entries)))
	for _, e := range entries {
		payload = binary.AppendUvarint(payload, uint64(e.Attr))
		switch e.Kind {
		case core.EntryCategoricalBits:
			payload = append(payload, entryCatBits)
			payload = binary.AppendUvarint(payload, uint64(len(e.Resp.Bits)))
			for _, w := range e.Resp.Bits {
				payload = binary.LittleEndian.AppendUint64(payload, w)
			}
		case core.EntryCategoricalValue:
			payload = append(payload, entryCatValue)
			payload = binary.AppendUvarint(payload, uint64(e.Resp.Value))
		default:
			payload = append(payload, entryNumeric)
			payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(e.Value))
		}
	}
	return payload
}

// DecodeReport parses a frame produced by EncodeReport.
func DecodeReport(frame []byte) (core.Report, error) {
	payload, err := decodeFrame(wireMagic, wireVersion, frame)
	if err != nil {
		return core.Report{}, err
	}
	entries, err := decodeEntries(payload)
	if err != nil {
		return core.Report{}, err
	}
	return core.Report{Entries: entries}, nil
}

// decodeEntries parses the entry-list payload encoding (see appendEntries).
// The whole payload must be consumed.
func decodeEntries(payload []byte) ([]core.Entry, error) {
	pos := 0
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return 0, ErrTruncated
		}
		pos += n
		return v, nil
	}
	count, err := readUvarint()
	if err != nil {
		return nil, err
	}
	if count > 1<<16 {
		return nil, fmt.Errorf("transport: implausible entry count %d", count)
	}
	entries := make([]core.Entry, 0, count)
	for i := uint64(0); i < count; i++ {
		attr, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if attr > maxWireAttr {
			return nil, fmt.Errorf("transport: implausible entry attribute %d", attr)
		}
		if pos >= len(payload) {
			return nil, ErrTruncated
		}
		kind := payload[pos]
		pos++
		var e core.Entry
		e.Attr = int(attr)
		switch kind {
		case entryNumeric:
			if pos+8 > len(payload) {
				return nil, ErrTruncated
			}
			e.Kind = core.EntryNumeric
			e.Value = math.Float64frombits(binary.LittleEndian.Uint64(payload[pos:]))
			pos += 8
		case entryCatBits:
			words, err := readUvarint()
			if err != nil {
				return nil, err
			}
			// A 0-word bitset can never validate (every oracle domain
			// needs >= 1 word); rejecting it here keeps the decoders from
			// ever carrying a bits response that looks like a value.
			if words == 0 {
				return nil, fmt.Errorf("transport: empty bitset entry")
			}
			if words > 1<<12 || pos+int(words)*8 > len(payload) {
				return nil, ErrTruncated
			}
			bits := make(freq.Bitset, words)
			for w := range bits {
				bits[w] = binary.LittleEndian.Uint64(payload[pos:])
				pos += 8
			}
			e.Kind = core.EntryCategoricalBits
			e.Resp = freq.Response{Bits: bits}
		case entryCatValue:
			v, err := readUvarint()
			if err != nil {
				return nil, err
			}
			if v > maxWireValue {
				return nil, fmt.Errorf("transport: implausible categorical value %d", v)
			}
			e.Kind = core.EntryCategoricalValue
			e.Resp = freq.Response{Value: int(v)}
		default:
			return nil, fmt.Errorf("transport: unknown entry kind %d", kind)
		}
		entries = append(entries, e)
	}
	if pos != len(payload) {
		return nil, fmt.Errorf("transport: %d trailing payload bytes", len(payload)-pos)
	}
	return entries, nil
}
