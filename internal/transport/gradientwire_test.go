package transport

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"ldp/internal/pipeline"
	"ldp/internal/rng"
)

// newGradPipeline builds a gradient-enabled pipeline for wire tests.
func newGradPipeline(t testing.TB, dim, rounds int) *pipeline.Pipeline {
	t.Helper()
	p, err := pipeline.New(gradSchema(t), 2, pipeline.WithGradient(pipeline.GradientConfig{
		Dim: dim, Rounds: rounds, GroupSize: 4, Eta: 1, Lambda: 1e-4,
	}))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func sampleGradientReports(t testing.TB, p *pipeline.Pipeline, n int, seed uint64) []pipeline.Report {
	t.Helper()
	gt := p.GradientTask()
	grad := make([]float64, gt.Dim())
	reps := make([]pipeline.Report, 0, n)
	for i := 0; i < n; i++ {
		r := rng.NewStream(seed, uint64(i))
		for j := range grad {
			grad[j] = rng.Uniform(r, -1, 1)
		}
		rep, err := gt.RandomizeGradient(i%p.Trainer().Rounds(), grad, r)
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, rep)
	}
	return reps
}

func TestGradientEnvelopeRoundTrip(t *testing.T) {
	p := newGradPipeline(t, 6, 5)
	for _, rep := range sampleGradientReports(t, p, 10, 3) {
		frame, err := EncodeGradientReport(rep)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeEnvelope(frame)
		if err != nil {
			t.Fatal(err)
		}
		if got.Task != pipeline.TaskGradient || got.Round != rep.Round {
			t.Fatalf("round trip changed header: task %v round %d, want gradient round %d", got.Task, got.Round, rep.Round)
		}
		if !pipelineReportsEqual(rep, got) {
			t.Fatalf("round trip changed payload: %+v != %+v", got, rep)
		}
		// The decoded report must fold back into a pipeline.
		if err := p.Validate(got); err != nil {
			t.Fatalf("round-tripped report fails validation: %v", err)
		}
	}
	// EncodeGradientReport rejects other tasks at encode time.
	if _, err := EncodeGradientReport(pipeline.Report{Task: pipeline.TaskMean}); err == nil {
		t.Error("EncodeGradientReport accepted a mean report")
	}
}

// gradientPayload builds a raw gradient envelope payload for bound tests.
func gradientPayload(round uint64, coords []uint64, values []float64) []byte {
	payload := []byte{envTaskGradient}
	payload = binary.AppendUvarint(payload, round)
	payload = binary.AppendUvarint(payload, uint64(len(coords)))
	for i, c := range coords {
		payload = binary.AppendUvarint(payload, c)
		payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(values[i]))
	}
	return payload
}

// TestDecodeGradientWireBounds: the decoder rejects implausible round and
// coordinate values at the wire boundary — before the int32 narrowing of
// the batch columns could truncate them — plus structural garbage.
func TestDecodeGradientWireBounds(t *testing.T) {
	cases := map[string][]byte{
		"huge round":     gradientPayload(maxWireRound+1, []uint64{0}, []float64{1}),
		"huge coord":     gradientPayload(0, []uint64{maxWireAttr + 1}, []float64{1}),
		"zero coords":    gradientPayload(0, nil, nil),
		"huge count":     append(append([]byte{envTaskGradient}, 0), binary.AppendUvarint(nil, 1<<20)...),
		"trailing bytes": append(gradientPayload(0, []uint64{0}, []float64{1}), 0xAB),
		"cut value":      gradientPayload(0, []uint64{0}, []float64{1})[:6],
		"empty body":     {envTaskGradient},
	}
	for name, payload := range cases {
		t.Run(name, func(t *testing.T) {
			frame := encodeFrame(wireMagic, wireEnvelopeVersion, payload)
			if _, err := DecodeEnvelope(frame); err == nil {
				t.Error("DecodeEnvelope accepted it")
			}
			b := pipeline.NewReportBatch()
			if n, err := DecodeBatch(frame, b); err == nil || n != 0 || b.Len() != 0 {
				t.Errorf("DecodeBatch accepted it (n=%d len=%d err=%v)", n, b.Len(), err)
			}
		})
	}
	// A round at exactly the wire bound decodes (the pipeline's own
	// validator enforces the real training horizon).
	frame := encodeFrame(wireMagic, wireEnvelopeVersion, gradientPayload(maxWireRound, []uint64{0}, []float64{0.5}))
	if _, err := DecodeEnvelope(frame); err != nil {
		t.Errorf("round at the wire bound rejected: %v", err)
	}
}

// TestDecodeBatchGradientRollback: a gradient frame that fails mid-decode
// (after its round and some coordinates were appended) must roll the
// batch back to the last complete report — round column included — and
// keep decoded gradient frames before it intact.
func TestDecodeBatchGradientRollback(t *testing.T) {
	p := newGradPipeline(t, 6, 5)
	reps := sampleGradientReports(t, p, 2, 11)
	f0, err := EncodeGradientReport(reps[0])
	if err != nil {
		t.Fatal(err)
	}

	// A structurally framed gradient payload that dies mid-coordinate:
	// count=2 but only one coordinate present, so the decoder fails after
	// the round tag and the first coordinate already hit the columns.
	pl := []byte{envTaskGradient}
	pl = binary.AppendUvarint(pl, 3)
	pl = binary.AppendUvarint(pl, 2) // claims 2 coords
	pl = binary.AppendUvarint(pl, 1)
	pl = binary.LittleEndian.AppendUint64(pl, math.Float64bits(0.25))
	bad := encodeFrame(wireMagic, wireEnvelopeVersion, pl)

	body := append(append([]byte{}, f0...), bad...)
	b := pipeline.NewReportBatch()
	n, err := DecodeBatch(body, b)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("error = %v, want ErrTruncated", err)
	}
	if n != 1 || b.Len() != 1 {
		t.Fatalf("kept %d frames (batch len %d), want 1", n, b.Len())
	}
	if got := b.Report(0); !pipelineReportsEqual(reps[0], got) || got.Round != reps[0].Round {
		t.Fatal("frame 0 changed by the corrupt gradient neighbor")
	}

	// The rolled-back batch must still be appendable and foldable.
	b.Append(reps[1])
	if b.Round(1) != reps[1].Round {
		t.Fatalf("append after rollback: round = %d, want %d", b.Round(1), reps[1].Round)
	}
	if err := p.AddBatch(b); err != nil {
		t.Fatalf("rolled-back batch does not fold: %v", err)
	}
}

// TestDecodeBatchCorruptGradientChecksum mirrors the existing
// corrupt-frame rollback test for the gradient frame family.
func TestDecodeBatchCorruptGradientChecksum(t *testing.T) {
	p := newGradPipeline(t, 6, 5)
	reps := sampleGradientReports(t, p, 2, 17)
	var body []byte
	for _, rep := range reps {
		var err error
		body, err = AppendEnvelope(body, rep)
		if err != nil {
			t.Fatal(err)
		}
	}
	flen, err := FrameLen(body)
	if err != nil {
		t.Fatal(err)
	}
	body[flen+10] ^= 0xff // corrupt frame 1's payload

	b := pipeline.NewReportBatch()
	n, err := DecodeBatch(body, b)
	if !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("error = %v, want ErrBadChecksum", err)
	}
	if n != 1 || b.Len() != 1 {
		t.Fatalf("kept %d frames (batch len %d), want 1", n, b.Len())
	}
	if !pipelineReportsEqual(reps[0], b.Report(0)) {
		t.Fatal("frame 0 changed by the corrupt neighbor")
	}
}
