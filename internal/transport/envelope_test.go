package transport

import (
	"bytes"
	"context"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"ldp/internal/core"
	"ldp/internal/pipeline"
	"ldp/internal/rangequery"
	"ldp/internal/rng"
	"ldp/internal/schema"
)

func pipelineSchema(t testing.TB) *schema.Schema {
	t.Helper()
	s, err := schema.New(
		schema.Attribute{Name: "age", Kind: schema.Numeric},
		schema.Attribute{Name: "income", Kind: schema.Numeric},
		schema.Attribute{Name: "gender", Kind: schema.Categorical, Cardinality: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newTestPipeline(t testing.TB) *pipeline.Pipeline {
	t.Helper()
	p, err := pipeline.New(pipelineSchema(t), 2,
		pipeline.WithShards(2),
		pipeline.WithRange(rangequery.Config{Buckets: 32, GridCells: 2}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func randomTuple(s *schema.Schema, r *rng.Rand) schema.Tuple {
	tup := schema.NewTuple(s)
	tup.Num[0] = rng.Uniform(r, -1, 1)
	tup.Num[1] = rng.Uniform(r, -1, 1)
	tup.Cat[2] = r.IntN(2)
	return tup
}

// sampleReports randomizes until every task kind has appeared at least
// once, returning the collected reports.
func samplePipelineReports(t *testing.T, p *pipeline.Pipeline, seed uint64) []pipeline.Report {
	t.Helper()
	s := p.Schema()
	seen := map[pipeline.TaskKind]bool{}
	var reps []pipeline.Report
	r := rng.New(seed)
	for i := 0; i < 10_000 && (len(seen) < 3 || len(reps) < 20); i++ {
		rep, err := p.Randomize(randomTuple(s, r), r)
		if err != nil {
			t.Fatal(err)
		}
		seen[rep.Task] = true
		reps = append(reps, rep)
	}
	for _, k := range []pipeline.TaskKind{pipeline.TaskMean, pipeline.TaskFreq, pipeline.TaskRange} {
		if !seen[k] {
			t.Fatalf("no %v report sampled", k)
		}
	}
	return reps
}

func pipelineReportsEqual(a, b pipeline.Report) bool {
	if a.Task != b.Task || a.Round != b.Round || len(a.Entries) != len(b.Entries) {
		return false
	}
	for i := range a.Entries {
		x, y := a.Entries[i], b.Entries[i]
		if x.Attr != y.Attr || x.Kind != y.Kind || x.Value != y.Value ||
			x.Resp.Value != y.Resp.Value || !bytes.Equal(bitsBytes(x.Resp.Bits), bitsBytes(y.Resp.Bits)) {
			return false
		}
	}
	ra, rb := a.Range, b.Range
	return ra.Kind == rb.Kind && ra.Attr == rb.Attr && ra.Depth == rb.Depth && ra.Pair == rb.Pair &&
		ra.Resp.Value == rb.Resp.Value && bytes.Equal(bitsBytes(ra.Resp.Bits), bitsBytes(rb.Resp.Bits))
}

func bitsBytes(bits []uint64) []byte {
	out := make([]byte, 0, 8*len(bits))
	for _, w := range bits {
		for s := 0; s < 64; s += 8 {
			out = append(out, byte(w>>s))
		}
	}
	return out
}

func TestEnvelopeRoundTrip(t *testing.T) {
	p := newTestPipeline(t)
	for _, rep := range samplePipelineReports(t, p, 1) {
		frame, err := EncodeEnvelope(rep)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeEnvelope(frame)
		if err != nil {
			t.Fatalf("%v report: %v", rep.Task, err)
		}
		if !pipelineReportsEqual(rep, got) {
			t.Fatalf("%v report changed across the wire", rep.Task)
		}
	}

	// Joint reports (legacy payloads re-wrapped) also round-trip.
	joint := pipeline.Report{Task: pipeline.TaskJoint, Entries: samplePipelineReports(t, p, 2)[0].Entries}
	if joint.Entries == nil {
		t.Skip("first sampled report was a range report")
	}
	frame, err := EncodeEnvelope(joint)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEnvelope(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Task != pipeline.TaskJoint {
		t.Fatalf("joint report decoded as %v", got.Task)
	}
}

func TestEnvelopeLegacyDecode(t *testing.T) {
	// A legacy v1 report frame decodes as a joint report.
	s := pipelineSchema(t)
	col, err := core.NewCollector(s, 2, pmFactory, oueFactory)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	rep, err := col.Perturb(randomTuple(s, r), r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEnvelope(EncodeReport(rep))
	if err != nil {
		t.Fatal(err)
	}
	if got.Task != pipeline.TaskJoint || len(got.Entries) != len(rep.Entries) {
		t.Fatalf("legacy report frame decoded as %v with %d entries", got.Task, len(got.Entries))
	}

	// A legacy v1 range frame decodes as a range report.
	rcol, err := rangequery.NewCollector(s, 1, rangequery.Config{Buckets: 32, GridCells: 2})
	if err != nil {
		t.Fatal(err)
	}
	rrep, err := rcol.Perturb(randomTuple(s, r), r)
	if err != nil {
		t.Fatal(err)
	}
	rgot, err := DecodeEnvelope(EncodeRangeReport(rrep))
	if err != nil {
		t.Fatal(err)
	}
	if rgot.Task != pipeline.TaskRange || rgot.Range.Kind != rrep.Kind {
		t.Fatalf("legacy range frame decoded as %v", rgot.Task)
	}
}

func TestEnvelopeRejectsMalformed(t *testing.T) {
	p := newTestPipeline(t)
	rep := samplePipelineReports(t, p, 4)[0]
	frame, err := EncodeEnvelope(rep)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := DecodeEnvelope(frame[:7]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated: got %v", err)
	}
	bad := append([]byte("XXXX"), frame[4:]...)
	if _, err := DecodeEnvelope(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: got %v", err)
	}
	ver := bytes.Clone(frame)
	ver[4] = 99
	if _, err := DecodeEnvelope(ver); !errors.Is(err, ErrBadVersion) {
		t.Errorf("unknown version: got %v", err)
	}
	flip := bytes.Clone(frame)
	flip[10] ^= 0xff
	if _, err := DecodeEnvelope(flip); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("corrupt payload: got %v", err)
	}
	// Unknown task tag: rebuild a valid frame whose payload starts with 99.
	tag := encodeFrame(wireMagic, wireEnvelopeVersion, []byte{99, 0})
	if _, err := DecodeEnvelope(tag); err == nil {
		t.Error("unknown task tag accepted")
	}
	if _, err := EncodeEnvelope(pipeline.Report{Task: pipeline.TaskKind(42)}); err == nil {
		t.Error("unknown task kind encoded")
	}
}

func TestSplitFrames(t *testing.T) {
	p := newTestPipeline(t)
	reps := samplePipelineReports(t, p, 5)[:3]
	var body []byte
	var frames [][]byte
	for _, rep := range reps {
		f, err := EncodeEnvelope(rep)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
		body = append(body, f...)
	}
	got, err := SplitFrames(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(frames) {
		t.Fatalf("split %d frames, want %d", len(got), len(frames))
	}
	for i := range got {
		if !bytes.Equal(got[i], frames[i]) {
			t.Fatalf("frame %d differs after split", i)
		}
	}
	if _, err := SplitFrames(body[:len(body)-3]); !errors.Is(err, ErrTruncated) {
		t.Errorf("partial trailing frame: got %v", err)
	}
	if got, err := SplitFrames(nil); err != nil || len(got) != 0 {
		t.Errorf("empty buffer: got %d frames, %v", len(got), err)
	}
}

func TestPipelineServerEndToEnd(t *testing.T) {
	p := newTestPipeline(t)
	srv := httptest.NewServer(NewPipelineServer(p, nil))
	defer srv.Close()

	client := NewPipelineClient(srv.URL, p, WithHTTPClient(srv.Client()))
	ctx := context.Background()
	s := p.Schema()
	r := rng.New(9)

	// Batched and single submissions both land.
	batch := make([]schema.Tuple, 50)
	for i := range batch {
		batch[i] = randomTuple(s, r)
	}
	if err := client.SendBatch(ctx, batch, r); err != nil {
		t.Fatal(err)
	}
	if err := client.Send(ctx, randomTuple(s, r), r); err != nil {
		t.Fatal(err)
	}
	if got := p.N(); got != 51 {
		t.Fatalf("server ingested %d reports, want 51", got)
	}

	// Legacy v1 clients keep working against the unified route.
	col, err := core.NewCollector(s, 2, pmFactory, oueFactory)
	if err != nil {
		t.Fatal(err)
	}
	legacy := NewClient(srv.URL, col, srv.Client())
	if err := legacy.SendTuple(randomTuple(s, r), r); err != nil {
		t.Fatal(err)
	}
	if got := p.N(); got != 52 {
		t.Fatalf("after legacy submit N = %d, want 52", got)
	}

	// The query route answers every kind.
	for _, path := range []string{
		"/v1/query?kind=stats",
		"/v1/query?kind=mean",
		"/v1/query?kind=mean&attr=age",
		"/v1/query?kind=freq&attr=gender",
		"/v1/query?kind=range&attr=age&lo=-0.5&hi=0.5",
		"/v1/query?kind=range&attr=age&lo=-0.5&hi=0.5&attr2=income&lo2=0&hi2=1",
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s -> %s", path, resp.Status)
		}
		resp.Body.Close()
	}
	for _, path := range []string{
		"/v1/query?kind=nope",
		"/v1/query?kind=mean&attr=gender",
		"/v1/query?kind=freq",
		"/v1/query?kind=range&attr=missing&lo=0&hi=1",
		"/v1/query?kind=range&attr=age&lo=zero&hi=1",
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			t.Errorf("%s unexpectedly succeeded", path)
		}
		resp.Body.Close()
	}

	// A malformed frame rejects the whole batch atomically.
	before := p.N()
	good, err := EncodeEnvelope(mustRandomize(t, p, r))
	if err != nil {
		t.Fatal(err)
	}
	bad := append(bytes.Clone(good), good...)
	bad[len(bad)-1] ^= 0xff
	resp, err := srv.Client().Post(srv.URL+"/v1/report", "application/octet-stream", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("corrupt batch -> %s, want 400", resp.Status)
	}
	if p.N() != before {
		t.Error("corrupt batch partially ingested")
	}

	// Semantically invalid frames (well-formed encoding, wrong for this
	// pipeline) also reject the batch before anything is folded in: a
	// range report against a server whose pipeline has no range task.
	noRange, err := pipeline.New(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(NewPipelineServer(noRange, nil))
	defer srv2.Close()
	var rangeRep pipeline.Report
	for _, rep := range samplePipelineReports(t, p, 11) {
		if rep.Task == pipeline.TaskRange {
			rangeRep = rep
			break
		}
	}
	meanFrame, err := EncodeEnvelope(mustRandomize(t, noRange, r))
	if err != nil {
		t.Fatal(err)
	}
	rangeFrame, err := EncodeEnvelope(rangeRep)
	if err != nil {
		t.Fatal(err)
	}
	mixed := append(bytes.Clone(meanFrame), rangeFrame...)
	resp, err = srv2.Client().Post(srv2.URL+"/v1/report", "application/octet-stream", bytes.NewReader(mixed))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("semantically invalid batch -> %s, want 400", resp.Status)
	}
	if noRange.N() != 0 {
		t.Errorf("semantically invalid batch partially ingested: N = %d", noRange.N())
	}
}

func mustRandomize(t *testing.T, p *pipeline.Pipeline, r *rng.Rand) pipeline.Report {
	t.Helper()
	rep, err := p.Randomize(randomTuple(p.Schema(), r), r)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestReplayPipeline(t *testing.T) {
	p := newTestPipeline(t)
	r := rng.New(21)
	var frames [][]byte
	for i := 0; i < 200; i++ {
		rep := mustRandomize(t, p, r)
		if err := p.Add(rep); err != nil {
			t.Fatal(err)
		}
		frame, err := EncodeEnvelope(rep)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, frame)
	}

	fresh := newTestPipeline(t)
	n, err := ReplayPipeline(fresh, func(fn func([]byte) error) error {
		for _, f := range frames {
			if err := fn(f); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(frames) {
		t.Fatalf("replayed %d frames, want %d", n, len(frames))
	}
	a, b := p.Snapshot(), fresh.Snapshot()
	ma, _ := a.Mean("age")
	mb, _ := b.Mean("age")
	// Batch replay partitions reports across shards differently from the
	// original per-report ingest, so the float sums may differ by a few
	// ulps from the different addition order.
	if math.Abs(ma-mb) > 1e-12 {
		t.Errorf("replayed mean %v != original %v", mb, ma)
	}
}
