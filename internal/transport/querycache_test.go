package transport

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"ldp/internal/pipeline"
	"ldp/internal/rng"
	"ldp/internal/telemetry"
)

// ingestPipelineReports folds n randomized reports straight into the
// pipeline (bypassing HTTP) to move the ingest watermark.
func ingestPipelineReports(t testing.TB, p *pipeline.Pipeline, seed uint64, n int) {
	t.Helper()
	b := pipeline.NewReportBatch()
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		rep, err := p.Randomize(randomTuple(p.Schema(), r), r)
		if err != nil {
			t.Fatal(err)
		}
		b.Append(rep)
	}
	if err := p.AddBatch(b); err != nil {
		t.Fatal(err)
	}
}

func getWithINM(t *testing.T, c *http.Client, url, inm string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestQueryETag exercises the epoch-keyed response cache on /v1/query:
// stable ETags and byte-identical bodies while the view is unchanged, 304
// on If-None-Match, and a new ETag (with fresh bytes) once ingest moves
// the watermark.
func TestQueryETag(t *testing.T) {
	p := newTestPipeline(t)
	ingestPipelineReports(t, p, 3, 200)
	srv := httptest.NewServer(NewPipelineServer(p, nil))
	defer srv.Close()
	c := srv.Client()

	paths := []string{
		"/v1/query?kind=mean&attr=age",
		"/v1/query?kind=mean",
		"/v1/query?kind=freq&attr=gender",
		"/v1/query?kind=range&attr=age&lo=-0.5&hi=0.5",
	}
	etags := make(map[string]string)
	bodies := make(map[string][]byte)
	for _, path := range paths {
		resp, body := getWithINM(t, c, srv.URL+path, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s -> %s", path, resp.Status)
		}
		etag := resp.Header.Get("Etag")
		if etag == "" {
			t.Fatalf("%s: no ETag on cacheable query", path)
		}
		if !json.Valid(body) {
			t.Fatalf("%s: invalid JSON %q", path, body)
		}
		etags[path], bodies[path] = etag, body
	}
	// Every cacheable kind shares the view epoch's ETag.
	for _, path := range paths[1:] {
		if etags[path] != etags[paths[0]] {
			t.Fatalf("ETags differ across kinds within one epoch: %q vs %q", etags[path], etags[paths[0]])
		}
	}

	// Unchanged view: identical bytes, and If-None-Match short-circuits.
	for _, path := range paths {
		resp, body := getWithINM(t, c, srv.URL+path, "")
		if resp.Header.Get("Etag") != etags[path] {
			t.Fatalf("%s: ETag changed without ingest", path)
		}
		if string(body) != string(bodies[path]) {
			t.Fatalf("%s: body changed without ingest", path)
		}
		resp, body = getWithINM(t, c, srv.URL+path, etags[path])
		if resp.StatusCode != http.StatusNotModified {
			t.Fatalf("%s with If-None-Match -> %s, want 304", path, resp.Status)
		}
		if len(body) != 0 {
			t.Fatalf("%s: 304 carried a body (%d bytes)", path, len(body))
		}
	}

	// stats rides its own watermark-keyed cache, not the view-epoch one:
	// it is tagged with an "s..." ETag (distinct from the query epoch's
	// "q..." tag) and honours If-None-Match while ingest is quiet.
	resp, statsBody := getWithINM(t, c, srv.URL+"/v1/query?kind=stats", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats -> %s", resp.Status)
	}
	statsTag := resp.Header.Get("Etag")
	if !strings.HasPrefix(statsTag, "\"s") {
		t.Fatalf("stats ETag = %q, want an \"s...\" tag", statsTag)
	}
	resp, body2 := getWithINM(t, c, srv.URL+"/v1/stats", "")
	if resp.Header.Get("Etag") != statsTag || string(body2) != string(statsBody) {
		t.Fatal("/v1/stats and ?kind=stats disagree")
	}
	resp, _ = getWithINM(t, c, srv.URL+"/v1/stats", statsTag)
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("unchanged stats with If-None-Match -> %s, want 304", resp.Status)
	}

	// Ingest advances the watermark: new epoch, new ETag, 200 again.
	ingestPipelineReports(t, p, 5, 50)
	for _, path := range paths {
		resp, body := getWithINM(t, c, srv.URL+path, etags[path])
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s after ingest -> %s, want 200", path, resp.Status)
		}
		etag := resp.Header.Get("Etag")
		if etag == "" || etag == etags[path] {
			t.Fatalf("%s after ingest: ETag %q did not advance from %q", path, etag, etags[path])
		}
		if !json.Valid(body) {
			t.Fatalf("%s after ingest: invalid JSON", path)
		}
	}

	// Errors carry no ETag and are not cached.
	resp, _ = getWithINM(t, c, srv.URL+"/v1/query?kind=freq", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query -> %s, want 400", resp.Status)
	}
	if etag := resp.Header.Get("Etag"); etag != "" {
		t.Fatalf("error response carries ETag %q", etag)
	}
}

// TestQueryCacheKeyBound checks the memory bound on the response cache:
// a query padded past maxCachedQueryKey is answered (unknown parameters
// are ignored) but never retained, so repeated padded sweeps cannot pin
// server memory.
func TestQueryCacheKeyBound(t *testing.T) {
	p := newTestPipeline(t)
	ingestPipelineReports(t, p, 3, 50)
	s := NewPipelineServer(p, nil)
	srv := httptest.NewServer(s)
	defer srv.Close()

	pad := strings.Repeat("x", maxCachedQueryKey)
	resp, body := getWithINM(t, srv.Client(), srv.URL+"/v1/query?kind=mean&attr=age&junk="+pad, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("padded query -> %s", resp.Status)
	}
	if !json.Valid(body) {
		t.Fatalf("padded query body invalid: %q", body[:40])
	}
	if st := s.qcache.Load(); st != nil {
		for k := range st.body {
			if len(k) > maxCachedQueryKey {
				t.Fatalf("oversized key retained (%d bytes)", len(k))
			}
		}
		if st.bytes > maxCachedQueryBytes {
			t.Fatalf("cache bytes %d exceed bound", st.bytes)
		}
	}
	// A normal-sized query on the same epoch still caches.
	getWithINM(t, srv.Client(), srv.URL+"/v1/query?kind=mean&attr=age", "")
	st := s.qcache.Load()
	if st == nil || len(st.body) != 1 {
		t.Fatalf("expected exactly the unpadded query cached, got %+v", st)
	}
}

// TestQueryCacheFIFOEviction checks the per-epoch retention bound: once
// an epoch accumulates maxCachedQueries distinct responses, each further
// fitting entry is still inserted and the oldest entries are evicted
// (insertion-order FIFO), with the byte bound enforced the same way. The
// recent working set survives a sweep of distinct query strings, and the
// eviction counter accounts for every dropped entry.
func TestQueryCacheFIFOEviction(t *testing.T) {
	p := newTestPipeline(t)
	reg := telemetry.NewRegistry()
	s := NewPipelineServer(p, nil, WithServerTelemetry(reg))

	const epoch = 7
	body := []byte(`{"v":1}` + "\n")
	key := func(i int) string { return fmt.Sprintf("kind=freq&attr=gender&i=%d", i) }

	const extra = 5
	for i := 0; i < maxCachedQueries+extra; i++ {
		s.storeQuery(epoch, key(i), body)
	}
	st := s.qcache.Load()
	if st == nil || st.epoch != epoch {
		t.Fatalf("cache state = %+v, want epoch %d", st, epoch)
	}
	if len(st.body) != maxCachedQueries || len(st.order) != maxCachedQueries {
		t.Fatalf("retained %d entries (order %d), want %d", len(st.body), len(st.order), maxCachedQueries)
	}
	for i := 0; i < extra; i++ {
		if _, ok := st.body[key(i)]; ok {
			t.Fatalf("oldest entry %d survived past the count bound", i)
		}
	}
	for _, i := range []int{extra, maxCachedQueries/2 + extra, maxCachedQueries + extra - 1} {
		if got, ok := st.body[key(i)]; !ok || string(got) != string(body) {
			t.Fatalf("recent entry %d missing or corrupted (ok=%v)", i, ok)
		}
	}
	if st.order[0] != key(extra) || st.order[len(st.order)-1] != key(maxCachedQueries+extra-1) {
		t.Fatalf("order bounds = %q..%q, want %q..%q",
			st.order[0], st.order[len(st.order)-1], key(extra), key(maxCachedQueries+extra-1))
	}
	wantBytes := 0
	for k, b := range st.body {
		wantBytes += len(k) + len(b)
	}
	if st.bytes != wantBytes {
		t.Fatalf("bytes accounting drifted: %d, want %d", st.bytes, wantBytes)
	}
	if got := s.met.queryEvict.Value(); got != extra {
		t.Fatalf("eviction counter = %d, want %d", got, extra)
	}

	// Re-storing an existing key is a no-op: no duplicate order entry, no
	// byte growth, no eviction.
	s.storeQuery(epoch, key(extra), body)
	if st2 := s.qcache.Load(); st2 != st {
		t.Fatal("re-storing a cached key replaced the state")
	}

	// The byte bound evicts the same way: bodies of ~1 MiB overflow the
	// 8 MiB budget after eight entries, so the ninth displaces the oldest.
	s.storeQuery(epoch+1, "reset", body) // fresh epoch
	big := make([]byte, 1<<20)
	before := s.met.queryEvict.Value()
	const n = 12
	for i := 0; i < n; i++ {
		s.storeQuery(epoch+1, key(i), big)
	}
	st = s.qcache.Load()
	if st.bytes > maxCachedQueryBytes {
		t.Fatalf("cache bytes %d exceed bound %d", st.bytes, maxCachedQueryBytes)
	}
	if _, ok := st.body[key(0)]; ok {
		t.Fatal("oldest big entry survived past the byte bound")
	}
	if _, ok := st.body[key(n-1)]; !ok {
		t.Fatal("newest big entry was not retained")
	}
	if got := s.met.queryEvict.Value(); got <= before {
		t.Fatalf("byte-bound evictions not counted (counter still %d)", got)
	}
}

// TestModelETag exercises the /v1/model cache: 304 while the trainer
// state is unchanged, and a fresh ETag as soon as a gradient report is
// accepted (or dropped stale), so SGD participants polling the model
// don't re-download unchanged snapshots.
func TestModelETag(t *testing.T) {
	cfg := pipeline.GradientConfig{Dim: 4, Rounds: 8, GroupSize: 3, Eta: 1, Lambda: 0}
	p, err := pipeline.New(gradSchema(t), 2, pipeline.WithGradient(cfg))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewPipelineServer(p, nil))
	defer srv.Close()
	c := srv.Client()

	resp, body := getWithINM(t, c, srv.URL+"/v1/model", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("model -> %s", resp.Status)
	}
	etag := resp.Header.Get("Etag")
	if etag == "" {
		t.Fatal("no ETag on /v1/model")
	}
	var st ModelState
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	// Unchanged trainer: byte-identical 200, then 304 with the ETag.
	resp, body2 := getWithINM(t, c, srv.URL+"/v1/model", "")
	if resp.Header.Get("Etag") != etag || string(body2) != string(body) {
		t.Fatal("model response changed without trainer activity")
	}
	resp, _ = getWithINM(t, c, srv.URL+"/v1/model", etag)
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("unchanged model with If-None-Match -> %s, want 304", resp.Status)
	}

	// One accepted gradient changes the state: the ETag must advance.
	r := rng.New(1)
	rep, err := p.GradientTask().RandomizeGradient(0, []float64{0.5, -0.5, 0.25, 0}, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Add(rep); err != nil {
		t.Fatal(err)
	}
	resp, body3 := getWithINM(t, c, srv.URL+"/v1/model", etag)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("changed model with stale If-None-Match -> %s, want 200", resp.Status)
	}
	if got := resp.Header.Get("Etag"); got == etag {
		t.Fatal("ETag did not advance after an accepted gradient")
	}
	var st3 ModelState
	if err := json.Unmarshal(body3, &st3); err != nil {
		t.Fatal(err)
	}
	if st3.Accepted != st.Accepted+1 {
		t.Fatalf("accepted = %d, want %d", st3.Accepted, st.Accepted+1)
	}
}

// TestQueryETagConcurrentIngest hammers /v1/query (with If-None-Match
// replays) from several readers while writers ingest at full batch rate
// through POST /v1/report. Run under -race (the CI race job does) to
// prove the lock-free cache swap tears nothing; under the plain runner it
// checks that every response is either a valid JSON 200 or a 304, and
// that the epoch encoded in the ETag never goes backwards per reader.
func TestQueryETagConcurrentIngest(t *testing.T) {
	p := newTestPipeline(t)
	ingestPipelineReports(t, p, 2, 100)
	srv := httptest.NewServer(NewPipelineServer(p, nil))
	defer srv.Close()

	const (
		writers   = 2
		uploads   = 30
		perUpload = 20
		readers   = 4
		perReader = 60
	)

	// Pre-encode the upload bodies.
	bodies := make([][]byte, writers*uploads)
	r := rng.New(77)
	for i := range bodies {
		var body []byte
		for j := 0; j < perUpload; j++ {
			rep, err := p.Randomize(randomTuple(p.Schema(), r), r)
			if err != nil {
				t.Fatal(err)
			}
			body, err = AppendEnvelope(body, rep)
			if err != nil {
				t.Fatal(err)
			}
		}
		bodies[i] = body
	}

	var wg sync.WaitGroup
	var fail atomic.Bool
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < uploads && !fail.Load(); i++ {
				resp, err := srv.Client().Post(srv.URL+"/v1/report", "application/octet-stream",
					strings.NewReader(string(bodies[w*uploads+i])))
				if err != nil {
					t.Error(err)
					fail.Store(true)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusNoContent {
					t.Errorf("report upload -> %s", resp.Status)
					fail.Store(true)
					return
				}
			}
		}(w)
	}
	paths := []string{
		"/v1/query?kind=mean&attr=age",
		"/v1/query?kind=freq&attr=gender",
		"/v1/query?kind=range&attr=age&lo=-0.5&hi=0.5",
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lastEtag := ""
			lastEpoch := uint64(0)
			for i := 0; i < perReader && !fail.Load(); i++ {
				path := paths[i%len(paths)]
				req, err := http.NewRequest(http.MethodGet, srv.URL+path, nil)
				if err != nil {
					t.Error(err)
					fail.Store(true)
					return
				}
				if lastEtag != "" {
					req.Header.Set("If-None-Match", lastEtag)
				}
				resp, err := srv.Client().Do(req)
				if err != nil {
					t.Error(err)
					fail.Store(true)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					fail.Store(true)
					return
				}
				etag := resp.Header.Get("Etag")
				switch resp.StatusCode {
				case http.StatusOK:
					if !json.Valid(body) {
						t.Errorf("%s: invalid JSON %q", path, body)
						fail.Store(true)
						return
					}
				case http.StatusNotModified:
					if len(body) != 0 {
						t.Errorf("%s: 304 carried a body", path)
						fail.Store(true)
						return
					}
				default:
					t.Errorf("%s -> %s", path, resp.Status)
					fail.Store(true)
					return
				}
				if etag != "" {
					var epoch uint64
					if n, err := parseEpochETag(etag); err == nil {
						epoch = n
					} else {
						t.Errorf("unparsable ETag %q: %v", etag, err)
						fail.Store(true)
						return
					}
					if epoch < lastEpoch {
						t.Errorf("reader %d: epoch went backwards (%d after %d)", g, epoch, lastEpoch)
						fail.Store(true)
						return
					}
					lastEpoch, lastEtag = epoch, etag
				}
			}
		}(g)
	}
	wg.Wait()
	if fail.Load() {
		t.FailNow()
	}
	if got, want := p.N(), int64(100+writers*uploads*perUpload); got != want {
		t.Fatalf("final N = %d, want %d", got, want)
	}
}

// parseEpochETag extracts the epoch from a `"q<epoch>"` query ETag.
func parseEpochETag(etag string) (uint64, error) {
	s := strings.TrimSuffix(strings.TrimPrefix(etag, "\"q"), "\"")
	var n uint64
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, io.ErrUnexpectedEOF
		}
		n = n*10 + uint64(s[i]-'0')
	}
	if len(s) == 0 {
		return 0, io.ErrUnexpectedEOF
	}
	return n, nil
}

// discardResponseWriter is a reusable allocation-free ResponseWriter for
// the handler benchmarks: the header map persists across requests, so the
// steady state assigns existing keys without allocating.
type discardResponseWriter struct {
	h    http.Header
	code int
	n    int
}

func (w *discardResponseWriter) Header() http.Header         { return w.h }
func (w *discardResponseWriter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }
func (w *discardResponseWriter) WriteHeader(code int)        { w.code = code }

// BenchmarkHandleQueryCached measures the cached-hit /v1/query handler
// path: pre-encoded JSON served as one Write, no re-marshal, no snapshot.
// The CI allocation guard requires 0 allocs/op.
func BenchmarkHandleQueryCached(b *testing.B) {
	p := newTestPipeline(b)
	ingestPipelineReports(b, p, 3, 1000)
	s := NewPipelineServer(p, nil)

	req := httptest.NewRequest(http.MethodGet, "/v1/query?kind=freq&attr=gender", nil)
	w := &discardResponseWriter{h: make(http.Header)}
	s.handleQuery(w, req) // warm the view and the encoded-response cache
	if w.n == 0 {
		b.Fatal("warmup wrote no body")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.handleQuery(w, req)
	}
}

// BenchmarkHandleQueryNotModified measures the 304 path: an If-None-Match
// replay of the current epoch's ETag costs one header compare.
func BenchmarkHandleQueryNotModified(b *testing.B) {
	p := newTestPipeline(b)
	ingestPipelineReports(b, p, 3, 1000)
	s := NewPipelineServer(p, nil)

	req := httptest.NewRequest(http.MethodGet, "/v1/query?kind=range&attr=age&lo=-0.5&hi=0.5", nil)
	w := &discardResponseWriter{h: make(http.Header)}
	s.handleQuery(w, req)
	etag := w.h.Get("Etag")
	if etag == "" {
		b.Fatal("warmup produced no ETag")
	}
	req.Header.Set("If-None-Match", etag)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.handleQuery(w, req)
	}
	if w.code != http.StatusNotModified {
		b.Fatalf("got status %d, want 304", w.code)
	}
}
