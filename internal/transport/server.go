package transport

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"ldp/internal/core"
)

// Sink receives the raw frame of every accepted report; reportlog.Writer
// satisfies it (wrapped with a mutex by the server). A nil sink disables
// persistence.
type Sink interface {
	Append(payload []byte) error
}

// Server is the aggregator's HTTP front end.
//
//	POST /v1/report     binary report frame -> 204
//	GET  /v1/stats      {"n": ..., "dim": ...}
//	GET  /v1/means      {"attr": mean, ...} for numeric attributes
//	GET  /v1/freqs?attr=name   [f0, f1, ...] for a categorical attribute
type Server struct {
	agg *core.Aggregator
	mux *http.ServeMux

	mu   sync.Mutex
	sink Sink
}

// NewServer wraps an aggregator (and optional persistence sink) in an HTTP
// handler.
func NewServer(agg *core.Aggregator, sink Sink) *Server {
	s := &Server{agg: agg, sink: sink, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/report", s.handleReport)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/means", s.handleMeans)
	s.mux.HandleFunc("GET /v1/freqs", s.handleFreqs)
	s.mux.HandleFunc("GET /v1/snapshot", s.handleSnapshot)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Aggregator exposes the underlying aggregator (for replay after restart).
func (s *Server) Aggregator() *core.Aggregator { return s.agg }

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	frame, err := io.ReadAll(io.LimitReader(r.Body, MaxFrameSize+1))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(frame) > MaxFrameSize {
		http.Error(w, "frame too large", http.StatusRequestEntityTooLarge)
		return
	}
	rep, err := DecodeReport(frame)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.agg.Add(rep); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if s.sink != nil {
		s.mu.Lock()
		err := s.sink.Append(frame)
		s.mu.Unlock()
		if err != nil {
			http.Error(w, "persist: "+err.Error(), http.StatusInternalServerError)
			return
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{
		"n":   s.agg.N(),
		"dim": s.agg.Schema().Dim(),
	})
}

func (s *Server) handleMeans(w http.ResponseWriter, _ *http.Request) {
	sch := s.agg.Schema()
	means := s.agg.MeanEstimates()
	out := make(map[string]float64, len(means))
	for i, idx := range sch.NumericIdx() {
		out[sch.Attrs[idx].Name] = means[i]
	}
	writeJSON(w, out)
}

func (s *Server) handleFreqs(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("attr")
	sch := s.agg.Schema()
	attr := -1
	for i, a := range sch.Attrs {
		if a.Name == name {
			attr = i
			break
		}
	}
	if attr < 0 {
		http.Error(w, fmt.Sprintf("unknown attribute %q", name), http.StatusNotFound)
		return
	}
	freqs, err := s.agg.FreqEstimates(attr)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, freqs)
}

// handleSnapshot serves the aggregator's serialized sufficient statistics
// (see core.Aggregator.Snapshot); a fresh aggregator restored from it
// answers queries identically without replaying the report log.
func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/octet-stream")
	if _, err := w.Write(s.agg.Snapshot()); err != nil {
		_ = err // connection gone; nothing to do
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already sent; nothing more to do.
		_ = err
	}
}

// Replay rebuilds aggregator state from persisted frames (used at startup
// with reportlog.Replay).
func Replay(agg *core.Aggregator, frames func(fn func(payload []byte) error) error) (int, error) {
	n := 0
	err := frames(func(payload []byte) error {
		rep, err := DecodeReport(payload)
		if err != nil {
			return fmt.Errorf("transport: replay frame %d: %w", n, err)
		}
		if err := agg.Add(rep); err != nil {
			return fmt.Errorf("transport: replay frame %d: %w", n, err)
		}
		n++
		return nil
	})
	return n, err
}
