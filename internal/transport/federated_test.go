package transport

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"ldp/internal/analysis"
	"ldp/internal/dataset"
	"ldp/internal/erm"
	"ldp/internal/pipeline"
	"ldp/internal/rng"
	"ldp/internal/schema"
)

// synthLogistic generates a linearly separable logistic population in
// [-1,1]^d: y = sign(x . betaStar), with a margin filter so the Bayes
// rate is ~0 and accuracy differences are attributable to the training
// protocol rather than label noise.
func synthLogistic(n, d int, seed uint64) []dataset.ERMExample {
	betaStar := make([]float64, d)
	for j := range betaStar {
		betaStar[j] = 1 - 2*float64(j%2) // +1, -1, +1, ...
	}
	out := make([]dataset.ERMExample, 0, n)
	for i := 0; len(out) < n; i++ {
		r := rng.NewStream(seed, uint64(i))
		x := make([]float64, d)
		for j := range x {
			x[j] = rng.Uniform(r, -1, 1)
		}
		m := erm.Dot(x, betaStar)
		if m > -0.2 && m < 0.2 {
			continue // margin filter
		}
		y := 1.0
		if m < 0 {
			y = -1
		}
		out = append(out, dataset.ERMExample{X: x, YCls: y})
	}
	return out
}

func gradSchema(t testing.TB) *schema.Schema {
	t.Helper()
	s, err := schema.New(schema.Attribute{Name: "x", Kind: schema.Numeric})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// trainFederatedHTTP runs a full federated training over httptest: the
// coordinator fetches the model once per round and submits the group's
// randomized gradients as one batched upload, while concurrent pollers
// hammer GET /v1/model to interleave lock-free model reads with ingest.
func trainFederatedHTTP(t *testing.T, eps float64, cfg pipeline.GradientConfig, train []dataset.ERMExample, seed uint64) ModelState {
	t.Helper()
	s := gradSchema(t)
	serverPipe, err := pipeline.New(s, eps, pipeline.WithGradient(cfg), pipeline.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewPipelineServer(serverPipe, nil))
	defer srv.Close()
	clientPipe, err := pipeline.New(s, eps, pipeline.WithGradient(cfg))
	if err != nil {
		t.Fatal(err)
	}
	sgd, err := NewSGDClient(srv.URL, clientPipe, erm.LogisticRegression, cfg.Lambda)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	stop := make(chan struct{})
	var pollers sync.WaitGroup
	for w := 0; w < 2; w++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := sgd.FetchModel(ctx); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	pos := 0
	for {
		state, err := sgd.FetchModel(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if state.Done || pos+cfg.GroupSize > len(train) {
			break
		}
		r := rng.NewStream(seed^0xFEDE4A7E, uint64(state.Round))
		if err := sgd.SubmitExamples(ctx, state, train[pos:pos+cfg.GroupSize], r); err != nil {
			t.Fatal(err)
		}
		pos += cfg.GroupSize
	}
	close(stop)
	pollers.Wait()

	state, err := sgd.FetchModel(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return state
}

// TestFederatedAccuracyAcceptance is the statistical acceptance test for
// the federated path: for eps in {1, 4}, logistic regression trained end
// to end over localhost HTTP on a synthetic separable dataset must come
// within a fixed margin of the non-private SGD baseline. Seeds are fixed,
// so the test is deterministic; the margins hold with ample slack at the
// chosen scale (see the recorded rates in the failure messages if the
// protocol regresses).
func TestFederatedAccuracyAcceptance(t *testing.T) {
	const (
		d      = 5
		nTrain = 16_000
		nTest  = 2_000
		seed   = 0xACCE97
		lambda = 1e-4
		eta    = 1.0
	)
	all := synthLogistic(nTrain+nTest, d, seed)
	train, test := all[:nTrain], all[nTrain:]

	for _, tc := range []struct {
		eps    float64
		margin float64
	}{
		{eps: 1, margin: 0.15},
		{eps: 4, margin: 0.08},
	} {
		t.Run(fmt.Sprintf("eps=%g", tc.eps), func(t *testing.T) {
			group := erm.GroupSizeForVariance(nTrain, analysis.MaxVarHMMulti(tc.eps, d))
			rounds := nTrain / group
			cfg := pipeline.GradientConfig{
				Dim: d, Rounds: rounds, GroupSize: group, Eta: eta, Lambda: lambda,
			}
			state := trainFederatedHTTP(t, tc.eps, cfg, train, seed)
			if !state.Done || state.Round != rounds {
				t.Fatalf("training ended at round %d (done=%v), want %d", state.Round, state.Done, rounds)
			}
			if state.Accepted != int64(rounds*group) {
				t.Fatalf("accepted = %d, want exactly %d", state.Accepted, rounds*group)
			}
			fed := erm.MisclassificationRate(state.Beta, test)

			base := erm.Config{Task: erm.LogisticRegression, Lambda: lambda, Eta: eta, GroupSize: group}
			beta, err := erm.Train(base, train, nil, seed)
			if err != nil {
				t.Fatal(err)
			}
			nonPriv := erm.MisclassificationRate(beta, test)

			t.Logf("eps=%g: federated %.4f vs non-private %.4f (group %d, rounds %d)", tc.eps, fed, nonPriv, group, rounds)
			if fed > nonPriv+tc.margin {
				t.Errorf("federated misclassification %.4f exceeds non-private %.4f by more than %.2f", fed, nonPriv, tc.margin)
			}
		})
	}
}
