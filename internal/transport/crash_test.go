package transport

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ldp/internal/cluster"
	"ldp/internal/pipeline"
	"ldp/internal/reportlog"
)

// postReports ships reports to a server's /v1/report exactly like
// PipelineClient does: one body of concatenated envelope frames.
func postReports(t *testing.T, url string, reps []pipeline.Report) {
	t.Helper()
	var body []byte
	var err error
	for _, rep := range reps {
		if body, err = AppendEnvelope(body, rep); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url+"/v1/report", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("POST /v1/report: status %d", resp.StatusCode)
	}
}

// TestEdgeCrashRecoveryRepush kills an edge mid-ingest and proves the
// restart path end to end: everything the WAL made durable survives,
// replays into a fresh pipeline, and the new forwarder's resync+delta
// push lands the root on exactly the durable totals — the 200 reports
// pushed before the crash are not double-counted, and the 100 durable
// but unpushed reports are not lost. The buffered tail that never
// reached disk is gone, which is the documented group-commit window.
func TestEdgeCrashRecoveryRepush(t *testing.T) {
	root := newTestPipeline(t)
	rootSrv := httptest.NewServer(NewPipelineServer(root, nil))
	defer rootSrv.Close()

	walDir := t.TempDir()
	// Group commit with thresholds nothing reaches: records hit disk only
	// on explicit Sync, which is what makes the crash window observable.
	wal, err := reportlog.Open(walDir, 1<<20, reportlog.WithGroupCommit(time.Hour, 1<<20))
	if err != nil {
		t.Fatal(err)
	}

	edge := newTestPipeline(t)
	edgeSrv := httptest.NewServer(NewPipelineServer(edge, wal))
	reps := quantizedReports(t, edge, 71, 350)
	ctx := context.Background()

	// Phase 1: 200 reports ingested over HTTP and pushed to the root.
	// The forwarder's Sync hook commits the WAL before the push, so
	// everything the root has acked is durable on the edge.
	postReports(t, edgeSrv.URL, reps[:200])
	fw, err := cluster.NewForwarder(edge, cluster.ForwarderConfig{
		RootURL: rootSrv.URL,
		EdgeID:  "edge-crash",
		Sync:    wal.Sync,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Push(ctx); err != nil {
		t.Fatal(err)
	}

	// Phase 2: 100 more reports, committed durably, but the edge dies
	// before the next push; then 50 more that only ever reach the group-
	// commit buffer.
	postReports(t, edgeSrv.URL, reps[200:300])
	if err := wal.Sync(); err != nil {
		t.Fatal(err)
	}
	postReports(t, edgeSrv.URL, reps[300:350])
	// Crash: the server goes away and the writer is abandoned without
	// Close, so the buffered tail never reaches disk.
	edgeSrv.Close()

	// Restart: recover the log (repairing any torn tail) and replay it
	// into a fresh pipeline, exactly as cmd/ldpserver does on boot.
	if _, err := reportlog.Recover(walDir); err != nil {
		t.Fatal(err)
	}
	edge2 := newTestPipeline(t)
	n, err := ReplayPipeline(edge2, func(fn func([]byte) error) error {
		_, err := reportlog.Replay(walDir, fn)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 300 {
		t.Fatalf("replayed %d reports, want 300 (200 pushed + 100 durable)", n)
	}

	// The reborn forwarder resyncs against the root — learning the 200
	// already-applied reports — and pushes only the durable delta.
	fw2, err := cluster.NewForwarder(edge2, cluster.ForwarderConfig{
		RootURL: rootSrv.URL,
		EdgeID:  "edge-crash",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fw2.Push(ctx); err != nil {
		t.Fatal(err)
	}
	if seq, reports := fw2.Acked(); reports != 300 {
		t.Fatalf("acked watermark: seq %d, %d reports, want 300", seq, reports)
	}

	// Root totals are bit-identical to a single node that ingested the
	// 300 durable reports directly.
	ref := newTestPipeline(t)
	addAll(t, ref, reps[:300])
	assertSameEstimates(t, root, ref)
}
