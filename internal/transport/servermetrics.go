package transport

import (
	"log/slog"
	"net/http"
	"time"

	"ldp/internal/telemetry"
)

// routeMetrics is the per-route slice of the HTTP metric families:
// request counts by status class, response latency, response bytes, and
// conditional-GET short-circuits. Handles are nil (no-op) when the server
// runs without telemetry.
type routeMetrics struct {
	c2xx, c3xx, c4xx, c5xx *telemetry.Counter
	latency                *telemetry.Histogram
	bytesOut               *telemetry.Counter
	notMod                 *telemetry.Counter
}

// byStatus maps a response status to its class counter.
func (rm *routeMetrics) byStatus(code int) *telemetry.Counter {
	switch code / 100 {
	case 2:
		return rm.c2xx
	case 3:
		return rm.c3xx
	case 4:
		return rm.c4xx
	default:
		return rm.c5xx
	}
}

// serverMetrics holds the PipelineServer's metric handles. Like the
// pipeline's, every handle is nil-safe, so handler code is unconditional;
// enabled additionally gates the epilogue's clock reads so a server built
// without telemetry (and without a request logger) skips them entirely.
type serverMetrics struct {
	enabled bool

	report routeMetrics
	query  routeMetrics
	model  routeMetrics
	stats  routeMetrics
	merge  routeMetrics

	bytesIn *telemetry.Counter // request body bytes read on /v1/report
	frames  *telemetry.Counter // report frames accepted into the pipeline

	// Decode-error taxonomy of POST /v1/report: where in the wire-to-fold
	// path a body was thrown away.
	decRead     *telemetry.Counter // body read failed mid-stream
	decTooLarge *telemetry.Counter // body over MaxBatchSize
	decBadFrame *telemetry.Counter // frame decode failed
	decEmpty    *telemetry.Counter // well-formed but empty body
	decReject   *telemetry.Counter // batch rejected by pipeline validation

	// Cluster fan-in outcome taxonomy of POST /v1/merge, plus the number
	// of edge reports folded in through it.
	mergeApplied      *telemetry.Counter // snapshot folded into the pipeline
	mergeDuplicate    *telemetry.Counter // replayed sequence number, deduplicated
	mergeBootMismatch *telemetry.Counter // push against a previous boot epoch
	mergeFpMismatch   *telemetry.Counter // mismatched pipeline configuration
	mergeRejected     *telemetry.Counter // malformed or invalid snapshot
	mergeReports      *telemetry.Counter // reports merged from edges

	queryEvict *telemetry.Counter // cached query responses evicted by the per-epoch bound

	// Admission-control sheds (429 before the body is read), by route.
	shedReport *telemetry.Counter
	shedMerge  *telemetry.Counter
}

// newServerMetrics registers the transport metric families on reg. A nil
// registry leaves every handle nil and enabled false.
func newServerMetrics(reg *telemetry.Registry) serverMetrics {
	m := serverMetrics{enabled: reg != nil}
	if reg == nil {
		return m
	}
	m.report = newRouteMetrics(reg, "/v1/report")
	m.query = newRouteMetrics(reg, "/v1/query")
	m.model = newRouteMetrics(reg, "/v1/model")
	m.stats = newRouteMetrics(reg, "/v1/stats")

	m.bytesIn = reg.Counter("ldp_http_request_bytes_total",
		"Request body bytes read, by route.", telemetry.L("route", "/v1/report"))
	m.frames = reg.Counter("ldp_report_frames_total",
		"Report frames accepted into the pipeline over HTTP.")

	const decodeHelp = "Report uploads rejected before folding, by reason."
	m.decRead = reg.Counter("ldp_report_decode_errors_total", decodeHelp, telemetry.L("reason", "read"))
	m.decTooLarge = reg.Counter("ldp_report_decode_errors_total", decodeHelp, telemetry.L("reason", "too_large"))
	m.decBadFrame = reg.Counter("ldp_report_decode_errors_total", decodeHelp, telemetry.L("reason", "bad_frame"))
	m.decEmpty = reg.Counter("ldp_report_decode_errors_total", decodeHelp, telemetry.L("reason", "empty"))
	m.decReject = reg.Counter("ldp_report_decode_errors_total", decodeHelp, telemetry.L("reason", "reject"))

	m.merge = newRouteMetrics(reg, "/v1/merge")
	const mergeHelp = "Cluster fan-in merge attempts, by outcome."
	m.mergeApplied = reg.Counter("ldp_cluster_merges_total", mergeHelp, telemetry.L("result", "applied"))
	m.mergeDuplicate = reg.Counter("ldp_cluster_merges_total", mergeHelp, telemetry.L("result", "duplicate"))
	m.mergeBootMismatch = reg.Counter("ldp_cluster_merges_total", mergeHelp, telemetry.L("result", "boot_mismatch"))
	m.mergeFpMismatch = reg.Counter("ldp_cluster_merges_total", mergeHelp, telemetry.L("result", "fingerprint_mismatch"))
	m.mergeRejected = reg.Counter("ldp_cluster_merges_total", mergeHelp, telemetry.L("result", "rejected"))
	m.mergeReports = reg.Counter("ldp_cluster_merged_reports_total",
		"Edge reports folded into this pipeline via /v1/merge.")

	m.queryEvict = reg.Counter("ldp_query_cache_evictions_total",
		"Pre-encoded query responses evicted (oldest-first) to stay inside the per-epoch cache bounds.")

	const shedHelp = "Requests shed with 429 by the admission limiter before decoding, by route."
	m.shedReport = reg.Counter("ldp_http_shed_total", shedHelp, telemetry.L("route", "/v1/report"))
	m.shedMerge = reg.Counter("ldp_http_shed_total", shedHelp, telemetry.L("route", "/v1/merge"))
	return m
}

func newRouteMetrics(reg *telemetry.Registry, route string) routeMetrics {
	l := telemetry.L("route", route)
	const reqHelp = "HTTP requests served, by route and status class."
	return routeMetrics{
		c2xx: reg.Counter("ldp_http_requests_total", reqHelp, l, telemetry.L("code", "2xx")),
		c3xx: reg.Counter("ldp_http_requests_total", reqHelp, l, telemetry.L("code", "3xx")),
		c4xx: reg.Counter("ldp_http_requests_total", reqHelp, l, telemetry.L("code", "4xx")),
		c5xx: reg.Counter("ldp_http_requests_total", reqHelp, l, telemetry.L("code", "5xx")),
		latency: reg.Histogram("ldp_http_request_duration_ns",
			"Request handling latency in nanoseconds (power-of-two buckets), by route.", l),
		bytesOut: reg.Counter("ldp_http_response_bytes_total",
			"Response body bytes written, by route.", l),
		notMod: reg.Counter("ldp_http_not_modified_total",
			"Conditional GETs short-circuited with 304 via If-None-Match, by route.", l),
	}
}

// finish is the shared handler epilogue: it folds the response into the
// route's metric series and emits the per-request debug log line. Callers
// run it from an open-coded defer with status and wrote as closed-over
// locals, entered only when telemetry or logging is live, so the plain
// configuration pays nothing and the instrumented cached-hit paths stay
// allocation-free (slog attrs are built only past the Enabled gate).
// A zero status means no explicit WriteHeader ran, i.e. an implicit 200.
func (s *PipelineServer) finish(rm *routeMetrics, r *http.Request, status, wrote int, start time.Time) {
	if status == 0 {
		status = http.StatusOK
	}
	if s.met.enabled {
		rm.byStatus(status).Inc()
		rm.bytesOut.Add(uint64(wrote))
		rm.latency.ObserveSince(start)
		if status == http.StatusNotModified {
			rm.notMod.Inc()
		}
	}
	if s.log != nil && s.log.Enabled(r.Context(), slog.LevelDebug) {
		s.log.LogAttrs(r.Context(), slog.LevelDebug, "request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", status),
			slog.Int("bytes", wrote),
			slog.Int64("elapsed_ns", time.Since(start).Nanoseconds()),
		)
	}
}

// observing reports whether handlers need the telemetry/logging epilogue
// at all; false keeps the clock reads and the deferred call off the
// request path entirely.
func (s *PipelineServer) observing() bool { return s.met.enabled || s.log != nil }
