package transport

import (
	"testing"

	"ldp/internal/core"
	"ldp/internal/freq"
	"ldp/internal/pipeline"
	"ldp/internal/rng"
)

// benchCoreReport is a representative legacy Algorithm-4 report: one
// numeric entry and one unary-encoded categorical entry.
func benchCoreReport() core.Report {
	bits := freq.NewBitset(16)
	bits.Set(3)
	bits.Set(11)
	return core.Report{Entries: []core.Entry{
		{Attr: 0, Kind: core.EntryNumeric, Value: 0.375},
		{Attr: 2, Kind: core.EntryCategoricalBits, Resp: freq.Response{Bits: bits}},
	}}
}

func BenchmarkEncodeReport(b *testing.B) {
	rep := benchCoreReport()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := EncodeReport(rep); len(f) == 0 {
			b.Fatal("empty frame")
		}
	}
}

func BenchmarkDecodeReport(b *testing.B) {
	frame := EncodeReport(benchCoreReport())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeReport(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEnvelopeBody builds a batch-upload body of n unified report frames
// from a mean+freq pipeline.
func benchEnvelopeBody(b *testing.B, n int) ([]byte, *pipeline.Pipeline) {
	b.Helper()
	p, err := pipeline.New(pipelineSchema(b), 1)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(11)
	var body []byte
	for i := 0; i < n; i++ {
		rep, err := p.Randomize(randomTuple(p.Schema(), r), r)
		if err != nil {
			b.Fatal(err)
		}
		body, err = AppendEnvelope(body, rep)
		if err != nil {
			b.Fatal(err)
		}
	}
	return body, p
}

// BenchmarkAppendEnvelope measures encoding into a reused buffer: the
// client-side batch assembly path. Steady state reports 0 allocs/op.
func BenchmarkAppendEnvelope(b *testing.B) {
	p, err := pipeline.New(pipelineSchema(b), 1)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(13)
	rep, err := p.Randomize(randomTuple(p.Schema(), r), r)
	if err != nil {
		b.Fatal(err)
	}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendEnvelope(buf[:0], rep)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeEnvelope measures the materializing per-frame decoder
// (one Report struct and bitset per frame), the contrast to DecodeBatch.
func BenchmarkDecodeEnvelope(b *testing.B) {
	body, _ := benchEnvelopeBody(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeEnvelope(body); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeBatch measures the columnar batch decoder over a
// 1024-frame body with a reused batch: the server-side ingest path.
// Steady state reports 0 allocs/op — 0 allocs/report.
func BenchmarkDecodeBatch(b *testing.B) {
	const frames = 1024
	body, _ := benchEnvelopeBody(b, frames)
	batch := pipeline.NewReportBatch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.Reset()
		if n, err := DecodeBatch(body, batch); err != nil || n != frames {
			b.Fatalf("n=%d err=%v", n, err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*frames), "ns/report")
}

// BenchmarkDecodeBatchFold measures the full server-side steady state:
// decode a 1024-frame body into a pooled batch and fold it into a sharded
// pipeline. Steady state reports 0 allocs/op.
func BenchmarkDecodeBatchFold(b *testing.B) {
	const frames = 1024
	body, _ := benchEnvelopeBody(b, frames)
	p, err := pipeline.New(pipelineSchema(b), 1, pipeline.WithShards(4))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := pipeline.GetBatch()
		if n, err := DecodeBatch(body, batch); err != nil || n != frames {
			b.Fatalf("n=%d err=%v", n, err)
		}
		if err := p.AddBatch(batch); err != nil {
			b.Fatal(err)
		}
		pipeline.PutBatch(batch)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*frames), "ns/report")
}
