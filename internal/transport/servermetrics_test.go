package transport

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ldp/internal/core"
	"ldp/internal/pipeline"
	"ldp/internal/rng"
	"ldp/internal/telemetry"
)

// newInstrumentedServer builds a pipeline and server sharing one registry,
// the wiring cmd/ldpserver uses.
func newInstrumentedServer(t testing.TB, opts ...ServerOption) (*PipelineServer, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	p, err := pipeline.New(pipelineSchema(t), 2,
		pipeline.WithShards(2),
		pipeline.WithTelemetry(reg),
	)
	if err != nil {
		t.Fatal(err)
	}
	return NewPipelineServer(p, nil, append([]ServerOption{WithServerTelemetry(reg)}, opts...)...), reg
}

// uploadBody builds one batch-upload body of n randomized reports.
func uploadBody(t testing.TB, p *pipeline.Pipeline, seed uint64, n int) []byte {
	t.Helper()
	r := rng.New(seed)
	var body []byte
	for i := 0; i < n; i++ {
		rep, err := p.Randomize(randomTuple(p.Schema(), r), r)
		if err != nil {
			t.Fatal(err)
		}
		body, err = AppendEnvelope(body, rep)
		if err != nil {
			t.Fatal(err)
		}
	}
	return body
}

// TestMetricsEndpoint is the smoke test of the full observability wiring:
// drive every route once, then scrape /metrics and check that the ingest,
// view-cache, transport, and (absent here) trainer families are exposed
// with the right content type and sane values.
func TestMetricsEndpoint(t *testing.T) {
	s, _ := newInstrumentedServer(t)
	srv := httptest.NewServer(s)
	defer srv.Close()
	c := srv.Client()

	body := uploadBody(t, s.Pipeline(), 7, 50)
	resp, err := c.Post(srv.URL+"/v1/report", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("report -> %s", resp.Status)
	}
	for _, path := range []string{"/v1/query?kind=mean&attr=age", "/v1/stats"} {
		resp, _ := getWithINM(t, c, srv.URL+path, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s -> %s", path, resp.Status)
		}
	}

	resp, exp := getWithINM(t, c, srv.URL+"/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics -> %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.PromContentType {
		t.Fatalf("/metrics Content-Type = %q, want %q", ct, telemetry.PromContentType)
	}
	for _, line := range []string{
		"ldp_ingest_batches_total 1",
		"ldp_ingest_watermark 50",
		`ldp_http_requests_total{code="2xx",route="/v1/report"} 1`,
		`ldp_http_requests_total{code="2xx",route="/v1/query"} 1`,
		`ldp_http_requests_total{code="2xx",route="/v1/stats"} 1`,
		"ldp_report_frames_total 50",
		fmt.Sprintf(`ldp_http_request_bytes_total{route="/v1/report"} %d`, len(body)),
		"ldp_view_misses_total 1",
	} {
		if !strings.Contains(string(exp), line+"\n") {
			t.Errorf("/metrics missing %q", line)
		}
	}
	// Histogram families expose the cumulative triple.
	for _, frag := range []string{
		`ldp_http_request_duration_ns_bucket{route="/v1/query",le="+Inf"} 1`,
		`ldp_http_request_duration_ns_count{route="/v1/query"} 1`,
		"ldp_ingest_batch_size_count 1",
	} {
		if !strings.Contains(string(exp), frag) {
			t.Errorf("/metrics missing histogram line %q", frag)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", exp)
	}
}

// TestMetricsDisabled pins the default: without WithServerTelemetry,
// /metrics is a 404 and the handlers still serve.
func TestMetricsDisabled(t *testing.T) {
	p := newTestPipeline(t)
	srv := httptest.NewServer(NewPipelineServer(p, nil))
	defer srv.Close()
	resp, _ := getWithINM(t, srv.Client(), srv.URL+"/metrics", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/metrics without telemetry -> %s, want 404", resp.Status)
	}
	resp, _ = getWithINM(t, srv.Client(), srv.URL+"/v1/stats", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/stats -> %s", resp.Status)
	}
}

// TestRequestMetricsExactCounts drives a known request mix and asserts
// the per-route counters are exact: status classes, 304 short-circuits,
// and the decode-error taxonomy.
func TestRequestMetricsExactCounts(t *testing.T) {
	s, reg := newInstrumentedServer(t)
	srv := httptest.NewServer(s)
	defer srv.Close()
	c := srv.Client()

	// 2 good uploads, 1 bad frame, 1 empty body, 1 pipeline reject.
	body := uploadBody(t, s.Pipeline(), 3, 20)
	for i := 0; i < 2; i++ {
		resp, err := c.Post(srv.URL+"/v1/report", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	for _, bad := range [][]byte{
		[]byte("garbage-frame"),
		nil,
		// A well-formed legacy frame whose attribute is outside the
		// 3-attribute schema: decodes fine, rejected by validation.
		EncodeReport(core.Report{Entries: []core.Entry{{Attr: 9, Kind: core.EntryNumeric, Value: 0.5}}}),
	} {
		resp, err := c.Post(srv.URL+"/v1/report", "application/octet-stream", bytes.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad upload -> %s, want 400", resp.Status)
		}
	}

	// Query: one cold 200, one cached 200, one 304 replay, one 400.
	resp, _ := getWithINM(t, c, srv.URL+"/v1/query?kind=mean&attr=age", "")
	etag := resp.Header.Get("Etag")
	getWithINM(t, c, srv.URL+"/v1/query?kind=mean&attr=age", "")
	resp, _ = getWithINM(t, c, srv.URL+"/v1/query?kind=mean&attr=age", etag)
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("replay -> %s, want 304", resp.Status)
	}
	getWithINM(t, c, srv.URL+"/v1/query?kind=freq", "") // 400: freq needs attr

	var sb strings.Builder
	if _, err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	exp := sb.String()
	for _, line := range []string{
		`ldp_http_requests_total{code="2xx",route="/v1/report"} 2`,
		`ldp_http_requests_total{code="4xx",route="/v1/report"} 3`,
		`ldp_http_requests_total{code="2xx",route="/v1/query"} 2`,
		`ldp_http_requests_total{code="3xx",route="/v1/query"} 1`,
		`ldp_http_requests_total{code="4xx",route="/v1/query"} 1`,
		`ldp_http_not_modified_total{route="/v1/query"} 1`,
		`ldp_report_decode_errors_total{reason="bad_frame"} 1`,
		`ldp_report_decode_errors_total{reason="empty"} 1`,
		`ldp_report_decode_errors_total{reason="reject"} 1`,
		`ldp_report_decode_errors_total{reason="too_large"} 0`,
		"ldp_report_frames_total 40",
	} {
		if !strings.Contains(exp, line+"\n") {
			t.Errorf("exposition missing %q", line)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", exp)
	}
}

// TestStatsETagAdvances checks the stats cache key: quiet ingest serves
// 304s, any folded report (watermark move) mints a fresh ETag and body.
func TestStatsETagAdvances(t *testing.T) {
	s, _ := newInstrumentedServer(t)
	srv := httptest.NewServer(s)
	defer srv.Close()
	c := srv.Client()

	resp, body := getWithINM(t, c, srv.URL+"/v1/stats", "")
	etag := resp.Header.Get("Etag")
	if etag == "" {
		t.Fatal("no ETag on /v1/stats")
	}
	resp, _ = getWithINM(t, c, srv.URL+"/v1/stats", etag)
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("quiet stats replay -> %s, want 304", resp.Status)
	}

	ingestPipelineReports(t, s.Pipeline(), 9, 10)
	resp, body2 := getWithINM(t, c, srv.URL+"/v1/stats", etag)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats after ingest -> %s, want 200", resp.Status)
	}
	if got := resp.Header.Get("Etag"); got == etag {
		t.Fatal("stats ETag did not advance after ingest")
	}
	if string(body2) == string(body) {
		t.Fatal("stats body did not change after ingest")
	}
}

// TestRequestLog checks the per-request debug line: emitted with fields
// at debug level, suppressed entirely at info.
func TestRequestLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	p := newTestPipeline(t)
	srv := httptest.NewServer(NewPipelineServer(p, nil, WithRequestLog(logger)))
	defer srv.Close()

	getWithINM(t, srv.Client(), srv.URL+"/v1/stats", "")
	line := buf.String()
	for _, frag := range []string{`"msg":"request"`, `"path":"/v1/stats"`, `"status":200`, `"method":"GET"`} {
		if !strings.Contains(line, frag) {
			t.Errorf("log line %q missing %q", line, frag)
		}
	}

	var quiet bytes.Buffer
	info := slog.New(slog.NewJSONHandler(&quiet, &slog.HandlerOptions{Level: slog.LevelInfo}))
	srv2 := httptest.NewServer(NewPipelineServer(newTestPipeline(t), nil, WithRequestLog(info)))
	defer srv2.Close()
	getWithINM(t, srv2.Client(), srv2.URL+"/v1/stats", "")
	if quiet.Len() != 0 {
		t.Fatalf("info-level logger emitted per-request line: %q", quiet.String())
	}
}

// BenchmarkHandleQueryCachedInstrumented is BenchmarkHandleQueryCached
// with telemetry live: the epilogue (status-class counter, bytes, latency
// histogram) must keep the cached-hit handler at 0 allocs/op — the CI
// allocation guard enforces it.
func BenchmarkHandleQueryCachedInstrumented(b *testing.B) {
	reg := telemetry.NewRegistry()
	p, err := pipeline.New(pipelineSchema(b), 2,
		pipeline.WithShards(2), pipeline.WithTelemetry(reg))
	if err != nil {
		b.Fatal(err)
	}
	ingestPipelineReports(b, p, 3, 1000)
	s := NewPipelineServer(p, nil, WithServerTelemetry(reg))

	req := httptest.NewRequest(http.MethodGet, "/v1/query?kind=freq&attr=gender", nil)
	w := &discardResponseWriter{h: make(http.Header)}
	s.handleQuery(w, req)
	if w.n == 0 {
		b.Fatal("warmup wrote no body")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.handleQuery(w, req)
	}
}

// BenchmarkHandleStatsCached measures the new cached stats path under
// telemetry: pre-encoded bytes while the watermark is quiet.
func BenchmarkHandleStatsCached(b *testing.B) {
	reg := telemetry.NewRegistry()
	p, err := pipeline.New(pipelineSchema(b), 2,
		pipeline.WithShards(2), pipeline.WithTelemetry(reg))
	if err != nil {
		b.Fatal(err)
	}
	ingestPipelineReports(b, p, 3, 1000)
	s := NewPipelineServer(p, nil, WithServerTelemetry(reg))

	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	w := &discardResponseWriter{h: make(http.Header)}
	s.handleStats(w, req)
	if w.n == 0 {
		b.Fatal("warmup wrote no body")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.handleStats(w, req)
	}
}
