package transport

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"ldp/internal/pipeline"
)

// The unified envelope (version 2) multiplexes every task's payload
// through one frame format:
//
//	magic(4)="LDPR" version(1)=2 payloadLen(u32) payload crc32(u32)
//	payload = taskTag(1) taskBody
//
// Task bodies reuse the v1 payload encodings: mean/freq/joint bodies are
// entry lists (see appendEntries), range bodies are range-report payloads
// (see appendRangeReport), and gradient bodies carry a round tag plus a
// coordinate list (see appendGradient). The decoder rejects unknown versions and task
// tags, and still accepts both legacy v1 formats — a v1 "LDPR" frame
// decodes as a TaskJoint report and a v1 "LDPQ" frame as a TaskRange
// report — so report logs and in-flight clients survive the migration.
const (
	wireEnvelopeVersion = 2

	envTaskMean     = 1
	envTaskFreq     = 2
	envTaskRange    = 3
	envTaskJoint    = 4
	envTaskGradient = 5
)

// EncodeEnvelope serializes a unified report into the versioned,
// task-multiplexed wire envelope.
func EncodeEnvelope(rep pipeline.Report) ([]byte, error) {
	return AppendEnvelope(nil, rep)
}

// AppendEnvelope appends a report's wire envelope to dst and returns the
// extended buffer. When dst has capacity it allocates nothing, so a client
// can assemble a whole batch upload into one reused buffer.
func AppendEnvelope(dst []byte, rep pipeline.Report) ([]byte, error) {
	switch rep.Task {
	case pipeline.TaskMean, pipeline.TaskFreq, pipeline.TaskJoint, pipeline.TaskRange, pipeline.TaskGradient:
	default:
		return dst, fmt.Errorf("transport: cannot encode task %v", rep.Task)
	}
	start := len(dst)
	dst = append(dst, wireMagic...)
	dst = append(dst, wireEnvelopeVersion, 0, 0, 0, 0) // length backfilled below
	payloadStart := len(dst)
	switch rep.Task {
	case pipeline.TaskMean:
		dst = appendEntries(append(dst, envTaskMean), rep.Entries)
	case pipeline.TaskFreq:
		dst = appendEntries(append(dst, envTaskFreq), rep.Entries)
	case pipeline.TaskJoint:
		dst = appendEntries(append(dst, envTaskJoint), rep.Entries)
	case pipeline.TaskRange:
		dst = appendRangeReport(append(dst, envTaskRange), rep.Range)
	case pipeline.TaskGradient:
		dst = appendGradient(append(dst, envTaskGradient), rep.Round, rep.Entries)
	}
	binary.LittleEndian.PutUint32(dst[start+5:], uint32(len(dst)-payloadStart))
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[payloadStart:])), nil
}

// DecodeEnvelope parses any report frame the system has ever produced into
// a unified report: v2 envelopes, legacy v1 report frames (as TaskJoint),
// and legacy v1 range frames (as TaskRange). Unknown magics, versions, and
// task tags are errors; malformed frames never panic.
//
// It is a materializing wrapper over the columnar batch decoder — one
// decode implementation serves both paths, so they cannot drift apart in
// what they accept.
func DecodeEnvelope(frame []byte) (pipeline.Report, error) {
	b := pipeline.GetBatch()
	defer pipeline.PutBatch(b)
	if err := decodeFrameInto(frame, b); err != nil {
		return pipeline.Report{}, err
	}
	return b.Report(0), nil
}

// FrameLen returns the total length of the frame starting at buf[0], from
// the envelope header alone. It errors when fewer than the 13 framing
// bytes are present or the header implies an oversized frame.
func FrameLen(buf []byte) (int, error) {
	if len(buf) < 13 {
		return 0, ErrTruncated
	}
	total := 13 + int(binary.LittleEndian.Uint32(buf[5:9]))
	if total > MaxFrameSize {
		return 0, fmt.Errorf("transport: frame of %d bytes exceeds limit", total)
	}
	return total, nil
}

// SplitFrames slices a buffer of concatenated report frames (the batch
// upload body) into individual frames without copying. An empty buffer
// yields no frames; a trailing partial frame is an error.
func SplitFrames(buf []byte) ([][]byte, error) {
	var frames [][]byte
	for len(buf) > 0 {
		n, err := FrameLen(buf)
		if err != nil {
			return nil, err
		}
		if n > len(buf) {
			return nil, ErrTruncated
		}
		frames = append(frames, buf[:n])
		buf = buf[n:]
	}
	return frames, nil
}

// replayBatchSize bounds how many replayed frames accumulate in the
// columnar batch before a flush into the pipeline.
const replayBatchSize = 1024

// ReplayPipeline rebuilds pipeline state from persisted frames (any
// format DecodeEnvelope accepts), e.g. at server startup with
// reportlog.Replay. Frames are decoded into a pooled columnar batch and
// folded in replayBatchSize chunks through Pipeline.AddBatch, so replaying
// a large log runs at batch-ingest speed. It returns the number of frames
// decoded; on error, frames of the failing chunk may not have been folded.
func ReplayPipeline(p *pipeline.Pipeline, frames func(fn func(payload []byte) error) error) (int, error) {
	b := pipeline.GetBatch()
	defer pipeline.PutBatch(b)
	n := 0
	flush := func() error {
		if b.Len() == 0 {
			return nil
		}
		if err := p.AddBatch(b); err != nil {
			return fmt.Errorf("transport: replay frames %d..%d: %w", n-b.Len(), n-1, err)
		}
		b.Reset()
		return nil
	}
	err := frames(func(payload []byte) error {
		mark := b.Mark()
		if err := decodeFrameInto(payload, b); err != nil {
			b.Truncate(mark)
			return fmt.Errorf("transport: replay frame %d: %w", n, err)
		}
		n++
		if b.Len() >= replayBatchSize {
			return flush()
		}
		return nil
	})
	if err != nil {
		return n, err
	}
	return n, flush()
}
