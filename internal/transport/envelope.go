package transport

import (
	"encoding/binary"
	"fmt"

	"ldp/internal/pipeline"
)

// The unified envelope (version 2) multiplexes every task's payload
// through one frame format:
//
//	magic(4)="LDPR" version(1)=2 payloadLen(u32) payload crc32(u32)
//	payload = taskTag(1) taskBody
//
// Task bodies reuse the v1 payload encodings: mean/freq/joint bodies are
// entry lists (see appendEntries), range bodies are range-report payloads
// (see appendRangeReport). The decoder rejects unknown versions and task
// tags, and still accepts both legacy v1 formats — a v1 "LDPR" frame
// decodes as a TaskJoint report and a v1 "LDPQ" frame as a TaskRange
// report — so report logs and in-flight clients survive the migration.
const (
	wireEnvelopeVersion = 2

	envTaskMean  = 1
	envTaskFreq  = 2
	envTaskRange = 3
	envTaskJoint = 4
)

// EncodeEnvelope serializes a unified report into the versioned,
// task-multiplexed wire envelope.
func EncodeEnvelope(rep pipeline.Report) ([]byte, error) {
	var payload []byte
	switch rep.Task {
	case pipeline.TaskMean:
		payload = appendEntries([]byte{envTaskMean}, rep.Entries)
	case pipeline.TaskFreq:
		payload = appendEntries([]byte{envTaskFreq}, rep.Entries)
	case pipeline.TaskJoint:
		payload = appendEntries([]byte{envTaskJoint}, rep.Entries)
	case pipeline.TaskRange:
		payload = appendRangeReport([]byte{envTaskRange}, rep.Range)
	default:
		return nil, fmt.Errorf("transport: cannot encode task %v", rep.Task)
	}
	return encodeFrame(wireMagic, wireEnvelopeVersion, payload), nil
}

// DecodeEnvelope parses any report frame the system has ever produced into
// a unified report: v2 envelopes, legacy v1 report frames (as TaskJoint),
// and legacy v1 range frames (as TaskRange). Unknown magics, versions, and
// task tags are errors; malformed frames never panic.
func DecodeEnvelope(frame []byte) (pipeline.Report, error) {
	magic, version, payload, err := parseFrame(frame)
	if err != nil {
		return pipeline.Report{}, err
	}
	switch {
	case magic == wireMagic && version == wireEnvelopeVersion:
		if len(payload) < 1 {
			return pipeline.Report{}, ErrTruncated
		}
		tag, body := payload[0], payload[1:]
		switch tag {
		case envTaskMean, envTaskFreq, envTaskJoint:
			entries, err := decodeEntries(body)
			if err != nil {
				return pipeline.Report{}, err
			}
			task := pipeline.TaskMean
			switch tag {
			case envTaskFreq:
				task = pipeline.TaskFreq
			case envTaskJoint:
				task = pipeline.TaskJoint
			}
			return pipeline.Report{Task: task, Entries: entries}, nil
		case envTaskRange:
			rr, err := decodeRangeReport(body)
			if err != nil {
				return pipeline.Report{}, err
			}
			return pipeline.Report{Task: pipeline.TaskRange, Range: rr}, nil
		default:
			return pipeline.Report{}, fmt.Errorf("transport: unknown envelope task tag %d", tag)
		}
	case magic == wireMagic && version == wireVersion:
		entries, err := decodeEntries(payload)
		if err != nil {
			return pipeline.Report{}, err
		}
		return pipeline.Report{Task: pipeline.TaskJoint, Entries: entries}, nil
	case magic == wireRangeMagic && version == wireRangeVersion:
		rr, err := decodeRangeReport(payload)
		if err != nil {
			return pipeline.Report{}, err
		}
		return pipeline.Report{Task: pipeline.TaskRange, Range: rr}, nil
	case magic == wireMagic || magic == wireRangeMagic:
		return pipeline.Report{}, fmt.Errorf("%w: %d", ErrBadVersion, version)
	default:
		return pipeline.Report{}, ErrBadMagic
	}
}

// FrameLen returns the total length of the frame starting at buf[0], from
// the envelope header alone. It errors when fewer than the 13 framing
// bytes are present or the header implies an oversized frame.
func FrameLen(buf []byte) (int, error) {
	if len(buf) < 13 {
		return 0, ErrTruncated
	}
	total := 13 + int(binary.LittleEndian.Uint32(buf[5:9]))
	if total > MaxFrameSize {
		return 0, fmt.Errorf("transport: frame of %d bytes exceeds limit", total)
	}
	return total, nil
}

// SplitFrames slices a buffer of concatenated report frames (the batch
// upload body) into individual frames without copying. An empty buffer
// yields no frames; a trailing partial frame is an error.
func SplitFrames(buf []byte) ([][]byte, error) {
	var frames [][]byte
	for len(buf) > 0 {
		n, err := FrameLen(buf)
		if err != nil {
			return nil, err
		}
		if n > len(buf) {
			return nil, ErrTruncated
		}
		frames = append(frames, buf[:n])
		buf = buf[n:]
	}
	return frames, nil
}

// ReplayPipeline rebuilds pipeline state from persisted frames (any
// format DecodeEnvelope accepts), e.g. at server startup with
// reportlog.Replay.
func ReplayPipeline(p *pipeline.Pipeline, frames func(fn func(payload []byte) error) error) (int, error) {
	n := 0
	err := frames(func(payload []byte) error {
		rep, err := DecodeEnvelope(payload)
		if err != nil {
			return fmt.Errorf("transport: replay frame %d: %w", n, err)
		}
		if err := p.Add(rep); err != nil {
			return fmt.Errorf("transport: replay frame %d: %w", n, err)
		}
		n++
		return nil
	})
	return n, err
}
