package transport

import (
	"bytes"
	"fmt"
	"io"
	"net/http"

	"ldp/internal/core"
	"ldp/internal/rng"
	"ldp/internal/schema"
)

// Client runs on the user's side: it randomizes tuples locally with a
// core.Collector and sends only the perturbed frames to the aggregator.
// The true tuple never leaves the process.
type Client struct {
	baseURL   string
	collector *core.Collector
	http      *http.Client
}

// NewClient builds a client for the aggregator at baseURL (no trailing
// slash required). httpClient may be nil to use http.DefaultClient.
func NewClient(baseURL string, collector *core.Collector, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	return &Client{baseURL: baseURL, collector: collector, http: httpClient}
}

// SendTuple perturbs the tuple locally and posts the resulting frame.
func (c *Client) SendTuple(t schema.Tuple, r *rng.Rand) error {
	rep, err := c.collector.Perturb(t, r)
	if err != nil {
		return fmt.Errorf("transport: perturb: %w", err)
	}
	return c.SendReport(rep)
}

// SendReport posts an already-perturbed report.
func (c *Client) SendReport(rep core.Report) error {
	frame := EncodeReport(rep)
	resp, err := c.http.Post(c.baseURL+"/v1/report", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		return fmt.Errorf("transport: post report: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("transport: aggregator rejected report: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}
