package transport

import (
	"errors"
	"math"
	"testing"

	"ldp/internal/core"
	"ldp/internal/freq"
	"ldp/internal/pipeline"
)

// TestDecodeBatchEmpty: an empty body is zero frames, not an error (the
// HTTP server rejects empty uploads separately).
func TestDecodeBatchEmpty(t *testing.T) {
	b := pipeline.NewReportBatch()
	n, err := DecodeBatch(nil, b)
	if n != 0 || err != nil || b.Len() != 0 {
		t.Fatalf("DecodeBatch(nil) = %d, %v, len %d; want 0, nil, 0", n, err, b.Len())
	}
	n, err = DecodeBatch([]byte{}, b)
	if n != 0 || err != nil || b.Len() != 0 {
		t.Fatalf("DecodeBatch(empty) = %d, %v, len %d; want 0, nil, 0", n, err, b.Len())
	}
}

// TestDecodeBatchMatchesDecodeEnvelope: a batch of v2 envelopes decodes
// columnar into exactly the reports the per-frame decoder materializes.
func TestDecodeBatchMatchesDecodeEnvelope(t *testing.T) {
	p := newTestPipeline(t)
	reps := samplePipelineReports(t, p, 5)
	var body []byte
	for _, rep := range reps {
		var err error
		body, err = AppendEnvelope(body, rep)
		if err != nil {
			t.Fatal(err)
		}
	}
	b := pipeline.NewReportBatch()
	n, err := DecodeBatch(body, b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(reps) || b.Len() != len(reps) {
		t.Fatalf("decoded %d frames into %d reports, want %d", n, b.Len(), len(reps))
	}
	for i, want := range reps {
		if got := b.Report(i); !pipelineReportsEqual(want, got) {
			t.Fatalf("report %d (%v) differs from the materializing decoder", i, want.Task)
		}
	}
}

// TestDecodeBatchMixedVersions: legacy v1 report frames (TaskJoint) and
// v1 range frames (TaskRange) decode in the same batch as v2 envelopes.
func TestDecodeBatchMixedVersions(t *testing.T) {
	p := newTestPipeline(t)
	reps := samplePipelineReports(t, p, 6)
	var rangeRep pipeline.Report
	for _, rep := range reps {
		if rep.Task == pipeline.TaskRange {
			rangeRep = rep
			break
		}
	}

	v2, err := EncodeEnvelope(reps[0])
	if err != nil {
		t.Fatal(err)
	}
	legacyJoint := encodeLegacyReportFrame(t, reps)
	legacyRange := EncodeRangeReport(rangeRep.Range)

	var body []byte
	body = append(body, v2...)
	body = append(body, legacyJoint...)
	body = append(body, legacyRange...)

	b := pipeline.NewReportBatch()
	n, err := DecodeBatch(body, b)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || b.Len() != 3 {
		t.Fatalf("decoded %d frames into %d reports, want 3", n, b.Len())
	}
	if got := b.Report(0); !pipelineReportsEqual(reps[0], got) {
		t.Fatal("v2 frame changed through batch decode")
	}
	if got := b.Task(1); got != pipeline.TaskJoint {
		t.Fatalf("legacy v1 report frame decoded as %v, want joint", got)
	}
	if got := b.Report(2); got.Task != pipeline.TaskRange || !pipelineReportsEqual(pipeline.Report{Task: pipeline.TaskRange, Range: rangeRep.Range}, got) {
		t.Fatal("legacy v1 range frame changed through batch decode")
	}
}

// encodeLegacyReportFrame builds a v1 "LDPR" frame from the entries of the
// first entry-list report in reps.
func encodeLegacyReportFrame(t *testing.T, reps []pipeline.Report) []byte {
	t.Helper()
	for _, rep := range reps {
		if len(rep.Entries) > 0 {
			return encodeFrame(wireMagic, wireVersion, appendEntries(nil, rep.Entries))
		}
	}
	t.Fatal("no entry-list report sampled")
	return nil
}

// TestDecodeBatchTruncatedMidBatch: a batch whose last frame is cut short
// errors but keeps every complete frame decoded before it.
func TestDecodeBatchTruncatedMidBatch(t *testing.T) {
	p := newTestPipeline(t)
	reps := samplePipelineReports(t, p, 7)[:3]
	var body []byte
	var frames [][]byte
	for _, rep := range reps {
		f, err := EncodeEnvelope(rep)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
		body = append(body, f...)
	}
	cut := body[:len(body)-3]
	b := pipeline.NewReportBatch()
	n, err := DecodeBatch(cut, b)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("DecodeBatch(truncated) error = %v, want ErrTruncated", err)
	}
	if n != 2 || b.Len() != 2 {
		t.Fatalf("kept %d frames (batch len %d), want the 2 complete ones", n, b.Len())
	}
	for i := 0; i < 2; i++ {
		if !pipelineReportsEqual(reps[i], b.Report(i)) {
			t.Fatalf("complete frame %d changed by the truncated tail", i)
		}
	}
}

// TestDecodeBatchCorruptFrameRollsBack: a frame whose payload fails its
// checksum mid-batch errors without leaving a half-decoded report behind.
func TestDecodeBatchCorruptFrameRollsBack(t *testing.T) {
	p := newTestPipeline(t)
	reps := samplePipelineReports(t, p, 8)[:2]
	f0, err := EncodeEnvelope(reps[0])
	if err != nil {
		t.Fatal(err)
	}
	f1, err := EncodeEnvelope(reps[1])
	if err != nil {
		t.Fatal(err)
	}
	body := append(append([]byte{}, f0...), f1...)
	body[len(f0)+10] ^= 0xff // corrupt frame 1's payload

	b := pipeline.NewReportBatch()
	n, err := DecodeBatch(body, b)
	if !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("DecodeBatch(corrupt) error = %v, want ErrBadChecksum", err)
	}
	if n != 1 || b.Len() != 1 {
		t.Fatalf("kept %d frames (batch len %d), want 1", n, b.Len())
	}
	if !pipelineReportsEqual(reps[0], b.Report(0)) {
		t.Fatal("frame 0 changed by the corrupt neighbor")
	}
}

// TestAddBatchMatchesAdd: folding a decoded batch produces the same
// aggregate state as folding the reports one at a time.
func TestAddBatchMatchesAdd(t *testing.T) {
	single, batched := newTestPipeline(t), newTestPipeline(t)
	reps := samplePipelineReports(t, single, 9)
	var body []byte
	for _, rep := range reps {
		if err := single.Add(rep); err != nil {
			t.Fatal(err)
		}
		var err error
		body, err = AppendEnvelope(body, rep)
		if err != nil {
			t.Fatal(err)
		}
	}
	b := pipeline.GetBatch()
	defer pipeline.PutBatch(b)
	if _, err := DecodeBatch(body, b); err != nil {
		t.Fatal(err)
	}
	if err := batched.AddBatch(b); err != nil {
		t.Fatal(err)
	}

	rs, rb := single.Snapshot(), batched.Snapshot()
	if rs.N() != rb.N() {
		t.Fatalf("N %d != %d", rb.N(), rs.N())
	}
	for _, kind := range []pipeline.TaskKind{pipeline.TaskMean, pipeline.TaskFreq, pipeline.TaskRange} {
		if rs.NTask(kind) != rb.NTask(kind) {
			t.Fatalf("%v count %d != %d", kind, rb.NTask(kind), rs.NTask(kind))
		}
	}
	// The two ingest orders group float additions differently across
	// shards, so estimates may differ by a few ulps.
	approx := func(a, b float64) bool { return math.Abs(a-b) <= 1e-12*(1+math.Abs(a)) }
	ms, _ := rs.Mean("age")
	mb, _ := rb.Mean("age")
	if !approx(ms, mb) {
		t.Fatalf("Mean(age) %v != %v", mb, ms)
	}
	fs, _ := rs.Freq("gender")
	fb, _ := rb.Freq("gender")
	for v := range fs {
		if !approx(fs[v], fb[v]) {
			t.Fatalf("Freq(gender)[%d] %v != %v", v, fb[v], fs[v])
		}
	}
	q := pipeline.RangeQuery{Attr: "age", Lo: -0.5, Hi: 0.5}
	qs, _ := rs.Range(q)
	qb, _ := rb.Range(q)
	if !approx(qs, qb) {
		t.Fatalf("Range %v != %v", qb, qs)
	}
}

// TestDecodeBatchRejectsImplausibleAttr: a well-formed frame whose entry
// attribute (or categorical value) exceeds any plausible schema must be
// rejected by BOTH decoders — the columnar batch stores them as int32, so
// accepting would truncate an attacker-chosen 2^32+k into a valid-looking
// small index and poison another attribute's aggregate.
func TestDecodeBatchRejectsImplausibleAttr(t *testing.T) {
	hugeAttr := pipeline.Report{Task: pipeline.TaskMean, Entries: []core.Entry{
		{Attr: 1 << 32, Kind: core.EntryNumeric, Value: 1},
	}}
	hugeValue := pipeline.Report{Task: pipeline.TaskFreq, Entries: []core.Entry{
		{Attr: 2, Kind: core.EntryCategoricalValue, Resp: freq.Response{Value: 1<<32 + 1}},
	}}
	for name, rep := range map[string]pipeline.Report{"attr": hugeAttr, "value": hugeValue} {
		frame, err := EncodeEnvelope(rep)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeEnvelope(frame); err == nil {
			t.Errorf("%s: DecodeEnvelope accepted an implausible %s", name, name)
		}
		b := pipeline.NewReportBatch()
		if n, err := DecodeBatch(frame, b); err == nil || n != 0 || b.Len() != 0 {
			t.Errorf("%s: DecodeBatch accepted an implausible %s (n=%d len=%d err=%v)", name, name, n, b.Len(), err)
		}
	}
}

// TestDecodeRejectsEmptyBitsResponse: a range frame declaring a bits
// response with 0 words can never validate (every oracle domain needs at
// least one word) and the batch columns cannot represent it without
// conflating it with a value response — both decoders must reject it at
// the boundary.
func TestDecodeRejectsEmptyBitsResponse(t *testing.T) {
	// kind=hier attr=0 depth=1, respBits with words=0.
	payload := []byte{rangeKindHier, 0, 1, respBits, 0}
	for _, frame := range [][]byte{
		encodeFrame(wireRangeMagic, wireRangeVersion, payload),
		encodeFrame(wireMagic, wireEnvelopeVersion, append([]byte{envTaskRange}, payload...)),
	} {
		if _, err := DecodeEnvelope(frame); err == nil {
			t.Error("DecodeEnvelope accepted a 0-word bits response")
		}
		b := pipeline.NewReportBatch()
		if n, err := DecodeBatch(frame, b); err == nil || n != 0 || b.Len() != 0 {
			t.Errorf("DecodeBatch accepted a 0-word bits response (n=%d len=%d err=%v)", n, b.Len(), err)
		}
	}
	// Same for a 0-word bitset entry in an entry-list report:
	// count=1 attr=0 kind=catBits words=0.
	entries := []byte{1, 0, entryCatBits, 0}
	frame := encodeFrame(wireMagic, wireEnvelopeVersion, append([]byte{envTaskFreq}, entries...))
	if _, err := DecodeEnvelope(frame); err == nil {
		t.Error("DecodeEnvelope accepted a 0-word bitset entry")
	}
	if _, err := DecodeReport(encodeFrame(wireMagic, wireVersion, entries)); err == nil {
		t.Error("DecodeReport accepted a 0-word bitset entry")
	}
}
