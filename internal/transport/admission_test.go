package transport

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ldp/internal/cluster"
	"ldp/internal/rng"
	"ldp/internal/telemetry"
)

// slotHolder occupies admission slots by POSTing bodies that stall until
// released, so tests can fill the limiter deterministically.
type slotHolder struct {
	wg      sync.WaitGroup
	writers []*io.PipeWriter
}

// hold starts a POST /v1/report whose body never finishes arriving; the
// handler sits in its body read, holding one admission slot.
func (h *slotHolder) hold(s *PipelineServer) {
	pr, pw := io.Pipe()
	h.writers = append(h.writers, pw)
	req := httptest.NewRequest(http.MethodPost, "/v1/report", pr)
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		s.ServeHTTP(httptest.NewRecorder(), req)
	}()
	// The handler holds its slot once it enters the body read; give the
	// goroutine a moment to get there.
	deadline := time.Now().Add(2 * time.Second)
	for s.adm.InFlight() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
}

func (h *slotHolder) release() {
	for _, pw := range h.writers {
		pw.CloseWithError(io.ErrUnexpectedEOF)
	}
	h.wg.Wait()
}

func TestAdmissionShedsOverLimit(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := NewPipelineServer(newTestPipeline(t), nil,
		WithServerTelemetry(reg),
		WithAdmission(AdmissionConfig{MaxInFlight: 1, RetryAfter: 7 * time.Second}),
	)

	var holder slotHolder
	holder.hold(s)

	// Slot taken: the next mutating request is shed before its body is
	// read.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/report", strings.NewReader("junk")))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-limit POST: status %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want \"7\"", got)
	}
	// Merge POSTs share the same limiter.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/merge", strings.NewReader("junk")))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-limit merge POST: status %d, want 429", rec.Code)
	}
	// Cheap cached GETs are never shed.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/stats under load: status %d, want 200", rec.Code)
	}

	holder.release()

	// Slot free again: admitted (the bad body 400s, but it got in).
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/report", strings.NewReader("junk")))
	if rec.Code == http.StatusTooManyRequests {
		t.Fatal("request shed after the slot was released")
	}

	var sb strings.Builder
	if _, err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`ldp_http_shed_total{route="/v1/report"} 1`,
		`ldp_http_shed_total{route="/v1/merge"} 1`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// shedWriter is the cheapest possible ResponseWriter: the alloc test
// needs the shed path itself, not recorder bookkeeping, measured.
type shedWriter struct{ h http.Header }

func (w *shedWriter) Header() http.Header         { return w.h }
func (w *shedWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *shedWriter) WriteHeader(int)             {}

func TestAdmissionShedPathZeroAlloc(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := NewPipelineServer(newTestPipeline(t), nil,
		WithServerTelemetry(reg),
		WithAdmission(AdmissionConfig{MaxInFlight: 1}),
	)
	var holder slotHolder
	holder.hold(s)
	defer holder.release()

	h := s.mux // routing itself must stay allocation-free too
	w := &shedWriter{h: make(http.Header, 4)}
	req := httptest.NewRequest(http.MethodPost, "/v1/report", nil)
	req.Body = http.NoBody
	allocs := testing.AllocsPerRun(200, func() {
		h.ServeHTTP(w, req)
	})
	if allocs != 0 {
		t.Errorf("shed path allocates %.1f/op, want 0", allocs)
	}
}

func TestAdmissionTimeoutSetsDeadline(t *testing.T) {
	s := NewPipelineServer(newTestPipeline(t), nil,
		WithAdmission(AdmissionConfig{MaxInFlight: 4, Timeout: 250 * time.Millisecond}),
	)
	var gotDeadline bool
	h := s.admit(nil, func(w http.ResponseWriter, r *http.Request) {
		_, gotDeadline = r.Context().Deadline()
	})
	h(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost, "/v1/report", nil))
	if !gotDeadline {
		t.Fatal("admitted request carries no deadline")
	}

	// Without a timeout the context is left alone.
	s2 := NewPipelineServer(newTestPipeline(t), nil, WithAdmission(AdmissionConfig{MaxInFlight: 4}))
	h = s2.admit(nil, func(w http.ResponseWriter, r *http.Request) {
		_, gotDeadline = r.Context().Deadline()
	})
	h(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost, "/v1/report", nil))
	if gotDeadline {
		t.Fatal("timeout-less admission added a deadline")
	}
}

func TestClientRetriesThroughShedding(t *testing.T) {
	// A server that sheds the first two uploads with 429 + Retry-After and
	// accepts the third: a client built WithRetry should land the batch.
	p := newTestPipeline(t)
	inner := NewPipelineServer(p, nil)
	var sheds int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && sheds < 2 {
			sheds++
			w.Header().Set("Retry-After", "0")
			http.Error(w, "overloaded", http.StatusTooManyRequests)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c := NewPipelineClient(srv.URL, p, WithRetry(cluster.RetryPolicy{
		MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond,
	}))
	r := rng.NewStream(99, 0)
	if err := c.Send(context.Background(), randomTuple(p.Schema(), r), r); err != nil {
		t.Fatalf("send through shedding: %v", err)
	}
	if sheds != 2 {
		t.Fatalf("sheds = %d, want 2", sheds)
	}
	if got := p.Watermark(); got != 1 {
		t.Fatalf("reports folded = %d, want 1", got)
	}
}

func TestHealthEndpoints(t *testing.T) {
	var walErr error
	s := NewPipelineServer(newTestPipeline(t), nil,
		WithReadyChecks(ReadyCheck{Name: "wal", Check: func() error { return walErr }}),
	)

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}

	if rec := get("/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
	if rec := get("/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("readyz while healthy: %d", rec.Code)
	}

	// A failing dependency flips readiness, not liveness, and is named.
	walErr = io.ErrClosedPipe
	rec := get("/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with failing check: %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "wal:") {
		t.Fatalf("readyz body does not name the failing check: %q", rec.Body.String())
	}
	if rec := get("/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz with failing readiness: %d", rec.Code)
	}

	// Draining: readyz 503 even with healthy checks.
	walErr = nil
	s.SetDraining(true)
	rec = get("/readyz")
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "draining") {
		t.Fatalf("readyz while draining: %d %q", rec.Code, rec.Body.String())
	}
	s.SetDraining(false)
	if rec := get("/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("readyz after drain cleared: %d", rec.Code)
	}
}
