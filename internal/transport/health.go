package transport

import (
	"net/http"
	"strings"
)

// ReadyCheck is one named readiness dependency: Check returns nil while
// the dependency can do its job. The process wires its own — WAL
// writability, breaker state, trainer sanity — because only it knows
// which dependencies it actually runs with.
type ReadyCheck struct {
	Name  string
	Check func() error
}

// WithReadyChecks adds readiness dependencies evaluated on every GET
// /readyz. Checks should be cheap (a flag read, not an I/O probe): load
// balancers poll readiness at high frequency.
func WithReadyChecks(checks ...ReadyCheck) ServerOption {
	return func(s *PipelineServer) { s.ready = append(s.ready, checks...) }
}

var healthOKBody = []byte("ok\n")

// handleHealthz is liveness: the process is up and the HTTP stack
// serves. It stays 200 while draining — a draining process is alive, it
// just should not receive new traffic (that is /readyz's call).
func (s *PipelineServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header()["Content-Type"] = textContentType
	_, _ = w.Write(healthOKBody)
}

// handleReadyz is readiness: 200 "ok" when the server is accepting new
// work, 503 naming every failing dependency otherwise. Draining flips it
// to 503 immediately so load balancers stop routing here while in-flight
// requests finish.
func (s *PipelineServer) handleReadyz(w http.ResponseWriter, r *http.Request) {
	var failing []string
	if s.draining.Load() {
		failing = append(failing, "draining: shutdown in progress")
	}
	for _, c := range s.ready {
		if err := c.Check(); err != nil {
			failing = append(failing, c.Name+": "+err.Error())
		}
	}
	w.Header()["Content-Type"] = textContentType
	if len(failing) > 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("not ready\n" + strings.Join(failing, "\n") + "\n"))
		return
	}
	_, _ = w.Write(healthOKBody)
}

// SetDraining flips the server's draining flag: true makes /readyz
// answer 503 (and the ldp_draining gauge 1) while /healthz stays 200, the
// conventional shutdown sequence — stop attracting traffic first, then
// drain what is already here.
func (s *PipelineServer) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports the current draining flag.
func (s *PipelineServer) Draining() bool { return s.draining.Load() }
