package transport

import (
	"encoding/binary"
	"fmt"
	"math"

	"ldp/internal/core"
	"ldp/internal/pipeline"
)

// The gradient frame carries one user's randomized clipped gradient for a
// federated SGD round through the v2 envelope (task tag envTaskGradient):
//
//	payload = tag(1)=5 round(uvarint) count(uvarint)
//	          { coord(uvarint) value(f64 bits, 8 bytes LE) }*
//
// The decoder bounds round and coordinate indices at the wire boundary —
// like maxWireAttr/maxWireValue, the limits are far above any real
// configuration, and rejecting the rest here means the columnar batch's
// int32 narrowing can never truncate an attacker-chosen value into a
// valid-looking one. Pipeline.AddBatch then validates against the actual
// trainer configuration (round < Rounds, coord < Dim, finite values).
const (
	// maxWireRound bounds decoded round tags. A training run has at most
	// a few thousand rounds; nothing legitimate comes near 2^20.
	maxWireRound = 1 << 20
)

// EncodeGradientReport serializes a gradient report (rep.Task must be
// TaskGradient) into the versioned wire envelope. It is AppendEnvelope
// restricted to the gradient frame, for callers that want the task
// mismatch caught at encode time.
func EncodeGradientReport(rep pipeline.Report) ([]byte, error) {
	if rep.Task != pipeline.TaskGradient {
		return nil, fmt.Errorf("transport: EncodeGradientReport on task %v", rep.Task)
	}
	return AppendEnvelope(nil, rep)
}

// appendGradient appends the gradient payload body (round + coordinate
// list) shared by the encoder and re-encoders.
func appendGradient(payload []byte, round int32, entries []core.Entry) []byte {
	payload = binary.AppendUvarint(payload, uint64(round))
	payload = binary.AppendUvarint(payload, uint64(len(entries)))
	for _, e := range entries {
		payload = binary.AppendUvarint(payload, uint64(e.Attr))
		payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(e.Value))
	}
	return payload
}

// decodeGradientInto parses a gradient payload straight into the batch
// columns (round column + numeric entry columns) without allocating.
func decodeGradientInto(payload []byte, b *pipeline.ReportBatch) error {
	pos := 0
	round, n := binary.Uvarint(payload)
	if n <= 0 {
		return ErrTruncated
	}
	pos += n
	if round > maxWireRound {
		return fmt.Errorf("transport: implausible gradient round %d", round)
	}
	count, n := binary.Uvarint(payload[pos:])
	if n <= 0 {
		return ErrTruncated
	}
	pos += n
	if count == 0 {
		return fmt.Errorf("transport: empty gradient report")
	}
	if count > 1<<16 {
		return fmt.Errorf("transport: implausible gradient coordinate count %d", count)
	}
	b.StartGradientReport(int32(round))
	for i := uint64(0); i < count; i++ {
		coord, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return ErrTruncated
		}
		pos += n
		if coord > maxWireAttr {
			return fmt.Errorf("transport: implausible gradient coordinate %d", coord)
		}
		if pos+8 > len(payload) {
			return ErrTruncated
		}
		b.AppendNumeric(int(coord), math.Float64frombits(binary.LittleEndian.Uint64(payload[pos:])))
		pos += 8
	}
	if pos != len(payload) {
		return fmt.Errorf("transport: %d trailing payload bytes", len(payload)-pos)
	}
	return nil
}
