package transport

import (
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"ldp/internal/core"
	"ldp/internal/freq"
	"ldp/internal/rangequery"
	"ldp/internal/rng"
	"ldp/internal/schema"
)

func rangeFixture(t *testing.T) (*schema.Schema, *rangequery.Collector) {
	t.Helper()
	s, err := schema.New(
		schema.Attribute{Name: "age", Kind: schema.Numeric},
		schema.Attribute{Name: "income", Kind: schema.Numeric},
	)
	if err != nil {
		t.Fatal(err)
	}
	col, err := rangequery.NewCollector(s, 1, rangequery.Config{Buckets: 32, GridCells: 4})
	if err != nil {
		t.Fatal(err)
	}
	return s, col
}

func TestRangeReportRoundTrip(t *testing.T) {
	s, col := rangeFixture(t)
	r := rng.New(3)
	tp := schema.NewTuple(s)
	tp.Num[0], tp.Num[1] = 0.3, -0.6
	for i := 0; i < 50; i++ {
		rep, err := col.Perturb(tp, r)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeRangeReport(EncodeRangeReport(rep))
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		if got.Kind != rep.Kind || got.Attr != rep.Attr || got.Depth != rep.Depth || got.Pair != rep.Pair {
			t.Fatalf("round trip header mismatch: got %+v, want %+v", got, rep)
		}
		if got.Resp.Value != rep.Resp.Value || len(got.Resp.Bits) != len(rep.Resp.Bits) {
			t.Fatalf("round trip response mismatch: got %+v, want %+v", got.Resp, rep.Resp)
		}
		for w := range rep.Resp.Bits {
			if got.Resp.Bits[w] != rep.Resp.Bits[w] {
				t.Fatal("round trip bitset mismatch")
			}
		}
	}
}

func TestRangeReportGRRRoundTrip(t *testing.T) {
	rep := rangequery.Report{Kind: rangequery.KindHier, Attr: 1, Depth: 3, Resp: freq.Response{Value: 5}}
	got, err := DecodeRangeReport(EncodeRangeReport(rep))
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != rangequery.KindHier || got.Attr != 1 || got.Depth != 3 ||
		got.Resp.Value != 5 || got.Resp.Bits != nil {
		t.Fatalf("got %+v", got)
	}
}

func TestDecodeRangeReportRejectsCorruption(t *testing.T) {
	frame := EncodeRangeReport(rangequery.Report{Kind: rangequery.KindGrid, Pair: 2, Resp: freq.Response{Value: 7}})

	if _, err := DecodeRangeReport(frame[:5]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated frame: got %v, want ErrTruncated", err)
	}
	bad := append([]byte("XXXX"), frame[4:]...)
	if _, err := DecodeRangeReport(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: got %v, want ErrBadMagic", err)
	}
	flip := append([]byte(nil), frame...)
	flip[len(flip)-5] ^= 0xff // corrupt payload, keep length
	if _, err := DecodeRangeReport(flip); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("corrupt payload: got %v, want ErrBadChecksum", err)
	}
	ver := append([]byte(nil), frame...)
	ver[4] = 9
	if _, err := DecodeRangeReport(ver); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: got %v, want ErrBadVersion", err)
	}
	// A mean/frequency frame is not a range frame.
	_, coreReps := sampleReports(t, oueFactory, 1)
	if _, err := DecodeRangeReport(EncodeReport(coreReps[0])); !errors.Is(err, ErrBadMagic) {
		t.Error("mean/frequency frame must be rejected by magic")
	}
	// And vice versa.
	if _, err := DecodeReport(frame); !errors.Is(err, ErrBadMagic) {
		t.Error("range frame must be rejected by the report decoder")
	}
}

// TestCraftedShortBitsetRejectedByAggregator covers the decode->Add seam:
// a well-formed frame whose bitset does not match the claimed depth's
// domain decodes fine but must be rejected (not panic) by the aggregator.
// The degenerate zero-word bitset is rejected one layer earlier, at the
// wire boundary (the columnar batch could not represent it faithfully).
func TestCraftedShortBitsetRejectedByAggregator(t *testing.T) {
	_, col := rangeFixture(t)
	agg := rangequery.NewAggregator(col)
	crafted := EncodeRangeReport(rangequery.Report{
		Kind:  rangequery.KindHier,
		Attr:  0,
		Depth: 1,
		Resp:  freq.Response{Bits: freq.NewBitset(128)}, // 2 words; depth 1 wants 1
	})
	rep, err := DecodeRangeReport(crafted)
	if err != nil {
		t.Fatalf("crafted frame should decode at the wire layer: %v", err)
	}
	if err := agg.Add(rep); err == nil {
		t.Fatal("aggregator accepted a bitset wider than the depth's domain")
	}

	zeroWords := EncodeRangeReport(rangequery.Report{
		Kind:  rangequery.KindHier,
		Attr:  0,
		Depth: 1,
		Resp:  freq.Response{Bits: freq.NewBitset(0)},
	})
	if _, err := DecodeRangeReport(zeroWords); err == nil {
		t.Fatal("wire layer accepted a zero-word bitset response")
	}
}

func TestRangeServiceEndToEnd(t *testing.T) {
	s, col := rangeFixture(t)
	ragg := rangequery.NewAggregator(col)

	// The range service piggybacks on a normal server; give it a minimal
	// mean/frequency aggregator to wrap.
	coreCol, err := core.NewCollector(testSchema(t), 1, pmFactory, oueFactory)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(core.NewAggregator(coreCol), nil)
	srv.EnableRange(ragg, nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	client := NewRangeClient(ts.URL+"/", col, nil)
	const n = 4000
	for i := 0; i < n; i++ {
		r := rng.NewStream(9, uint64(i))
		tp := schema.NewTuple(s)
		tp.Num[0] = rng.Uniform(r, -0.5, 0.5)
		tp.Num[1] = rng.Uniform(r, -1, 1)
		if err := client.SendTuple(tp, r); err != nil {
			t.Fatal(err)
		}
	}
	if ragg.N() != n {
		t.Fatalf("aggregator saw %d reports, want %d", ragg.N(), n)
	}

	var stats struct{ N int64 }
	getJSON(t, ts.URL+"/v1/rangestats", &stats)
	if stats.N != n {
		t.Errorf("rangestats n = %d, want %d", stats.N, n)
	}

	var r1 struct{ Mass float64 }
	getJSON(t, ts.URL+"/v1/range?attr=age&lo=-0.5&hi=0.5", &r1)
	if math.Abs(r1.Mass-1) > 0.3 {
		t.Errorf("1-D mass over the full data support = %v, want ~1", r1.Mass)
	}

	var r2 struct{ Mass float64 }
	getJSON(t, ts.URL+"/v1/range2d?x=age&y=income&xlo=-1&xhi=1&ylo=-1&yhi=1", &r2)
	if math.Abs(r2.Mass-1) > 1e-9 {
		t.Errorf("2-D whole-square mass = %v, want 1", r2.Mass)
	}

	// Error paths surface as HTTP status codes.
	for _, url := range []string{
		ts.URL + "/v1/range?attr=nope&lo=0&hi=1",
		ts.URL + "/v1/range?attr=age&lo=x&hi=1",
		ts.URL + "/v1/range2d?x=age&y=income&xlo=0&xhi=1&ylo=0&yhi=bad",
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Errorf("%s: want non-200", url)
		}
	}
}

func TestReplayRange(t *testing.T) {
	s, col := rangeFixture(t)
	var frames [][]byte
	r := rng.New(4)
	for i := 0; i < 100; i++ {
		tp := schema.NewTuple(s)
		tp.Num[0], tp.Num[1] = rng.Uniform(r, -1, 1), rng.Uniform(r, -1, 1)
		rep, err := col.Perturb(tp, r)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, EncodeRangeReport(rep))
	}
	agg := rangequery.NewAggregator(col)
	n, err := ReplayRange(agg, func(fn func([]byte) error) error {
		for _, f := range frames {
			if err := fn(f); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 || agg.N() != 100 {
		t.Errorf("replayed %d frames into N=%d, want 100/100", n, agg.N())
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
