package transport

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"ldp/internal/cluster"
	"ldp/internal/pipeline"
)

// maxMergeEdges bounds the per-edge bookkeeping a root retains, so a
// misconfigured (or hostile) fleet spraying fresh edge IDs cannot pin
// memory: pushes from edges past the cap are refused until the root
// restarts.
const maxMergeEdges = 4096

// mergeState is the root side of the fan-in protocol: the boot ID that
// scopes every sequence number, and per-edge dedup state. All of it is
// guarded by one mutex — merges arrive on push intervals, not per
// report, so serializing them costs nothing and keeps the
// (seq check, fold, record) triple atomic.
type mergeState struct {
	mu    sync.Mutex
	boot  string
	bootH []string // preallocated Ldp-Boot header value
	fp    uint64
	edges map[string]*edgeRecord
}

// edgeRecord tracks one edge: the highest applied sequence number and
// the cumulative state folded in under it, returned on resync so a
// restarted edge recovers its baseline instead of re-pushing everything.
type edgeRecord struct {
	seq     uint64
	applied *pipeline.AggState
}

// newBootID draws a random identifier for this server's lifetime.
// Sequence numbers are only meaningful within one boot: after a restart
// the root's aggregate is empty, so deltas acked under the previous boot
// must not be skipped — the fresh boot ID forces every edge through a
// resync instead.
func newBootID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand not failing is a platform invariant; fall back to a
		// constant that still differs from any hex boot ID an edge saw.
		return "boot-entropy-unavailable"
	}
	return hex.EncodeToString(b[:])
}

func (s *PipelineServer) initMerge() {
	boot := newBootID()
	s.merge = mergeState{
		boot:  boot,
		bootH: []string{boot},
		fp:    s.p.Fingerprint(),
		edges: make(map[string]*edgeRecord),
	}
	s.mux.HandleFunc("POST /v1/merge", s.admit(s.met.shedMerge, s.handleMergePost))
	s.mux.HandleFunc("GET /v1/merge", s.handleMergeGet)
}

// Boot returns the server's boot ID (exposed for tests and diagnostics).
func (s *PipelineServer) Boot() string { return s.merge.boot }

// handleMergePost folds one edge snapshot into the pipeline:
//
//	200 JSON ack     applied, or deduplicated replay (applied=false)
//	409              fingerprint mismatch — wrong topology, do not retry
//	412              boot mismatch — root restarted, resync and re-push
//	400              malformed or invalid snapshot
//
// Every response carries the root's boot ID in the Ldp-Boot header.
func (s *PipelineServer) handleMergePost(w http.ResponseWriter, r *http.Request) {
	status, wrote := 0, 0
	if s.observing() {
		start := time.Now()
		defer func() { s.finish(&s.met.merge, r, status, wrote, start) }()
	}
	w.Header()["Ldp-Boot"] = s.merge.bootH

	body, tooLarge, err := readCapped(r, cluster.MaxSnapshotSize+13)
	if err != nil {
		s.met.mergeRejected.Inc()
		status = s.fail(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if tooLarge {
		s.met.mergeRejected.Inc()
		status = s.fail(w, "snapshot too large", http.StatusRequestEntityTooLarge)
		return
	}
	snap, err := cluster.DecodeSnapshot(body)
	if err != nil {
		s.met.mergeRejected.Inc()
		status = s.fail(w, err.Error(), http.StatusBadRequest)
		return
	}
	if snap.Fingerprint != s.merge.fp {
		s.met.mergeFpMismatch.Inc()
		status = s.fail(w, "snapshot fingerprint does not match this pipeline's configuration", http.StatusConflict)
		return
	}
	if snap.Boot != s.merge.boot {
		s.met.mergeBootMismatch.Inc()
		status = s.fail(w, "boot mismatch: this root restarted, resync before pushing", http.StatusPreconditionFailed)
		return
	}

	m := &s.merge
	m.mu.Lock()
	rec := m.edges[snap.Edge]
	if rec == nil {
		if len(m.edges) >= maxMergeEdges {
			m.mu.Unlock()
			s.met.mergeRejected.Inc()
			status = s.fail(w, "too many distinct edges", http.StatusServiceUnavailable)
			return
		}
		rec = &edgeRecord{}
		m.edges[snap.Edge] = rec
	}
	applied := false
	if snap.Seq > rec.seq {
		if err := s.p.MergeState(snap.State); err != nil {
			m.mu.Unlock()
			s.met.mergeRejected.Inc()
			status = s.fail(w, err.Error(), http.StatusBadRequest)
			return
		}
		if rec.applied == nil {
			rec.applied = snap.State.Clone()
		} else if err := rec.applied.Add(snap.State); err != nil {
			// Unreachable once a first snapshot fixed the shapes and
			// MergeState validated this one, but never die silently.
			m.mu.Unlock()
			s.met.mergeRejected.Inc()
			status = s.fail(w, "accumulate edge state: "+err.Error(), http.StatusInternalServerError)
			return
		}
		rec.seq = snap.Seq
		applied = true
		s.met.mergeApplied.Inc()
		s.met.mergeReports.Add(uint64(snap.State.Total()))
	} else {
		s.met.mergeDuplicate.Inc()
	}
	m.mu.Unlock()

	ack, err := json.Marshal(cluster.MergeAck{Edge: snap.Edge, Seq: snap.Seq, Applied: applied, Boot: m.boot})
	if err != nil {
		status = s.fail(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header()["Content-Type"] = jsonContentType
	_, _ = w.Write(ack)
	status, wrote = http.StatusOK, len(ack)
	if s.log != nil {
		s.log.Info("merged edge snapshot",
			"edge", snap.Edge, "seq", snap.Seq, "applied", applied, "reports", snap.State.Total())
	}
}

// handleMergeGet serves resynchronization: GET /v1/merge?edge=ID returns
// a binary snapshot of the cumulative state this root has applied from
// that edge (404 for an unknown edge). Either way the Ldp-Boot header
// tells the edge which boot its next push must reference.
func (s *PipelineServer) handleMergeGet(w http.ResponseWriter, r *http.Request) {
	status, wrote := 0, 0
	if s.observing() {
		start := time.Now()
		defer func() { s.finish(&s.met.merge, r, status, wrote, start) }()
	}
	w.Header()["Ldp-Boot"] = s.merge.bootH
	edge := r.URL.Query().Get("edge")
	if edge == "" {
		status = s.fail(w, "resync needs edge=", http.StatusBadRequest)
		return
	}

	m := &s.merge
	m.mu.Lock()
	rec := m.edges[edge]
	var frame []byte
	if rec != nil {
		var err error
		frame, err = cluster.EncodeSnapshot(&cluster.Snapshot{
			Fingerprint: m.fp,
			Edge:        edge,
			Seq:         rec.seq,
			Boot:        m.boot,
			State:       rec.applied,
		})
		if err != nil {
			m.mu.Unlock()
			status = s.fail(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	m.mu.Unlock()

	if frame == nil {
		status = s.fail(w, "unknown edge", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(frame)
	status, wrote = http.StatusOK, len(frame)
}
