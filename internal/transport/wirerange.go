package transport

import (
	"encoding/binary"
	"fmt"

	"ldp/internal/freq"
	"ldp/internal/rangequery"
)

// Range-report frames carry rangequery.Report values. They share the
// structure of the mean/frequency frames —
//
//	magic(4) version(1) payloadLen(u32) payload crc32(u32)
//
// — under a distinct magic so a misrouted frame fails fast with
// ErrBadMagic instead of decoding into garbage. Payload: kind(byte), the
// kind-specific header (attr+depth uvarints for hierarchy reports, the
// pair uvarint for grid reports), then the frequency-oracle response
// (respBits: word count + words; respValue: value uvarint).
const (
	wireRangeMagic   = "LDPQ"
	wireRangeVersion = 1

	rangeKindHier = 0
	rangeKindGrid = 1

	respBits  = 0
	respValue = 1
)

// EncodeRangeReport serializes a range report into a self-contained frame.
func EncodeRangeReport(rep rangequery.Report) []byte {
	return encodeFrame(wireRangeMagic, wireRangeVersion, appendRangeReport(nil, rep))
}

// appendRangeReport appends the range-report payload encoding shared by
// the v1 range frame and the v2 envelope's range payload.
func appendRangeReport(payload []byte, rep rangequery.Report) []byte {
	if payload == nil {
		payload = make([]byte, 0, 16+8*len(rep.Resp.Bits))
	}
	switch rep.Kind {
	case rangequery.KindGrid:
		payload = append(payload, rangeKindGrid)
		payload = binary.AppendUvarint(payload, uint64(rep.Pair))
	default:
		payload = append(payload, rangeKindHier)
		payload = binary.AppendUvarint(payload, uint64(rep.Attr))
		payload = binary.AppendUvarint(payload, uint64(rep.Depth))
	}
	if rep.Resp.Bits != nil {
		payload = append(payload, respBits)
		payload = binary.AppendUvarint(payload, uint64(len(rep.Resp.Bits)))
		for _, w := range rep.Resp.Bits {
			payload = binary.LittleEndian.AppendUint64(payload, w)
		}
	} else {
		payload = append(payload, respValue)
		payload = binary.AppendUvarint(payload, uint64(rep.Resp.Value))
	}
	return payload
}

// DecodeRangeReport parses a frame produced by EncodeRangeReport.
func DecodeRangeReport(frame []byte) (rangequery.Report, error) {
	payload, err := decodeFrame(wireRangeMagic, wireRangeVersion, frame)
	if err != nil {
		return rangequery.Report{}, err
	}
	return decodeRangeReport(payload)
}

// decodeRangeReport parses the range-report payload encoding (see
// appendRangeReport). The whole payload must be consumed.
func decodeRangeReport(payload []byte) (rangequery.Report, error) {
	var zero rangequery.Report
	pos := 0
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return 0, ErrTruncated
		}
		pos += n
		return v, nil
	}
	if len(payload) < 1 {
		return zero, ErrTruncated
	}
	kind := payload[pos]
	pos++
	var rep rangequery.Report
	switch kind {
	case rangeKindHier:
		rep.Kind = rangequery.KindHier
		attr, err := readUvarint()
		if err != nil {
			return zero, err
		}
		depth, err := readUvarint()
		if err != nil {
			return zero, err
		}
		if attr > 1<<16 || depth > 64 {
			return zero, fmt.Errorf("transport: implausible hierarchy header attr=%d depth=%d", attr, depth)
		}
		rep.Attr, rep.Depth = int(attr), int(depth)
	case rangeKindGrid:
		rep.Kind = rangequery.KindGrid
		pair, err := readUvarint()
		if err != nil {
			return zero, err
		}
		if pair > 1<<20 {
			return zero, fmt.Errorf("transport: implausible pair index %d", pair)
		}
		rep.Pair = int(pair)
	default:
		return zero, fmt.Errorf("transport: unknown range report kind %d", kind)
	}
	if pos >= len(payload) {
		return zero, ErrTruncated
	}
	respKind := payload[pos]
	pos++
	switch respKind {
	case respBits:
		words, err := readUvarint()
		if err != nil {
			return zero, err
		}
		if words == 0 {
			return zero, fmt.Errorf("transport: empty bitset response")
		}
		if words > 1<<12 || pos+int(words)*8 > len(payload) {
			return zero, ErrTruncated
		}
		bits := make(freq.Bitset, words)
		for w := range bits {
			bits[w] = binary.LittleEndian.Uint64(payload[pos:])
			pos += 8
		}
		rep.Resp = freq.Response{Bits: bits}
	case respValue:
		v, err := readUvarint()
		if err != nil {
			return zero, err
		}
		if v > maxWireValue {
			return zero, fmt.Errorf("transport: implausible response value %d", v)
		}
		rep.Resp = freq.Response{Value: int(v)}
	default:
		return zero, fmt.Errorf("transport: unknown response kind %d", respKind)
	}
	if pos != len(payload) {
		return zero, fmt.Errorf("transport: %d trailing payload bytes", len(payload)-pos)
	}
	return rep, nil
}
