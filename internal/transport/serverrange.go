package transport

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"ldp/internal/rangequery"
	"ldp/internal/rng"
	"ldp/internal/schema"
)

// RangeService answers the range-query routes of a Server:
//
//	POST /v1/rangereport  binary range frame -> 204
//	GET  /v1/rangestats   {"n": ...}
//	GET  /v1/range        ?attr=name&lo=&hi=          1-D range mass
//	GET  /v1/range2d      ?x=name&y=name&xlo=&xhi=&ylo=&yhi=   2-D mass
type RangeService struct {
	agg *rangequery.Aggregator

	mu   sync.Mutex
	sink Sink
}

// EnableRange attaches a range-query aggregator (and optional persistence
// sink for its frames — keep it separate from the mean/frequency report
// log, the frame formats differ) to the server's mux. Call once, before
// serving.
func (s *Server) EnableRange(agg *rangequery.Aggregator, sink Sink) *RangeService {
	r := &RangeService{agg: agg, sink: sink}
	s.mux.HandleFunc("POST /v1/rangereport", r.handleReport)
	s.mux.HandleFunc("GET /v1/rangestats", r.handleStats)
	s.mux.HandleFunc("GET /v1/range", r.handleRange1D)
	s.mux.HandleFunc("GET /v1/range2d", r.handleRange2D)
	return r
}

// Aggregator exposes the underlying range aggregator (for replay).
func (r *RangeService) Aggregator() *rangequery.Aggregator { return r.agg }

func (r *RangeService) handleReport(w http.ResponseWriter, req *http.Request) {
	frame, err := io.ReadAll(io.LimitReader(req.Body, MaxFrameSize+1))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(frame) > MaxFrameSize {
		http.Error(w, "frame too large", http.StatusRequestEntityTooLarge)
		return
	}
	rep, err := DecodeRangeReport(frame)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := r.agg.Add(rep); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if r.sink != nil {
		r.mu.Lock()
		err := r.sink.Append(frame)
		r.mu.Unlock()
		if err != nil {
			http.Error(w, "persist: "+err.Error(), http.StatusInternalServerError)
			return
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

func (r *RangeService) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{"n": r.agg.N()})
}

func (r *RangeService) handleRange1D(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	attr, err := attrIndex(r.agg.Schema(), q.Get("attr"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	lo, err1 := strconv.ParseFloat(q.Get("lo"), 64)
	hi, err2 := strconv.ParseFloat(q.Get("hi"), 64)
	if err1 != nil || err2 != nil {
		http.Error(w, "lo and hi must be numbers in [-1,1]", http.StatusBadRequest)
		return
	}
	mass, err := r.agg.Range1D(attr, lo, hi)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string]any{"attr": q.Get("attr"), "lo": lo, "hi": hi, "mass": mass})
}

func (r *RangeService) handleRange2D(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	ax, err := attrIndex(r.agg.Schema(), q.Get("x"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	ay, err := attrIndex(r.agg.Schema(), q.Get("y"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	var bounds [4]float64
	for i, key := range []string{"xlo", "xhi", "ylo", "yhi"} {
		v, err := strconv.ParseFloat(q.Get(key), 64)
		if err != nil {
			http.Error(w, key+" must be a number in [-1,1]", http.StatusBadRequest)
			return
		}
		bounds[i] = v
	}
	mass, err := r.agg.Range2D(ax, ay, bounds[0], bounds[1], bounds[2], bounds[3])
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string]any{
		"x": q.Get("x"), "y": q.Get("y"),
		"xlo": bounds[0], "xhi": bounds[1], "ylo": bounds[2], "yhi": bounds[3],
		"mass": mass,
	})
}

func attrIndex(s *schema.Schema, name string) (int, error) {
	for i, a := range s.Attrs {
		if a.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("unknown attribute %q", name)
}

// ReplayRange rebuilds range-aggregator state from persisted range frames.
func ReplayRange(agg *rangequery.Aggregator, frames func(fn func(payload []byte) error) error) (int, error) {
	n := 0
	err := frames(func(payload []byte) error {
		rep, err := DecodeRangeReport(payload)
		if err != nil {
			return fmt.Errorf("transport: replay range frame %d: %w", n, err)
		}
		if err := agg.Add(rep); err != nil {
			return fmt.Errorf("transport: replay range frame %d: %w", n, err)
		}
		n++
		return nil
	})
	return n, err
}

// RangeClient runs on the user's side of the range-query pipeline: it
// randomizes tuples locally with a rangequery.Collector and sends only
// the perturbed frames to the aggregator.
type RangeClient struct {
	baseURL   string
	collector *rangequery.Collector
	http      *http.Client
}

// NewRangeClient builds a client for the aggregator at baseURL.
// httpClient may be nil to use http.DefaultClient.
func NewRangeClient(baseURL string, collector *rangequery.Collector, httpClient *http.Client) *RangeClient {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	return &RangeClient{baseURL: baseURL, collector: collector, http: httpClient}
}

// SendTuple perturbs the tuple locally and posts the resulting frame.
func (c *RangeClient) SendTuple(t schema.Tuple, r *rng.Rand) error {
	rep, err := c.collector.Perturb(t, r)
	if err != nil {
		return fmt.Errorf("transport: perturb: %w", err)
	}
	return c.SendReport(rep)
}

// SendReport posts an already-perturbed range report.
func (c *RangeClient) SendReport(rep rangequery.Report) error {
	frame := EncodeRangeReport(rep)
	resp, err := c.http.Post(c.baseURL+"/v1/rangereport", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		return fmt.Errorf("transport: post range report: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("transport: aggregator rejected range report: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}
