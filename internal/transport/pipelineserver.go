package transport

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ldp/internal/pipeline"
	"ldp/internal/schema"
	"ldp/internal/telemetry"
)

// MaxBatchSize bounds the body of one batched report upload (defensive
// limit; a batch holds many MaxFrameSize-bounded frames).
const MaxBatchSize = 16 << 20

// maxCachedQueries bounds the number of distinct pre-encoded query
// responses kept per view epoch, maxCachedQueryKey bounds the raw query
// string an entry may be keyed by, and maxCachedQueryBytes bounds the
// total keys+bodies retained — together they keep an adversarial sweep
// of distinct (or padded) query strings from pinning memory. When a new
// fitting entry would push the cache past the count or byte bound, the
// oldest entries are evicted (insertion-order FIFO — hits are lock-free
// reads of an immutable state, so there is no recency to track) rather
// than the newcomer dropped, so a long-lived epoch keeps serving its
// current working set instead of freezing the first thousand queries.
const (
	maxCachedQueries    = 1024
	maxCachedQueryKey   = 1 << 10
	maxCachedQueryBytes = 8 << 20
)

// jsonContentType is the Content-Type header value of every JSON
// response, preallocated so the cached-hit path assigns it without
// allocating.
var jsonContentType = []string{"application/json"}

// PipelineServer is the unified aggregator front end: every task's
// reports arrive on one route and every query kind is answered on one
// route.
//
//	POST /v1/report   one or more concatenated report frames -> 204
//	                  (v2 envelopes, including gradient frames; legacy v1
//	                  report/range frames are accepted for migration)
//	GET  /v1/query    ?kind=stats
//	                  ?kind=mean[&attr=name]
//	                  ?kind=freq&attr=name
//	                  ?kind=range&attr=name&lo=&hi=[&attr2=&lo2=&hi2=]
//	GET  /v1/stats    aggregate report counts (same body as ?kind=stats)
//	GET  /v1/model    federated SGD model state (pipelines built with
//	                  WithGradient; 404 otherwise)
//	GET  /metrics     Prometheus text exposition (servers built with
//	                  WithServerTelemetry; 404 otherwise)
//	POST /v1/merge    cluster fan-in: fold an edge's snapshot delta into
//	                  this pipeline (see merge.go for the protocol)
//	GET  /v1/merge    ?edge=ID resynchronization snapshot for that edge
//	GET  /healthz     liveness: 200 while the process serves
//	GET  /readyz      readiness: 200 when accepting new work, 503 while
//	                  draining or a WithReadyChecks dependency fails
//
// Servers built WithAdmission bound the mutating routes (/v1/report and
// /v1/merge POSTs) to a fixed number of in-flight requests; excess
// requests are shed with 429 + Retry-After before their body is read, on
// an allocation-free path, so refusing work under overload stays cheaper
// than doing it.
//
// Queries are answered from the pipeline's epoch-cached view
// (Pipeline.View): the JSON encoding of each answered (kind, attr, range)
// is pre-encoded once per view epoch and served as raw bytes afterwards,
// tagged with an epoch-keyed ETag. Clients that replay the ETag in
// If-None-Match get 304 Not Modified while the view is unchanged, so a
// hot dashboard costs one header compare; /v1/model gets the same
// treatment keyed on the trainer state, and /v1/stats (with ?kind=stats)
// keyed on the ingest watermark and trainer acceptance count.
type PipelineServer struct {
	p   *pipeline.Pipeline
	mux *http.ServeMux

	mu   sync.Mutex
	sink Sink

	// reg/log/met are the observability hooks (see ServerOption): nil
	// registry and logger by default, with nil-safe no-op metric handles,
	// so the uninstrumented server pays nothing.
	reg *telemetry.Registry
	log *slog.Logger
	met serverMetrics

	// qcache holds the current view epoch's pre-encoded query responses
	// behind an atomic pointer: hits are lock-free map reads of an
	// immutable state, misses clone-and-swap under qmu (copy-on-write).
	qmu    sync.Mutex
	qcache atomic.Pointer[queryCacheState]

	// mcache is the single-entry analogue for /v1/model, scache the one
	// for /v1/stats.
	mcache atomic.Pointer[modelCacheState]
	scache atomic.Pointer[statsCacheState]

	// merge is the root side of the cluster fan-in protocol (see merge.go).
	merge mergeState

	// adm is the admission limiter (nil without WithAdmission: every
	// request admitted), ready the configured /readyz dependencies, and
	// draining the shutdown flag /readyz reports (see health.go).
	adm      *admission
	ready    []ReadyCheck
	draining atomic.Bool
}

// queryCacheState is one view epoch's immutable set of pre-encoded query
// responses, keyed by the request's raw query string. States are
// replaced, never mutated, so readers need no lock. bytes tracks the
// retained keys+bodies against maxCachedQueryBytes, and order remembers
// the keys oldest-first so the bound evicts FIFO.
type queryCacheState struct {
	epoch   uint64
	etag    string
	etagHdr []string
	body    map[string][]byte
	order   []string
	bytes   int
}

// modelCacheState is the pre-encoded /v1/model response for one exact
// trainer state (round, done, accepted, stale).
type modelCacheState struct {
	round    int
	done     bool
	accepted int64
	stale    int64
	etag     string
	etagHdr  []string
	body     []byte
}

// statsCacheState is the pre-encoded stats response for one exact
// aggregate state: the ingest watermark plus the trainer's acceptance
// count (gradient reports never move the watermark but do appear in the
// stats body). Replaced, never mutated.
type statsCacheState struct {
	wm      int64
	acc     int64
	etag    string
	etagHdr []string
	body    []byte
}

// ServerOption configures a PipelineServer under construction.
type ServerOption func(*PipelineServer)

// WithServerTelemetry registers the transport metric families — request
// counts by route and status class, latency histograms, request/response
// bytes, 304 short-circuits, and the report decode-error taxonomy — on
// reg and serves reg's Prometheus exposition on GET /metrics. Pass the
// same registry the pipeline was built with (pipeline.WithTelemetry) so
// one scrape covers both layers. A nil registry disables both (the
// default): /metrics serves 404 and the handlers skip the epilogue.
func WithServerTelemetry(reg *telemetry.Registry) ServerOption {
	return func(s *PipelineServer) { s.reg = reg }
}

// WithRequestLog emits one structured debug-level line per request
// (method, path, status, bytes, elapsed) on log. The line is built only
// past the logger's Enabled gate, so running an info-level logger costs
// the request path one branch.
func WithRequestLog(log *slog.Logger) ServerOption {
	return func(s *PipelineServer) { s.log = log }
}

// NewPipelineServer wraps a pipeline (and optional persistence sink,
// which receives every accepted raw frame) in an HTTP handler.
func NewPipelineServer(p *pipeline.Pipeline, sink Sink, opts ...ServerOption) *PipelineServer {
	s := &PipelineServer{p: p, sink: sink, mux: http.NewServeMux()}
	for _, opt := range opts {
		opt(s)
	}
	s.met = newServerMetrics(s.reg)
	s.mux.HandleFunc("POST /v1/report", s.admit(s.met.shedReport, s.handleReport))
	s.mux.HandleFunc("GET /v1/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/model", s.handleModel)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.Handle("GET /metrics", s.reg.Handler()) // nil registry: 404
	s.reg.GaugeFunc("ldp_draining",
		"1 while the server is draining for shutdown (readyz answers 503), else 0.",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	s.initMerge()
	return s
}

// ServeHTTP implements http.Handler.
func (s *PipelineServer) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Pipeline exposes the underlying pipeline (for replay after restart).
func (s *PipelineServer) Pipeline() *pipeline.Pipeline { return s.p }

// fail writes an error response and returns its status code, so error
// exits read `status = s.fail(...)` and the telemetry epilogue sees the
// real status.
func (s *PipelineServer) fail(w http.ResponseWriter, msg string, code int) int {
	http.Error(w, msg, code)
	return code
}

func (s *PipelineServer) handleReport(w http.ResponseWriter, r *http.Request) {
	status, wrote := 0, 0
	if s.observing() {
		start := time.Now()
		defer func() { s.finish(&s.met.report, r, status, wrote, start) }()
	}
	body, tooLarge, err := readCapped(r, MaxBatchSize)
	if err != nil {
		s.met.decRead.Inc()
		status = s.fail(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if tooLarge {
		s.met.decTooLarge.Inc()
		status = s.fail(w, "batch too large", http.StatusRequestEntityTooLarge)
		return
	}
	s.met.bytesIn.Add(uint64(len(body)))
	// The whole body decodes into one pooled columnar batch, is validated
	// up front (a bad frame or invalid report rejects the batch atomically
	// before any side effect), then persists and folds — WAL first. If the
	// sink fails, the pipeline has not changed and the 500 tells the
	// client the batch was not accepted, so a retry cannot double-count;
	// folding before persisting would leave the 500'd-but-folded batch
	// counted twice after a client retry.
	b := pipeline.GetBatch()
	defer pipeline.PutBatch(b)
	frames, err := DecodeBatch(body, b)
	if err != nil {
		s.met.decBadFrame.Inc()
		status = s.fail(w, err.Error(), http.StatusBadRequest)
		return
	}
	if b.Len() == 0 {
		s.met.decEmpty.Inc()
		status = s.fail(w, "empty report body", http.StatusBadRequest)
		return
	}
	if err := s.p.ValidateBatch(b); err != nil {
		s.met.decReject.Inc()
		status = s.fail(w, err.Error(), http.StatusBadRequest)
		return
	}
	if s.sink != nil {
		// Persist the validated raw frames, re-slicing the body by frame
		// length (DecodeBatch already proved every header well-formed).
		s.mu.Lock()
		for off := 0; off < len(body); {
			n, err := FrameLen(body[off:])
			if err != nil {
				break
			}
			if err := s.sink.Append(body[off : off+n]); err != nil {
				s.mu.Unlock()
				status = s.fail(w, "persist: "+err.Error(), http.StatusInternalServerError)
				return
			}
			off += n
		}
		s.mu.Unlock()
	}
	s.p.AddBatchValidated(b)
	s.met.frames.Add(uint64(frames))
	w.WriteHeader(http.StatusNoContent)
	status = http.StatusNoContent
}

// ModelState is the JSON body of GET /v1/model: the published model plus
// the training-protocol parameters a client needs to participate.
type ModelState struct {
	Round     int       `json:"round"`
	Done      bool      `json:"done"`
	Beta      []float64 `json:"beta"`
	GroupSize int       `json:"group_size"`
	Rounds    int       `json:"rounds"`
	Dim       int       `json:"dim"`
	Eta       float64   `json:"eta"`
	Lambda    float64   `json:"lambda"`
	Accepted  int64     `json:"accepted"`
	Stale     int64     `json:"stale"`
}

func (s *PipelineServer) handleModel(w http.ResponseWriter, r *http.Request) {
	status, wrote := 0, 0
	if s.observing() {
		start := time.Now()
		defer func() { s.finish(&s.met.model, r, status, wrote, start) }()
	}
	tr := s.p.Trainer()
	if tr == nil {
		status = s.fail(w, "no gradient task is registered", http.StatusNotFound)
		return
	}
	m := tr.Model()
	acc, stale := tr.Accepted(), tr.Stale()
	st := s.mcache.Load()
	if st == nil || st.round != m.Round || st.done != m.Done || st.accepted != acc || st.stale != stale {
		body, err := json.Marshal(ModelState{
			Round:     m.Round,
			Done:      m.Done,
			Beta:      m.Beta,
			GroupSize: tr.GroupSize(),
			Rounds:    tr.Rounds(),
			Dim:       tr.Dim(),
			Eta:       tr.Eta(),
			Lambda:    tr.Lambda(),
			Accepted:  acc,
			Stale:     stale,
		})
		if err != nil {
			status = s.fail(w, err.Error(), http.StatusInternalServerError)
			return
		}
		done := 0
		if m.Done {
			done = 1
		}
		etag := fmt.Sprintf("\"m%d-%d-%d-%d\"", m.Round, done, acc, stale)
		st = &modelCacheState{
			round: m.Round, done: m.Done, accepted: acc, stale: stale,
			etag: etag, etagHdr: []string{etag}, body: append(body, '\n'),
		}
		// A racing poller may store a state for a neighbouring trainer
		// snapshot; the next mismatch rebuilds, so last-write-wins is fine.
		s.mcache.Store(st)
	}
	h := w.Header()
	h["Etag"] = st.etagHdr
	if inm := r.Header.Get("If-None-Match"); inm != "" && inm == st.etag {
		w.WriteHeader(http.StatusNotModified)
		status = http.StatusNotModified
		return
	}
	h["Content-Type"] = jsonContentType
	_, _ = w.Write(st.body)
	status, wrote = http.StatusOK, len(st.body)
}

func (s *PipelineServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.RawQuery
	// Stats read only the shard counters and change with every report
	// (including gradient reports, which never advance the view epoch),
	// so they bypass the view cache and ride the watermark-keyed stats
	// cache instead, counted under the /v1/stats route.
	if strings.Contains(raw, "kind=stats") && r.URL.Query().Get("kind") == "stats" {
		s.handleStats(w, r)
		return
	}

	status, wrote := 0, 0
	if s.observing() {
		start := time.Now()
		defer func() { s.finish(&s.met.query, r, status, wrote, start) }()
	}

	v := s.p.View()
	if st := s.qcache.Load(); st != nil && st.epoch == v.Epoch() {
		if body, ok := st.body[raw]; ok {
			h := w.Header()
			h["Etag"] = st.etagHdr
			if inm := r.Header.Get("If-None-Match"); inm != "" && inm == st.etag {
				w.WriteHeader(http.StatusNotModified)
				status = http.StatusNotModified
				return
			}
			h["Content-Type"] = jsonContentType
			_, _ = w.Write(body)
			status, wrote = http.StatusOK, len(body)
			return
		}
	}

	// Cold path: parse the query, answer it from the same view, and
	// remember the encoded bytes for the rest of this epoch.
	body, cacheable, err := s.queryJSON(v, r.URL.Query())
	if err != nil {
		status = s.fail(w, err.Error(), http.StatusBadRequest)
		return
	}
	var etagHdr []string
	if cacheable {
		etagHdr = s.storeQuery(v.Epoch(), raw, body)
	}
	h := w.Header()
	if etagHdr != nil {
		h["Etag"] = etagHdr
	}
	h["Content-Type"] = jsonContentType
	_, _ = w.Write(body)
	status, wrote = http.StatusOK, len(body)
}

// handleStats serves GET /v1/stats (and /v1/query?kind=stats) from the
// cached stats snapshot: while no report of any task has been folded,
// repeat pollers get the pre-encoded bytes — or a 304 via the
// watermark-keyed ETag — instead of a per-hit counter sweep and
// re-encode.
func (s *PipelineServer) handleStats(w http.ResponseWriter, r *http.Request) {
	status, wrote := 0, 0
	if s.observing() {
		start := time.Now()
		defer func() { s.finish(&s.met.stats, r, status, wrote, start) }()
	}
	st := s.statsState()
	if st == nil {
		status = s.fail(w, "encode stats", http.StatusInternalServerError)
		return
	}
	h := w.Header()
	h["Etag"] = st.etagHdr
	if inm := r.Header.Get("If-None-Match"); inm != "" && inm == st.etag {
		w.WriteHeader(http.StatusNotModified)
		status = http.StatusNotModified
		return
	}
	h["Content-Type"] = jsonContentType
	_, _ = w.Write(st.body)
	status, wrote = http.StatusOK, len(st.body)
}

// statsState returns the pre-encoded stats response for the current
// aggregate state, rebuilding it only when the ingest watermark or the
// trainer's acceptance count has moved. The key is read before the body
// is built, so a racing ingest can pair a fresh body with an older key —
// the next key change rebuilds, and last-write-wins on the store is fine
// (the same benign race the model cache runs). Returns nil only if
// encoding fails, which no reachable payload does.
func (s *PipelineServer) statsState() *statsCacheState {
	wm := s.p.Watermark()
	var acc int64
	if tr := s.p.Trainer(); tr != nil {
		acc = tr.Accepted()
	}
	st := s.scache.Load()
	if st != nil && st.wm == wm && st.acc == acc {
		return st
	}
	body, err := json.Marshal(s.statsPayload())
	if err != nil {
		return nil
	}
	etag := "\"s" + strconv.FormatInt(wm, 10) + "-" + strconv.FormatInt(acc, 10) + "\""
	st = &statsCacheState{
		wm: wm, acc: acc,
		etag: etag, etagHdr: []string{etag}, body: append(body, '\n'),
	}
	s.scache.Store(st)
	return st
}

// statsPayload is the kind=stats response body, shared by the fast path
// and queryJSON so the two cannot drift.
func (s *PipelineServer) statsPayload() map[string]any {
	counts := s.p.TaskCounts()
	var n int64
	tasks := make(map[string]int64, len(counts))
	for k, c := range counts {
		n += c
		tasks[k.String()] = c
	}
	return map[string]any{
		"n":     n,
		"dim":   s.p.Schema().Dim(),
		"tasks": tasks,
	}
}

// queryJSON answers one query against an immutable view and returns the
// encoded response body. cacheable is false for kinds whose answer is not
// a pure function of the view.
func (s *PipelineServer) queryJSON(v *pipeline.Result, q url.Values) (body []byte, cacheable bool, err error) {
	var payload any
	switch kind := q.Get("kind"); kind {
	case "stats":
		// Reachable only with an encoding of kind=stats the fast path's
		// substring probe missed; serve the cached stats body without
		// entering the view-epoch query cache.
		if st := s.statsState(); st != nil {
			return st.body, false, nil
		}
		return nil, false, fmt.Errorf("encode stats")
	case "mean":
		if name := q.Get("attr"); name != "" {
			m, err := v.Mean(name)
			if err != nil {
				return nil, false, err
			}
			payload = map[string]any{"attr": name, "mean": m}
		} else {
			payload = v.Means()
		}
	case "freq":
		name := q.Get("attr")
		if name == "" {
			return nil, false, fmt.Errorf("freq queries need attr=")
		}
		freqs, err := v.FreqView(name)
		if err != nil {
			return nil, false, err
		}
		payload = map[string]any{"attr": name, "freqs": freqs}
	case "range":
		rq, err := parseRangeQuery(q.Get, s.p.Schema())
		if err != nil {
			return nil, false, err
		}
		mass, err := v.Range(rq)
		if err != nil {
			return nil, false, err
		}
		payload = map[string]any{"query": rq, "mass": mass}
	default:
		return nil, false, fmt.Errorf("unknown query kind %q (want stats, mean, freq, or range)", kind)
	}
	body, err = json.Marshal(payload)
	if err != nil {
		return nil, false, err
	}
	return append(body, '\n'), true, nil
}

// storeQuery remembers a pre-encoded response for the rest of its view
// epoch (copy-on-write, so the lock-free readers never observe a map
// write) and returns the epoch's preallocated ETag header value. An
// entry whose key or cost exceeds its individual bound is served but not
// retained; one that fits is always inserted, evicting the epoch's
// oldest entries (FIFO) as needed to stay inside the count and
// total-byte bounds.
func (s *PipelineServer) storeQuery(epoch uint64, raw string, body []byte) []string {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	st := s.qcache.Load()
	cost := len(raw) + len(body)
	fits := len(raw) <= maxCachedQueryKey && cost <= maxCachedQueryBytes
	switch {
	case st == nil || st.epoch < epoch:
		etag := "\"q" + strconv.FormatUint(epoch, 10) + "\""
		next := &queryCacheState{
			epoch:   epoch,
			etag:    etag,
			etagHdr: []string{etag},
			body:    map[string][]byte{},
		}
		if fits {
			next.body[raw] = body
			next.order = []string{raw}
			next.bytes = cost
		}
		s.qcache.Store(next)
		return next.etagHdr
	case st.epoch == epoch:
		if _, ok := st.body[raw]; !ok && fits {
			nb := make(map[string][]byte, len(st.body)+1)
			for k, b := range st.body {
				nb[k] = b
			}
			no := make([]string, len(st.order), len(st.order)+1)
			copy(no, st.order)
			nb[raw] = body
			no = append(no, raw)
			nbytes := st.bytes + cost
			evicted := 0
			for len(nb) > maxCachedQueries || nbytes > maxCachedQueryBytes {
				old := no[0]
				nbytes -= len(old) + len(nb[old])
				delete(nb, old)
				no = no[1:]
				evicted++
			}
			s.met.queryEvict.Add(uint64(evicted))
			s.qcache.Store(&queryCacheState{
				epoch: st.epoch, etag: st.etag, etagHdr: st.etagHdr,
				body: nb, order: no, bytes: nbytes,
			})
		}
		return st.etagHdr
	default:
		// The cache has moved to a newer epoch while this response was
		// being computed; tag the response with its own epoch and leave
		// the cache alone.
		etag := "\"q" + strconv.FormatUint(epoch, 10) + "\""
		return []string{etag}
	}
}

// parseRangeQuery builds a RangeQuery from URL parameters, validating
// attribute names against the schema early for clearer errors.
func parseRangeQuery(get func(string) string, sch *schema.Schema) (pipeline.RangeQuery, error) {
	var rq pipeline.RangeQuery
	rq.Attr = get("attr")
	if rq.Attr == "" {
		return rq, fmt.Errorf("range queries need attr=")
	}
	if _, err := attrIndex(sch, rq.Attr); err != nil {
		return rq, err
	}
	var err1, err2 error
	rq.Lo, err1 = strconv.ParseFloat(get("lo"), 64)
	rq.Hi, err2 = strconv.ParseFloat(get("hi"), 64)
	if err1 != nil || err2 != nil {
		return rq, fmt.Errorf("lo and hi must be numbers in [-1,1]")
	}
	if rq.Attr2 = get("attr2"); rq.Attr2 != "" {
		if _, err := attrIndex(sch, rq.Attr2); err != nil {
			return rq, err
		}
		rq.Lo2, err1 = strconv.ParseFloat(get("lo2"), 64)
		rq.Hi2, err2 = strconv.ParseFloat(get("hi2"), 64)
		if err1 != nil || err2 != nil {
			return rq, fmt.Errorf("lo2 and hi2 must be numbers in [-1,1]")
		}
	}
	return rq, nil
}
