package transport

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"ldp/internal/pipeline"
	"ldp/internal/schema"
)

// MaxBatchSize bounds the body of one batched report upload (defensive
// limit; a batch holds many MaxFrameSize-bounded frames).
const MaxBatchSize = 16 << 20

// PipelineServer is the unified aggregator front end: every task's
// reports arrive on one route and every query kind is answered on one
// route.
//
//	POST /v1/report   one or more concatenated report frames -> 204
//	                  (v2 envelopes, including gradient frames; legacy v1
//	                  report/range frames are accepted for migration)
//	GET  /v1/query    ?kind=stats
//	                  ?kind=mean[&attr=name]
//	                  ?kind=freq&attr=name
//	                  ?kind=range&attr=name&lo=&hi=[&attr2=&lo2=&hi2=]
//	GET  /v1/model    federated SGD model state (pipelines built with
//	                  WithGradient; 404 otherwise)
type PipelineServer struct {
	p   *pipeline.Pipeline
	mux *http.ServeMux

	mu   sync.Mutex
	sink Sink
}

// NewPipelineServer wraps a pipeline (and optional persistence sink,
// which receives every accepted raw frame) in an HTTP handler.
func NewPipelineServer(p *pipeline.Pipeline, sink Sink) *PipelineServer {
	s := &PipelineServer{p: p, sink: sink, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/report", s.handleReport)
	s.mux.HandleFunc("GET /v1/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/model", s.handleModel)
	return s
}

// ServeHTTP implements http.Handler.
func (s *PipelineServer) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Pipeline exposes the underlying pipeline (for replay after restart).
func (s *PipelineServer) Pipeline() *pipeline.Pipeline { return s.p }

func (s *PipelineServer) handleReport(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxBatchSize+1))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > MaxBatchSize {
		http.Error(w, "batch too large", http.StatusRequestEntityTooLarge)
		return
	}
	// The whole body decodes into one pooled columnar batch and folds in
	// through AddBatch: no per-frame allocation, and a bad frame (or a
	// report that fails validation) rejects the batch atomically before
	// any state changes.
	b := pipeline.GetBatch()
	defer pipeline.PutBatch(b)
	if _, err := DecodeBatch(body, b); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if b.Len() == 0 {
		http.Error(w, "empty report body", http.StatusBadRequest)
		return
	}
	if err := s.p.AddBatch(b); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if s.sink != nil {
		// Persist the accepted raw frames, re-slicing the body by frame
		// length (DecodeBatch already proved every header well-formed).
		s.mu.Lock()
		for off := 0; off < len(body); {
			n, err := FrameLen(body[off:])
			if err != nil {
				break
			}
			if err := s.sink.Append(body[off : off+n]); err != nil {
				s.mu.Unlock()
				http.Error(w, "persist: "+err.Error(), http.StatusInternalServerError)
				return
			}
			off += n
		}
		s.mu.Unlock()
	}
	w.WriteHeader(http.StatusNoContent)
}

// ModelState is the JSON body of GET /v1/model: the published model plus
// the training-protocol parameters a client needs to participate.
type ModelState struct {
	Round     int       `json:"round"`
	Done      bool      `json:"done"`
	Beta      []float64 `json:"beta"`
	GroupSize int       `json:"group_size"`
	Rounds    int       `json:"rounds"`
	Dim       int       `json:"dim"`
	Eta       float64   `json:"eta"`
	Lambda    float64   `json:"lambda"`
	Accepted  int64     `json:"accepted"`
	Stale     int64     `json:"stale"`
}

func (s *PipelineServer) handleModel(w http.ResponseWriter, r *http.Request) {
	tr := s.p.Trainer()
	if tr == nil {
		http.Error(w, "no gradient task is registered", http.StatusNotFound)
		return
	}
	m := tr.Model()
	writeJSON(w, ModelState{
		Round:     m.Round,
		Done:      m.Done,
		Beta:      m.Beta,
		GroupSize: tr.GroupSize(),
		Rounds:    tr.Rounds(),
		Dim:       tr.Dim(),
		Eta:       tr.Eta(),
		Lambda:    tr.Lambda(),
		Accepted:  tr.Accepted(),
		Stale:     tr.Stale(),
	})
}

func (s *PipelineServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	switch kind := q.Get("kind"); kind {
	case "stats":
		// Stats need only the shard counters, not a full snapshot.
		counts := s.p.TaskCounts()
		var n int64
		tasks := make(map[string]int64, len(counts))
		for k, c := range counts {
			n += c
			tasks[k.String()] = c
		}
		writeJSON(w, map[string]any{
			"n":     n,
			"dim":   s.p.Schema().Dim(),
			"tasks": tasks,
		})
	case "mean":
		res := s.p.Snapshot()
		if name := q.Get("attr"); name != "" {
			m, err := res.Mean(name)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			writeJSON(w, map[string]any{"attr": name, "mean": m})
			return
		}
		writeJSON(w, res.Means())
	case "freq":
		name := q.Get("attr")
		if name == "" {
			http.Error(w, "freq queries need attr=", http.StatusBadRequest)
			return
		}
		freqs, err := s.p.Snapshot().Freq(name)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, map[string]any{"attr": name, "freqs": freqs})
	case "range":
		rq, err := parseRangeQuery(q.Get, s.p.Schema())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		mass, err := s.p.Snapshot().Range(rq)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, map[string]any{"query": rq, "mass": mass})
	default:
		http.Error(w, fmt.Sprintf("unknown query kind %q (want stats, mean, freq, or range)", kind), http.StatusBadRequest)
	}
}

// parseRangeQuery builds a RangeQuery from URL parameters, validating
// attribute names against the schema early for clearer errors.
func parseRangeQuery(get func(string) string, sch *schema.Schema) (pipeline.RangeQuery, error) {
	var rq pipeline.RangeQuery
	rq.Attr = get("attr")
	if rq.Attr == "" {
		return rq, fmt.Errorf("range queries need attr=")
	}
	if _, err := attrIndex(sch, rq.Attr); err != nil {
		return rq, err
	}
	var err1, err2 error
	rq.Lo, err1 = strconv.ParseFloat(get("lo"), 64)
	rq.Hi, err2 = strconv.ParseFloat(get("hi"), 64)
	if err1 != nil || err2 != nil {
		return rq, fmt.Errorf("lo and hi must be numbers in [-1,1]")
	}
	if rq.Attr2 = get("attr2"); rq.Attr2 != "" {
		if _, err := attrIndex(sch, rq.Attr2); err != nil {
			return rq, err
		}
		rq.Lo2, err1 = strconv.ParseFloat(get("lo2"), 64)
		rq.Hi2, err2 = strconv.ParseFloat(get("hi2"), 64)
		if err1 != nil || err2 != nil {
			return rq, fmt.Errorf("lo2 and hi2 must be numbers in [-1,1]")
		}
	}
	return rq, nil
}
