package transport

import (
	"bytes"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"ldp/internal/core"
	"ldp/internal/freq"
	"ldp/internal/mech"
	"ldp/internal/reportlog"
	"ldp/internal/rng"
	"ldp/internal/schema"
)

func pmFactory(eps float64) (mech.Mechanism, error)      { return core.NewPiecewise(eps) }
func oueFactory(eps float64, k int) (freq.Oracle, error) { return freq.NewOUE(eps, k) }
func grrFactory(eps float64, k int) (freq.Oracle, error) { return freq.NewGRR(eps, k) }

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	s, err := schema.New(
		schema.Attribute{Name: "age", Kind: schema.Numeric},
		schema.Attribute{Name: "gender", Kind: schema.Categorical, Cardinality: 2},
		schema.Attribute{Name: "region", Kind: schema.Categorical, Cardinality: 70}, // >64 bits
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sampleReports(t *testing.T, oracle freq.Factory, n int) (*core.Collector, []core.Report) {
	t.Helper()
	s := testSchema(t)
	col, err := core.NewCollector(s, 8, pmFactory, oracle) // k=3: all attrs sampled
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	reps := make([]core.Report, n)
	for i := range reps {
		tup := schema.NewTuple(s)
		tup.Num[0] = rng.Uniform(r, -1, 1)
		tup.Cat[1] = r.IntN(2)
		tup.Cat[2] = r.IntN(70)
		rep, err := col.Perturb(tup, r)
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = rep
	}
	return col, reps
}

func reportsEqual(a, b core.Report) bool {
	if len(a.Entries) != len(b.Entries) {
		return false
	}
	for i := range a.Entries {
		x, y := a.Entries[i], b.Entries[i]
		if x.Attr != y.Attr || x.Kind != y.Kind || x.Value != y.Value {
			return false
		}
		if (x.Resp.Bits == nil) != (y.Resp.Bits == nil) || x.Resp.Value != y.Resp.Value {
			return false
		}
		for w := range x.Resp.Bits {
			if x.Resp.Bits[w] != y.Resp.Bits[w] {
				return false
			}
		}
	}
	return true
}

func TestWireRoundTripOUE(t *testing.T) {
	_, reps := sampleReports(t, oueFactory, 50)
	for i, rep := range reps {
		got, err := DecodeReport(EncodeReport(rep))
		if err != nil {
			t.Fatalf("report %d: %v", i, err)
		}
		if !reportsEqual(got, rep) {
			t.Fatalf("report %d: round trip mismatch", i)
		}
	}
}

func TestWireRoundTripGRR(t *testing.T) {
	_, reps := sampleReports(t, grrFactory, 50)
	for i, rep := range reps {
		got, err := DecodeReport(EncodeReport(rep))
		if err != nil {
			t.Fatalf("report %d: %v", i, err)
		}
		if !reportsEqual(got, rep) {
			t.Fatalf("report %d: round trip mismatch", i)
		}
	}
}

func TestWireRoundTripSpecialFloats(t *testing.T) {
	rep := core.Report{Entries: []core.Entry{
		{Attr: 0, Kind: core.EntryNumeric, Value: 0},
		{Attr: 1, Kind: core.EntryNumeric, Value: math.Copysign(0, -1)},
		{Attr: 2, Kind: core.EntryNumeric, Value: -17.25},
	}}
	got, err := DecodeReport(EncodeReport(rep))
	if err != nil {
		t.Fatal(err)
	}
	if !reportsEqual(got, rep) {
		t.Fatal("round trip mismatch")
	}
}

func TestDecodeRejectsMalformedFrames(t *testing.T) {
	_, reps := sampleReports(t, oueFactory, 1)
	good := EncodeReport(reps[0])

	cases := map[string][]byte{
		"empty":     {},
		"short":     good[:5],
		"badMagic":  append([]byte("XXXX"), good[4:]...),
		"badVer":    func() []byte { b := bytes.Clone(good); b[4] = 9; return b }(),
		"badLen":    func() []byte { b := bytes.Clone(good); b[5] ^= 0xFF; return b }(),
		"badCRC":    func() []byte { b := bytes.Clone(good); b[len(b)-1] ^= 0xFF; return b }(),
		"bitFlip":   func() []byte { b := bytes.Clone(good); b[12] ^= 0x01; return b }(),
		"truncated": good[:len(good)-4],
	}
	for name, frame := range cases {
		if _, err := DecodeReport(frame); err == nil {
			t.Errorf("%s: expected decode error", name)
		}
	}
}

func TestDecodeRejectsOversizedFrame(t *testing.T) {
	if _, err := DecodeReport(make([]byte, MaxFrameSize+1)); err == nil {
		t.Error("expected error for oversized frame")
	}
}

func TestServerEndToEnd(t *testing.T) {
	col, reps := sampleReports(t, oueFactory, 500)
	agg := core.NewAggregator(col)
	srv := httptest.NewServer(NewServer(agg, nil))
	defer srv.Close()

	client := NewClient(srv.URL+"/", col, srv.Client())
	for _, rep := range reps {
		if err := client.SendReport(rep); err != nil {
			t.Fatal(err)
		}
	}
	if agg.N() != 500 {
		t.Fatalf("aggregator has %d reports, want 500", agg.N())
	}

	// Query endpoints.
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("stats status %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/v1/means")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("means status %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/v1/freqs?attr=region")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("freqs status %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/v1/freqs?attr=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown attr status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/v1/freqs?attr=age")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("numeric attr freqs status %d, want 400", resp.StatusCode)
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	col, _ := sampleReports(t, oueFactory, 1)
	srv := httptest.NewServer(NewServer(core.NewAggregator(col), nil))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/report", "application/octet-stream", bytes.NewReader([]byte("garbage")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status %d, want 400", resp.StatusCode)
	}
}

func TestServerSendTupleConcurrent(t *testing.T) {
	s := testSchema(t)
	col, err := core.NewCollector(s, 1, pmFactory, oueFactory)
	if err != nil {
		t.Fatal(err)
	}
	agg := core.NewAggregator(col)
	srv := httptest.NewServer(NewServer(agg, nil))
	defer srv.Close()

	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := NewClient(srv.URL, col, srv.Client())
			r := rng.NewStream(9, uint64(w))
			for i := 0; i < perWorker; i++ {
				tup := schema.NewTuple(s)
				tup.Num[0] = rng.Uniform(r, -1, 1)
				tup.Cat[1] = r.IntN(2)
				tup.Cat[2] = r.IntN(70)
				if err := client.SendTuple(tup, r); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if agg.N() != workers*perWorker {
		t.Errorf("N = %d, want %d", agg.N(), workers*perWorker)
	}
}

func TestServerPersistsAndReplays(t *testing.T) {
	col, reps := sampleReports(t, oueFactory, 200)
	dir := t.TempDir()
	w, err := reportlog.Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	agg := core.NewAggregator(col)
	srv := httptest.NewServer(NewServer(agg, w))
	client := NewClient(srv.URL, col, srv.Client())
	for _, rep := range reps {
		if err := client.SendReport(rep); err != nil {
			t.Fatal(err)
		}
	}
	srv.Close()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate restart: rebuild a fresh aggregator from the log.
	agg2 := core.NewAggregator(col)
	n, err := Replay(agg2, func(fn func([]byte) error) error {
		_, err := reportlog.Replay(dir, fn)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 200 || agg2.N() != 200 {
		t.Fatalf("replayed %d reports (agg %d), want 200", n, agg2.N())
	}
	m1, err := agg.MeanEstimate(0)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := agg2.MeanEstimate(0)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Errorf("replayed mean %v != original %v", m2, m1)
	}
}

func TestServerSnapshotEndpoint(t *testing.T) {
	col, reps := sampleReports(t, oueFactory, 100)
	agg := core.NewAggregator(col)
	srv := httptest.NewServer(NewServer(agg, nil))
	defer srv.Close()
	client := NewClient(srv.URL, col, srv.Client())
	for _, rep := range reps {
		if err := client.SendReport(rep); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Get(srv.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	snap, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fresh := core.NewAggregator(col)
	if err := fresh.LoadSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if fresh.N() != 100 {
		t.Errorf("restored N = %d, want 100", fresh.N())
	}
	m1, _ := agg.MeanEstimate(0)
	m2, _ := fresh.MeanEstimate(0)
	if m1 != m2 {
		t.Errorf("snapshot-restored mean %v != live %v", m2, m1)
	}
}

func TestClientReportsServerRejection(t *testing.T) {
	col, _ := sampleReports(t, oueFactory, 1)
	// A server built over a different schema rejects the client's frames.
	other, err := schema.New(schema.Attribute{Name: "only", Kind: schema.Numeric})
	if err != nil {
		t.Fatal(err)
	}
	otherCol, err := core.NewCollector(other, 1, pmFactory, oueFactory)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(core.NewAggregator(otherCol), nil))
	defer srv.Close()
	client := NewClient(srv.URL, col, srv.Client())
	rep := core.Report{Entries: []core.Entry{{Attr: 2, Kind: core.EntryNumeric, Value: 1}}}
	if err := client.SendReport(rep); err == nil {
		t.Error("expected rejection for out-of-schema report")
	}
}
