package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestLogFactorialSmall(t *testing.T) {
	want := []float64{1, 1, 2, 6, 24, 120, 720, 5040}
	for n, w := range want {
		got := math.Exp(LogFactorial(n))
		if !almostEqual(got, w, 1e-9*w) {
			t.Errorf("LogFactorial(%d): exp = %v, want %v", n, got, w)
		}
	}
}

func TestLogFactorialLargeMatchesLgamma(t *testing.T) {
	for _, n := range []int{127, 128, 129, 500, 10000} {
		lg, _ := math.Lgamma(float64(n) + 1)
		if got := LogFactorial(n); !almostEqual(got, lg, 1e-9*math.Abs(lg)) {
			t.Errorf("LogFactorial(%d) = %v, want %v", n, got, lg)
		}
	}
}

func TestLogFactorialNegative(t *testing.T) {
	if !math.IsNaN(LogFactorial(-1)) {
		t.Error("LogFactorial(-1) should be NaN")
	}
}

func TestBinomialExact(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1},
		{5, 2, 10}, {10, 5, 252}, {20, 10, 184756},
		{52, 5, 2598960},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); !almostEqual(got, c.want, 1e-6*c.want) {
			t.Errorf("Binomial(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialOutOfRange(t *testing.T) {
	if Binomial(5, -1) != 0 || Binomial(5, 6) != 0 {
		t.Error("out-of-range binomial should be 0")
	}
	if !math.IsInf(LogBinomial(5, 6), -1) {
		t.Error("out-of-range log binomial should be -Inf")
	}
}

func TestBinomialSymmetryProperty(t *testing.T) {
	f := func(n uint8, k uint8) bool {
		nn := int(n%60) + 1
		kk := int(k) % (nn + 1)
		return almostEqual(LogBinomial(nn, kk), LogBinomial(nn, nn-kk), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinomialPascalProperty(t *testing.T) {
	// C(n,k) = C(n-1,k-1) + C(n-1,k) for 1 <= k <= n-1.
	f := func(n uint8, k uint8) bool {
		nn := int(n%40) + 2
		kk := int(k)%(nn-1) + 1
		lhs := Binomial(nn, kk)
		rhs := Binomial(nn-1, kk-1) + Binomial(nn-1, kk)
		return almostEqual(lhs, rhs, 1e-6*lhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogSumExp(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, math.Inf(-1)},
		{[]float64{0}, 0},
		{[]float64{math.Log(2), math.Log(3)}, math.Log(5)},
		{[]float64{1000, 1000}, 1000 + math.Log(2)},
		{[]float64{math.Inf(-1), 0}, 0},
		{[]float64{math.Inf(-1), math.Inf(-1)}, math.Inf(-1)},
	}
	for _, c := range cases {
		got := LogSumExp(c.xs)
		if math.IsInf(c.want, -1) {
			if !math.IsInf(got, -1) {
				t.Errorf("LogSumExp(%v) = %v, want -Inf", c.xs, got)
			}
			continue
		}
		if !almostEqual(got, c.want, 1e-9) {
			t.Errorf("LogSumExp(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestBisectFindsSqrt2(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(root, math.Sqrt2, 1e-10) {
		t.Errorf("root = %v, want sqrt(2)", root)
	}
}

func TestBisectEndpointRoot(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x }, 0, 1, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if root != 0 {
		t.Errorf("root = %v, want 0", root)
	}
}

func TestBisectNoBracket(t *testing.T) {
	if _, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-9); err != ErrNoBracket {
		t.Errorf("err = %v, want ErrNoBracket", err)
	}
}

func TestBisectDecreasing(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return 1 - x }, 0, 3, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(root, 1, 1e-10) {
		t.Errorf("root = %v, want 1", root)
	}
}

func TestIntegratePolynomial(t *testing.T) {
	// Simpson's rule is exact for cubics.
	got := Integrate(func(x float64) float64 { return x*x*x - 2*x + 1 }, -1, 3, 10)
	want := 81.0/4 - 9 + 3 - (1.0/4 - 1 - 1)
	if !almostEqual(got, want, 1e-9) {
		t.Errorf("integral = %v, want %v", got, want)
	}
}

func TestIntegrateSin(t *testing.T) {
	got := Integrate(math.Sin, 0, math.Pi, 1000)
	if !almostEqual(got, 2, 1e-8) {
		t.Errorf("integral of sin over [0,pi] = %v, want 2", got)
	}
}

func TestIntegrateOddSubintervals(t *testing.T) {
	// n is rounded up to even; result must still be sane.
	got := Integrate(func(x float64) float64 { return x }, 0, 2, 3)
	if !almostEqual(got, 2, 1e-9) {
		t.Errorf("integral = %v, want 2", got)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{0.5, 0, 1, 0.5},
		{-3, 0, 1, 0},
		{7, 0, 1, 1},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.x, c.lo, c.hi, got, c.want)
		}
	}
}

func TestEpsStarValue(t *testing.T) {
	// Paper Eq. 6 reports eps* ~= 0.61.
	if got := EpsStar(); !almostEqual(got, 0.61, 0.005) {
		t.Errorf("EpsStar() = %v, want ~0.61", got)
	}
}

func TestEpsSharpValue(t *testing.T) {
	// Table I reports eps# ~= 1.29.
	if got := EpsSharp(); !almostEqual(got, 1.29, 0.005) {
		t.Errorf("EpsSharp() = %v, want ~1.29", got)
	}
}
