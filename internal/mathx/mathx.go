// Package mathx provides small numeric helpers shared by the mechanism and
// analysis packages: log-factorials and log-binomials (stable for large n),
// log-sum-exp, bisection root finding, and adaptive numeric integration.
//
// Everything here is deterministic pure math on float64; the package has no
// dependencies beyond the standard library math package.
package mathx

import (
	"errors"
	"math"
)

// ErrNoBracket is returned by Bisect when f(lo) and f(hi) have the same sign.
var ErrNoBracket = errors.New("mathx: root not bracketed")

// LogFactorial returns ln(n!). It is exact for small n and uses the
// log-gamma function for large n.
func LogFactorial(n int) float64 {
	if n < 0 {
		return math.NaN()
	}
	if n < len(logFactTable) {
		return logFactTable[n]
	}
	lg, _ := math.Lgamma(float64(n) + 1)
	return lg
}

// logFactTable caches ln(k!) for k < 128 so the hot path taken by the Duchi
// corner sampler avoids Lgamma calls for common dimensionalities.
var logFactTable = func() []float64 {
	t := make([]float64, 128)
	acc := 0.0
	for k := 1; k < len(t); k++ {
		acc += math.Log(float64(k))
		t[k] = acc
	}
	return t
}()

// LogBinomial returns ln(C(n, k)), or -Inf when k is out of range.
func LogBinomial(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	return LogFactorial(n) - LogFactorial(k) - LogFactorial(n-k)
}

// Binomial returns C(n, k) as a float64. For n beyond ~1029 the result
// overflows to +Inf; callers that need ratios of large binomials should work
// with LogBinomial instead.
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	return math.Exp(LogBinomial(n, k))
}

// LogSumExp returns ln(sum_i e^{xs[i]}) computed stably. It returns -Inf for
// an empty input.
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	max := xs[0]
	for _, x := range xs[1:] {
		if x > max {
			max = x
		}
	}
	if math.IsInf(max, -1) {
		return max
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Exp(x - max)
	}
	return max + math.Log(sum)
}

// Bisect finds a root of f in [lo, hi] to within tol using bisection.
// f(lo) and f(hi) must have opposite signs.
func Bisect(f func(float64) float64, lo, hi, tol float64) (float64, error) {
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, ErrNoBracket
	}
	for hi-lo > tol {
		mid := lo + (hi-lo)/2
		if mid == lo || mid == hi {
			break // float64 exhausted
		}
		fmid := f(mid)
		if fmid == 0 {
			return mid, nil
		}
		if (fmid > 0) == (flo > 0) {
			lo, flo = mid, fmid
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2, nil
}

// Integrate approximates the integral of f over [a, b] with composite
// Simpson's rule using n subintervals (rounded up to an even number).
func Integrate(f func(float64) float64, a, b float64, n int) float64 {
	if n < 2 {
		n = 2
	}
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

// Clamp limits x to the interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Cbrt-based helpers for the paper's closed-form constants.

// EpsStar is the constant eps* from Eq. 6 of the paper: below it the optimal
// Hybrid Mechanism coefficient alpha is 0 (HM degenerates to Duchi et al.'s
// method). Approximately 0.6097.
func EpsStar() float64 {
	s := math.Sqrt(241)
	inner := -5 + 2*math.Cbrt(6353-405*s) + 2*math.Cbrt(6353+405*s)
	return math.Log(inner / 27)
}

// EpsSharp is the constant eps# from Table I: the privacy budget at which the
// worst-case variances of PM and Duchi et al.'s 1-D method coincide.
// Approximately 1.2899.
func EpsSharp() float64 {
	s := math.Sqrt(7)
	inner := 7 + 4*s + 2*math.Sqrt(20+14*s)
	return math.Log(inner / 9)
}
