package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ldp/internal/telemetry"
)

// fakeClock is a manually advanced time source for breaker tests.
type fakeClock struct{ at time.Time }

func (c *fakeClock) now() time.Time          { return c.at }
func (c *fakeClock) advance(d time.Duration) { c.at = c.at.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{at: time.Unix(1_700_000_000, 0)} }
func midJitter() float64                     { return 0.5 }
func testBreaker(clk *fakeClock, cfg BreakerConfig) *Breaker {
	cfg.now = clk.now
	cfg.jitter = midJitter
	return NewBreaker(cfg, nil, "test")
}

func TestBreakerStateMachine(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, BreakerConfig{Threshold: 3, Cooldown: 8 * time.Second, MaxCooldown: time.Minute})

	// Closed: failures below the threshold keep it closed, a success
	// resets the count.
	for i := 0; i < 2; i++ {
		if ok, probe := b.Allow(); !ok || probe {
			t.Fatalf("closed breaker denied call %d", i)
		}
		b.Failure()
	}
	b.Success()
	b.Failure()
	b.Failure()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after reset + 2 failures: %v, want closed", got)
	}

	// Third consecutive failure trips it.
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after threshold: %v, want open", got)
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("open breaker allowed a call before the probe deadline")
	}

	// Midpoint jitter arms the probe at cooldown*(0.5 + 0.5*0.5) = 6s.
	clk.advance(5 * time.Second)
	if ok, _ := b.Allow(); ok {
		t.Fatal("open breaker allowed a call 1s before the probe deadline")
	}
	clk.advance(1100 * time.Millisecond)
	ok, probe := b.Allow()
	if !ok || !probe {
		t.Fatalf("probe not admitted past the deadline: ok=%v probe=%v", ok, probe)
	}
	// While the probe is unsettled, everyone else fails fast.
	if ok, _ := b.Allow(); ok {
		t.Fatal("second caller admitted during an in-flight probe")
	}

	// Failed probe: re-opens with a doubled cooldown (16s base -> 12s at
	// midpoint jitter).
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after failed probe: %v, want open", got)
	}
	clk.advance(11 * time.Second)
	if ok, _ := b.Allow(); ok {
		t.Fatal("re-opened breaker probed at the first-trip cadence (no backoff)")
	}
	clk.advance(1100 * time.Millisecond)
	if ok, probe := b.Allow(); !ok || !probe {
		t.Fatal("second probe not admitted")
	}

	// Successful probe closes it and resets the trip backoff.
	b.Success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after successful probe: %v, want closed", got)
	}
	if ok, probe := b.Allow(); !ok || probe {
		t.Fatal("closed breaker should allow full calls again")
	}
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	clk.advance(6100 * time.Millisecond) // first-trip cadence again
	if ok, probe := b.Allow(); !ok || !probe {
		t.Fatal("trip backoff did not reset after a success")
	}
}

func TestBreakerCooldownCap(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, BreakerConfig{Threshold: 1, Cooldown: time.Second, MaxCooldown: 4 * time.Second})
	for trip := 0; trip < 6; trip++ {
		b.Failure() // threshold 1: open (or re-open from half-open)
		if got := b.State(); got != BreakerOpen {
			t.Fatalf("trip %d: state %v, want open", trip, got)
		}
		// Even after many trips the probe is never more than MaxCooldown
		// away.
		clk.advance(4100 * time.Millisecond)
		if ok, probe := b.Allow(); !ok || !probe {
			t.Fatalf("trip %d: probe not admitted within MaxCooldown", trip)
		}
	}
}

func TestBreakerTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	clk := newFakeClock()
	cfg := BreakerConfig{Threshold: 1, Cooldown: time.Second, now: clk.now, jitter: midJitter}
	b := NewBreaker(cfg, reg, "forwarder")

	b.Failure()
	clk.advance(2 * time.Second)
	b.Allow()   // -> half-open
	b.Success() // -> closed

	var sb strings.Builder
	if _, err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`ldp_breaker_transitions_total{breaker="forwarder",to="open"} 1`,
		`ldp_breaker_transitions_total{breaker="forwarder",to="half_open"} 1`,
		`ldp_breaker_transitions_total{breaker="forwarder",to="closed"} 1`,
		`ldp_breaker_state{breaker="forwarder"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestParseRetryAfter(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"3", 3 * time.Second},
		{"0", 0},
		{"-2", 0},
		{"nonsense", 0},
		{"10m", 0}, // not a bare-seconds value; must not parse as a duration
		{time.Now().Add(90 * time.Second).UTC().Format(time.RFC1123), 90 * time.Second},
		{time.Now().Add(-time.Minute).UTC().Format(time.RFC1123), 0},
	} {
		got := ParseRetryAfter(tc.in)
		// Date-based hints race the wall clock; allow a second of slack.
		if diff := got - tc.want; diff < -time.Second || diff > time.Second {
			t.Errorf("ParseRetryAfter(%q) = %v, want ~%v", tc.in, got, tc.want)
		}
	}
}

func TestRetryPolicyHonorsRetryAfterHint(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Second}
	hint := 300 * time.Millisecond
	start := time.Now()
	err := p.Do(context.Background(), func(context.Context) (bool, error) {
		return true, &RetryAfterError{Err: fmt.Errorf("shed"), After: hint}
	})
	if err == nil {
		t.Fatal("want exhaustion error")
	}
	var ra *RetryAfterError
	if !errors.As(err, &ra) {
		t.Fatalf("final error lost the RetryAfterError wrapper: %v", err)
	}
	if elapsed := time.Since(start); elapsed < hint {
		t.Fatalf("retried after %v, server asked for at least %v", elapsed, hint)
	}
}

func TestRetryPolicyMaxElapsedCancelsInFlight(t *testing.T) {
	// A server that accepts the connection and then hangs: without the
	// wall-clock cap this would stall for the full per-attempt timeout
	// times MaxAttempts.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // hang until the client gives up
	}))
	defer srv.Close()

	p := RetryPolicy{MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, MaxElapsed: 150 * time.Millisecond}
	var calls atomic.Int64
	start := time.Now()
	err := p.Do(context.Background(), func(ctx context.Context) (bool, error) {
		calls.Add(1)
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
		_, err := http.DefaultClient.Do(req)
		return true, err
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("want error from the deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error does not carry the deadline: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("MaxElapsed did not cancel the in-flight request: took %v", elapsed)
	}
	if calls.Load() < 1 {
		t.Fatal("attempt never ran")
	}
}

func TestRetryPolicyMaxElapsedDisable(t *testing.T) {
	p := RetryPolicy{MaxElapsed: -1}.withDefaults()
	if p.MaxElapsed != 0 {
		t.Fatalf("negative MaxElapsed should disable the cap, got %v", p.MaxElapsed)
	}
	p = RetryPolicy{}.withDefaults()
	if p.MaxElapsed != DefaultRetryPolicy.MaxElapsed {
		t.Fatalf("zero MaxElapsed should default, got %v", p.MaxElapsed)
	}
}

// TestForwarderBreakerDegradesToProbes proves the operational point of
// the breaker: against a dead root, a forwarder pays for three real
// delivery attempts, then fails fast (no snapshot encode, no network)
// until the cooldown passes; the half-open probe is one cheap GET; and a
// recovered root brings the full push path back in the same cycle.
func TestForwarderBreakerDegradesToProbes(t *testing.T) {
	edge := clusterPipeline(t)
	ingest(t, 7, 50, edge)

	var down atomic.Bool
	var posts, gets atomic.Int64
	root := newFakeRoot(t, "boot-1")
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("no hijacker")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatal(err)
			}
			conn.Close() // simulate a dead root: connection reset
			return
		}
		if r.Method == http.MethodPost {
			posts.Add(1)
		} else {
			gets.Add(1)
		}
		root.ServeHTTP(w, r)
	}))
	defer proxy.Close()

	clk := newFakeClock()
	fw, err := NewForwarder(edge, ForwarderConfig{
		RootURL: proxy.URL,
		EdgeID:  "edge-brk",
		Retry:   RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
		Breaker: BreakerConfig{Threshold: 3, Cooldown: 10 * time.Second, now: clk.now, jitter: midJitter},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	down.Store(true)
	for i := 0; i < 3; i++ {
		if err := fw.Push(ctx); err == nil {
			t.Fatalf("push %d against dead root succeeded", i)
		} else if errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("push %d skipped before the threshold", i)
		}
	}
	if got := fw.Breaker().State(); got != BreakerOpen {
		t.Fatalf("breaker state after 3 failures: %v, want open", got)
	}
	// Open: fail fast, nothing reaches the network.
	for i := 0; i < 5; i++ {
		if err := fw.Push(ctx); !errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("open-breaker push %d: %v, want ErrBreakerOpen", i, err)
		}
	}

	// Probe while still dead: one cheap attempt, re-opens.
	clk.advance(11 * time.Second)
	if err := fw.Push(ctx); err == nil || errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("probe against dead root: %v", err)
	}
	if got := fw.Breaker().State(); got != BreakerOpen {
		t.Fatalf("breaker after failed probe: %v, want open", got)
	}

	// Root comes back; after the (backed-off) cooldown the probe closes
	// the breaker and the same cycle delivers the pending delta.
	down.Store(false)
	clk.advance(21 * time.Second)
	if err := fw.Push(ctx); err != nil {
		t.Fatalf("recovery push: %v", err)
	}
	if got := fw.Breaker().State(); got != BreakerClosed {
		t.Fatalf("breaker after recovery: %v, want closed", got)
	}
	if gets.Load() == 0 || posts.Load() == 0 {
		t.Fatalf("recovery cycle should resync (GET) then push (POST): gets=%d posts=%d", gets.Load(), posts.Load())
	}
	if _, reports := fw.Acked(); reports != 50 {
		t.Fatalf("acked reports after recovery: %d, want 50", reports)
	}
}
